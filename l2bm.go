// Package l2bm is a packet-level reproduction of "L2BM: Switch Buffer
// Management for Hybrid Traffic in Data Center Networks" (ICDCS 2023): a
// deterministic discrete-event simulator of an RDMA/TCP datacenter fabric —
// shared-memory switches with ingress/egress-pool MMUs, PFC, ECN, DCQCN and
// DCTCP transports, a three-layer Clos topology — together with the paper's
// buffer-management policies (L2BM, DT, DT2, ABM) and the full evaluation
// harness for its figures and tables.
//
// This root package is the public facade. Quick start:
//
//	eng := l2bm.NewEngine(42)
//	cluster := l2bm.MustBuildCluster(eng, l2bm.TinyClusterConfig(),
//		func() l2bm.Policy { return l2bm.NewL2BMPolicy() }, nil)
//	cluster.StartFlow(&l2bm.Flow{ID: 1, Src: 0, Dst: 5, Size: 1 << 20,
//		Priority: l2bm.PrioLossless, Class: l2bm.ClassLossless})
//	eng.RunAll()
//
// or run a whole paper experiment:
//
//	res, err := l2bm.RunHybrid(l2bm.HybridSpec{
//		Name: "demo", Policy: "L2BM", Scale: l2bm.ScaleSmall,
//		RDMALoad: 0.4, TCPLoad: 0.8,
//	})
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for paper-vs-
// measured results.
package l2bm

import (
	"io"

	"l2bm/internal/core"
	"l2bm/internal/exp"
	"l2bm/internal/faults"
	"l2bm/internal/host"
	"l2bm/internal/metrics"
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/switchsim"
	"l2bm/internal/topo"
	"l2bm/internal/transport"
	"l2bm/internal/workload"
)

// --- Simulation engine ------------------------------------------------------

// Engine is the deterministic discrete-event scheduler driving a simulation.
type Engine = sim.Engine

// Time is a simulated instant in integer picoseconds.
type Time = sim.Time

// Duration is a span of simulated time in picoseconds.
type Duration = sim.Duration

// Duration units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewEngine returns an engine seeded for reproducible runs.
func NewEngine(seed int64) *Engine { return sim.NewEngine(seed) }

// TxTime returns the serialization delay of size bytes at rateBps.
func TxTime(sizeBytes int, rateBps int64) Duration { return sim.TxTime(sizeBytes, rateBps) }

// --- Traffic classes and flows ----------------------------------------------

// Class is a switch loss class (lossless RDMA, lossy TCP, control).
type Class = pkt.Class

// Loss classes.
const (
	ClassLossless = pkt.ClassLossless
	ClassLossy    = pkt.ClassLossy
)

// Default 802.1p priority assignments.
const (
	PrioLossless = pkt.PrioLossless
	PrioLossy    = pkt.PrioLossy
)

// Packet is one simulated frame; Policy hooks observe admitted packets.
type Packet = pkt.Packet

// Flow describes one application transfer; Class selects the transport
// (lossless → DCQCN RDMA, lossy → DCTCP).
type Flow = transport.Flow

// FlowID uniquely identifies a flow.
type FlowID = pkt.FlowID

// --- Buffer-management policies (the paper's subject) ------------------------

// Policy is a buffer-management scheme: it computes the ingress (PFC) and
// egress thresholds the switch MMU enforces. Implement it to plug a custom
// scheme into the simulator.
type Policy = core.Policy

// StateView is the read-only MMU state a Policy consults.
type StateView = core.StateView

// L2BMConfig parameterizes the L2BM policy.
type L2BMConfig = core.L2BMConfig

// Normalization selects L2BM's weight-normalization constant C.
type Normalization = core.Normalization

// WeightBounds clamps L2BM's adaptive weight for one traffic class.
type WeightBounds = core.WeightBounds

// Normalization choices (see core.Normalization docs).
const (
	NormSumTau  = core.NormSumTau
	NormMeanTau = core.NormMeanTau
	NormMaxTau  = core.NormMaxTau
	NormCount   = core.NormCount
)

// NewDTPolicy returns classic Dynamic Threshold with the paper's α = 0.125.
func NewDTPolicy() Policy { return core.NewDT() }

// NewDT2Policy returns DT with α = 0.5 (the paper's DT2 baseline).
func NewDT2Policy() Policy { return core.NewDT2() }

// NewDTPolicyAlpha returns DT with a custom ingress α.
func NewDTPolicyAlpha(alpha float64) Policy { return core.NewDTAlpha(alpha) }

// NewABMPolicy returns the ABM (SIGCOMM'22) baseline.
func NewABMPolicy() Policy { return core.NewABM() }

// NewEDTPolicy returns the EDT (INFOCOM'15) micro-burst-absorbing DT
// variant, one of the related-work schemes the paper surveys.
func NewEDTPolicy() Policy { return core.NewEDT() }

// NewTDTPolicy returns the TDT (ToN'22) traffic-aware DT variant.
func NewTDTPolicy() Policy { return core.NewTDT() }

// NewL2BMPolicy returns L2BM with the evaluation defaults.
func NewL2BMPolicy() Policy { return core.NewDefaultL2BM() }

// NewL2BMPolicyWith returns L2BM with a custom configuration.
func NewL2BMPolicyWith(cfg L2BMConfig) Policy { return core.NewL2BM(cfg) }

// DefaultL2BMConfig returns the evaluation defaults for L2BM.
func DefaultL2BMConfig() L2BMConfig { return core.DefaultL2BMConfig() }

// --- Switches and topology ---------------------------------------------------

// SwitchConfig sizes a shared-memory switch MMU (buffer, headroom, ECN, PFC).
type SwitchConfig = switchsim.Config

// DefaultSwitchConfig returns the paper's 4 MB shallow-buffer switch.
func DefaultSwitchConfig() SwitchConfig { return switchsim.DefaultConfig() }

// ClusterConfig describes the Clos fabric to build.
type ClusterConfig = topo.Config

// Cluster is a built network of hosts and switches.
type Cluster = topo.Cluster

// PolicyFactory creates one Policy instance per switch.
type PolicyFactory = topo.PolicyFactory

// CompletionHandler observes flow completions (receiver side).
type CompletionHandler = host.CompletionHandler

// DefaultClusterConfig returns the paper's topology: 2 core + 4 agg + 4 ToR
// switches, 128 servers, 25/100 Gbps links.
func DefaultClusterConfig() ClusterConfig { return topo.DefaultConfig() }

// TinyClusterConfig returns a scaled-down 8-server fabric for quick runs.
func TinyClusterConfig() ClusterConfig { return topo.TinyConfig() }

// BuildCluster wires a cluster; onComplete (may be nil) observes every flow
// completion.
func BuildCluster(eng *Engine, cfg ClusterConfig, newPolicy PolicyFactory, onComplete CompletionHandler) (*Cluster, error) {
	return topo.Build(eng, cfg, newPolicy, onComplete)
}

// MustBuildCluster is BuildCluster for static configurations.
func MustBuildCluster(eng *Engine, cfg ClusterConfig, newPolicy PolicyFactory, onComplete CompletionHandler) *Cluster {
	return topo.MustBuild(eng, cfg, newPolicy, onComplete)
}

// --- Workloads ---------------------------------------------------------------

// CDF is a flow-size distribution.
type CDF = workload.CDF

// WebSearchCDF returns the heavy-tailed web-search flow-size distribution
// the paper's workload draws from.
func WebSearchCDF() *CDF { return workload.WebSearchCDF() }

// DataMiningCDF returns the even heavier-tailed VL2 data-mining
// distribution, for experiments beyond the paper's setup.
func DataMiningCDF() *CDF { return workload.DataMiningCDF() }

// PoissonConfig describes an all-to-all Poisson traffic class.
type PoissonConfig = workload.PoissonConfig

// IncastConfig describes the fan-in query workload.
type IncastConfig = workload.IncastConfig

// IDSource allocates run-unique flow IDs.
type IDSource = workload.IDSource

// NewIDSource returns a fresh flow-ID allocator.
func NewIDSource() *IDSource { return workload.NewIDSource() }

// NewPoisson builds a Poisson generator feeding sink (a Cluster works).
func NewPoisson(eng *Engine, sink workload.Sink, cfg PoissonConfig) (*workload.Poisson, error) {
	return workload.NewPoisson(eng, sink, cfg)
}

// NewIncast builds an incast query generator.
func NewIncast(eng *Engine, sink workload.Sink, cfg IncastConfig) (*workload.Incast, error) {
	return workload.NewIncast(eng, sink, cfg)
}

// --- Metrics -----------------------------------------------------------------

// FCTRecorder matches flow starts and completions and derives slowdowns.
type FCTRecorder = metrics.FCTRecorder

// NewFCTRecorder returns an empty recorder.
func NewFCTRecorder() *FCTRecorder { return metrics.NewFCTRecorder() }

// Percentile returns the p-th percentile (0–100) of xs (linear
// interpolation between the two closest order statistics).
func Percentile(xs []float64, p float64) float64 { return metrics.Percentile(xs, p) }

// PercentileSorted is Percentile over an already ascending-sorted sample
// set, skipping the defensive copy-and-sort.
func PercentileSorted(sorted []float64, p float64) float64 {
	return metrics.PercentileSorted(sorted, p)
}

// Summarize condenses samples into mean/std/min/quartiles/max.
func Summarize(xs []float64) metrics.Summary { return metrics.Summarize(xs) }

// --- Experiment harness ------------------------------------------------------

// Scale selects simulation size: ScaleTiny, ScaleSmall or ScaleFull.
type Scale = exp.Scale

// Scales.
const (
	ScaleTiny  = exp.ScaleTiny
	ScaleSmall = exp.ScaleSmall
	ScaleFull  = exp.ScaleFull
)

// HybridSpec describes one hybrid-traffic data point.
type HybridSpec = exp.HybridSpec

// IncastSpec configures the incast query stream of a HybridSpec.
type IncastSpec = exp.IncastSpec

// Result carries everything a figure/table needs from one run.
type Result = exp.Result

// RunHybrid executes one hybrid-traffic data point.
func RunHybrid(spec HybridSpec) (*Result, error) { return exp.RunHybrid(spec) }

// Harness executes figure/table runners over a bounded worker pool:
// independent grid points fan out across cores while results are collated
// in spec order, so rendered artifacts are byte-identical for any worker
// count. See exp.Harness.
type Harness = exp.Harness

// NewHarness returns an experiment harness bounded to the given worker
// count (<= 0 means GOMAXPROCS, 1 is strictly sequential).
func NewHarness(workers int) *Harness { return exp.NewHarness(workers) }

// --- Fault injection ---------------------------------------------------------

// FaultPlan describes a deterministic fault schedule: link flaps, frame
// corruption, lost PFC frames and switch blackouts.
type FaultPlan = faults.Plan

// FaultEvent is one scheduled link up/down transition in a FaultPlan.
type FaultEvent = faults.ScheduledEvent

// Blackout takes a whole switch offline for a fixed interval.
type Blackout = faults.Blackout

// FaultSpec attaches a fault plan plus detection machinery to a HybridSpec.
type FaultSpec = exp.FaultSpec

// DefaultFaultScenario returns the robustness ablation's default plan: ~1%
// link-flap duty cycle plus BER 1e-6 frame corruption during the traffic
// window.
func DefaultFaultScenario(scale Scale) *FaultSpec { return exp.DefaultFaultScenario(scale) }

// RunFaultTolerance compares all four policies under the default fault
// scenario and writes the completion/recovery and detection tables to w.
func RunFaultTolerance(scale Scale, w io.Writer) (map[string]*Result, error) {
	return exp.RunFaultTolerance(scale, w)
}

// FrameCorruptionProb converts a bit-error rate into a per-frame corruption
// probability for a frame of sizeBytes.
func FrameCorruptionProb(sizeBytes int, ber float64) float64 {
	return faults.FrameCorruptionProb(sizeBytes, ber)
}
