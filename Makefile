GO ?= go

.PHONY: all build vet test race check bench faults clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Short mode skips the slow multi-policy fault sweeps; race still covers
# every package's core paths.
race:
	$(GO) test -race -short ./...

check: vet build test race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# The robustness ablation: link flaps + BER + recovery, four policies.
faults:
	$(GO) run ./cmd/l2bmexp -exp faults -scale tiny

clean:
	$(GO) clean ./...
