GO ?= go

.PHONY: all build vet test race check bench bench-json bench-guard arena faults chaos chaos-soak scale serve speedup speedup-wheel speedup-shards trace-demo hybrid-demo hybrid-divergence clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Short mode skips the slow multi-policy fault sweeps; race still covers
# every package's core paths, including the parallel experiment scheduler
# (pool collation, cancellation, harness accounting).
race:
	$(GO) test -race -short ./...

check: vet build test race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Perf trajectory: snapshot every benchmark (ns/op, allocs/op, B/op,
# events/s) into a dated BENCH_<date>.json so the repo's performance history
# is diffable across commits. -benchtime=1x keeps the figure-level
# benchmarks (full experiment runs) tractable; allocs/op and events/s are
# stable at one iteration, ns/op is indicative only.
bench-json:
	$(GO) test -bench=. -benchmem -benchtime=1x -run=^$$ ./... \
		| $(GO) run ./cmd/benchguard -json BENCH_$$(date +%F).json

# Allocation guard: the hot-path and sharded-engine benchmarks must not
# regress allocs/op against the committed baseline (tolerance:
# baseline*1.25 + 2). This is the CI gate; -benchtime=1x keeps it fast
# (allocs/op is near-deterministic, unlike ns/op). Benchmarks without a
# baseline entry are reported as "new (no baseline)" and skipped.
bench-guard:
	$(GO) test -bench='BenchmarkAdmit$$|BenchmarkSweepWorkers|BenchmarkShardedRun|BenchmarkArenaPoint$$|BenchmarkHybridSteadyState|BenchmarkBuildHyperscale|BenchmarkColfmtWrite' -benchmem -benchtime=1x -run=^$$ ./... \
		| $(GO) run ./cmd/benchguard -baseline BENCH_BASELINE.json

# The policy arena: every registered buffer-management policy (the paper's
# four plus the related work — EDT, TDT, BShare, Occamy, FB) raced on a
# common load x burst x fault grid with the invariant auditor armed,
# emitting a ranked scorecard (table + CSV). Restrict the field with e.g.
# `go run ./cmd/l2bmexp -exp arena -policies L2BM,DT,Occamy`.
arena:
	$(GO) run ./cmd/l2bmexp -exp arena -scale tiny

# The robustness ablation: link flaps + BER + recovery, four policies.
faults:
	$(GO) run ./cmd/l2bmexp -exp faults -scale tiny

# Randomized robustness soak: fuzz scenarios (topology x workload x fault
# plan) under the global invariant auditor, shrink any failure to a minimal
# scenario and write a runnable JSON reproducer (replay one with
# `go run ./cmd/l2bmexp -exp chaos -replay repros/chaos-seed<N>.json`).
# Findings exit nonzero. Default 50 seeds; chaos-soak is the nightly size.
chaos:
	$(GO) run ./cmd/l2bmexp -exp chaos -repro-out repros

chaos-soak:
	$(GO) run ./cmd/l2bmexp -exp chaos -seeds 200 -repro-out repros

# Hyperscale smoke: build the 10,240-host pod Clos and run the short mixed
# window with the invariant auditor armed (audit violations exit nonzero),
# then check the two scheduler backends render byte-identical tables on the
# 1k-host point. CI runs the same smoke under an RSS bound and adds the
# 100k-host point.
scale:
	$(GO) build -o /tmp/l2bmexp-scale ./cmd/l2bmexp
	/tmp/l2bmexp-scale -exp scale -scale small
	@echo "== wheel vs heap determinism (scale tables must be byte-identical) =="
	@/tmp/l2bmexp-scale -exp scale -scale tiny -sched wheel | grep -vE "finished in|\(mem:" > /tmp/l2bm-scale-wheel.txt
	@/tmp/l2bmexp-scale -exp scale -scale tiny -sched heap  | grep -vE "finished in|\(mem:" > /tmp/l2bm-scale-heap.txt
	diff /tmp/l2bm-scale-wheel.txt /tmp/l2bm-scale-heap.txt && echo "byte-identical"

# The experiment daemon, with the result cache armed: submit sweeps with
# curl (see README "Service") and resubmissions come back instantly from
# the content-hash cache, byte-identical to the fresh run.
serve:
	$(GO) run ./cmd/l2bmd -addr 127.0.0.1:8080 -cache /tmp/l2bm-cache

# The timer wheel's throughput claim, gated machine-independently: both
# backends are measured in the same run and the wheel must clear >=1.5x
# heap events/s at 100k and 1M pending events (DESIGN.md §15.1).
# -benchtime is in iterations so both backends dispatch identical work.
speedup-wheel:
	$(GO) test ./internal/sim/ -run=^$$ -bench=BenchmarkWheelVsHeap -benchmem -benchtime=200000x \
		| $(GO) run ./cmd/benchguard -speedup 'wheel-100k>=1.5x heap-100k, wheel-1M>=1.5x heap-1M'

# Wall-clock speedup of the parallel scheduler: the same Fig. 7 grid
# (4 policies x 8 loads), sequential vs all cores. On a >=4-core machine
# the second run should be >=2x faster; the table output is byte-identical
# either way (only the timing trailers differ).
speedup:
	$(GO) build -o /tmp/l2bmexp-speedup ./cmd/l2bmexp
	@echo "== workers=1 (sequential baseline) =="
	time /tmp/l2bmexp-speedup -exp fig7 -scale tiny -parallel 1 > /tmp/l2bm-fig7-w1.txt
	@echo "== workers=all cores =="
	time /tmp/l2bmexp-speedup -exp fig7 -scale tiny > /tmp/l2bm-fig7-wN.txt
	@echo "== determinism check (tables must be byte-identical) =="
	@grep -vE "finished in|\(mem:" /tmp/l2bm-fig7-w1.txt > /tmp/l2bm-fig7-w1.det.txt
	@grep -vE "finished in|\(mem:" /tmp/l2bm-fig7-wN.txt > /tmp/l2bm-fig7-wN.det.txt
	diff /tmp/l2bm-fig7-w1.det.txt /tmp/l2bm-fig7-wN.det.txt && echo "byte-identical"

# Wall-clock speedup of the sharded conservative-time engine: one
# ScaleFull hybrid point (Fig. 7 headline load) on the classic sequential
# engine vs the psim conductor at 4 shards. Results are byte-identical by
# construction (see the shards-determinism CI step); only events/s moves.
# Target: >=1.8x at 4 shards on a >=4-core machine. Single-core machines
# still measure ~1.1x (four small per-shard event heaps sift cheaper than
# one large one) but cannot exhibit the parallel speedup.
speedup-shards:
	$(GO) test -bench='BenchmarkShardedRun' -benchmem -benchtime=1x -run=^$$ .

# Flight-recorder demo: re-run the Fig. 8 burst deep-dive with the trace
# recorder armed and point at the occupancy timeline CSVs (the data behind
# the paper's buffer-occupancy-during-incast plot), plus pause intervals,
# L2BM weight samples and drop/ECN events alongside.
trace-demo:
	$(GO) run ./cmd/l2bmexp -exp fig8 -scale tiny -trace -trace-out traces/fig8
	@echo "== occupancy timelines (Fig. 8) =="
	@ls traces/fig8/*-occupancy.csv
	@head -5 $$(ls traces/fig8/*-occupancy.csv | head -1)

# Hybrid-fidelity demo: the same Fig. 7 sweep on the pure packet engine and
# on the fluid-fast-forward hybrid engine (internal/fluid). Tables agree
# within the divergence bound (see hybrid-divergence); the timing trailers
# show where the speedup comes from — steady-state spans are advanced
# analytically, so the hybrid run simulates a fraction of the events.
hybrid-demo:
	$(GO) build -o /tmp/l2bmexp-hybrid ./cmd/l2bmexp
	@echo "== fidelity=packet (every MTU simulated) =="
	/tmp/l2bmexp-hybrid -exp fig7 -scale tiny -fidelity packet
	@echo "== fidelity=hybrid (fluid fast-forward + packet bursts) =="
	/tmp/l2bmexp-hybrid -exp fig7 -scale tiny -fidelity hybrid

# The divergence-bound gate CI runs: hybrid vs packet on the Fig. 3/7/8 and
# steady scenarios, epsilon-checked (p99 within 50%, drops within
# max(10, 15%), flow accounting exact — see DESIGN.md §14), plus the
# ≥10× events-equivalent/s claim on the steady window.
hybrid-divergence:
	$(GO) test ./internal/exp/ -run 'TestHybridDivergence|TestHybridSteadySpeedup|TestHybridDeterminism' -v -count=1

clean:
	$(GO) clean ./...
