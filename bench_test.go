// Benchmarks regenerating every table and figure of the paper's evaluation
// at ScaleTiny (so `go test -bench=.` completes in minutes — use
// cmd/l2bmexp for larger scales). Each benchmark reports the experiment's
// headline quantities via b.ReportMetric, so `-bench` output doubles as a
// compact results table:
//
//	go test -bench=BenchmarkFig7 -benchtime=1x
//
// The Ablation* benchmarks quantify L2BM's design choices (DESIGN.md §6).
package l2bm_test

import (
	"io"
	"sync"
	"testing"

	"l2bm"
	"l2bm/internal/core"
	"l2bm/internal/exp"
	"l2bm/internal/sim"
)

// runPoint executes one hybrid data point and reports its metrics.
func runPoint(b *testing.B, spec exp.HybridSpec) *exp.Result {
	b.Helper()
	var res *exp.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = exp.RunHybrid(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.RDMAp99(), "rdma-p99-slowdown")
	b.ReportMetric(res.TCPp99(), "tcp-p99-slowdown")
	b.ReportMetric(float64(res.PauseFrames), "pause-frames")
	b.ReportMetric(res.OccupancyP99Fraction(l2bm.DefaultSwitchConfig().TotalShared), "occ-p99-frac")
	b.ReportMetric(float64(res.Events)/b.Elapsed().Seconds()*float64(b.N), "events/s")
	return res
}

// BenchmarkFig3a regenerates the motivation occupancy comparison (TCP vs
// RDMA under the same workload).
func BenchmarkFig3a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunFig3a(exp.ScaleTiny, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3b regenerates the motivation tail-latency sweep (DT and ABM).
func BenchmarkFig3b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunFig3b(exp.ScaleTiny, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 regenerates one representative Fig. 7 grid point per
// policy at the paper's highest load; the full sweep is
// `l2bmexp -exp fig7`.
func BenchmarkFig7(b *testing.B) {
	for _, pol := range exp.PolicyNames {
		b.Run(pol, func(b *testing.B) {
			runPoint(b, exp.HybridSpec{
				Name: "fig7", Policy: pol, Scale: exp.ScaleTiny,
				RDMALoad: 0.4, TCPLoad: 0.8,
			})
		})
	}
}

// BenchmarkTable2 regenerates Table II's pause-frame counts across its load
// range for the two schemes it contrasts hardest (DT vs L2BM).
func BenchmarkTable2(b *testing.B) {
	for _, pol := range []string{"DT", "L2BM"} {
		b.Run(pol, func(b *testing.B) {
			var pauses uint64
			for i := 0; i < b.N; i++ {
				pauses = 0
				for _, load := range exp.Table2Loads {
					res, err := exp.RunHybrid(exp.HybridSpec{
						Name: "fig7", Policy: pol, Scale: exp.ScaleTiny,
						RDMALoad: 0.4, TCPLoad: load,
					})
					if err != nil {
						b.Fatal(err)
					}
					pauses += res.PauseFrames
				}
			}
			b.ReportMetric(float64(pauses), "pause-frames-total")
		})
	}
}

// BenchmarkArenaPoint prices one arena grid cell (the high-load burst
// cell, the arena's most expensive clean configuration) on the policy with
// the most machinery in the admission path: Occamy, whose preemption hook
// sits inside the MMU's drop sites. Guarded in CI via benchguard so the
// registry/preemption layers stay off the per-packet allocation path.
func BenchmarkArenaPoint(b *testing.B) {
	runPoint(b, exp.HybridSpec{
		Name: "arena", Policy: "Occamy", Scale: exp.ScaleTiny,
		RDMALoad: 0.4, TCPLoad: 0.8,
		Incast: &exp.IncastSpec{Fanout: 5, RequestBytes: 1 << 20, QueryRate: 752},
		Audit:  &exp.AuditSpec{},
	})
}

// BenchmarkSweepWorkers measures the parallel experiment scheduler on a
// multi-policy sweep (Table II's 4 policies x 5 loads): workers=1 is the
// sequential baseline, workers=0 (GOMAXPROCS) fans the independent points
// across all cores. On a >=4-core machine the parallel case should be
// >=2x faster; the collated results are identical either way (see
// exp.Pool's determinism contract and DESIGN.md §8).
func BenchmarkSweepWorkers(b *testing.B) {
	for _, tc := range []struct {
		name    string
		workers int
	}{{"sequential-1", 1}, {"parallel-all", 0}} {
		b.Run(tc.name, func(b *testing.B) {
			var events uint64
			for i := 0; i < b.N; i++ {
				h := exp.NewHarness(tc.workers)
				if _, err := h.RunTable2(exp.ScaleTiny, nil, io.Discard); err != nil {
					b.Fatal(err)
				}
				events = h.TotalEvents()
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds()*float64(b.N), "events/s")
		})
	}
}

// BenchmarkShardedRun measures the sharded conservative-time engine
// (internal/psim) against the classic sequential engine on one ScaleFull
// hybrid point (the Fig. 7 headline load: RDMA 0.4 + TCP 0.8 on the
// 128-server Clos). Results are byte-identical by construction — only
// events/s changes. Target: >= 1.8x events/s at 4 shards on a >= 4-core
// machine; single-core machines still see a modest win because four small
// per-shard event heaps are cheaper to sift than one large one, but cannot
// exhibit the parallel speedup. `make speedup-shards` runs exactly this
// benchmark.
func BenchmarkShardedRun(b *testing.B) {
	for _, tc := range []struct {
		name   string
		shards int
	}{{"sequential", 0}, {"shards4", 4}} {
		b.Run(tc.name, func(b *testing.B) {
			var events uint64
			for i := 0; i < b.N; i++ {
				res, err := exp.RunHybrid(exp.HybridSpec{
					Name: "sharded-bench", Policy: "L2BM", Scale: exp.ScaleFull,
					RDMALoad: 0.4, TCPLoad: 0.8,
					Shards: tc.shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				events = res.Events
			}
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// hybridSteadySpec is the steady-state-heavy operating point the
// hybrid-fidelity benchmark measures: light hybrid traffic (2% RDMA + 2%
// TCP) over a 40 ms window, where a packet engine grinds through ~500k
// events of uncontended elephant drain that the fluid layer fast-forwards
// analytically. Divergence on this spec is bounded by
// exp.TestHybridDivergence (the "steady" scenario).
func hybridSteadySpec(fidelity string) exp.HybridSpec {
	return exp.HybridSpec{
		Name: "steady", Policy: "L2BM", Scale: exp.ScaleTiny,
		RDMALoad: 0.02, TCPLoad: 0.02, InterRackOnly: true,
		WindowOverride: 40 * sim.Millisecond,
		Fidelity:       fidelity,
	}
}

// hybridSteadyPacketEvents lazily measures the packet engine's event count
// on the steady spec — the denominator both BenchmarkHybridSteadyState
// variants normalize against.
var hybridSteadyPacketEvents = struct {
	once   sync.Once
	events uint64
}{}

func steadyPacketEvents(b *testing.B) uint64 {
	b.Helper()
	hybridSteadyPacketEvents.once.Do(func() {
		res, err := exp.RunHybrid(hybridSteadySpec(exp.FidelityPacket))
		if err != nil {
			b.Fatal(err)
		}
		hybridSteadyPacketEvents.events = res.Events
	})
	return hybridSteadyPacketEvents.events
}

// BenchmarkHybridSteadyState prices the hybrid-fidelity engine against the
// pure packet engine on the steady spec. Both variants report
// events-equivalent/s: the PACKET engine's event count for the spec divided
// by the variant's wall time — i.e. how fast each engine retires the same
// simulated workload, in packet-engine event units. The hybrid variant's
// figure must be ≥ 10× the packet variant's (the ISSUE 8 acceptance bar;
// measured ~200× here, since this spec stays fluid end to end). Guarded in
// CI via benchguard so the fluid fast path stays allocation-light.
func BenchmarkHybridSteadyState(b *testing.B) {
	for _, tc := range []struct {
		name     string
		fidelity string
	}{{"packet", exp.FidelityPacket}, {"hybrid", exp.FidelityHybrid}} {
		b.Run(tc.name, func(b *testing.B) {
			pkEvents := steadyPacketEvents(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := exp.RunHybrid(hybridSteadySpec(tc.fidelity)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(pkEvents)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkFig8 regenerates the per-ToR occupancy CDFs at load 0.8.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunFig8(exp.ScaleTiny, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9 regenerates the high-load FCT slowdown CDFs.
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunFig9(exp.ScaleTiny, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10 regenerates the incast deep-dive (N=5) for each policy.
func BenchmarkFig10(b *testing.B) {
	for _, pol := range exp.PolicyNames {
		b.Run(pol, func(b *testing.B) {
			var res *exp.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = exp.RunHybrid(exp.HybridSpec{
					Name: "fig10", Policy: pol, Scale: exp.ScaleTiny,
					TCPLoad: 0.8,
					Incast:  &exp.IncastSpec{Fanout: 5, RequestBytes: 1 << 20, QueryRate: 752},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Incastp99(), "incast-p99-slowdown")
			b.ReportMetric(res.QueryDelaySummary().Mean, "query-mean-ms")
			b.ReportMetric(float64(res.PauseFrames), "pause-frames")
		})
	}
}

// BenchmarkFig11 regenerates the fan-in sweep (N = 5, 10, 15; clamped to
// the tiny topology's responder pool).
func BenchmarkFig11(b *testing.B) {
	for _, n := range exp.IncastFanouts {
		b.Run(map[int]string{5: "N5", 10: "N10", 15: "N15"}[n], func(b *testing.B) {
			var res *exp.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = exp.RunHybrid(exp.HybridSpec{
					Name: "fig11", Policy: "L2BM", Scale: exp.ScaleTiny,
					TCPLoad: 0.8,
					Incast:  &exp.IncastSpec{Fanout: n, RequestBytes: 1 << 20, QueryRate: 752},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Incastp99(), "incast-p99-slowdown")
			b.ReportMetric(res.QueryDelaySummary().Mean, "query-mean-ms")
		})
	}
}

// BenchmarkAblationNormalization compares L2BM's normalization constant
// choices (paper-literal sum vs mean vs max vs count).
func BenchmarkAblationNormalization(b *testing.B) {
	norms := []struct {
		name string
		n    core.Normalization
	}{
		{"sum-tau", core.NormSumTau},
		{"mean-tau", core.NormMeanTau},
		{"max-tau", core.NormMaxTau},
		{"count", core.NormCount},
	}
	for _, norm := range norms {
		b.Run(norm.name, func(b *testing.B) {
			cfg := core.DefaultL2BMConfig()
			cfg.Normalization = norm.n
			runPoint(b, exp.HybridSpec{
				Name:          "ablation-norm",
				PolicyFactory: func() core.Policy { return core.NewL2BM(cfg) },
				Scale:         exp.ScaleTiny,
				RDMALoad:      0.4, TCPLoad: 0.8,
			})
		})
	}
}

// BenchmarkAblationPauseExclusion toggles the §III-D pause-time exclusion.
func BenchmarkAblationPauseExclusion(b *testing.B) {
	for _, exclude := range []bool{true, false} {
		name := "on"
		if !exclude {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultL2BMConfig()
			cfg.ExcludePauseTime = exclude
			runPoint(b, exp.HybridSpec{
				Name:          "ablation-pause",
				PolicyFactory: func() core.Policy { return core.NewL2BM(cfg) },
				Scale:         exp.ScaleTiny,
				RDMALoad:      0.4, TCPLoad: 0.8,
			})
		})
	}
}

// BenchmarkAblationAlpha sweeps DT's control factor, exhibiting the
// pause-rate/occupancy tension L2BM's adaptive weighting escapes.
func BenchmarkAblationAlpha(b *testing.B) {
	for _, alpha := range []struct {
		name  string
		value float64
	}{{"a0625", 1.0 / 16}, {"a125", 0.125}, {"a25", 0.25}, {"a5", 0.5}, {"a1", 1.0}} {
		b.Run(alpha.name, func(b *testing.B) {
			v := alpha.value
			runPoint(b, exp.HybridSpec{
				Name:          "ablation-alpha",
				PolicyFactory: func() core.Policy { return core.NewDTAlpha(v) },
				Scale:         exp.ScaleTiny,
				RDMALoad:      0.4, TCPLoad: 0.8,
			})
		})
	}
}
