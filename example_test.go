package l2bm_test

import (
	"fmt"

	"l2bm"
)

// ExampleBuildCluster shows the minimal end-to-end flow: build the tiny
// fabric, run one RDMA transfer, and report its slowdown.
func ExampleBuildCluster() {
	eng := l2bm.NewEngine(42)
	var done l2bm.Time
	cluster, err := l2bm.BuildCluster(eng, l2bm.TinyClusterConfig(), l2bm.NewL2BMPolicy,
		func(id l2bm.FlowID, at l2bm.Time) { done = at })
	if err != nil {
		panic(err)
	}

	f := &l2bm.Flow{ID: 1, Src: 0, Dst: 7, Size: 100_000,
		Priority: l2bm.PrioLossless, Class: l2bm.ClassLossless}
	cluster.StartFlow(f)
	eng.RunAll()

	slowdown := float64(done-f.Start) / float64(cluster.IdealFCT(0, 7, 100_000))
	fmt.Printf("uncontended slowdown %.1fx\n", slowdown)
	// Output: uncontended slowdown 1.0x
}

// ExampleTxTime shows the picosecond-exact link arithmetic the simulator is
// built on.
func ExampleTxTime() {
	fmt.Println(l2bm.TxTime(1000, 25e9))  // one MTU payload at 25 Gbps
	fmt.Println(l2bm.TxTime(1000, 100e9)) // and at 100 Gbps
	// Output:
	// 320ns
	// 80ns
}

// ExampleWebSearchCDF samples the paper's heavy-tailed workload.
func ExampleWebSearchCDF() {
	cdf := l2bm.WebSearchCDF()
	fmt.Printf("mean flow ≈ %.1f MB, largest = %d MB\n",
		cdf.Mean()/1e6, cdf.MaxBytes()/1_000_000)
	// Output: mean flow ≈ 1.1 MB, largest = 20 MB
}
