package l2bm_test

import (
	"testing"

	"l2bm"
)

// TestPublicQuickstart exercises the documented facade flow end to end.
func TestPublicQuickstart(t *testing.T) {
	eng := l2bm.NewEngine(42)
	completions := make(map[l2bm.FlowID]l2bm.Time)
	cluster, err := l2bm.BuildCluster(eng, l2bm.TinyClusterConfig(), l2bm.NewL2BMPolicy,
		func(id l2bm.FlowID, at l2bm.Time) { completions[id] = at })
	if err != nil {
		t.Fatal(err)
	}

	f := &l2bm.Flow{ID: 1, Src: 0, Dst: 7, Size: 1 << 20,
		Priority: l2bm.PrioLossless, Class: l2bm.ClassLossless}
	cluster.StartFlow(f)
	eng.RunAll()

	at, ok := completions[1]
	if !ok {
		t.Fatal("flow did not complete")
	}
	ideal := cluster.IdealFCT(0, 7, 1<<20)
	slowdown := float64(at-f.Start) / float64(ideal)
	if slowdown < 0.99 || slowdown > 1.5 {
		t.Errorf("uncontended slowdown = %v, want ≈1", slowdown)
	}
}

// TestPublicPolicies checks every shipped policy constructor through the
// facade.
func TestPublicPolicies(t *testing.T) {
	for _, tc := range []struct {
		want string
		p    l2bm.Policy
	}{
		{"DT", l2bm.NewDTPolicy()},
		{"DT2", l2bm.NewDT2Policy()},
		{"ABM", l2bm.NewABMPolicy()},
		{"L2BM", l2bm.NewL2BMPolicy()},
		{"DT", l2bm.NewDTPolicyAlpha(0.25)},
		{"L2BM", l2bm.NewL2BMPolicyWith(l2bm.DefaultL2BMConfig())},
		{"EDT", l2bm.NewEDTPolicy()},
		{"TDT", l2bm.NewTDTPolicy()},
	} {
		if got := tc.p.Name(); got != tc.want {
			t.Errorf("policy name = %q, want %q", got, tc.want)
		}
	}
}

// TestPublicCustomPolicy verifies a user-defined Policy plugs in through
// the facade types alone.
func TestPublicCustomPolicy(t *testing.T) {
	static := &staticPolicy{}
	res, err := l2bm.RunHybrid(l2bm.HybridSpec{
		Name:          "facade-custom",
		PolicyFactory: func() l2bm.Policy { return static },
		Scale:         l2bm.ScaleTiny,
		RDMALoad:      0.2,
		TCPLoad:       0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "Static" {
		t.Errorf("policy name = %q", res.Policy)
	}
	if res.FlowsCompleted == 0 {
		t.Error("no flows completed under the custom policy")
	}
	if !static.sawTraffic {
		t.Error("custom policy hooks never invoked")
	}
}

type staticPolicy struct {
	sawTraffic bool
}

func (p *staticPolicy) Name() string { return "Static" }

func (p *staticPolicy) IngressThreshold(s l2bm.StateView, _, _ int) int64 {
	return s.TotalShared() / 8
}

func (p *staticPolicy) EgressThreshold(s l2bm.StateView, _, _ int) int64 {
	return s.TotalShared() / 8
}

func (p *staticPolicy) OnEnqueue(_ l2bm.StateView, _ *l2bm.Packet) { p.sawTraffic = true }
func (p *staticPolicy) OnDequeue(l2bm.StateView, *l2bm.Packet)     {}

// TestPublicWorkloadHelpers exercises the workload facade.
func TestPublicWorkloadHelpers(t *testing.T) {
	cdf := l2bm.WebSearchCDF()
	if cdf.Mean() <= 0 {
		t.Error("CDF mean must be positive")
	}
	ids := l2bm.NewIDSource()
	if ids.Next() == ids.Next() {
		t.Error("IDSource repeated an ID")
	}
	if l2bm.Percentile([]float64{1, 2, 3}, 50) != 2 {
		t.Error("Percentile facade wrong")
	}
	if s := l2bm.Summarize([]float64{1, 2, 3}); s.Mean != 2 {
		t.Error("Summarize facade wrong")
	}
	if l2bm.TxTime(1000, 25e9) != 320*l2bm.Nanosecond {
		t.Error("TxTime facade wrong")
	}
}
