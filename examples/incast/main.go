// Incast: the paper's burst deep-dive (§IV-B). A Poisson stream of fan-in
// queries — each pulling 1 MB simultaneously from N responders as lossless
// RDMA — runs over high-load TCP background traffic. The example prints the
// per-query response-time statistics of Fig. 10(b) and how they degrade as
// the fan-in degree N grows (Fig. 11).
//
// Run with:
//
//	go run ./examples/incast
package main

import (
	"fmt"
	"log"

	"l2bm"
)

func main() {
	for _, fanout := range []int{3, 5} {
		fmt.Printf("== incast fan-in N=%d over TCP background load 0.8 ==\n", fanout)
		for _, policy := range []string{"L2BM", "DT"} {
			res, err := l2bm.RunHybrid(l2bm.HybridSpec{
				Name:    "incast-example",
				Policy:  policy,
				Scale:   l2bm.ScaleTiny,
				TCPLoad: 0.8,
				Incast: &l2bm.IncastSpec{
					Fanout:       fanout,
					RequestBytes: 1 << 20, // 25% of the 4 MB switch buffer
					QueryRate:    752,     // the paper's ~376 queries per 0.5 s
				},
			})
			if err != nil {
				log.Fatal(err)
			}
			s := res.QueryDelaySummary()
			fmt.Printf("  %-4s: %d queries, response delay mean=%.2fms median=%.2fms max=%.2fms; "+
				"incast p99 slowdown=%.2f; pause frames=%d\n",
				policy, s.N, s.Mean, s.Median, s.Max, res.Incastp99(), res.PauseFrames)
		}
	}
}
