// Websearch-hybrid: the paper's headline experiment in miniature. Half the
// servers offer lossless RDMA web-search traffic, half offer lossy TCP
// web-search traffic, and the run is repeated under each buffer-management
// policy on identical workloads (common random numbers). Compare the RDMA
// tail latency, buffer occupancy and PFC pause counts across policies.
//
// Run with:
//
//	go run ./examples/websearch-hybrid
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"l2bm"
)

func main() {
	const (
		rdmaLoad = 0.4 // the paper holds RDMA at 0.4
		tcpLoad  = 0.8 // and stresses TCP up to 0.8
	)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\trdma p99\ttcp p99\tocc p99\tpause frames\tdrops")

	for _, policy := range []string{"L2BM", "DT", "DT2", "ABM"} {
		res, err := l2bm.RunHybrid(l2bm.HybridSpec{
			Name:     "websearch-example",
			Policy:   policy,
			Scale:    l2bm.ScaleTiny, // bump to ScaleSmall/ScaleFull for real comparisons
			RDMALoad: rdmaLoad,
			TCPLoad:  tcpLoad,
		})
		if err != nil {
			log.Fatal(err)
		}
		if res.LosslessViolations != 0 || res.LosslessGaps != 0 {
			log.Fatalf("%s: lossless guarantee violated", policy)
		}
		buffer := l2bm.DefaultSwitchConfig().TotalShared
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.1f%%\t%d\t%d\n",
			policy, res.RDMAp99(), res.TCPp99(),
			100*res.OccupancyP99Fraction(buffer), res.PauseFrames, res.LossyDrops)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
}
