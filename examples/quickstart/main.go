// Quickstart: build a small RDMA/TCP cluster, send one flow of each class
// across the fabric, and print their completion times.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"l2bm"
)

func main() {
	eng := l2bm.NewEngine(42)

	// Collect completions as (flow ID -> completion time).
	completions := make(map[l2bm.FlowID]l2bm.Time)
	onComplete := func(id l2bm.FlowID, at l2bm.Time) { completions[id] = at }

	// An 8-server, 5-switch Clos running the paper's L2BM policy. Each
	// switch gets its own policy instance (L2BM keeps per-switch state).
	cluster, err := l2bm.BuildCluster(eng, l2bm.TinyClusterConfig(),
		l2bm.NewL2BMPolicy, onComplete)
	if err != nil {
		log.Fatal(err)
	}

	// One RDMA (lossless, DCQCN) and one TCP (lossy, DCTCP) megabyte,
	// both crossing the core between pods.
	flows := []*l2bm.Flow{
		{ID: 1, Src: 0, Dst: 7, Size: 1 << 20, Priority: l2bm.PrioLossless, Class: l2bm.ClassLossless},
		{ID: 2, Src: 1, Dst: 6, Size: 1 << 20, Priority: l2bm.PrioLossy, Class: l2bm.ClassLossy},
	}
	for _, f := range flows {
		cluster.StartFlow(f)
	}

	eng.RunAll()

	for _, f := range flows {
		at, ok := completions[f.ID]
		if !ok {
			log.Fatalf("flow %d did not complete", f.ID)
		}
		ideal := cluster.IdealFCT(f.Src, f.Dst, f.Size)
		fmt.Printf("flow %d (%v, %d B, host %d -> %d): FCT %v, ideal %v, slowdown %.2fx\n",
			f.ID, f.Class, f.Size, f.Src, f.Dst, at-f.Start, ideal,
			float64(at-f.Start)/float64(ideal))
	}
	fmt.Printf("simulated %v in %d events\n", eng.Now(), eng.Events())
}
