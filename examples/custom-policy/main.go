// Custom-policy: plug your own buffer-management scheme into the simulator.
// The l2bm.Policy interface is the same one the paper's schemes implement;
// this example builds a naive static-threshold policy (each queue may take
// a fixed fraction of the buffer, congestion-blind) and shows how badly it
// compares against L2BM under the same hybrid workload.
//
// Run with:
//
//	go run ./examples/custom-policy
package main

import (
	"fmt"
	"log"

	"l2bm"
)

// staticPolicy grants every queue a fixed slice of the buffer — the
// pre-Choudhury-Hahne strawman. It ignores congestion entirely.
type staticPolicy struct {
	fraction float64
}

var _ l2bm.Policy = (*staticPolicy)(nil)

func (p *staticPolicy) Name() string { return "Static" }

func (p *staticPolicy) IngressThreshold(s l2bm.StateView, _, _ int) int64 {
	return int64(p.fraction * float64(s.TotalShared()))
}

func (p *staticPolicy) EgressThreshold(s l2bm.StateView, _, _ int) int64 {
	return int64(p.fraction * float64(s.TotalShared()))
}

// Static thresholds need no per-packet state.
func (p *staticPolicy) OnEnqueue(l2bm.StateView, *l2bm.Packet) {}
func (p *staticPolicy) OnDequeue(l2bm.StateView, *l2bm.Packet) {}

func main() {
	specs := []l2bm.HybridSpec{
		{
			Name:          "custom-policy-example",
			PolicyFactory: func() l2bm.Policy { return &staticPolicy{fraction: 0.1} },
			Scale:         l2bm.ScaleTiny,
			RDMALoad:      0.4,
			TCPLoad:       0.8,
		},
		{
			Name:     "custom-policy-example",
			Policy:   "L2BM",
			Scale:    l2bm.ScaleTiny,
			RDMALoad: 0.4,
			TCPLoad:  0.8,
		},
	}
	for _, spec := range specs {
		res, err := l2bm.RunHybrid(spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s: rdma p99 slowdown=%.2f tcp p99=%.2f pause frames=%d lossy drops=%d\n",
			res.Policy, res.RDMAp99(), res.TCPp99(), res.PauseFrames, res.LossyDrops)
	}
}
