package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSimCLIBasicRun(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-policy", "L2BM", "-scale", "tiny", "-rdma", "0.3", "-tcp", "0.3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"policy=L2BM", "slowdown p99", "pfc pause frames", "simulated"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q in:\n%s", want, out)
		}
	}
}

func TestSimCLIWithIncast(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-policy", "DT", "-scale", "tiny", "-tcp", "0.3", "-incast", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "incast:") {
		t.Error("incast summary missing")
	}
}

func TestSimCLIErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "nope"}, &buf); err == nil {
		t.Error("bad scale should fail")
	}
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Error("bad flag should fail")
	}
}

// TestSimCLIRejectsUnknownPolicy: an unregistered -policy must be a clean
// upfront error listing the registry, not a mid-run panic.
func TestSimCLIRejectsUnknownPolicy(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-policy", "BShar", "-scale", "tiny"}, &buf)
	if err == nil {
		t.Fatal("unknown -policy should fail")
	}
	for _, want := range []string{`unknown policy "BShar"`, "BShare", "Occamy"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	if buf.Len() != 0 {
		t.Errorf("validation failure still produced output:\n%s", buf.String())
	}
}

// TestSimCLIRunsRegistryPolicy: a related-work policy resolves through
// the registry end to end.
func TestSimCLIRunsRegistryPolicy(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-policy", "FB", "-scale", "tiny", "-tcp", "0.3"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "policy=FB") {
		t.Error("FB run missing its policy banner")
	}
}
