package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSimCLIBasicRun(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-policy", "L2BM", "-scale", "tiny", "-rdma", "0.3", "-tcp", "0.3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"policy=L2BM", "slowdown p99", "pfc pause frames", "simulated"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q in:\n%s", want, out)
		}
	}
}

func TestSimCLIWithIncast(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-policy", "DT", "-scale", "tiny", "-tcp", "0.3", "-incast", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "incast:") {
		t.Error("incast summary missing")
	}
}

func TestSimCLIErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "nope"}, &buf); err == nil {
		t.Error("bad scale should fail")
	}
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Error("bad flag should fail")
	}
}
