// Command l2bmsim runs a single hybrid-traffic scenario with custom
// parameters and prints its headline metrics — the quickest way to poke at
// one configuration.
//
// Usage:
//
//	l2bmsim -policy L2BM -scale small -rdma 0.4 -tcp 0.8
//	l2bmsim -policy DT -scale tiny -tcp 0.6 -incast 5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"l2bm/internal/core"
	"l2bm/internal/exp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "l2bmsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("l2bmsim", flag.ContinueOnError)
	policy := fs.String("policy", "L2BM", "buffer management policy (any registered name, e.g. L2BM|DT|DT2|ABM|BShare|Occamy|FB)")
	scaleName := fs.String("scale", "small", "simulation scale: tiny|small|full")
	rdma := fs.Float64("rdma", 0.4, "RDMA offered load (fraction of 25G access links)")
	tcp := fs.Float64("tcp", 0.8, "TCP offered load")
	incast := fs.Int("incast", 0, "incast fan-in degree N (0 disables the query workload)")
	seedSalt := fs.String("salt", "", "seed salt for independent repetitions")
	sched := fs.String("sched", "", "event-scheduler backend: wheel (hierarchical timer wheel; the default) or heap (plain 4-ary heap); results are byte-identical either way")
	if err := fs.Parse(args); err != nil {
		return err
	}

	scale, err := exp.ParseScale(*scaleName)
	if err != nil {
		return err
	}
	// Resolve the policy through the registry before building anything: an
	// unknown name must be a clean CLI error, not a mid-run panic.
	if _, err := core.NewPolicy(*policy); err != nil {
		return fmt.Errorf("-policy: %w", err)
	}
	switch *sched {
	case "", exp.SchedWheel, exp.SchedHeap:
	default:
		return fmt.Errorf("-sched: unknown value %q (want %s or %s)", *sched, exp.SchedWheel, exp.SchedHeap)
	}
	spec := exp.HybridSpec{
		Name:     "l2bmsim",
		Policy:   *policy,
		Scale:    scale,
		RDMALoad: *rdma,
		TCPLoad:  *tcp,
		SeedSalt: *seedSalt,
		Sched:    *sched,
	}
	if *incast > 0 {
		spec.Incast = &exp.IncastSpec{Fanout: *incast, RequestBytes: 1 << 20, QueryRate: 752}
	}

	res, err := exp.RunHybrid(spec)
	if err != nil {
		return err
	}

	buffer := scale.Topo().Switch.TotalShared
	fmt.Fprintf(w, "policy=%s scale=%s rdmaLoad=%.2f tcpLoad=%.2f\n", res.Policy, scale, *rdma, *tcp)
	fmt.Fprintf(w, "flows: started=%d completed=%d losslessGaps=%d\n",
		res.FlowsStarted, res.FlowsCompleted, res.LosslessGaps)
	fmt.Fprintf(w, "slowdown p99: rdma=%.2f tcp=%.2f\n", res.RDMAp99(), res.TCPp99())
	fmt.Fprintf(w, "ToR occupancy p99: %.1f%% of %d MB buffer\n",
		100*res.OccupancyP99Fraction(buffer), buffer>>20)
	fmt.Fprintf(w, "pfc pause frames: total=%d tor=%d agg=%d core=%d\n",
		res.PauseFrames, res.ToRPauseFrames, res.AggPauseFrames, res.CorePauseFrames)
	fmt.Fprintf(w, "lossy drops=%d lossless violations=%d ecn marks=%d\n",
		res.LossyDrops, res.LosslessViolations, res.ECNMarked)
	if spec.Incast != nil {
		s := res.QueryDelaySummary()
		fmt.Fprintf(w, "incast: flows=%d p99 slowdown=%.2f queries=%d mean=%.2fms max=%.2fms\n",
			len(res.IncastSlowdowns), res.Incastp99(), s.N, s.Mean, s.Max)
	}
	fmt.Fprintf(w, "simulated %v in %d events\n", res.EndTime, res.Events)
	return nil
}
