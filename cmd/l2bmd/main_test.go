package main

import (
	"bytes"
	"context"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

// TestDaemonServesAndShutsDown boots the daemon on an ephemeral port,
// discovers the bound address through -addr-file (the mechanism CI uses),
// probes /healthz and then shuts it down via context cancellation.
func TestDaemonServesAndShutsDown(t *testing.T) {
	addrFile := t.TempDir() + "/addr"
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-addr-file", addrFile}, &out)
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(addrFile); err == nil {
			addr = strings.TrimSpace(string(data))
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("-addr-file never appeared")
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(out.String(), "listening on") || !strings.Contains(out.String(), "shut down") {
		t.Errorf("daemon output missing lifecycle lines:\n%s", out.String())
	}
}

// TestDaemonFlagValidation: bad flags fail before binding a socket.
func TestDaemonFlagValidation(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-max-concurrent", "0"},
		{"-queue-depth", "-1"},
		{"-bogus"},
	} {
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("args %v: want error, got success", args)
		}
	}
}
