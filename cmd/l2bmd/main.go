// Command l2bmd is the long-running experiment service: an HTTP/JSON daemon
// accepting HybridSpec sweep submissions, running them on a bounded
// admission queue over the experiment worker pool, streaming per-point
// progress (NDJSON/SSE) and serving results plus columnar trace artifacts.
// A content-hash result cache makes repeated or overlapping sweeps free —
// and byte-identical to fresh runs (see internal/serve and DESIGN.md §16).
//
// Usage:
//
//	l2bmd -addr :8080 -cache /var/cache/l2bm
//	l2bmd -addr 127.0.0.1:0 -addr-file /tmp/l2bmd.addr   # tests/CI: pick a port
//
// Walkthrough:
//
//	curl -s -X POST --data @sweep.json http://localhost:8080/v1/sweeps
//	curl -s http://localhost:8080/v1/sweeps/<id>/events        # NDJSON progress
//	curl -s http://localhost:8080/v1/sweeps/<id>/result        # canonical JSON
//	curl -s "http://localhost:8080/v1/sweeps/<id>/trace?point=0" -o point0.col
//	curl -s -X DELETE http://localhost:8080/v1/sweeps/<id>     # cancel
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"l2bm/internal/serve"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "l2bmd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("l2bmd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	addrFile := fs.String("addr-file", "", "write the actual listen address to this file once bound (for :0 in tests/CI)")
	cacheDir := fs.String("cache", "", "result-cache directory (empty = caching off)")
	maxConcurrent := fs.Int("max-concurrent", 1, "sweeps simulating at once")
	queueDepth := fs.Int("queue-depth", serve.DefaultQueueDepth, "sweeps allowed to wait for a slot; beyond this, submissions get 429")
	workers := fs.Int("parallel", 0, "per-sweep worker pool size (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *maxConcurrent <= 0 {
		return fmt.Errorf("-max-concurrent must be >= 1, got %d", *maxConcurrent)
	}
	if *queueDepth < 0 {
		return fmt.Errorf("-queue-depth must be >= 0, got %d", *queueDepth)
	}

	srv, err := serve.New(serve.Config{
		MaxConcurrent: *maxConcurrent,
		QueueDepth:    *queueDepth,
		Workers:       *workers,
		CacheDir:      *cacheDir,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("-addr-file: %w", err)
		}
	}
	fmt.Fprintf(stdout, "l2bmd: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Drain politely: in-flight responses get a grace period; running
	// simulations die with the process (clients resubmit — the cache makes
	// completed points free).
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Fprintln(stdout, "l2bmd: shut down")
	return nil
}
