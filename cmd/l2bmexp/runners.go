package main

import (
	"io"

	"l2bm/internal/exp"
)

// parseScale maps the CLI flag to an exp.Scale.
func parseScale(s string) (exp.Scale, error) { return exp.ParseScale(s) }

// experimentRunners maps experiment names to their runners. A Fig. 7 sweep
// is cached so that Table II (the same grid) does not re-simulate when both
// run in one invocation.
func experimentRunners() map[string]func(exp.Scale, io.Writer) error {
	var fig7Sweep *exp.SweepResult
	var fig7Scale exp.Scale

	return map[string]func(exp.Scale, io.Writer) error{
		"fig3a": func(s exp.Scale, w io.Writer) error {
			_, err := exp.RunFig3a(s, w)
			return err
		},
		"fig3b": func(s exp.Scale, w io.Writer) error {
			_, err := exp.RunFig3b(s, w)
			return err
		},
		"fig7": func(s exp.Scale, w io.Writer) error {
			sweep, err := exp.RunFig7(s, w)
			if err == nil {
				fig7Sweep, fig7Scale = sweep, s
			}
			return err
		},
		"table2": func(s exp.Scale, w io.Writer) error {
			prior := fig7Sweep
			if fig7Scale != s {
				prior = nil
			}
			_, err := exp.RunTable2(s, prior, w)
			return err
		},
		"fig8": func(s exp.Scale, w io.Writer) error {
			_, err := exp.RunFig8(s, w)
			return err
		},
		"fig9": func(s exp.Scale, w io.Writer) error {
			_, err := exp.RunFig9(s, w)
			return err
		},
		"fig10": func(s exp.Scale, w io.Writer) error {
			_, err := exp.RunFig10(s, w)
			return err
		},
		"fig11": func(s exp.Scale, w io.Writer) error {
			_, err := exp.RunFig11(s, w)
			return err
		},
		"faults": func(s exp.Scale, w io.Writer) error {
			_, err := exp.RunFaultTolerance(s, w)
			return err
		},
	}
}
