package main

import (
	"io"

	"l2bm/internal/exp"
)

// parseScale maps the CLI flag to an exp.Scale.
func parseScale(s string) (exp.Scale, error) { return exp.ParseScale(s) }

// experimentRunners maps experiment names to their runners, all sharing
// one harness (worker pool + aggregate event accounting). A Fig. 7 sweep
// is cached so that Table II (the same grid) does not re-simulate when
// both run in one invocation.
func experimentRunners(workers int) (*exp.Harness, map[string]func(exp.Scale, io.Writer) error) {
	h := exp.NewHarness(workers)
	var fig7Sweep *exp.SweepResult
	var fig7Scale exp.Scale

	return h, map[string]func(exp.Scale, io.Writer) error{
		"fig3a": func(s exp.Scale, w io.Writer) error {
			_, err := h.RunFig3a(s, w)
			return err
		},
		"fig3b": func(s exp.Scale, w io.Writer) error {
			_, err := h.RunFig3b(s, w)
			return err
		},
		"fig7": func(s exp.Scale, w io.Writer) error {
			sweep, err := h.RunFig7(s, w)
			if err == nil {
				fig7Sweep, fig7Scale = sweep, s
			}
			return err
		},
		"table2": func(s exp.Scale, w io.Writer) error {
			prior := fig7Sweep
			if fig7Scale != s {
				prior = nil
			}
			_, err := h.RunTable2(s, prior, w)
			return err
		},
		"fig8": func(s exp.Scale, w io.Writer) error {
			_, err := h.RunFig8(s, w)
			return err
		},
		"fig9": func(s exp.Scale, w io.Writer) error {
			_, err := h.RunFig9(s, w)
			return err
		},
		"fig10": func(s exp.Scale, w io.Writer) error {
			_, err := h.RunFig10(s, w)
			return err
		},
		"fig11": func(s exp.Scale, w io.Writer) error {
			_, err := h.RunFig11(s, w)
			return err
		},
		"faults": func(s exp.Scale, w io.Writer) error {
			_, err := h.RunFaultTolerance(s, w)
			return err
		},
	}
}
