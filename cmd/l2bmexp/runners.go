package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"

	"l2bm/internal/chaos"
	"l2bm/internal/exp"
)

// parseScale maps the CLI flag to an exp.Scale.
func parseScale(s string) (exp.Scale, error) { return exp.ParseScale(s) }

// experimentOrder is the paper-figure run order (-exp all) and the
// vocabulary upfront flag validation checks against. The chaos soak and
// the hyperscale scale smoke are deliberately not part of "all": they are
// engineering harnesses, not paper artifacts (and "scale" at -scale full
// builds a 100k-host fabric).
var experimentOrder = []string{"fig3a", "fig3b", "fig7", "table2", "fig8", "fig9", "fig10", "fig11", "faults", "arena"}

// extraExperiments are runnable by name but excluded from -exp all.
var extraExperiments = []string{"scale"}

// runChaos executes the -exp chaos soak (or, with -replay, re-runs a saved
// reproducer). Findings are a nonzero exit: the soak is a CI gate.
func runChaos(opts Options, w io.Writer) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	copts := chaos.Options{
		Seeds:        opts.Seeds,
		BaseSeed:     opts.BaseSeed,
		Workers:      opts.Workers,
		PointTimeout: opts.PointTimeout,
		ReproDir:     opts.ReproDir,
		Out:          w,
	}
	if opts.Replay != "" {
		reason, err := chaos.Replay(ctx, opts.Replay, copts)
		if err != nil {
			return err
		}
		if reason != "" {
			return fmt.Errorf("reproducer %s still fails", opts.Replay)
		}
		return nil
	}
	rep, err := chaos.Run(ctx, copts)
	if err != nil {
		return err
	}
	if n := len(rep.Findings); n > 0 {
		return fmt.Errorf("chaos soak found %d failing scenario(s) out of %d seeds", n, rep.Seeds)
	}
	return nil
}

// runSpec executes a sweep-request JSON file (the l2bmd wire format) and
// writes the canonical result envelope to w — the same bytes the daemon
// serves for the same request, which is exactly what CI diffs.
func runSpec(path string, workers int, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	req, err := exp.ParseSweepRequest(data)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	pool := &exp.Pool{Workers: workers}
	results, _, err := pool.Run(ctx, len(req.Specs), func(ctx context.Context, i int) (*exp.Result, error) {
		return exp.RunHybridCtx(ctx, req.Specs[i])
	}, nil)
	if err != nil {
		return err
	}
	out, err := exp.MarshalResults(results)
	if err != nil {
		return err
	}
	_, err = w.Write(out)
	return err
}

// experimentRunners maps experiment names to their runners, all sharing
// one harness (worker pool + aggregate event accounting). A Fig. 7 sweep
// is cached so that Table II (the same grid) does not re-simulate when
// both run in one invocation.
func experimentRunners(opts Options) (*exp.Harness, map[string]func(exp.Scale, io.Writer) error) {
	h := exp.NewHarness(opts.Workers)
	var fig7Sweep *exp.SweepResult
	var fig7Scale exp.Scale

	return h, map[string]func(exp.Scale, io.Writer) error{
		"fig3a": func(s exp.Scale, w io.Writer) error {
			_, err := h.RunFig3a(s, w)
			return err
		},
		"fig3b": func(s exp.Scale, w io.Writer) error {
			_, err := h.RunFig3b(s, w)
			return err
		},
		"fig7": func(s exp.Scale, w io.Writer) error {
			sweep, err := h.RunFig7(s, w)
			if err == nil {
				fig7Sweep, fig7Scale = sweep, s
			}
			return err
		},
		"table2": func(s exp.Scale, w io.Writer) error {
			prior := fig7Sweep
			if fig7Scale != s {
				prior = nil
			}
			_, err := h.RunTable2(s, prior, w)
			return err
		},
		"fig8": func(s exp.Scale, w io.Writer) error {
			_, err := h.RunFig8(s, w)
			return err
		},
		"fig9": func(s exp.Scale, w io.Writer) error {
			_, err := h.RunFig9(s, w)
			return err
		},
		"fig10": func(s exp.Scale, w io.Writer) error {
			_, err := h.RunFig10(s, w)
			return err
		},
		"fig11": func(s exp.Scale, w io.Writer) error {
			_, err := h.RunFig11(s, w)
			return err
		},
		"faults": func(s exp.Scale, w io.Writer) error {
			_, err := h.RunFaultTolerance(s, w)
			return err
		},
		"arena": func(s exp.Scale, w io.Writer) error {
			_, err := h.RunArena(s, opts.Policies, w)
			return err
		},
		"scale": func(s exp.Scale, w io.Writer) error {
			_, err := h.RunScale(s, w)
			return err
		},
	}
}
