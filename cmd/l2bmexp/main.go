// Command l2bmexp regenerates the paper's evaluation artifacts (ICDCS'23,
// §IV): every figure and table, at a chosen simulation scale.
//
// Usage:
//
//	l2bmexp -exp fig7 -scale small
//	l2bmexp -exp all -scale full -out results.txt
//
// Experiments: fig3a fig3b fig7 table2 fig8 fig9 fig10 fig11 faults all.
// The faults experiment is a beyond-the-paper robustness ablation: link
// flaps plus frame corruption with go-back-N recovery and PFC deadlock
// detection enabled.
// Scales: tiny (seconds), small (minutes), full (paper topology; tens of
// minutes for the sweeps).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "l2bmexp:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("l2bmexp", flag.ContinueOnError)
	expName := fs.String("exp", "all", "experiment: fig3a|fig3b|fig7|table2|fig8|fig9|fig10|fig11|faults|all")
	scaleName := fs.String("scale", "small", "simulation scale: tiny|small|full")
	outPath := fs.String("out", "", "also append output to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	w := stdout
	if *outPath != "" {
		f, err := os.OpenFile(*outPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		w = io.MultiWriter(stdout, f)
	}
	return Run(*expName, *scaleName, w)
}

// Run executes one named experiment (or all) at the given scale, writing
// the tables to w. It is exported for tests.
func Run(expName, scaleName string, w io.Writer) error {
	scale, err := parseScale(scaleName)
	if err != nil {
		return err
	}

	runners := experimentRunners()
	order := []string{"fig3a", "fig3b", "fig7", "table2", "fig8", "fig9", "fig10", "fig11", "faults"}

	var selected []string
	if expName == "all" {
		selected = order
	} else {
		if _, ok := runners[expName]; !ok {
			return fmt.Errorf("unknown experiment %q", expName)
		}
		selected = []string{expName}
	}

	for _, name := range selected {
		start := time.Now()
		fmt.Fprintf(w, "\n--- running %s at scale %s ---\n", name, scaleName)
		if err := runners[name](scale, w); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(w, "(%s finished in %v)\n", name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
