// Command l2bmexp regenerates the paper's evaluation artifacts (ICDCS'23,
// §IV): every figure and table, at a chosen simulation scale.
//
// Usage:
//
//	l2bmexp -exp fig7 -scale small
//	l2bmexp -exp all -scale full -out results.txt
//	l2bmexp -exp fig7 -scale full -parallel 8 -cpuprofile cpu.pprof
//
// Experiments: fig3a fig3b fig7 table2 fig8 fig9 fig10 fig11 faults arena
// all, plus the beyond-the-paper chaos soak (see below).
// The arena experiment races every registered buffer-management policy
// (the paper's four plus the related work: EDT, TDT, BShare, Occamy, FB)
// over a common load × burst × fault grid and emits a ranked scorecard;
// -policies L2BM,DT,Occamy restricts the field.
// The faults experiment is a beyond-the-paper robustness ablation: link
// flaps plus frame corruption with go-back-N recovery and PFC deadlock
// detection enabled.
// Scales: tiny (seconds), small (minutes), full (paper topology; tens of
// minutes for the sweeps).
//
// Robustness extras:
//
//	l2bmexp -exp chaos -seeds 200 -repro-out repros
//	l2bmexp -exp chaos -replay repros/chaos-seed17.json
//	l2bmexp -exp fig7 -scale full -resume ckpt -point-timeout 5m
//
// -exp chaos fuzzes randomized scenarios (topology × hybrid workload ×
// fault plan) under the global invariant auditor, shrinks any failure to a
// minimal scenario and writes a runnable JSON reproducer; findings exit
// nonzero. -resume makes long sweeps crash-safe: completed grid points are
// checkpointed to the directory and a rerun of the same command restores
// them byte-identically instead of recomputing. -point-timeout bounds each
// point's wall clock and -keep-going records failed points without
// abandoning the rest of the grid.
//
// Independent grid points fan out across -parallel workers (default: all
// cores; 1 restores sequential execution). Tables and progress lines are
// byte-identical for any worker count — only wall clock changes. The
// timing trailer reports aggregate simulated events/s across workers.
//
// Orthogonally, -shards N runs every individual point on the sharded
// conservative-time engine (internal/psim): the Clos fabric is partitioned
// across N per-shard engines synchronized by lookahead-bounded epochs.
// Results are byte-identical to the classic engine and to every other
// legal shard count, so -shards changes only the timing trailer.
//
// -fidelity hybrid runs figure/table experiments on the hybrid-fidelity
// engine (internal/fluid): steady-state spans advance analytically, bursts
// and congestion run at full packet fidelity. Unlike -shards this changes
// results — within the divergence bound DESIGN.md §14 states — in exchange
// for order-of-magnitude speedups on steady-state-heavy windows (`make
// hybrid-demo`).
//
// -sched selects the event-scheduler backend: wheel (the default
// hierarchical timer wheel) or heap (the plain 4-ary heap it replaced).
// Both dispatch identically ordered events, so results are byte-identical;
// only the timing trailer changes (DESIGN.md §15).
//
// -exp scale is the hyperscale smoke (not part of -exp all): it builds a
// pod-structured Clos of 1k (-scale tiny), 10k (small) or 100k (full)
// hosts via topo.HyperscaleConfig and runs a short mixed window through
// the same harness, so -shards, -fidelity and -sched apply unchanged.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"l2bm/internal/core"
	"l2bm/internal/exp"
	"l2bm/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "l2bmexp:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("l2bmexp", flag.ContinueOnError)
	expName := fs.String("exp", "all", "experiment: fig3a|fig3b|fig7|table2|fig8|fig9|fig10|fig11|faults|arena|scale|all|chaos")
	scaleName := fs.String("scale", "small", "simulation scale: tiny|small|full")
	outPath := fs.String("out", "", "also append output to this file")
	parallel := fs.Int("parallel", 0, "worker pool size for independent grid points (0 = GOMAXPROCS, 1 = sequential)")
	shards := fs.Int("shards", 0, "run each point on the sharded conservative-time engine with N shards (0 = classic sequential engine); results are byte-identical for any legal N")
	fidelity := fs.String("fidelity", "", "execution engine for figure/table experiments: packet (every MTU simulated; the default) or hybrid (fluid fast-forward between bursts; results within the DESIGN.md §14 divergence bound)")
	sched := fs.String("sched", "", "event-scheduler backend: wheel (hierarchical timer wheel; the default) or heap (plain 4-ary heap); results are byte-identical either way")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	traceOn := fs.Bool("trace", false, "arm the flight recorder on every run (occupancy, pause, weight, drop/ECN timelines)")
	traceOut := fs.String("trace-out", "traces", "directory for per-run trace artifacts (with -trace)")
	traceSample := fs.Duration("trace-sample", 0, "trace sampling period (wall units, e.g. 50us; 0 = the run's occupancy period)")
	format := fs.String("format", "", "trace export format (with -trace): csv (per-channel CSVs + interleaved JSONL; the default) or col (one columnar binary .col file per point)")
	specPath := fs.String("spec", "", "run the sweep-request JSON file (the l2bmd wire format) and write the canonical result JSON to stdout, instead of a named experiment")
	resume := fs.String("resume", "", "checkpoint directory: completed grid points persist there and a rerun of the same sweep resumes instead of recomputing")
	pointTimeout := fs.Duration("point-timeout", 0, "per-point wall-clock limit (e.g. 5m; 0 = unbounded)")
	keepGoing := fs.Bool("keep-going", false, "record failed grid points and keep running the rest instead of halting on the first failure")
	policiesFlag := fs.String("policies", "", "arena: comma-separated subset of registered policies to race (default: all)")
	seeds := fs.Int("seeds", 0, "chaos: how many scenarios to fuzz (0 = 50)")
	baseSeed := fs.Int64("base-seed", 0, "chaos: scenario i uses seed base-seed+i (rotate ranges without overlap)")
	reproOut := fs.String("repro-out", "", "chaos: directory for runnable JSON reproducers of any findings")
	replay := fs.String("replay", "", "chaos: replay this reproducer file instead of fuzzing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if *parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0, got %d", *parallel)
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be >= 0, got %d", *shards)
	}
	if *traceSample < 0 {
		return fmt.Errorf("-trace-sample must be >= 0, got %v", *traceSample)
	}
	if !*traceOn && *traceSample != 0 {
		return fmt.Errorf("-trace-sample requires -trace")
	}
	if err := validateFormat(*format); err != nil {
		return err
	}
	if !*traceOn && *format != "" {
		return fmt.Errorf("-format requires -trace (it selects the trace export format)")
	}
	if *seeds < 0 {
		return fmt.Errorf("-seeds must be >= 0, got %d", *seeds)
	}
	if *pointTimeout < 0 {
		return fmt.Errorf("-point-timeout must be >= 0, got %v", *pointTimeout)
	}

	// -spec replaces the named-experiment path entirely: the file is the
	// sweep, so experiment-selection flags make no sense next to it.
	if *specPath != "" {
		for _, conflict := range []string{"exp", "scale", "trace", "resume", "fidelity", "shards", "sched"} {
			if explicit[conflict] {
				return fmt.Errorf("-spec is incompatible with -%s (the spec file pins every point's parameters)", conflict)
			}
		}
		if _, err := os.Stat(*specPath); err != nil {
			return fmt.Errorf("-spec: %w", err)
		}
	}

	// Validate the experiment selection and every output destination before
	// any work (or profile) starts: a typo'd -exp or an unwritable directory
	// must fail in milliseconds, not after a long sweep.
	if err := validateExp(*expName); err != nil {
		return err
	}
	policies, err := parsePolicies(*expName, *policiesFlag)
	if err != nil {
		return err
	}
	if *expName != "chaos" {
		for flagName, val := range map[string]string{
			"-seeds": strconv.Itoa(*seeds), "-base-seed": strconv.FormatInt(*baseSeed, 10),
		} {
			if val != "0" {
				return fmt.Errorf("%s requires -exp chaos", flagName)
			}
		}
		if *reproOut != "" || *replay != "" {
			return fmt.Errorf("-repro-out and -replay require -exp chaos")
		}
	}
	if err := validateFidelity(*expName, *fidelity, *shards); err != nil {
		return err
	}
	if err := validateSched(*sched); err != nil {
		return err
	}
	if *resume != "" {
		if !explicit["exp"] {
			return fmt.Errorf("-resume requires an explicit -exp (checkpoints are keyed per sweep; an implicit -exp all would silently mix them)")
		}
		if *expName == "chaos" {
			return fmt.Errorf("-resume does not apply to -exp chaos (reproducer files are its persistence)")
		}
		if *traceOn {
			return fmt.Errorf("-resume is incompatible with -trace (traced sweeps are not checkpointable)")
		}
		if err := ensureWritableDir("-resume", *resume); err != nil {
			return err
		}
	}
	if *traceOn {
		if err := ensureWritableDir("-trace-out", *traceOut); err != nil {
			return err
		}
	}
	if *reproOut != "" {
		if err := ensureWritableDir("-repro-out", *reproOut); err != nil {
			return err
		}
	}
	if *replay != "" {
		if _, err := os.Stat(*replay); err != nil {
			return fmt.Errorf("-replay: %w", err)
		}
	}

	w := stdout
	if *outPath != "" {
		f, err := os.OpenFile(*outPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("-out: %w", err)
		}
		defer f.Close()
		w = io.MultiWriter(stdout, f)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	opts := Options{
		Workers: *parallel, Shards: *shards, Fidelity: *fidelity, Sched: *sched, Policies: policies,
		Resume: *resume, PointTimeout: *pointTimeout, KeepGoing: *keepGoing,
		Seeds: *seeds, BaseSeed: *baseSeed, ReproDir: *reproOut, Replay: *replay,
	}
	if *traceOn {
		opts.Trace = true
		opts.TraceDir = *traceOut
		opts.TraceSample = *traceSample
		opts.TraceFormat = *format
	}
	var runErr error
	if *specPath != "" {
		runErr = runSpec(*specPath, *parallel, w)
	} else {
		runErr = RunOpts(*expName, *scaleName, opts, w)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // settle allocations so the heap profile is meaningful
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return runErr
}

// Options parameterizes RunOpts beyond the experiment/scale selection.
type Options struct {
	// Workers bounds the grid-point worker pool (0 = GOMAXPROCS).
	Workers int
	// Shards, when >= 1, runs every point on the sharded conservative-time
	// engine with that many shards (0 = classic sequential engine).
	Shards int
	// Fidelity selects the execution engine for figure/table experiments
	// ("" = packet; see exp.FidelityHybrid).
	Fidelity string
	// Sched selects the event-scheduler backend ("" = wheel; see
	// exp.SchedWheel/SchedHeap). Results are byte-identical either way.
	Sched string
	// Policies restricts the arena to this subset of registered policies
	// (nil = every registered policy, in registration order).
	Policies []string
	// Trace arms the flight recorder on every run.
	Trace bool
	// TraceDir receives the per-run CSV/JSONL trace artifacts.
	TraceDir string
	// TraceSample overrides the trace sampling period (0 = run default).
	TraceSample time.Duration
	// TraceFormat selects the trace export format ("" = csv; see
	// exp.TraceFormatCSV / exp.TraceFormatCol).
	TraceFormat string
	// Resume, when non-empty, checkpoints completed grid points to the
	// directory and resumes matching sweeps from it (see exp.Harness).
	Resume string
	// PointTimeout bounds each grid point's wall clock (0 = unbounded).
	PointTimeout time.Duration
	// KeepGoing records failed points instead of halting the grid.
	KeepGoing bool
	// Seeds, BaseSeed, ReproDir and Replay parameterize -exp chaos.
	Seeds    int
	BaseSeed int64
	ReproDir string
	Replay   string
}

// validateSched rejects unknown -sched values before any work begins. Both
// backends dispatch identically ordered events, so the flag never changes
// results — only the timing trailer.
func validateSched(sched string) error {
	switch sched {
	case "", exp.SchedWheel, exp.SchedHeap:
		return nil
	default:
		return fmt.Errorf("-sched: unknown value %q (want %s or %s)", sched, exp.SchedWheel, exp.SchedHeap)
	}
}

// validateFidelity rejects -fidelity combinations before any work begins:
// unknown values, the chaos soak (its scenarios pin their own execution
// model) and the sharded engine (the hybrid controller needs the classic
// engine). Fault-plan experiments (faults, arena, parts of all) are
// accepted: those points run at packet fidelity anyway — a fault plan is a
// standing fidelity trigger — and the fallback is recorded per point
// (Result.FidelityFallback) and summarized in the experiment trailer
// instead of being silently ignored or rejected.
func validateFidelity(expName, fidelity string, shards int) error {
	switch fidelity {
	case "":
		return nil
	case exp.FidelityPacket, exp.FidelityHybrid:
	default:
		return fmt.Errorf("-fidelity: unknown value %q (want %s or %s)",
			fidelity, exp.FidelityPacket, exp.FidelityHybrid)
	}
	if expName == "chaos" {
		return fmt.Errorf("-fidelity does not apply to -exp chaos (scenarios pin their own execution model)")
	}
	if fidelity == exp.FidelityHybrid && shards >= 1 {
		return fmt.Errorf("-fidelity hybrid requires the classic engine (drop -shards %d)", shards)
	}
	return nil
}

// validateFormat rejects unknown -format values before any work begins,
// consistent with -exp/-policy/-fidelity validation.
func validateFormat(format string) error {
	switch format {
	case "", exp.TraceFormatCSV, exp.TraceFormatCol:
		return nil
	default:
		return fmt.Errorf("-format: unknown value %q (want %s or %s)",
			format, exp.TraceFormatCSV, exp.TraceFormatCol)
	}
}

// validateExp rejects unknown -exp values before any work begins.
func validateExp(name string) error {
	if name == "all" || name == "chaos" {
		return nil
	}
	for _, n := range experimentOrder {
		if n == name {
			return nil
		}
	}
	for _, n := range extraExperiments {
		if n == name {
			return nil
		}
	}
	return fmt.Errorf("unknown experiment %q (have %s %s all chaos)",
		name, strings.Join(experimentOrder, " "), strings.Join(extraExperiments, " "))
}

// parsePolicies validates the -policies selection against the policy
// registry before any work starts: a typo'd name ("BShar") must exit
// nonzero in milliseconds, listing what the registry actually holds.
func parsePolicies(expName, csv string) ([]string, error) {
	if csv == "" {
		return nil, nil
	}
	if expName != "arena" {
		return nil, fmt.Errorf("-policies requires -exp arena")
	}
	var policies []string
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("-policies: empty policy name in %q", csv)
		}
		if !core.IsRegistered(name) {
			return nil, fmt.Errorf("-policies: unknown policy %q (have %s)",
				name, strings.Join(core.RegisteredPolicies(), " "))
		}
		policies = append(policies, name)
	}
	return policies, nil
}

// ensureWritableDir creates the directory if needed and proves it accepts
// writes, so output-path failures surface before hours of simulation.
func ensureWritableDir(flagName, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("%s: %w", flagName, err)
	}
	probe, err := os.CreateTemp(dir, ".l2bmexp-probe-*")
	if err != nil {
		return fmt.Errorf("%s: directory %s is not writable: %w", flagName, dir, err)
	}
	name := probe.Name()
	probe.Close()
	return os.Remove(name)
}

// Run executes one named experiment (or all) at the given scale with the
// given worker count (0 = GOMAXPROCS), writing the tables to w. It is
// exported for tests.
func Run(expName, scaleName string, workers int, w io.Writer) error {
	return RunOpts(expName, scaleName, Options{Workers: workers}, w)
}

// RunOpts is Run with the full option set (tracing, worker pool,
// checkpointing, chaos).
func RunOpts(expName, scaleName string, opts Options, w io.Writer) error {
	scale, err := parseScale(scaleName)
	if err != nil {
		return err
	}
	if expName == "chaos" {
		return runChaos(opts, w)
	}

	harness, runners := experimentRunners(opts)
	harness.Shards = opts.Shards
	harness.Fidelity = opts.Fidelity
	harness.Sched = opts.Sched
	harness.CheckpointDir = opts.Resume
	harness.PointTimeout = opts.PointTimeout
	harness.KeepGoing = opts.KeepGoing
	if opts.Trace {
		harness.Trace = &exp.TraceSpec{
			SampleEvery: sim.Duration(opts.TraceSample.Nanoseconds()) * sim.Nanosecond,
		}
		harness.TraceDir = opts.TraceDir
		harness.TraceFormat = opts.TraceFormat
	}

	var selected []string
	if expName == "all" {
		selected = experimentOrder
	} else {
		if _, ok := runners[expName]; !ok {
			return fmt.Errorf("unknown experiment %q", expName)
		}
		selected = []string{expName}
	}

	effective := opts.Workers
	if effective <= 0 {
		effective = runtime.GOMAXPROCS(0)
	}
	for _, name := range selected {
		start := time.Now()
		events0 := harness.TotalEvents()
		fallbacks0 := harness.FidelityFallbacks()
		mem0 := exp.TakeMemSnapshot()
		// The banner and tables are deterministic for any worker count;
		// only the timing and memory trailers below carry run-dependent
		// numbers (determinism diffs exclude both lines).
		fmt.Fprintf(w, "\n--- running %s at scale %s ---\n", name, scaleName)
		if err := runners[name](scale, w); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		wall := time.Since(start)
		events := harness.TotalEvents() - events0
		shardNote := ""
		if opts.Shards >= 1 {
			shardNote = fmt.Sprintf(", %d shards/point", opts.Shards)
		}
		if fb := harness.FidelityFallbacks() - fallbacks0; fb > 0 {
			// Deterministic for any worker count (it counts results, not
			// scheduling), so determinism diffs keep it.
			fmt.Fprintf(w, "note: %d point(s) requested hybrid fidelity but ran at packet fidelity (fault plans are a standing fidelity trigger)\n", fb)
		}
		fmt.Fprintf(w, "(%s finished in %v: %s events, %s events/s aggregate across %d workers%s)\n",
			name, wall.Round(time.Millisecond),
			siCount(float64(events)), siCount(float64(events)/wall.Seconds()), effective, shardNote)
		fmt.Fprintln(w, mem0.MemLine(events))
	}
	return nil
}

// siCount renders a count with an SI suffix (12.3M), keeping the timing
// trailer compact.
func siCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
