package main

import (
	"bytes"
	"os"
	"regexp"
	"strings"
	"testing"
)

// statFile returns the size of a file (helper for profile checks).
func statFile(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig3a", "tiny", 0, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"running fig3a", "Fig 3(a)", "finished in", "events/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunRejectsUnknownInputs(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig99", "tiny", 0, &buf); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := Run("fig7", "galactic", 0, &buf); err == nil {
		t.Error("unknown scale should fail")
	}
}

func TestCLIFlagParsing(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig3a", "-scale", "tiny"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig 3(a)") {
		t.Error("CLI run produced no table")
	}
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Error("bad flag should fail")
	}
	if err := run([]string{"-parallel", "-3"}, &buf); err == nil {
		t.Error("negative -parallel should fail")
	}
}

// TestParallelFlagDeterminism: the CLI's deterministic portion (everything
// but the timing and memory trailers) must be byte-identical for any worker
// count.
func TestParallelFlagDeterminism(t *testing.T) {
	render := func(workers int) string {
		var buf bytes.Buffer
		if err := Run("fig3a", "tiny", workers, &buf); err != nil {
			t.Fatal(err)
		}
		// Strip the only process-state-dependent lines: the wall-clock
		// timing trailer and the MemStats trailer (allocation counts shift
		// with goroutine scheduling and GC timing, by design).
		drop := regexp.MustCompile(`(?m)^\((?:.* finished in .*|mem: .*)\)$`)
		return drop.ReplaceAllString(buf.String(), "")
	}
	if a, b := render(1), render(4); a != b {
		t.Errorf("CLI output differs between workers=1 and workers=4:\n--- w1 ---\n%s\n--- w4 ---\n%s", a, b)
	}
}

func TestCLIProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := dir+"/cpu.pprof", dir+"/mem.pprof"
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig3a", "-scale", "tiny",
		"-cpuprofile", cpu, "-memprofile", mem}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		if fi, err := statFile(p); err != nil || fi <= 0 {
			t.Errorf("profile %s missing or empty (size=%d, err=%v)", p, fi, err)
		}
	}
}

func TestCLITraceFlags(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig3a", "-scale", "tiny",
		"-trace", "-trace-out", dir, "-trace-sample", "50us"}, &buf); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var csv, jsonl int
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), ".csv"):
			csv++
		case strings.HasSuffix(e.Name(), ".jsonl"):
			jsonl++
		}
	}
	if csv == 0 || jsonl == 0 {
		t.Errorf("-trace exported %d CSV and %d JSONL files, want both > 0", csv, jsonl)
	}

	if err := run([]string{"-trace-sample", "50us"}, &buf); err == nil {
		t.Error("-trace-sample without -trace should fail")
	}
	if err := run([]string{"-trace", "-trace-sample", "-1us"}, &buf); err == nil {
		t.Error("negative -trace-sample should fail")
	}
}
