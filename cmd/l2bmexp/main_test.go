package main

import (
	"bytes"
	"os"
	"regexp"
	"strings"
	"testing"
)

// statFile returns the size of a file (helper for profile checks).
func statFile(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig3a", "tiny", 0, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"running fig3a", "Fig 3(a)", "finished in", "events/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunRejectsUnknownInputs(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig99", "tiny", 0, &buf); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := Run("fig7", "galactic", 0, &buf); err == nil {
		t.Error("unknown scale should fail")
	}
}

func TestCLIFlagParsing(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig3a", "-scale", "tiny"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig 3(a)") {
		t.Error("CLI run produced no table")
	}
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Error("bad flag should fail")
	}
	if err := run([]string{"-parallel", "-3"}, &buf); err == nil {
		t.Error("negative -parallel should fail")
	}
}

// TestParallelFlagDeterminism: the CLI's deterministic portion (everything
// but the timing and memory trailers) must be byte-identical for any worker
// count.
func TestParallelFlagDeterminism(t *testing.T) {
	render := func(workers int) string {
		var buf bytes.Buffer
		if err := Run("fig3a", "tiny", workers, &buf); err != nil {
			t.Fatal(err)
		}
		// Strip the only process-state-dependent lines: the wall-clock
		// timing trailer and the MemStats trailer (allocation counts shift
		// with goroutine scheduling and GC timing, by design).
		drop := regexp.MustCompile(`(?m)^\((?:.* finished in .*|mem: .*)\)$`)
		return drop.ReplaceAllString(buf.String(), "")
	}
	if a, b := render(1), render(4); a != b {
		t.Errorf("CLI output differs between workers=1 and workers=4:\n--- w1 ---\n%s\n--- w4 ---\n%s", a, b)
	}
}

// TestCLIUpfrontValidation: every bad flag combination and unwritable
// destination must fail during validation, before any simulation (or
// profile) starts.
func TestCLIUpfrontValidation(t *testing.T) {
	blocker := t.TempDir() + "/file"
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"-exp", "fig99"},
		{"-exp", "arena", "-policies", "L2BM,BShar"}, // typo'd policy name
		{"-exp", "arena", "-policies", "nope"},
		{"-exp", "arena", "-policies", "L2BM,,DT"}, // empty element
		{"-exp", "fig7", "-policies", "L2BM"},      // -policies is arena-only
		{"-exp", "chaos", "-seeds", "-1"},
		{"-seeds", "5"},                        // -seeds without -exp chaos
		{"-base-seed", "7"},                    // ditto
		{"-repro-out", "x"},                    // ditto
		{"-replay", "x.json"},                  // ditto
		{"-exp", "arena", "-replay", "x.json"}, // -replay is chaos-only
		{"-exp", "chaos", "-replay", "nonexistent.json"},
		{"-exp", "chaos", "-resume", "ckpt"},                    // chaos has its own persistence
		{"-resume", "ckpt"},                                     // -resume needs an explicit -exp
		{"-exp", "fig7", "-fidelity", "analytic"},               // unknown fidelity
		{"-exp", "chaos", "-fidelity", "hybrid"},                // chaos pins its own engine
		{"-exp", "fig7", "-fidelity", "hybrid", "-shards", "2"}, // hybrid needs classic engine
		{"-exp", "fig3a", "-format", "col"},                     // -format requires -trace
		{"-exp", "fig3a", "-trace", "-format", "parquet"},       // unknown format
		{"-spec", "sweep.json", "-exp", "fig7"},                 // -spec pins the sweep
		{"-spec", "sweep.json", "-scale", "tiny"},               // ditto
		{"-spec", "sweep.json", "-trace"},                       // ditto
		{"-spec", "nonexistent-sweep.json"},                     // missing spec file
		{"-exp", "fig3a", "-resume", "ckpt", "-trace"},
		{"-exp", "fig3a", "-point-timeout", "-1s"},
		{"-exp", "fig3a", "-resume", blocker + "/sub"}, // unwritable
		{"-exp", "fig3a", "-trace", "-trace-out", blocker + "/sub"},
		{"-exp", "chaos", "-repro-out", blocker + "/sub"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v: want validation error, got success", args)
		}
	}
}

// TestCLIUnknownPolicyMessage: the -policies rejection must happen before
// any simulation and must list the registry so the user can fix the typo.
func TestCLIUnknownPolicyMessage(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-exp", "arena", "-scale", "tiny", "-policies", "L2BM,BShar"}, &buf)
	if err == nil {
		t.Fatal("typo'd -policies should fail")
	}
	for _, want := range []string{`unknown policy "BShar"`, "L2BM", "BShare", "Occamy", "FB"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q (should list the registry)", err, want)
		}
	}
	if buf.Len() != 0 {
		t.Errorf("validation failure still produced output:\n%s", buf.String())
	}
}

// TestCLIArenaSmoke: a restricted arena through the real CLI path emits
// the scorecard artifacts.
func TestCLIArenaSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "arena", "-scale", "tiny", "-policies", "L2BM,DT2"}, &buf); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"arena: per-cell detail", "arena: ranked scorecard",
		"arena scorecard CSV:", "arena: integrity",
		"l0.4+faults", "fault_done",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("arena output missing %q", want)
		}
	}
	if strings.Contains(out, "NaN") {
		t.Error("arena output contains NaN")
	}
}

// TestCLIChaos: a tiny soak through the real CLI path comes back clean and
// prints the summary line.
func TestCLIChaos(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "chaos", "-seeds", "3", "-parallel", "2"}, &buf); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "chaos: 3 seeds, 0 findings") {
		t.Errorf("missing soak summary:\n%s", buf.String())
	}
}

// TestCLIResume: -resume populates a checkpoint directory and a rerun of
// the identical command restores from it, with identical deterministic
// output.
func TestCLIResume(t *testing.T) {
	dir := t.TempDir()
	render := func() string {
		var buf bytes.Buffer
		if err := run([]string{"-exp", "fig3a", "-scale", "tiny", "-resume", dir}, &buf); err != nil {
			t.Fatal(err)
		}
		drop := regexp.MustCompile(`(?m)^\((?:.* finished in .*|mem: .*)\)$`)
		return drop.ReplaceAllString(buf.String(), "")
	}
	first := render()
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no checkpoint files written (err=%v)", err)
	}
	if second := render(); second != first {
		t.Errorf("resumed run diverged:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

// TestCLIFidelity: -fidelity hybrid runs a figure experiment end to end
// through the real CLI path, and the rejection messages carry a one-line
// reason naming the fix.
func TestCLIFidelity(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig3a", "-scale", "tiny", "-fidelity", "hybrid"}, &buf); err != nil {
		t.Fatalf("-fidelity hybrid on fig3a: %v", err)
	}
	if !strings.Contains(buf.String(), "running fig3a") {
		t.Errorf("hybrid run produced no experiment output:\n%s", buf.String())
	}

	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-exp", "fig7", "-fidelity", "analytic"}, `unknown value "analytic"`},
		{[]string{"-exp", "chaos", "-fidelity", "hybrid"}, "does not apply"},
		{[]string{"-exp", "fig7", "-fidelity", "hybrid", "-shards", "2"}, "classic engine"},
		{[]string{"-exp", "fig3a", "-trace", "-format", "parquet"}, `unknown value "parquet"`},
		{[]string{"-format", "col"}, "requires -trace"},
		{[]string{"-resume", "ckpt"}, "explicit -exp"},
	} {
		var out bytes.Buffer
		err := run(tc.args, &out)
		if err == nil {
			t.Errorf("args %v: want error, got success", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("args %v: error %q missing %q", tc.args, err, tc.want)
		}
		if out.Len() != 0 {
			t.Errorf("args %v: validation failure still produced output:\n%s", tc.args, out.String())
		}
	}
}

func TestCLIProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := dir+"/cpu.pprof", dir+"/mem.pprof"
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig3a", "-scale", "tiny",
		"-cpuprofile", cpu, "-memprofile", mem}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		if fi, err := statFile(p); err != nil || fi <= 0 {
			t.Errorf("profile %s missing or empty (size=%d, err=%v)", p, fi, err)
		}
	}
}

func TestCLITraceFlags(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig3a", "-scale", "tiny",
		"-trace", "-trace-out", dir, "-trace-sample", "50us"}, &buf); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var csv, jsonl int
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), ".csv"):
			csv++
		case strings.HasSuffix(e.Name(), ".jsonl"):
			jsonl++
		}
	}
	if csv == 0 || jsonl == 0 {
		t.Errorf("-trace exported %d CSV and %d JSONL files, want both > 0", csv, jsonl)
	}

	if err := run([]string{"-trace-sample", "50us"}, &buf); err == nil {
		t.Error("-trace-sample without -trace should fail")
	}
	if err := run([]string{"-trace", "-trace-sample", "-1us"}, &buf); err == nil {
		t.Error("negative -trace-sample should fail")
	}
}

// TestCLITraceColFormat: -format col swaps the CSV/JSONL trace export for
// one columnar .col artifact per point.
func TestCLITraceColFormat(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig3a", "-scale", "tiny",
		"-trace", "-trace-out", dir, "-trace-sample", "50us", "-format", "col"}, &buf); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var col, other int
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".col") {
			col++
		} else {
			other++
		}
	}
	if col == 0 {
		t.Error("-format col exported no .col files")
	}
	if other != 0 {
		t.Errorf("-format col also exported %d non-.col files", other)
	}
}

// TestCLIFidelityFallbackNote: requesting hybrid fidelity on a fault-plan
// experiment runs to completion and reports the per-point fallback in the
// experiment trailer instead of rejecting or silently ignoring the flag.
func TestCLIFidelityFallbackNote(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "faults", "-scale", "tiny", "-fidelity", "hybrid"}, &buf); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "ran at packet fidelity") {
		t.Errorf("faults+hybrid output missing the fallback note:\n%s", buf.String())
	}
}

// TestCLISpec: -spec runs a sweep-request file and emits the canonical
// result envelope — deterministically, for any worker count — which is the
// byte-level contract the daemon equivalence check in CI relies on.
func TestCLISpec(t *testing.T) {
	path := t.TempDir() + "/sweep.json"
	spec := `{"name":"cli-spec-test","specs":[
		{"Name":"p-dt","Policy":"DT","Scale":"tiny","RDMALoad":0.4,"TCPLoad":0.4},
		{"Name":"p-l2bm","Policy":"L2BM","Scale":"tiny","RDMALoad":0.4,"TCPLoad":0.4}]}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	render := func(workers string) string {
		var buf bytes.Buffer
		if err := run([]string{"-spec", path, "-parallel", workers}, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	out := render("1")
	if !strings.HasPrefix(out, `{"points":[`) || !strings.HasSuffix(out, "]}\n") {
		t.Errorf("-spec output is not the canonical envelope:\n%.200s", out)
	}
	if !strings.Contains(out, `"Policy":"DT"`) || !strings.Contains(out, `"Policy":"L2BM"`) {
		t.Errorf("envelope missing the two points' policies:\n%.200s", out)
	}
	if par := render("2"); par != out {
		t.Error("-spec output differs between -parallel 1 and -parallel 2")
	}

	bad := t.TempDir() + "/bad.json"
	if err := os.WriteFile(bad, []byte(`{"specs":[{"Name":"x","Policy":"Nope","Scale":"tiny"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-spec", bad}, &buf); err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Errorf("bad spec: want unknown-policy error, got %v", err)
	}
}
