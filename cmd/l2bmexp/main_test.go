package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig3a", "tiny", &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"running fig3a", "Fig 3(a)", "finished in"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunRejectsUnknownInputs(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig99", "tiny", &buf); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := Run("fig7", "galactic", &buf); err == nil {
		t.Error("unknown scale should fail")
	}
}

func TestCLIFlagParsing(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig3a", "-scale", "tiny"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig 3(a)") {
		t.Error("CLI run produced no table")
	}
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Error("bad flag should fail")
	}
}
