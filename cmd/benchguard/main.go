// Command benchguard parses `go test -bench` output from stdin and turns it
// into the repo's perf trajectory: with -json it emits a BENCH_<date>.json
// snapshot (name, ns/op, allocs/op, B/op, events/s per benchmark), and with
// -baseline it compares the measured allocs/op against a committed baseline
// file, exiting nonzero when any benchmark regresses beyond the tolerance.
//
// Usage:
//
//	go test -bench='BenchmarkAdmit$|BenchmarkSweepWorkers' -benchmem -benchtime=1x ./... \
//	    | go run ./cmd/benchguard -baseline BENCH_BASELINE.json
//	go test -bench=. -benchmem ./... | go run ./cmd/benchguard -json BENCH_$(date +%F).json
//
// The allocs/op guard tolerates measured <= baseline*1.25 + 2: allocation
// counts are near-deterministic but small fixed costs (map growth, one-time
// lazy init) shift by a few allocations between runs, and ratio-only bounds
// misfire on benchmarks whose baseline is ~0.
//
// Wall-clock metrics regress too, so the guard optionally covers them with
// separate, generous tolerances (disabled by default — CI machines vary):
// -ns-ratio 3 fails a benchmark whose ns/op exceeds baseline*3, and
// -events-ratio 3 fails one whose events/s falls below baseline/3.
//
// -speedup compares two benchmarks measured in the SAME run, which makes it
// machine-independent — the CI gate for "the wheel scheduler is >= 1.5x the
// heap at 100k pending" is
//
//	go test -bench BenchmarkWheelVsHeap ./internal/sim \
//	    | go run ./cmd/benchguard -speedup 'wheel-100k>=1.5x heap-100k'
//
// Each comma-separated clause FAST>=NxSLOW fails unless
// events/s(FAST) >= N * events/s(SLOW); names match a full benchmark name
// or its trailing /sub-name.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// EventsPerSec carries the custom events/s metric some benchmarks
	// report via b.ReportMetric (zero when absent).
	EventsPerSec float64 `json:"events_per_s,omitempty"`
	// Metrics carries every other custom unit a benchmark reports (e.g.
	// the hyperscale build's bytes/host), keyed by its unit string.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the BENCH_<date>.json schema.
type Snapshot struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	jsonOut := fs.String("json", "", "write a Snapshot JSON of the parsed benchmarks to this file")
	baseline := fs.String("baseline", "", "compare against this Snapshot JSON; fail on regression")
	ratio := fs.Float64("ratio", 1.25, "allocs/op tolerance ratio over baseline")
	slack := fs.Float64("slack", 2, "allocs/op absolute slack over baseline*ratio")
	nsRatio := fs.Float64("ns-ratio", 0, "when > 0, fail a benchmark whose ns/op exceeds baseline*ratio (wall-clock sensitive; keep generous)")
	eventsRatio := fs.Float64("events-ratio", 0, "when > 0, fail a benchmark whose events/s falls below baseline/ratio")
	speedup := fs.String("speedup", "", "comma-separated same-run clauses 'fast>=1.5x slow': fail unless events/s(fast) >= factor*events/s(slow)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jsonOut == "" && *baseline == "" && *speedup == "" {
		return fmt.Errorf("nothing to do: pass -json, -baseline and/or -speedup")
	}
	if *nsRatio < 0 || *eventsRatio < 0 {
		return fmt.Errorf("-ns-ratio and -events-ratio must be >= 0")
	}
	if (*nsRatio > 0 || *eventsRatio > 0) && *baseline == "" {
		return fmt.Errorf("-ns-ratio and -events-ratio require -baseline")
	}

	benches, err := parse(stdin, stdout)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}

	if *jsonOut != "" {
		snap := Snapshot{
			Date:       time.Now().UTC().Format("2006-01-02"),
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			Benchmarks: benches,
		}
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "benchguard: wrote %d benchmarks to %s\n", len(benches), *jsonOut)
	}

	if *speedup != "" {
		if err := checkSpeedups(benches, *speedup, stdout); err != nil {
			return err
		}
	}
	if *baseline != "" {
		return guard(benches, *baseline, guardOpts{
			AllocRatio: *ratio, AllocSlack: *slack,
			NsRatio: *nsRatio, EventsRatio: *eventsRatio,
		}, stdout)
	}
	return nil
}

// guardOpts bundles the per-metric tolerances: allocs/op always guards;
// ns/op and events/s only when their ratio is > 0.
type guardOpts struct {
	AllocRatio, AllocSlack float64
	NsRatio                float64
	EventsRatio            float64
}

// guard fails when any benchmark present in both the measurement and the
// baseline exceeds baseline*ratio + slack allocs/op. A benchmark absent
// from the baseline is reported as "new (no baseline)" and skipped — never
// failed — so a freshly added series (e.g. BenchmarkShardedRun) can land in
// the same commit that introduces it; the next `make bench-json` snapshot
// then seeds its baseline entry.
func guard(benches []Benchmark, baselinePath string, opts guardOpts, stdout io.Writer) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base Snapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	baseBy := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}

	var failures []string
	for _, b := range benches {
		ref, ok := baseBy[b.Name]
		if !ok {
			fmt.Fprintf(stdout, "benchguard: %s: new (no baseline), skipping\n", b.Name)
			continue
		}
		limit := ref.AllocsPerOp*opts.AllocRatio + opts.AllocSlack
		verdict := "ok"
		if b.AllocsPerOp > limit {
			verdict = "FAIL"
			failures = append(failures,
				fmt.Sprintf("%s: %.1f allocs/op > limit %.1f (baseline %.1f)",
					b.Name, b.AllocsPerOp, limit, ref.AllocsPerOp))
		}
		fmt.Fprintf(stdout, "benchguard: %s: %.1f allocs/op (baseline %.1f, limit %.1f) %s\n",
			b.Name, b.AllocsPerOp, ref.AllocsPerOp, limit, verdict)
		if opts.NsRatio > 0 && ref.NsPerOp > 0 {
			nsLimit := ref.NsPerOp * opts.NsRatio
			nsVerdict := "ok"
			if b.NsPerOp > nsLimit {
				nsVerdict = "FAIL"
				failures = append(failures,
					fmt.Sprintf("%s: %.1f ns/op > limit %.1f (baseline %.1f)",
						b.Name, b.NsPerOp, nsLimit, ref.NsPerOp))
			}
			fmt.Fprintf(stdout, "benchguard: %s: %.1f ns/op (baseline %.1f, limit %.1f) %s\n",
				b.Name, b.NsPerOp, ref.NsPerOp, nsLimit, nsVerdict)
		}
		if opts.EventsRatio > 0 && ref.EventsPerSec > 0 {
			evFloor := ref.EventsPerSec / opts.EventsRatio
			evVerdict := "ok"
			if b.EventsPerSec < evFloor {
				evVerdict = "FAIL"
				failures = append(failures,
					fmt.Sprintf("%s: %.0f events/s < floor %.0f (baseline %.0f)",
						b.Name, b.EventsPerSec, evFloor, ref.EventsPerSec))
			}
			fmt.Fprintf(stdout, "benchguard: %s: %.0f events/s (baseline %.0f, floor %.0f) %s\n",
				b.Name, b.EventsPerSec, ref.EventsPerSec, evFloor, evVerdict)
		}
	}
	if len(failures) > 0 {
		sort.Strings(failures)
		return fmt.Errorf("benchmark regression:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// speedupClause matches one 'fast>=1.5x slow' comparison.
var speedupClause = regexp.MustCompile(`^\s*(\S+)\s*>=\s*([0-9.]+)x\s*(\S+)\s*$`)

// findBench resolves a -speedup operand: an exact benchmark name, or the
// trailing /sub-name of exactly one benchmark.
func findBench(benches []Benchmark, name string) (Benchmark, error) {
	var hit Benchmark
	hits := 0
	for _, b := range benches {
		if b.Name == name || strings.HasSuffix(b.Name, "/"+name) {
			hit = b
			hits++
		}
	}
	switch hits {
	case 0:
		return Benchmark{}, fmt.Errorf("no benchmark matches %q", name)
	case 1:
		return hit, nil
	default:
		return Benchmark{}, fmt.Errorf("%d benchmarks match %q", hits, name)
	}
}

// checkSpeedups enforces same-run events/s ratios: every comma-separated
// clause FAST>=NxSLOW must hold. Both benchmarks come from the current
// parse, so the check is independent of the machine's absolute speed.
func checkSpeedups(benches []Benchmark, exprs string, stdout io.Writer) error {
	var failures []string
	for _, clause := range strings.Split(exprs, ",") {
		m := speedupClause.FindStringSubmatch(clause)
		if m == nil {
			return fmt.Errorf("-speedup: cannot parse clause %q (want 'fast>=1.5x slow')", strings.TrimSpace(clause))
		}
		factor, err := strconv.ParseFloat(m[2], 64)
		if err != nil || factor <= 0 {
			return fmt.Errorf("-speedup: bad factor in clause %q", strings.TrimSpace(clause))
		}
		fast, err := findBench(benches, m[1])
		if err != nil {
			return fmt.Errorf("-speedup: %w", err)
		}
		slow, err := findBench(benches, m[3])
		if err != nil {
			return fmt.Errorf("-speedup: %w", err)
		}
		if fast.EventsPerSec <= 0 || slow.EventsPerSec <= 0 {
			return fmt.Errorf("-speedup: %q vs %q: both benchmarks must report events/s", m[1], m[3])
		}
		got := fast.EventsPerSec / slow.EventsPerSec
		verdict := "ok"
		if got < factor {
			verdict = "FAIL"
			failures = append(failures,
				fmt.Sprintf("%s is %.2fx %s, want >= %.2fx", fast.Name, got, slow.Name, factor))
		}
		fmt.Fprintf(stdout, "benchguard: speedup %s/%s = %.2fx (want >= %.2fx) %s\n",
			fast.Name, slow.Name, got, factor, verdict)
	}
	if len(failures) > 0 {
		sort.Strings(failures)
		return fmt.Errorf("speedup gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// benchLine matches `go test -bench` result rows, e.g.
//
//	BenchmarkAdmit-8   200000   882.9 ns/op   327 B/op   5 allocs/op
//	BenchmarkSweepWorkers/parallel-all-8  2  123 ns/op  3625943 events/s  ...
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// cpuSuffix strips the trailing -<GOMAXPROCS> go test appends to benchmark
// names, so snapshots taken on machines with different core counts compare.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parse scans stdin for benchmark rows, echoing every line through to stdout
// so the guard composes with plain log capture in CI.
func parse(r io.Reader, echo io.Writer) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: cpuSuffix.ReplaceAllString(m[1], ""), Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			case "events/s":
				b.EventsPerSec = v
			default:
				// Any other b.ReportMetric unit (bytes/host, ...) lands in
				// the open-ended metrics map so snapshots keep it.
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
		out = append(out, b)
	}
	return out, sc.Err()
}
