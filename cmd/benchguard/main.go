// Command benchguard parses `go test -bench` output from stdin and turns it
// into the repo's perf trajectory: with -json it emits a BENCH_<date>.json
// snapshot (name, ns/op, allocs/op, B/op, events/s per benchmark), and with
// -baseline it compares the measured allocs/op against a committed baseline
// file, exiting nonzero when any benchmark regresses beyond the tolerance.
//
// Usage:
//
//	go test -bench='BenchmarkAdmit$|BenchmarkSweepWorkers' -benchmem -benchtime=1x ./... \
//	    | go run ./cmd/benchguard -baseline BENCH_BASELINE.json
//	go test -bench=. -benchmem ./... | go run ./cmd/benchguard -json BENCH_$(date +%F).json
//
// The allocs/op guard tolerates measured <= baseline*1.25 + 2: allocation
// counts are near-deterministic but small fixed costs (map growth, one-time
// lazy init) shift by a few allocations between runs, and ratio-only bounds
// misfire on benchmarks whose baseline is ~0.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// EventsPerSec carries the custom events/s metric some benchmarks
	// report via b.ReportMetric (zero when absent).
	EventsPerSec float64 `json:"events_per_s,omitempty"`
}

// Snapshot is the BENCH_<date>.json schema.
type Snapshot struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	jsonOut := fs.String("json", "", "write a Snapshot JSON of the parsed benchmarks to this file")
	baseline := fs.String("baseline", "", "compare allocs/op against this Snapshot JSON; fail on regression")
	ratio := fs.Float64("ratio", 1.25, "allocs/op tolerance ratio over baseline")
	slack := fs.Float64("slack", 2, "allocs/op absolute slack over baseline*ratio")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jsonOut == "" && *baseline == "" {
		return fmt.Errorf("nothing to do: pass -json and/or -baseline")
	}

	benches, err := parse(stdin, stdout)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}

	if *jsonOut != "" {
		snap := Snapshot{
			Date:       time.Now().UTC().Format("2006-01-02"),
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			Benchmarks: benches,
		}
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "benchguard: wrote %d benchmarks to %s\n", len(benches), *jsonOut)
	}

	if *baseline != "" {
		return guard(benches, *baseline, *ratio, *slack, stdout)
	}
	return nil
}

// guard fails when any benchmark present in both the measurement and the
// baseline exceeds baseline*ratio + slack allocs/op. A benchmark absent
// from the baseline is reported as "new (no baseline)" and skipped — never
// failed — so a freshly added series (e.g. BenchmarkShardedRun) can land in
// the same commit that introduces it; the next `make bench-json` snapshot
// then seeds its baseline entry.
func guard(benches []Benchmark, baselinePath string, ratio, slack float64, stdout io.Writer) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base Snapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	baseBy := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}

	var failures []string
	for _, b := range benches {
		ref, ok := baseBy[b.Name]
		if !ok {
			fmt.Fprintf(stdout, "benchguard: %s: new (no baseline), skipping\n", b.Name)
			continue
		}
		limit := ref.AllocsPerOp*ratio + slack
		verdict := "ok"
		if b.AllocsPerOp > limit {
			verdict = "FAIL"
			failures = append(failures,
				fmt.Sprintf("%s: %.1f allocs/op > limit %.1f (baseline %.1f)",
					b.Name, b.AllocsPerOp, limit, ref.AllocsPerOp))
		}
		fmt.Fprintf(stdout, "benchguard: %s: %.1f allocs/op (baseline %.1f, limit %.1f) %s\n",
			b.Name, b.AllocsPerOp, ref.AllocsPerOp, limit, verdict)
	}
	if len(failures) > 0 {
		sort.Strings(failures)
		return fmt.Errorf("allocs/op regression:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// benchLine matches `go test -bench` result rows, e.g.
//
//	BenchmarkAdmit-8   200000   882.9 ns/op   327 B/op   5 allocs/op
//	BenchmarkSweepWorkers/parallel-all-8  2  123 ns/op  3625943 events/s  ...
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// cpuSuffix strips the trailing -<GOMAXPROCS> go test appends to benchmark
// names, so snapshots taken on machines with different core counts compare.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parse scans stdin for benchmark rows, echoing every line through to stdout
// so the guard composes with plain log capture in CI.
func parse(r io.Reader, echo io.Writer) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: cpuSuffix.ReplaceAllString(m[1], ""), Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			case "events/s":
				b.EventsPerSec = v
			}
		}
		out = append(out, b)
	}
	return out, sc.Err()
}
