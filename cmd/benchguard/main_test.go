package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: l2bm/internal/switchsim
BenchmarkAdmit-8   	  200000	       431.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkSweepWorkers/sequential-8         	       2	1168284528 ns/op	   5627306 events/s	16520620 B/op	   75067 allocs/op
PASS
ok  	l2bm/internal/switchsim	0.197s
`

func TestParseStripsCPUSuffixAndReadsMetrics(t *testing.T) {
	var echo bytes.Buffer
	benches, err := parse(strings.NewReader(sample), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(benches))
	}
	a := benches[0]
	if a.Name != "BenchmarkAdmit" || a.NsPerOp != 431.1 || a.AllocsPerOp != 0 {
		t.Errorf("admit row mangled: %+v", a)
	}
	b := benches[1]
	if b.Name != "BenchmarkSweepWorkers/sequential" {
		t.Errorf("cpu suffix not stripped: %q", b.Name)
	}
	if b.EventsPerSec != 5627306 || b.AllocsPerOp != 75067 || b.BytesPerOp != 16520620 {
		t.Errorf("sweep metrics mangled: %+v", b)
	}
	// parse must echo every input line through for CI log capture.
	if echo.String() != sample {
		t.Error("parse did not echo stdin verbatim")
	}
}

func writeBaseline(t *testing.T, allocs float64) string {
	t.Helper()
	snap := Snapshot{Benchmarks: []Benchmark{
		{Name: "BenchmarkAdmit", AllocsPerOp: allocs},
	}}
	buf, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(p, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGuardPassesWithinTolerance(t *testing.T) {
	base := writeBaseline(t, 4)
	benches := []Benchmark{
		{Name: "BenchmarkAdmit", AllocsPerOp: 6}, // limit = 4*1.25+2 = 7
		{Name: "BenchmarkNew", AllocsPerOp: 999}, // absent from baseline: skipped
	}
	if err := guard(benches, base, 1.25, 2, &bytes.Buffer{}); err != nil {
		t.Fatalf("guard failed within tolerance: %v", err)
	}
}

// TestGuardReportsNewBenchmarks: a benchmark present in the run but absent
// from the baseline must be announced as "new (no baseline)" and must not
// fail the guard, even with an outrageous allocation count — otherwise a
// freshly added series could never land before its baseline exists.
func TestGuardReportsNewBenchmarks(t *testing.T) {
	base := writeBaseline(t, 4)
	var out bytes.Buffer
	benches := []Benchmark{
		{Name: "BenchmarkShardedRun/shards-4", AllocsPerOp: 1e9},
	}
	if err := guard(benches, base, 1.25, 2, &out); err != nil {
		t.Fatalf("guard failed on a baseline-less benchmark: %v", err)
	}
	want := "BenchmarkShardedRun/shards-4: new (no baseline), skipping"
	if !strings.Contains(out.String(), want) {
		t.Errorf("guard output %q does not report %q", out.String(), want)
	}
}

func TestGuardFailsOnRegression(t *testing.T) {
	base := writeBaseline(t, 4)
	benches := []Benchmark{{Name: "BenchmarkAdmit", AllocsPerOp: 8}} // > 7
	err := guard(benches, base, 1.25, 2, &bytes.Buffer{})
	if err == nil {
		t.Fatal("guard passed an allocs/op regression")
	}
	if !strings.Contains(err.Error(), "BenchmarkAdmit") {
		t.Errorf("failure does not name the benchmark: %v", err)
	}
}

func TestRunWritesSnapshot(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH.json")
	if err := run([]string{"-json", out}, strings.NewReader(sample), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 2 || snap.GoVersion == "" || snap.Date == "" {
		t.Errorf("snapshot incomplete: %+v", snap)
	}
}

func TestRunRequiresAnAction(t *testing.T) {
	if err := run(nil, strings.NewReader(sample), &bytes.Buffer{}); err == nil {
		t.Fatal("run with no flags should fail")
	}
}
