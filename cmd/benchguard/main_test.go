package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: l2bm/internal/switchsim
BenchmarkAdmit-8   	  200000	       431.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkSweepWorkers/sequential-8         	       2	1168284528 ns/op	   5627306 events/s	16520620 B/op	   75067 allocs/op
PASS
ok  	l2bm/internal/switchsim	0.197s
`

func TestParseStripsCPUSuffixAndReadsMetrics(t *testing.T) {
	var echo bytes.Buffer
	benches, err := parse(strings.NewReader(sample), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(benches))
	}
	a := benches[0]
	if a.Name != "BenchmarkAdmit" || a.NsPerOp != 431.1 || a.AllocsPerOp != 0 {
		t.Errorf("admit row mangled: %+v", a)
	}
	b := benches[1]
	if b.Name != "BenchmarkSweepWorkers/sequential" {
		t.Errorf("cpu suffix not stripped: %q", b.Name)
	}
	if b.EventsPerSec != 5627306 || b.AllocsPerOp != 75067 || b.BytesPerOp != 16520620 {
		t.Errorf("sweep metrics mangled: %+v", b)
	}
	// parse must echo every input line through for CI log capture.
	if echo.String() != sample {
		t.Error("parse did not echo stdin verbatim")
	}
}

func writeBaseline(t *testing.T, allocs float64) string {
	t.Helper()
	snap := Snapshot{Benchmarks: []Benchmark{
		{Name: "BenchmarkAdmit", AllocsPerOp: allocs},
	}}
	buf, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(p, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGuardPassesWithinTolerance(t *testing.T) {
	base := writeBaseline(t, 4)
	benches := []Benchmark{
		{Name: "BenchmarkAdmit", AllocsPerOp: 6}, // limit = 4*1.25+2 = 7
		{Name: "BenchmarkNew", AllocsPerOp: 999}, // absent from baseline: skipped
	}
	if err := guard(benches, base, guardOpts{AllocRatio: 1.25, AllocSlack: 2}, &bytes.Buffer{}); err != nil {
		t.Fatalf("guard failed within tolerance: %v", err)
	}
}

// TestGuardReportsNewBenchmarks: a benchmark present in the run but absent
// from the baseline must be announced as "new (no baseline)" and must not
// fail the guard, even with an outrageous allocation count — otherwise a
// freshly added series could never land before its baseline exists.
func TestGuardReportsNewBenchmarks(t *testing.T) {
	base := writeBaseline(t, 4)
	var out bytes.Buffer
	benches := []Benchmark{
		{Name: "BenchmarkShardedRun/shards-4", AllocsPerOp: 1e9},
	}
	if err := guard(benches, base, guardOpts{AllocRatio: 1.25, AllocSlack: 2}, &out); err != nil {
		t.Fatalf("guard failed on a baseline-less benchmark: %v", err)
	}
	want := "BenchmarkShardedRun/shards-4: new (no baseline), skipping"
	if !strings.Contains(out.String(), want) {
		t.Errorf("guard output %q does not report %q", out.String(), want)
	}
}

func TestGuardFailsOnRegression(t *testing.T) {
	base := writeBaseline(t, 4)
	benches := []Benchmark{{Name: "BenchmarkAdmit", AllocsPerOp: 8}} // > 7
	err := guard(benches, base, guardOpts{AllocRatio: 1.25, AllocSlack: 2}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("guard passed an allocs/op regression")
	}
	if !strings.Contains(err.Error(), "BenchmarkAdmit") {
		t.Errorf("failure does not name the benchmark: %v", err)
	}
}

func TestRunWritesSnapshot(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH.json")
	if err := run([]string{"-json", out}, strings.NewReader(sample), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 2 || snap.GoVersion == "" || snap.Date == "" {
		t.Errorf("snapshot incomplete: %+v", snap)
	}
}

func TestRunRequiresAnAction(t *testing.T) {
	if err := run(nil, strings.NewReader(sample), &bytes.Buffer{}); err == nil {
		t.Fatal("run with no flags should fail")
	}
}

// writeFullBaseline stores ns/op and events/s alongside allocs so the
// wall-clock guards have something to compare against.
func writeFullBaseline(t *testing.T) string {
	t.Helper()
	snap := Snapshot{Benchmarks: []Benchmark{
		{Name: "BenchmarkAdmit", AllocsPerOp: 4, NsPerOp: 100, EventsPerSec: 1e6},
	}}
	buf, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(p, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGuardNsAndEventsRatios(t *testing.T) {
	base := writeFullBaseline(t)
	opts := guardOpts{AllocRatio: 1.25, AllocSlack: 2, NsRatio: 3, EventsRatio: 3}

	ok := []Benchmark{{Name: "BenchmarkAdmit", AllocsPerOp: 4, NsPerOp: 250, EventsPerSec: 5e5}}
	if err := guard(ok, base, opts, &bytes.Buffer{}); err != nil {
		t.Fatalf("guard failed within ns/events tolerance: %v", err)
	}

	slowNs := []Benchmark{{Name: "BenchmarkAdmit", AllocsPerOp: 4, NsPerOp: 301, EventsPerSec: 1e6}}
	err := guard(slowNs, base, opts, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "ns/op") {
		t.Fatalf("guard missed the ns/op regression: %v", err)
	}

	slowEv := []Benchmark{{Name: "BenchmarkAdmit", AllocsPerOp: 4, NsPerOp: 100, EventsPerSec: 3e5}}
	err = guard(slowEv, base, opts, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "events/s") {
		t.Fatalf("guard missed the events/s regression: %v", err)
	}

	// With the ratios disabled (zero), the same rows pass: wall-clock
	// guarding is opt-in.
	off := guardOpts{AllocRatio: 1.25, AllocSlack: 2}
	if err := guard(slowEv, base, off, &bytes.Buffer{}); err != nil {
		t.Fatalf("disabled ratios still failed: %v", err)
	}
}

func TestCheckSpeedups(t *testing.T) {
	benches := []Benchmark{
		{Name: "BenchmarkWheelVsHeap/heap-100k", EventsPerSec: 2e6},
		{Name: "BenchmarkWheelVsHeap/wheel-100k", EventsPerSec: 4e6},
	}
	if err := checkSpeedups(benches, "wheel-100k>=1.5x heap-100k", &bytes.Buffer{}); err != nil {
		t.Fatalf("2x speedup failed a 1.5x gate: %v", err)
	}
	err := checkSpeedups(benches, "wheel-100k>=2.5x heap-100k", &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "want >= 2.50x") {
		t.Fatalf("2x speedup passed a 2.5x gate: %v", err)
	}
	// Multiple clauses: the second one fails.
	err = checkSpeedups(benches,
		"wheel-100k>=1.5x heap-100k, heap-100k>=1.1x wheel-100k", &bytes.Buffer{})
	if err == nil {
		t.Fatal("inverted clause passed")
	}
	if err := checkSpeedups(benches, "nope>=1.5x heap-100k", &bytes.Buffer{}); err == nil {
		t.Fatal("unknown operand passed")
	}
	if err := checkSpeedups(benches, "garbage", &bytes.Buffer{}); err == nil {
		t.Fatal("unparseable clause passed")
	}
	twins := []Benchmark{
		{Name: "BenchmarkA/run", EventsPerSec: 1},
		{Name: "BenchmarkB/run", EventsPerSec: 2},
		{Name: "BenchmarkC/other", EventsPerSec: 3},
	}
	if err := checkSpeedups(twins, "run>=1.0x other", &bytes.Buffer{}); err == nil {
		t.Fatal("ambiguous operand (matches two sub-names) passed")
	}
}

func TestParseCapturesCustomMetrics(t *testing.T) {
	const line = "BenchmarkBuildHyperscale/10k-8  3  1234 ns/op  2899 bytes/host  100 B/op  5 allocs/op\n"
	benches, err := parse(strings.NewReader(line), &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1", len(benches))
	}
	if got := benches[0].Metrics["bytes/host"]; got != 2899 {
		t.Errorf("bytes/host = %v, want 2899 (metrics: %v)", got, benches[0].Metrics)
	}
}
