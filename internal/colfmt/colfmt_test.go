package colfmt

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// TestRoundTrip drives every column kind through a write→decode cycle and
// demands exact reproduction, including the adversarial values varint/delta
// encodings get wrong when mishandled (negative deltas, MinInt64, NaN bit
// patterns, empty strings, duplicate dictionary entries).
func TestRoundTrip(t *testing.T) {
	times := []int64{0, 5, 5, 100, 99, math.MaxInt64, math.MinInt64, -1, 0}
	ints := []int64{0, -1, 1, math.MaxInt64, math.MinInt64, 42, -42, 1 << 40, -(1 << 40), 7}[:len(times)]
	uints := []uint64{0, 1, math.MaxUint64, 1 << 63, 127, 128, 16383, 16384, 5}
	floats := []float64{0, -0.0, 1.5, math.Inf(1), math.Inf(-1), math.NaN(), math.SmallestNonzeroFloat64, -1e300, 3.14159}
	strs := []string{"tor0", "", "tor0", "agg1", "コア", "tor0", "agg1", "x", ""}

	f := NewFile()
	f.Channel("mixed").
		Time("at_ps", times).
		Int("signed", ints).
		Uint("unsigned", uints).
		Float("real", floats).
		Str("name", strs)
	f.Channel("empty")

	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	d, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got := d.Channels(); !reflect.DeepEqual(got, []string{"mixed", "empty"}) {
		t.Fatalf("Channels() = %v", got)
	}
	c := d.Channel("mixed")
	if c == nil || c.Rows() != len(times) {
		t.Fatalf("mixed channel missing or wrong rows")
	}
	if got, err := c.Ints("at_ps"); err != nil || !reflect.DeepEqual(got, times) {
		t.Errorf("times: %v / %v", got, err)
	}
	if got, err := c.Ints("signed"); err != nil || !reflect.DeepEqual(got, ints) {
		t.Errorf("ints: %v / %v", got, err)
	}
	if got, err := c.Uints("unsigned"); err != nil || !reflect.DeepEqual(got, uints) {
		t.Errorf("uints: %v / %v", got, err)
	}
	got, err := c.Floats("real")
	if err != nil || len(got) != len(floats) {
		t.Fatalf("floats: %v / %v", got, err)
	}
	for i := range floats {
		if math.Float64bits(got[i]) != math.Float64bits(floats[i]) {
			t.Errorf("float row %d: %v != %v (bits differ)", i, got[i], floats[i])
		}
	}
	if got, err := c.Strs("name"); err != nil || !reflect.DeepEqual(got, strs) {
		t.Errorf("strs: %v / %v", got, err)
	}
	if e := d.Channel("empty"); e == nil || e.Rows() != 0 {
		t.Errorf("empty channel missing or non-zero rows")
	}
	if d.Channel("absent") != nil {
		t.Errorf("absent channel should be nil")
	}
}

// TestDeterministic: equal inputs must serialize byte-identically — colfmt
// artifacts are diffed in CI like the CSVs they replace.
func TestDeterministic(t *testing.T) {
	build := func() []byte {
		f := NewFile()
		f.Channel("c").Time("t", []int64{1, 2, 3}).Str("s", []string{"b", "a", "b"})
		var buf bytes.Buffer
		if _, err := f.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("two identical writes produced different bytes")
	}
}

// TestWriteErrors: ragged channels and duplicate names must refuse to
// serialize rather than write an unreadable file.
func TestWriteErrors(t *testing.T) {
	f := NewFile()
	f.Channel("ragged").Int("a", []int64{1, 2}).Int("b", []int64{1})
	if _, err := f.WriteTo(&bytes.Buffer{}); err == nil {
		t.Error("ragged channel did not error")
	}
	f = NewFile()
	f.Channel("dup")
	f.Channel("dup")
	if _, err := f.WriteTo(&bytes.Buffer{}); err == nil {
		t.Error("duplicate channel did not error")
	}
}

// TestKindMismatch: reading a column as the wrong kind is an error, not a
// garbage decode.
func TestKindMismatch(t *testing.T) {
	f := NewFile()
	f.Channel("c").Float("x", []float64{1})
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Channel("c").Ints("x"); err == nil {
		t.Error("Ints on a float column did not error")
	}
	if _, err := d.Channel("c").Floats("missing"); err == nil {
		t.Error("missing column did not error")
	}
}

// TestCorruption fuzzes structural damage: truncations and random byte
// flips must surface as Decode/read errors or wrong values — never a panic
// or out-of-range access.
func TestCorruption(t *testing.T) {
	f := NewFile()
	f.Channel("c").
		Time("t", []int64{10, 20, 30, 40}).
		Str("s", []string{"a", "bb", "a", "ccc"}).
		Uint("u", []uint64{1, 2, 3, 4})
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	for cut := 0; cut < len(good); cut += 3 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("truncation at %d panicked: %v", cut, r)
				}
			}()
			d, err := Decode(good[:cut])
			if err != nil || d == nil {
				return
			}
			c := d.Channel("c")
			if c == nil {
				return
			}
			c.Ints("t")
			c.Strs("s")
			c.Uints("u")
		}()
	}

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		bad := append([]byte(nil), good...)
		bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("bit flip trial %d panicked: %v", trial, r)
				}
			}()
			d, err := Decode(bad)
			if err != nil || d == nil {
				return
			}
			c := d.Channel("c")
			if c == nil {
				return
			}
			c.Ints("t")
			c.Strs("s")
			c.Uints("u")
		}()
	}
}
