// Package colfmt is the hand-rolled columnar binary container for trace and
// metrics telemetry: the export path sized for hyperscale runs, where the
// row-wise CSVs repeat every switch name and re-render every timestamp in
// decimal. A file holds named channels (one per telemetry stream), each a
// set of typed columns stored back-to-back as independently decodable
// blocks, followed by a JSON footer carrying the schema and byte offsets —
// so a reader can open one column of one channel without touching the rest.
//
// Layout:
//
//	magic "L2CF"                                  (4 bytes)
//	column block … column block                   (back-to-back, no padding)
//	footer JSON {"version":1,"channels":[…]}      (schema + offsets)
//	footer length                                 (uint32 little-endian)
//	tail magic "L2CF"                             (4 bytes)
//
// The trailing length + magic let a reader locate the footer from the end
// of the file without scanning, the classic self-describing-container
// trick. Column encodings:
//
//	time:  per-row delta from the previous row, zigzag-varint (first row
//	       absolute). Timestamps are near-sorted, so deltas are tiny.
//	int:   zigzag-varint per row (signed, small-magnitude friendly).
//	uint:  varint per row.
//	float: IEEE 754 bits, 8 bytes little-endian per row (exactness over
//	       compression — these carry computed weights).
//	str:   dictionary: varint entry count, then each entry as varint
//	       length + bytes (in first-appearance order), then one varint
//	       dictionary index per row. Switch-name columns have a handful of
//	       distinct values over millions of rows.
//
// Writing is deterministic: equal inputs produce byte-identical files
// (dictionary order is first appearance, footer JSON field order is fixed
// by the struct), so colfmt artifacts diff as cleanly as the CSVs they
// replace.
package colfmt

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Version is the container version baked into the footer; readers refuse
// files from a different major layout.
const Version = 1

var magic = [4]byte{'L', '2', 'C', 'F'}

// Column kinds as written to the footer schema.
const (
	KindTime  = "time"
	KindInt   = "int"
	KindUint  = "uint"
	KindFloat = "float"
	KindStr   = "str"
)

// File is a columnar file under construction. Build channels with Channel,
// then serialize once with WriteTo. The zero value is an empty file.
type File struct {
	channels []*Channel
}

// NewFile returns an empty file builder.
func NewFile() *File { return &File{} }

// Channel appends a new named channel and returns it for column chaining:
//
//	f.Channel("trace/occupancy").
//	    Time("at_ps", ats).Str("switch", names).Int("resident", res)
//
// Channel names must be unique per file; WriteTo rejects duplicates.
func (f *File) Channel(name string) *Channel {
	c := &Channel{name: name, rows: -1}
	f.channels = append(f.channels, c)
	return c
}

// Channel is one telemetry stream: a row count and a set of equally long
// typed columns.
type Channel struct {
	name string
	rows int // -1 until the first column fixes it
	cols []col
	err  error // first column-length mismatch, surfaced by WriteTo
}

type col struct {
	name string
	kind string
	data []byte
}

func (c *Channel) add(name, kind string, rows int, data []byte) *Channel {
	if c.rows == -1 {
		c.rows = rows
	} else if rows != c.rows && c.err == nil {
		c.err = fmt.Errorf("colfmt: channel %s: column %s has %d rows, want %d",
			c.name, name, rows, c.rows)
	}
	c.cols = append(c.cols, col{name: name, kind: kind, data: data})
	return c
}

// Time appends a delta+zigzag-varint encoded timestamp column.
func (c *Channel) Time(name string, vals []int64) *Channel {
	var buf []byte
	var prev int64
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range vals {
		n := binary.PutUvarint(tmp[:], zigzag(v-prev))
		buf = append(buf, tmp[:n]...)
		prev = v
	}
	return c.add(name, KindTime, len(vals), buf)
}

// Int appends a zigzag-varint encoded signed column.
func (c *Channel) Int(name string, vals []int64) *Channel {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range vals {
		n := binary.PutUvarint(tmp[:], zigzag(v))
		buf = append(buf, tmp[:n]...)
	}
	return c.add(name, KindInt, len(vals), buf)
}

// Uint appends a varint encoded unsigned column.
func (c *Channel) Uint(name string, vals []uint64) *Channel {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range vals {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	return c.add(name, KindUint, len(vals), buf)
}

// Float appends a fixed-width 8-byte little-endian IEEE 754 column.
func (c *Channel) Float(name string, vals []float64) *Channel {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return c.add(name, KindFloat, len(vals), buf)
}

// Str appends a dictionary-encoded string column.
func (c *Channel) Str(name string, vals []string) *Channel {
	var dict []string
	idx := make(map[string]uint64)
	rows := make([]uint64, len(vals))
	for i, v := range vals {
		j, ok := idx[v]
		if !ok {
			j = uint64(len(dict))
			idx[v] = j
			dict = append(dict, v)
		}
		rows[i] = j
	}
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(dict)))
	buf = append(buf, tmp[:n]...)
	for _, s := range dict {
		n := binary.PutUvarint(tmp[:], uint64(len(s)))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, s...)
	}
	for _, j := range rows {
		n := binary.PutUvarint(tmp[:], j)
		buf = append(buf, tmp[:n]...)
	}
	return c.add(name, KindStr, len(vals), buf)
}

// Footer schema types; field order here fixes the footer's JSON layout.
type footer struct {
	Version  int             `json:"version"`
	Channels []footerChannel `json:"channels"`
}

type footerChannel struct {
	Name    string      `json:"name"`
	Rows    int         `json:"rows"`
	Columns []footerCol `json:"columns"`
}

type footerCol struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Off  int64  `json:"off"`
	Len  int64  `json:"len"`
}

// WriteTo serializes the file: magic, every channel's column blocks
// back-to-back, the JSON footer, its length and the tail magic. It
// implements io.WriterTo.
func (f *File) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	if _, err := cw.Write(magic[:]); err != nil {
		return cw.n, err
	}
	seen := make(map[string]bool, len(f.channels))
	ft := footer{Version: Version}
	for _, c := range f.channels {
		if c.err != nil {
			return cw.n, c.err
		}
		if seen[c.name] {
			return cw.n, fmt.Errorf("colfmt: duplicate channel %s", c.name)
		}
		seen[c.name] = true
		rows := c.rows
		if rows < 0 {
			rows = 0
		}
		fc := footerChannel{Name: c.name, Rows: rows}
		for _, col := range c.cols {
			fc.Columns = append(fc.Columns, footerCol{
				Name: col.name, Kind: col.kind, Off: cw.n, Len: int64(len(col.data)),
			})
			if _, err := cw.Write(col.data); err != nil {
				return cw.n, err
			}
		}
		ft.Channels = append(ft.Channels, fc)
	}
	fj, err := json.Marshal(ft)
	if err != nil {
		return cw.n, err
	}
	if _, err := cw.Write(fj); err != nil {
		return cw.n, err
	}
	var tail [8]byte
	binary.LittleEndian.PutUint32(tail[:4], uint32(len(fj)))
	copy(tail[4:], magic[:])
	if _, err := cw.Write(tail[:]); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Decoded is a parsed columnar file ready for column reads.
type Decoded struct {
	data     []byte
	channels []footerChannel
	byName   map[string]*footerChannel
}

// Decode parses a serialized file. The returned Decoded aliases data;
// column reads decode lazily from it.
func Decode(data []byte) (*Decoded, error) {
	if len(data) < len(magic)*2+4 {
		return nil, fmt.Errorf("colfmt: file too short (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != magic {
		return nil, fmt.Errorf("colfmt: bad leading magic %q", data[:4])
	}
	if [4]byte(data[len(data)-4:]) != magic {
		return nil, fmt.Errorf("colfmt: bad tail magic %q", data[len(data)-4:])
	}
	flen := int64(binary.LittleEndian.Uint32(data[len(data)-8 : len(data)-4]))
	fend := int64(len(data)) - 8
	fstart := fend - flen
	if fstart < int64(len(magic)) {
		return nil, fmt.Errorf("colfmt: footer length %d exceeds file", flen)
	}
	var ft footer
	if err := json.Unmarshal(data[fstart:fend], &ft); err != nil {
		return nil, fmt.Errorf("colfmt: footer: %w", err)
	}
	if ft.Version != Version {
		return nil, fmt.Errorf("colfmt: file version %d, reader speaks %d", ft.Version, Version)
	}
	d := &Decoded{data: data, channels: ft.Channels, byName: make(map[string]*footerChannel, len(ft.Channels))}
	for i := range d.channels {
		c := &d.channels[i]
		for _, col := range c.Columns {
			if col.Off < int64(len(magic)) || col.Off+col.Len > fstart {
				return nil, fmt.Errorf("colfmt: channel %s column %s block [%d,%d) escapes the data region",
					c.Name, col.Name, col.Off, col.Off+col.Len)
			}
		}
		d.byName[c.Name] = c
	}
	return d, nil
}

// Channels lists the channel names in file order.
func (d *Decoded) Channels() []string {
	names := make([]string, len(d.channels))
	for i, c := range d.channels {
		names[i] = c.Name
	}
	return names
}

// Channel returns the named channel's reader, or nil when absent.
func (d *Decoded) Channel(name string) *ChannelReader {
	c, ok := d.byName[name]
	if !ok {
		return nil
	}
	return &ChannelReader{d: d, c: c}
}

// ChannelReader reads one channel's columns.
type ChannelReader struct {
	d *Decoded
	c *footerChannel
}

// Rows returns the channel's row count.
func (r *ChannelReader) Rows() int { return r.c.Rows }

// Columns lists the channel's column names in file order.
func (r *ChannelReader) Columns() []string {
	names := make([]string, len(r.c.Columns))
	for i, col := range r.c.Columns {
		names[i] = col.Name
	}
	return names
}

func (r *ChannelReader) find(name string, kinds ...string) (footerCol, error) {
	for _, col := range r.c.Columns {
		if col.Name != name {
			continue
		}
		for _, k := range kinds {
			if col.Kind == k {
				return col, nil
			}
		}
		return footerCol{}, fmt.Errorf("colfmt: channel %s column %s is kind %s, want %v",
			r.c.Name, name, col.Kind, kinds)
	}
	return footerCol{}, fmt.Errorf("colfmt: channel %s has no column %s", r.c.Name, name)
}

func (r *ChannelReader) block(col footerCol) []byte {
	return r.d.data[col.Off : col.Off+col.Len]
}

// Ints decodes a time or int column as signed values.
func (r *ChannelReader) Ints(name string) ([]int64, error) {
	col, err := r.find(name, KindTime, KindInt)
	if err != nil {
		return nil, err
	}
	buf := r.block(col)
	out := make([]int64, r.c.Rows)
	var prev int64
	for i := range out {
		u, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("colfmt: channel %s column %s: truncated varint at row %d", r.c.Name, name, i)
		}
		buf = buf[n:]
		v := unzigzag(u)
		if col.Kind == KindTime {
			v += prev
			prev = v
		}
		out[i] = v
	}
	return out, nil
}

// Uints decodes an unsigned column.
func (r *ChannelReader) Uints(name string) ([]uint64, error) {
	col, err := r.find(name, KindUint)
	if err != nil {
		return nil, err
	}
	buf := r.block(col)
	out := make([]uint64, r.c.Rows)
	for i := range out {
		u, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("colfmt: channel %s column %s: truncated varint at row %d", r.c.Name, name, i)
		}
		buf = buf[n:]
		out[i] = u
	}
	return out, nil
}

// Floats decodes a float column.
func (r *ChannelReader) Floats(name string) ([]float64, error) {
	col, err := r.find(name, KindFloat)
	if err != nil {
		return nil, err
	}
	buf := r.block(col)
	if int64(8*r.c.Rows) != col.Len {
		return nil, fmt.Errorf("colfmt: channel %s column %s: %d bytes for %d rows", r.c.Name, name, col.Len, r.c.Rows)
	}
	out := make([]float64, r.c.Rows)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}

// Strs decodes a dictionary-encoded string column.
func (r *ChannelReader) Strs(name string) ([]string, error) {
	col, err := r.find(name, KindStr)
	if err != nil {
		return nil, err
	}
	buf := r.block(col)
	nd, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, fmt.Errorf("colfmt: channel %s column %s: truncated dictionary count", r.c.Name, name)
	}
	buf = buf[n:]
	if nd > uint64(col.Len) {
		return nil, fmt.Errorf("colfmt: channel %s column %s: dictionary count %d exceeds block", r.c.Name, name, nd)
	}
	dict := make([]string, nd)
	for i := range dict {
		l, n := binary.Uvarint(buf)
		if n <= 0 || uint64(len(buf)-n) < l {
			return nil, fmt.Errorf("colfmt: channel %s column %s: truncated dictionary entry %d", r.c.Name, name, i)
		}
		buf = buf[n:]
		dict[i] = string(buf[:l])
		buf = buf[l:]
	}
	out := make([]string, r.c.Rows)
	for i := range out {
		j, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("colfmt: channel %s column %s: truncated index at row %d", r.c.Name, name, i)
		}
		buf = buf[n:]
		if j >= nd {
			return nil, fmt.Errorf("colfmt: channel %s column %s: row %d index %d out of dictionary (%d entries)",
				r.c.Name, name, i, j, nd)
		}
		out[i] = dict[j]
	}
	return out, nil
}

// zigzag maps signed to unsigned so small magnitudes of either sign stay
// short under varint.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
