package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/transport"
)

func mkFlow(id pkt.FlowID, class pkt.Class, start sim.Time) *transport.Flow {
	return &transport.Flow{ID: id, Src: 0, Dst: 1, Size: 1000, Class: class, Start: start}
}

func TestFCTRecorderLifecycle(t *testing.T) {
	r := NewFCTRecorder()
	f := mkFlow(1, pkt.ClassLossless, 10*sim.Microsecond)
	r.Started(f, 5*sim.Microsecond)
	r.Completed(1, 30*sim.Microsecond)

	started, completed := r.Counts()
	if started != 1 || completed != 1 {
		t.Fatalf("counts = %d/%d, want 1/1", started, completed)
	}
	recs := r.Records(pkt.ClassLossless)
	if len(recs) != 1 {
		t.Fatal("no record")
	}
	if recs[0].FCT() != 20*sim.Microsecond {
		t.Errorf("FCT = %v, want 20us", recs[0].FCT())
	}
	if got := recs[0].Slowdown(); got != 4 {
		t.Errorf("slowdown = %v, want 4", got)
	}
}

func TestFCTRecorderClassFiltering(t *testing.T) {
	r := NewFCTRecorder()
	for i := pkt.FlowID(1); i <= 4; i++ {
		class := pkt.ClassLossless
		if i%2 == 0 {
			class = pkt.ClassLossy
		}
		f := mkFlow(i, class, 0)
		r.Started(f, sim.Microsecond)
		r.Completed(i, sim.Time(i)*sim.Microsecond)
	}
	if got := len(r.Slowdowns(pkt.ClassLossless)); got != 2 {
		t.Errorf("lossless slowdowns = %d, want 2", got)
	}
	if got := len(r.Slowdowns(pkt.ClassLossy)); got != 2 {
		t.Errorf("lossy slowdowns = %d, want 2", got)
	}
	if got := len(r.Slowdowns(0)); got != 4 {
		t.Errorf("all slowdowns = %d, want 4", got)
	}
	if got := len(r.FCTs(0)); got != 4 {
		t.Errorf("FCTs = %d, want 4", got)
	}
}

func TestFCTRecorderIgnoresUnknownAndDuplicate(t *testing.T) {
	r := NewFCTRecorder()
	r.Completed(99, sim.Microsecond) // unknown: no panic
	f := mkFlow(1, pkt.ClassLossy, 0)
	r.Started(f, sim.Microsecond)
	r.Completed(1, 2*sim.Microsecond)
	r.Completed(1, 99*sim.Microsecond) // duplicate: first wins
	if got := r.Records(0)[0].FCT(); got != 2*sim.Microsecond {
		t.Errorf("FCT = %v, duplicate completion overwrote", got)
	}
}

func TestFCTRecorderIncompleteExcluded(t *testing.T) {
	r := NewFCTRecorder()
	r.Started(mkFlow(1, pkt.ClassLossy, 0), sim.Microsecond)
	if len(r.Slowdowns(0)) != 0 {
		t.Error("incomplete flow leaked into slowdowns")
	}
	_, completed := r.Counts()
	if completed != 0 {
		t.Error("incomplete counted as completed")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{100, 10},
		{50, 5.5},
		{25, 3.25},
		{99, 9.91},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v, want 0 (never NaN)", got)
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("singleton P99 = %v, want 7", got)
	}
}

// TestPercentileEdgeCases pins the documented linear-interpolation
// convention (rank = p/100·(n−1), interpolating between the two closest
// order statistics — not nearest-rank) and the zero-on-empty contract:
// an empty series must never produce NaN, because NaN poisons any
// downstream ranked sort (every comparison is false).
func TestPercentileEdgeCases(t *testing.T) {
	for _, p := range []float64{-5, 0, 50, 99, 100, 250} {
		if got := Percentile(nil, p); got != 0 || math.IsNaN(got) {
			t.Errorf("empty Percentile(nil, %v) = %v, want 0", p, got)
		}
		if got := Percentile([]float64{}, p); got != 0 || math.IsNaN(got) {
			t.Errorf("empty Percentile([], %v) = %v, want 0", p, got)
		}
		if got := PercentileSorted(nil, p); got != 0 || math.IsNaN(got) {
			t.Errorf("empty PercentileSorted(nil, %v) = %v, want 0", p, got)
		}
	}
	// Single element: every p returns it.
	for _, p := range []float64{-5, 0, 37, 50, 100, 250} {
		if got := Percentile([]float64{42}, p); got != 42 {
			t.Errorf("singleton P%v = %v, want 42", p, got)
		}
	}
	// Two elements: p interpolates linearly between them.
	two := []float64{10, 20}
	for _, tt := range []struct{ p, want float64 }{
		{0, 10}, {25, 12.5}, {50, 15}, {75, 17.5}, {100, 20},
		{-1, 10}, {101, 20}, // out-of-range clamps
	} {
		if got := Percentile(two, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("two-element P%v = %v, want %v", tt.p, got, tt.want)
		}
	}
}

// TestPercentileSortedMatchesPercentile: the sorted fast path and the
// copying path must agree exactly on sorted input.
func TestPercentileSortedMatchesPercentile(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 3, 7, 2, 8}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for p := 0.0; p <= 100; p += 12.5 {
		if a, b := Percentile(xs, p), PercentileSorted(sorted, p); a != b {
			t.Errorf("P%v: Percentile=%v PercentileSorted=%v", p, a, b)
		}
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := Percentile(xs, pa), Percentile(xs, pb)
		lo, hi := Percentile(xs, 0), Percentile(xs, 100)
		return va <= vb && lo <= va && vb <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if s.Mean != 5 {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	if math.Abs(s.Std-2) > 1e-9 {
		t.Errorf("std = %v, want 2", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Errorf("median = %v, want 4.5", s.Median)
	}
	empty := Summarize(nil)
	if empty != (Summary{}) {
		t.Errorf("empty summary should be the zero value, got %+v", empty)
	}
}

// TestSummarizeEdgeCases: empty and single-sample series must produce a
// fully zero-valued (empty) or NaN-free (singleton) Summary — every field
// finite so downstream scorecard sorts stay total orders.
func TestSummarizeEdgeCases(t *testing.T) {
	checkFinite := func(name string, s Summary) {
		t.Helper()
		for field, v := range map[string]float64{
			"Mean": s.Mean, "Std": s.Std, "Min": s.Min, "Max": s.Max,
			"P25": s.P25, "Median": s.Median, "P75": s.P75,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: %s = %v, want finite", name, field, v)
			}
		}
	}
	checkFinite("empty", Summarize(nil))
	checkFinite("empty-nonnil", Summarize([]float64{}))

	one := Summarize([]float64{42})
	checkFinite("singleton", one)
	if one.N != 1 || one.Mean != 42 || one.Std != 0 ||
		one.Min != 42 || one.Max != 42 ||
		one.P25 != 42 || one.Median != 42 || one.P75 != 42 {
		t.Errorf("singleton summary wrong: %+v", one)
	}
}

// TestSummarizeSingleSortEquivalence: the single-sort quartile path must
// agree with computing each percentile independently, without mutating the
// input.
func TestSummarizeSingleSortEquivalence(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7, 2, 8, 6, 4}
	orig := append([]float64(nil), xs...)
	s := Summarize(xs)
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatal("Summarize mutated its input")
		}
	}
	if s.P25 != Percentile(xs, 25) || s.Median != Percentile(xs, 50) || s.P75 != Percentile(xs, 75) {
		t.Errorf("quartiles diverge from Percentile: %+v", s)
	}
	if s.Min != 1 || s.Max != 9 {
		t.Errorf("min/max from sorted copy wrong: %+v", s)
	}
}

func TestEmpiricalCDF(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	pts := EmpiricalCDF(xs, 10)
	if len(pts) != 10 {
		t.Fatalf("points = %d, want 10", len(pts))
	}
	if pts[9].Value != 100 || pts[9].Frac != 1 {
		t.Errorf("last point = %+v, want (100, 1)", pts[9])
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].Value <= pts[j].Value }) {
		t.Error("CDF values not sorted")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Frac <= pts[i-1].Frac {
			t.Error("CDF fractions not increasing")
		}
	}
	if pts[0].Value != 1 {
		t.Errorf("first point = %+v, want the sample minimum 1", pts[0])
	}
	if EmpiricalCDF(nil, 10) != nil {
		t.Error("empty input should yield nil")
	}
	if got := EmpiricalCDF([]float64{1, 2}, 10); len(got) != 2 {
		t.Errorf("n > len should clamp: got %d points", len(got))
	}
}

// TestEmpiricalCDFEdgeCases pins the well-formedness contract on the
// degenerate inputs: n ≤ 1, n > len(xs), single samples, and heavy ties
// must all yield a monotone CDF ending at (max, 1) — or nil only on empty.
func TestEmpiricalCDFEdgeCases(t *testing.T) {
	checkWellFormed := func(t *testing.T, pts []CDFPoint, min, max float64) {
		t.Helper()
		if len(pts) == 0 {
			t.Fatal("no points for non-empty input")
		}
		if pts[0].Value != min {
			t.Errorf("first point %+v, want Value %g", pts[0], min)
		}
		last := pts[len(pts)-1]
		if last.Value != max || last.Frac != 1 {
			t.Errorf("last point %+v, want (%g, 1)", last, max)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Value < pts[i-1].Value {
				t.Errorf("Value not monotone at %d: %+v after %+v", i, pts[i], pts[i-1])
			}
			if pts[i].Frac <= pts[i-1].Frac {
				t.Errorf("Frac not strictly increasing at %d: %+v after %+v", i, pts[i], pts[i-1])
			}
		}
	}

	xs := []float64{5, 1, 3, 2, 4}
	for _, n := range []int{-1, 0, 1} {
		pts := EmpiricalCDF(xs, n)
		if len(pts) != 2 {
			t.Errorf("n=%d: got %d points, want 2 (min and max)", n, len(pts))
		}
		checkWellFormed(t, pts, 1, 5)
	}

	if pts := EmpiricalCDF(xs, 100); len(pts) != len(xs) {
		t.Errorf("n > len(xs): got %d points, want %d", len(pts), len(xs))
	} else {
		checkWellFormed(t, pts, 1, 5)
	}

	single := EmpiricalCDF([]float64{7}, 10)
	if len(single) != 1 || single[0] != (CDFPoint{Value: 7, Frac: 1}) {
		t.Errorf("single sample: got %+v, want [(7, 1)]", single)
	}
	if single = EmpiricalCDF([]float64{7}, 0); len(single) != 1 || single[0].Frac != 1 {
		t.Errorf("single sample with n=0: got %+v, want [(7, 1)]", single)
	}

	// All-ties input: Frac must still strictly increase (no duplicate
	// coordinates), and every Value is the tie.
	ties := EmpiricalCDF([]float64{2, 2, 2, 2}, 4)
	checkWellFormed(t, ties, 2, 2)

	if EmpiricalCDF(nil, 0) != nil || EmpiricalCDF([]float64{}, 5) != nil {
		t.Error("empty input must yield nil for every n")
	}
}

func TestSamplerPolls(t *testing.T) {
	eng := sim.NewEngine(1)
	v := int64(0)
	eng.Schedule(5*sim.Millisecond, func() { v = 42 })
	s := NewSampler(eng, sim.Millisecond, func() int64 { return v })
	s.Start(10 * sim.Millisecond)
	eng.RunAll()

	if len(s.Samples) != 10 {
		t.Fatalf("samples = %d, want 10", len(s.Samples))
	}
	if s.Samples[0].At != sim.Millisecond {
		t.Errorf("first sample at %v, want 1ms", s.Samples[0].At)
	}
	if s.Samples[3].Value != 0 || s.Samples[5].Value != 42 {
		t.Error("sampler did not observe the gauge transition")
	}
	if got := s.Values(); len(got) != 10 || got[9] != 42 {
		t.Error("Values() extraction wrong")
	}
}

func TestSamplerStop(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewSampler(eng, sim.Millisecond, func() int64 { return 1 })
	s.Start(100 * sim.Millisecond)
	eng.Schedule(3500*sim.Microsecond, s.Stop)
	eng.RunAll()
	if len(s.Samples) != 3 {
		t.Errorf("samples = %d after early stop, want 3", len(s.Samples))
	}
}

func TestSamplerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on zero interval")
		}
	}()
	NewSampler(sim.NewEngine(1), 0, func() int64 { return 0 })
}

func TestSlowdownNaNOnZeroIdeal(t *testing.T) {
	rec := &FlowRecord{Flow: transport.Flow{Start: 0}, Ideal: 0, End: sim.Microsecond, Done: true}
	if !math.IsNaN(rec.Slowdown()) {
		t.Error("zero ideal should yield NaN slowdown")
	}
}
