// Package metrics collects and summarizes what the paper's evaluation
// reports: flow completion times normalized to an ideal baseline (FCT
// slowdown), percentiles and CDFs, periodic buffer-occupancy traces, and
// query-latency summaries with the error-bar statistics of Fig. 10(b).
package metrics

import (
	"fmt"
	"math"
	"sort"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/transport"
)

// FlowRecord is one flow's lifecycle.
type FlowRecord struct {
	Flow  transport.Flow
	Ideal sim.Duration
	End   sim.Time
	Done  bool
}

// FCT returns the measured completion time (valid when Done).
func (r *FlowRecord) FCT() sim.Duration { return r.End - r.Flow.Start }

// Slowdown returns FCT normalized by the ideal FCT on an empty network.
func (r *FlowRecord) Slowdown() float64 {
	if r.Ideal <= 0 {
		return math.NaN()
	}
	return float64(r.FCT()) / float64(r.Ideal)
}

// FCTRecorder matches flow starts with completions. It is single-threaded
// like the engine.
type FCTRecorder struct {
	flows map[pkt.FlowID]*FlowRecord

	// orphans holds completions that arrived before (or without) a Started
	// record. In a sequential run these are flows of an unobserved traffic
	// class; in a sharded run a flow Started on its source host's shard
	// recorder while its completion fires on the destination's, so the
	// orphan is matched to its start when the per-shard recorders are
	// Merged. Only the first completion per ID is retained.
	orphans map[pkt.FlowID]sim.Time
}

// NewFCTRecorder returns an empty recorder.
func NewFCTRecorder() *FCTRecorder {
	return &FCTRecorder{
		flows:   make(map[pkt.FlowID]*FlowRecord),
		orphans: make(map[pkt.FlowID]sim.Time),
	}
}

// Started records a flow at launch with its precomputed ideal FCT.
func (r *FCTRecorder) Started(f *transport.Flow, ideal sim.Duration) {
	r.flows[f.ID] = &FlowRecord{Flow: *f, Ideal: ideal}
}

// Completed records the flow's last-byte arrival. A completion for a flow
// this recorder never saw start is parked as an orphan so a later Merge
// can match it with the start recorded on another shard.
func (r *FCTRecorder) Completed(id pkt.FlowID, at sim.Time) {
	rec, ok := r.flows[id]
	if !ok {
		if _, dup := r.orphans[id]; !dup {
			r.orphans[id] = at
		}
		return
	}
	if rec.Done {
		return
	}
	// Started may run before the host stamps Flow.Start; both happen at
	// the same instant, so backfill defensively.
	rec.End = at
	rec.Done = true
}

// Orphans returns the number of completions still unmatched with a start.
func (r *FCTRecorder) Orphans() int { return len(r.orphans) }

// sortedFlowIDs returns the recorder's started-flow IDs ascending.
func (r *FCTRecorder) sortedFlowIDs() []pkt.FlowID {
	ids := make([]pkt.FlowID, 0, len(r.flows))
	for id := range r.flows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// sortedOrphanIDs returns the recorder's orphaned-completion IDs ascending.
func (r *FCTRecorder) sortedOrphanIDs() []pkt.FlowID {
	ids := make([]pkt.FlowID, 0, len(r.orphans))
	for id := range r.orphans {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Merge returns a new recorder holding the union of r and every other
// recorder: flow records are unioned by pkt.FlowID (two recorders claiming
// the same started flow is a wiring bug, so a duplicate ID panics — IDs
// are visited in sorted order, making the panic deterministic), and orphan
// completions from any input are matched against starts from any other, so
// per-shard recorders — where a flow starts on the source host's shard and
// completes on the destination's — collate into exactly the record set a
// sequential run produces. Inputs are not mutated; records are copied.
func (r *FCTRecorder) Merge(others ...*FCTRecorder) *FCTRecorder {
	out := NewFCTRecorder()
	all := make([]*FCTRecorder, 0, 1+len(others))
	all = append(all, r)
	all = append(all, others...)
	for _, src := range all {
		if src == nil {
			continue
		}
		for _, id := range src.sortedFlowIDs() {
			if _, dup := out.flows[id]; dup {
				panic(fmt.Sprintf("metrics: flow %d started in two recorders passed to Merge", id))
			}
			rec := *src.flows[id]
			out.flows[id] = &rec
		}
	}
	for _, src := range all {
		if src == nil {
			continue
		}
		for _, id := range src.sortedOrphanIDs() {
			at := src.orphans[id]
			if rec, ok := out.flows[id]; ok {
				if !rec.Done {
					rec.End = at
					rec.Done = true
				}
				continue
			}
			if _, dup := out.orphans[id]; !dup {
				out.orphans[id] = at
			}
		}
	}
	return out
}

// Counts returns (started, completed) totals.
func (r *FCTRecorder) Counts() (started, completed int) {
	for _, rec := range r.flows {
		started++
		if rec.Done {
			completed++
		}
	}
	return started, completed
}

// Slowdowns returns the slowdown of every completed flow of class c
// (any class if c == 0), sorted ascending.
func (r *FCTRecorder) Slowdowns(c pkt.Class) []float64 {
	var out []float64
	for _, rec := range r.flows {
		if rec.Done && (c == 0 || rec.Flow.Class == c) {
			out = append(out, rec.Slowdown())
		}
	}
	sort.Float64s(out)
	return out
}

// FCTs returns the completion times of completed flows of class c (any
// class if c == 0), sorted ascending.
func (r *FCTRecorder) FCTs(c pkt.Class) []sim.Duration {
	var out []sim.Duration
	for _, rec := range r.flows {
		if rec.Done && (c == 0 || rec.Flow.Class == c) {
			out = append(out, rec.FCT())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Records returns completed flow records of class c (any class if c == 0).
func (r *FCTRecorder) Records(c pkt.Class) []*FlowRecord {
	var out []*FlowRecord
	for _, rec := range r.flows {
		if rec.Done && (c == 0 || rec.Flow.Class == c) {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Flow.ID < out[j].Flow.ID })
	return out
}

// IncompleteRecords returns records of flows that started but never
// completed, sorted by flow ID. Empty in a healthy run; under fault
// injection it identifies exactly which transfers were lost.
func (r *FCTRecorder) IncompleteRecords() []*FlowRecord {
	var out []*FlowRecord
	for _, rec := range r.flows {
		if !rec.Done {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Flow.ID < out[j].Flow.ID })
	return out
}

// sortedCopy returns an ascending copy of xs, leaving xs untouched.
func sortedCopy(xs []float64) []float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return sorted
}

// Percentile returns the p-th percentile (0–100) of sorted-or-not xs by
// linear interpolation between the two closest order statistics (the
// rank is p/100·(n−1); numpy's default convention — not nearest-rank).
// p outside [0, 100] clamps to min/max; 0 for empty input — an empty
// sample set (e.g. an arena cell where a policy dropped every flow of
// one class) must yield a zero-valued statistic, never NaN, because NaN
// compares false against everything and silently poisons ranked sorts.
// xs is copied, never mutated. Callers holding an already-sorted sample
// set should use PercentileSorted to skip the copy and re-sort.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return PercentileSorted(sortedCopy(xs), p)
}

// PercentileSorted is Percentile over an already ascending-sorted sample
// set, avoiding the defensive copy-and-sort. The input must be sorted;
// behavior on unsorted input is undefined. Like Percentile, empty input
// yields 0, never NaN.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Summary condenses a sample set into the statistics Fig. 10(b) plots.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Max         float64
	P25, Median, P75 float64
}

// Summarize computes a Summary; zero value for empty input. The sample
// set is sorted once and all three quartiles are read from the sorted
// copy (previously each percentile re-copied and re-sorted the input).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	s.Mean = sum / float64(len(xs))
	variance := sq/float64(len(xs)) - s.Mean*s.Mean
	if variance > 0 {
		s.Std = math.Sqrt(variance)
	}
	sorted := sortedCopy(xs)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.P25 = PercentileSorted(sorted, 25)
	s.Median = PercentileSorted(sorted, 50)
	s.P75 = PercentileSorted(sorted, 75)
	return s
}

// CDFPoint is one (value, cumulative fraction) coordinate.
type CDFPoint struct {
	Value float64
	Frac  float64
}

// EmpiricalCDF reduces xs to at most n evenly spaced CDF coordinates.
//
// The output is always a well-formed monotone CDF or nil, never a
// degenerate in-between (the zero-not-NaN contract Summarize follows):
//
//   - empty xs → nil (the only nil case);
//   - the first point is the sample minimum and the last is the maximum
//     with Frac exactly 1, so the plotted support is never clipped;
//   - Value is non-decreasing and Frac strictly increasing — no duplicate
//     coordinates, whatever ties xs contains;
//   - n is clamped to [2, len(xs)] (a distribution's support needs two
//     points; more points than samples would force duplicates). A single
//     sample yields the single point (x, 1).
func EmpiricalCDF(xs []float64, n int) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := sortedCopy(xs)
	m := len(sorted)
	if n > m {
		n = m
	}
	if n < 2 {
		n = 2
		if m == 1 {
			n = 1
		}
	}
	out := make([]CDFPoint, 0, n)
	prev := -1
	for i := 0; i < n; i++ {
		idx := m - 1
		if n > 1 {
			idx = i * (m - 1) / (n - 1)
		}
		// Evenly spaced ranks can collide after integer division; keeping
		// the index strictly increasing keeps Frac strictly increasing.
		// Safe because n ≤ m: there is always a fresh rank left.
		if idx <= prev {
			idx = prev + 1
		}
		prev = idx
		out = append(out, CDFPoint{
			Value: sorted[idx],
			Frac:  float64(idx+1) / float64(m),
		})
	}
	return out
}

// Sampler polls a gauge on a fixed period — the paper records switch
// occupancy every 1 ms (Fig. 8).
type Sampler struct {
	eng      *sim.Engine
	interval sim.Duration
	gauge    func() int64
	stopped  bool

	// Samples accumulates readings in time order.
	Samples []Reading
}

// Reading is one timestamped gauge value.
type Reading struct {
	At    sim.Time
	Value int64
}

// NewSampler builds a sampler polling gauge every interval once started.
func NewSampler(eng *sim.Engine, interval sim.Duration, gauge func() int64) *Sampler {
	if interval <= 0 {
		panic("metrics: sampler interval must be positive")
	}
	return &Sampler{eng: eng, interval: interval, gauge: gauge}
}

// Start begins sampling until the horizon (exclusive) or Stop.
func (s *Sampler) Start(until sim.Time) {
	var tick func()
	tick = func() {
		if s.stopped || s.eng.Now() > until {
			return
		}
		s.Samples = append(s.Samples, Reading{At: s.eng.Now(), Value: s.gauge()})
		s.eng.Schedule(s.interval, tick)
	}
	s.eng.Schedule(s.interval, tick)
}

// Stop halts sampling.
func (s *Sampler) Stop() { s.stopped = true }

// Values extracts the samples as float64s.
func (s *Sampler) Values() []float64 {
	out := make([]float64, len(s.Samples))
	for i, r := range s.Samples {
		out[i] = float64(r.Value)
	}
	return out
}
