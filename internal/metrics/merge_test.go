package metrics

import (
	"strings"
	"testing"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/transport"
)

func startFlow(r *FCTRecorder, id pkt.FlowID, start sim.Time, ideal sim.Duration) {
	r.Started(&transport.Flow{
		ID: id, Src: int(id), Dst: int(id) + 1, Size: 1000,
		Class: pkt.ClassLossy, Start: start,
	}, ideal)
}

// TestMergeUnionsDisjointRecorders: flows recorded whole on different
// shards union into one record set, sorted accessors included.
func TestMergeUnionsDisjointRecorders(t *testing.T) {
	a, b := NewFCTRecorder(), NewFCTRecorder()
	startFlow(a, 3, 0, 100)
	a.Completed(3, sim.Time(250))
	startFlow(b, 1, 0, 100)
	b.Completed(1, sim.Time(150))
	startFlow(b, 2, 0, 100) // incomplete

	m := a.Merge(b)
	if s, c := m.Counts(); s != 3 || c != 2 {
		t.Fatalf("merged counts = (%d, %d), want (3, 2)", s, c)
	}
	recs := m.Records(0)
	if len(recs) != 2 || recs[0].Flow.ID != 1 || recs[1].Flow.ID != 3 {
		t.Fatalf("merged records out of order: %+v", recs)
	}
	if inc := m.IncompleteRecords(); len(inc) != 1 || inc[0].Flow.ID != 2 {
		t.Fatalf("merged incomplete set wrong: %+v", inc)
	}
	// Inputs must be untouched: completing in the merged set cannot leak
	// back into a source recorder.
	m.Completed(2, sim.Time(999))
	if _, c := b.Counts(); c != 1 {
		t.Fatalf("Merge aliased records of its input (b completed = %d)", c)
	}
}

// TestMergeMatchesOrphanCompletions: a completion landing on a shard that
// never saw the start (started on the source's shard, completed on the
// destination's) must join up at merge time.
func TestMergeMatchesOrphanCompletions(t *testing.T) {
	src, dst := NewFCTRecorder(), NewFCTRecorder()
	startFlow(src, 7, 100, 50)
	dst.Completed(7, sim.Time(400)) // orphan on the destination shard
	if dst.Orphans() != 1 {
		t.Fatalf("destination recorder parked %d orphans, want 1", dst.Orphans())
	}

	m := src.Merge(dst)
	if s, c := m.Counts(); s != 1 || c != 1 {
		t.Fatalf("merged counts = (%d, %d), want (1, 1)", s, c)
	}
	rec := m.Records(0)[0]
	if rec.End != sim.Time(400) || rec.FCT() != sim.Duration(300) {
		t.Fatalf("orphan join produced End=%v FCT=%v, want 400/300", rec.End, rec.FCT())
	}
	if m.Orphans() != 0 {
		t.Fatalf("merged recorder still holds %d orphans", m.Orphans())
	}
	// Order must not matter: dst.Merge(src) joins the same way.
	m2 := dst.Merge(src)
	if s, c := m2.Counts(); s != 1 || c != 1 {
		t.Fatalf("reverse merge counts = (%d, %d), want (1, 1)", s, c)
	}
}

// TestMergeKeepsUnmatchedOrphans: an orphan with no start anywhere (an
// unobserved traffic class) survives the merge as an orphan and never
// becomes a phantom record.
func TestMergeKeepsUnmatchedOrphans(t *testing.T) {
	a, b := NewFCTRecorder(), NewFCTRecorder()
	a.Completed(99, sim.Time(10))
	m := a.Merge(b)
	if s, _ := m.Counts(); s != 0 {
		t.Fatalf("unmatched orphan became a record: started=%d", s)
	}
	if m.Orphans() != 1 {
		t.Fatalf("unmatched orphan dropped: orphans=%d", m.Orphans())
	}
}

// TestMergeOrphanDoesNotOverrideCompletion: if the start-side recorder
// already saw the completion, a stray duplicate orphan cannot rewrite it.
func TestMergeOrphanDoesNotOverrideCompletion(t *testing.T) {
	a, b := NewFCTRecorder(), NewFCTRecorder()
	startFlow(a, 5, 0, 100)
	a.Completed(5, sim.Time(200))
	b.Completed(5, sim.Time(777))
	m := a.Merge(b)
	if rec := m.Records(0)[0]; rec.End != sim.Time(200) {
		t.Fatalf("duplicate orphan overwrote completion: End=%v, want 200", rec.End)
	}
}

// TestMergePanicsOnDuplicateStart: the same flow started in two recorders
// is a shard-wiring bug and must panic loudly, not silently pick one.
func TestMergePanicsOnDuplicateStart(t *testing.T) {
	a, b := NewFCTRecorder(), NewFCTRecorder()
	startFlow(a, 4, 0, 100)
	startFlow(b, 4, 0, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("Merge accepted a flow started in two recorders")
		}
	}()
	a.Merge(b)
}

// TestMergeSelfPanics: passing the receiver as an argument duplicates
// every started flow, which must trip the duplicate-start panic rather
// than silently doubling records.
func TestMergeSelfPanics(t *testing.T) {
	a := NewFCTRecorder()
	startFlow(a, 2, 0, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("a.Merge(a) did not panic")
		}
	}()
	a.Merge(a)
}

// TestMergeDuplicateStartPanicDeterministic: with several duplicated IDs
// the panic must name the same flow on every run — IDs are visited in
// sorted order, so the smallest duplicate in the second recorder wins.
func TestMergeDuplicateStartPanicDeterministic(t *testing.T) {
	for run := 0; run < 5; run++ {
		a, b := NewFCTRecorder(), NewFCTRecorder()
		for _, id := range []pkt.FlowID{4, 9, 17} {
			startFlow(a, id, 0, 100)
			startFlow(b, id, 0, 100)
		}
		func() {
			defer func() {
				v := recover()
				if v == nil {
					t.Fatal("duplicate starts accepted")
				}
				if msg, _ := v.(string); !strings.Contains(msg, "flow 4") {
					t.Fatalf("run %d: panic named %q, want the smallest duplicate (flow 4)", run, msg)
				}
			}()
			a.Merge(b)
		}()
	}
}

// TestMergeFirstOrphanWins: when two shards both park a completion for the
// same flow, the earlier input's timestamp is the one that joins the start
// — mirroring Completed's own first-completion-wins rule.
func TestMergeFirstOrphanWins(t *testing.T) {
	starter, a, b := NewFCTRecorder(), NewFCTRecorder(), NewFCTRecorder()
	startFlow(starter, 8, 0, 100)
	a.Completed(8, sim.Time(10))
	b.Completed(8, sim.Time(999))
	m := starter.Merge(a, b)
	if rec := m.Records(0)[0]; rec.End != sim.Time(10) {
		t.Fatalf("later duplicate orphan won: End=%v, want 10", rec.End)
	}
	// And the duplicate orphan is consumed, not left dangling.
	if m.Orphans() != 0 {
		t.Fatalf("merged recorder holds %d orphans, want 0", m.Orphans())
	}
}

// TestMergeNilAndEmptyInputs: nil recorders in the argument list are
// skipped (an unused shard slot), and merging nothing is the identity.
func TestMergeNilAndEmptyInputs(t *testing.T) {
	a := NewFCTRecorder()
	startFlow(a, 1, 0, 100)
	a.Completed(1, sim.Time(100))
	m := a.Merge(nil, NewFCTRecorder(), nil)
	if s, c := m.Counts(); s != 1 || c != 1 {
		t.Fatalf("merge with nil/empty inputs = (%d, %d), want (1, 1)", s, c)
	}
}
