package fluid

import (
	"math"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/topo"
	"l2bm/internal/transport"
)

// CutReason says why Advance stopped before its requested bound.
type CutReason int

const (
	// CutNone: the requested bound was reached; no trigger fired.
	CutNone CutReason = iota
	// CutBurst: a scheduled incast burst is within PreMargin.
	CutBurst
	// CutDegree: the next arrival would push an access link's sharing
	// degree to the trigger. The arrival is NOT consumed.
	CutDegree
	// CutGuard: the next arrival would push a switch's synthesized
	// occupancy past the guard band. The arrival is NOT consumed.
	CutGuard
)

// String names the reason for logs and tests.
func (r CutReason) String() string {
	switch r {
	case CutNone:
		return "none"
	case CutBurst:
		return "burst"
	case CutDegree:
		return "degree"
	case CutGuard:
		return "guard"
	default:
		return "?"
	}
}

// Completion reports one flow finishing in the fluid layer. At is the
// global receiver-side completion instant (drain end + latency tail +
// slow-start charge).
type Completion struct {
	ID     pkt.FlowID
	Class  pkt.Class
	Incast bool
	At     sim.Time
}

// Sim advances a set of flows analytically over a Model, consuming
// scheduled arrivals and emitting completions, until a fidelity trigger
// fires or the requested bound is reached. One Sim instance serves one
// fluid segment; the driver rebuilds it (cheaply) after each packet
// segment, re-injecting residual flows.
type Sim struct {
	m *Model
	p Params

	arrivals  []FlowArrival
	next      int // cursor into arrivals
	nextBurst int // first index ≥ next with Incast == true (lazily advanced)

	active  []*FlowState
	scratch *solveScratch
	now     sim.Time
	dirty   bool

	// OnComplete, when set, observes every fluid completion as it happens.
	OnComplete func(Completion)

	// Steps counts fluid events processed (arrivals + completions), the
	// "events-equivalent" cost accounting of the fast-forward layer.
	Steps uint64
}

// NewSim builds a fluid segment starting at now. arrivals is the not-yet-
// consumed tail of the run's schedule (the driver slices past its cursor).
func NewSim(m *Model, p Params, arrivals []FlowArrival, now sim.Time) *Sim {
	return &Sim{
		m:        m,
		p:        p.withDefaults(),
		arrivals: arrivals,
		scratch:  newSolveScratch(m.nLinks),
		now:      now,
		dirty:    true,
	}
}

// Now returns the fluid clock.
func (s *Sim) Now() sim.Time { return s.now }

// Consumed returns how many of the supplied arrivals have been started.
func (s *Sim) Consumed() int { return s.next }

// Active returns the in-progress flows (driver hand-off to a packet
// segment). The slice is owned by the Sim; read it before further Advance
// calls.
func (s *Sim) Active() []*FlowState { return s.active }

// Inject adds a flow with remaining payload bytes outstanding. Flows
// injected with their full size as lossy transfers are charged the
// analytic slow-start delay at completion; residual flows (mid-transfer
// hand-backs from a packet segment) are not — their windows are already
// open.
func (s *Sim) Inject(f transport.Flow, remainingPayload int64, incast bool) {
	s.m.checkHost(f.Src)
	s.m.checkHost(f.Dst)
	fs := &FlowState{
		Flow:          f,
		RemainingWire: float64(topo.WireBytes(remainingPayload)),
		Incast:        incast,
	}
	fs.ExtraLatency = s.m.Cfg.BasePathDelay(f.Src, f.Dst) - sim.TxTime(pkt.MTUBytes, s.m.Cfg.ServerRate)
	if f.Class == pkt.ClassLossy && remainingPayload == f.Size {
		rtt := 2 * s.m.Cfg.BasePathDelay(f.Src, f.Dst)
		fs.ExtraLatency += SlowStartExtra(f.Size, rtt, s.m.Cfg.ServerRate)
	}
	nl := s.m.AppendLinks(fs.links[:0], f.ID, f.Src, f.Dst)
	fs.nLink = len(nl)
	s.active = append(s.active, fs)
	s.dirty = true
}

// wouldTrigger evaluates the arrival-time fidelity triggers for candidate
// flow f against the current active set.
func (s *Sim) wouldTrigger(f *transport.Flow) CutReason {
	if s.degree(f.Src, f.Dst)+1 >= s.p.DegreeTrigger {
		return CutDegree
	}
	if s.guardExceeded(f) {
		return CutGuard
	}
	return CutNone
}

// TriggersNow reports whether the standing trigger predicates hold for the
// current active set alone (no candidate arrival) — the driver's quiescence
// check asks this before cutting a packet segment back to fluid.
func (s *Sim) TriggersNow() CutReason {
	for _, fs := range s.active {
		if s.degree(fs.Flow.Src, fs.Flow.Dst) >= s.p.DegreeTrigger {
			return CutDegree
		}
	}
	if s.guardExceeded(nil) {
		return CutGuard
	}
	return CutNone
}

// degree returns the larger of the sharing degrees on src's uplink and
// dst's downlink.
func (s *Sim) degree(src, dst int) int {
	up, down := 0, 0
	upLink, downLink := src, s.m.nHosts+dst
	for _, fs := range s.active {
		for _, l := range fs.links[:fs.nLink] {
			if l == upLink {
				up++
			}
			if l == downLink {
				down++
			}
		}
	}
	if up > down {
		return up
	}
	return down
}

// guardExceeded reports whether the synthesized occupancy estimate of any
// switch — with candidate cand added, when non-nil — crosses the guard
// band.
func (s *Sim) guardExceeded(cand *transport.Flow) bool {
	limit := int64(s.p.GuardFrac * float64(s.m.Cfg.Switch.TotalShared))
	if limit <= 0 {
		return false
	}
	occ := make([]int64, s.m.NumSwitches())
	s.chargeOccupancy(occ)
	if cand != nil {
		var buf [6]int
		for _, l := range s.m.AppendLinks(buf[:0], cand.ID, cand.Src, cand.Dst) {
			if sw := s.m.owner[l]; sw >= 0 {
				occ[sw] += s.p.QFlow
			}
		}
	}
	for _, o := range occ {
		if o > limit {
			return true
		}
	}
	return false
}

// chargeOccupancy accumulates the synthesized per-switch occupancy: QFlow
// per active flow per traversed switch queue, plus QCong per saturated
// (max-min bottleneck) link.
func (s *Sim) chargeOccupancy(occ []int64) {
	s.resolve()
	for _, fs := range s.active {
		for _, l := range fs.links[:fs.nLink] {
			if sw := s.m.owner[l]; sw >= 0 {
				occ[sw] += s.p.QFlow
			}
		}
	}
	for _, l := range s.scratch.used {
		if s.scratch.sat[l] && s.scratch.cnt[l] > 0 {
			if sw := s.m.owner[l]; sw >= 0 {
				occ[sw] += s.p.QCong
			}
		}
	}
}

// TorOccupancy returns the synthesized occupancy estimate of rack switch t
// — the fluid stand-in for switchsim's resident-byte reading, so traced
// figures stay plottable across fluid segments.
func (s *Sim) TorOccupancy(t int) int64 {
	occ := make([]int64, s.m.NumSwitches())
	s.chargeOccupancy(occ)
	return occ[t]
}

// TorOccupancies appends every rack switch's synthesized occupancy to
// dst[:0] with a single solve — the driver's periodic sampling path.
func (s *Sim) TorOccupancies(dst []int64) []int64 {
	occ := make([]int64, s.m.NumSwitches())
	s.chargeOccupancy(occ)
	return append(dst[:0], occ[:s.m.NumToRs()]...)
}

// resolve recomputes max-min rates if the active set changed.
func (s *Sim) resolve() {
	if !s.dirty {
		return
	}
	s.m.solve(s.active, s.scratch)
	s.dirty = false
}

const farFuture = sim.Time(math.MaxInt64)

// drainsAt returns when fs finishes serving at its current rate.
func (s *Sim) drainsAt(fs *FlowState) sim.Time {
	if fs.rate <= 0 {
		return farFuture
	}
	d := sim.Duration(math.Ceil(fs.RemainingWire * 8 / fs.rate * float64(sim.Second)))
	if d < 1 {
		d = 1
	}
	return s.now + d
}

// advanceTo moves the clock to t, draining every active flow at its rate.
func (s *Sim) advanceTo(t sim.Time) {
	if t <= s.now {
		return
	}
	dt := (t - s.now).Seconds()
	for _, fs := range s.active {
		fs.RemainingWire -= fs.rate / 8 * dt
		if fs.RemainingWire < 0 {
			fs.RemainingWire = 0
		}
	}
	s.now = t
}

// completeDue finishes every active flow whose service is (numerically)
// done, in insertion order, and compacts the active set. Returns whether
// any completed.
func (s *Sim) completeDue() bool {
	any := false
	kept := s.active[:0]
	for _, fs := range s.active {
		if fs.RemainingWire > 0.5 {
			kept = append(kept, fs)
			continue
		}
		any = true
		s.Steps++
		if s.OnComplete != nil {
			s.OnComplete(Completion{
				ID:     fs.Flow.ID,
				Class:  fs.Flow.Class,
				Incast: fs.Incast,
				At:     s.now + fs.ExtraLatency,
			})
		}
	}
	s.active = kept
	if any {
		s.dirty = true
	}
	return any
}

// burstBound returns the instant the controller must be in packet mode for
// the next scheduled incast burst (its start minus PreMargin), or farFuture.
func (s *Sim) burstBound() sim.Time {
	if s.nextBurst < s.next {
		s.nextBurst = s.next
	}
	for s.nextBurst < len(s.arrivals) && !s.arrivals[s.nextBurst].Incast {
		s.nextBurst++
	}
	if s.nextBurst >= len(s.arrivals) {
		return farFuture
	}
	hb := s.arrivals[s.nextBurst].Flow.Start - sim.Time(s.p.PreMargin)
	if hb < s.now {
		hb = s.now
	}
	return hb
}

// Advance runs the fluid clock from Now() to at most `to`, starting
// scheduled arrivals and emitting completions. It returns (cutAt, reason):
// reason CutNone means `to` was reached; any other reason means a fidelity
// trigger fired at cutAt and the driver must run a packet segment (the
// triggering arrival, if any, was left unconsumed).
func (s *Sim) Advance(to sim.Time) (sim.Time, CutReason) {
	for {
		s.resolve()

		hb := s.burstBound()
		if hb <= s.now && hb != farFuture {
			return s.now, CutBurst
		}

		tNext := to
		if hb < tNext {
			tNext = hb
		}
		var ta sim.Time = farFuture
		if s.next < len(s.arrivals) {
			ta = s.arrivals[s.next].Flow.Start
			if ta < tNext {
				tNext = ta
			}
		}
		var tc sim.Time = farFuture
		for _, fs := range s.active {
			if t := s.drainsAt(fs); t < tc {
				tc = t
			}
		}
		if tc < tNext {
			tNext = tc
		}

		s.advanceTo(tNext)
		if s.completeDue() {
			continue
		}
		switch {
		case tNext == hb && hb != farFuture:
			return s.now, CutBurst
		case tNext == ta:
			arr := &s.arrivals[s.next]
			if r := s.wouldTrigger(&arr.Flow); r != CutNone {
				return s.now, r
			}
			s.Inject(arr.Flow, arr.Flow.Size, arr.Incast)
			s.next++
			s.Steps++
		default: // tNext == to
			return s.now, CutNone
		}
	}
}
