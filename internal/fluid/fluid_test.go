package fluid

import (
	"testing"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/topo"
	"l2bm/internal/transport"
	"l2bm/internal/workload"
)

func tinyModel() *Model { return NewModel(topo.TinyConfig()) }

func mkFlow(id uint64, src, dst int, size int64, class pkt.Class, start sim.Time) transport.Flow {
	prio := pkt.PrioLossless
	if class == pkt.ClassLossy {
		prio = pkt.PrioLossy
	}
	return transport.Flow{ID: pkt.FlowID(id), Src: src, Dst: dst, Size: size,
		Priority: prio, Class: class, Start: start}
}

// A flow served alone must complete in exactly its ideal FCT (±1 ps of
// rounding): the fluid layer's slowdown-of-1.0 construction invariant.
func TestSoloFlowCompletesAtIdealFCT(t *testing.T) {
	m := tinyModel()
	cfg := m.Cfg
	s := NewSim(m, Params{}, nil, 0)
	var got []Completion
	s.OnComplete = func(c Completion) { got = append(got, c) }

	f := mkFlow(1, 0, cfg.ServersPerToR, 1<<20, pkt.ClassLossless, 0) // cross-rack
	s.Inject(f, f.Size, false)
	at, reason := s.Advance(sim.Second)
	if reason != CutNone || at != sim.Second {
		t.Fatalf("Advance = (%v, %v), want (1s, none)", at, reason)
	}
	if len(got) != 1 {
		t.Fatalf("completions = %d, want 1", len(got))
	}
	ideal := cfg.IdealFCT(f.Src, f.Dst, f.Size)
	fct := got[0].At - f.Start
	if d := fct - ideal; d < -1 || d > 1 {
		t.Errorf("solo FCT = %v, ideal %v (diff %d ps)", fct, ideal, int64(d))
	}
}

// Two flows sharing a source uplink each get half the access rate; the
// completion order and rate redistribution follow max-min filling.
func TestMaxMinSharesAccessLink(t *testing.T) {
	m := tinyModel()
	f1 := &FlowState{Flow: mkFlow(1, 0, 1, 1000, pkt.ClassLossless, 0), RemainingWire: 1000}
	f2 := &FlowState{Flow: mkFlow(2, 0, 2, 1000, pkt.ClassLossless, 0), RemainingWire: 1000}
	f3 := &FlowState{Flow: mkFlow(3, 3, 2, 1000, pkt.ClassLossless, 0), RemainingWire: 1000}
	for _, fs := range []*FlowState{f1, f2, f3} {
		fs.nLink = len(m.AppendLinks(fs.links[:0], fs.Flow.ID, fs.Flow.Src, fs.Flow.Dst))
	}
	sc := newSolveScratch(m.nLinks)
	m.solve([]*FlowState{f1, f2, f3}, sc)

	half := float64(m.Cfg.ServerRate) / 2
	// f1, f2 share hostUp[0]; f2, f3 share hostDown[2]: everyone at half rate.
	for i, fs := range []*FlowState{f1, f2, f3} {
		if fs.rate != half {
			t.Errorf("flow %d rate = %g, want %g", i+1, fs.rate, half)
		}
	}
}

func TestSoloFlowPathAndRate(t *testing.T) {
	m := NewModel(topo.DefaultConfig())
	cfg := m.Cfg
	intra := &FlowState{Flow: mkFlow(1, 0, 1, 1000, pkt.ClassLossless, 0)}
	inter := &FlowState{Flow: mkFlow(2, 0, cfg.ServersPerToR*cfg.ToRCount-1, 1000, pkt.ClassLossless, 0)}
	intra.nLink = len(m.AppendLinks(intra.links[:0], intra.Flow.ID, intra.Flow.Src, intra.Flow.Dst))
	inter.nLink = len(m.AppendLinks(inter.links[:0], inter.Flow.ID, inter.Flow.Src, inter.Flow.Dst))
	if intra.nLink != 2 {
		t.Errorf("intra-rack path links = %d, want 2", intra.nLink)
	}
	if inter.nLink != 6 {
		t.Errorf("inter-pod path links = %d, want 6", inter.nLink)
	}
	sc := newSolveScratch(m.nLinks)
	m.solve([]*FlowState{inter}, sc)
	if inter.rate != float64(cfg.ServerRate) {
		t.Errorf("solo rate = %g, want %g", inter.rate, float64(cfg.ServerRate))
	}
}

// The ECMP choices the model prices must match the routers' healthy-fabric
// hash function (PathOf is shared, but the link indices must be in range
// and stable).
func TestAppendLinksDeterministic(t *testing.T) {
	m := NewModel(topo.DefaultConfig())
	for id := uint64(1); id < 100; id++ {
		a := m.AppendLinks(nil, pkt.FlowID(id), 3, 100)
		b := m.AppendLinks(nil, pkt.FlowID(id), 3, 100)
		if len(a) != len(b) {
			t.Fatalf("path length changed between calls")
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("path changed between calls: %v vs %v", a, b)
			}
			if a[i] < 0 || a[i] >= m.nLinks {
				t.Fatalf("link index %d out of range [0,%d)", a[i], m.nLinks)
			}
		}
	}
}

func TestDegreeTriggerCutsBeforeArrival(t *testing.T) {
	m := tinyModel()
	big := int64(100 << 20) // far from completing during the test
	var arrivals []FlowArrival
	// Four flows converging on host 0 from distinct sources, 1 µs apart.
	for i := 0; i < 4; i++ {
		arrivals = append(arrivals, FlowArrival{
			Flow: mkFlow(uint64(10+i), i+1, 0, big, pkt.ClassLossless, sim.Time(i+1)*sim.Time(sim.Microsecond)),
		})
	}
	s := NewSim(m, Params{DegreeTrigger: 4}, arrivals, 0)
	at, reason := s.Advance(sim.Second)
	if reason != CutDegree {
		t.Fatalf("reason = %v, want degree", reason)
	}
	if want := 4 * sim.Time(sim.Microsecond); at != want {
		t.Errorf("cut at %v, want %v", at, want)
	}
	if s.Consumed() != 3 {
		t.Errorf("consumed %d arrivals, want 3 (trigger arrival left unconsumed)", s.Consumed())
	}
}

func TestBurstPreTrigger(t *testing.T) {
	m := tinyModel()
	burstAt := 500 * sim.Time(sim.Microsecond)
	arrivals := []FlowArrival{{
		Flow:   mkFlow(1, 1, 0, 1000, pkt.ClassLossless, burstAt),
		Incast: true,
	}}
	p := Params{PreMargin: 50 * sim.Microsecond}
	s := NewSim(m, p, arrivals, 0)
	at, reason := s.Advance(sim.Second)
	if reason != CutBurst {
		t.Fatalf("reason = %v, want burst", reason)
	}
	if want := burstAt - 50*sim.Time(sim.Microsecond); at != want {
		t.Errorf("cut at %v, want %v", at, want)
	}
	if s.Consumed() != 0 {
		t.Errorf("burst arrival consumed in fluid mode")
	}
}

func TestSlowStartExtra(t *testing.T) {
	rate := int64(25e9)
	rtt := 10 * sim.Microsecond
	if got := SlowStartExtra(5_000, rtt, rate); got != 0 {
		t.Errorf("IW-covered flow charged %v slow-start", got)
	}
	small := SlowStartExtra(100_000, rtt, rate)
	large := SlowStartExtra(1_000_000, rtt, rate)
	if small <= 0 {
		t.Errorf("mid-size flow charged %v, want > 0", small)
	}
	if large < small {
		t.Errorf("slow-start charge not monotone: %v then %v", small, large)
	}
	// Charge is bounded by ramp rounds: ≤ rtt × log2(bdp/IW) + rtt.
	if max := 10 * rtt; large > sim.Duration(max) {
		t.Errorf("charge %v exceeds ramp bound %v", large, max)
	}
}

// Extraction is deterministic and produces a plausible schedule: flows
// ascending in time, inside the window, with incast queries registered.
func TestExtractDeterministicAndOrdered(t *testing.T) {
	cfg := topo.TinyConfig()
	hosts := make([]int, cfg.ToRCount*cfg.ServersPerToR)
	for i := range hosts {
		hosts[i] = i
	}
	window := 2 * sim.Millisecond
	wl := Workload{
		Poisson: []workload.PoissonConfig{{
			Sources: hosts[:4], Dests: hosts, Load: 0.4,
			HostRate: cfg.ServerRate, Sizes: workload.WebSearchCDF(),
			Priority: pkt.PrioLossless, Class: pkt.ClassLossless,
			Window: window, StreamName: "rdma", IDTag: 1,
		}},
		Incast: &workload.IncastConfig{
			Hosts: hosts, Fanout: 3, RequestBytes: 1 << 20, QueryRate: 2000,
			Window: window, Priority: pkt.PrioLossless, Class: pkt.ClassLossless,
			StreamName: "incast", IDTag: 3,
		},
	}
	s1, err := Extract(12345, wl)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Extract(12345, wl)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.Flows) == 0 {
		t.Fatal("empty schedule")
	}
	if len(s1.Flows) != len(s2.Flows) {
		t.Fatalf("extraction not deterministic: %d vs %d flows", len(s1.Flows), len(s2.Flows))
	}
	nIncast := 0
	for i := range s1.Flows {
		if s1.Flows[i].Flow != s2.Flows[i].Flow || s1.Flows[i].Incast != s2.Flows[i].Incast {
			t.Fatalf("extraction not deterministic at flow %d", i)
		}
		if i > 0 && s1.Flows[i].Flow.Start < s1.Flows[i-1].Flow.Start {
			t.Fatalf("schedule not time-ordered at %d", i)
		}
		if s1.Flows[i].Flow.Start >= sim.Time(window) {
			t.Fatalf("flow %d starts at %v, beyond the window", i, s1.Flows[i].Flow.Start)
		}
		if s1.Flows[i].Incast {
			nIncast++
			if byte(s1.Flows[i].Flow.ID>>56) != 3 {
				t.Fatalf("incast flow %d lacks the incast ID tag", i)
			}
		}
	}
	if nIncast == 0 {
		t.Error("no incast flows extracted")
	}
	if s1.Incast == nil || len(s1.Incast.Queries()) == 0 {
		t.Error("incast generator bookkeeping not retained")
	}
	// Per-query responder count must equal the fanout.
	if got := nIncast; got != 3*len(s1.Incast.Queries()) {
		t.Errorf("incast flows = %d, want fanout·queries = %d", got, 3*len(s1.Incast.Queries()))
	}
}

func TestNextIncastAt(t *testing.T) {
	sch := &Schedule{Flows: []FlowArrival{
		{Flow: mkFlow(1, 0, 1, 10, pkt.ClassLossy, 5)},
		{Flow: mkFlow(2, 0, 1, 10, pkt.ClassLossless, 7), Incast: true},
	}}
	if at, ok := sch.NextIncastAt(0); !ok || at != 7 {
		t.Errorf("NextIncastAt(0) = (%v,%v), want (7,true)", at, ok)
	}
	if _, ok := sch.NextIncastAt(2); ok {
		t.Error("NextIncastAt past the end reported a burst")
	}
}
