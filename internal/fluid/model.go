package fluid

import (
	"fmt"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/topo"
	"l2bm/internal/transport"
)

// Model is the capacity graph the fluid layer serves flows over: every
// directed link of the Clos as an individual capacity, so two flows hashed
// onto the same ToR–agg link contend exactly as their packets would.
//
// Link index space (H hosts, T ToRs, A aggs, C cores, app = aggs per pod):
//
//	hostUp[h]          = h                          host → ToR, ServerRate
//	hostDown[h]        = H + h                      ToR → host, ServerRate
//	torUp[t][a]        = 2H + t·app + a             ToR → agg,  FabricRate
//	aggToRDown[t][a]   = 2H + T·app + t·app + a     agg → ToR,  FabricRate
//	aggUp[g][c]        = 2H + 2T·app + g·C + c      agg → core, FabricRate
//	coreDown[g][c]     = 2H + 2T·app + A·C + g·C+c  core → agg, FabricRate
//
// Each link's egress queue lives on a switch (or the host NIC, which has no
// shared buffer): owner maps links to the switch index space
// [0,T) ToRs, [T,T+A) aggs, [T+A,T+A+C) cores, -1 for host NICs. The
// occupancy synthesizer charges per-flow residency and standing congested
// queues to owners.
type Model struct {
	Cfg topo.Config

	nHosts, nToRs, nAggs, nCores int
	aggsPerPod, torsPerPod       int
	nLinks                       int

	caps  []float64 // bits/s
	owner []int
}

// NumSwitches returns the size of the switch index space (ToRs, then aggs,
// then cores).
func (m *Model) NumSwitches() int { return m.nToRs + m.nAggs + m.nCores }

// NumToRs returns the rack-switch count (switch indices [0, NumToRs)).
func (m *Model) NumToRs() int { return m.nToRs }

// NewModel builds the capacity graph for cfg.
func NewModel(cfg topo.Config) *Model {
	m := &Model{
		Cfg:        cfg,
		nHosts:     cfg.ToRCount * cfg.ServersPerToR,
		nToRs:      cfg.ToRCount,
		nAggs:      cfg.AggCount,
		nCores:     cfg.CoreCount,
		aggsPerPod: cfg.AggCount / cfg.Pods,
		torsPerPod: cfg.ToRCount / cfg.Pods,
	}
	m.nLinks = 2*m.nHosts + 2*m.nToRs*m.aggsPerPod + 2*m.nAggs*m.nCores
	m.caps = make([]float64, m.nLinks)
	m.owner = make([]int, m.nLinks)
	for l := range m.owner {
		m.owner[l] = -1
	}
	for h := 0; h < m.nHosts; h++ {
		m.caps[h] = float64(cfg.ServerRate)          // hostUp: NIC egress
		m.caps[m.nHosts+h] = float64(cfg.ServerRate) // hostDown
		m.owner[m.nHosts+h] = h / cfg.ServersPerToR  // ToR's host-facing queue
	}
	torUp0 := 2 * m.nHosts
	aggDown0 := torUp0 + m.nToRs*m.aggsPerPod
	aggUp0 := aggDown0 + m.nToRs*m.aggsPerPod
	coreDown0 := aggUp0 + m.nAggs*m.nCores
	for t := 0; t < m.nToRs; t++ {
		pod := t / m.torsPerPod
		for a := 0; a < m.aggsPerPod; a++ {
			m.caps[torUp0+t*m.aggsPerPod+a] = float64(cfg.FabricRate)
			m.owner[torUp0+t*m.aggsPerPod+a] = t
			m.caps[aggDown0+t*m.aggsPerPod+a] = float64(cfg.FabricRate)
			m.owner[aggDown0+t*m.aggsPerPod+a] = m.nToRs + pod*m.aggsPerPod + a
		}
	}
	for g := 0; g < m.nAggs; g++ {
		for c := 0; c < m.nCores; c++ {
			m.caps[aggUp0+g*m.nCores+c] = float64(cfg.FabricRate)
			m.owner[aggUp0+g*m.nCores+c] = m.nToRs + g
			m.caps[coreDown0+g*m.nCores+c] = float64(cfg.FabricRate)
			m.owner[coreDown0+g*m.nCores+c] = m.nToRs + m.nAggs + c
		}
	}
	return m
}

// AppendLinks appends the link indices of flow f's deterministic ECMP path
// from src to dst (2, 4 or 6 links) and returns the extended slice.
func (m *Model) AppendLinks(links []int, f pkt.FlowID, src, dst int) []int {
	p := m.Cfg.PathOf(f, src, dst)
	torUp0 := 2 * m.nHosts
	aggDown0 := torUp0 + m.nToRs*m.aggsPerPod
	aggUp0 := aggDown0 + m.nToRs*m.aggsPerPod
	coreDown0 := aggUp0 + m.nAggs*m.nCores

	links = append(links, src) // hostUp
	switch p.Hops {
	case 4:
		links = append(links, torUp0+p.SrcToR*m.aggsPerPod+p.UpAgg)
		links = append(links, aggDown0+p.DstToR*m.aggsPerPod+p.DownAgg)
	case 6:
		srcPod := p.SrcToR / m.torsPerPod
		dstPod := p.DstToR / m.torsPerPod
		upAggG := srcPod*m.aggsPerPod + p.UpAgg
		downAggG := dstPod*m.aggsPerPod + p.DownAgg
		links = append(links, torUp0+p.SrcToR*m.aggsPerPod+p.UpAgg)
		links = append(links, aggUp0+upAggG*m.nCores+p.Core)
		links = append(links, coreDown0+downAggG*m.nCores+p.Core)
		links = append(links, aggDown0+p.DstToR*m.aggsPerPod+p.DownAgg)
	}
	links = append(links, m.nHosts+dst) // hostDown
	return links
}

// FlowState is one in-progress transfer in the fluid layer.
type FlowState struct {
	// Flow is the pristine descriptor; Start is the flow's true global
	// start instant (never re-stamped).
	Flow transport.Flow
	// RemainingWire is the unserved wire bytes (payload + framing).
	RemainingWire float64
	// Incast marks query-responder flows (query bookkeeping + burst
	// triggers treat them specially).
	Incast bool
	// ExtraLatency is added to the recorded completion instant: the
	// base-path tail plus, for flows that start in fluid mode as lossy
	// transfers, the analytic slow-start charge.
	ExtraLatency sim.Duration

	links [6]int
	nLink int
	rate  float64 // bits/s, valid after Solve
}

// Rate returns the flow's last solved max-min rate in bits/s. The driver
// converts it to a bandwidth-delay product when warm-starting the packet
// sender at a fluid→packet hand-off.
func (fs *FlowState) Rate() float64 { return fs.rate }

// RemainingPayload converts the unserved wire bytes back into payload bytes
// for hand-off into a packet segment, clamped to [1, Flow.Size]: a flow the
// fluid layer still holds always has at least one byte left to deliver.
func (fs *FlowState) RemainingPayload() int64 {
	p := int64(fs.RemainingWire * float64(pkt.MTUPayload) / float64(pkt.MTUBytes))
	if p < 1 {
		p = 1
	}
	if p > fs.Flow.Size {
		p = fs.Flow.Size
	}
	return p
}

// Solver state reused across Solve calls to avoid per-event allocation.
type solveScratch struct {
	capLeft []float64
	cnt     []int
	sat     []bool
	used    []int
}

func newSolveScratch(nLinks int) *solveScratch {
	return &solveScratch{
		capLeft: make([]float64, nLinks),
		cnt:     make([]int, nLinks),
		sat:     make([]bool, nLinks),
	}
}

// Solve assigns max-min fair rates to flows by progressive filling: find
// the link with the smallest fair share, freeze its flows at that share,
// subtract, repeat. Marks each bottleneck link saturated in scratch.sat
// (consumed by the occupancy synthesizer).
func (m *Model) solve(flows []*FlowState, s *solveScratch) {
	// The previous solve's restore pass left cnt at each link's crossing
	// count (for the occupancy readers); zero them before rebuilding, or the
	// cnt==0 guard below never admits a link into `used` and every flow
	// falls through to the line-rate fallback.
	for _, l := range s.used {
		s.cnt[l] = 0
	}
	s.used = s.used[:0]
	for _, f := range flows {
		f.rate = 0
		for _, l := range f.links[:f.nLink] {
			if s.cnt[l] == 0 {
				s.used = append(s.used, l)
				s.capLeft[l] = m.caps[l]
				s.sat[l] = false
			}
			s.cnt[l]++
		}
	}
	unfixed := len(flows)
	for unfixed > 0 {
		best := -1.0
		bl := -1
		for _, l := range s.used {
			if s.cnt[l] == 0 {
				continue
			}
			fair := s.capLeft[l] / float64(s.cnt[l])
			if fair < 0 {
				fair = 0
			}
			if bl == -1 || fair < best {
				best, bl = fair, l
			}
		}
		if bl == -1 {
			// Unreachable: every flow crosses its hostUp link. Freeze the
			// stragglers at line rate rather than loop forever.
			for _, f := range flows {
				if f.rate == 0 {
					f.rate = float64(m.Cfg.ServerRate)
					unfixed--
				}
			}
			break
		}
		s.sat[bl] = true
		for _, f := range flows {
			if f.rate != 0 {
				continue
			}
			crosses := false
			for _, l := range f.links[:f.nLink] {
				if l == bl {
					crosses = true
					break
				}
			}
			if !crosses {
				continue
			}
			f.rate = best
			for _, l := range f.links[:f.nLink] {
				s.capLeft[l] -= best
				s.cnt[l]--
			}
			unfixed--
		}
	}
	// Restore per-link active counts for the occupancy/trigger readers
	// (solve consumed them while freezing).
	for _, f := range flows {
		for _, l := range f.links[:f.nLink] {
			s.cnt[l]++
		}
	}
}

// SlowStartExtra is the analytic additive delay of DCTCP slow start: from
// an initial window of 10 MSS the sender ships one cwnd per RTT, idling
// rtt − TxTime(cwnd) between rounds, until the window covers the
// bandwidth-delay product or the flow is done. A rate abstraction misses
// exactly these idle gaps, so fluid-completed lossy flows are charged them
// explicitly.
func SlowStartExtra(size int64, rtt sim.Duration, rate int64) sim.Duration {
	cw := int64(10 * pkt.MTUPayload)
	sent := int64(0)
	var extra sim.Duration
	for sent+cw < size {
		gap := rtt - sim.TxTime(int(cw), rate)
		if gap <= 0 {
			break
		}
		extra += gap
		sent += cw
		cw *= 2
	}
	return extra
}

func (m *Model) checkHost(h int) {
	if h < 0 || h >= m.nHosts {
		panic(fmt.Sprintf("fluid: host %d out of range [0,%d)", h, m.nHosts))
	}
}
