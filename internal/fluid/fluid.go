// Package fluid is the rate-based flow-progress layer of the
// hybrid-fidelity engine: between "interesting" events it advances flows
// analytically — per-flow max-min fair rates over the exact ECMP paths the
// packet engine would route (topo.Config.PathOf), served as wire bytes —
// instead of forwarding MTUs one event at a time.
//
// The package has three parts:
//
//   - Extract (schedule.go) replays the run's real workload generators on a
//     throwaway engine to obtain the exact flow launch schedule the packet
//     engine would see: same seeds, same named RNG streams, same structured
//     flow IDs, same arrival instants. Fast-forwarding never changes WHAT
//     is offered, only how its progress is computed.
//   - Model (model.go) is the capacity graph: host access links plus every
//     individual ToR–agg and agg–core link, so per-flow ECMP hash
//     collisions — the load imbalance that actually congests a Clos —
//     survive the abstraction. Solve computes max-min rates by progressive
//     filling (the switches schedule priorities round-robin, so lossless
//     and lossy share links fairly and a single-class fill is the right
//     model).
//   - Sim (sim.go) is the fluid stepper: an event loop over arrivals and
//     completions that also evaluates the fidelity triggers. It never
//     crosses a trigger: it stops AT the trigger instant and hands control
//     back to the driver, which runs a full packet segment
//     (internal/exp.runHybridFluid) and returns with residual flow state.
//
// Fidelity triggers (fluid → packet): a scheduled incast burst within
// PreMargin; an arrival pushing an access link's sharing degree to
// DegreeTrigger (fan-in convergence is where PFC and drops are born); the
// synthesized occupancy estimate crossing GuardFrac of the shared buffer.
// Fault injection disables fluid mode entirely — the whole run is a packet
// segment. PFC pause transitions can only exist inside packet segments
// (fluid rates are feasible by construction), so the packet→fluid direction
// is guarded instead by the driver's quiescence dwell: no new pause frames,
// low resident bytes, and no trigger predicate holding for QuiesceDwell
// consecutive QuiesceStep checks.
//
// Accuracy model. A flow served alone completes in exactly its ideal FCT
// (slowdown 1.0) by construction: service time is TxTime(wireBytes,
// bottleneck) and the recorded completion adds the same base-path-latency
// tail the ideal-FCT formula uses. DCTCP's slow-start ramp — the one
// first-order effect a rate abstraction misses at low load — is charged as
// an analytic additive delay (SlowStartExtra). Everything second-order
// (ECN marking dynamics, pacer quantization, PFC micro-pauses) is what the
// divergence-bound invariance test budgets its epsilon for.
package fluid

import (
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
)

// Params are the fidelity-controller tunables. Zero values are replaced by
// DefaultParams in NewSim; the defaults were calibrated against the pure
// packet engine on the Fig. 3/7/8 scenarios (see TestHybridDivergence).
type Params struct {
	// DegreeTrigger cuts to packet fidelity when an arrival would bring the
	// number of active flows sharing one access link (source uplink or
	// destination downlink) to this count or more. The default of 2 means
	// ANY access-link sharing is simulated at packet fidelity — the fluid
	// layer then only fast-forwards non-contending spans, where it is exact
	// by construction (solo slowdown 1.0). Raise it to trade accuracy for
	// speed on coarse sweeps.
	DegreeTrigger int
	// PreMargin cuts to packet fidelity this long before a scheduled
	// incast burst, so the fan-in hits a warmed-up packet engine.
	PreMargin sim.Duration
	// GuardFrac cuts to packet fidelity when any switch's synthesized
	// occupancy estimate exceeds this fraction of its shared buffer.
	GuardFrac float64
	// QCong is the synthesized standing-queue size, in bytes, charged to a
	// saturated (max-min bottleneck) link's switch.
	QCong int64
	// QFlow is the synthesized per-flow residency, in bytes, charged to
	// every switch a flow traverses.
	QFlow int64

	// The remaining knobs steer the driver's packet→fluid direction.

	// QuiesceStep is how often a running packet segment re-evaluates the
	// quiescence predicate.
	QuiesceStep sim.Duration
	// QuiesceDwell is how many consecutive quiet checks end a segment.
	QuiesceDwell int
	// QuiesceResident is the resident-byte bound under which the fabric
	// counts as quiet.
	QuiesceResident int64
	// RecoveredFrac gates quiescence on DCQCN rate recovery: the fabric is
	// not quiet while any in-progress lossless sender's current rate sits
	// below this fraction of line rate. The fluid solver serves every flow
	// at its instantaneous max-min share; handing it a sender that is still
	// paying off a congestion cut forgets ~milliseconds of throttling.
	RecoveredFrac float64
	// MinSegment is the minimum packet-segment length.
	MinSegment sim.Duration
}

// DefaultParams returns the calibrated controller settings.
func DefaultParams() Params {
	return Params{
		DegreeTrigger:   2,
		PreMargin:       50 * sim.Microsecond,
		GuardFrac:       0.5,
		QCong:           150_000,
		QFlow:           pkt.MTUBytes,
		QuiesceStep:     100 * sim.Microsecond,
		QuiesceDwell:    2,
		QuiesceResident: 64 * pkt.MTUBytes,
		RecoveredFrac:   0.9,
		MinSegment:      200 * sim.Microsecond,
	}
}

// withDefaults fills zero fields from DefaultParams.
func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.DegreeTrigger <= 0 {
		p.DegreeTrigger = d.DegreeTrigger
	}
	if p.PreMargin <= 0 {
		p.PreMargin = d.PreMargin
	}
	if p.GuardFrac <= 0 {
		p.GuardFrac = d.GuardFrac
	}
	if p.QCong <= 0 {
		p.QCong = d.QCong
	}
	if p.QFlow <= 0 {
		p.QFlow = d.QFlow
	}
	if p.QuiesceStep <= 0 {
		p.QuiesceStep = d.QuiesceStep
	}
	if p.QuiesceDwell <= 0 {
		p.QuiesceDwell = d.QuiesceDwell
	}
	if p.QuiesceResident <= 0 {
		p.QuiesceResident = d.QuiesceResident
	}
	if p.RecoveredFrac <= 0 {
		p.RecoveredFrac = d.RecoveredFrac
	}
	if p.MinSegment <= 0 {
		p.MinSegment = d.MinSegment
	}
	return p
}
