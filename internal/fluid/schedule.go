package fluid

import (
	"l2bm/internal/sim"
	"l2bm/internal/transport"
	"l2bm/internal/workload"
)

// FlowArrival is one scheduled launch: a pristine flow descriptor whose
// Start field is the arrival instant, plus its traffic-class provenance.
type FlowArrival struct {
	Flow   transport.Flow
	Incast bool
}

// Schedule is the complete, deterministic launch plan of a run: every flow
// the workload generators would start within the window, in launch order
// (ascending Start, generator event order within a tick). The retained
// Incast generator carries the query bookkeeping — feed flow completions to
// Incast.OnFlowComplete and read CompletedResponseTimes, exactly as the
// packet path does.
type Schedule struct {
	Flows  []FlowArrival
	Incast *workload.Incast
}

// Workload names the generators whose launch schedule Extract replays.
// Configs are the same structs the packet path passes to
// workload.NewPoisson/NewIncast; Observer fields are ignored (the extractor
// installs its own collector).
type Workload struct {
	Poisson []workload.PoissonConfig
	Incast  *workload.IncastConfig
}

// collector is the Sink the throwaway engine's generators feed. It records
// a value copy of every flow in launch order.
type collector struct {
	sch    *Schedule
	incast bool
}

func (c *collector) StartFlow(f *transport.Flow) {
	c.sch.Flows = append(c.sch.Flows, FlowArrival{Flow: *f, Incast: c.incast})
}

// Extract replays the workload generators on a throwaway engine seeded like
// the real run and returns the exact launch schedule. Exactness is by
// construction, not by re-deriving RNG draws: the generators' named random
// streams (sim.Source.Stream) depend only on the seed and the stream name,
// and their tick chains are self-scheduling, so the (time, src, dst, size,
// ID) sequence each generator produces is identical whether or not packet
// events run in between. Install order must match the packet path's
// (callers pass Poisson configs in the same order run.go installs them).
func Extract(seed int64, wl Workload) (*Schedule, error) {
	eng := sim.NewEngine(seed)
	sch := &Schedule{}

	var window sim.Duration
	for i := range wl.Poisson {
		cfg := wl.Poisson[i]
		cfg.Observer = nil
		g, err := workload.NewPoisson(eng, &collector{sch: sch}, cfg)
		if err != nil {
			return nil, err
		}
		g.Install()
		if cfg.Window > window {
			window = cfg.Window
		}
	}
	if wl.Incast != nil {
		cfg := *wl.Incast
		cfg.Observer = nil
		g, err := workload.NewIncast(eng, &collector{sch: sch, incast: true}, cfg)
		if err != nil {
			return nil, err
		}
		g.Install()
		sch.Incast = g
		if cfg.Window > window {
			window = cfg.Window
		}
	}

	eng.Run(sim.Time(window))
	return sch, nil
}

// NextIncastAt returns the Start of the first incast arrival at index ≥
// from, or (0, false) when none remains. Used by the fluid stepper's burst
// pre-trigger.
func (s *Schedule) NextIncastAt(from int) (sim.Time, bool) {
	for i := from; i < len(s.Flows); i++ {
		if s.Flows[i].Incast {
			return s.Flows[i].Flow.Start, true
		}
	}
	return 0, false
}
