// Package transport holds the pieces shared by the DCTCP and DCQCN
// endpoints: the environment they run in (clock, NIC, timers) and the flow
// descriptor the workload and metrics layers exchange.
package transport

import (
	"fmt"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
)

// Env is the world a transport endpoint sees: the simulated clock, the host
// NIC to emit packets through, and the event scheduler for timers. The host
// implements it.
type Env interface {
	// Now returns the current simulated time.
	Now() sim.Time
	// Send enqueues a packet on the host NIC.
	Send(p *pkt.Packet)
	// Schedule arranges fn to run after delay and returns a cancellable
	// reference.
	Schedule(delay sim.Duration, fn func()) sim.EventRef
	// NICBacklog returns the bytes queued on the NIC for priority prio,
	// letting rate-based senders gate their pacing while PFC holds the
	// port down.
	NICBacklog(prio int) int
	// Pool returns the packet pool endpoints source their frames from. A
	// nil pool is valid and means plain heap allocation (the pooled
	// constructors are nil-receiver safe), so test environments can return
	// nil without changing behaviour.
	Pool() *pkt.Pool
}

// Flow describes one application transfer. The workload layer creates it,
// the sending host runs it, and the metrics layer matches its completion by
// ID.
type Flow struct {
	ID   pkt.FlowID
	Src  int
	Dst  int
	Size int64
	// Priority and Class choose the switch queue and loss behaviour.
	Priority int
	Class    pkt.Class
	// Start is when the application initiated the flow.
	Start sim.Time
}

// Validate reports a descriptive error for malformed flows.
func (f *Flow) Validate() error {
	switch {
	case f.Size <= 0:
		return fmt.Errorf("transport: flow %d has non-positive size %d", f.ID, f.Size)
	case f.Src == f.Dst:
		return fmt.Errorf("transport: flow %d sends to itself (host %d)", f.ID, f.Src)
	case f.Priority < 0 || f.Priority >= pkt.NumPriorities:
		return fmt.Errorf("transport: flow %d has invalid priority %d", f.ID, f.Priority)
	default:
		return nil
	}
}
