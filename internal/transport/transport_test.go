package transport

import (
	"testing"

	"l2bm/internal/pkt"
)

func TestFlowValidate(t *testing.T) {
	valid := Flow{ID: 1, Src: 0, Dst: 1, Size: 1000, Priority: pkt.PrioLossy, Class: pkt.ClassLossy}

	tests := []struct {
		name    string
		mutate  func(*Flow)
		wantErr bool
	}{
		{"valid", func(*Flow) {}, false},
		{"zero size", func(f *Flow) { f.Size = 0 }, true},
		{"negative size", func(f *Flow) { f.Size = -5 }, true},
		{"self send", func(f *Flow) { f.Dst = f.Src }, true},
		{"priority too high", func(f *Flow) { f.Priority = pkt.NumPriorities }, true},
		{"negative priority", func(f *Flow) { f.Priority = -1 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f := valid
			tt.mutate(&f)
			if err := f.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}
