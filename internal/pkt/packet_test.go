package pkt

import (
	"strings"
	"testing"
)

func TestNewDataSizes(t *testing.T) {
	p := NewData(7, 1, 2, PrioLossless, ClassLossless, 5000, MTUPayload)
	if p.Size != MTUBytes {
		t.Errorf("Size = %d, want %d", p.Size, MTUBytes)
	}
	if p.End() != 6000 {
		t.Errorf("End() = %d, want 6000", p.End())
	}
	if p.Kind != KindData || p.Class != ClassLossless {
		t.Errorf("wrong kind/class: %v/%v", p.Kind, p.Class)
	}
}

func TestControlPacketsAreControlClass(t *testing.T) {
	ack := NewAck(1, 2, 3, 999, true)
	cnp := NewCNP(1, 2, 3)
	pfc := NewPFC(0, true)
	for _, p := range []*Packet{ack, cnp, pfc} {
		if p.Class != ClassControl {
			t.Errorf("%v has class %v, want control", p.Kind, p.Class)
		}
		if p.Priority != PrioControl {
			t.Errorf("%v has priority %d, want %d", p.Kind, p.Priority, PrioControl)
		}
		if p.Size != CtrlBytes {
			t.Errorf("%v has size %d, want %d", p.Kind, p.Size, CtrlBytes)
		}
	}
	if !ack.ECE {
		t.Error("ACK did not carry ECE echo")
	}
}

func TestPFCFrameFields(t *testing.T) {
	pause := NewPFC(3, true)
	resume := NewPFC(3, false)
	if !pause.PFCPause || resume.PFCPause {
		t.Error("PFC pause flags wrong")
	}
	if pause.PFCPriority != 3 {
		t.Errorf("PFCPriority = %d, want 3", pause.PFCPriority)
	}
}

func TestStringForms(t *testing.T) {
	tests := []struct {
		p    *Packet
		want string
	}{
		{NewData(1, 0, 1, PrioLossy, ClassLossy, 0, 100), "data{"},
		{NewAck(1, 0, 1, 5, false), "ack{"},
		{NewCNP(1, 0, 1), "cnp{"},
		{NewPFC(0, true), "pfc{pause"},
		{NewPFC(0, false), "pfc{resume"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); !strings.HasPrefix(got, tt.want) {
			t.Errorf("String() = %q, want prefix %q", got, tt.want)
		}
	}
}

func TestKindAndClassStrings(t *testing.T) {
	if KindData.String() != "data" || KindPFC.String() != "pfc" {
		t.Error("Kind.String wrong")
	}
	if ClassLossless.String() != "lossless" || ClassLossy.String() != "lossy" || ClassControl.String() != "control" {
		t.Error("Class.String wrong")
	}
	if !strings.Contains(Kind(99).String(), "99") || !strings.Contains(Class(99).String(), "99") {
		t.Error("unknown enum String should include the raw value")
	}
}

func TestPriorityAssignmentsDistinct(t *testing.T) {
	if PrioLossless == PrioLossy || PrioLossy == PrioControl || PrioLossless == PrioControl {
		t.Error("default priorities must be distinct")
	}
	for _, p := range []int{PrioLossless, PrioLossy, PrioControl} {
		if p < 0 || p >= NumPriorities {
			t.Errorf("priority %d out of range", p)
		}
	}
}
