package pkt

import "testing"

// TestExportImportMovesOwnership: the shard-boundary handoff — Get from
// pool A, Export, Import into pool B, Put into B — must leave both pools
// with Live() == 0 and no foreign misclassification.
func TestExportImportMovesOwnership(t *testing.T) {
	a, b := NewPool(), NewPool()
	p := a.Data(1, 0, 1, 0, ClassLossy, 0, 1000)
	if a.Live() != 1 {
		t.Fatalf("after Get: a.Live() = %d, want 1", a.Live())
	}
	a.Export(p)
	if a.Live() != 0 {
		t.Fatalf("after Export: a.Live() = %d, want 0", a.Live())
	}
	b.Import(p)
	if b.Live() != 1 {
		t.Fatalf("after Import: b.Live() = %d, want 1", b.Live())
	}
	b.Put(p)
	if a.Live() != 0 || b.Live() != 0 {
		t.Fatalf("after Put: a.Live()=%d b.Live()=%d, want 0/0", a.Live(), b.Live())
	}
	if s := b.Stats(); s.Foreign != 0 {
		t.Fatalf("imported packet misclassified as foreign: %+v", s)
	}
	// The imported packet is now on b's free list and must be reusable.
	q := b.Get()
	if q != p {
		t.Error("imported packet did not enter the importing pool's free list")
	}
}

// TestExportImportDebugPools: debug pools move the packet between live
// maps, so leak attribution follows ownership.
func TestExportImportDebugPools(t *testing.T) {
	a, b := NewDebugPool(), NewDebugPool()
	p := a.Get()
	a.Export(p)
	b.Import(p)
	if n := len(a.Leaked()); n != 0 {
		t.Fatalf("exporter still tracks %d packets", n)
	}
	if n := len(b.Leaked()); n != 1 {
		t.Fatalf("importer tracks %d packets, want 1", n)
	}
	b.Put(p)
	if n := len(b.Leaked()); n != 0 {
		t.Fatalf("importer leaks %d after Put", n)
	}
}

// TestExportUnownedPanicsInDebug: exporting a packet the pool never handed
// out is a wiring bug the debug pool must catch.
func TestExportUnownedPanicsInDebug(t *testing.T) {
	a := NewDebugPool()
	defer func() {
		if recover() == nil {
			t.Fatal("debug pool exported a packet it does not own")
		}
	}()
	a.Export(&Packet{})
}

// TestImportFreedPanics: importing a packet that was already recycled
// would alias the free list across pools.
func TestImportFreedPanics(t *testing.T) {
	a, b := NewPool(), NewPool()
	p := a.Get()
	a.Put(p)
	defer func() {
		if recover() == nil {
			t.Fatal("pool imported a freed packet")
		}
	}()
	b.Import(p)
}

// TestNilPoolTransferNoop: heap mode (nil pools) must keep working when
// the wiring calls Export/Import unconditionally.
func TestNilPoolTransferNoop(t *testing.T) {
	var a, b *Pool
	p := a.Data(1, 0, 1, 0, ClassLossy, 0, 1000)
	a.Export(p)
	b.Import(p)
	b.Put(p)
	if a.Live() != 0 || b.Live() != 0 {
		t.Fatal("nil pools reported live packets")
	}
}

// TestProductionForeignDetectionWithTransfers: after an import, a Put of
// the imported packet must NOT count as foreign, while a genuinely foreign
// Put after the books balance still must.
func TestProductionForeignDetectionWithTransfers(t *testing.T) {
	a, b := NewPool(), NewPool()
	p := a.Get()
	a.Export(p)
	b.Import(p)
	b.Put(p)
	if s := b.Stats(); s.Foreign != 0 {
		t.Fatalf("imported packet counted foreign: %+v", s)
	}
	b.Put(&Packet{}) // books balanced: this one cannot match a checkout
	if s := b.Stats(); s.Foreign != 1 {
		t.Fatalf("plain-constructor packet not counted foreign: %+v", s)
	}
}
