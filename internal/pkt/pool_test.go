package pkt

import (
	"strings"
	"testing"
)

// TestPoolGetPutReuses pins the free-list contract: a returned packet is the
// one handed out next, fully reset to the zero state (reset-on-reuse).
func TestPoolGetPutReuses(t *testing.T) {
	pl := NewPool()
	p := pl.Data(FlowID(7), 1, 2, PrioLossless, ClassLossless, 42, 1000)
	if p.Size != 1000+HeaderBytes || p.Seq != 42 {
		t.Fatalf("pooled constructor mismatch: %+v", p)
	}
	pl.Put(p)
	q := pl.Get()
	if q != p {
		t.Fatal("free list did not hand back the recycled packet")
	}
	if q.Kind != 0 || q.Seq != 0 || q.Size != 0 || q.ECE || q.PayloadLen != 0 {
		t.Fatalf("recycled packet not reset: %+v", q)
	}
	st := pl.Stats()
	if st.Gets != 2 || st.Puts != 1 || st.News != 1 {
		t.Fatalf("stats = %+v, want Gets=2 Puts=1 News=1", st)
	}
	if pl.Live() != 1 {
		t.Fatalf("Live = %d, want 1", pl.Live())
	}
}

// TestPoolDoubleFreePanics: a double Put would alias two owners onto one
// object; it must fail loudly in both production and debug pools.
func TestPoolDoubleFreePanics(t *testing.T) {
	for _, mk := range []func() *Pool{NewPool, NewDebugPool} {
		pl := mk()
		p := pl.Get()
		pl.Put(p)
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Error("double Put did not panic")
				} else if !strings.Contains(r.(string), "double free") {
					t.Errorf("unexpected panic: %v", r)
				}
			}()
			pl.Put(p)
		}()
	}
}

// TestDebugPoolPoisonAndLeaked: debug pools poison freed packets with
// KindFreed and report outstanding checkouts via Leaked.
func TestDebugPoolPoisonAndLeaked(t *testing.T) {
	pl := NewDebugPool()
	if !pl.Debug() {
		t.Fatal("debug pool not armed")
	}
	a := pl.Get()
	b := pl.Get()
	pl.Put(a)
	if a.Kind != KindFreed {
		t.Fatalf("freed packet not poisoned: kind=%v", a.Kind)
	}
	leaked := pl.Leaked()
	if len(leaked) != 1 || leaked[0] != b {
		t.Fatalf("Leaked = %v, want [%p]", leaked, b)
	}
	if pl.Live() != 1 {
		t.Fatalf("Live = %d, want 1", pl.Live())
	}
	pl.Put(b)
	if len(pl.Leaked()) != 0 || pl.Live() != 0 {
		t.Fatalf("drained pool still reports leaks: %v live=%d", pl.Leaked(), pl.Live())
	}
	// Re-Get clears the poison.
	c := pl.Get()
	if c.Kind == KindFreed {
		t.Fatal("Get handed out a still-poisoned packet")
	}
}

// TestPoolForeignAdoption: packets built by the plain constructors may enter
// a pooled fabric; Put adopts them (counted Foreign) instead of rejecting,
// and Live stays balanced.
func TestPoolForeignAdoption(t *testing.T) {
	for _, mk := range []func() *Pool{NewPool, NewDebugPool} {
		pl := mk()
		own := pl.Get()
		foreign := NewData(FlowID(1), 0, 1, PrioLossy, ClassLossy, 0, 500)
		pl.Put(foreign)
		pl.Put(own)
		st := pl.Stats()
		if st.Foreign != 1 {
			t.Fatalf("Foreign = %d, want 1", st.Foreign)
		}
		if pl.Live() != 0 {
			t.Fatalf("Live = %d after balanced Puts, want 0", pl.Live())
		}
	}
}

// TestNilPoolDegradesToHeap: every method must be nil-receiver safe so
// pooling stays an opt-in wiring decision with no call-site branches.
func TestNilPoolDegradesToHeap(t *testing.T) {
	var pl *Pool
	p := pl.Data(FlowID(3), 0, 1, PrioLossless, ClassLossless, 9, 100)
	if p == nil || p.Seq != 9 {
		t.Fatalf("nil-pool constructor broken: %+v", p)
	}
	pl.Put(p) // no-op, must not panic
	pl.Put(nil)
	if pl.Get() == nil {
		t.Fatal("nil-pool Get returned nil")
	}
	if pl.Live() != 0 || pl.Debug() || pl.Leaked() != nil {
		t.Fatal("nil-pool observers not zero-valued")
	}
	if (pl.Stats() != PoolStats{}) {
		t.Fatalf("nil-pool Stats = %+v", pl.Stats())
	}
}

// TestPooledConstructorsMatchPlain: the pooled constructors are the plain
// New* constructors on a nil receiver, so the two paths cannot drift; verify
// field-for-field equality anyway to pin the contract.
func TestPooledConstructorsMatchPlain(t *testing.T) {
	pl := NewPool()
	f := FlowID(11)
	cases := []struct {
		name         string
		plain, poold *Packet
	}{
		{"data", NewData(f, 1, 2, PrioLossless, ClassLossless, 5, 800), pl.Data(f, 1, 2, PrioLossless, ClassLossless, 5, 800)},
		{"ack", NewAck(f, 2, 1, 6, true), pl.Ack(f, 2, 1, 6, true)},
		{"cnp", NewCNP(f, 2, 1), pl.CNP(f, 2, 1)},
		{"nack", NewNack(f, 2, 1, 3), pl.Nack(f, 2, 1, 3)},
		{"pfc", NewPFC(PrioLossless, true), pl.PFC(PrioLossless, true)},
	}
	for _, c := range cases {
		a, b := *c.plain, *c.poold
		a.pooled, b.pooled = false, false
		if a != b {
			t.Errorf("%s: plain %+v != pooled %+v", c.name, a, b)
		}
	}
}
