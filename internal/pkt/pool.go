package pkt

import "fmt"

// Pool is a per-engine free list of Packet objects. The simulator's hottest
// allocation is one Packet per data/ACK/CNP/PFC frame; routing every frame
// through a pool turns that into a pointer pop, so GC pressure no longer
// bounds events/s at scale.
//
// Ownership contract (the "one-owner invariant" from Packet's doc comment):
// a packet is owned by exactly one queue, link, or in-flight event at a
// time. The *sinks* recycle — host delivery, switch admission drops, PFC
// consumption and fault drops call Put when the frame is dead; everything in
// between only hands the pointer onward. Handlers invoked at a sink (e.g. a
// transport's HandleAck) must not retain the packet past their return.
//
// A Pool is deliberately NOT safe for concurrent use: each simulation engine
// owns one pool, and the parallel experiment scheduler gives every worker
// its own engine, so the fast path needs no locks.
//
// All methods are nil-receiver safe: a nil *Pool degrades to plain heap
// allocation on Get (and the pooled constructors) and to a no-op on Put.
// That makes pooling an opt-in wiring decision — and gives the determinism
// tests their pool-disabled control run — without branching at call sites.
type Pool struct {
	free  []*Packet
	stats PoolStats

	// live tracks outstanding Get results in debug mode (nil otherwise).
	live map[*Packet]struct{}
}

// PoolStats counts pool traffic for leak audits and benchmarks.
type PoolStats struct {
	// Gets and Puts count checkouts and returns.
	Gets, Puts uint64
	// News counts Gets served by a fresh heap allocation (free list empty).
	News uint64
	// Foreign counts Puts of packets the pool never handed out (packets
	// built by the plain New* constructors entering a pooled fabric). They
	// are adopted into the free list, not rejected.
	Foreign uint64
	// Exported and Imported count ownership transfers across pools: a
	// packet crossing a shard boundary is Exported from the source port's
	// pool when it enters the cross-shard mailbox and Imported into the
	// destination port's pool when the epoch conductor drains it. The
	// packet eventually Puts into the *importing* pool, so per-pool Live
	// stays exact and a fleet-wide leak audit is the sum over shards.
	Exported, Imported uint64
}

// NewPool returns an empty production pool.
func NewPool() *Pool { return &Pool{} }

// NewDebugPool returns a pool with the use-after-free audit armed: every
// outstanding packet is tracked in a map, Leaked reports the packets never
// returned, and freed packets are poisoned (Kind = KindFreed) so any path
// that touches one after Put misbehaves loudly rather than silently. Debug
// mode costs a map operation per Get/Put; production pools skip it.
func NewDebugPool() *Pool { return &Pool{live: make(map[*Packet]struct{})} }

// Debug reports whether the audit map is armed.
func (pl *Pool) Debug() bool { return pl != nil && pl.live != nil }

// Stats returns a snapshot of the pool counters (zero for a nil pool).
func (pl *Pool) Stats() PoolStats {
	if pl == nil {
		return PoolStats{}
	}
	return pl.stats
}

// Live returns the number of packets currently checked out: checkouts
// (Gets plus cross-pool Imports) minus returns of pool-owned packets and
// cross-pool Exports. Zero after a fully drained run — the leak audit the
// determinism suite asserts, per shard.
func (pl *Pool) Live() int64 {
	if pl == nil {
		return 0
	}
	return int64(pl.stats.Gets+pl.stats.Imported) -
		int64(pl.stats.Puts-pl.stats.Foreign) - int64(pl.stats.Exported)
}

// Export relinquishes ownership of an outstanding packet: the packet is no
// longer counted against this pool and MUST subsequently be Imported into
// exactly one other pool (the shard-boundary handoff — the source port's
// pool exports into the mailbox, the destination's imports at the epoch
// barrier). Exporting from a nil pool is a no-op: the packet was heap-
// allocated and the importing side adopts it as foreign when it dies.
func (pl *Pool) Export(p *Packet) {
	if pl == nil || p == nil {
		return
	}
	if p.pooled {
		panic(fmt.Sprintf("pkt: exporting a freed packet %s", p))
	}
	pl.stats.Exported++
	if pl.live != nil {
		if _, ok := pl.live[p]; ok {
			delete(pl.live, p)
		} else {
			panic(fmt.Sprintf("pkt: exporting packet %s this pool does not own", p))
		}
	}
}

// Import assumes ownership of a packet Exported from another pool. From
// here on the packet counts against this pool's Live and must Put here
// when it dies. Importing into a nil pool is a no-op (heap mode: nobody
// tracks it, Put is a no-op too).
func (pl *Pool) Import(p *Packet) {
	if pl == nil || p == nil {
		return
	}
	if p.pooled {
		panic(fmt.Sprintf("pkt: importing a freed packet %s", p))
	}
	pl.stats.Imported++
	if pl.live != nil {
		if _, ok := pl.live[p]; ok {
			panic(fmt.Sprintf("pkt: importing packet %s this pool already owns", p))
		}
		pl.live[p] = struct{}{}
	}
}

// Leaked returns the outstanding packets in debug mode (order unspecified),
// or nil for a production or nil pool. Useful in test failure messages: the
// packets' fields identify the leaking flow.
func (pl *Pool) Leaked() []*Packet {
	if pl == nil || pl.live == nil {
		return nil
	}
	out := make([]*Packet, 0, len(pl.live))
	for p := range pl.live {
		out = append(out, p)
	}
	return out
}

// Get checks a zeroed packet out of the pool (or heap-allocates when the
// free list is empty or the pool is nil). The caller owns it until it
// reaches a sink that calls Put.
func (pl *Pool) Get() *Packet {
	if pl == nil {
		return &Packet{}
	}
	pl.stats.Gets++
	var p *Packet
	if n := len(pl.free); n > 0 {
		p = pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		p.pooled = false
		p.Kind = 0 // clear the debug poison
	} else {
		pl.stats.News++
		p = &Packet{}
	}
	if pl.live != nil {
		pl.live[p] = struct{}{}
	}
	return p
}

// Put returns a dead packet to the free list, resetting every field so the
// next Get starts from a zero packet (reset-on-reuse). Putting nil, or
// putting into a nil pool, is a no-op. Putting the same packet twice without
// an intervening Get panics — a double free would alias two owners onto one
// object and corrupt the simulation silently otherwise.
func (pl *Pool) Put(p *Packet) {
	if pl == nil || p == nil {
		return
	}
	if p.pooled {
		panic(fmt.Sprintf("pkt: double free of pooled packet %s", p))
	}
	if pl.live != nil {
		if _, ok := pl.live[p]; ok {
			delete(pl.live, p)
		} else {
			pl.stats.Foreign++
		}
	} else if int64(pl.stats.Puts-pl.stats.Foreign) >=
		int64(pl.stats.Gets+pl.stats.Imported)-int64(pl.stats.Exported) {
		// Production pools cannot afford the map, but a Put that cannot
		// correspond to any outstanding checkout (Get or cross-pool
		// Import, net of Exports) is still countable as foreign
		// (plain-constructor packets entering a pooled fabric).
		pl.stats.Foreign++
	}
	pl.stats.Puts++
	*p = Packet{}
	p.pooled = true
	if pl.live != nil {
		p.Kind = KindFreed // poison: touching a freed packet is loud
	}
	pl.free = append(pl.free, p)
}

// --- pooled constructors ----------------------------------------------------
//
// These mirror the package-level New* constructors byte for byte; the plain
// constructors are implemented on a nil pool so the two paths cannot drift.

// Data builds a pooled data packet; see NewData.
func (pl *Pool) Data(f FlowID, src, dst int, prio int, class Class, seq int64, payload int) *Packet {
	p := pl.Get()
	p.Kind = KindData
	p.Flow = f
	p.Src = src
	p.Dst = dst
	p.Priority = prio
	p.Class = class
	p.Size = payload + HeaderBytes
	p.Seq = seq
	p.PayloadLen = payload
	return p
}

// Ack builds a pooled cumulative ACK; see NewAck.
func (pl *Pool) Ack(f FlowID, src, dst int, cumSeq int64, ece bool) *Packet {
	p := pl.Get()
	p.Kind = KindAck
	p.Flow = f
	p.Src = src
	p.Dst = dst
	p.Priority = PrioControl
	p.Class = ClassControl
	p.Size = CtrlBytes
	p.Seq = cumSeq
	p.ECE = ece
	return p
}

// CNP builds a pooled congestion-notification packet; see NewCNP.
func (pl *Pool) CNP(f FlowID, src, dst int) *Packet {
	p := pl.Get()
	p.Kind = KindCNP
	p.Flow = f
	p.Src = src
	p.Dst = dst
	p.Priority = PrioControl
	p.Class = ClassControl
	p.Size = CtrlBytes
	return p
}

// Nack builds a pooled go-back-N NACK; see NewNack.
func (pl *Pool) Nack(f FlowID, src, dst int, expected int64) *Packet {
	p := pl.Get()
	p.Kind = KindNack
	p.Flow = f
	p.Src = src
	p.Dst = dst
	p.Priority = PrioControl
	p.Class = ClassControl
	p.Size = CtrlBytes
	p.Seq = expected
	return p
}

// PFC builds a pooled pause/resume frame; see NewPFC.
func (pl *Pool) PFC(prio int, pause bool) *Packet {
	p := pl.Get()
	p.Kind = KindPFC
	p.Priority = PrioControl
	p.Class = ClassControl
	p.Size = CtrlBytes
	p.PFCPriority = prio
	p.PFCPause = pause
	return p
}
