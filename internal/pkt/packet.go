// Package pkt defines the on-wire units exchanged by the simulated network:
// data segments, acknowledgements, DCQCN congestion notifications and PFC
// control frames, together with the traffic-class taxonomy the switches use
// to treat lossless and lossy traffic differently.
package pkt

import (
	"fmt"

	"l2bm/internal/sim"
)

// Kind discriminates the packet variants the simulator exchanges.
type Kind int

const (
	// KindData is a transport payload segment.
	KindData Kind = iota + 1
	// KindAck is a (cumulative) TCP acknowledgement.
	KindAck
	// KindCNP is a DCQCN Congestion Notification Packet.
	KindCNP
	// KindPFC is an IEEE 802.1Qbb per-priority pause/resume frame. PFC
	// frames are consumed by the receiving port and never forwarded.
	KindPFC
	// KindNack is a go-back-N out-of-sequence NACK (RoCE-style): the
	// receiver tells the sender the next in-order byte it expects, asking
	// for a rewind. Only emitted when the lossless guarantee broke (fault
	// injection); the fault-free fabric never produces one.
	KindNack
)

// KindFreed is the poison value a debug Pool stamps on recycled packets: any
// code path that touches a packet after Put sees an impossible kind instead
// of plausible stale state. Never appears on a live packet.
const KindFreed Kind = -1

// String implements fmt.Stringer for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindAck:
		return "ack"
	case KindCNP:
		return "cnp"
	case KindPFC:
		return "pfc"
	case KindNack:
		return "nack"
	case KindFreed:
		return "freed"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Class is the loss behaviour a switch applies to a priority queue.
type Class int

const (
	// ClassLossless marks RDMA traffic protected by PFC: over-threshold
	// packets trigger pause frames and spill into headroom, never drop.
	ClassLossless Class = iota + 1
	// ClassLossy marks TCP-style traffic: over-threshold packets drop.
	ClassLossy
	// ClassControl marks tiny control packets (ACKs, CNPs) carried on a
	// dedicated strict-priority queue.
	ClassControl
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassLossless:
		return "lossless"
	case ClassLossy:
		return "lossy"
	case ClassControl:
		return "control"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Default priority-queue assignment. The paper isolates the two protocols in
// two of the eight 802.1p priorities; a third carries control packets.
const (
	// PrioLossless is the PFC-protected priority RDMA data rides on.
	PrioLossless = 0
	// PrioLossy is the priority TCP data rides on.
	PrioLossy = 3
	// PrioControl is the strict-priority control queue (ACK/CNP).
	PrioControl = 6
	// NumPriorities is the number of 802.1p priority queues per port.
	NumPriorities = 8
)

// Wire-size constants shared across the model.
const (
	// HeaderBytes approximates Ethernet+IP+transport headers per packet.
	HeaderBytes = 48
	// MTUPayload is the maximum transport payload per data packet.
	MTUPayload = 1000
	// MTUBytes is the maximum wire size of a data packet.
	MTUBytes = MTUPayload + HeaderBytes
	// CtrlBytes is the wire size of ACK/CNP/PFC frames.
	CtrlBytes = 64
)

// FlowID uniquely identifies a transport flow across the simulation.
type FlowID uint64

// Packet is one simulated frame. A packet object is owned by exactly one
// queue, link or in-flight event at a time (the one-owner invariant), so the
// switch-resident bookkeeping fields can be reused hop by hop — and so the
// sink that consumes the frame (host delivery, switch drop, PFC application,
// fault discard) can hand it back to a Pool for reuse. Code between source
// and sink must only pass the pointer onward, never retain it.
type Packet struct {
	Kind Kind
	Flow FlowID
	// Src and Dst are host IDs (indexes into the topology's host table).
	Src, Dst int
	// Priority selects the 802.1p queue (0..7).
	Priority int
	// Class tells the switch how to treat the packet when over threshold.
	Class Class
	// Size is the wire size in bytes, headers included.
	Size int
	// Seq is the first payload byte's offset for data packets and the
	// cumulative acknowledgement for ACKs.
	Seq int64
	// PayloadLen is the transport payload length of a data packet.
	PayloadLen int
	// CE is the ECN Congestion Experienced mark, set by switches.
	CE bool
	// ECE echoes CE back to the sender on ACKs (per-packet accurate echo).
	ECE bool
	// FlowFin marks the data packet carrying the last byte of its flow.
	FlowFin bool

	// PFC fields, meaningful when Kind == KindPFC.
	PFCPriority int
	PFCPause    bool // true = pause (XOFF), false = resume (XON)

	// SentAt is stamped by the transport when the packet first leaves the
	// sender, for RTT estimation.
	SentAt sim.Time

	// Switch-resident bookkeeping, valid only while the packet occupies a
	// switch's shared memory: the ingress port/priority it was admitted on
	// and the egress port index it is queued at.
	InPort, InPrio, OutPort int
	// InHeadroom records that the resident packet was charged to the PFC
	// headroom pool rather than the shared service pool.
	InHeadroom bool

	// pooled marks a packet currently sitting in a Pool's free list; Put
	// panics when it is already set (double-free detection at one branch of
	// cost, debug mode or not).
	pooled bool
}

// NewData builds a data packet for flow f carrying payload bytes
// [seq, seq+payload) from src to dst on the given priority/class. The New*
// constructors are the heap-allocating path, implemented on a nil Pool so
// they cannot drift from the pooled constructors.
func NewData(f FlowID, src, dst int, prio int, class Class, seq int64, payload int) *Packet {
	return (*Pool)(nil).Data(f, src, dst, prio, class, seq, payload)
}

// NewAck builds a cumulative ACK from src to dst. ece echoes the CE mark of
// the data packet being acknowledged.
func NewAck(f FlowID, src, dst int, cumSeq int64, ece bool) *Packet {
	return (*Pool)(nil).Ack(f, src, dst, cumSeq, ece)
}

// NewCNP builds a DCQCN congestion-notification packet for flow f from the
// notification point src back to the reaction point dst.
func NewCNP(f FlowID, src, dst int) *Packet {
	return (*Pool)(nil).CNP(f, src, dst)
}

// NewNack builds a go-back-N NACK for flow f from the receiver src back to
// the sender dst. expected is the next in-order byte the receiver wants.
func NewNack(f FlowID, src, dst int, expected int64) *Packet {
	return (*Pool)(nil).Nack(f, src, dst, expected)
}

// NewPFC builds a pause (XOFF) or resume (XON) frame for prio. PFC frames
// are link-local: Src/Dst are not routed.
func NewPFC(prio int, pause bool) *Packet {
	return (*Pool)(nil).PFC(prio, pause)
}

// End returns the offset one past the last payload byte of a data packet.
func (p *Packet) End() int64 { return p.Seq + int64(p.PayloadLen) }

// String renders a compact description for logs and test failures.
func (p *Packet) String() string {
	switch p.Kind {
	case KindPFC:
		verb := "resume"
		if p.PFCPause {
			verb = "pause"
		}
		return fmt.Sprintf("pfc{%s prio=%d}", verb, p.PFCPriority)
	case KindAck:
		return fmt.Sprintf("ack{flow=%d cum=%d ece=%v}", p.Flow, p.Seq, p.ECE)
	case KindCNP:
		return fmt.Sprintf("cnp{flow=%d}", p.Flow)
	case KindNack:
		return fmt.Sprintf("nack{flow=%d expected=%d}", p.Flow, p.Seq)
	default:
		return fmt.Sprintf("data{flow=%d seq=%d len=%d prio=%d ce=%v}",
			p.Flow, p.Seq, p.PayloadLen, p.Priority, p.CE)
	}
}
