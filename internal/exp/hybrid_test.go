package exp

import (
	"math"
	"strings"
	"testing"

	"l2bm/internal/sim"
)

// Divergence budget for hybrid fidelity against the pure packet engine on
// the same spec (common random numbers: identical offered workload). These
// are the "stated epsilon" of the acceptance bar, sized from calibration on
// the Fig. 3/7/8 tiny-scale scenarios and documented in DESIGN.md §14:
//
//   - Tail FCT slowdowns (p99) within 50% relative error. The hybrid
//     engine reproduces first-order contention (it runs the bursty spans
//     at packet fidelity) but not second-order history: L2BM's adaptive
//     sojourn thresholds and DCTCP's alpha restart fresh each packet
//     segment, which shifts tails without moving medians.
//   - Lossy drop counts within max(10, 15% of packet). Drops happen inside
//     packet segments, so counts track closely; the allowance covers
//     boundary flows whose windows were warm-started analytically.
//   - Flow accounting exact: both fidelities must see byte-identical
//     arrival schedules (fluid.Extract replays the real generators), so
//     FlowsStarted may not differ at all.
const (
	hybridP99Eps     = 0.5
	hybridDropFrac   = 0.15
	hybridDropFloor  = 10
	hybridTruncSlack = 2 // horizon-straddling flows may land on either side of the cut
)

// hybridDivergenceSpecs are the paper-figure scenarios the divergence bound
// is enforced on (CI runs this test as the epsilon-checked hybrid-vs-packet
// step). Tiny scale keeps the full matrix under a minute.
func hybridDivergenceSpecs() []HybridSpec {
	return []HybridSpec{
		{Name: "fig3", Policy: "L2BM", Scale: ScaleTiny, RDMALoad: 0.4, TCPLoad: 0.4, InterRackOnly: true},
		{Name: "fig7", Policy: "L2BM", Scale: ScaleTiny, RDMALoad: 0.4, TCPLoad: 0.3,
			Incast: &IncastSpec{Fanout: 4, RequestBytes: 200_000, QueryRate: 2000}},
		{Name: "fig8", Policy: "DT", Scale: ScaleTiny, RDMALoad: 0.4, TCPLoad: 0.6, InterRackOnly: true},
		{Name: "steady", Policy: "L2BM", Scale: ScaleTiny, RDMALoad: 0.02, TCPLoad: 0.02,
			InterRackOnly: true, WindowOverride: 40 * sim.Millisecond},
	}
}

// relErr is |a−b| / max(|b|, 1): relative when the reference is meaningful,
// absolute when it is near zero (an empty class has p99 = 0).
func relErr(a, b float64) float64 {
	den := math.Abs(b)
	if den < 1 {
		den = 1
	}
	return math.Abs(a-b) / den
}

// TestHybridDivergence is the divergence-bound invariance test: on the
// paper's scenarios, hybrid fidelity must stay within the stated epsilon of
// the packet engine on tail FCT and drop counts, with exact flow
// accounting.
func TestHybridDivergence(t *testing.T) {
	if testing.Short() {
		t.Skip("hybrid divergence matrix is a long test")
	}
	for _, spec := range hybridDivergenceSpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			pkSpec := spec
			pkSpec.Fidelity = FidelityPacket
			pk, err := RunHybrid(pkSpec)
			if err != nil {
				t.Fatal(err)
			}
			hySpec := spec
			hySpec.Fidelity = FidelityHybrid
			hy, err := RunHybrid(hySpec)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("packet: n=%d trunc=%d p99r=%.2f p99t=%.2f p99i=%.2f drops=%d events=%d",
				pk.FlowsStarted, pk.TruncatedFlows, pk.RDMAp99(), pk.TCPp99(), pk.Incastp99(), pk.LossyDrops, pk.Events)
			t.Logf("hybrid: n=%d trunc=%d p99r=%.2f p99t=%.2f p99i=%.2f drops=%d events=%d fluid=%d segs=%d",
				hy.FlowsStarted, hy.TruncatedFlows, hy.RDMAp99(), hy.TCPp99(), hy.Incastp99(), hy.LossyDrops, hy.Events,
				hy.FluidFlows, hy.PacketSegments)

			if hy.FlowsStarted != pk.FlowsStarted {
				t.Errorf("FlowsStarted diverged: hybrid %d, packet %d (schedules must be identical)",
					hy.FlowsStarted, pk.FlowsStarted)
			}
			if d := int(math.Abs(float64(hy.TruncatedFlows - pk.TruncatedFlows))); d > hybridTruncSlack {
				t.Errorf("TruncatedFlows diverged: hybrid %d, packet %d (slack %d)",
					hy.TruncatedFlows, pk.TruncatedFlows, hybridTruncSlack)
			}
			for _, m := range []struct {
				name   string
				hy, pk float64
			}{
				{"RDMA p99", hy.RDMAp99(), pk.RDMAp99()},
				{"TCP p99", hy.TCPp99(), pk.TCPp99()},
				{"incast p99", hy.Incastp99(), pk.Incastp99()},
			} {
				if e := relErr(m.hy, m.pk); e > hybridP99Eps {
					t.Errorf("%s diverged: hybrid %.3f, packet %.3f (rel err %.2f > %.2f)",
						m.name, m.hy, m.pk, e, hybridP99Eps)
				}
			}
			dropBand := hybridDropFrac * float64(pk.LossyDrops)
			if dropBand < hybridDropFloor {
				dropBand = hybridDropFloor
			}
			if d := math.Abs(float64(hy.LossyDrops) - float64(pk.LossyDrops)); d > dropBand {
				t.Errorf("drops diverged: hybrid %d, packet %d (|Δ| %.0f > %.0f)",
					hy.LossyDrops, pk.LossyDrops, d, dropBand)
			}
			if len(hy.AuditErrors) > 0 {
				t.Errorf("hybrid run reported audit errors: %v", hy.AuditErrors)
			}
		})
	}
}

// TestHybridSteadySpeedup pins the point of the whole exercise: on a
// steady-state-heavy window the hybrid engine must do a small fraction of
// the packet engine's event work. (The wall-clock version of this claim is
// BenchmarkHybridSteadyState.)
func TestHybridSteadySpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 40ms packet-fidelity window")
	}
	spec := HybridSpec{Name: "hyb-speedup", Policy: "L2BM", Scale: ScaleTiny,
		RDMALoad: 0.02, TCPLoad: 0.02, InterRackOnly: true,
		WindowOverride: 40 * sim.Millisecond}
	pkSpec := spec
	pkSpec.Fidelity = FidelityPacket
	pk, err := RunHybrid(pkSpec)
	if err != nil {
		t.Fatal(err)
	}
	hySpec := spec
	hySpec.Fidelity = FidelityHybrid
	hy, err := RunHybrid(hySpec)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("events: packet %d, hybrid %d (fluid-completed flows %d/%d)",
		pk.Events, hy.Events, hy.FluidFlows, hy.FlowsStarted)
	if hy.Events*10 > pk.Events {
		t.Errorf("hybrid ran %d packet events, want ≤ 1/10 of the packet engine's %d",
			hy.Events, pk.Events)
	}
}

// TestHybridDeterminism: the hybrid controller is seeded and its residual
// hand-offs are sorted, so two runs of the same spec must agree exactly —
// not within epsilon — on every reported number.
func TestHybridDeterminism(t *testing.T) {
	spec := HybridSpec{Name: "hyb-det", Policy: "DT", Scale: ScaleTiny,
		RDMALoad: 0.4, TCPLoad: 0.6, InterRackOnly: true, Fidelity: FidelityHybrid}
	a, err := RunHybrid(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunHybrid(spec)
	if err != nil {
		t.Fatal(err)
	}
	type snap struct {
		started, completed int
		trunc              int
		p99r, p99t         float64
		drops, ecn, pause  uint64
		events             uint64
		fluidFlows         int
		segs               int
		steps              uint64
	}
	take := func(r *Result) snap {
		return snap{r.FlowsStarted, r.FlowsCompleted, r.TruncatedFlows,
			r.RDMAp99(), r.TCPp99(), r.LossyDrops, r.ECNMarked, r.PauseFrames,
			r.Events, r.FluidFlows, r.PacketSegments, r.FluidSteps}
	}
	if sa, sb := take(a), take(b); sa != sb {
		t.Errorf("hybrid runs diverged:\n first: %+v\nsecond: %+v", sa, sb)
	}
}

// TestHybridFidelityValidation covers the spec-level contract: hybrid
// fidelity refuses the sharded engine, unknown fidelity strings are
// rejected, and a fault plan (a standing fidelity trigger) falls back to
// the classic packet path rather than erroring.
func TestHybridFidelityValidation(t *testing.T) {
	base := HybridSpec{Name: "hyb-val", Policy: "L2BM", Scale: ScaleTiny,
		RDMALoad: 0.05, TCPLoad: 0.05}

	sharded := base
	sharded.Fidelity = FidelityHybrid
	sharded.Shards = 2
	if _, err := RunHybrid(sharded); err == nil {
		t.Error("hybrid fidelity with Shards=2 should fail, got nil error")
	}

	bogus := base
	bogus.Fidelity = "analytic"
	if _, err := RunHybrid(bogus); err == nil {
		t.Error("unknown fidelity should fail, got nil error")
	}

	faulted := base
	faulted.Fidelity = FidelityHybrid
	faulted.Faults = &FaultSpec{}
	res, err := RunHybrid(faulted)
	if err != nil {
		t.Fatalf("hybrid fidelity with a fault plan should fall back to packet: %v", err)
	}
	if res.FluidFlows != 0 || res.PacketSegments != 0 {
		t.Errorf("fault-plan fallback must run the classic path: FluidFlows=%d PacketSegments=%d",
			res.FluidFlows, res.PacketSegments)
	}
	if !strings.Contains(res.FidelityFallback, "fault plan") {
		t.Errorf("fallback must be recorded on the result, got FidelityFallback=%q", res.FidelityFallback)
	}

	cleanSpec := base
	cleanSpec.Fidelity = FidelityHybrid
	clean, err := RunHybrid(cleanSpec)
	if err != nil {
		t.Fatal(err)
	}
	if clean.FidelityFallback != "" {
		t.Errorf("clean hybrid run recorded a fallback: %q", clean.FidelityFallback)
	}
}
