package exp

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"l2bm/internal/topo"
)

// checkpointGrid is a small multi-policy sweep for the resume suite.
func checkpointGrid() []HybridSpec {
	var specs []HybridSpec
	for _, policy := range []string{"L2BM", "DT"} {
		for _, load := range []float64{0.3, 0.6} {
			specs = append(specs, HybridSpec{
				Name:     "ckpt-suite",
				Policy:   policy,
				Scale:    ScaleTiny,
				RDMALoad: 0.4,
				TCPLoad:  load,
			})
		}
	}
	return specs
}

// TestCheckpointResumeByteIdentical is the crash-safety acceptance test:
// kill a sweep partway (external cancellation stands in for SIGKILL — the
// file only ever holds whole fsynced lines either way), resume it, and the
// resumed sweep's output must be byte-identical to an uninterrupted run.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	specs := checkpointGrid()

	ref := &Harness{Workers: 2}
	want, err := ref.runAll(specs, nil)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()

	// "Kill" the first attempt after the first emitted point.
	ctx, cancel := context.WithCancel(context.Background())
	killed := &Harness{Workers: 1, Ctx: ctx, CheckpointDir: dir}
	_, err = killed.runAll(specs, func(i int, r *Result) { cancel() })
	if err == nil {
		t.Fatal("interrupted run reported success")
	}
	stored, total, err := CheckpointProbe(dir, specs)
	if err != nil {
		t.Fatal(err)
	}
	if stored == 0 || stored >= total {
		t.Fatalf("after interruption: %d/%d points stored, want a strict partial", stored, total)
	}

	resumed := &Harness{Workers: 2, CheckpointDir: dir}
	got, err := resumed.runAll(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if shardFingerprint(got[i]) != shardFingerprint(want[i]) {
			t.Errorf("point %d: resumed output diverged from the uninterrupted run", i)
		}
	}
	if stored, _, _ := CheckpointProbe(dir, specs); stored != total {
		t.Errorf("after resume: %d/%d points stored", stored, total)
	}
}

// TestCheckpointRestoreShortCircuits proves restored points are served from
// the file, not silently recomputed: a doctored stored result surfaces
// verbatim in the resumed sweep.
func TestCheckpointRestoreShortCircuits(t *testing.T) {
	specs := checkpointGrid()
	dir := t.TempDir()
	hash, err := sweepHash(specs)
	if err != nil {
		t.Fatal(err)
	}
	_, w, err := openCheckpoint(dir, hash, len(specs))
	if err != nil {
		t.Fatal(err)
	}
	const marker = 123_456_789
	if err := w.append(2, &Result{Policy: "L2BM", Events: marker}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	h := &Harness{Workers: 2, CheckpointDir: dir}
	got, err := h.runAll(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[2].Events != marker {
		t.Errorf("point 2 was recomputed (Events=%d), want restored marker %d", got[2].Events, marker)
	}
	if got[2].Spec.Policy != specs[2].Policy {
		t.Errorf("restored point lost its spec: %+v", got[2].Spec)
	}
}

// TestCheckpointToleratesTornTail: a crash mid-append leaves a partial last
// line; the loader must keep every whole line before it and the resumed
// sweep must recompute only the torn point.
func TestCheckpointToleratesTornTail(t *testing.T) {
	specs := checkpointGrid()
	dir := t.TempDir()

	full := &Harness{Workers: 1, CheckpointDir: dir}
	want, err := full.runAll(specs, nil)
	if err != nil {
		t.Fatal(err)
	}

	hash, _ := sweepHash(specs)
	path := filepath.Join(dir, fmt.Sprintf("sweep-%016x.jsonl", hash))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"index":1,"result":{"Policy":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	stored, total, err := CheckpointProbe(dir, specs)
	if err != nil {
		t.Fatalf("torn tail broke the loader: %v", err)
	}
	if stored != total {
		t.Fatalf("torn tail dropped whole lines: %d/%d", stored, total)
	}
	resumed := &Harness{Workers: 1, CheckpointDir: dir}
	got, err := resumed.runAll(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if shardFingerprint(got[i]) != shardFingerprint(want[i]) {
			t.Errorf("point %d diverged after torn-tail resume", i)
		}
	}
}

// TestCheckpointRefusesForeignFile: a header from a different sweep (moved
// or hand-edited file) must refuse loudly, never restore wrong results.
func TestCheckpointRefusesForeignFile(t *testing.T) {
	specs := checkpointGrid()
	hash, _ := sweepHash(specs)
	dir := t.TempDir()
	path := filepath.Join(dir, "x.jsonl")
	if err := os.WriteFile(path,
		[]byte(`{"version":1,"hash":"deadbeefdeadbeef","points":4}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCheckpoint(path, hash, len(specs)); err == nil ||
		!strings.Contains(err.Error(), "different sweep") {
		t.Errorf("foreign header accepted (err=%v)", err)
	}
}

// TestCheckpointIneligibleSpecsRefuse: funcs don't serialize — sweeps
// carrying them must error out before running anything.
func TestCheckpointIneligibleSpecsRefuse(t *testing.T) {
	specs := checkpointGrid()
	specs[1].Hooks = &RunHooks{PostBuild: func(*topo.Cluster) {}}
	h := &Harness{CheckpointDir: t.TempDir()}
	if _, err := h.runAll(specs, nil); err == nil || !strings.Contains(err.Error(), "Hooks") {
		t.Errorf("Hooks-carrying sweep checkpointed (err=%v)", err)
	}

	traced := &Harness{CheckpointDir: t.TempDir(), Trace: &TraceSpec{}}
	if _, err := traced.runAll(checkpointGrid(), nil); err == nil ||
		!strings.Contains(err.Error(), "Trace") {
		t.Errorf("traced sweep checkpointed (err=%v)", err)
	}
}
