package exp

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"
)

// Harness executes the paper's figure/table runners over a shared worker
// pool and accumulates cross-experiment cost accounting (total points and
// simulated events), from which callers derive aggregate events/s across
// workers. The zero value is valid and uses GOMAXPROCS workers.
//
// Rendered output is byte-identical for any worker count: points are
// collated and progress lines emitted in spec order (see Pool).
type Harness struct {
	// Workers bounds concurrently running simulation points; <= 0 means
	// runtime.GOMAXPROCS(0), 1 restores strictly sequential execution.
	Workers int
	// Ctx, when non-nil, cancels in-flight grids externally.
	Ctx context.Context
	// Trace, when non-nil, arms the flight recorder on every point the
	// harness runs (specs with their own TraceSpec keep it).
	Trace *TraceSpec
	// TraceDir, when non-empty, exports each traced point's artifacts there
	// after its grid completes, prefixed with a running point number so
	// names are unique and worker-count independent.
	TraceDir string
	// TraceFormat selects the TraceDir export format: "" or TraceFormatCSV
	// writes the per-channel CSV/JSONL files, TraceFormatCol one columnar
	// .col file per point (see internal/colfmt).
	TraceFormat string
	// Shards, when >= 1, runs every point on the sharded conservative-time
	// engine with that many shards (specs carrying their own Shards keep
	// it). Results are byte-identical for any legal shard count, so tables
	// and progress lines do not change — only wall clock does.
	Shards int
	// Fidelity, when non-empty, selects the execution engine for every
	// point (specs carrying their own Fidelity keep it): FidelityPacket
	// simulates every MTU, FidelityHybrid fast-forwards steady-state spans
	// through the fluid layer. Unlike Shards, hybrid fidelity changes
	// results — within the divergence bound DESIGN.md §14 states.
	Fidelity string
	// Sched, when non-empty, selects the scheduler backend for every point
	// (specs carrying their own Sched keep it): SchedWheel or SchedHeap.
	// Like Shards, the backend never changes results — only wall clock.
	Sched string
	// CheckpointDir, when non-empty, makes every grid crash-resumable:
	// completed points append to <dir>/sweep-<hash>.jsonl (hash = content
	// hash of the grid's specs) and a rerun of the same grid restores them
	// instead of recomputing, yielding byte-identical output. Grids whose
	// specs carry funcs (PolicyFactory, TopoOverride, Hooks, a LinkFilter,
	// or tracing — including Harness.Trace) refuse to checkpoint.
	CheckpointDir string
	// KeepGoing degrades gracefully instead of halting: a failed point is
	// recorded and skipped, the rest of the grid still runs and emits, and
	// runAll returns a *FailureSummary. See Pool.KeepGoing.
	KeepGoing bool
	// PointTimeout bounds each point's wall-clock time; an overrun point
	// fails with *PointTimeoutError. Zero = unbounded. See Pool.PointTimeout.
	PointTimeout time.Duration

	points      atomic.Uint64
	events      atomic.Uint64
	fallbacks   atomic.Uint64
	tracePoints int // points seen by trace export numbering (grids run sequentially)
}

// NewHarness returns a harness with the given worker bound (<= 0 means
// GOMAXPROCS).
func NewHarness(workers int) *Harness { return &Harness{Workers: workers} }

// defaultHarness backs the package-level Run* convenience wrappers.
func defaultHarness() *Harness { return &Harness{} }

func (h *Harness) context() context.Context {
	if h.Ctx != nil {
		return h.Ctx
	}
	return context.Background()
}

// runAll fans the specs out across the pool and returns their results in
// spec order; emit (optional) observes points in spec order.
func (h *Harness) runAll(specs []HybridSpec, emit EmitFunc) ([]*Result, error) {
	if h.Trace != nil {
		for i := range specs {
			if specs[i].Trace == nil {
				specs[i].Trace = h.Trace
			}
		}
	}
	if h.Shards >= 1 {
		for i := range specs {
			if specs[i].Shards == 0 {
				specs[i].Shards = h.Shards
			}
		}
	}
	if h.Fidelity != "" {
		for i := range specs {
			if specs[i].Fidelity == "" {
				specs[i].Fidelity = h.Fidelity
			}
		}
	}
	if h.Sched != "" {
		for i := range specs {
			if specs[i].Sched == "" {
				specs[i].Sched = h.Sched
			}
		}
	}
	pool := &Pool{Workers: h.Workers, KeepGoing: h.KeepGoing, PointTimeout: h.PointTimeout}

	var restored []*Result
	var ckpt *checkpointWriter
	var ckptErr error
	if h.CheckpointDir != "" {
		hash, err := sweepHash(specs)
		if err != nil {
			return nil, err
		}
		restored, ckpt, err = openCheckpoint(h.CheckpointDir, hash, len(specs))
		if err != nil {
			return nil, err
		}
		defer ckpt.Close()
		// Persist each newly computed success the moment the collator sees
		// it (ascending order, single goroutine — no locking needed).
		pool.Observe = func(i int, r *Result, err error) {
			if err == nil && r != nil && (restored == nil || restored[i] == nil) {
				if werr := ckpt.append(i, r); werr != nil && ckptErr == nil {
					ckptErr = werr
				}
			}
		}
	}

	results, stats, err := pool.Run(h.context(), len(specs),
		func(ctx context.Context, i int) (*Result, error) {
			if restored != nil && restored[i] != nil {
				// Determinism makes the stored result indistinguishable
				// from a recomputed one; reattach the in-memory spec that
				// JSON could not carry.
				r := restored[i]
				r.Spec = specs[i]
				return r, nil
			}
			return RunHybridCtx(ctx, specs[i])
		},
		emit)
	h.points.Add(uint64(stats.Points))
	h.events.Add(stats.Events)
	for _, res := range results {
		if res != nil && res.FidelityFallback != "" {
			h.fallbacks.Add(1)
		}
	}
	if err == nil && ckptErr != nil {
		return results, ckptErr
	}
	if err == nil && h.TraceDir != "" {
		base := h.tracePoints
		h.tracePoints += len(results)
		for i, res := range results {
			if res == nil || res.Trace == nil {
				continue
			}
			if _, werr := res.WriteTraceFormat(h.TraceDir, fmt.Sprintf("%03d-", base+i), h.TraceFormat); werr != nil {
				return results, fmt.Errorf("exp: trace export: %w", werr)
			}
		}
	}
	return results, err
}

// TotalPoints returns how many simulation points completed so far.
func (h *Harness) TotalPoints() uint64 { return h.points.Load() }

// TotalEvents returns the simulated-event count accumulated across all
// completed points — divide by wall time for aggregate events/s.
func (h *Harness) TotalEvents() uint64 { return h.events.Load() }

// FidelityFallbacks returns how many completed points recorded a
// Result.FidelityFallback — hybrid-fidelity requests that ran at packet
// fidelity because a fault plan pinned them there. CLI trailers print the
// delta so the fallback is never silent.
func (h *Harness) FidelityFallbacks() uint64 { return h.fallbacks.Load() }

// MemSnapshot freezes the process-wide allocation counters so a caller can
// report the memory cost of a bounded stretch of work (one experiment). The
// perf-trajectory harness prints the delta next to events/s: allocations per
// simulated event is the number the zero-allocation fast path drives down.
type MemSnapshot struct {
	// Mallocs is the cumulative heap-object allocation count.
	Mallocs uint64
	// TotalAlloc is the cumulative bytes allocated on the heap.
	TotalAlloc uint64
	// NumGC is the completed GC cycle count.
	NumGC uint32
}

// TakeMemSnapshot reads the runtime allocation counters (no stop-the-world;
// ReadMemStats is cheap relative to an experiment run).
func TakeMemSnapshot() MemSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return MemSnapshot{Mallocs: ms.Mallocs, TotalAlloc: ms.TotalAlloc, NumGC: ms.NumGC}
}

// MemLine renders the allocation cost since the snapshot alongside the
// simulated-event count: allocations, bytes, GC cycles and allocs per event.
// The line is wall-clock independent but NOT deterministic across pool
// configurations (that is its purpose), so determinism diffs must exclude it
// the same way they exclude the timing trailer.
func (m MemSnapshot) MemLine(events uint64) string {
	cur := TakeMemSnapshot()
	allocs := cur.Mallocs - m.Mallocs
	bytes := cur.TotalAlloc - m.TotalAlloc
	gcs := cur.NumGC - m.NumGC
	perEvent := 0.0
	if events > 0 {
		perEvent = float64(allocs) / float64(events)
	}
	return fmt.Sprintf("(mem: %d allocs, %d bytes, %d GC cycles, %.3f allocs/event)",
		allocs, bytes, gcs, perEvent)
}
