package exp

import (
	"context"
	"sync/atomic"
)

// Harness executes the paper's figure/table runners over a shared worker
// pool and accumulates cross-experiment cost accounting (total points and
// simulated events), from which callers derive aggregate events/s across
// workers. The zero value is valid and uses GOMAXPROCS workers.
//
// Rendered output is byte-identical for any worker count: points are
// collated and progress lines emitted in spec order (see Pool).
type Harness struct {
	// Workers bounds concurrently running simulation points; <= 0 means
	// runtime.GOMAXPROCS(0), 1 restores strictly sequential execution.
	Workers int
	// Ctx, when non-nil, cancels in-flight grids externally.
	Ctx context.Context

	points atomic.Uint64
	events atomic.Uint64
}

// NewHarness returns a harness with the given worker bound (<= 0 means
// GOMAXPROCS).
func NewHarness(workers int) *Harness { return &Harness{Workers: workers} }

// defaultHarness backs the package-level Run* convenience wrappers.
func defaultHarness() *Harness { return &Harness{} }

func (h *Harness) context() context.Context {
	if h.Ctx != nil {
		return h.Ctx
	}
	return context.Background()
}

// runAll fans the specs out across the pool and returns their results in
// spec order; emit (optional) observes points in spec order.
func (h *Harness) runAll(specs []HybridSpec, emit EmitFunc) ([]*Result, error) {
	pool := &Pool{Workers: h.Workers}
	results, stats, err := pool.Run(h.context(), len(specs),
		func(_ context.Context, i int) (*Result, error) { return RunHybrid(specs[i]) },
		emit)
	h.points.Add(uint64(stats.Points))
	h.events.Add(stats.Events)
	return results, err
}

// TotalPoints returns how many simulation points completed so far.
func (h *Harness) TotalPoints() uint64 { return h.points.Load() }

// TotalEvents returns the simulated-event count accumulated across all
// completed points — divide by wall time for aggregate events/s.
func (h *Harness) TotalEvents() uint64 { return h.events.Load() }
