package exp

import (
	"fmt"
	"io"

	"l2bm/internal/sim"
	"l2bm/internal/topo"
)

// HyperscaleFor maps the CLI scale to a hyperscale fabric preset: the smoke
// experiment reuses the familiar tiny/small/full axis but swaps the paper's
// 128-server testbed for pod-structured Clos fabrics of 1k, 10k and 100k
// hosts (topo.Hyperscale1k/10k/100k).
func HyperscaleFor(scale Scale) topo.HyperscaleConfig {
	switch scale {
	case ScaleTiny:
		return topo.Hyperscale1k()
	case ScaleSmall:
		return topo.Hyperscale10k()
	default:
		return topo.Hyperscale100k()
	}
}

// scaleWindow sizes the traffic window so the smoke stays tractable as the
// fabric grows: total offered work scales with host count, so the window
// shrinks as the fabric widens.
func scaleWindow(scale Scale) sim.Duration {
	switch scale {
	case ScaleTiny:
		return 500 * sim.Microsecond
	case ScaleSmall:
		return 200 * sim.Microsecond
	default:
		return 100 * sim.Microsecond
	}
}

// scaleLoad keeps per-host offered load low enough that the 100k-host point
// finishes in CI time while still exercising every tier of the fabric.
func scaleLoad(scale Scale) float64 {
	switch scale {
	case ScaleTiny:
		return 0.10
	case ScaleSmall:
		return 0.05
	default:
		return 0.02
	}
}

// ScaleResult carries the hyperscale smoke run plus the fabric's static
// dimensions (for the rendered table and programmatic consumers).
type ScaleResult struct {
	Hyper  topo.HyperscaleConfig
	Config topo.Config
	Run    *Result
}

// RunScale is the hyperscale smoke experiment (-exp scale): it builds the
// pod-structured Clos fabric the scale selects (1k/10k/100k hosts), offers a
// short mixed RDMA+TCP window under L2BM with the invariant auditor armed
// (violations exit nonzero — this is the CI smoke), and renders fabric
// dimensions, delivery counters and integrity in one deterministic table
// pair. It runs
// through the same harness as every figure, so -shards, -fidelity hybrid and
// -sched apply unchanged; the point of the experiment is that the numbers do
// NOT change when those execution strategies do.
func (h *Harness) RunScale(scale Scale, w io.Writer) (*ScaleResult, error) {
	hyper := HyperscaleFor(scale)
	cfg, err := hyper.Config()
	if err != nil {
		return nil, err
	}
	load := scaleLoad(scale)
	spec := HybridSpec{
		Name:           fmt.Sprintf("scale-%s", scale),
		Policy:         "L2BM",
		Scale:          scale,
		TCPLoad:        load,
		RDMALoad:       load,
		InterRackOnly:  true,
		WindowOverride: scaleWindow(scale),
		TopoOverride:   func(c *topo.Config) { *c = cfg },
		// The smoke always runs under the global invariant auditor: at
		// hyperscale an MMU accounting leak is invisible in aggregate
		// counters, so sweeps are the only way to catch one. Auditing is
		// observer-free, so the determinism diffs are unaffected.
		Audit: &AuditSpec{},
	}
	results, err := h.runAll([]HybridSpec{spec}, nil)
	if err != nil {
		return nil, err
	}
	res := results[0]

	tab := NewTable(fmt.Sprintf("Scale smoke: %d-host hyperscale Clos (%d pods x %d ToRs x %d servers, %g:1 oversub)",
		cfg.Hosts(), hyper.Pods, hyper.ToRsPerPod, hyper.ServersPerToR, hyper.Oversubscription),
		"hosts", "tors", "aggs", "cores", "flows_done", "trunc", "lossy_drops", "pauses")
	tab.AddRow(
		fmt.Sprintf("%d", cfg.Hosts()),
		fmt.Sprintf("%d", cfg.ToRCount),
		fmt.Sprintf("%d", cfg.AggCount),
		fmt.Sprintf("%d", cfg.CoreCount),
		fmt.Sprintf("%d", res.FlowsCompleted),
		fmt.Sprintf("%d", res.TruncatedFlows),
		fmt.Sprintf("%d", res.LossyDrops),
		fmt.Sprintf("%d", res.PauseFrames))
	if err := tab.Fprint(w); err != nil {
		return nil, err
	}
	integ := newIntegrityTable("Scale smoke integrity: lossless gaps / violations / MMU audits")
	addIntegrityRow(integ, fmt.Sprintf("L2BM@%s", scale), res)
	if err := integ.Fprint(w); err != nil {
		return nil, err
	}
	// The smoke is a CI gate: an unhealthy fabric must exit nonzero, not
	// just render a nonzero cell in the integrity table.
	if res.AuditChecks == 0 {
		return nil, fmt.Errorf("scale smoke: auditor armed but ran zero sweeps")
	}
	if n := len(res.AuditErrors); n > 0 {
		return nil, fmt.Errorf("scale smoke: %d audit violation(s), first: %s", n, res.AuditErrors[0])
	}
	if res.LosslessViolations > 0 {
		return nil, fmt.Errorf("scale smoke: %d lossless violation(s)", res.LosslessViolations)
	}
	return &ScaleResult{Hyper: hyper, Config: cfg, Run: res}, nil
}

// RunScale runs the hyperscale smoke on the default harness.
func RunScale(scale Scale, w io.Writer) (*ScaleResult, error) {
	return defaultHarness().RunScale(scale, w)
}
