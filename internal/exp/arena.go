package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"l2bm/internal/core"
)

// The arena races every registered policy over a common grid: two
// background loads, with and without the incast query stream, plus one
// faulted cell. Seeds exclude the policy name (common random numbers), so
// every policy sees the identical offered workload in each cell and the
// scorecard differences are attributable to buffer management alone.
const (
	// ArenaBaseLoad and ArenaHighLoad are the TCP offered loads of the
	// clean grid columns (RDMA stays at the paper's fixed 0.4).
	ArenaBaseLoad = 0.4
	ArenaHighLoad = 0.8
	// ArenaIncastFanout is N for the burst cells' query workload.
	ArenaIncastFanout = 5
)

// ArenaCell is one point of the per-policy grid.
type ArenaCell struct {
	// Key labels the cell in tables and progress lines.
	Key string
	// TCPLoad is the background TCP offered load; RDMA is fixed at 0.4.
	TCPLoad float64
	// Burst adds the incast query stream (fanout ArenaIncastFanout).
	Burst bool
	// Fault arms DefaultFaultScenario with the extended fault drain.
	Fault bool
}

// ArenaCells returns the grid every policy runs: base and high load, each
// clean and bursty, plus a faulted base-load cell for the recovery
// metrics. The slice order is the spec order (and so the emit order).
func ArenaCells() []ArenaCell {
	return []ArenaCell{
		{Key: "l0.4", TCPLoad: ArenaBaseLoad},
		{Key: "l0.8", TCPLoad: ArenaHighLoad},
		{Key: "l0.4+burst", TCPLoad: ArenaBaseLoad, Burst: true},
		{Key: "l0.8+burst", TCPLoad: ArenaHighLoad, Burst: true},
		{Key: "l0.4+faults", TCPLoad: ArenaBaseLoad, Fault: true},
	}
}

// ArenaScore is one policy's scorecard row. All criteria are
// lower-is-better except FaultCompletion; Score is the min–max-normalized
// mean over the criteria, so 0 would be a policy that wins every column
// and 1 one that loses every column.
type ArenaScore struct {
	Policy string
	Score  float64
	// RDMAp99 and TCPp99 are the worst (max) per-class p99 FCT slowdowns
	// over the clean cells; IncastP99 the worst over the burst cells.
	RDMAp99   float64
	TCPp99    float64
	IncastP99 float64
	// PauseFrames and Losses (drops + preemptive evictions) sum over the
	// clean cells; the fault cell's are excluded as fault noise.
	PauseFrames uint64
	Losses      uint64
	// FaultHorizonMs is the faulted cell's end-of-run instant — how long
	// the fabric needed to drain after recovery — and FaultCompletion the
	// fraction of started flows that finished despite the faults.
	FaultHorizonMs  float64
	FaultCompletion float64
}

// ArenaResult holds the full grid plus the ranked scorecard.
type ArenaResult struct {
	// Policies is the raced list in registration order.
	Policies []string
	// Cells is the grid, shared by every policy.
	Cells []ArenaCell
	// Results[policy][i] is the run for Cells[i].
	Results map[string][]*Result
	// Ranked is the scorecard, best (lowest Score) first.
	Ranked []ArenaScore
}

// RunArena races the given policies (nil/empty = every registered policy)
// over the arena grid and writes per-cell detail, the ranked scorecard
// (table + CSV), and the integrity table to w. Every point runs with the
// invariant auditor armed. Output is deterministic: byte-identical across
// harness worker counts and shard counts.
func (h *Harness) RunArena(scale Scale, policies []string, w io.Writer) (*ArenaResult, error) {
	if len(policies) == 0 {
		policies = append([]string(nil), ExtendedPolicyNames...)
	}
	for _, pol := range policies {
		if !core.IsRegistered(pol) {
			return nil, fmt.Errorf("exp: arena: unknown policy %q (have %s)",
				pol, strings.Join(core.RegisteredPolicies(), ", "))
		}
	}
	cells := ArenaCells()
	specs := make([]HybridSpec, 0, len(policies)*len(cells))
	for _, pol := range policies {
		for _, c := range cells {
			spec := HybridSpec{
				Name:     "arena",
				Policy:   pol,
				Scale:    scale,
				RDMALoad: 0.4,
				TCPLoad:  c.TCPLoad,
				Audit:    &AuditSpec{},
			}
			if c.Burst {
				spec.Incast = incastSpecFor(ArenaIncastFanout)
			}
			if c.Fault {
				spec.Faults = DefaultFaultScenario(scale)
				spec.DrainOverride = FaultDrain * scale.Window()
			}
			specs = append(specs, spec)
		}
	}

	var emit EmitFunc
	if w != nil {
		emit = func(i int, r *Result) {
			pol, cell := policies[i/len(cells)], cells[i%len(cells)]
			fmt.Fprintf(w, "  arena %s %s: flows %d/%d, pause=%d, losses=%d\n",
				pol, cell.Key, r.FlowsCompleted, r.FlowsStarted,
				r.PauseFrames, r.LossyDrops+r.LossyEvictions)
		}
	}
	flat, err := h.runAll(specs, emit)
	if err != nil {
		return nil, err
	}

	res := &ArenaResult{
		Policies: policies,
		Cells:    cells,
		Results:  make(map[string][]*Result, len(policies)),
	}
	for pi, pol := range policies {
		res.Results[pol] = flat[pi*len(cells) : (pi+1)*len(cells)]
	}
	res.Ranked = rankArena(policies, cells, res.Results)

	if w != nil {
		if err := renderArena(w, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// RunArena runs the arena on a default harness.
func RunArena(scale Scale, policies []string, w io.Writer) (*ArenaResult, error) {
	return defaultHarness().RunArena(scale, policies, w)
}

// arenaScoreFor condenses one policy's grid row into scorecard criteria.
func arenaScoreFor(pol string, cells []ArenaCell, runs []*Result) ArenaScore {
	sc := ArenaScore{Policy: pol, FaultCompletion: 1}
	for i, c := range cells {
		r := runs[i]
		if c.Fault {
			sc.FaultHorizonMs = r.EndTime.Millis()
			if r.FlowsStarted > 0 {
				sc.FaultCompletion = float64(r.FlowsCompleted) / float64(r.FlowsStarted)
			}
			continue
		}
		if v := r.RDMAp99(); v > sc.RDMAp99 {
			sc.RDMAp99 = v
		}
		if v := r.TCPp99(); v > sc.TCPp99 {
			sc.TCPp99 = v
		}
		if c.Burst {
			if v := r.Incastp99(); v > sc.IncastP99 {
				sc.IncastP99 = v
			}
		}
		sc.PauseFrames += r.PauseFrames
		sc.Losses += r.LossyDrops + r.LossyEvictions
	}
	return sc
}

// rankArena builds the scorecard and sorts it best-first. Each criterion
// is min–max normalized across the raced policies (a constant column
// contributes zero to everyone), the score is the mean contribution, and
// ties break on the input (registration) order, so the ranking is total
// and deterministic.
func rankArena(policies []string, cells []ArenaCell, results map[string][]*Result) []ArenaScore {
	scores := make([]ArenaScore, len(policies))
	for i, pol := range policies {
		scores[i] = arenaScoreFor(pol, cells, results[pol])
	}
	criteria := []func(*ArenaScore) float64{
		func(s *ArenaScore) float64 { return s.RDMAp99 },
		func(s *ArenaScore) float64 { return s.TCPp99 },
		func(s *ArenaScore) float64 { return s.IncastP99 },
		func(s *ArenaScore) float64 { return float64(s.PauseFrames) },
		func(s *ArenaScore) float64 { return float64(s.Losses) },
		func(s *ArenaScore) float64 { return s.FaultHorizonMs },
		func(s *ArenaScore) float64 { return 1 - s.FaultCompletion },
	}
	for _, crit := range criteria {
		lo, hi := crit(&scores[0]), crit(&scores[0])
		for i := range scores {
			if v := crit(&scores[i]); v < lo {
				lo = v
			} else if v > hi {
				hi = v
			}
		}
		if hi <= lo {
			continue
		}
		for i := range scores {
			scores[i].Score += (crit(&scores[i]) - lo) / (hi - lo)
		}
	}
	for i := range scores {
		scores[i].Score /= float64(len(criteria))
	}
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return scores[order[a]].Score < scores[order[b]].Score
	})
	ranked := make([]ArenaScore, len(scores))
	for i, idx := range order {
		ranked[i] = scores[idx]
	}
	return ranked
}

// renderArena writes the per-cell detail table, the ranked scorecard as a
// table and as CSV, and the integrity table.
func renderArena(w io.Writer, res *ArenaResult) error {
	detail := NewTable("arena: per-cell detail",
		"policy", "cell", "rdma_p99", "tcp_p99", "incast_p99",
		"pause", "drops", "evict", "flows", "end_ms")
	integ := newIntegrityTable("arena: integrity")
	for _, pol := range res.Policies {
		for i, c := range res.Cells {
			r := res.Results[pol][i]
			detail.AddRow(pol, c.Key,
				f2(r.RDMAp99()), f2(r.TCPp99()), f2(r.Incastp99()),
				fmt.Sprint(r.PauseFrames), fmt.Sprint(r.LossyDrops),
				fmt.Sprint(r.LossyEvictions),
				fmt.Sprintf("%d/%d", r.FlowsCompleted, r.FlowsStarted),
				f2(r.EndTime.Millis()))
			addIntegrityRow(integ, pol+"/"+c.Key, r)
		}
	}
	if err := detail.Fprint(w); err != nil {
		return err
	}

	card := NewTable("arena: ranked scorecard",
		"rank", "policy", "score", "rdma_p99", "tcp_p99", "incast_p99",
		"pause", "losses", "fault_ms", "fault_done")
	for i, s := range res.Ranked {
		card.AddRow(fmt.Sprint(i+1), s.Policy, f3(s.Score),
			f2(s.RDMAp99), f2(s.TCPp99), f2(s.IncastP99),
			fmt.Sprint(s.PauseFrames), fmt.Sprint(s.Losses),
			f2(s.FaultHorizonMs), f3(s.FaultCompletion))
	}
	if err := card.Fprint(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "\narena scorecard CSV:\n%s", card.CSV()); err != nil {
		return err
	}
	return integ.Fprint(w)
}
