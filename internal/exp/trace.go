package exp

// Flight-recorder wiring: arming a run's trace.Recorder and exporting its
// channels as per-point CSV/JSONL files with deterministic names, so the
// occupancy/pause/threshold timelines behind Figs. 7(c), 7(d), 8 and 10(c)
// drop out of any figure runner.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"l2bm/internal/sim"
)

// TraceSpec arms the flight recorder for a run.
type TraceSpec struct {
	// SampleEvery is the occupancy / L2BM-weight sampling period. Zero
	// falls back to the run's occupancy sampling period (default 100 µs).
	SampleEvery sim.Duration
	// Capacity is the per-channel ring capacity (0 = trace.DefaultCapacity).
	Capacity int
}

// TraceFileStem returns the deterministic file-name stem for this run's
// trace artifacts: "<name>-<policy>[-r<rdma>][-t<tcp>]", lowercased with
// loads rendered as percentages (fig7-l2bm-r40-t80).
func (r *Result) TraceFileStem() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s-%s", r.Spec.Name, r.Policy)
	if r.Spec.RDMALoad > 0 {
		fmt.Fprintf(&b, "-r%02.0f", r.Spec.RDMALoad*100)
	}
	if r.Spec.TCPLoad > 0 {
		fmt.Fprintf(&b, "-t%02.0f", r.Spec.TCPLoad*100)
	}
	if r.Spec.Incast != nil {
		fmt.Fprintf(&b, "-n%d", r.Spec.Incast.Fanout)
	}
	stem := strings.ToLower(b.String())
	return strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '.':
			return c
		default:
			return '_'
		}
	}, stem)
}

// WriteTrace exports this run's retained trace as five files in dir:
// <prefix><stem>-occupancy.csv, -pauses.csv, -weights.csv, -events.csv and
// .jsonl (all channels interleaved in time order). Pause episodes are
// closed at the run's EndTime. It returns the written paths; a run without
// an armed recorder writes nothing.
func (r *Result) WriteTrace(dir, prefix string) ([]string, error) {
	if r.Trace == nil {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	stem := prefix + r.TraceFileStem()
	var written []string
	write := func(name string, fn func(f *os.File) error) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		written = append(written, path)
		return nil
	}
	steps := []struct {
		suffix string
		fn     func(f *os.File) error
	}{
		{"-occupancy.csv", func(f *os.File) error { return r.Trace.WriteOccupancyCSV(f) }},
		{"-pauses.csv", func(f *os.File) error { return r.Trace.WritePauseIntervalsCSV(f, r.EndTime) }},
		{"-weights.csv", func(f *os.File) error { return r.Trace.WriteWeightsCSV(f) }},
		{"-events.csv", func(f *os.File) error { return r.Trace.WritePacketEventsCSV(f) }},
		{".jsonl", func(f *os.File) error { return r.Trace.WriteJSONL(f) }},
	}
	for _, s := range steps {
		if err := write(stem+s.suffix, s.fn); err != nil {
			return written, err
		}
	}
	return written, nil
}

// Trace export formats for WriteTraceFormat and the CLI -format flag.
const (
	// TraceFormatCSV is the row-wise export: five files per point
	// (per-channel CSVs plus interleaved JSONL). The default.
	TraceFormatCSV = "csv"
	// TraceFormatCol is the columnar binary export: one <stem>.col file per
	// point carrying every trace channel and metrics series (internal/colfmt).
	TraceFormatCol = "col"
)

// WriteTraceFormat exports this run's artifacts in the named format: "" or
// TraceFormatCSV behaves exactly like WriteTrace; TraceFormatCol writes a
// single columnar <prefix><stem>.col file (see WriteCol). Like WriteTrace,
// a run without an armed recorder writes nothing.
func (r *Result) WriteTraceFormat(dir, prefix, format string) ([]string, error) {
	switch format {
	case "", TraceFormatCSV:
		return r.WriteTrace(dir, prefix)
	case TraceFormatCol:
	default:
		return nil, fmt.Errorf("exp: unknown trace format %q (want %q or %q)",
			format, TraceFormatCSV, TraceFormatCol)
	}
	if r.Trace == nil {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, prefix+r.TraceFileStem()+".col")
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := r.WriteCol(f); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return []string{path}, nil
}
