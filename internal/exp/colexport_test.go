package exp

import (
	"bytes"
	"math"
	"os"
	"testing"

	"l2bm/internal/colfmt"
	"l2bm/internal/sim"
	"l2bm/internal/trace"
)

// colSpecs are traced tiny-scale stand-ins for the Fig. 3 (motivation mix),
// Fig. 7 (load sweep point) and Fig. 8 (incast) scenarios the acceptance
// bar names.
func colSpecs() []HybridSpec {
	tr := &TraceSpec{SampleEvery: 100 * sim.Microsecond, Capacity: 1 << 16}
	return []HybridSpec{
		{Name: "fig3-style", Policy: "DT", Scale: ScaleTiny,
			RDMALoad: 0.4, TCPLoad: 0.4, InterRackOnly: true, Trace: tr},
		{Name: "fig7-style", Policy: "L2BM", Scale: ScaleTiny,
			RDMALoad: 0.4, TCPLoad: 0.6, Trace: tr},
		{Name: "fig8-style", Policy: "L2BM", Scale: ScaleTiny,
			RDMALoad: 0.2, TCPLoad: 0.2,
			Incast: &IncastSpec{Fanout: 3, RequestBytes: 100_000, QueryRate: 2000}, Trace: tr},
	}
}

func colInts(t *testing.T, r *colfmt.ChannelReader, name string) []int64 {
	t.Helper()
	v, err := r.Ints(name)
	if err != nil {
		t.Fatalf("Ints(%s): %v", name, err)
	}
	return v
}

func colStrs(t *testing.T, r *colfmt.ChannelReader, name string) []string {
	t.Helper()
	v, err := r.Strs(name)
	if err != nil {
		t.Fatalf("Strs(%s): %v", name, err)
	}
	return v
}

func colFloats(t *testing.T, r *colfmt.ChannelReader, name string) []float64 {
	t.Helper()
	v, err := r.Floats(name)
	if err != nil {
		t.Fatalf("Floats(%s): %v", name, err)
	}
	return v
}

// TestWriteColRoundTrip: the columnar export of a traced run decodes back
// to exactly the recorder's channels and the result's metrics series —
// value-for-value, including float bits — and the file is smaller than the
// CSV export of the same run.
func TestWriteColRoundTrip(t *testing.T) {
	var totalEvents int
	defer func() {
		if !t.Failed() && totalEvents == 0 {
			t.Error("no spec recorded packet events; the events round trip is vacuous")
		}
	}()
	for _, spec := range colSpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res, err := RunHybrid(spec)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := res.WriteCol(&buf); err != nil {
				t.Fatal(err)
			}
			dec, err := colfmt.Decode(buf.Bytes())
			if err != nil {
				t.Fatal(err)
			}

			occ := res.Trace.OccSamples()
			rd := dec.Channel(trace.ColOccupancy)
			if rd == nil || rd.Rows() != len(occ) {
				t.Fatalf("occupancy channel missing or wrong rows")
			}
			if len(occ) == 0 {
				t.Fatal("run recorded no occupancy samples; round trip is vacuous")
			}
			ats, sws := colInts(t, rd, "at_ps"), colStrs(t, rd, "switch")
			resid, shared := colInts(t, rd, "resident"), colInts(t, rd, "shared_used")
			for i, s := range occ {
				if ats[i] != int64(s.At) || sws[i] != s.Switch ||
					resid[i] != s.Resident || shared[i] != s.SharedUsed {
					t.Fatalf("occupancy row %d mismatch", i)
				}
			}

			pfc := res.Trace.PFCEvents()
			rd = dec.Channel(trace.ColPFC)
			if rd.Rows() != len(pfc) {
				t.Fatalf("pfc rows %d, want %d", rd.Rows(), len(pfc))
			}
			ats, kinds := colInts(t, rd, "at_ps"), colStrs(t, rd, "kind")
			ports, prios := colInts(t, rd, "port"), colInts(t, rd, "prio")
			for i, e := range pfc {
				if ats[i] != int64(e.At) || kinds[i] != e.Kind.String() ||
					ports[i] != int64(e.Port) || prios[i] != int64(e.Prio) {
					t.Fatalf("pfc row %d mismatch", i)
				}
			}

			pauses := res.Trace.PauseIntervals(res.EndTime)
			rd = dec.Channel(trace.ColPauses)
			if rd.Rows() != len(pauses) {
				t.Fatalf("pauses rows %d, want %d", rd.Rows(), len(pauses))
			}
			froms, tos := colInts(t, rd, "from_ps"), colInts(t, rd, "to_ps")
			views := colStrs(t, rd, "view")
			opens, err := rd.Uints("open")
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range pauses {
				wantView := "mmu"
				if p.Kind == trace.PortPaused {
					wantView = "tx"
				}
				var wantOpen uint64
				if p.Open {
					wantOpen = 1
				}
				if froms[i] != int64(p.From) || tos[i] != int64(p.To) ||
					views[i] != wantView || opens[i] != wantOpen {
					t.Fatalf("pause row %d mismatch", i)
				}
			}

			weights := res.Trace.WeightSamples()
			rd = dec.Channel(trace.ColWeights)
			if rd.Rows() != len(weights) {
				t.Fatalf("weights rows %d, want %d", rd.Rows(), len(weights))
			}
			ws := colFloats(t, rd, "weight")
			ths := colInts(t, rd, "threshold")
			for i, s := range weights {
				if math.Float64bits(ws[i]) != math.Float64bits(s.Weight) || ths[i] != s.Threshold {
					t.Fatalf("weights row %d mismatch", i)
				}
			}

			events := res.Trace.PacketEvents()
			rd = dec.Channel(trace.ColEvents)
			if rd.Rows() != len(events) {
				t.Fatalf("events rows %d, want %d", rd.Rows(), len(events))
			}
			totalEvents += len(events)
			ats, sizes := colInts(t, rd, "at_ps"), colInts(t, rd, "size")
			kinds, classes := colStrs(t, rd, "kind"), colStrs(t, rd, "class")
			for i, e := range events {
				if ats[i] != int64(e.At) || sizes[i] != int64(e.Size) ||
					kinds[i] != e.Kind.String() || classes[i] != e.Class.String() {
					t.Fatalf("events row %d mismatch", i)
				}
			}

			rd = dec.Channel(ColTorOccupancy)
			var wantTor int
			for _, samples := range res.TorOccupancy {
				wantTor += len(samples)
			}
			if rd.Rows() != wantTor {
				t.Fatalf("tor occupancy rows %d, want %d", rd.Rows(), wantTor)
			}
			tors, err := rd.Uints("tor")
			if err != nil {
				t.Fatal(err)
			}
			ats, vals := colInts(t, rd, "at_ps"), colInts(t, rd, "value")
			row := 0
			for tor, samples := range res.TorOccupancy {
				for _, s := range samples {
					if tors[row] != uint64(tor) || ats[row] != int64(s.At) || vals[row] != s.Value {
						t.Fatalf("tor occupancy row %d mismatch", row)
					}
					row++
				}
			}

			for name, want := range map[string][]float64{
				ColRDMASlowdowns:   res.RDMASlowdowns,
				ColTCPSlowdowns:    res.TCPSlowdowns,
				ColIncastSlowdowns: res.IncastSlowdowns,
			} {
				got := colFloats(t, dec.Channel(name), "slowdown")
				if len(got) != len(want) {
					t.Fatalf("%s rows %d, want %d", name, len(got), len(want))
				}
				for i := range want {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("%s[%d] mismatch", name, i)
					}
				}
			}
			delays := colInts(t, dec.Channel(ColQueryDelays), "delay_ps")
			if len(delays) != len(res.QueryDelays) {
				t.Fatalf("query delays rows %d, want %d", len(delays), len(res.QueryDelays))
			}
			for i, d := range res.QueryDelays {
				if delays[i] != int64(d) {
					t.Fatalf("query delay %d mismatch", i)
				}
			}

			// Equal results encode to identical bytes.
			var again bytes.Buffer
			if err := res.WriteCol(&again); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), again.Bytes()) {
				t.Error("WriteCol is not deterministic")
			}

			// The columnar file carries every CSV channel plus the metrics
			// series and still comes in smaller than the CSV export.
			csvDir := t.TempDir()
			paths, err := res.WriteTrace(csvDir, "")
			if err != nil {
				t.Fatal(err)
			}
			var csvTotal int64
			for _, p := range paths {
				fi, err := os.Stat(p)
				if err != nil {
					t.Fatal(err)
				}
				csvTotal += fi.Size()
			}
			if int64(buf.Len()) >= csvTotal {
				t.Errorf("columnar file (%d B) is not smaller than the CSV export (%d B)",
					buf.Len(), csvTotal)
			}
			t.Logf("%s: col %d B vs csv %d B (%.1f%%)",
				spec.Name, buf.Len(), csvTotal, 100*float64(buf.Len())/float64(csvTotal))
		})
	}
}

// TestWriteColUntraced: a run without a recorder still exports its metrics
// channels (the daemon serves /trace for untraced sweeps too).
func TestWriteColUntraced(t *testing.T) {
	res := &Result{Policy: "DT", TCPSlowdowns: []float64{1, 2.5}, QueryDelays: []sim.Duration{5}}
	var buf bytes.Buffer
	if err := res.WriteCol(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := colfmt.Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Channel(trace.ColOccupancy) != nil {
		t.Error("untraced run emitted trace channels")
	}
	if got := colFloats(t, dec.Channel(ColTCPSlowdowns), "slowdown"); len(got) != 2 {
		t.Errorf("tcp slowdowns rows %d, want 2", len(got))
	}
}
