// Deterministic content-hash result cache: the determinism contract says a
// spec's canonical key fully determines its Result, so a cached point is
// indistinguishable from a recomputed one — and the canonical JSON bytes
// are stored verbatim, so a cache hit serves the exact bytes a fresh run
// would marshal. Keys fold in the spec canonicalization version
// (CheckpointVersion) and a hash of the policy registry, so a schema change
// or a new/renamed policy invalidates every stale entry by missing, never
// by misreading.
//
// Persistence reuses the checkpoint idioms: one file per point, a header
// line naming version/registry/key, the result line after it, written to a
// temp file, fsynced and renamed — a crash can abandon a temp file but
// never publish a torn entry.
package exp

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"l2bm/internal/core"
)

// registryVersion content-hashes the policy registry (names, in
// registration order): adding, removing or reordering policies changes
// every cache key. Policy semantics changes must bump CheckpointVersion.
func registryVersion() string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(strings.Join(core.RegisteredPolicies(), ",")))
	return fmt.Sprintf("%016x", h.Sum64())
}

// CacheKey derives the content-hash cache key for one spec: a hash over the
// canonicalization version, the registry version and the spec's canonical
// key (which embeds everything the seed derives from). Specs carrying funcs
// or an armed flight recorder are uncacheable and return an error.
func CacheKey(spec HybridSpec) (string, error) {
	return cacheKeyAt(CheckpointVersion, spec)
}

// cacheKeyAt is CacheKey at an explicit canonicalization version, split out
// so tests can prove a version bump invalidates.
func cacheKeyAt(version int, spec HybridSpec) (string, error) {
	if why := checkpointIneligible(spec); why != "" {
		return "", fmt.Errorf("exp: cache: spec %q carries %s, which does not serialize", spec.Name, why)
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "cachev%d registry=%s %s", version, registryVersion(), specKey(spec))
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// cacheHeader is the first line of every cache entry; Get refuses entries
// whose header disagrees with the current derivation.
type cacheHeader struct {
	Version  int    `json:"version"`
	Registry string `json:"registry"`
	Key      string `json:"key"`
}

// ResultCache persists point results under Dir, one entry per cache key. A
// nil cache ignores every call (Get always misses).
type ResultCache struct {
	Dir string
}

// NewResultCache opens (creating if needed) a cache rooted at dir.
func NewResultCache(dir string) (*ResultCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("exp: cache: %w", err)
	}
	return &ResultCache{Dir: dir}, nil
}

func (c *ResultCache) path(key string) string {
	return filepath.Join(c.Dir, "point-"+key+".json")
}

// Get returns the stored canonical Result bytes and the decoded Result for
// spec, or ok=false on any miss: no entry, an uncacheable spec, or an entry
// whose header no longer matches the current derivation (stale version or
// registry — left on disk, simply unused). The decoded Result carries spec
// reattached, exactly like a checkpoint restore.
func (c *ResultCache) Get(spec HybridSpec) (raw json.RawMessage, res *Result, ok bool) {
	if c == nil {
		return nil, nil, false
	}
	key, err := CacheKey(spec)
	if err != nil {
		return nil, nil, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, nil, false
	}
	header, body, found := bytes.Cut(data, []byte{'\n'})
	if !found {
		return nil, nil, false
	}
	var hdr cacheHeader
	if json.Unmarshal(header, &hdr) != nil ||
		hdr.Version != CheckpointVersion || hdr.Registry != registryVersion() || hdr.Key != key {
		return nil, nil, false
	}
	body = bytes.TrimSuffix(body, []byte{'\n'})
	res = new(Result)
	if json.Unmarshal(body, res) != nil {
		return nil, nil, false
	}
	res.Spec = spec
	return json.RawMessage(body), res, true
}

// Put stores raw — the canonical json.Marshal bytes of spec's Result — under
// the spec's key. Uncacheable specs are a silent no-op (the caller already
// ran the point; there is nothing to salvage by failing it). The write is
// temp-file + fsync + rename, so readers only ever see whole entries.
func (c *ResultCache) Put(spec HybridSpec, raw json.RawMessage) error {
	if c == nil {
		return nil
	}
	key, err := CacheKey(spec)
	if err != nil {
		return nil
	}
	hdr, err := json.Marshal(cacheHeader{Version: CheckpointVersion, Registry: registryVersion(), Key: key})
	if err != nil {
		return fmt.Errorf("exp: cache: %w", err)
	}
	f, err := os.CreateTemp(c.Dir, ".point-*.tmp")
	if err != nil {
		return fmt.Errorf("exp: cache: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("exp: cache: %w", err)
	}
	for _, chunk := range [][]byte{hdr, {'\n'}, raw, {'\n'}} {
		if _, err := f.Write(chunk); err != nil {
			return cleanup(err)
		}
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmp, c.path(key)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("exp: cache: %w", err)
	}
	return nil
}

// Len counts stored entries (test and status reporting).
func (c *ResultCache) Len() (int, error) {
	if c == nil {
		return 0, nil
	}
	entries, err := os.ReadDir(c.Dir)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "point-") && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n, nil
}
