package exp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Pool is a bounded scheduler for independent simulation points. Every
// point of a figure/table grid is a self-contained single-goroutine
// simulation (its own engine, cluster, RNG streams and recorder), so a
// grid can fan out across cores with no coordination beyond collation.
//
// Determinism contract: results are collated in point-index order and the
// emit callback fires from the collator in strictly ascending index order,
// so the rendered artifacts are byte-identical regardless of worker count
// or completion order. On failure the lowest-index point error wins (also
// order-independent: indices are claimed ascending, so every point below a
// failed one has already run to completion), and remaining unstarted work
// is cancelled via context.
type Pool struct {
	// Workers bounds concurrently running points; <= 0 means
	// runtime.GOMAXPROCS(0). Workers == 1 reproduces strictly sequential
	// execution.
	Workers int
	// KeepGoing selects graceful degradation: a failed point no longer
	// cancels the rest of the grid — every point runs, successful points
	// past a failure are still emitted (the failed index itself is not),
	// and Run returns the successful results alongside a *FailureSummary
	// aggregating every failure. Long soaks and chaos sweeps use this so
	// one bad point cannot waste hours of completed work.
	KeepGoing bool
	// PointTimeout bounds each point's wall-clock time (0 = unbounded).
	// The point's context expires at the deadline; a point that honors it
	// (RunHybridCtx does) fails with a *PointTimeoutError — a real point
	// failure, never mistaken for external cancellation of the sweep.
	PointTimeout time.Duration
	// Observe, when non-nil, fires from the collator goroutine in strictly
	// ascending index order — exactly once per point, successes and
	// failures alike, never concurrently — regardless of KeepGoing or
	// halting. Checkpoint writers hang off this hook.
	Observe func(i int, r *Result, err error)
}

// PanicError is a point panic converted into an error: the pool contains
// panics so one exploding point cannot take down a long sweep, and the
// stack survives into the failure report instead of dying with the worker.
type PanicError struct {
	Point int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("point %d panicked: %v\n%s", e.Point, e.Value, e.Stack)
}

// PointTimeoutError marks a point cancelled by Pool.PointTimeout. It is
// deliberately NOT errors.Is-equal to context.DeadlineExceeded: the error-
// precedence pass treats context errors as cancellation artifacts, and a
// timed-out point is a real failure.
type PointTimeoutError struct {
	Point int
	Limit time.Duration
}

func (e *PointTimeoutError) Error() string {
	return fmt.Sprintf("point %d exceeded the per-point timeout %v", e.Point, e.Limit)
}

// PointFailure pairs a failed grid index with its error.
type PointFailure struct {
	Point int
	Err   error
}

// FailureSummary aggregates every failed point of a KeepGoing run.
type FailureSummary struct {
	// Failures holds the failed points in ascending index order.
	Failures []PointFailure
	// Total is the grid size, for "k of n failed" reporting.
	Total int
}

func (e *FailureSummary) Error() string {
	s := fmt.Sprintf("%d of %d points failed; first: point %d: %v",
		len(e.Failures), e.Total, e.Failures[0].Point, e.Failures[0].Err)
	if len(e.Failures) > 1 {
		s += fmt.Sprintf(" (and %d more)", len(e.Failures)-1)
	}
	return s
}

// Unwrap exposes the per-point errors to errors.Is / errors.As.
func (e *FailureSummary) Unwrap() []error {
	errs := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		errs[i] = f.Err
	}
	return errs
}

// PointFunc computes grid point i. It must be self-contained: no shared
// mutable state with other points (exp.RunHybrid satisfies this). The
// context is cancelled once any point fails; long-running points may
// observe it, but are also free to run to completion.
type PointFunc func(ctx context.Context, i int) (*Result, error)

// EmitFunc observes finished points. It is invoked from a single collator
// goroutine in strictly ascending index order (never concurrently), which
// is what keeps progress output deterministic under parallelism. After the
// first failed index, no further points are emitted.
type EmitFunc func(i int, r *Result)

// PoolStats summarizes one Run for cost accounting.
type PoolStats struct {
	// Points is the number of points that completed successfully.
	Points int
	// Events is the total simulated-event count across completed points.
	Events uint64
	// Wall is the scheduler's wall-clock time for the whole grid.
	Wall time.Duration
	// Workers is the effective worker count used.
	Workers int
}

// EventsPerSecond is the aggregate simulation throughput across workers.
func (s PoolStats) EventsPerSecond() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Events) / s.Wall.Seconds()
}

// size resolves the effective worker count for an n-point grid.
func (p *Pool) size(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// Run executes point(0..n-1) on at most p.Workers goroutines and returns
// the results keyed by grid index, in index order. The first error (by
// index) wins; in-flight points finish, unstarted points are cancelled.
// Run does not return until every worker goroutine has exited.
func (p *Pool) Run(ctx context.Context, n int, point PointFunc, emit EmitFunc) ([]*Result, PoolStats, error) {
	stats := PoolStats{Workers: p.size(n)}
	if n <= 0 {
		return nil, stats, ctx.Err()
	}
	start := time.Now()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]*Result, n)
	errs := make([]error, n)
	var next atomic.Int64
	done := make(chan int, n)

	var wg sync.WaitGroup
	for w := 0; w < stats.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					// Unstarted point skipped by cancellation; never
					// preferred over a real point error (see below).
					errs[i] = err
					done <- i
					continue
				}
				res, err := p.runPoint(ctx, point, i)
				results[i], errs[i] = res, err
				if err != nil && !p.KeepGoing {
					cancel()
				}
				done <- i
			}
		}()
	}

	// Collate on the calling goroutine: flush the emit callback for the
	// longest error-free ready prefix so observers see points in spec
	// order no matter when workers finish them.
	ready := make([]bool, n)
	flushed, halted := 0, false
	for received := 0; received < n; received++ {
		i := <-done
		ready[i] = true
		for flushed < n && ready[flushed] {
			if p.Observe != nil {
				p.Observe(flushed, results[flushed], errs[flushed])
			}
			if errs[flushed] != nil && !p.KeepGoing {
				halted = true
			}
			if emit != nil && !halted && errs[flushed] == nil {
				emit(flushed, results[flushed])
			}
			flushed++
		}
	}
	wg.Wait()
	stats.Wall = time.Since(start)
	for _, r := range results {
		if r != nil {
			stats.Points++
			stats.Events += r.Events
		}
	}

	// Lowest-index real failure wins deterministically. Indices are
	// claimed in ascending order and (without KeepGoing) in-flight points
	// always finish, so every point below a failed index holds its true
	// outcome, not a cancellation artifact.
	var fails []PointFailure
	for i, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			fails = append(fails, PointFailure{Point: i, Err: err})
		}
	}
	if len(fails) > 0 {
		if p.KeepGoing {
			// Degrade gracefully: hand back what succeeded with the full
			// failure inventory; callers decide how loudly to fail.
			return results, stats, &FailureSummary{Failures: fails, Total: n}
		}
		return nil, stats, fmt.Errorf("point %d: %w", fails[0].Point, fails[0].Err)
	}
	for _, err := range errs {
		if err != nil { // external cancellation only
			return nil, stats, err
		}
	}
	return results, stats, nil
}

// runPoint executes one point with the pool's robustness wrappers: the
// per-point wall-clock deadline, and panic containment (a panic becomes a
// *PanicError carrying the stack).
func (p *Pool) runPoint(parent context.Context, point PointFunc, i int) (res *Result, err error) {
	ctx := parent
	if p.PointTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(parent, p.PointTimeout)
		defer cancel()
	}
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, &PanicError{Point: i, Value: v, Stack: debug.Stack()}
		}
	}()
	res, err = point(ctx, i)
	if err != nil && p.PointTimeout > 0 &&
		errors.Is(err, context.DeadlineExceeded) && parent.Err() == nil {
		// The per-point deadline (not the sweep context) expired: surface
		// it as a real failure so cancellation filtering can't hide it.
		err = &PointTimeoutError{Point: i, Limit: p.PointTimeout}
	}
	return res, err
}
