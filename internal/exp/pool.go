package exp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Pool is a bounded scheduler for independent simulation points. Every
// point of a figure/table grid is a self-contained single-goroutine
// simulation (its own engine, cluster, RNG streams and recorder), so a
// grid can fan out across cores with no coordination beyond collation.
//
// Determinism contract: results are collated in point-index order and the
// emit callback fires from the collator in strictly ascending index order,
// so the rendered artifacts are byte-identical regardless of worker count
// or completion order. On failure the lowest-index point error wins (also
// order-independent: indices are claimed ascending, so every point below a
// failed one has already run to completion), and remaining unstarted work
// is cancelled via context.
type Pool struct {
	// Workers bounds concurrently running points; <= 0 means
	// runtime.GOMAXPROCS(0). Workers == 1 reproduces strictly sequential
	// execution.
	Workers int
}

// PointFunc computes grid point i. It must be self-contained: no shared
// mutable state with other points (exp.RunHybrid satisfies this). The
// context is cancelled once any point fails; long-running points may
// observe it, but are also free to run to completion.
type PointFunc func(ctx context.Context, i int) (*Result, error)

// EmitFunc observes finished points. It is invoked from a single collator
// goroutine in strictly ascending index order (never concurrently), which
// is what keeps progress output deterministic under parallelism. After the
// first failed index, no further points are emitted.
type EmitFunc func(i int, r *Result)

// PoolStats summarizes one Run for cost accounting.
type PoolStats struct {
	// Points is the number of points that completed successfully.
	Points int
	// Events is the total simulated-event count across completed points.
	Events uint64
	// Wall is the scheduler's wall-clock time for the whole grid.
	Wall time.Duration
	// Workers is the effective worker count used.
	Workers int
}

// EventsPerSecond is the aggregate simulation throughput across workers.
func (s PoolStats) EventsPerSecond() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Events) / s.Wall.Seconds()
}

// size resolves the effective worker count for an n-point grid.
func (p *Pool) size(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// Run executes point(0..n-1) on at most p.Workers goroutines and returns
// the results keyed by grid index, in index order. The first error (by
// index) wins; in-flight points finish, unstarted points are cancelled.
// Run does not return until every worker goroutine has exited.
func (p *Pool) Run(ctx context.Context, n int, point PointFunc, emit EmitFunc) ([]*Result, PoolStats, error) {
	stats := PoolStats{Workers: p.size(n)}
	if n <= 0 {
		return nil, stats, ctx.Err()
	}
	start := time.Now()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]*Result, n)
	errs := make([]error, n)
	var next atomic.Int64
	done := make(chan int, n)

	var wg sync.WaitGroup
	for w := 0; w < stats.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					// Unstarted point skipped by cancellation; never
					// preferred over a real point error (see below).
					errs[i] = err
					done <- i
					continue
				}
				res, err := point(ctx, i)
				results[i], errs[i] = res, err
				if err != nil {
					cancel()
				}
				done <- i
			}
		}()
	}

	// Collate on the calling goroutine: flush the emit callback for the
	// longest error-free ready prefix so observers see points in spec
	// order no matter when workers finish them.
	ready := make([]bool, n)
	flushed, halted := 0, false
	for received := 0; received < n; received++ {
		i := <-done
		ready[i] = true
		for flushed < n && ready[flushed] {
			if errs[flushed] != nil {
				halted = true
			}
			if emit != nil && !halted {
				emit(flushed, results[flushed])
			}
			flushed++
		}
	}
	wg.Wait()
	stats.Wall = time.Since(start)

	// Lowest-index real failure wins deterministically. Indices are
	// claimed in ascending order and in-flight points always finish, so
	// every point below a failed index holds its true outcome, not a
	// cancellation artifact.
	for i, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return nil, stats, fmt.Errorf("point %d: %w", i, err)
		}
	}
	for _, err := range errs {
		if err != nil { // external cancellation only
			return nil, stats, err
		}
	}
	for _, r := range results {
		stats.Points++
		stats.Events += r.Events
	}
	return results, stats, nil
}
