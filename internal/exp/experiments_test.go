package exp

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestRunFig3aProducesOccupancyTable(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunFig3a(ScaleTiny, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.TCPOnly == nil || res.RDMAOnly == nil {
		t.Fatal("missing per-protocol results")
	}
	if len(res.TCPOnly.TCPSlowdowns) == 0 {
		t.Error("TCP-only run has no TCP flows")
	}
	if len(res.TCPOnly.RDMASlowdowns) != 0 {
		t.Error("TCP-only run produced RDMA flows")
	}
	if len(res.RDMAOnly.RDMASlowdowns) == 0 {
		t.Error("RDMA-only run has no RDMA flows")
	}
	out := buf.String()
	for _, want := range []string{"Fig 3(a)", "TCP", "RDMA", "occ_p99_KB"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunTable2Shape(t *testing.T) {
	var buf bytes.Buffer
	tab, err := RunTable2(ScaleTiny, nil, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 policies", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != 6 {
			t.Fatalf("row %v has %d cells, want policy + 5 loads", row, len(row))
		}
	}
	if !strings.Contains(buf.String(), "Table II") {
		t.Error("missing table title")
	}
}

func TestRunTable2ReusesPriorSweep(t *testing.T) {
	// A prior Fig. 7 sweep at the same scale must be reused without
	// re-simulation: verify the cells come from the prior result set.
	var buf bytes.Buffer
	sweep, err := NewHarness(1).runLoadSweep("fig7", ScaleTiny, []string{"DT", "DT2", "ABM", "L2BM"}, Table2Loads, nil)
	if err != nil {
		t.Fatal(err)
	}
	sweep.Loads = Table2Loads
	tab, err := RunTable2(ScaleTiny, sweep, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// Row order in RunTable2 is ABM, DT, DT2, L2BM; check one cell.
	for i, pol := range []string{"ABM", "DT", "DT2", "L2BM"} {
		if tab.Rows[i][0] != pol {
			t.Fatalf("row %d policy = %q, want %q", i, tab.Rows[i][0], pol)
		}
	}
}

// syntheticSweep builds a prior with sentinel results (distinct pause
// counts) so reuse is observable without re-simulating.
func syntheticSweep(policies []string, loads []float64) *SweepResult {
	s := &SweepResult{Policies: policies, Loads: loads, Cells: make(map[string][]*Result)}
	for pi, pol := range policies {
		for li := range loads {
			s.Cells[pol] = append(s.Cells[pol], &Result{PauseFrames: uint64(1000 + 100*pi + li)})
		}
	}
	return s
}

// TestRunTable2PartialPriorRegression: a prior sweep lacking a policy (the
// Fig. 3(b) shape: DT/ABM only) used to panic on nil-slice indexing, and
// loads produced by arithmetic (0.1*4 != 0.4) used to miss via exact float
// equality. The lookup must guard absent policies, epsilon-compare loads,
// and stop at the first hit.
func TestRunTable2PartialPriorRegression(t *testing.T) {
	// Loads arrive via arithmetic so exact == comparison would miss.
	loads := make([]float64, len(Table2Loads))
	for i := range loads {
		loads[i] = float64(4+i) * 0.1 // 0.4..0.8 with float error
	}
	prior := syntheticSweep([]string{"DT", "ABM"}, loads)
	// Make one present policy ragged too: shorter Cells than Loads.
	prior.Cells["ABM"] = prior.Cells["ABM"][:2]

	var buf bytes.Buffer
	tab, err := RunTable2(ScaleTiny, prior, &buf) // must not panic
	if err != nil {
		t.Fatal(err)
	}
	// DT row (index 1) must carry the sentinel pause counts from the prior.
	for li := range Table2Loads {
		want := fmt.Sprint(1000 + li) // pi=0 for DT in the synthetic sweep
		if got := tab.Rows[1][1+li]; got != want {
			t.Errorf("DT load %d: cell = %q, want sentinel %s (prior not reused)", li, got, want)
		}
	}
	// ABM's two surviving cells reused; the ragged tail re-simulated.
	for li := 0; li < 2; li++ {
		want := fmt.Sprint(1100 + li)
		if got := tab.Rows[0][1+li]; got != want {
			t.Errorf("ABM load %d: cell = %q, want sentinel %s", li, got, want)
		}
	}
}

func TestSweepLookup(t *testing.T) {
	s := syntheticSweep([]string{"DT"}, []float64{0.4, 0.5})
	if (*SweepResult)(nil).Lookup("DT", 0.4) != nil {
		t.Error("nil sweep should return nil")
	}
	if s.Lookup("L2BM", 0.4) != nil {
		t.Error("absent policy should return nil, not panic")
	}
	if s.Lookup("DT", 0.6) != nil {
		t.Error("absent load should return nil")
	}
	if got := s.Lookup("DT", 0.1*4); got == nil || got.PauseFrames != 1000 {
		t.Errorf("epsilon load match failed: %+v", got)
	}
	s.Cells["DT"] = s.Cells["DT"][:1]
	if s.Lookup("DT", 0.5) != nil {
		t.Error("ragged cell row should return nil, not panic")
	}
}

// TestSweepLookupEdges covers the remaining degenerate shapes a partially
// populated or hand-built sweep can take.
func TestSweepLookupEdges(t *testing.T) {
	// Zero value: no Cells map at all.
	var zero SweepResult
	if zero.Lookup("DT", 0.4) != nil {
		t.Error("zero-value sweep should return nil, not panic")
	}

	s := syntheticSweep([]string{"DT"}, []float64{0.4, 0.5})

	// Epsilon boundary: within loadEpsilon matches, at/beyond it does not.
	if s.Lookup("DT", 0.4+loadEpsilon/2) == nil {
		t.Error("load within epsilon should match")
	}
	if s.Lookup("DT", 0.4+2*loadEpsilon) != nil {
		t.Error("load beyond epsilon should not match")
	}

	// Loads present but the cell row is empty (grid never ran).
	s.Cells["DT"] = nil
	if s.Lookup("DT", 0.4) != nil {
		t.Error("empty cell row should return nil")
	}

	// A nil hole inside an otherwise populated row (failed point under
	// KeepGoing) comes back as nil rather than a dangling dereference.
	s2 := syntheticSweep([]string{"DT"}, []float64{0.4, 0.5})
	s2.Cells["DT"][1] = nil
	if s2.Lookup("DT", 0.5) != nil {
		t.Error("nil cell should surface as nil")
	}
	if s2.Lookup("DT", 0.4) == nil {
		t.Error("populated neighbor of a nil cell should still match")
	}

	// Empty Loads axis.
	s3 := &SweepResult{Policies: []string{"DT"}, Loads: nil,
		Cells: map[string][]*Result{"DT": {}}}
	if s3.Lookup("DT", 0.4) != nil {
		t.Error("empty loads axis should return nil")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("demo", "a", "b")
	tab.AddRow("1", "2")
	tab.AddRow("3", "4")
	var buf bytes.Buffer
	if err := tab.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== demo ==", "a", "3"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
	csv := tab.CSV()
	if csv != "a,b\n1,2\n3,4\n" {
		t.Errorf("CSV = %q", csv)
	}
}

func TestFloatFormatting(t *testing.T) {
	if f2(1.234) != "1.23" || f3(0.1234) != "0.123" {
		t.Error("float formatting wrong")
	}
	nan := 0.0
	nan /= nan
	if f2(nan) != "-" || f3(nan) != "-" {
		t.Error("NaN should render as -")
	}
}

func TestIncastFanoutClampedOnTinyTopology(t *testing.T) {
	// Tiny scale has 4 RDMA hosts; a fanout of 15 must clamp, not error.
	res, err := RunHybrid(HybridSpec{
		Name: "clamp", Policy: "DT", Scale: ScaleTiny,
		TCPLoad: 0.3,
		Incast:  &IncastSpec{Fanout: 15, RequestBytes: 300_000, QueryRate: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.QueryDelays) == 0 {
		t.Error("no queries completed after clamping")
	}
}
