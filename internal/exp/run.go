package exp

import (
	"context"
	"fmt"
	"sort"

	"l2bm/internal/audit"
	"l2bm/internal/core"
	"l2bm/internal/dcqcn"
	"l2bm/internal/faults"
	"l2bm/internal/metrics"
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/topo"
	"l2bm/internal/trace"
	"l2bm/internal/transport"
	"l2bm/internal/workload"
)

// HybridSpec describes one data point of the paper's hybrid-traffic
// experiments: half the servers per rack offer RDMA web-search traffic,
// the other half TCP web-search traffic, with an optional incast query
// stream on top.
type HybridSpec struct {
	// Name labels the run (used in seeds and output).
	Name string
	// Policy is the BM scheme by name ("L2BM", "DT", "DT2", "ABM"), or use
	// PolicyFactory for custom instances (ablations).
	Policy string
	// PolicyFactory overrides Policy when non-nil. Excluded from JSON (funcs
	// do not serialize); wire specs name policies through the registry.
	PolicyFactory topo.PolicyFactory `json:"-"`
	// Scale sets topology and window; individual fields below override.
	Scale Scale
	// RDMALoad and TCPLoad are offered loads as fractions of the 25 Gbps
	// access links (paper: RDMA fixed at 0.4, TCP swept 0.1–0.8). Zero
	// disables that traffic class.
	RDMALoad float64
	TCPLoad  float64
	// InterRackOnly restricts Poisson destinations to other racks (the
	// paper's motivation setup).
	InterRackOnly bool
	// Incast, when non-nil, adds the §IV-B query workload.
	Incast *IncastSpec
	// OccupancySampleEvery is the buffer-trace period (paper: 1 ms;
	// default 100 µs for the shorter windows here).
	OccupancySampleEvery sim.Duration
	// WindowOverride, if positive, replaces the scale's window.
	WindowOverride sim.Duration
	// DrainOverride, if positive, replaces the scale's post-window drain
	// phase. Fault runs use a longer drain: recovery (RTO backoff, DCQCN
	// rate ramp-up after loss) needs more quiet time than a clean run.
	DrainOverride sim.Duration
	// TopoOverride, if set, may mutate the scale's topology/switch
	// configuration before the cluster is built (used by ablations).
	// Excluded from JSON like every func-valued field.
	TopoOverride func(*topo.Config) `json:"-"`
	// SeedSalt decorrelates repeated runs of the same spec.
	SeedSalt string
	// Shards selects the execution strategy: 0 runs the classic
	// single-engine path; N ≥ 1 runs the psim sharded conductor over N
	// shards (N must not exceed the topology's ToR count). Results are
	// byte-identical for every N ≥ 1 — the shard count is an execution
	// strategy, not a workload parameter — and clean (fault-free) runs
	// also match the classic path. Fault runs differ from classic only in
	// detector/watchdog scheduling (barrier tasks vs engine events).
	Shards int
	// Fidelity selects the execution engine: "" or FidelityPacket runs
	// every event through the packet engine; FidelityHybrid runs the fluid
	// fast-forward controller (internal/fluid), which advances flows
	// analytically between fidelity triggers and drops to full packet
	// simulation around incast bursts, fan-in convergence and buffer
	// pressure. Hybrid fidelity requires the classic engine (Shards must be
	// 0); a fault plan forces packet fidelity for the whole run (fault
	// injection is a standing trigger that never clears).
	Fidelity string
	// Sched selects the scheduler backend: "" or SchedWheel runs the
	// hierarchical timer wheel, SchedHeap the plain 4-ary heap. Both
	// dispatch identically ordered events, so results are byte-identical;
	// the wheel is simply faster once the pending-event population grows.
	Sched string
	// Faults, when non-nil, arms the fault-injection subsystem: the plan's
	// events fire during the run, DCQCN switches to go-back-N recovery,
	// and the deadlock detector plus no-progress watchdog observe the
	// fabric. Nil reproduces the paper's perfect-fabric runs bit-for-bit.
	Faults *FaultSpec
	// Trace, when non-nil, arms the flight recorder: every switch's
	// drop/ECN/PFC probes feed Result.Trace, and a periodic sampler records
	// occupancy plus L2BM weight/τ/threshold timelines. Tracing is
	// feed-forward only — a traced run produces byte-identical results to
	// an untraced one.
	Trace *TraceSpec
	// Audit, when non-nil, arms the global invariant auditor (internal/audit):
	// periodic in-flight sweeps of buffer-byte conservation, pause pairing,
	// flow-byte conservation and pool accounting, plus the drain-time exact
	// checks. Violations land in Result.AuditErrors. Auditing is observer-free:
	// an audited run produces byte-identical results and traces to an
	// unaudited one (Result.Events differs on the classic path only, because
	// audit ticks are engine events there).
	Audit *AuditSpec
	// Hooks, when non-nil, exposes test-only interception points. Excluded
	// from JSON (it carries funcs).
	Hooks *RunHooks `json:"-"`
}

// Fidelity values for HybridSpec.Fidelity.
const (
	// FidelityPacket simulates every MTU of every flow (the default).
	FidelityPacket = "packet"
	// FidelityHybrid alternates fluid fast-forward with packet bursts.
	FidelityHybrid = "hybrid"
)

// Sched values for HybridSpec.Sched.
const (
	// SchedWheel runs event scheduling on the hierarchical timer wheel,
	// tick-sized from the fabric's minimum propagation delay (the default:
	// byte-identical to the heap, faster at scale).
	SchedWheel = "wheel"
	// SchedHeap selects the plain 4-ary heap scheduler.
	SchedHeap = "heap"
)

// newEngineFor builds the scheduler backend a spec asked for. The wheel and
// heap dispatch every event in the identical (at, seq | arrival-key) order,
// so Sched — like Shards — is an execution strategy, not a workload
// parameter: results are byte-identical either way.
func newEngineFor(sched string, topoCfg *topo.Config, seed int64) (*sim.Engine, error) {
	switch sched {
	case "", SchedWheel:
		return sim.NewEngineWheel(seed, sim.WheelGranularityFor(topoCfg.MinPropDelay())), nil
	case SchedHeap:
		return sim.NewEngine(seed), nil
	default:
		return nil, fmt.Errorf("exp: unknown sched %q (want %q or %q)", sched, SchedWheel, SchedHeap)
	}
}

// AuditSpec configures the in-run invariant auditor.
type AuditSpec struct {
	// Every is the sweep period (0 = the auditor default, 500 µs).
	Every sim.Duration
	// MaxPauseAge, when positive, flags unpaired XOFFs older than this
	// mid-run. Leave zero for fault scenarios: injected PFC loss or carrier
	// cuts legitimately delay or destroy resumes.
	MaxPauseAge sim.Duration
	// Limit caps retained violation strings (0 = auditor default).
	Limit int
}

// RunHooks are test-only interception points; production specs leave this
// nil. Specs carrying hooks cannot be checkpointed (funcs don't serialize).
type RunHooks struct {
	// PostBuild runs once right after the cluster is built, before any
	// traffic or observers are armed — the place a mutation test plants a
	// seeded accounting bug (e.g. Switch.SkewSharedUsedForTest).
	PostBuild func(*topo.Cluster)
}

// FaultSpec couples a fault plan with the detection machinery settings.
type FaultSpec struct {
	// Plan declares what to inject. If Plan.LinkFilter is nil and flapping
	// is enabled, flaps are restricted to fabric (ToR–agg, agg–core)
	// links: flapping an access link merely disconnects one host, which
	// tests nothing about the fabric.
	Plan faults.Plan
	// DetectorPeriod overrides the deadlock scan interval (0 = default).
	DetectorPeriod sim.Duration
	// BreakDeadlocks enables the detector's documented degraded mode.
	BreakDeadlocks bool
	// WatchdogWindow overrides the no-progress window (0 = default).
	WatchdogWindow sim.Duration
}

// IncastSpec configures the fan-in query stream.
type IncastSpec struct {
	// Fanout is N, responders per query.
	Fanout int
	// RequestBytes is the per-query payload (paper: 1 MB).
	RequestBytes int64
	// QueryRate is mean queries per second (paper: ≈752/s).
	QueryRate float64
}

// Result is everything a figure/table needs from one run.
type Result struct {
	// Spec is carried for in-process consumers; it is excluded from JSON
	// (checkpoints): its func-valued fields (PolicyFactory, TopoOverride,
	// Hooks, Trace) do not serialize, and resume re-derives the spec from
	// the sweep grid anyway.
	Spec   HybridSpec `json:"-"`
	Policy string

	// Per-class slowdowns of completed flows, ascending.
	RDMASlowdowns []float64
	TCPSlowdowns  []float64
	// IncastSlowdowns covers only the query-responder flows, ascending.
	IncastSlowdowns []float64
	// QueryDelays are per-query response times (max FCT over its flows).
	QueryDelays []sim.Duration

	// TorOccupancy traces total resident bytes per ToR switch.
	TorOccupancy [][]metrics.Reading

	// Trace is the flight recorder armed by Spec.Trace (nil when tracing
	// was off). Export with WriteTrace or the trace.Recorder writers.
	// Excluded from JSON checkpoints: traced sweeps are checkpoint-
	// ineligible (the recorder is unbounded relative to point results).
	Trace *trace.Recorder `json:"-"`

	// PauseFrames is the total XOFF count across all switches (the Fig.
	// 7(d)/Table II metric); the per-layer counters break it down.
	PauseFrames     uint64
	ToRPauseFrames  uint64
	AggPauseFrames  uint64
	CorePauseFrames uint64

	// Drops and marks aggregated over all switches. LossyEvictions counts
	// already-admitted packets a preemptive policy (Occamy) evicted —
	// losses like drops, but charged after admission.
	LossyDrops         uint64
	LossyEvictions     uint64
	LosslessViolations uint64
	ECNMarked          uint64

	// FlowsStarted/FlowsCompleted count observed (recorded) flows.
	FlowsStarted   int
	FlowsCompleted int
	// LosslessGaps must be zero in a healthy run; under go-back-N faults it
	// counts recovered out-of-sequence events.
	LosslessGaps uint64
	// Events is the engine's executed-event count (cost accounting).
	Events uint64
	// EndTime is the simulated instant the run stopped.
	EndTime sim.Time

	// Incomplete lists flows that started but never finished (normally
	// empty; under faults it pinpoints lost transfers).
	Incomplete []*metrics.FlowRecord
	// TruncatedFlows counts flows the horizon cut short: started inside the
	// window but still unfinished at window + drain. Always equals
	// len(Incomplete); surfaced as a counter so sweep tables and the
	// sharded-vs-classic equivalence tests can compare it without carrying
	// the full records.
	TruncatedFlows int

	// Hybrid-fidelity accounting, all zero on pure packet runs.
	FluidFlows     int          // flows completed analytically in fluid segments
	FluidSteps     uint64       // fluid events (arrivals + completions) processed
	FluidTime      sim.Duration // simulated time covered by fluid segments
	PacketSegments int          // packet bursts the fidelity controller ran
	// FidelityFallback, when non-empty, records why a hybrid-fidelity
	// request ran at packet fidelity anyway (a fault plan is a standing
	// fidelity trigger). Empty on every run that executed as asked.
	FidelityFallback string `json:",omitempty"`

	// AuditErrors lists invariant violations: the end-of-run CheckInvariants
	// sweep over every switch always runs, and when Spec.Audit is set the
	// in-flight auditor's violations (including drain-time conservation
	// checks) are appended. Always empty in a correct simulator, faults or
	// not.
	AuditErrors []string
	// AuditChecks counts auditor sweeps that ran (zero when Spec.Audit nil).
	AuditChecks uint64

	// PoolGets counts packet-pool checkouts over the run and PoolLive the
	// packets still checked out at run end (zero when the run fully
	// drained; positive when the horizon cut flows short and frames remain
	// parked in queues or in flight). Both zero with pooling disabled.
	PoolGets uint64
	PoolLive int64

	// Fault-injection and robustness observability, all zero on a healthy
	// fabric without a FaultSpec.
	RecoveryBytes   int64  // payload bytes retransmitted by any sender
	RDMANACKs       uint64 // go-back-N NACK-triggered rewinds
	RDMATimeouts    uint64 // go-back-N timeout-triggered rewinds
	PFCReissues     uint64 // XOFF frames re-sent after a suspected lost pause
	LinkDownEvents  uint64 // carrier cuts that fired (flaps, schedules, blackouts)
	CorruptedFrames uint64 // data frames destroyed by the BER process
	LostPFC         uint64 // PFC frames destroyed by the loss process
	CarrierDrops    uint64 // frames lost to dead carriers
	DeadlockScans   uint64 // detector sweeps run
	DeadlockCycles  uint64 // confirmed PFC wait-for cycles
	DeadlocksBroken uint64 // forced resumes issued to break cycles
	WatchdogStalls  uint64 // no-progress windows with resident bytes
}

// RDMAp99 returns the 99th-percentile RDMA FCT slowdown. The slowdown
// slices are stored ascending, so the sorted fast path applies.
func (r *Result) RDMAp99() float64 { return metrics.PercentileSorted(r.RDMASlowdowns, 99) }

// TCPp99 returns the 99th-percentile TCP FCT slowdown.
func (r *Result) TCPp99() float64 { return metrics.PercentileSorted(r.TCPSlowdowns, 99) }

// Incastp99 returns the 99th-percentile incast-flow slowdown.
func (r *Result) Incastp99() float64 { return metrics.PercentileSorted(r.IncastSlowdowns, 99) }

// OccupancyP99Fraction returns the 99th-percentile ToR occupancy as a
// fraction of the shared buffer (pooled over ToRs), the Fig. 7(c) metric.
func (r *Result) OccupancyP99Fraction(buffer int64) float64 {
	var all []float64
	for _, trace := range r.TorOccupancy {
		for _, s := range trace {
			all = append(all, float64(s.Value))
		}
	}
	return metrics.Percentile(all, 99) / float64(buffer)
}

// QueryDelaySummary condenses per-query response times (Fig. 10(b)),
// in milliseconds.
func (r *Result) QueryDelaySummary() metrics.Summary {
	xs := make([]float64, len(r.QueryDelays))
	for i, d := range r.QueryDelays {
		xs[i] = d.Millis()
	}
	return metrics.Summarize(xs)
}

// interruptPollEvents is how many executed events pass between context
// polls when a run is cancellable. Event-count based (not sim-time) so even
// a zero-delay livelock still gets interrupted; cheap enough (~one atomic
// load per 4096 events) to leave always-on.
const interruptPollEvents = 4096

// newAuditor builds the in-run invariant auditor for a spec, deriving the
// fault-tolerant settings: any active fault plan may legitimately strand a
// PFC pause (lost XON, cut carrier, blacked-out switch), so drain-time
// pause-leak checking is relaxed exactly then.
func newAuditor(spec HybridSpec, cl *topo.Cluster) *audit.Auditor {
	return audit.New(cl, audit.Config{
		Every:            spec.Audit.Every,
		MaxPauseAge:      spec.Audit.MaxPauseAge,
		Limit:            spec.Audit.Limit,
		AllowLeakedPause: spec.Faults != nil,
	})
}

// finishAudit runs the drain-time checks and folds the auditor's findings
// into the result.
func finishAudit(aud *audit.Auditor, res *Result) {
	aud.Final()
	res.AuditErrors = append(res.AuditErrors, aud.Violations()...)
	res.AuditChecks = aud.Checks()
}

// RunHybrid executes one hybrid data point, dispatching to the sharded
// conductor when spec.Shards ≥ 1.
func RunHybrid(spec HybridSpec) (*Result, error) {
	return RunHybridCtx(context.Background(), spec)
}

// RunHybridCtx is RunHybrid with cooperative cancellation: when ctx is
// cancelled (or times out) mid-run, the engine abandons the event loop at
// the next poll boundary and the call returns (nil, ctx.Err()) — the torn
// partial state is discarded, never summarized. An uncancelled ctx is
// observer-free: arming the poll changes no results.
func RunHybridCtx(ctx context.Context, spec HybridSpec) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var fidelityFallback string
	switch spec.Fidelity {
	case "", FidelityPacket:
	case FidelityHybrid:
		if spec.Shards >= 1 {
			return nil, fmt.Errorf("exp: hybrid fidelity requires the classic engine (got Shards=%d)", spec.Shards)
		}
		if spec.Faults == nil {
			return runHybridFluid(ctx, spec)
		}
		// A fault plan is a standing fidelity trigger: the controller would
		// never leave packet mode, so the run falls through to the classic
		// path unchanged — recorded on the result so the fallback is never
		// silent (CLI trailers and service events surface it).
		fidelityFallback = "fault plan active: hybrid fidelity fell back to packet (faults are a standing fidelity trigger)"
	default:
		return nil, fmt.Errorf("exp: unknown fidelity %q (want %q or %q)",
			spec.Fidelity, FidelityPacket, FidelityHybrid)
	}
	if spec.Shards >= 1 {
		res, err := runHybridSharded(ctx, spec)
		if res != nil {
			res.FidelityFallback = fidelityFallback
		}
		return res, err
	}
	policyName := spec.Policy
	factory := spec.PolicyFactory
	if factory == nil {
		name := spec.Policy
		factory = func() core.Policy { return NewPolicy(name) }
	} else if policyName == "" {
		policyName = factory().Name()
	}

	// The seed deliberately excludes the policy: the paper compares buffer
	// management schemes under the same offered workload, so runs differ
	// only in MMU decisions (common random numbers).
	seed := seedFor(spec.Name, spec.SeedSalt,
		fmt.Sprintf("%v/%v/%v", spec.RDMALoad, spec.TCPLoad, spec.Scale))
	rec := metrics.NewFCTRecorder()

	var incastGen *workload.Incast
	incastIDs := make(map[pkt.FlowID]bool)

	onComplete := func(id pkt.FlowID, at sim.Time) {
		rec.Completed(id, at)
		if incastGen != nil {
			incastGen.OnFlowComplete(id, at)
		}
	}

	topoCfg := spec.Scale.Topo()
	if spec.TopoOverride != nil {
		spec.TopoOverride(&topoCfg)
	}
	if spec.Faults != nil {
		// Injected loss breaks the lossless assumption, so RDMA needs the
		// go-back-N recovery path; fault-free runs keep it off to preserve
		// the paper's baseline byte-for-byte.
		if topoCfg.DCQCN.LineRate == 0 {
			topoCfg.DCQCN = dcqcn.DefaultConfig(topoCfg.ServerRate)
		}
		topoCfg.DCQCN.GoBackN = true
	}
	eng, err := newEngineFor(spec.Sched, &topoCfg, seed)
	if err != nil {
		return nil, err
	}
	cl, err := topo.Build(eng, topoCfg, factory, onComplete)
	if err != nil {
		return nil, err
	}
	if spec.Hooks != nil && spec.Hooks.PostBuild != nil {
		spec.Hooks.PostBuild(cl)
	}

	var inj *faults.Injector
	var det *faults.DeadlockDetector
	var wd *faults.Watchdog
	if spec.Faults != nil {
		links, tiers := clusterFaultLinks(cl)
		plan := spec.Faults.Plan
		if plan.LinkFilter == nil && plan.FlapRate > 0 {
			plan.LinkFilter = func(name string) bool {
				t := tiers[name]
				return t == topo.TierTorAgg || t == topo.TierAggCore
			}
		}
		inj, err = faults.NewInjector(eng, plan, links)
		if err != nil {
			return nil, err
		}
		inj.Install()

		det = faults.NewDeadlockDetector(eng, cl.AllSwitches())
		if spec.Faults.DetectorPeriod > 0 {
			det.Period = spec.Faults.DetectorPeriod
		}
		det.Break = spec.Faults.BreakDeadlocks
		det.Start()

		wd = faults.NewWatchdog(eng, cl.DataReceived, cl.ResidentBytes)
		if spec.Faults.WatchdogWindow > 0 {
			wd.Window = spec.Faults.WatchdogWindow
		}
		wd.Start()
	}

	window := spec.Scale.Window()
	if spec.WindowOverride > 0 {
		window = spec.WindowOverride
	}

	observe := func(f *transport.Flow) {
		rec.Started(f, cl.IdealFCT(f.Src, f.Dst, f.Size))
	}

	// Split each rack: first half RDMA senders, second half TCP senders.
	var rdmaHosts, tcpHosts, allHosts []int
	perRack := topoCfg.ServersPerToR
	for h := 0; h < cl.NumHosts(); h++ {
		allHosts = append(allHosts, h)
		if h%perRack < perRack/2 {
			rdmaHosts = append(rdmaHosts, h)
		} else {
			tcpHosts = append(tcpHosts, h)
		}
	}
	var forbid func(src, dst int) bool
	if spec.InterRackOnly {
		forbid = func(src, dst int) bool { return cl.ToROf(src) == cl.ToROf(dst) }
	}

	if spec.RDMALoad > 0 {
		g, err := workload.NewPoisson(eng, cl, workload.PoissonConfig{
			Sources:    rdmaHosts,
			Dests:      allHosts,
			Load:       spec.RDMALoad,
			HostRate:   topoCfg.ServerRate,
			Sizes:      workload.WebSearchCDF(),
			Priority:   pkt.PrioLossless,
			Class:      pkt.ClassLossless,
			Window:     window,
			Observer:   observe,
			Forbid:     forbid,
			StreamName: "rdma",
			IDTag:      tagRDMA,
		})
		if err != nil {
			return nil, err
		}
		g.Install()
	}
	if spec.TCPLoad > 0 {
		g, err := workload.NewPoisson(eng, cl, workload.PoissonConfig{
			Sources:    tcpHosts,
			Dests:      allHosts,
			Load:       spec.TCPLoad,
			HostRate:   topoCfg.ServerRate,
			Sizes:      workload.WebSearchCDF(),
			Priority:   pkt.PrioLossy,
			Class:      pkt.ClassLossy,
			Window:     window,
			Observer:   observe,
			Forbid:     forbid,
			StreamName: "tcp",
			IDTag:      tagTCP,
		})
		if err != nil {
			return nil, err
		}
		g.Install()
	}
	if spec.Incast != nil {
		fanout := spec.Incast.Fanout
		if fanout >= len(allHosts) {
			// Scaled-down topologies cannot host the full fan-in degree.
			fanout = len(allHosts) - 1
		}
		// Queries target (and are answered by) any server, so fan-in
		// bursts land on ports whose buffers the TCP background is
		// already pressuring — the §IV-B contention the deep dive probes.
		incastGen, err = workload.NewIncast(eng, cl, workload.IncastConfig{
			Hosts:        allHosts,
			Fanout:       fanout,
			RequestBytes: spec.Incast.RequestBytes,
			QueryRate:    spec.Incast.QueryRate,
			Window:       window,
			Priority:     pkt.PrioLossless,
			Class:        pkt.ClassLossless,
			Observer: func(f *transport.Flow) {
				incastIDs[f.ID] = true
				observe(f)
			},
			StreamName: "incast",
			IDTag:      tagIncast,
		})
		if err != nil {
			return nil, err
		}
		incastGen.Install()
	}

	// Occupancy samplers, one per ToR (the paper traces rack switches).
	every := spec.OccupancySampleEvery
	if every <= 0 {
		every = 100 * sim.Microsecond
	}
	drain := spec.Scale.Drain()
	if spec.DrainOverride > 0 {
		drain = spec.DrainOverride
	}
	horizon := window + drain
	samplers := make([]*metrics.Sampler, len(cl.ToRs))
	for i, tor := range cl.ToRs {
		tor := tor
		samplers[i] = metrics.NewSampler(eng, every, tor.Occupancy)
		samplers[i].Start(window) // trace the loaded phase, like the paper
	}

	// Flight recorder: arm MMU probes on every switch and a periodic
	// occupancy + L2BM weight sampler. Everything here is feed-forward
	// (probes and PeekSamples are pure reads), so arming it cannot change
	// the run's results.
	var tracer *trace.Recorder
	if spec.Trace != nil {
		tracer = trace.NewRecorder(spec.Trace.Capacity)
		tEvery := spec.Trace.SampleEvery
		if tEvery <= 0 {
			tEvery = every
		}
		ts := trace.NewSampler(eng, tracer, tEvery)
		for _, sw := range cl.AllSwitches() {
			sw := sw
			sw.SetTracer(tracer)
			ts.AddSwitch(sw)
			if l, ok := sw.Policy().(*core.L2BM); ok {
				name := sw.Name()
				var scratch []core.QueueSample // reused across ticks: zero-alloc sampling
				ts.AddProbe(func(now sim.Time, rec *trace.Recorder) {
					scratch = l.PeekSamplesAppend(scratch[:0], sw)
					for _, qs := range scratch {
						rec.RecordWeight(trace.WeightSample{
							At: now, Switch: name, Port: qs.Port, Prio: qs.Prio,
							Tau: qs.Tau, Weight: qs.Weight, Threshold: qs.Threshold,
						})
					}
				})
			}
		}
		ts.Start(window) // sample the loaded phase, like the metrics samplers
	}

	var aud *audit.Auditor
	if spec.Audit != nil {
		aud = newAuditor(spec, cl)
		aud.Start()
	}
	if ctx.Done() != nil {
		eng.SetInterrupt(interruptPollEvents, func() bool { return ctx.Err() != nil })
	}

	eng.Run(horizon)

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := &Result{
		Spec:             spec,
		Policy:           policyName,
		RDMASlowdowns:    rec.Slowdowns(pkt.ClassLossless),
		TCPSlowdowns:     rec.Slowdowns(pkt.ClassLossy),
		LosslessGaps:     cl.LosslessGaps(),
		Events:           eng.Events(),
		EndTime:          eng.Now(),
		FidelityFallback: fidelityFallback,
	}
	if tracer != nil {
		// Canonicalize through the same merge as the sharded runner so
		// exported trace files are byte-identical across execution modes.
		res.Trace = trace.Merge(tracer)
	}
	res.FlowsStarted, res.FlowsCompleted = rec.Counts()
	res.Incomplete = rec.IncompleteRecords()
	res.TruncatedFlows = len(res.Incomplete)

	if incastGen != nil {
		for _, fr := range rec.Records(pkt.ClassLossless) {
			if incastIDs[fr.Flow.ID] {
				res.IncastSlowdowns = append(res.IncastSlowdowns, fr.Slowdown())
			}
		}
		// Keep the ascending invariant shared with the per-class slices so
		// percentile readers can use the sorted fast path.
		sort.Float64s(res.IncastSlowdowns)
		res.QueryDelays = incastGen.CompletedResponseTimes()
	}

	for _, s := range samplers {
		res.TorOccupancy = append(res.TorOccupancy, s.Samples)
	}

	all := topo.SwitchStats(cl.AllSwitches())
	res.PauseFrames = all.PauseFramesSent
	res.LossyDrops = all.LossyDropsIngress + all.LossyDropsEgress
	res.LossyEvictions = all.LossyEvictions
	res.LosslessViolations = all.LosslessViolations
	res.ECNMarked = all.ECNMarked
	res.PFCReissues = all.PFCReissues
	res.ToRPauseFrames = topo.SwitchStats(cl.ToRs).PauseFramesSent
	res.AggPauseFrames = topo.SwitchStats(cl.Aggs).PauseFramesSent
	res.CorePauseFrames = topo.SwitchStats(cl.Cores).PauseFramesSent

	res.RecoveryBytes = cl.RecoveryBytes()
	res.RDMANACKs, res.RDMATimeouts = cl.RDMARecoveryStats()
	if cl.Pool != nil {
		res.PoolGets = cl.Pool.Stats().Gets
		res.PoolLive = cl.Pool.Live()
	}
	for _, sw := range cl.AllSwitches() {
		if err := sw.CheckInvariants(); err != nil {
			res.AuditErrors = append(res.AuditErrors, err.Error())
		}
	}
	if aud != nil {
		aud.Stop()
		finishAudit(aud, res)
	}
	if inj != nil {
		s := inj.Stats()
		res.LinkDownEvents = s.LinkDownEvents
		res.CorruptedFrames = s.CorruptedFrames
		res.LostPFC = s.LostPFC
		res.CarrierDrops = inj.CarrierDrops()
	}
	if det != nil {
		det.Stop()
		ds := det.Stats()
		res.DeadlockScans = ds.Scans
		res.DeadlockCycles = ds.CyclesDetected
		res.DeadlocksBroken = ds.CyclesBroken
	}
	if wd != nil {
		wd.Stop()
		res.WatchdogStalls = wd.Stalls
	}
	return res, nil
}

// clusterFaultLinks adapts the topology's link registry to the fault
// injector's view, binding each SetLive to the cluster's liveness-aware
// routing update.
func clusterFaultLinks(cl *topo.Cluster) ([]faults.Link, map[string]topo.LinkTier) {
	links := cl.Links()
	out := make([]faults.Link, 0, len(links))
	tiers := make(map[string]topo.LinkTier, len(links))
	for _, l := range links {
		idx := l.Index
		out = append(out, faults.Link{
			Name: l.Name, A: l.A, B: l.B, AName: l.AName, BName: l.BName,
			SetLive: func(up bool) { cl.SetLinkState(idx, up) },
		})
		tiers[l.Name] = l.Tier
	}
	return out, tiers
}
