// Wire representation of sweeps: the JSON request l2bmd accepts and the
// canonical result encoding shared by the daemon and the CLI's -spec mode.
// Canonical means byte-identical: MarshalResults splices each point's
// json.Marshal output into a fixed envelope, so a daemon serving cached
// bytes and a CLI marshaling fresh results produce the same file — the
// equivalence CI diffs.
package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"strings"

	"l2bm/internal/core"
)

// MarshalJSON renders a Scale as its CLI name ("tiny"|"small"|"full"), so
// wire specs read like command lines; unnamed values fall back to the raw
// integer.
func (s Scale) MarshalJSON() ([]byte, error) {
	switch s {
	case ScaleTiny, ScaleSmall, ScaleFull:
		return json.Marshal(s.String())
	default:
		return json.Marshal(int(s))
	}
}

// UnmarshalJSON accepts either the CLI name or the integer form.
func (s *Scale) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err == nil {
		v, err := ParseScale(name)
		if err != nil {
			return err
		}
		*s = v
		return nil
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("exp: scale must be a name (tiny|small|full) or integer, got %s", data)
	}
	*s = Scale(n)
	return nil
}

// SweepRequest is one sweep submission: a named list of point specs. Specs
// use their Go field names on the wire (the same encoding checkpoints use);
// func-valued fields are excluded by their json tags, so a wire spec is
// always plain data.
type SweepRequest struct {
	// Name labels the sweep in status output; optional.
	Name string `json:"name,omitempty"`
	// Specs are the grid points, run in order through the pool.
	Specs []HybridSpec `json:"specs"`
}

// ParseSweepRequest decodes and validates a submission strictly: unknown
// fields are rejected (a typo'd field name must 400, not silently run a
// different sweep), and every spec is validated before any simulation.
func ParseSweepRequest(data []byte) (*SweepRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req SweepRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("exp: sweep request: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("exp: sweep request: trailing data after the JSON object")
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// Validate checks every spec against the same envelope the CLI enforces
// upfront: registered policy, known fidelity/sched/scale values, sane
// loads, and the hybrid/shards exclusion.
func (r *SweepRequest) Validate() error {
	if len(r.Specs) == 0 {
		return fmt.Errorf("exp: sweep request: no specs")
	}
	for i, sp := range r.Specs {
		fail := func(format string, args ...any) error {
			return fmt.Errorf("exp: sweep request: spec %d: %s", i, fmt.Sprintf(format, args...))
		}
		if sp.Name == "" {
			return fail("Name is required (it seeds the run)")
		}
		if sp.Policy == "" {
			return fail("Policy is required")
		}
		if !core.IsRegistered(sp.Policy) {
			return fail("unknown policy %q (have %s)", sp.Policy, strings.Join(core.RegisteredPolicies(), " "))
		}
		switch sp.Scale {
		case ScaleTiny, ScaleSmall, ScaleFull:
		default:
			return fail("unknown scale %d (want tiny|small|full)", int(sp.Scale))
		}
		switch sp.Fidelity {
		case "", FidelityPacket, FidelityHybrid:
		default:
			return fail("unknown fidelity %q (want %q or %q)", sp.Fidelity, FidelityPacket, FidelityHybrid)
		}
		if sp.Fidelity == FidelityHybrid && sp.Shards >= 1 {
			return fail("hybrid fidelity requires the classic engine (got Shards=%d)", sp.Shards)
		}
		switch sp.Sched {
		case "", SchedWheel, SchedHeap:
		default:
			return fail("unknown sched %q (want %q or %q)", sp.Sched, SchedWheel, SchedHeap)
		}
		if sp.Shards < 0 {
			return fail("Shards must be >= 0, got %d", sp.Shards)
		}
		for _, load := range []struct {
			name string
			v    float64
		}{{"RDMALoad", sp.RDMALoad}, {"TCPLoad", sp.TCPLoad}} {
			if math.IsNaN(load.v) || math.IsInf(load.v, 0) || load.v < 0 || load.v > 1 {
				return fail("%s = %v, want in [0, 1]", load.name, load.v)
			}
		}
		if sp.Incast != nil && (sp.Incast.Fanout <= 0 || sp.Incast.RequestBytes <= 0 || sp.Incast.QueryRate <= 0) {
			return fail("Incast needs positive Fanout, RequestBytes and QueryRate")
		}
		if sp.Faults != nil {
			if err := sp.Faults.Plan.Validate(); err != nil {
				return fail("%v", err)
			}
		}
	}
	return nil
}

// SweepID content-hashes the request into a stable identifier fragment:
// equal submissions map to equal fragments, so resubmitting a sweep is
// visibly the same sweep. Wire specs are plain data, so the JSON encoding
// is itself canonical.
func (r *SweepRequest) SweepID() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "name=%s n=%d\n", r.Name, len(r.Specs))
	enc := json.NewEncoder(h)
	for _, sp := range r.Specs {
		_ = enc.Encode(sp)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// MarshalResults renders a sweep's results in the canonical envelope:
//
//	{"points":[<result>,<result>,…]}
//
// followed by one newline. Each point is exactly json.Marshal(*Result) —
// the same bytes the result cache stores — so fresh runs, cache hits, the
// daemon and the CLI all emit byte-identical output for equal specs.
func MarshalResults(results []*Result) ([]byte, error) {
	raws := make([]json.RawMessage, len(results))
	for i, r := range results {
		raw, err := json.Marshal(r)
		if err != nil {
			return nil, fmt.Errorf("exp: marshal point %d: %w", i, err)
		}
		raws[i] = raw
	}
	return MarshalRawResults(raws), nil
}

// MarshalRawResults is MarshalResults over already-marshaled point bytes
// (the cache-hit path: stored bytes are spliced without a decode/re-encode
// round trip that could perturb them).
func MarshalRawResults(raws []json.RawMessage) []byte {
	var buf bytes.Buffer
	buf.WriteString(`{"points":[`)
	for i, raw := range raws {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.Write(raw)
	}
	buf.WriteString("]}\n")
	return buf.Bytes()
}
