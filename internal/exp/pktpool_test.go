package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"l2bm/internal/sim"
	"l2bm/internal/topo"
)

// disablePool is the pool-disabled control arm: packets come straight off
// the heap, exactly the pre-pool behaviour.
func disablePool(c *topo.Config) { c.DisablePacketPool = true }

// stripPoolFields removes everything that legitimately differs between a
// pooled run and its pool-disabled control: the pool counters, the recorder
// pointer (trace files are diffed separately), and the spec (which carries
// the TopoOverride closure). Everything else — every figure-level metric,
// the event count, the end time — must match exactly.
func stripPoolFields(r *Result) Result {
	c := *r
	c.PoolGets, c.PoolLive = 0, 0
	c.Trace = nil
	c.Spec = HybridSpec{}
	return c
}

// TestPooledFig7PointByteIdentical is the tentpole's hard constraint on a
// Fig. 7 point: a pooled run and a pool-disabled run must be byte-identical
// — same Result down to every metric, and byte-for-byte identical exported
// trace files. Pooling is a memory-management change, never a model change.
func TestPooledFig7PointByteIdentical(t *testing.T) {
	base := HybridSpec{
		Name: "fig7", Policy: "L2BM", Scale: ScaleTiny,
		RDMALoad: 0.4, TCPLoad: 0.6,
		Trace: &TraceSpec{SampleEvery: 50 * sim.Microsecond},
	}

	run := func(override func(*topo.Config)) (*Result, map[string][]byte) {
		t.Helper()
		spec := base
		spec.TopoOverride = override
		res, err := RunHybrid(spec)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		paths, err := res.WriteTrace(dir, "")
		if err != nil {
			t.Fatal(err)
		}
		files := make(map[string][]byte, len(paths))
		for _, p := range paths {
			b, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			files[filepath.Base(p)] = b
		}
		return res, files
	}

	pooled, pooledFiles := run(nil)
	plain, plainFiles := run(disablePool)

	// The two arms must actually be different configurations.
	if pooled.PoolGets == 0 {
		t.Fatal("pooled run checked out no packets — pool not wired")
	}
	if plain.PoolGets != 0 {
		t.Fatal("pool-disabled run still used a pool")
	}

	if a, b := stripPoolFields(pooled), stripPoolFields(plain); !reflect.DeepEqual(a, b) {
		t.Errorf("pooled and pool-disabled results diverged:\n  pooled: %+v\n  plain:  %+v", a, b)
	}
	if len(pooledFiles) != len(plainFiles) || len(pooledFiles) == 0 {
		t.Fatalf("trace file sets differ: %d vs %d", len(pooledFiles), len(plainFiles))
	}
	for name, pb := range pooledFiles {
		qb, ok := plainFiles[name]
		if !ok {
			t.Errorf("pool-disabled run missing trace file %s", name)
			continue
		}
		if !bytes.Equal(pb, qb) {
			t.Errorf("trace file %s differs between pooled and pool-disabled runs (%d vs %d bytes)",
				name, len(pb), len(qb))
		}
	}
}

// TestPooledFaultPointIdentical repeats the byte-identity check on a
// fault-tolerance point: recycling must survive retransmissions, corrupted
// frames, carrier drops and go-back-N rewinds without perturbing a single
// recovery counter.
func TestPooledFaultPointIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fault scenario twice")
	}
	base := HybridSpec{
		Name: "faults", Policy: "L2BM", Scale: ScaleTiny,
		RDMALoad: 0.4, TCPLoad: 0.4,
		DrainOverride: FaultDrain * ScaleTiny.Window(),
		Faults:        DefaultFaultScenario(ScaleTiny),
	}
	run := func(override func(*topo.Config)) *Result {
		t.Helper()
		spec := base
		spec.TopoOverride = override
		res, err := RunHybrid(spec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	pooled := run(nil)
	plain := run(disablePool)
	if pooled.PoolGets == 0 || plain.PoolGets != 0 {
		t.Fatalf("arm mixup: pooled gets=%d, plain gets=%d", pooled.PoolGets, plain.PoolGets)
	}
	if a, b := stripPoolFields(pooled), stripPoolFields(plain); !reflect.DeepEqual(a, b) {
		t.Errorf("fault-point results diverged between pooled and pool-disabled runs:\n  pooled: %+v\n  plain:  %+v", a, b)
	}
}

// TestPooledRunAuditBalances is the leak audit: with the debug pool armed,
// every Get must be matched by exactly one Put once the fabric drains (the
// packet-level analogue of switchsim's CheckDrained). A fully completed tiny
// run leaves zero packets checked out; a leak here means some sink forgot
// to recycle or some path dropped a frame on the floor.
func TestPooledRunAuditBalances(t *testing.T) {
	spec := tinySpec("L2BM")
	spec.TopoOverride = func(c *topo.Config) { c.PacketPoolDebug = true }
	res, err := RunHybrid(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.PoolGets == 0 {
		t.Fatal("debug pool saw no traffic")
	}
	if len(res.Incomplete) != 0 {
		t.Fatalf("tiny smoke run no longer drains (%d incomplete flows); audit needs a drained run",
			len(res.Incomplete))
	}
	if res.PoolLive != 0 {
		t.Errorf("pool audit: %d packets still checked out after a drained run (of %d gets)",
			res.PoolLive, res.PoolGets)
	}
	if len(res.AuditErrors) != 0 {
		t.Errorf("MMU audit errors alongside pool audit: %v", res.AuditErrors)
	}
}
