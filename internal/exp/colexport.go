package exp

// Columnar result export: one colfmt file carrying the run's flight-recorder
// channels (when traced) plus the metrics series every run accumulates —
// per-ToR occupancy readings, per-class slowdown distributions and incast
// query delays. This is the artifact l2bmd serves per point and the -format
// col path of the CLI trace export; the CSV exporters remain the escape
// hatch.

import (
	"io"

	"l2bm/internal/colfmt"
)

// Columnar channel names written by WriteCol beyond the trace/* channels
// (see trace.AppendCol for those).
const (
	ColTorOccupancy    = "metrics/tor_occupancy"
	ColRDMASlowdowns   = "metrics/rdma_slowdowns"
	ColTCPSlowdowns    = "metrics/tcp_slowdowns"
	ColIncastSlowdowns = "metrics/incast_slowdowns"
	ColQueryDelays     = "metrics/query_delays"
)

// WriteCol renders the run into one columnar file: every flight-recorder
// channel (when the run was traced; pause episodes closed at EndTime) and
// the metrics series. Equal results produce byte-identical files.
func (r *Result) WriteCol(w io.Writer) error {
	f := colfmt.NewFile()
	r.Trace.AppendCol(f, r.EndTime)

	var tors []uint64
	var ats, vals []int64
	for tor, samples := range r.TorOccupancy {
		for _, s := range samples {
			tors = append(tors, uint64(tor))
			ats = append(ats, int64(s.At))
			vals = append(vals, s.Value)
		}
	}
	f.Channel(ColTorOccupancy).Uint("tor", tors).Time("at_ps", ats).Int("value", vals)
	f.Channel(ColRDMASlowdowns).Float("slowdown", r.RDMASlowdowns)
	f.Channel(ColTCPSlowdowns).Float("slowdown", r.TCPSlowdowns)
	f.Channel(ColIncastSlowdowns).Float("slowdown", r.IncastSlowdowns)
	delays := make([]int64, len(r.QueryDelays))
	for i, d := range r.QueryDelays {
		delays[i] = int64(d)
	}
	f.Channel(ColQueryDelays).Int("delay_ps", delays)

	_, err := f.WriteTo(w)
	return err
}
