package exp

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestPoolContainsPanics: a panicking point becomes a *PanicError carrying
// the point index and stack, instead of killing the process.
func TestPoolContainsPanics(t *testing.T) {
	p := &Pool{Workers: 4}
	_, _, err := p.Run(context.Background(), 8,
		func(_ context.Context, i int) (*Result, error) {
			if i == 3 {
				panic("seeded explosion")
			}
			return &Result{}, nil
		}, nil)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Point != 3 || fmt.Sprint(pe.Value) != "seeded explosion" {
		t.Errorf("PanicError = {Point:%d Value:%v}", pe.Point, pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "pool_robust_test") {
		t.Errorf("stack does not reach the panic site:\n%s", pe.Stack)
	}
}

// TestPoolKeepGoing: failures neither cancel the grid nor suppress later
// successes; the returned results keep every success and the error
// inventories every failure.
func TestPoolKeepGoing(t *testing.T) {
	const n = 16
	p := &Pool{Workers: 4, KeepGoing: true}
	var emitted, observed []int
	var observedErrs int
	p.Observe = func(i int, r *Result, err error) {
		observed = append(observed, i)
		if err != nil {
			observedErrs++
		}
	}
	results, stats, err := p.Run(context.Background(), n,
		func(_ context.Context, i int) (*Result, error) {
			switch i {
			case 2:
				return nil, errors.New("hard failure")
			case 5:
				panic("boom")
			}
			return &Result{Events: 1}, nil
		},
		func(i int, r *Result) { emitted = append(emitted, i) })

	var fs *FailureSummary
	if !errors.As(err, &fs) {
		t.Fatalf("err = %v, want *FailureSummary", err)
	}
	if len(fs.Failures) != 2 || fs.Failures[0].Point != 2 || fs.Failures[1].Point != 5 || fs.Total != n {
		t.Errorf("FailureSummary = %+v", fs)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Point != 5 {
		t.Errorf("summary does not unwrap to the panic: %v", err)
	}
	if results == nil || stats.Points != n-2 {
		t.Fatalf("results=%v stats.Points=%d, want %d successes returned", results != nil, stats.Points, n-2)
	}
	for i, r := range results {
		failed := i == 2 || i == 5
		if (r == nil) != failed {
			t.Errorf("results[%d] nil=%v, failed=%v", i, r == nil, failed)
		}
	}
	if len(emitted) != n-2 {
		t.Errorf("emitted %v: want all %d successes, failures skipped", emitted, n-2)
	}
	if len(observed) != n || observedErrs != 2 {
		t.Errorf("Observe saw %d points (%d errors), want %d (2)", len(observed), observedErrs, n)
	}
	for k := 1; k < len(observed); k++ {
		if observed[k] != observed[k-1]+1 {
			t.Fatalf("Observe order %v not ascending", observed)
		}
	}
}

// TestPoolPointTimeout: a point that overruns its wall-clock budget fails
// with *PointTimeoutError — a real failure, not a cancellation artifact —
// while fast points are untouched.
func TestPoolPointTimeout(t *testing.T) {
	p := &Pool{Workers: 2, PointTimeout: 10 * time.Millisecond, KeepGoing: true}
	results, _, err := p.Run(context.Background(), 4,
		func(ctx context.Context, i int) (*Result, error) {
			if i == 1 {
				<-ctx.Done() // a well-behaved long point observes its context
				return nil, ctx.Err()
			}
			return &Result{}, nil
		}, nil)
	var te *PointTimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *PointTimeoutError", err)
	}
	if te.Point != 1 || te.Limit != 10*time.Millisecond {
		t.Errorf("PointTimeoutError = %+v", te)
	}
	for i, r := range results {
		if (r == nil) != (i == 1) {
			t.Errorf("results[%d] nil=%v", i, r == nil)
		}
	}
}

// TestPoolExternalCancelNotTimeout: sweep-level cancellation must surface
// as the context error even with PointTimeout armed — never misreported as
// a per-point timeout.
func TestPoolExternalCancelNotTimeout(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{Workers: 1, PointTimeout: time.Minute}
	_, _, err := p.Run(ctx, 3,
		func(pctx context.Context, i int) (*Result, error) {
			if i == 0 {
				cancel()
				<-pctx.Done()
				return nil, pctx.Err()
			}
			return &Result{}, nil
		}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var te *PointTimeoutError
	if errors.As(err, &te) {
		t.Errorf("external cancel misreported as point timeout: %v", err)
	}
}
