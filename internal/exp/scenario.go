// Package exp is the experiment harness: one runner per table/figure of the
// paper's evaluation (§IV), built on a shared hybrid-traffic scenario
// driver. Each runner returns structured results and can render the same
// rows/series the paper reports.
package exp

import (
	"fmt"
	"hash/fnv"

	"l2bm/internal/core"
	"l2bm/internal/sim"
	"l2bm/internal/topo"
)

// Scale selects the simulation size/duration trade-off. The comparison
// between policies is stable across scales; Full matches the paper's
// topology (128 servers) with a generation window sized for tractable
// event counts (see DESIGN.md's substitution table).
type Scale int

const (
	// ScaleTiny is for unit tests and quick benches: 8 servers, 2 ms.
	ScaleTiny Scale = iota + 1
	// ScaleSmall is for CI-sized sweeps: 32 servers, 10 ms.
	ScaleSmall
	// ScaleFull is the paper's 128-server Clos with a 40 ms window.
	ScaleFull
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleSmall:
		return "small"
	case ScaleFull:
		return "full"
	default:
		return fmt.Sprintf("scale(%d)", int(s))
	}
}

// ParseScale maps a CLI string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "tiny":
		return ScaleTiny, nil
	case "small":
		return ScaleSmall, nil
	case "full":
		return ScaleFull, nil
	default:
		return 0, fmt.Errorf("exp: unknown scale %q (tiny|small|full)", s)
	}
}

// Topo returns the topology for this scale.
func (s Scale) Topo() topo.Config {
	switch s {
	case ScaleTiny:
		return topo.TinyConfig()
	case ScaleSmall:
		cfg := topo.DefaultConfig()
		cfg.ServersPerToR = 8
		return cfg
	default:
		return topo.DefaultConfig()
	}
}

// Window returns the traffic-generation window for this scale.
func (s Scale) Window() sim.Duration {
	switch s {
	case ScaleTiny:
		return 2 * sim.Millisecond
	case ScaleSmall:
		return 10 * sim.Millisecond
	default:
		return 40 * sim.Millisecond
	}
}

// Drain returns how long past the window the run may continue so started
// flows can finish.
func (s Scale) Drain() sim.Duration { return 8 * s.Window() }

// PolicyNames lists the evaluation's four schemes in the paper's order —
// the row order of every reproduced figure/table. It is a fixed view into
// the policy registry, which additionally carries the related-work
// policies (see core.RegisteredPolicies / the arena experiment).
var PolicyNames = []string{"L2BM", "DT", "DT2", "ABM"}

// ExtendedPolicyNames is every policy in the registry, in registration
// order: the paper's four first, then the related work (EDT, TDT, BShare,
// Occamy, FB). The arena races exactly this list.
var ExtendedPolicyNames = core.RegisteredPolicies()

// NewPolicy returns a fresh policy instance by name, resolved through the
// core registry. It panics on unknown names (experiment configuration is
// static; CLIs validate against the registry before any run starts).
func NewPolicy(name string) core.Policy {
	return core.MustNewPolicy(name)
}

// seedFor derives a stable per-scenario seed so every (experiment, policy,
// parameter) point is reproducible yet decorrelated.
func seedFor(parts ...string) int64 {
	h := fnv.New64a()
	for _, p := range parts {
		_, _ = h.Write([]byte(p))
		_, _ = h.Write([]byte{0})
	}
	return int64(h.Sum64() & 0x7FFFFFFFFFFFFFFF)
}
