package exp

import (
	"testing"

	"l2bm/internal/sim"
)

func tinySpec(policy string) HybridSpec {
	return HybridSpec{
		Name:     "smoke",
		Policy:   policy,
		Scale:    ScaleTiny,
		RDMALoad: 0.4,
		TCPLoad:  0.4,
	}
}

func TestRunHybridSmoke(t *testing.T) {
	res, err := RunHybrid(tinySpec("L2BM"))
	if err != nil {
		t.Fatal(err)
	}
	if res.FlowsStarted == 0 {
		t.Fatal("no flows generated")
	}
	if res.FlowsCompleted == 0 {
		t.Fatal("no flows completed")
	}
	if len(res.RDMASlowdowns) == 0 || len(res.TCPSlowdowns) == 0 {
		t.Fatal("missing per-class slowdowns")
	}
	for _, s := range res.RDMASlowdowns {
		if s < 0.99 { // ≥1 up to rounding of ideal
			t.Fatalf("slowdown %v below 1", s)
		}
	}
	if res.LosslessViolations != 0 || res.LosslessGaps != 0 {
		t.Errorf("lossless integrity broken: violations=%d gaps=%d",
			res.LosslessViolations, res.LosslessGaps)
	}
	if len(res.TorOccupancy) != 2 {
		t.Errorf("occupancy traces = %d, want one per ToR", len(res.TorOccupancy))
	}
	if res.Events == 0 || res.EndTime == 0 {
		t.Error("run accounting empty")
	}
	t.Logf("events=%d endTime=%v flows=%d/%d rdmaP99=%.2f tcpP99=%.2f pause=%d drops=%d",
		res.Events, res.EndTime, res.FlowsCompleted, res.FlowsStarted,
		res.RDMAp99(), res.TCPp99(), res.PauseFrames, res.LossyDrops)
}

func TestRunHybridDeterministic(t *testing.T) {
	a, err := RunHybrid(tinySpec("DT"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunHybrid(tinySpec("DT"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events || a.FlowsCompleted != b.FlowsCompleted ||
		a.PauseFrames != b.PauseFrames || a.RDMAp99() != b.RDMAp99() {
		t.Errorf("replay diverged: %+v vs %+v", a.Events, b.Events)
	}
}

func TestRunHybridIncast(t *testing.T) {
	spec := tinySpec("L2BM")
	spec.Incast = &IncastSpec{Fanout: 3, RequestBytes: 300_000, QueryRate: 2000}
	res, err := RunHybrid(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IncastSlowdowns) == 0 {
		t.Fatal("no incast flows measured")
	}
	if len(res.QueryDelays) == 0 {
		t.Fatal("no query delays measured")
	}
	sum := res.QueryDelaySummary()
	if sum.N != len(res.QueryDelays) || sum.Mean <= 0 {
		t.Errorf("query summary wrong: %+v", sum)
	}
}

func TestScaleParsing(t *testing.T) {
	for _, s := range []string{"tiny", "small", "full"} {
		sc, err := ParseScale(s)
		if err != nil || sc.String() != s {
			t.Errorf("ParseScale(%q) = %v, %v", s, sc, err)
		}
	}
	if _, err := ParseScale("galactic"); err == nil {
		t.Error("want error for unknown scale")
	}
}

func TestNewPolicyNames(t *testing.T) {
	for _, name := range PolicyNames {
		p := NewPolicy(name)
		if p.Name() != name {
			t.Errorf("NewPolicy(%q).Name() = %q", name, p.Name())
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown policy should panic")
		}
	}()
	NewPolicy("nope")
}

func TestSeedForStableAndDistinct(t *testing.T) {
	if seedFor("a", "b") != seedFor("a", "b") {
		t.Error("seed not stable")
	}
	if seedFor("a", "b") == seedFor("a", "c") {
		t.Error("seeds collide")
	}
	if seedFor("ab") == seedFor("a", "b") {
		t.Error("field separator missing")
	}
}

func TestScaleAccessors(t *testing.T) {
	if ScaleTiny.Window() >= ScaleFull.Window() {
		t.Error("windows not ordered")
	}
	if ScaleTiny.Topo().ServersPerToR >= ScaleFull.Topo().ServersPerToR {
		t.Error("topologies not ordered")
	}
	if ScaleFull.Drain() <= 0 {
		t.Error("drain must be positive")
	}
	var horizon sim.Duration = ScaleTiny.Window() + ScaleTiny.Drain()
	if horizon <= ScaleTiny.Window() {
		t.Error("horizon must exceed window")
	}
}
