package exp

import (
	"fmt"
	"io"

	"l2bm/internal/faults"
	"l2bm/internal/sim"
)

// DefaultFaultScenario is the beyond-the-paper robustness ablation: every
// fabric link flaps as a Poisson process at ~1% downtime duty cycle (500
// flaps/s, 20 µs mean outage) during the traffic window, every link
// corrupts data frames at BER 1e-6 (≈0.8% of MTU frames), and the detection
// machinery runs with defaults. Flapping stops when the window closes so
// the drain phase measures recovery, not fresh damage.
func DefaultFaultScenario(scale Scale) *FaultSpec {
	return &FaultSpec{
		Plan: faults.Plan{
			FlapRate:     500,
			FlapDowntime: 20 * sim.Microsecond,
			FlapWindow:   scale.Window(),
			BER:          1e-6,
		},
	}
}

// FaultDrain is the post-window recovery horizon for fault runs, as a
// multiple of the traffic window. Fault recovery has a long tail — RTO
// backoff plus DCQCN's slow rate ramp after a rewind — so fault runs drain
// far longer than the clean-fabric default (8x) before declaring a flow
// lost. 48x suffices empirically at tiny scale; 64x adds margin.
const FaultDrain = 64

// RunFaultTolerance compares the four policies under the default link-flap
// + corruption scenario on hybrid traffic (RDMA 0.4, TCP 0.4): do flows
// still complete, what does recovery cost, and does the detection machinery
// stay quiet on a deadlock-free fabric? Two tables: completion/recovery and
// detection/integrity.
func (h *Harness) RunFaultTolerance(scale Scale, w io.Writer) (map[string]*Result, error) {
	specs := make([]HybridSpec, len(PolicyNames))
	for i, pol := range PolicyNames {
		specs[i] = HybridSpec{
			Name: "faults", Policy: pol, Scale: scale,
			RDMALoad: 0.4, TCPLoad: 0.4,
			DrainOverride: FaultDrain * scale.Window(),
			Faults:        DefaultFaultScenario(scale),
		}
	}
	results, err := h.runAll(specs, nil)
	if err != nil {
		return nil, err
	}

	out := make(map[string]*Result)

	rec := NewTable("Fault tolerance: completion and recovery under 1% link flaps + 1e-6 BER",
		"policy", "started", "completed", "completion", "rdma_p99", "tcp_p99",
		"recovery_KB", "rdma_nacks", "rdma_rtos", "flaps", "corrupt")
	det := NewTable("Fault tolerance: detection and integrity",
		"policy", "pause", "reissue", "lost_pfc", "carrier_drops",
		"deadlock_scans", "deadlock_cycles", "stalls", "gaps", "violations", "audit_errors")

	for i, pol := range PolicyNames {
		res := results[i]
		out[pol] = res

		completion := 0.0
		if res.FlowsStarted > 0 {
			completion = float64(res.FlowsCompleted) / float64(res.FlowsStarted)
		}
		rec.AddRow(pol,
			fmt.Sprint(res.FlowsStarted), fmt.Sprint(res.FlowsCompleted), f3(completion),
			f2(res.RDMAp99()), f2(res.TCPp99()),
			f2(float64(res.RecoveryBytes)/1024),
			fmt.Sprint(res.RDMANACKs), fmt.Sprint(res.RDMATimeouts),
			fmt.Sprint(res.LinkDownEvents), fmt.Sprint(res.CorruptedFrames))
		det.AddRow(pol,
			fmt.Sprint(res.PauseFrames), fmt.Sprint(res.PFCReissues),
			fmt.Sprint(res.LostPFC), fmt.Sprint(res.CarrierDrops),
			fmt.Sprint(res.DeadlockScans), fmt.Sprint(res.DeadlockCycles),
			fmt.Sprint(res.WatchdogStalls), fmt.Sprint(res.LosslessGaps),
			fmt.Sprint(res.LosslessViolations), fmt.Sprint(len(res.AuditErrors)))
	}

	for _, tab := range []*Table{rec, det} {
		if err := tab.Fprint(w); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RunFaultTolerance runs the robustness ablation on a default harness; see
// Harness.RunFaultTolerance.
func RunFaultTolerance(scale Scale, w io.Writer) (map[string]*Result, error) {
	return defaultHarness().RunFaultTolerance(scale, w)
}

// newIntegrityTable starts the violation-visibility table every runner
// appends to its output: lossless gaps and violations must be zero on a
// healthy fabric, so a regression shows up in experiment output, not only
// in tests.
func newIntegrityTable(title string) *Table {
	return NewTable(title, "run", "lossless_gaps", "lossless_violations", "audit_errors")
}

// addIntegrityRow appends one run's integrity counters.
func addIntegrityRow(tab *Table, label string, r *Result) {
	tab.AddRow(label, fmt.Sprint(r.LosslessGaps),
		fmt.Sprint(r.LosslessViolations), fmt.Sprint(len(r.AuditErrors)))
}
