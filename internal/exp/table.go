package exp

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is a simple aligned-text artifact: one per figure/table the harness
// regenerates.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable starts a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "\n== %s ==\n", t.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Headers, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	return tw.Flush()
}

// CSV renders the table as comma-separated values (quotes are not needed:
// cells are numbers and identifiers).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// f2 formats a float with two decimals; NaN renders as "-".
func f2(v float64) string {
	if v != v {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}

// f3 formats a float with three decimals; NaN renders as "-".
func f3(v float64) string {
	if v != v {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}
