package exp

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"l2bm/internal/core"
)

// TestCacheKeyCanonicalization: the cache key must depend only on what a
// spec means, never on how it was written down — and on every field that
// changes results.
func TestCacheKeyCanonicalization(t *testing.T) {
	// Two wire encodings of the same spec: different field order, zero-valued
	// optionals spelled out vs omitted.
	verbose := []byte(`{"specs":[{"TCPLoad":0.4,"Policy":"DT","Scale":"tiny","Name":"p0","RDMALoad":0.4,"SeedSalt":"","Shards":0,"Fidelity":"","InterRackOnly":false}]}`)
	terse := []byte(`{"specs":[{"Name":"p0","Policy":"DT","Scale":"tiny","RDMALoad":0.4,"TCPLoad":0.4}]}`)
	keyOf := func(data []byte) string {
		req, err := ParseSweepRequest(data)
		if err != nil {
			t.Fatal(err)
		}
		key, err := CacheKey(req.Specs[0])
		if err != nil {
			t.Fatal(err)
		}
		return key
	}
	if a, b := keyOf(verbose), keyOf(terse); a != b {
		t.Errorf("equivalent wire specs got different cache keys: %s vs %s", a, b)
	}

	base := HybridSpec{Name: "p0", Policy: "DT", Scale: ScaleTiny, RDMALoad: 0.4, TCPLoad: 0.4}
	baseKey, err := CacheKey(base)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*HybridSpec){
		"SeedSalt": func(s *HybridSpec) { s.SeedSalt = "rerun" },
		"Policy":   func(s *HybridSpec) { s.Policy = "L2BM" },
		"Shards":   func(s *HybridSpec) { s.Shards = 2 },
		"Fidelity": func(s *HybridSpec) { s.Fidelity = FidelityHybrid },
		"Scale":    func(s *HybridSpec) { s.Scale = ScaleSmall },
		"TCPLoad":  func(s *HybridSpec) { s.TCPLoad = 0.6 },
	} {
		spec := base
		mutate(&spec)
		key, err := CacheKey(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if key == baseKey {
			t.Errorf("changing %s did not change the cache key", name)
		}
	}

	// A canonicalization-version bump must invalidate every key.
	bumped, err := cacheKeyAt(CheckpointVersion+1, base)
	if err != nil {
		t.Fatal(err)
	}
	if bumped == baseKey {
		t.Error("version bump did not change the cache key")
	}

	// Func-carrying specs have no canonical serialization and must refuse a
	// key rather than collide.
	carrying := base
	carrying.PolicyFactory = func() core.Policy { return nil }
	if _, err := CacheKey(carrying); err == nil {
		t.Error("spec with PolicyFactory got a cache key; want error")
	}
}

// TestResultCacheRoundTrip: Put stores the canonical bytes, Get returns
// exactly those bytes (the byte-identity the daemon's cache-hit path relies
// on) plus a decoded Result with the spec reattached.
func TestResultCacheRoundTrip(t *testing.T) {
	cache, err := NewResultCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := HybridSpec{Name: "rt", Policy: "DT", Scale: ScaleTiny, RDMALoad: 0.4, TCPLoad: 0.4}
	res := &Result{Policy: "DT", RDMASlowdowns: []float64{1, 1.25}, TCPSlowdowns: []float64{1.5}}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}

	if _, _, ok := cache.Get(spec); ok {
		t.Fatal("Get before Put reported a hit")
	}
	if err := cache.Put(spec, raw); err != nil {
		t.Fatal(err)
	}
	gotRaw, gotRes, ok := cache.Get(spec)
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if !bytes.Equal(gotRaw, raw) {
		t.Errorf("cached bytes differ:\nput %s\ngot %s", raw, gotRaw)
	}
	if gotRes.Spec.Name != spec.Name || gotRes.Policy != "DT" || len(gotRes.RDMASlowdowns) != 2 {
		t.Errorf("decoded result wrong: %+v", gotRes)
	}
	if n, err := cache.Len(); err != nil || n != 1 {
		t.Errorf("Len = %d, %v; want 1, nil", n, err)
	}

	// A different spec is a miss, not a collision.
	other := spec
	other.SeedSalt = "other"
	if _, _, ok := cache.Get(other); ok {
		t.Error("different spec hit the same entry")
	}

	// An entry whose header names a stale derivation must miss, not
	// misread. Rewrite the stored header with a bumped version.
	key, err := CacheKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(cache.Dir, "point-"+key+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(data,
		[]byte(`"version":`+jsonInt(CheckpointVersion)),
		[]byte(`"version":`+jsonInt(CheckpointVersion+1)), 1)
	if bytes.Equal(tampered, data) {
		t.Fatal("header tamper did not apply")
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := cache.Get(spec); ok {
		t.Error("stale-version entry still served")
	}

	// Uncacheable specs: Put is a silent no-op, Get a miss.
	carrying := spec
	carrying.PolicyFactory = func() core.Policy { return nil }
	if err := cache.Put(carrying, raw); err != nil {
		t.Errorf("Put of uncacheable spec errored: %v", err)
	}
	if _, _, ok := cache.Get(carrying); ok {
		t.Error("uncacheable spec reported a hit")
	}

	// A nil cache ignores everything.
	var nilCache *ResultCache
	if err := nilCache.Put(spec, raw); err != nil {
		t.Errorf("nil cache Put: %v", err)
	}
	if _, _, ok := nilCache.Get(spec); ok {
		t.Error("nil cache reported a hit")
	}
}

func jsonInt(v int) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestCacheEntriesSurviveReopen: the cache is plain files; reopening the
// directory sees prior entries (the daemon-restart story).
func TestCacheEntriesSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	spec := HybridSpec{Name: "reopen", Policy: "L2BM", Scale: ScaleTiny, TCPLoad: 0.3}
	first, err := NewResultCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	raw := []byte(`{"Policy":"L2BM"}`)
	if err := first.Put(spec, raw); err != nil {
		t.Fatal(err)
	}
	second, err := NewResultCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	gotRaw, _, ok := second.Get(spec)
	if !ok || !bytes.Equal(gotRaw, raw) {
		t.Errorf("reopened cache: ok=%v raw=%s", ok, gotRaw)
	}
	// No stray temp files left behind by successful writes.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}
