package exp

import (
	"fmt"
	"io"
	"math"

	"l2bm/internal/metrics"
	"l2bm/internal/pkt"
)

// TCPLoadSweep is the x-axis of Figs. 3(b) and 7: TCP load 0.1–0.8 with
// RDMA load fixed at 0.4.
var TCPLoadSweep = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}

// Table2Loads is the x-axis of Table II.
var Table2Loads = []float64{0.4, 0.5, 0.6, 0.7, 0.8}

// IncastFanouts is the x-axis of Fig. 11.
var IncastFanouts = []int{5, 10, 15}

// loadEpsilon is the tolerance for matching sweep loads: grid loads are
// round decimals that may arrive via arithmetic (0.1*4 != 0.4 exactly).
const loadEpsilon = 1e-9

// bufferBytes returns the shared buffer size of the scale's switches, for
// occupancy normalization.
func bufferBytes(s Scale) int64 { return s.Topo().Switch.TotalShared }

// Fig3aResult carries the motivation experiment's per-protocol occupancy.
type Fig3aResult struct {
	TCPOnly  *Result
	RDMAOnly *Result
}

// RunFig3a reproduces Fig. 3(a): the same web-search workload (load 0.4,
// inter-rack) offered once as all-TCP and once as all-RDMA, comparing the
// switch buffer each occupies under default DT.
func (h *Harness) RunFig3a(scale Scale, w io.Writer) (*Fig3aResult, error) {
	results, err := h.runAll([]HybridSpec{
		{Name: "fig3a-tcp", Policy: "DT", Scale: scale, TCPLoad: 0.4, InterRackOnly: true},
		{Name: "fig3a-rdma", Policy: "DT", Scale: scale, RDMALoad: 0.4, InterRackOnly: true},
	}, nil)
	if err != nil {
		return nil, err
	}
	tcp, rdma := results[0], results[1]

	tab := NewTable("Fig 3(a): buffer occupancy, TCP vs RDMA under the same workload",
		"protocol", "occ_p50_KB", "occ_p90_KB", "occ_p99_KB", "peak_frac_of_B")
	for _, row := range []struct {
		name string
		r    *Result
	}{{"TCP", tcp}, {"RDMA", rdma}} {
		var all []float64
		for _, trace := range row.r.TorOccupancy {
			for _, s := range trace {
				all = append(all, float64(s.Value))
			}
		}
		tab.AddRow(row.name,
			f2(metrics.Percentile(all, 50)/1024),
			f2(metrics.Percentile(all, 90)/1024),
			f2(metrics.Percentile(all, 99)/1024),
			f3(metrics.Percentile(all, 100)/float64(bufferBytes(scale))))
	}
	if err := tab.Fprint(w); err != nil {
		return nil, err
	}
	integ := newIntegrityTable("Fig 3(a) integrity: lossless gaps / violations / MMU audits")
	addIntegrityRow(integ, "TCP", tcp)
	addIntegrityRow(integ, "RDMA", rdma)
	if err := integ.Fprint(w); err != nil {
		return nil, err
	}
	return &Fig3aResult{TCPOnly: tcp, RDMAOnly: rdma}, nil
}

// sweepIntegrity renders the integrity table of a (policy × load) sweep.
func sweepIntegrity(title string, sweep *SweepResult, w io.Writer) error {
	integ := newIntegrityTable(title)
	for _, pol := range sweep.Policies {
		for i, res := range sweep.Cells[pol] {
			addIntegrityRow(integ, fmt.Sprintf("%s@%.1f", pol, sweep.Loads[i]), res)
		}
	}
	return integ.Fprint(w)
}

// SweepResult is a (policy, load) grid of results.
type SweepResult struct {
	Policies []string
	Loads    []float64
	// Cells[policy][load index]
	Cells map[string][]*Result
}

// Lookup returns the cell for (policy, load), matching the load with an
// epsilon compare, or nil when the sweep does not contain it (absent
// policy, missing load, or a ragged/partial cell row).
func (s *SweepResult) Lookup(policy string, load float64) *Result {
	if s == nil {
		return nil
	}
	cells, ok := s.Cells[policy]
	if !ok {
		return nil
	}
	for i, l := range s.Loads {
		if math.Abs(l-load) < loadEpsilon {
			if i < len(cells) {
				return cells[i]
			}
			return nil
		}
	}
	return nil
}

// runLoadSweep executes the Fig. 7 grid for the given policies, fanning
// the policy×load points across the harness's worker pool. Progress lines
// are emitted by the pool's collator in spec order, so the stream is
// byte-identical for any worker count.
func (h *Harness) runLoadSweep(name string, scale Scale, policies []string, loads []float64, progress io.Writer) (*SweepResult, error) {
	specs := make([]HybridSpec, 0, len(policies)*len(loads))
	for _, pol := range policies {
		for _, load := range loads {
			specs = append(specs, HybridSpec{
				Name: name, Policy: pol, Scale: scale,
				RDMALoad: 0.4, TCPLoad: load,
			})
		}
	}
	var emit EmitFunc
	if progress != nil {
		emit = func(i int, res *Result) {
			pol, load := policies[i/len(loads)], loads[i%len(loads)]
			fmt.Fprintf(progress, "  %s %s load=%.1f: rdmaP99=%s tcpP99=%s pause=%d\n",
				name, pol, load, f2(res.RDMAp99()), f2(res.TCPp99()), res.PauseFrames)
		}
	}
	results, err := h.runAll(specs, emit)
	if err != nil {
		return nil, err
	}
	out := &SweepResult{Policies: policies, Loads: loads, Cells: make(map[string][]*Result)}
	for i, res := range results {
		out.Cells[policies[i/len(loads)]] = append(out.Cells[policies[i/len(loads)]], res)
	}
	return out, nil
}

// RunFig3b reproduces Fig. 3(b): RDMA tail latency vs TCP load under the
// pre-existing policies (DT, ABM) — the motivation for L2BM.
func (h *Harness) RunFig3b(scale Scale, w io.Writer) (*SweepResult, error) {
	sweep, err := h.runLoadSweep("fig3b", scale, []string{"DT", "ABM"}, TCPLoadSweep, nil)
	if err != nil {
		return nil, err
	}
	tab := NewTable("Fig 3(b): RDMA 99% FCT slowdown vs TCP load (motivation)",
		append([]string{"policy"}, loadHeaders()...)...)
	for _, pol := range sweep.Policies {
		row := []string{pol}
		for _, res := range sweep.Cells[pol] {
			row = append(row, f2(res.RDMAp99()))
		}
		tab.AddRow(row...)
	}
	if err := tab.Fprint(w); err != nil {
		return nil, err
	}
	if err := sweepIntegrity("Fig 3(b) integrity: lossless gaps / violations / MMU audits", sweep, w); err != nil {
		return nil, err
	}
	return sweep, nil
}

func loadHeaders() []string {
	hs := make([]string, len(TCPLoadSweep))
	for i, l := range TCPLoadSweep {
		hs[i] = fmt.Sprintf("load=%.1f", l)
	}
	return hs
}

// RunFig7 reproduces Fig. 7(a)–(d): RDMA p99 slowdown, TCP p99 slowdown,
// ToR buffer occupancy and PFC pause frames as TCP load grows, for all four
// policies.
func (h *Harness) RunFig7(scale Scale, w io.Writer) (*SweepResult, error) {
	sweep, err := h.runLoadSweep("fig7", scale, PolicyNames, TCPLoadSweep, w)
	if err != nil {
		return nil, err
	}
	panels := []struct {
		title string
		cell  func(*Result) string
	}{
		{"Fig 7(a): RDMA 99% FCT slowdown", func(r *Result) string { return f2(r.RDMAp99()) }},
		{"Fig 7(b): TCP 99% FCT slowdown", func(r *Result) string { return f2(r.TCPp99()) }},
		{"Fig 7(c): ToR buffer occupancy (p99 fraction of B)",
			func(r *Result) string { return f3(r.OccupancyP99Fraction(bufferBytes(scale))) }},
		{"Fig 7(d): PFC pause frames", func(r *Result) string { return fmt.Sprint(r.PauseFrames) }},
	}
	for _, panel := range panels {
		tab := NewTable(panel.title, append([]string{"policy"}, loadHeaders()...)...)
		for _, pol := range sweep.Policies {
			row := []string{pol}
			for _, res := range sweep.Cells[pol] {
				row = append(row, panel.cell(res))
			}
			tab.AddRow(row...)
		}
		if err := tab.Fprint(w); err != nil {
			return nil, err
		}
	}
	if err := sweepIntegrity("Fig 7 integrity: lossless gaps / violations / MMU audits", sweep, w); err != nil {
		return nil, err
	}
	return sweep, nil
}

// table2Policies is Table II's row order.
var table2Policies = []string{"ABM", "DT", "DT2", "L2BM"}

// RunTable2 reproduces Table II: PFC pause-frame counts for loads 0.4–0.8.
// When a Fig. 7 sweep is already available, pass it to avoid re-running:
// cells present in the prior (matched by policy with an epsilon load
// compare, so partial priors such as a DT/ABM-only Fig. 3(b) sweep are
// safe) are reused, and only the missing cells are simulated — fanned out
// across the worker pool.
func (h *Harness) RunTable2(scale Scale, prior *SweepResult, w io.Writer) (*Table, error) {
	// Resolve the grid: reuse prior cells, collect the missing ones.
	grid := make([][]*Result, len(table2Policies))
	type cellKey struct{ pi, li int }
	var missing []HybridSpec
	var missingAt []cellKey
	for pi, pol := range table2Policies {
		grid[pi] = make([]*Result, len(Table2Loads))
		for li, load := range Table2Loads {
			if res := prior.Lookup(pol, load); res != nil {
				grid[pi][li] = res
				continue
			}
			missing = append(missing, HybridSpec{
				Name: "fig7", Policy: pol, Scale: scale,
				RDMALoad: 0.4, TCPLoad: load,
			})
			missingAt = append(missingAt, cellKey{pi, li})
		}
	}
	if len(missing) > 0 {
		results, err := h.runAll(missing, nil)
		if err != nil {
			return nil, err
		}
		for k, res := range results {
			grid[missingAt[k].pi][missingAt[k].li] = res
		}
	}

	tab := NewTable("Table II: number of PFC pause frames",
		"policy", "load=0.4", "load=0.5", "load=0.6", "load=0.7", "load=0.8")
	integ := newIntegrityTable("Table II integrity: lossless gaps / violations / MMU audits")
	for pi, pol := range table2Policies {
		row := []string{pol}
		for li, load := range Table2Loads {
			res := grid[pi][li]
			row = append(row, fmt.Sprint(res.PauseFrames))
			addIntegrityRow(integ, fmt.Sprintf("%s@%.1f", pol, load), res)
		}
		tab.AddRow(row...)
	}
	if err := tab.Fprint(w); err != nil {
		return nil, err
	}
	if err := integ.Fprint(w); err != nil {
		return nil, err
	}
	return tab, nil
}

// Fig8Result holds per-ToR occupancy CDFs per policy.
type Fig8Result struct {
	// CDFs[policy][tor] is the occupancy CDF of that rack switch.
	CDFs map[string][][]metrics.CDFPoint
}

// RunFig8 reproduces Fig. 8: the occupancy CDF of each ToR switch at TCP
// load 0.8 (samples every 1 ms in the paper; scaled sampling here).
func (h *Harness) RunFig8(scale Scale, w io.Writer) (*Fig8Result, error) {
	specs := make([]HybridSpec, len(PolicyNames))
	for i, pol := range PolicyNames {
		specs[i] = HybridSpec{
			Name: "fig8", Policy: pol, Scale: scale, RDMALoad: 0.4, TCPLoad: 0.8,
		}
	}
	results, err := h.runAll(specs, nil)
	if err != nil {
		return nil, err
	}

	out := &Fig8Result{CDFs: make(map[string][][]metrics.CDFPoint)}
	tab := NewTable("Fig 8: ToR occupancy at TCP load 0.8 (KB at CDF points)",
		"policy", "tor", "p25", "p50", "p75", "p90", "p99")
	integ := newIntegrityTable("Fig 8 integrity: lossless gaps / violations / MMU audits")
	for i, pol := range PolicyNames {
		res := results[i]
		addIntegrityRow(integ, pol, res)
		for tor, trace := range res.TorOccupancy {
			xs := make([]float64, len(trace))
			for i, s := range trace {
				xs[i] = float64(s.Value)
			}
			out.CDFs[pol] = append(out.CDFs[pol], metrics.EmpiricalCDF(xs, 100))
			tab.AddRow(pol, fmt.Sprint(tor),
				f2(metrics.Percentile(xs, 25)/1024), f2(metrics.Percentile(xs, 50)/1024),
				f2(metrics.Percentile(xs, 75)/1024), f2(metrics.Percentile(xs, 90)/1024),
				f2(metrics.Percentile(xs, 99)/1024))
		}
	}
	if err := tab.Fprint(w); err != nil {
		return nil, err
	}
	if err := integ.Fprint(w); err != nil {
		return nil, err
	}
	return out, nil
}

// Fig9Result holds the per-class FCT slowdown CDFs at high load.
type Fig9Result struct {
	// RDMA and TCP map policy to slowdown CDFs.
	RDMA map[string][]metrics.CDFPoint
	TCP  map[string][]metrics.CDFPoint
}

// RunFig9 reproduces Fig. 9: CDFs of RDMA and TCP FCT slowdowns at TCP
// load 0.8.
func (h *Harness) RunFig9(scale Scale, w io.Writer) (*Fig9Result, error) {
	specs := make([]HybridSpec, len(PolicyNames))
	for i, pol := range PolicyNames {
		specs[i] = HybridSpec{
			Name: "fig9", Policy: pol, Scale: scale, RDMALoad: 0.4, TCPLoad: 0.8,
		}
	}
	results, err := h.runAll(specs, nil)
	if err != nil {
		return nil, err
	}

	out := &Fig9Result{
		RDMA: make(map[string][]metrics.CDFPoint),
		TCP:  make(map[string][]metrics.CDFPoint),
	}
	tab := NewTable("Fig 9: FCT slowdown at TCP load 0.8",
		"policy", "class", "p50", "p90", "p99")
	integ := newIntegrityTable("Fig 9 integrity: lossless gaps / violations / MMU audits")
	for i, pol := range PolicyNames {
		res := results[i]
		addIntegrityRow(integ, pol, res)
		out.RDMA[pol] = metrics.EmpiricalCDF(res.RDMASlowdowns, 100)
		out.TCP[pol] = metrics.EmpiricalCDF(res.TCPSlowdowns, 100)
		tab.AddRow(pol, pkt.ClassLossless.String(),
			f2(metrics.PercentileSorted(res.RDMASlowdowns, 50)),
			f2(metrics.PercentileSorted(res.RDMASlowdowns, 90)),
			f2(res.RDMAp99()))
		tab.AddRow(pol, pkt.ClassLossy.String(),
			f2(metrics.PercentileSorted(res.TCPSlowdowns, 50)),
			f2(metrics.PercentileSorted(res.TCPSlowdowns, 90)),
			f2(res.TCPp99()))
	}
	if err := tab.Fprint(w); err != nil {
		return nil, err
	}
	if err := integ.Fprint(w); err != nil {
		return nil, err
	}
	return out, nil
}

// incastSpecFor scales the paper's incast parameters (1 MB over N
// responders, 752 queries/s) to the run's host count so the burst remains
// ~25% of the switch buffer.
func incastSpecFor(fanout int) *IncastSpec {
	return &IncastSpec{Fanout: fanout, RequestBytes: 1 << 20, QueryRate: 752}
}

// RunFig10 reproduces Fig. 10: incast deep dive at N = 5 over TCP
// web-search background at load 0.8 — FCT slowdown CDF of incast flows,
// query-delay error-bar statistics, and ToR occupancy CDF.
func (h *Harness) RunFig10(scale Scale, w io.Writer) (map[string]*Result, error) {
	specs := make([]HybridSpec, len(PolicyNames))
	for i, pol := range PolicyNames {
		specs[i] = HybridSpec{
			Name: "fig10", Policy: pol, Scale: scale,
			TCPLoad: 0.8, Incast: incastSpecFor(5),
		}
	}
	results, err := h.runAll(specs, nil)
	if err != nil {
		return nil, err
	}

	out := make(map[string]*Result)
	cdf := NewTable("Fig 10(a): incast flow FCT slowdown (N=5)",
		"policy", "p50", "p90", "p99", "frac_under_10x")
	bars := NewTable("Fig 10(b): query response delay (ms)",
		"policy", "mean", "std", "min", "p25", "median", "p75", "max")
	occ := NewTable("Fig 10(c): ToR occupancy under incast (KB)",
		"policy", "p50", "p90", "p99")
	integ := newIntegrityTable("Fig 10 integrity: lossless gaps / violations / MMU audits")
	for i, pol := range PolicyNames {
		res := results[i]
		out[pol] = res
		addIntegrityRow(integ, pol, res)

		under10 := 0
		for _, s := range res.IncastSlowdowns {
			if s < 10 {
				under10++
			}
		}
		frac := 0.0
		if n := len(res.IncastSlowdowns); n > 0 {
			frac = float64(under10) / float64(n)
		}
		cdf.AddRow(pol,
			f2(metrics.PercentileSorted(res.IncastSlowdowns, 50)),
			f2(metrics.PercentileSorted(res.IncastSlowdowns, 90)),
			f2(res.Incastp99()), f3(frac))

		s := res.QueryDelaySummary()
		bars.AddRow(pol, f2(s.Mean), f2(s.Std), f2(s.Min), f2(s.P25), f2(s.Median), f2(s.P75), f2(s.Max))

		var all []float64
		for _, trace := range res.TorOccupancy {
			for _, smp := range trace {
				all = append(all, float64(smp.Value))
			}
		}
		occ.AddRow(pol, f2(metrics.Percentile(all, 50)/1024),
			f2(metrics.Percentile(all, 90)/1024), f2(metrics.Percentile(all, 99)/1024))
	}
	for _, tab := range []*Table{cdf, bars, occ, integ} {
		if err := tab.Fprint(w); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RunFig11 reproduces Fig. 11: incast behaviour as the fan-in degree N
// grows — tail slowdown, average query delay and PFC pause frames.
func (h *Harness) RunFig11(scale Scale, w io.Writer) (map[string]map[int]*Result, error) {
	specs := make([]HybridSpec, 0, len(PolicyNames)*len(IncastFanouts))
	for _, pol := range PolicyNames {
		for _, n := range IncastFanouts {
			specs = append(specs, HybridSpec{
				Name: fmt.Sprintf("fig11-n%d", n), Policy: pol, Scale: scale,
				TCPLoad: 0.8, Incast: incastSpecFor(n),
			})
		}
	}
	results, err := h.runAll(specs, nil)
	if err != nil {
		return nil, err
	}

	out := make(map[string]map[int]*Result)
	tail := NewTable("Fig 11(a): 99% FCT slowdown of incast flows",
		"policy", "N=5", "N=10", "N=15")
	avg := NewTable("Fig 11(b): average query response time (ms)",
		"policy", "N=5", "N=10", "N=15")
	pauses := NewTable("Fig 11(c): PFC pause frames",
		"policy", "N=5", "N=10", "N=15")
	integ := newIntegrityTable("Fig 11 integrity: lossless gaps / violations / MMU audits")
	for pi, pol := range PolicyNames {
		out[pol] = make(map[int]*Result)
		tailRow, avgRow, pauseRow := []string{pol}, []string{pol}, []string{pol}
		for ni, n := range IncastFanouts {
			res := results[pi*len(IncastFanouts)+ni]
			out[pol][n] = res
			addIntegrityRow(integ, fmt.Sprintf("%s@N=%d", pol, n), res)
			tailRow = append(tailRow, f2(res.Incastp99()))
			avgRow = append(avgRow, f2(res.QueryDelaySummary().Mean))
			pauseRow = append(pauseRow, fmt.Sprint(res.PauseFrames))
		}
		tail.AddRow(tailRow...)
		avg.AddRow(avgRow...)
		pauses.AddRow(pauseRow...)
	}
	for _, tab := range []*Table{tail, avg, pauses, integ} {
		if err := tab.Fprint(w); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Package-level wrappers preserve the pre-scheduler API: each runs the
// experiment on a fresh default harness (GOMAXPROCS workers).

// RunFig3a runs Fig. 3(a) on a default harness; see Harness.RunFig3a.
func RunFig3a(scale Scale, w io.Writer) (*Fig3aResult, error) {
	return defaultHarness().RunFig3a(scale, w)
}

// RunFig3b runs Fig. 3(b) on a default harness; see Harness.RunFig3b.
func RunFig3b(scale Scale, w io.Writer) (*SweepResult, error) {
	return defaultHarness().RunFig3b(scale, w)
}

// RunFig7 runs Fig. 7 on a default harness; see Harness.RunFig7.
func RunFig7(scale Scale, w io.Writer) (*SweepResult, error) {
	return defaultHarness().RunFig7(scale, w)
}

// RunTable2 runs Table II on a default harness; see Harness.RunTable2.
func RunTable2(scale Scale, prior *SweepResult, w io.Writer) (*Table, error) {
	return defaultHarness().RunTable2(scale, prior, w)
}

// RunFig8 runs Fig. 8 on a default harness; see Harness.RunFig8.
func RunFig8(scale Scale, w io.Writer) (*Fig8Result, error) {
	return defaultHarness().RunFig8(scale, w)
}

// RunFig9 runs Fig. 9 on a default harness; see Harness.RunFig9.
func RunFig9(scale Scale, w io.Writer) (*Fig9Result, error) {
	return defaultHarness().RunFig9(scale, w)
}

// RunFig10 runs Fig. 10 on a default harness; see Harness.RunFig10.
func RunFig10(scale Scale, w io.Writer) (map[string]*Result, error) {
	return defaultHarness().RunFig10(scale, w)
}

// RunFig11 runs Fig. 11 on a default harness; see Harness.RunFig11.
func RunFig11(scale Scale, w io.Writer) (map[string]map[int]*Result, error) {
	return defaultHarness().RunFig11(scale, w)
}
