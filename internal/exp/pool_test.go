package exp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolCollatesInOrder: results come back keyed by grid index and the
// emit callback sees strictly ascending indices, whatever the completion
// order.
func TestPoolCollatesInOrder(t *testing.T) {
	const n = 32
	p := &Pool{Workers: 8}
	var emitted []int
	results, stats, err := p.Run(context.Background(), n,
		func(_ context.Context, i int) (*Result, error) {
			// Reverse the finishing order: high indices finish first.
			time.Sleep(time.Duration(n-i) * 100 * time.Microsecond)
			return &Result{Events: uint64(i)}, nil
		},
		func(i int, r *Result) {
			if r.Events != uint64(i) {
				t.Errorf("emit(%d) got result of point %d", i, r.Events)
			}
			emitted = append(emitted, i) // single collator: no lock needed
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n || stats.Points != n {
		t.Fatalf("collated %d results, stats %d, want %d", len(results), stats.Points, n)
	}
	for i, r := range results {
		if r.Events != uint64(i) {
			t.Errorf("results[%d] holds point %d", i, r.Events)
		}
	}
	for i, e := range emitted {
		if e != i {
			t.Fatalf("emit order %v not ascending", emitted)
		}
	}
	var wantEvents uint64
	for i := 0; i < n; i++ {
		wantEvents += uint64(i)
	}
	if stats.Events != wantEvents {
		t.Errorf("stats.Events = %d, want %d", stats.Events, wantEvents)
	}
}

// TestPoolFirstErrorWinsAndCancels: an injected point error aborts the
// pool promptly (unstarted points are skipped), the lowest-index error is
// reported deterministically, emit stops at the failed prefix, and no
// worker goroutines leak.
func TestPoolFirstErrorWinsAndCancels(t *testing.T) {
	before := runtime.NumGoroutine()
	boom := errors.New("boom")
	const n = 200
	var ran atomic.Int32
	var emitted []int
	p := &Pool{Workers: 4}
	_, _, err := p.Run(context.Background(), n,
		func(ctx context.Context, i int) (*Result, error) {
			ran.Add(1)
			if i == 5 || i == 9 {
				return nil, fmt.Errorf("point body %d: %w", i, boom)
			}
			time.Sleep(200 * time.Microsecond)
			return &Result{}, nil
		},
		func(i int, r *Result) { emitted = append(emitted, i) })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	// Lowest failing index wins even if point 9 finished first.
	if !strings.Contains(err.Error(), "point 5:") {
		t.Errorf("err = %v, want the point-5 failure to win", err)
	}
	if got := ran.Load(); got == n {
		t.Error("cancellation never kicked in: every point ran")
	}
	// Emit must cover exactly the clean prefix [0, 5).
	if len(emitted) != 5 {
		t.Errorf("emitted %v, want exactly points 0-4", emitted)
	}
	// No leaked workers: Run waits for its goroutines before returning.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestPoolExternalCancellation: a cancelled parent context surfaces as an
// error without running the remaining points.
func TestPoolExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	p := &Pool{Workers: 2}
	_, _, err := p.Run(ctx, 50, func(ctx context.Context, i int) (*Result, error) {
		if ran.Add(1) == 3 {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
		return &Result{}, nil
	}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() == 50 {
		t.Error("external cancel did not stop the grid")
	}
}

// TestPoolEmptyAndSequential covers the degenerate shapes.
func TestPoolEmptyAndSequential(t *testing.T) {
	p := &Pool{Workers: 1}
	results, stats, err := p.Run(context.Background(), 0,
		func(_ context.Context, i int) (*Result, error) { return &Result{}, nil }, nil)
	if err != nil || results != nil || stats.Points != 0 {
		t.Errorf("empty grid: results=%v stats=%+v err=%v", results, stats, err)
	}
	// Workers=1 must execute strictly sequentially, in order.
	var order []int
	_, _, err = p.Run(context.Background(), 5, func(_ context.Context, i int) (*Result, error) {
		order = append(order, i) // safe: single worker
		return &Result{}, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential execution order %v", order)
		}
	}
	if got := (&Pool{}).size(100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("default pool size = %d, want GOMAXPROCS", got)
	}
	if got := (&Pool{Workers: 64}).size(3); got != 3 {
		t.Errorf("size clamps to grid: got %d, want 3", got)
	}
}

// TestSweepParallelDeterminism is the tentpole contract: the same sweep at
// workers=1 and workers=8 renders byte-identical progress and tables, and
// every grid cell's headline metrics match exactly.
func TestSweepParallelDeterminism(t *testing.T) {
	run := func(workers int) (string, *SweepResult) {
		h := NewHarness(workers)
		var buf bytes.Buffer
		sweep, err := h.runLoadSweep("par-det", ScaleTiny,
			[]string{"DT", "L2BM"}, []float64{0.2, 0.4}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := sweepIntegrity("par-det integrity", sweep, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String(), sweep
	}
	out1, s1 := run(1)
	out8, s8 := run(8)
	if out1 != out8 {
		t.Errorf("rendered output differs between workers=1 and workers=8:\n--- w1 ---\n%s\n--- w8 ---\n%s", out1, out8)
	}
	for _, pol := range s1.Policies {
		for i := range s1.Loads {
			a, b := s1.Cells[pol][i], s8.Cells[pol][i]
			if a.Events != b.Events || a.PauseFrames != b.PauseFrames ||
				a.FlowsCompleted != b.FlowsCompleted ||
				a.RDMAp99() != b.RDMAp99() || a.TCPp99() != b.TCPp99() {
				t.Errorf("%s@%.1f diverged: events %d vs %d, pause %d vs %d",
					pol, s1.Loads[i], a.Events, b.Events, a.PauseFrames, b.PauseFrames)
			}
		}
	}
}

// TestFig3bTableByteIdenticalAcrossWorkerCounts renders a full figure
// runner (tables + integrity) under both worker regimes.
func TestFig3bTableByteIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("renders the motivation sweep twice")
	}
	render := func(workers int) string {
		var buf bytes.Buffer
		if _, err := NewHarness(workers).RunFig3b(ScaleTiny, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := render(1), render(8); a != b {
		t.Errorf("Fig 3(b) output differs by worker count:\n--- w1 ---\n%s\n--- w8 ---\n%s", a, b)
	}
}

// TestHarnessAccountsEvents: the harness accumulates per-point event
// counts for aggregate events/s reporting.
func TestHarnessAccountsEvents(t *testing.T) {
	h := NewHarness(2)
	results, err := h.runAll([]HybridSpec{
		{Name: "acct", Policy: "DT", Scale: ScaleTiny, TCPLoad: 0.2},
		{Name: "acct", Policy: "L2BM", Scale: ScaleTiny, TCPLoad: 0.2},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := results[0].Events + results[1].Events
	if h.TotalEvents() != want {
		t.Errorf("TotalEvents = %d, want %d", h.TotalEvents(), want)
	}
	if h.TotalPoints() != 2 {
		t.Errorf("TotalPoints = %d, want 2", h.TotalPoints())
	}
	if s := (PoolStats{Events: 100, Wall: 2 * time.Second}); s.EventsPerSecond() != 50 {
		t.Errorf("EventsPerSecond = %v, want 50", s.EventsPerSecond())
	}
}
