// Sweep-level checkpoint/resume: long grids append each completed point to
// a JSONL file keyed by a content hash of the sweep's specs, so a killed
// run resumes exactly where it stopped and re-renders byte-identical
// output. Restored points bypass simulation entirely — determinism makes a
// stored Result indistinguishable from a recomputed one.
//
// Crash safety is append-only: the header and every point line are written
// (and fsynced) as single whole-line appends, and the loader stops at the
// first malformed line, so a crash mid-append costs at most the point being
// written, never the file.
//
// Eligibility: only sweeps whose every spec is plain data. Specs carrying
// funcs — PolicyFactory, TopoOverride, Hooks, a fault LinkFilter, or an
// armed flight recorder — cannot be hashed or restored and refuse to
// checkpoint loudly rather than resume wrongly.
package exp

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// CheckpointVersion is baked into the sweep hash and the result-cache key:
// bump it whenever the Result schema or spec canonicalization changes
// incompatibly, so stale checkpoint files are refused (and cache entries
// miss) instead of being misread. Version 2 added Fidelity to specKey —
// under version 1 a hybrid-fidelity sweep hashed identically to the packet
// sweep of the same grid and could cross-restore.
const CheckpointVersion = 2

// checkpointIneligible names the first non-serializable field set on the
// spec, or "" when the spec is plain data and may be checkpointed.
func checkpointIneligible(spec HybridSpec) string {
	switch {
	case spec.PolicyFactory != nil:
		return "PolicyFactory"
	case spec.TopoOverride != nil:
		return "TopoOverride"
	case spec.Hooks != nil:
		return "Hooks"
	case spec.Trace != nil:
		return "Trace"
	case spec.Faults != nil && spec.Faults.Plan.LinkFilter != nil:
		return "Faults.Plan.LinkFilter"
	}
	return ""
}

// specKey canonicalizes every field that shapes a point's result. Two specs
// with equal keys produce byte-identical Results (determinism contract), so
// the key — not the grid's source code — decides what a checkpoint matches.
func specKey(spec HybridSpec) string {
	// Sched is deliberately absent: both scheduler backends dispatch
	// identically ordered events, so it can never change a result. Fidelity
	// is present: hybrid fast-forward changes numbers within the §14 bound.
	s := fmt.Sprintf("name=%s policy=%s scale=%d rdma=%v tcp=%v inter=%v occ=%d win=%d drain=%d salt=%q shards=%d fidelity=%q",
		spec.Name, spec.Policy, spec.Scale, spec.RDMALoad, spec.TCPLoad,
		spec.InterRackOnly, spec.OccupancySampleEvery, spec.WindowOverride,
		spec.DrainOverride, spec.SeedSalt, spec.Shards, spec.Fidelity)
	if in := spec.Incast; in != nil {
		s += fmt.Sprintf(" incast={%d %d %v}", in.Fanout, in.RequestBytes, in.QueryRate)
	}
	if f := spec.Faults; f != nil {
		p := f.Plan
		s += fmt.Sprintf(" faults={stream=%q flap=%v/%d/%v/%d sched=%v ber=%v pfcloss=%v blackouts=%v det=%d break=%v wd=%d}",
			p.Stream, p.FlapRate, p.FlapDowntime, p.FlapFixed, p.FlapWindow,
			p.Scheduled, p.BER, p.PFCLossRate, p.Blackouts,
			f.DetectorPeriod, f.BreakDeadlocks, f.WatchdogWindow)
	}
	if a := spec.Audit; a != nil {
		s += fmt.Sprintf(" audit={%d %d %d}", a.Every, a.MaxPauseAge, a.Limit)
	}
	return s
}

// sweepHash content-hashes a sweep: version, grid size, and every spec's
// canonical key in index order. An error means some spec is ineligible.
func sweepHash(specs []HybridSpec) (uint64, error) {
	h := fnv.New64a()
	fmt.Fprintf(h, "v%d n=%d\n", CheckpointVersion, len(specs))
	for i, sp := range specs {
		if why := checkpointIneligible(sp); why != "" {
			return 0, fmt.Errorf("exp: checkpoint: point %d carries %s, which does not serialize — run without -resume or drop the field", i, why)
		}
		fmt.Fprintf(h, "%d %s\n", i, specKey(sp))
	}
	return h.Sum64(), nil
}

type checkpointHeader struct {
	Version int    `json:"version"`
	Hash    string `json:"hash"`
	Points  int    `json:"points"`
}

type checkpointLine struct {
	Index  int     `json:"index"`
	Result *Result `json:"result"`
}

// checkpointWriter appends completed points to one sweep's file.
type checkpointWriter struct {
	f    *os.File
	path string
}

// openCheckpoint prepares the checkpoint for a sweep of n specs hashing to
// hash: it loads any previously completed points from dir (tolerating a
// torn tail from a crash) and opens the file for appending, writing the
// header if the file is new. The restored slice is nil or length n, sparse.
func openCheckpoint(dir string, hash uint64, n int) ([]*Result, *checkpointWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("exp: checkpoint: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("sweep-%016x.jsonl", hash))
	restored, err := loadCheckpoint(path, hash, n)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("exp: checkpoint: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("exp: checkpoint: %w", err)
	}
	w := &checkpointWriter{f: f, path: path}
	if st.Size() == 0 {
		hdr, _ := json.Marshal(checkpointHeader{
			Version: CheckpointVersion, Hash: fmt.Sprintf("%016x", hash), Points: n,
		})
		if err := w.appendLine(hdr); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return restored, w, nil
}

// loadCheckpoint reads previously completed points. A missing file is an
// empty resume; a file written by a different sweep (hash, version or grid
// size mismatch) is refused; a malformed tail line — the torn write of the
// crash that ended the previous run — truncates the restore there.
func loadCheckpoint(path string, hash uint64, n int) ([]*Result, error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("exp: checkpoint: %w", err)
	}
	defer f.Close()

	r := bufio.NewReaderSize(f, 1<<20)
	first, err := readLine(r)
	if err != nil || len(first) == 0 {
		return nil, nil // empty or headerless file: nothing to restore
	}
	var hdr checkpointHeader
	if json.Unmarshal(first, &hdr) != nil {
		return nil, nil
	}
	if hdr.Version != CheckpointVersion || hdr.Hash != fmt.Sprintf("%016x", hash) || hdr.Points != n {
		return nil, fmt.Errorf("exp: checkpoint %s was written by a different sweep (version %d hash %s points %d; want %d/%016x/%d) — delete it or point -resume elsewhere",
			path, hdr.Version, hdr.Hash, hdr.Points, CheckpointVersion, hash, n)
	}

	restored := make([]*Result, n)
	for {
		line, err := readLine(r)
		if len(line) > 0 {
			var cl checkpointLine
			if json.Unmarshal(line, &cl) != nil || cl.Index < 0 || cl.Index >= n || cl.Result == nil {
				return restored, nil // torn tail: keep everything before it
			}
			restored[cl.Index] = cl.Result
		}
		if err != nil {
			return restored, nil
		}
	}
}

// readLine reads one newline-terminated line without a length cap (point
// results with occupancy traces exceed bufio.Scanner's default limit).
func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadBytes('\n')
	if err == io.EOF && len(line) > 0 {
		// No trailing newline: a torn final write. Hand it up; the JSON
		// parse will reject it and truncate the restore there.
		return line, err
	}
	return line, err
}

// append persists one completed point: a single whole-line write followed
// by fsync, so a crash never leaves more than one torn line.
func (w *checkpointWriter) append(i int, res *Result) error {
	buf, err := json.Marshal(checkpointLine{Index: i, Result: res})
	if err != nil {
		return fmt.Errorf("exp: checkpoint: point %d: %w", i, err)
	}
	return w.appendLine(buf)
}

func (w *checkpointWriter) appendLine(buf []byte) error {
	if _, err := w.f.Write(append(buf, '\n')); err != nil {
		return fmt.Errorf("exp: checkpoint: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("exp: checkpoint: %w", err)
	}
	return nil
}

func (w *checkpointWriter) Close() error { return w.f.Close() }

// CheckpointProbe reports how many of the sweep's points a resume would
// restore, without running anything (used for progress reporting).
func CheckpointProbe(dir string, specs []HybridSpec) (restored, total int, err error) {
	hash, err := sweepHash(specs)
	if err != nil {
		return 0, len(specs), err
	}
	results, err := loadCheckpoint(
		filepath.Join(dir, fmt.Sprintf("sweep-%016x.jsonl", hash)), hash, len(specs))
	if err != nil {
		return 0, len(specs), err
	}
	for _, r := range results {
		if r != nil {
			restored++
		}
	}
	return restored, len(specs), nil
}
