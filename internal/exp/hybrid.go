package exp

import (
	"context"
	"fmt"
	"sort"

	"l2bm/internal/audit"
	"l2bm/internal/core"
	"l2bm/internal/fluid"
	"l2bm/internal/metrics"
	"l2bm/internal/pkt"
	"l2bm/internal/psim"
	"l2bm/internal/sim"
	"l2bm/internal/topo"
	"l2bm/internal/trace"
	"l2bm/internal/transport"
	"l2bm/internal/workload"
)

// This file is the hybrid-fidelity driver (HybridSpec.Fidelity ==
// FidelityHybrid): the run alternates between the fluid fast-forward layer
// (internal/fluid) and full packet segments, stitched so that WHAT is
// offered never changes — only how each interval's progress is computed.
//
//   - The complete flow launch schedule is extracted up front from the
//     run's real workload generators under the run's real seed
//     (fluid.Extract), so both engines see byte-identical arrivals and the
//     FCT recorder observes exactly the flows a pure packet run would.
//   - Fluid segments advance flows analytically until a fidelity trigger
//     (incast burst within PreMargin, fan-in degree, occupancy guard band)
//     fires; the triggering arrival is left for the packet segment.
//   - Packet segments run a freshly built cluster on a fresh engine,
//     injecting residual flows at their remaining sizes and scheduling the
//     not-yet-consumed arrivals as they come due, until the quiescence
//     predicate holds (no new pause frames, low resident bytes, no standing
//     trigger, no imminent burst) for QuiesceDwell consecutive checks.
//   - Hand-backs are residual-byte exact on the receive side: a flow leaves
//     a packet segment with its receiver's contiguous delivered count
//     (host.FlowProgress); frames still in flight at the cut (bounded by
//     QuiesceResident) are re-served by the fluid layer, a deliberate
//     epsilon-budgeted approximation.
//
// Accounting: switch/pause/drop statistics accumulate across packet
// segments; fluid segments contribute no switch events by construction.
// Occupancy sampling stays on the global k·OccupancySampleEvery grid across
// segment boundaries — packet segments read real resident bytes, fluid
// segments synthesize an estimate — so Result.TorOccupancy remains
// plottable. The invariant auditor runs per packet segment (as conductor
// barrier tasks); its exact drain-time checks run only when the run ends
// inside a packet segment, since a quiescence cut legitimately leaves
// frames in flight.

// hybridResidual is one mid-transfer flow handed from a packet segment back
// to the fluid layer.
type hybridResidual struct {
	flow      transport.Flow // pristine descriptor: full Size, true Start
	remaining int64          // payload bytes still to deliver
	incast    bool
}

// hybridRun carries the fidelity controller's cross-segment state.
type hybridRun struct {
	ctx     context.Context
	spec    HybridSpec
	topoCfg topo.Config
	factory topo.PolicyFactory

	window  sim.Time
	horizon sim.Time
	every   sim.Duration
	params  fluid.Params

	model *fluid.Model
	sched *fluid.Schedule
	rec   *metrics.FCTRecorder

	cursor     int              // next unconsumed schedule index
	residual   []hybridResidual // flows mid-transfer at the last cut
	nextSample sim.Time         // next global occupancy-sample instant
	torOcc     [][]metrics.Reading
	occBuf     []int64

	tracer *trace.Recorder // global, re-based; nil when tracing is off
	res    *Result
	segIdx int
}

// hybridWorkload mirrors the classic path's generator configuration exactly
// (same host split, same config fields, same install order: rdma, tcp,
// incast) so fluid.Extract reproduces its launch schedule.
func hybridWorkload(spec HybridSpec, topoCfg topo.Config, window sim.Duration) fluid.Workload {
	var rdmaHosts, tcpHosts, allHosts []int
	perRack := topoCfg.ServersPerToR
	for h := 0; h < topoCfg.ToRCount*topoCfg.ServersPerToR; h++ {
		allHosts = append(allHosts, h)
		if h%perRack < perRack/2 {
			rdmaHosts = append(rdmaHosts, h)
		} else {
			tcpHosts = append(tcpHosts, h)
		}
	}
	var forbid func(src, dst int) bool
	if spec.InterRackOnly {
		forbid = func(src, dst int) bool { return topoCfg.ToROf(src) == topoCfg.ToROf(dst) }
	}

	var wl fluid.Workload
	if spec.RDMALoad > 0 {
		wl.Poisson = append(wl.Poisson, workload.PoissonConfig{
			Sources:    rdmaHosts,
			Dests:      allHosts,
			Load:       spec.RDMALoad,
			HostRate:   topoCfg.ServerRate,
			Sizes:      workload.WebSearchCDF(),
			Priority:   pkt.PrioLossless,
			Class:      pkt.ClassLossless,
			Window:     window,
			Forbid:     forbid,
			StreamName: "rdma",
			IDTag:      tagRDMA,
		})
	}
	if spec.TCPLoad > 0 {
		wl.Poisson = append(wl.Poisson, workload.PoissonConfig{
			Sources:    tcpHosts,
			Dests:      allHosts,
			Load:       spec.TCPLoad,
			HostRate:   topoCfg.ServerRate,
			Sizes:      workload.WebSearchCDF(),
			Priority:   pkt.PrioLossy,
			Class:      pkt.ClassLossy,
			Window:     window,
			Forbid:     forbid,
			StreamName: "tcp",
			IDTag:      tagTCP,
		})
	}
	if spec.Incast != nil {
		fanout := spec.Incast.Fanout
		if fanout >= len(allHosts) {
			fanout = len(allHosts) - 1
		}
		wl.Incast = &workload.IncastConfig{
			Hosts:        allHosts,
			Fanout:       fanout,
			RequestBytes: spec.Incast.RequestBytes,
			QueryRate:    spec.Incast.QueryRate,
			Window:       window,
			Priority:     pkt.PrioLossless,
			Class:        pkt.ClassLossless,
			StreamName:   "incast",
			IDTag:        tagIncast,
		}
	}
	return wl
}

// runHybridFluid executes one data point under the hybrid-fidelity
// controller. Callers guarantee spec.Shards == 0 and spec.Faults == nil.
func runHybridFluid(ctx context.Context, spec HybridSpec) (*Result, error) {
	policyName := spec.Policy
	factory := spec.PolicyFactory
	if factory == nil {
		name := spec.Policy
		factory = func() core.Policy { return NewPolicy(name) }
	} else if policyName == "" {
		policyName = factory().Name()
	}

	topoCfg := spec.Scale.Topo()
	if spec.TopoOverride != nil {
		spec.TopoOverride(&topoCfg)
	}
	window := spec.Scale.Window()
	if spec.WindowOverride > 0 {
		window = spec.WindowOverride
	}
	drain := spec.Scale.Drain()
	if spec.DrainOverride > 0 {
		drain = spec.DrainOverride
	}
	every := spec.OccupancySampleEvery
	if every <= 0 {
		every = 100 * sim.Microsecond
	}

	// Same seed formula as the classic path (common random numbers across
	// policies AND across fidelities: the offered workload is identical).
	seed := seedFor(spec.Name, spec.SeedSalt,
		fmt.Sprintf("%v/%v/%v", spec.RDMALoad, spec.TCPLoad, spec.Scale))
	sched, err := fluid.Extract(seed, hybridWorkload(spec, topoCfg, window))
	if err != nil {
		return nil, err
	}

	// Every scheduled flow is "started" from the recorder's point of view,
	// exactly as the classic path's launch observers would report.
	rec := metrics.NewFCTRecorder()
	incastIDs := make(map[pkt.FlowID]bool)
	for i := range sched.Flows {
		fa := &sched.Flows[i]
		rec.Started(&fa.Flow, topoCfg.IdealFCT(fa.Flow.Src, fa.Flow.Dst, fa.Flow.Size))
		if fa.Incast {
			incastIDs[fa.Flow.ID] = true
		}
	}

	res := &Result{Spec: spec, Policy: policyName}
	h := &hybridRun{
		ctx:        ctx,
		spec:       spec,
		topoCfg:    topoCfg,
		factory:    factory,
		window:     sim.Time(window),
		horizon:    sim.Time(window + drain),
		every:      every,
		params:     fluid.DefaultParams(),
		model:      fluid.NewModel(topoCfg),
		sched:      sched,
		rec:        rec,
		nextSample: sim.Time(every),
		torOcc:     make([][]metrics.Reading, topoCfg.ToRCount),
		res:        res,
	}
	if spec.Trace != nil {
		h.tracer = trace.NewRecorder(spec.Trace.Capacity)
	}

	onFluid := func(c fluid.Completion) {
		res.FluidFlows++
		rec.Completed(c.ID, c.At)
		if sched.Incast != nil {
			sched.Incast.OnFlowComplete(c.ID, c.At)
		}
	}

	t := sim.Time(0)
	for t < h.horizon {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// --- fluid segment ---
		fs := fluid.NewSim(h.model, h.params, sched.Flows[h.cursor:], t)
		fs.OnComplete = onFluid
		for _, r := range h.residual {
			fs.Inject(r.flow, r.remaining, r.incast)
		}
		h.residual = h.residual[:0]
		segStart := t
		var reason fluid.CutReason
		for {
			target := h.horizon
			if h.nextSample <= h.window && h.nextSample < target {
				target = h.nextSample
			}
			t, reason = fs.Advance(target)
			if reason != fluid.CutNone || t >= h.horizon {
				break
			}
			if t == h.nextSample {
				h.sampleFluid(fs)
			}
		}
		h.cursor += fs.Consumed()
		res.FluidSteps += fs.Steps
		res.FluidTime += sim.Duration(t - segStart)
		if reason == fluid.CutNone {
			break // horizon reached analytically; leftover actives are truncated
		}
		// --- packet segment ---
		t, err = h.packetSegment(t, fs.Active())
		if err != nil {
			return nil, err
		}
	}

	res.EndTime = h.horizon
	res.RDMASlowdowns = rec.Slowdowns(pkt.ClassLossless)
	res.TCPSlowdowns = rec.Slowdowns(pkt.ClassLossy)
	res.FlowsStarted, res.FlowsCompleted = rec.Counts()
	res.Incomplete = rec.IncompleteRecords()
	res.TruncatedFlows = len(res.Incomplete)
	if sched.Incast != nil {
		for _, fr := range rec.Records(pkt.ClassLossless) {
			if incastIDs[fr.Flow.ID] {
				res.IncastSlowdowns = append(res.IncastSlowdowns, fr.Slowdown())
			}
		}
		sort.Float64s(res.IncastSlowdowns)
		res.QueryDelays = sched.Incast.CompletedResponseTimes()
	}
	res.TorOccupancy = h.torOcc
	if h.tracer != nil {
		res.Trace = trace.Merge(h.tracer)
	}
	return res, nil
}

// sampleFluid records one global occupancy sample tick from the fluid
// layer's synthesized per-ToR estimates, then advances the sample cursor.
func (h *hybridRun) sampleFluid(fs *fluid.Sim) {
	h.occBuf = fs.TorOccupancies(h.occBuf)
	for i, occ := range h.occBuf {
		h.torOcc[i] = append(h.torOcc[i], metrics.Reading{At: h.nextSample, Value: occ})
		if h.tracer != nil {
			// Fluid has no reserved/shared split; publish the estimate as
			// both readings so traced figures stay continuous.
			h.tracer.RecordOcc(trace.OccSample{
				At: h.nextSample, Switch: fmt.Sprintf("tor%d", i),
				Resident: occ, SharedUsed: occ,
			})
		}
	}
	h.nextSample += sim.Time(h.every)
}

// burstImminent reports whether the next scheduled incast burst is too
// close to hand control back to the fluid layer.
func (h *hybridRun) burstImminent(now sim.Time) bool {
	at, ok := h.sched.NextIncastAt(h.cursor)
	if !ok {
		return false
	}
	return at-now <= sim.Time(h.params.PreMargin+h.params.QuiesceStep)
}

// packetSegment runs full packet simulation from segStart until the
// quiescence predicate holds (or the horizon), and returns the global end
// instant. carried is the fluid layer's residual state; the segment starts
// those flows at their remaining sizes at local time zero.
func (h *hybridRun) packetSegment(segStart sim.Time, carried []*fluid.FlowState) (sim.Time, error) {
	h.segIdx++
	h.res.PacketSegments++
	// Per-segment seed: packet-level tie-breaks inside a burst need their
	// own stream, decorrelated from the extraction seed.
	eng, err := newEngineFor(h.spec.Sched, &h.topoCfg, seedFor(h.spec.Name, h.spec.SeedSalt,
		fmt.Sprintf("hybrid-seg/%d", h.segIdx)))
	if err != nil {
		return 0, err
	}

	type liveFlow struct {
		flow     transport.Flow // pristine descriptor
		injected int64          // payload bytes this segment carries
		incast   bool
	}
	live := make(map[pkt.FlowID]*liveFlow)

	onComplete := func(id pkt.FlowID, at sim.Time) {
		if _, ok := live[id]; !ok {
			return
		}
		delete(live, id)
		h.rec.Completed(id, segStart+at)
		if h.sched.Incast != nil {
			h.sched.Incast.OnFlowComplete(id, segStart+at)
		}
	}

	cl, err := topo.Build(eng, h.topoCfg, h.factory, onComplete)
	if err != nil {
		return 0, err
	}
	if h.spec.Hooks != nil && h.spec.Hooks.PostBuild != nil {
		h.spec.Hooks.PostBuild(cl)
	}

	// start launches one flow at segment-local time at, carrying injected
	// payload bytes. The descriptor keeps its original ID (ECMP affinity)
	// and class; the host re-stamps Start on launch. A positive warmCwnd
	// hands lossy senders an established window (fluid residuals were
	// mid-transfer: restarting them in slow start would understate the
	// queue pressure they exert).
	start := func(f transport.Flow, injected int64, incast bool, at sim.Time, warmCwnd float64) {
		live[f.ID] = &liveFlow{flow: f, injected: injected, incast: incast}
		inj := f
		inj.Size = injected
		if warmCwnd > 0 {
			eng.ScheduleAt(at, func() { cl.Hosts[inj.Src].StartFlowWarm(&inj, warmCwnd) })
		} else {
			eng.ScheduleAt(at, func() { cl.StartFlow(&inj) })
		}
	}
	for _, fs := range carried {
		// Warm window for a mid-transfer lossy residual: its DCTCP
		// steady-state window is rate × (RTT + the standing-queue delay the
		// ECN threshold sustains at the access link). Omitting the queue
		// term restarts the flow with an empty switch the real run never
		// had — downstream flows then see none of the queueing delay the
		// packet engine would have charged them. A residual cut early in
		// its life has not built that queue yet (it is still in slow
		// start, window ≈ initial window + bytes acked), so cap by served
		// bytes.
		rtt := 2 * h.topoCfg.BasePathDelay(fs.Flow.Src, fs.Flow.Dst)
		queueDelay := float64(h.topoCfg.Switch.ECNLossyThreshold) * 8 / float64(h.topoCfg.ServerRate)
		warm := fs.Rate() * (rtt.Seconds() + queueDelay) / 8
		if ss := float64(10*pkt.MTUPayload) + float64(fs.Flow.Size-fs.RemainingPayload()); ss < warm {
			warm = ss
		}
		start(fs.Flow, fs.RemainingPayload(), fs.Incast, 0, warm)
	}

	// Occupancy sampling continues on the global grid: a self-rescheduling
	// tick reads real resident bytes. Ticks beyond the cut die with the
	// engine, and h.nextSample only advances when a tick actually runs, so
	// the fluid side resumes exactly where packet sampling stopped.
	if h.nextSample <= h.window {
		var tick func()
		tick = func() {
			for i, tor := range cl.ToRs {
				occ := tor.Occupancy()
				h.torOcc[i] = append(h.torOcc[i],
					metrics.Reading{At: h.nextSample, Value: occ})
			}
			h.nextSample += sim.Time(h.every)
			if h.nextSample <= h.window {
				eng.Schedule(h.every, tick)
			}
		}
		eng.ScheduleAt(h.nextSample-segStart, tick)
	}

	// Flight recorder: a per-segment recorder armed exactly like the
	// classic path, re-based into the global recorder at the cut.
	var segTracer *trace.Recorder
	if h.spec.Trace != nil {
		segTracer = trace.NewRecorder(h.spec.Trace.Capacity)
		tEvery := h.spec.Trace.SampleEvery
		if tEvery <= 0 {
			tEvery = h.every
		}
		ts := trace.NewSampler(eng, segTracer, tEvery)
		for _, sw := range cl.AllSwitches() {
			sw := sw
			sw.SetTracer(segTracer)
			ts.AddSwitch(sw)
			if l, ok := sw.Policy().(*core.L2BM); ok {
				name := sw.Name()
				var scratch []core.QueueSample
				ts.AddProbe(func(now sim.Time, rec *trace.Recorder) {
					scratch = l.PeekSamplesAppend(scratch[:0], sw)
					for _, qs := range scratch {
						rec.RecordWeight(trace.WeightSample{
							At: now, Switch: name, Port: qs.Port, Prio: qs.Prio,
							Tau: qs.Tau, Weight: qs.Weight, Threshold: qs.Threshold,
						})
					}
				})
			}
		}
		if segStart < h.window {
			ts.Start(sim.Duration(h.window - segStart))
		}
	}

	// Single-engine conductor so the auditor runs as a barrier task, like
	// the sharded path — the segment loop already runs in bounded slices.
	cond := psim.New([]*sim.Engine{eng}, nil, 0)
	defer cond.Close()
	var aud *audit.Auditor
	if h.spec.Audit != nil {
		aud = newAuditor(h.spec, cl)
		cond.AddTask(aud.Every(), func(now sim.Time) { aud.CheckOnce(now) })
	}
	if h.ctx.Done() != nil {
		cond.SetInterrupt(interruptPollEvents, func() bool { return h.ctx.Err() != nil })
	}

	maxLiveDegree := func() int {
		up := make(map[int]int)
		down := make(map[int]int)
		d := 0
		for _, lf := range live {
			up[lf.flow.Src]++
			down[lf.flow.Dst]++
			if up[lf.flow.Src] > d {
				d = up[lf.flow.Src]
			}
			if down[lf.flow.Dst] > d {
				d = down[lf.flow.Dst]
			}
		}
		return d
	}

	localHorizon := h.horizon - segStart
	step := sim.Time(h.params.QuiesceStep)
	minSeg := sim.Time(h.params.MinSegment)
	var prevPause, prevECN, prevDrops uint64
	quiet := 0
	localNow := sim.Time(0)
	for localNow < localHorizon {
		next := localNow + step
		if next > localHorizon {
			next = localHorizon
		}
		// Schedule every arrival due in this slice; the cursor only moves
		// for arrivals the slice will actually execute.
		for h.cursor < len(h.sched.Flows) {
			fa := &h.sched.Flows[h.cursor]
			local := fa.Flow.Start - segStart
			if local > next {
				break
			}
			start(fa.Flow, fa.Flow.Size, fa.Incast, local, 0)
			h.cursor++
		}
		cond.Run(next)
		localNow = next
		if err := h.ctx.Err(); err != nil {
			return 0, err
		}
		// Quiescence: no pause frames, no ECN marks, no drops this slice
		// (congestion feedback means rates are NOT fluid-like yet), bounded
		// resident bytes, no standing fan-in, no imminent burst.
		stats := topo.SwitchStats(cl.AllSwitches())
		drops := stats.LossyDropsIngress + stats.LossyDropsEgress
		throttled := 0
		minCwnd := h.params.RecoveredFrac * float64(h.topoCfg.Switch.ECNLossyThreshold)
		for _, hs := range cl.Hosts {
			throttled += hs.ThrottledRDMASenders(h.params.RecoveredFrac)
			throttled += hs.ThrottledTCPSenders(minCwnd)
		}
		calm := stats.PauseFramesSent == prevPause &&
			stats.ECNMarked == prevECN &&
			drops == prevDrops &&
			cl.ResidentBytes() <= h.params.QuiesceResident &&
			maxLiveDegree() < h.params.DegreeTrigger &&
			throttled == 0 &&
			!h.burstImminent(segStart+localNow)
		prevPause, prevECN, prevDrops = stats.PauseFramesSent, stats.ECNMarked, drops
		if calm {
			quiet++
		} else {
			quiet = 0
		}
		if localNow >= minSeg && quiet >= h.params.QuiesceDwell && localNow < localHorizon {
			break
		}
	}
	segEnd := segStart + localNow

	// Harvest residuals: receiver-side contiguous progress bounds what the
	// fluid layer still owes. Sorted by ID so fluid re-injection order (and
	// with it the whole run) is deterministic despite map iteration.
	for id, lf := range live {
		remaining := lf.injected
		if delivered, ok := cl.Hosts[lf.flow.Dst].FlowProgress(id); ok {
			remaining = lf.injected - delivered
		}
		if remaining < 1 {
			remaining = 1
		}
		h.residual = append(h.residual, hybridResidual{
			flow: lf.flow, remaining: remaining, incast: lf.incast,
		})
	}
	sort.Slice(h.residual, func(i, j int) bool {
		return h.residual[i].flow.ID < h.residual[j].flow.ID
	})

	// Accumulate the segment's switch statistics into the run result.
	all := topo.SwitchStats(cl.AllSwitches())
	h.res.PauseFrames += all.PauseFramesSent
	h.res.LossyDrops += all.LossyDropsIngress + all.LossyDropsEgress
	h.res.LossyEvictions += all.LossyEvictions
	h.res.LosslessViolations += all.LosslessViolations
	h.res.ECNMarked += all.ECNMarked
	h.res.PFCReissues += all.PFCReissues
	h.res.ToRPauseFrames += topo.SwitchStats(cl.ToRs).PauseFramesSent
	h.res.AggPauseFrames += topo.SwitchStats(cl.Aggs).PauseFramesSent
	h.res.CorePauseFrames += topo.SwitchStats(cl.Cores).PauseFramesSent
	h.res.LosslessGaps += cl.LosslessGaps()
	h.res.Events += eng.Events()
	h.res.RecoveryBytes += cl.RecoveryBytes()
	nacks, tmo := cl.RDMARecoveryStats()
	h.res.RDMANACKs += nacks
	h.res.RDMATimeouts += tmo
	if cl.Pool != nil {
		h.res.PoolGets += cl.Pool.Stats().Gets
		if segEnd >= h.horizon {
			// Only the final segment's parked frames are "live at run end";
			// a quiescence cut's in-flight frames are re-served as fluid.
			h.res.PoolLive += cl.Pool.Live()
		}
	}
	for _, sw := range cl.AllSwitches() {
		if err := sw.CheckInvariants(); err != nil {
			h.res.AuditErrors = append(h.res.AuditErrors, err.Error())
		}
	}
	if aud != nil {
		if segEnd >= h.horizon {
			aud.Final()
		}
		h.res.AuditErrors = append(h.res.AuditErrors, aud.Violations()...)
		h.res.AuditChecks += aud.Checks()
	}

	if segTracer != nil {
		for _, s := range segTracer.OccSamples() {
			s.At += segStart
			h.tracer.RecordOcc(s)
		}
		for _, e := range segTracer.PFCEvents() {
			e.At += segStart
			h.tracer.RecordPFC(e)
		}
		for _, s := range segTracer.WeightSamples() {
			s.At += segStart
			h.tracer.RecordWeight(s)
		}
		for _, e := range segTracer.PacketEvents() {
			e.At += segStart
			h.tracer.RecordPacketEvent(e)
		}
	}
	return segEnd, nil
}
