package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"l2bm/internal/sim"
)

// tracedTinySpec arms the flight recorder on the shared tiny smoke spec.
func tracedTinySpec(policy string) HybridSpec {
	s := tinySpec(policy)
	s.Trace = &TraceSpec{}
	return s
}

// TestTracedRunDoesNotPerturbSimulation is the observer-effect guarantee:
// arming the flight recorder must not change a single model-level outcome.
// The only permitted difference is the engine's executed-event count (the
// sampler's own ticks) — everything the paper's figures are built from must
// match exactly.
func TestTracedRunDoesNotPerturbSimulation(t *testing.T) {
	plain, err := RunHybrid(tinySpec("L2BM"))
	if err != nil {
		t.Fatal(err)
	}
	traced, err := RunHybrid(tracedTinySpec("L2BM"))
	if err != nil {
		t.Fatal(err)
	}
	if traced.Trace == nil {
		t.Fatal("traced run has no recorder")
	}
	if plain.Trace != nil {
		t.Fatal("untraced run grew a recorder")
	}

	if traced.FlowsStarted != plain.FlowsStarted || traced.FlowsCompleted != plain.FlowsCompleted {
		t.Errorf("flow counts diverged: traced %d/%d, plain %d/%d",
			traced.FlowsCompleted, traced.FlowsStarted, plain.FlowsCompleted, plain.FlowsStarted)
	}
	if traced.PauseFrames != plain.PauseFrames || traced.LossyDrops != plain.LossyDrops ||
		traced.ECNMarked != plain.ECNMarked || traced.LosslessViolations != plain.LosslessViolations {
		t.Errorf("switch counters diverged: traced pause=%d drops=%d ecn=%d viol=%d, plain pause=%d drops=%d ecn=%d viol=%d",
			traced.PauseFrames, traced.LossyDrops, traced.ECNMarked, traced.LosslessViolations,
			plain.PauseFrames, plain.LossyDrops, plain.ECNMarked, plain.LosslessViolations)
	}
	if traced.EndTime != plain.EndTime {
		t.Errorf("end time diverged: traced %v, plain %v", traced.EndTime, plain.EndTime)
	}
	if !reflect.DeepEqual(traced.RDMASlowdowns, plain.RDMASlowdowns) {
		t.Error("RDMA slowdowns diverged under tracing")
	}
	if !reflect.DeepEqual(traced.TCPSlowdowns, plain.TCPSlowdowns) {
		t.Error("TCP slowdowns diverged under tracing")
	}
	if !reflect.DeepEqual(traced.TorOccupancy, plain.TorOccupancy) {
		t.Error("ToR occupancy timelines diverged under tracing")
	}
	if traced.Events < plain.Events {
		t.Errorf("traced run fired fewer events (%d) than plain (%d)", traced.Events, plain.Events)
	}
	if st := traced.Trace.Stats(); st.OccSamples == 0 {
		t.Error("recorder armed but captured no occupancy samples")
	}
}

// TestTracedFigureOutputByteIdentical renders the same figure with tracing
// on and off: the emitted tables and progress lines must be byte-identical.
func TestTracedFigureOutputByteIdentical(t *testing.T) {
	var plain bytes.Buffer
	if _, err := NewHarness(1).RunFig3a(ScaleTiny, &plain); err != nil {
		t.Fatal(err)
	}

	h := NewHarness(1)
	h.Trace = &TraceSpec{}
	h.TraceDir = t.TempDir()
	var traced bytes.Buffer
	if _, err := h.RunFig3a(ScaleTiny, &traced); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(plain.Bytes(), traced.Bytes()) {
		t.Errorf("figure output diverged under tracing:\n--- plain ---\n%s\n--- traced ---\n%s",
			plain.String(), traced.String())
	}
	files, err := filepath.Glob(filepath.Join(h.TraceDir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Error("traced harness exported no artifacts")
	}
}

// TestTracedRunsProduceByteIdenticalTraceFiles replays one traced point and
// diffs every exported artifact byte-for-byte: the recorder's rings, the
// exporters' ordering and the file naming must all be deterministic.
func TestTracedRunsProduceByteIdenticalTraceFiles(t *testing.T) {
	spec := tracedTinySpec("L2BM")
	spec.Trace.SampleEvery = 50 * sim.Microsecond

	export := func(dir string) map[string][]byte {
		t.Helper()
		res, err := RunHybrid(spec)
		if err != nil {
			t.Fatal(err)
		}
		paths, err := res.WriteTrace(dir, "")
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) != 5 {
			t.Fatalf("exported %d files, want 5 (occupancy, pauses, weights, events, jsonl)", len(paths))
		}
		out := make(map[string][]byte, len(paths))
		for _, p := range paths {
			b, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			out[filepath.Base(p)] = b
		}
		return out
	}

	a := export(t.TempDir())
	b := export(t.TempDir())
	if len(a) != len(b) {
		t.Fatalf("file sets differ: %d vs %d", len(a), len(b))
	}
	for name, ab := range a {
		bb, ok := b[name]
		if !ok {
			t.Errorf("second run missing %s", name)
			continue
		}
		if !bytes.Equal(ab, bb) {
			t.Errorf("%s differs between identical traced runs (%d vs %d bytes)", name, len(ab), len(bb))
		}
	}
	// The occupancy timeline must carry data beyond its header: an empty
	// trace would make the byte-diff vacuous.
	for name, content := range a {
		if filepath.Ext(name) == ".csv" && name == "smoke-l2bm-r40-t40-occupancy.csv" {
			if bytes.Count(content, []byte("\n")) < 3 {
				t.Errorf("occupancy CSV nearly empty:\n%s", content)
			}
		}
	}
}

// TestTraceFileStemShape pins the deterministic artifact naming.
func TestTraceFileStemShape(t *testing.T) {
	res := &Result{Spec: tinySpec("L2BM"), Policy: "L2BM"}
	if got, want := res.TraceFileStem(), "smoke-l2bm-r40-t40"; got != want {
		t.Errorf("stem = %q, want %q", got, want)
	}
	spec := tinySpec("DT")
	spec.Incast = &IncastSpec{Fanout: 8}
	res = &Result{Spec: spec, Policy: "DT"}
	if got, want := res.TraceFileStem(), "smoke-dt-r40-t40-n8"; got != want {
		t.Errorf("stem = %q, want %q", got, want)
	}
}
