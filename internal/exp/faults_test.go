package exp

import (
	"bytes"
	"testing"

	"l2bm/internal/sim"
)

// TestFaultToleranceAcceptance is the headline robustness guarantee: under
// the default scenario (1% link-flap duty cycle + 1e-6 BER) at tiny scale,
// every policy completes every flow, the MMU audit stays clean, and the
// detection machinery reports nothing on a deadlock-free fabric.
func TestFaultToleranceAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep across all policies is slow")
	}
	var buf bytes.Buffer
	out, err := RunFaultTolerance(ScaleTiny, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(PolicyNames) {
		t.Fatalf("got %d policies, want %d", len(out), len(PolicyNames))
	}
	for _, pol := range PolicyNames {
		res := out[pol]
		if res == nil {
			t.Fatalf("%s: no result", pol)
		}
		if res.FlowsStarted == 0 {
			t.Fatalf("%s: no flows started", pol)
		}
		if res.FlowsCompleted != res.FlowsStarted {
			var ids []int64
			for _, rec := range res.Incomplete {
				ids = append(ids, int64(rec.Flow.ID))
			}
			t.Errorf("%s: completed %d/%d flows, stuck ids %v",
				pol, res.FlowsCompleted, res.FlowsStarted, ids)
		}
		// The scenario must actually have injected damage...
		if res.LinkDownEvents == 0 {
			t.Errorf("%s: no link flaps fired", pol)
		}
		if res.CorruptedFrames == 0 {
			t.Errorf("%s: no frames corrupted", pol)
		}
		// ...and recovery must have been exercised, not dodged.
		if res.RecoveryBytes == 0 {
			t.Errorf("%s: faults injected but nothing retransmitted", pol)
		}
		// Integrity and detection: clean fabric semantics must survive.
		if len(res.AuditErrors) != 0 {
			t.Errorf("%s: MMU audit errors: %v", pol, res.AuditErrors)
		}
		if res.LosslessViolations != 0 {
			t.Errorf("%s: %d lossless violations", pol, res.LosslessViolations)
		}
		if res.WatchdogStalls != 0 {
			t.Errorf("%s: watchdog reported %d stalls on a recovering fabric", pol, res.WatchdogStalls)
		}
		if res.DeadlockCycles != 0 {
			t.Errorf("%s: detector claimed %d deadlock cycles on a cycle-free Clos", pol, res.DeadlockCycles)
		}
		if res.DeadlockScans == 0 {
			t.Errorf("%s: deadlock detector never scanned", pol)
		}
	}
	if buf.Len() == 0 {
		t.Error("no tables rendered")
	}
}

// TestFaultRunsAreDeterministic: the whole point of seeded fault streams is
// that a fault run is exactly reproducible. Same seed, same plan — the
// rendered tables must be byte-identical and the structured results equal.
func TestFaultRunsAreDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fault scenario twice")
	}
	run := func() (*Result, string) {
		var buf bytes.Buffer
		res, err := RunHybrid(HybridSpec{
			Name: "faults", Policy: "L2BM", Scale: ScaleTiny,
			RDMALoad: 0.4, TCPLoad: 0.4,
			DrainOverride: FaultDrain * ScaleTiny.Window(),
			Faults:        DefaultFaultScenario(ScaleTiny),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, buf.String()
	}
	a, _ := run()
	b, _ := run()

	type key struct {
		started, completed int
		recovery           int64
		nacks, rtos        uint64
		flaps, corrupt     uint64
		lostPFC, carrier   uint64
		gaps               uint64
		pause, reissue     uint64
	}
	ka := key{a.FlowsStarted, a.FlowsCompleted, a.RecoveryBytes,
		a.RDMANACKs, a.RDMATimeouts, a.LinkDownEvents, a.CorruptedFrames,
		a.LostPFC, a.CarrierDrops, a.LosslessGaps, a.PauseFrames, a.PFCReissues}
	kb := key{b.FlowsStarted, b.FlowsCompleted, b.RecoveryBytes,
		b.RDMANACKs, b.RDMATimeouts, b.LinkDownEvents, b.CorruptedFrames,
		b.LostPFC, b.CarrierDrops, b.LosslessGaps, b.PauseFrames, b.PFCReissues}
	if ka != kb {
		t.Fatalf("identical fault runs diverged:\n  a=%+v\n  b=%+v", ka, kb)
	}
}

// TestFaultTablesAreByteIdentical renders the full comparison twice and
// demands byte equality — the tables are what a reader diffs across commits.
func TestFaultTablesAreByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full fault sweep twice")
	}
	var a, b bytes.Buffer
	if _, err := RunFaultTolerance(ScaleTiny, &a); err != nil {
		t.Fatal(err)
	}
	if _, err := RunFaultTolerance(ScaleTiny, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("fault tables differ between identical runs:\n--- a ---\n%s\n--- b ---\n%s", a.String(), b.String())
	}
}

// TestFaultStreamNameDoesNotPerturbWorkload: fault randomness lives on its
// own named RNG streams, so renaming the stream must not change the
// workload's arrival process — flow count and start set stay fixed.
func TestFaultStreamNameDoesNotPerturbWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two fault scenarios")
	}
	run := func(stream string) *Result {
		spec := DefaultFaultScenario(ScaleTiny)
		spec.Plan.Stream = stream
		res, err := RunHybrid(HybridSpec{
			Name: "faults", Policy: "DT", Scale: ScaleTiny,
			RDMALoad: 0.4, TCPLoad: 0.4,
			DrainOverride: FaultDrain * ScaleTiny.Window(),
			Faults:        spec,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run("faults/a")
	b := run("faults/b")
	if a.FlowsStarted != b.FlowsStarted {
		t.Fatalf("renaming the fault stream changed the workload: %d vs %d flows started",
			a.FlowsStarted, b.FlowsStarted)
	}
	// Different stream names draw different flap/corruption patterns, so the
	// fault processes themselves should (almost surely) diverge.
	if a.LinkDownEvents == b.LinkDownEvents && a.CorruptedFrames == b.CorruptedFrames {
		t.Log("note: distinct fault streams produced identical fault counts (possible but unlikely)")
	}
}

// TestDrainOverrideExtendsHorizon: the fault recovery horizon is a spec knob,
// not a hard-coded constant. A zero override falls back to the scale default.
func TestDrainOverrideExtendsHorizon(t *testing.T) {
	if FaultDrain*ScaleTiny.Window() <= ScaleTiny.Drain() {
		t.Fatalf("FaultDrain horizon %v not longer than default drain %v",
			FaultDrain*ScaleTiny.Window(), ScaleTiny.Drain())
	}
	if d := sim.Duration(FaultDrain) * ScaleTiny.Window(); d <= 0 {
		t.Fatal("fault drain horizon must be positive")
	}
}
