package exp

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"l2bm/internal/faults"
	"l2bm/internal/sim"
	"l2bm/internal/topo"
)

// auditSpec is a tiny hybrid data point with the packet-pool audit armed,
// shared by the auditor suite.
func auditSpec(shards int) HybridSpec {
	return HybridSpec{
		Name:     "audit-suite",
		Policy:   "L2BM",
		Scale:    ScaleTiny,
		RDMALoad: 0.4,
		TCPLoad:  0.5,
		Incast:   &IncastSpec{Fanout: 3, RequestBytes: 100_000, QueryRate: 2000},
		Shards:   shards,
		TopoOverride: func(cfg *topo.Config) {
			cfg.PacketPoolDebug = true
		},
	}
}

// TestAuditorObserverFree is the tentpole contract: an auditor-on run must
// produce byte-identical results and trace files to an auditor-off run, on
// the classic path and under the sharded conductor. (Result.Events is
// excluded by shardFingerprint: classic audit ticks are engine events.)
func TestAuditorObserverFree(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism suite")
	}
	for _, shards := range []int{0, 2} {
		ref, refDir := runAuditVariant(t, shards, nil)
		aud, audDir := runAuditVariant(t, shards, &AuditSpec{
			Every:       200 * sim.Microsecond,
			MaxPauseAge: 5 * sim.Millisecond,
		})
		if ref != aud {
			t.Errorf("shards=%d: auditor perturbed the run:\n--- off ---\n%.2000s\n--- on ---\n%.2000s",
				shards, ref, aud)
		}
		compareTraceDirs(t, refDir, audDir, shards)
	}
}

// runAuditVariant runs the suite spec with/without the auditor and returns
// the result fingerprint plus an exported trace directory.
func runAuditVariant(t *testing.T, shards int, as *AuditSpec) (string, string) {
	t.Helper()
	spec := auditSpec(shards)
	spec.Audit = as
	spec.Trace = &TraceSpec{SampleEvery: 100 * sim.Microsecond, Capacity: 1 << 16}
	res, err := RunHybrid(spec)
	if err != nil {
		t.Fatalf("shards=%d audit=%v: %v", shards, as != nil, err)
	}
	if res.FlowsCompleted == 0 {
		t.Fatalf("shards=%d: no flows completed", shards)
	}
	if len(res.AuditErrors) > 0 {
		t.Fatalf("shards=%d audit=%v: violations on a clean run: %v",
			shards, as != nil, res.AuditErrors)
	}
	if as != nil && res.AuditChecks == 0 {
		t.Fatalf("shards=%d: auditor armed but never swept", shards)
	}
	dir := t.TempDir()
	if _, err := res.WriteTrace(dir, "audit"); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	return shardFingerprint(res), dir
}

// TestAuditorCleanUnderFaults: a faulty fabric (flaps, corruption, PFC
// loss) stresses every kill site the flow-byte ledger must cover; the
// auditor must still see conservation hold.
func TestAuditorCleanUnderFaults(t *testing.T) {
	for _, shards := range []int{0, 2} {
		spec := auditSpec(shards)
		spec.DrainOverride = 40 * sim.Millisecond
		spec.Faults = &FaultSpec{Plan: faults.Plan{
			FlapRate:     200,
			FlapDowntime: 300 * sim.Microsecond,
			FlapWindow:   sim.Millisecond,
			BER:          2e-7,
			PFCLossRate:  0.02,
		}}
		spec.Audit = &AuditSpec{Every: 250 * sim.Microsecond}
		res, err := RunHybrid(spec)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if len(res.AuditErrors) > 0 {
			t.Errorf("shards=%d: violations under faults: %v", shards, res.AuditErrors)
		}
		if res.AuditChecks == 0 {
			t.Errorf("shards=%d: auditor never swept", shards)
		}
	}
}

// TestAuditorCatchesSeededSkew is the mutation test: plant a one-sided
// accounting bug (sharedUsed skewed away from the per-queue counters it is
// derived from) and require the auditor to flag it, classic and sharded.
func TestAuditorCatchesSeededSkew(t *testing.T) {
	for _, shards := range []int{0, 2} {
		spec := auditSpec(shards)
		spec.Audit = &AuditSpec{Every: 200 * sim.Microsecond}
		spec.Hooks = &RunHooks{PostBuild: func(cl *topo.Cluster) {
			cl.ToRs[0].SkewSharedUsedForTest(4096)
		}}
		res, err := RunHybrid(spec)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if len(res.AuditErrors) == 0 {
			t.Fatalf("shards=%d: seeded sharedUsed skew went undetected", shards)
		}
		found := false
		for _, v := range res.AuditErrors {
			if strings.Contains(v, "sharedUsed") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("shards=%d: violations name the wrong invariant: %v", shards, res.AuditErrors)
		}
	}
}

// TestRunHybridCtxCancelled: an already-cancelled context returns before
// building anything.
func TestRunHybridCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, shards := range []int{0, 2} {
		spec := auditSpec(shards)
		res, err := RunHybridCtx(ctx, spec)
		if res != nil || !errors.Is(err, context.Canceled) {
			t.Errorf("shards=%d: got (%v, %v), want (nil, context.Canceled)", shards, res, err)
		}
	}
}

// TestRunHybridCtxTimeout: a deadline far shorter than the run's wall time
// interrupts the event loop mid-run and discards the torn state.
func TestRunHybridCtxTimeout(t *testing.T) {
	for _, shards := range []int{0, 2} {
		spec := shardSpec(max(shards, 0))
		spec.Shards = shards
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		res, err := RunHybridCtx(ctx, spec)
		cancel()
		if res != nil || !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("shards=%d: got (res=%v, err=%v), want (nil, DeadlineExceeded)", shards, res != nil, err)
		}
	}
}
