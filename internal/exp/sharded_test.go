package exp

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"l2bm/internal/core"
	"l2bm/internal/faults"
	"l2bm/internal/sim"
)

// shardFingerprint serializes every deterministic observable of a Result.
// It excludes Events (generator tick chains are replicated per shard, so
// the executed-event count grows with the shard count by design) and the
// raw Trace pointer (compared separately via exported files).
func shardFingerprint(res *Result) string {
	s := fmt.Sprintf("rdma=%v tcp=%v incast=%v queries=%v\n",
		res.RDMASlowdowns, res.TCPSlowdowns, res.IncastSlowdowns, res.QueryDelays)
	s += fmt.Sprintf("flows=%d/%d gaps=%d end=%v\n",
		res.FlowsStarted, res.FlowsCompleted, res.LosslessGaps, res.EndTime)
	s += fmt.Sprintf("pause=%d/%d/%d/%d drops=%d evict=%d viol=%d ecn=%d reissue=%d\n",
		res.PauseFrames, res.ToRPauseFrames, res.AggPauseFrames, res.CorePauseFrames,
		res.LossyDrops, res.LossyEvictions, res.LosslessViolations, res.ECNMarked, res.PFCReissues)
	s += fmt.Sprintf("recov=%d nacks=%d tmo=%d down=%d corrupt=%d lostpfc=%d carrier=%d stalls=%d cycles=%d broken=%d\n",
		res.RecoveryBytes, res.RDMANACKs, res.RDMATimeouts, res.LinkDownEvents,
		res.CorruptedFrames, res.LostPFC, res.CarrierDrops,
		res.WatchdogStalls, res.DeadlockCycles, res.DeadlocksBroken)
	s += fmt.Sprintf("audit=%v poolLive=%d\n", res.AuditErrors, res.PoolLive)
	for i, tr := range res.TorOccupancy {
		s += fmt.Sprintf("tor%d=%v\n", i, tr)
	}
	for _, fr := range res.Incomplete {
		s += fmt.Sprintf("inc=%d\n", fr.Flow.ID)
	}
	return s
}

// shardSpec is the shared data point for the shard-determinism suite:
// ScaleSmall has four ToRs (legal shard counts 1, 2 and 4), hybrid RDMA +
// TCP + incast traffic, and a short overridden window to keep CI fast.
func shardSpec(shards int) HybridSpec {
	return HybridSpec{
		Name:           "shards-det",
		Policy:         "L2BM",
		Scale:          ScaleSmall,
		RDMALoad:       0.4,
		TCPLoad:        0.5,
		Incast:         &IncastSpec{Fanout: 5, RequestBytes: 200_000, QueryRate: 2000},
		WindowOverride: 2 * sim.Millisecond,
		DrainOverride:  10 * sim.Millisecond,
		Shards:         shards,
	}
}

// TestShardCountInvariance is the tentpole acceptance test: the same data
// point run at 1, 2 and 4 shards must produce byte-identical results,
// including exported trace files.
func TestShardCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism suite")
	}
	dirs := map[int]string{}
	prints := map[int]string{}
	for _, shards := range []int{1, 2, 4} {
		spec := shardSpec(shards)
		spec.Trace = &TraceSpec{SampleEvery: 100 * sim.Microsecond, Capacity: 1 << 17}
		res, err := RunHybrid(spec)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.FlowsCompleted == 0 {
			t.Fatalf("shards=%d: no flows completed", shards)
		}
		if len(res.AuditErrors) > 0 {
			t.Fatalf("shards=%d: audit errors: %v", shards, res.AuditErrors)
		}
		prints[shards] = shardFingerprint(res)

		dir := t.TempDir()
		if _, err := res.WriteTrace(dir, "det"); err != nil {
			t.Fatalf("shards=%d: WriteTrace: %v", shards, err)
		}
		dirs[shards] = dir
	}

	for _, shards := range []int{2, 4} {
		if prints[shards] != prints[1] {
			t.Errorf("shards=%d diverged from shards=1:\n--- 1 ---\n%.2000s\n--- %d ---\n%.2000s",
				shards, prints[1], shards, prints[shards])
		}
		compareTraceDirs(t, dirs[1], dirs[shards], shards)
	}
}

// TestShardCountInvarianceRegistrySweep runs every registered policy —
// the paper's four plus the related work, including the stateful BShare
// (sojourn table) and preemptive Occamy — through the same data point at
// 1 and 2 shards. Shard count is an execution strategy, never a workload
// parameter, so every observable must be byte-identical per policy.
func TestShardCountInvarianceRegistrySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism suite")
	}
	for _, pol := range core.RegisteredPolicies() {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			t.Parallel()
			prints := map[int]string{}
			for _, shards := range []int{1, 2} {
				spec := HybridSpec{
					Name:     "shards-det-registry",
					Policy:   pol,
					Scale:    ScaleTiny,
					RDMALoad: 0.4,
					TCPLoad:  0.6,
					Incast:   &IncastSpec{Fanout: 4, RequestBytes: 200_000, QueryRate: 2000},
					Audit:    &AuditSpec{},
					Shards:   shards,
				}
				res, err := RunHybrid(spec)
				if err != nil {
					t.Fatalf("%s shards=%d: %v", pol, shards, err)
				}
				if res.FlowsCompleted == 0 {
					t.Fatalf("%s shards=%d: no flows completed", pol, shards)
				}
				if len(res.AuditErrors) > 0 {
					t.Fatalf("%s shards=%d: audit errors: %v", pol, shards, res.AuditErrors)
				}
				prints[shards] = shardFingerprint(res)
			}
			if prints[2] != prints[1] {
				t.Errorf("%s: shards=2 diverged from shards=1:\n--- 1 ---\n%.2000s\n--- 2 ---\n%.2000s",
					pol, prints[1], prints[2])
			}
		})
	}
}

// compareTraceDirs byte-compares every exported trace file.
func compareTraceDirs(t *testing.T, ref, got string, shards int) {
	t.Helper()
	refFiles, err := filepath.Glob(filepath.Join(ref, "*"))
	if err != nil || len(refFiles) == 0 {
		t.Fatalf("no trace files in %s (err=%v)", ref, err)
	}
	for _, rf := range refFiles {
		name := filepath.Base(rf)
		want, err := os.ReadFile(rf)
		if err != nil {
			t.Fatal(err)
		}
		have, err := os.ReadFile(filepath.Join(got, name))
		if err != nil {
			t.Fatalf("shards=%d: missing trace file %s", shards, name)
		}
		if string(want) != string(have) {
			t.Errorf("shards=%d: trace file %s differs from shards=1", shards, name)
		}
	}
}

// TestShardCountInvarianceUnderFaults re-runs the invariance check with the
// fault-injection subsystem armed: link flaps, frame corruption, PFC loss
// and the barrier-driven detector/watchdog all replay identically across
// shard counts.
func TestShardCountInvarianceUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism suite")
	}
	prints := map[int]string{}
	for _, shards := range []int{1, 2, 4} {
		spec := shardSpec(shards)
		spec.Name = "shards-det-faults"
		spec.Faults = &FaultSpec{
			Plan: faults.Plan{
				FlapRate:     40,
				FlapDowntime: 200 * sim.Microsecond,
				FlapWindow:   2 * sim.Millisecond,
				BER:          2e-9,
				PFCLossRate:  0.02,
			},
		}
		res, err := RunHybrid(spec)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.LinkDownEvents == 0 {
			t.Fatalf("shards=%d: fault plan injected nothing", shards)
		}
		prints[shards] = shardFingerprint(res)
	}
	for _, shards := range []int{2, 4} {
		if prints[shards] != prints[1] {
			t.Errorf("faulted shards=%d diverged from shards=1:\n--- 1 ---\n%.2000s\n--- %d ---\n%.2000s",
				shards, prints[1], shards, prints[shards])
		}
	}
}

// TestShardedMatchesClassicClean: for a clean (fault-free) run the sharded
// path at one shard must reproduce the classic single-engine path exactly —
// same flows, same counters, same executed-event count.
func TestShardedMatchesClassicClean(t *testing.T) {
	classicSpec := shardSpec(0)
	classic, err := RunHybrid(classicSpec)
	if err != nil {
		t.Fatal(err)
	}
	shardedSpec := shardSpec(1)
	sharded, err := RunHybrid(shardedSpec)
	if err != nil {
		t.Fatal(err)
	}
	if shardFingerprint(classic) != shardFingerprint(sharded) {
		t.Errorf("sharded(1) diverged from classic:\n--- classic ---\n%.2000s\n--- sharded ---\n%.2000s",
			shardFingerprint(classic), shardFingerprint(sharded))
	}
	if classic.Events != sharded.Events {
		t.Errorf("executed events: classic %d vs sharded(1) %d", classic.Events, sharded.Events)
	}
}

// TestTruncatedFlowsAcrossShards: flows still in flight at window + drain
// are surfaced as Result.TruncatedFlows, and the classic and sharded paths
// must agree exactly for every legal shard count — truncation accounting is
// part of the result, not an engine artifact. The spec's short drain
// guarantees mid-transfer elephants are actually cut (the regression this
// pins: the classic path used to absorb them silently into in-flight
// bytes).
func TestTruncatedFlowsAcrossShards(t *testing.T) {
	spec := shardSpec(0)
	spec.DrainOverride = 500 * sim.Microsecond
	classic, err := RunHybrid(spec)
	if err != nil {
		t.Fatal(err)
	}
	if classic.TruncatedFlows == 0 {
		t.Fatalf("spec did not truncate any flows (started %d, completed %d) — drain too long for the regression to bite",
			classic.FlowsStarted, classic.FlowsCompleted)
	}
	if got, want := classic.TruncatedFlows, classic.FlowsStarted-classic.FlowsCompleted; got != want {
		t.Errorf("classic TruncatedFlows = %d, want started−completed = %d", got, want)
	}
	for _, shards := range []int{1, 2, 4} {
		s := spec
		s.Shards = shards
		res, err := RunHybrid(s)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.TruncatedFlows != classic.TruncatedFlows {
			t.Errorf("shards=%d: TruncatedFlows = %d, classic = %d",
				shards, res.TruncatedFlows, classic.TruncatedFlows)
		}
		if res.FlowsStarted != classic.FlowsStarted || res.FlowsCompleted != classic.FlowsCompleted {
			t.Errorf("shards=%d: flow counts (%d started, %d completed) diverged from classic (%d, %d)",
				shards, res.FlowsStarted, res.FlowsCompleted, classic.FlowsStarted, classic.FlowsCompleted)
		}
	}
}
