package exp

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestScaleJSON(t *testing.T) {
	for _, tc := range []struct {
		scale Scale
		want  string
	}{
		{ScaleTiny, `"tiny"`},
		{ScaleSmall, `"small"`},
		{ScaleFull, `"full"`},
	} {
		got, err := json.Marshal(tc.scale)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != tc.want {
			t.Errorf("marshal %v = %s, want %s", tc.scale, got, tc.want)
		}
		var back Scale
		if err := json.Unmarshal(got, &back); err != nil {
			t.Fatal(err)
		}
		if back != tc.scale {
			t.Errorf("round trip %v came back %v", tc.scale, back)
		}
	}
	// Integer form is accepted too (and is what unnamed values render as).
	var s Scale
	if err := json.Unmarshal([]byte(jsonInt(int(ScaleSmall))), &s); err != nil || s != ScaleSmall {
		t.Errorf("integer unmarshal: %v, %v", s, err)
	}
	if err := json.Unmarshal([]byte(`"galactic"`), &s); err == nil {
		t.Error("unknown scale name unmarshaled")
	}
	if err := json.Unmarshal([]byte(`true`), &s); err == nil {
		t.Error("non-scalar scale unmarshaled")
	}
}

func TestParseSweepRequest(t *testing.T) {
	valid := `{"name":"ok","specs":[{"Name":"p0","Policy":"DT","Scale":"tiny","TCPLoad":0.4}]}`
	req, err := ParseSweepRequest([]byte(valid))
	if err != nil {
		t.Fatal(err)
	}
	if req.Name != "ok" || len(req.Specs) != 1 || req.Specs[0].Scale != ScaleTiny {
		t.Errorf("parsed request wrong: %+v", req)
	}

	for name, body := range map[string]string{
		"syntax":          `{"specs":`,
		"unknown field":   `{"specs":[{"Name":"p","Policy":"DT","Scale":"tiny","Polciy":"DT"}]}`,
		"trailing data":   valid + `{"more":1}`,
		"no specs":        `{"name":"empty","specs":[]}`,
		"missing name":    `{"specs":[{"Policy":"DT","Scale":"tiny"}]}`,
		"missing policy":  `{"specs":[{"Name":"p","Scale":"tiny"}]}`,
		"unknown policy":  `{"specs":[{"Name":"p","Policy":"Nope","Scale":"tiny"}]}`,
		"unknown scale":   `{"specs":[{"Name":"p","Policy":"DT","Scale":99}]}`,
		"bad fidelity":    `{"specs":[{"Name":"p","Policy":"DT","Scale":"tiny","Fidelity":"analytic"}]}`,
		"hybrid sharded":  `{"specs":[{"Name":"p","Policy":"DT","Scale":"tiny","Fidelity":"hybrid","Shards":2}]}`,
		"bad sched":       `{"specs":[{"Name":"p","Policy":"DT","Scale":"tiny","Sched":"lottery"}]}`,
		"negative shards": `{"specs":[{"Name":"p","Policy":"DT","Scale":"tiny","Shards":-1}]}`,
		"load too high":   `{"specs":[{"Name":"p","Policy":"DT","Scale":"tiny","TCPLoad":1.5}]}`,
		"load negative":   `{"specs":[{"Name":"p","Policy":"DT","Scale":"tiny","RDMALoad":-0.1}]}`,
		"bad incast":      `{"specs":[{"Name":"p","Policy":"DT","Scale":"tiny","Incast":{"Fanout":0,"RequestBytes":1,"QueryRate":1}}]}`,
	} {
		if _, err := ParseSweepRequest([]byte(body)); err == nil {
			t.Errorf("%s: want error, got success", name)
		}
	}

	// The unknown-policy message lists the registry, like the CLI.
	_, err = ParseSweepRequest([]byte(`{"specs":[{"Name":"p","Policy":"Nope","Scale":"tiny"}]}`))
	if err == nil || !strings.Contains(err.Error(), "L2BM") {
		t.Errorf("unknown-policy error should list the registry, got %v", err)
	}

	// Spec index is named so multi-point submissions pinpoint the bad one.
	_, err = ParseSweepRequest([]byte(`{"specs":[
		{"Name":"p0","Policy":"DT","Scale":"tiny"},
		{"Name":"p1","Policy":"DT","Scale":"tiny","TCPLoad":2}]}`))
	if err == nil || !strings.Contains(err.Error(), "spec 1") {
		t.Errorf("validation error should name the failing spec, got %v", err)
	}
}

func TestSweepID(t *testing.T) {
	body := `{"name":"n","specs":[{"Name":"p0","Policy":"DT","Scale":"tiny","TCPLoad":0.4}]}`
	a, err := ParseSweepRequest([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSweepRequest([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if a.SweepID() != b.SweepID() {
		t.Error("equal requests got different sweep IDs")
	}
	c := *a
	c.Specs = append([]HybridSpec{}, a.Specs...)
	c.Specs[0].TCPLoad = 0.5
	if c.SweepID() == a.SweepID() {
		t.Error("different specs got the same sweep ID")
	}
	if len(a.SweepID()) != 16 {
		t.Errorf("sweep ID %q is not 16 hex chars", a.SweepID())
	}
}

// TestMarshalResultsEnvelope: the canonical envelope splices exact
// json.Marshal bytes — MarshalResults over results and MarshalRawResults
// over their pre-marshaled bytes agree byte for byte.
func TestMarshalResultsEnvelope(t *testing.T) {
	results := []*Result{
		{Policy: "DT", TCPSlowdowns: []float64{1.5}},
		{Policy: "L2BM", RDMASlowdowns: []float64{1, 2}},
	}
	fresh, err := MarshalResults(results)
	if err != nil {
		t.Fatal(err)
	}
	raws := make([]json.RawMessage, len(results))
	for i, r := range results {
		if raws[i], err = json.Marshal(r); err != nil {
			t.Fatal(err)
		}
	}
	if cached := MarshalRawResults(raws); string(cached) != string(fresh) {
		t.Errorf("fresh and raw envelopes differ:\n%s\n%s", fresh, cached)
	}
	if !strings.HasPrefix(string(fresh), `{"points":[`) || !strings.HasSuffix(string(fresh), "]}\n") {
		t.Errorf("envelope shape wrong: %.60s", fresh)
	}
	var decoded struct {
		Points []json.RawMessage `json:"points"`
	}
	if err := json.Unmarshal(fresh, &decoded); err != nil {
		t.Fatalf("envelope is not valid JSON: %v", err)
	}
	if len(decoded.Points) != 2 {
		t.Errorf("envelope has %d points, want 2", len(decoded.Points))
	}
}
