// The sharded hybrid runner: the same data point as RunHybrid, executed on
// N psim shards. Everything that must agree across shard counts is either a
// pure function of the wiring (arrival keys), replicated per shard on
// identically-seeded engines (workload generators, fault processes), or run
// as a conductor barrier task (deadlock scans, the watchdog). Per-shard
// observability (FCT recorders, incast bookkeeping, flight recorders) is
// merged deterministically after the run, so results are byte-identical for
// every legal shard count.
package exp

import (
	"context"
	"fmt"
	"sort"

	"l2bm/internal/audit"
	"l2bm/internal/core"
	"l2bm/internal/dcqcn"
	"l2bm/internal/faults"
	"l2bm/internal/host"
	"l2bm/internal/metrics"
	"l2bm/internal/netdev"
	"l2bm/internal/pkt"
	"l2bm/internal/psim"
	"l2bm/internal/sim"
	"l2bm/internal/switchsim"
	"l2bm/internal/topo"
	"l2bm/internal/trace"
	"l2bm/internal/transport"
	"l2bm/internal/workload"
)

// Structured flow-ID tags, one per generator kind. Replicated generators
// mint IDs as pure functions of (tag, source/query, sequence), so replicas
// on different shards agree without a shared counter; distinct tags keep
// the ID spaces disjoint.
const (
	tagRDMA   byte = 1
	tagTCP    byte = 2
	tagIncast byte = 3
)

// runHybridSharded executes one hybrid data point across spec.Shards psim
// shards. The seed derivation deliberately matches the classic path and
// excludes the shard count: shard count is an execution strategy, not a
// workload parameter.
func runHybridSharded(ctx context.Context, spec HybridSpec) (*Result, error) {
	shards := spec.Shards
	policyName := spec.Policy
	factory := spec.PolicyFactory
	if factory == nil {
		name := spec.Policy
		factory = func() core.Policy { return NewPolicy(name) }
	} else if policyName == "" {
		policyName = factory().Name()
	}

	seed := seedFor(spec.Name, spec.SeedSalt,
		fmt.Sprintf("%v/%v/%v", spec.RDMALoad, spec.TCPLoad, spec.Scale))

	topoCfg := spec.Scale.Topo()
	if spec.TopoOverride != nil {
		spec.TopoOverride(&topoCfg)
	}
	if spec.Faults != nil {
		if topoCfg.DCQCN.LineRate == 0 {
			topoCfg.DCQCN = dcqcn.DefaultConfig(topoCfg.ServerRate)
		}
		topoCfg.DCQCN.GoBackN = true
	}

	part, err := topo.ComputePartition(topoCfg, shards)
	if err != nil {
		return nil, err
	}
	engines := make([]*sim.Engine, shards)
	for i := range engines {
		engines[i], err = newEngineFor(spec.Sched, &topoCfg, seed)
		if err != nil {
			return nil, err
		}
	}

	// Per-shard observability: one FCT recorder and one incast replica per
	// shard. Completions are receiver-side, so a flow started on the source
	// host's shard may complete on the destination's — the recorder merge
	// joins those orphans after the run.
	recs := make([]*metrics.FCTRecorder, shards)
	incastGens := make([]*workload.Incast, shards)
	incastIDs := make([]map[pkt.FlowID]bool, shards)
	for i := range recs {
		recs[i] = metrics.NewFCTRecorder()
		incastIDs[i] = make(map[pkt.FlowID]bool)
	}

	cl, err := topo.BuildSharded(engines, part, topoCfg, factory,
		func(shard int) host.CompletionHandler {
			rec := recs[shard]
			return func(id pkt.FlowID, at sim.Time) {
				rec.Completed(id, at)
				if g := incastGens[shard]; g != nil {
					g.OnFlowComplete(id, at)
				}
			}
		})
	if err != nil {
		return nil, err
	}
	if spec.Hooks != nil && spec.Hooks.PostBuild != nil {
		spec.Hooks.PostBuild(cl)
	}

	cond := psim.ForCluster(cl)
	defer cond.Close()

	// The auditor reads state across every shard, so like the detector and
	// watchdog it runs as a barrier task, never as one shard's engine event.
	var aud *audit.Auditor
	if spec.Audit != nil {
		aud = newAuditor(spec, cl)
		cond.AddTask(aud.Every(), func(now sim.Time) { aud.CheckOnce(now) })
	}

	// Fault injection: one replica per shard, all replaying the identical
	// plan (same named streams on identically-seeded engines). Each replica
	// applies carrier changes to its own liveness tables and touches only
	// the ports it owns.
	var injs []*faults.Injector
	var det *faults.DeadlockDetector
	var wd *faults.Watchdog
	if spec.Faults != nil {
		for s := 0; s < shards; s++ {
			s := s
			links, tiers := shardFaultLinks(cl, s)
			plan := spec.Faults.Plan
			if plan.LinkFilter == nil && plan.FlapRate > 0 {
				plan.LinkFilter = func(name string) bool {
					t := tiers[name]
					return t == topo.TierTorAgg || t == topo.TierAggCore
				}
			}
			inj, err := faults.NewInjector(engines[s], plan, links)
			if err != nil {
				return nil, err
			}
			inj.PortFilter = func(p *netdev.Port) bool { return p.Engine() == engines[s] }
			inj.Install()
			injs = append(injs, inj)
		}

		// Global observers read state across shards, so they run as barrier
		// tasks — at exact period multiples, when all shard clocks agree and
		// no events are in flight — never as one shard's engine events.
		det = faults.NewDeadlockDetector(engines[0], cl.AllSwitches())
		if spec.Faults.DetectorPeriod > 0 {
			det.Period = spec.Faults.DetectorPeriod
		}
		det.Break = spec.Faults.BreakDeadlocks
		cond.AddTask(det.Period, func(sim.Time) { det.ScanOnce() })

		wd = faults.NewWatchdog(engines[0], cl.DataReceived, cl.ResidentBytes)
		if spec.Faults.WatchdogWindow > 0 {
			wd.Window = spec.Faults.WatchdogWindow
		}
		wd.Prime()
		cond.AddTask(wd.Window, func(sim.Time) { wd.TickOnce() })
	}

	window := spec.Scale.Window()
	if spec.WindowOverride > 0 {
		window = spec.WindowOverride
	}

	// Rack split identical to the classic path.
	var rdmaHosts, tcpHosts, allHosts []int
	perRack := topoCfg.ServersPerToR
	for h := 0; h < cl.NumHosts(); h++ {
		allHosts = append(allHosts, h)
		if h%perRack < perRack/2 {
			rdmaHosts = append(rdmaHosts, h)
		} else {
			tcpHosts = append(tcpHosts, h)
		}
	}
	var forbid func(src, dst int) bool
	if spec.InterRackOnly {
		forbid = func(src, dst int) bool { return cl.ToROf(src) == cl.ToROf(dst) }
	}
	ownedBy := func(hosts []int, shard int) []int {
		var out []int
		for _, h := range hosts {
			if part.Host[h] == shard {
				out = append(out, h)
			}
		}
		return out
	}

	// Workload generators, replicated per shard. Poisson sources draw from
	// per-source streams, so installing each shard's owned subset launches
	// exactly the flows a single generator would have. The incast replica
	// runs everywhere in lockstep (same queries, same draws) and its
	// LaunchFilter restricts actual launches to owned responders.
	for s := 0; s < shards; s++ {
		s := s
		rec := recs[s]
		observe := func(f *transport.Flow) {
			rec.Started(f, cl.IdealFCT(f.Src, f.Dst, f.Size))
		}
		if spec.RDMALoad > 0 {
			if owned := ownedBy(rdmaHosts, s); len(owned) > 0 {
				g, err := workload.NewPoisson(engines[s], cl, workload.PoissonConfig{
					Sources:    owned,
					Dests:      allHosts,
					Load:       spec.RDMALoad,
					HostRate:   topoCfg.ServerRate,
					Sizes:      workload.WebSearchCDF(),
					Priority:   pkt.PrioLossless,
					Class:      pkt.ClassLossless,
					Window:     window,
					Observer:   observe,
					Forbid:     forbid,
					StreamName: "rdma",
					IDTag:      tagRDMA,
				})
				if err != nil {
					return nil, err
				}
				g.Install()
			}
		}
		if spec.TCPLoad > 0 {
			if owned := ownedBy(tcpHosts, s); len(owned) > 0 {
				g, err := workload.NewPoisson(engines[s], cl, workload.PoissonConfig{
					Sources:    owned,
					Dests:      allHosts,
					Load:       spec.TCPLoad,
					HostRate:   topoCfg.ServerRate,
					Sizes:      workload.WebSearchCDF(),
					Priority:   pkt.PrioLossy,
					Class:      pkt.ClassLossy,
					Window:     window,
					Observer:   observe,
					Forbid:     forbid,
					StreamName: "tcp",
					IDTag:      tagTCP,
				})
				if err != nil {
					return nil, err
				}
				g.Install()
			}
		}
		if spec.Incast != nil {
			fanout := spec.Incast.Fanout
			if fanout >= len(allHosts) {
				fanout = len(allHosts) - 1
			}
			ids := incastIDs[s]
			g, err := workload.NewIncast(engines[s], cl, workload.IncastConfig{
				Hosts:        allHosts,
				Fanout:       fanout,
				RequestBytes: spec.Incast.RequestBytes,
				QueryRate:    spec.Incast.QueryRate,
				Window:       window,
				Priority:     pkt.PrioLossless,
				Class:        pkt.ClassLossless,
				Observer: func(f *transport.Flow) {
					ids[f.ID] = true
					observe(f)
				},
				StreamName:   "incast",
				IDTag:        tagIncast,
				LaunchFilter: func(src int) bool { return part.Host[src] == s },
			})
			if err != nil {
				return nil, err
			}
			g.Install()
			incastGens[s] = g
		}
	}

	// Occupancy samplers: engine-driven ticks on each ToR's own shard (pure
	// shard-local reads, so no barrier needed).
	every := spec.OccupancySampleEvery
	if every <= 0 {
		every = 100 * sim.Microsecond
	}
	drain := spec.Scale.Drain()
	if spec.DrainOverride > 0 {
		drain = spec.DrainOverride
	}
	horizon := window + drain
	samplers := make([]*metrics.Sampler, len(cl.ToRs))
	for i, tor := range cl.ToRs {
		tor := tor
		samplers[i] = metrics.NewSampler(engines[part.ToR[i]], every, tor.Occupancy)
		samplers[i].Start(window)
	}

	// Flight recorder: one per shard (rings are single-threaded), merged
	// canonically after the run.
	var tracers []*trace.Recorder
	if spec.Trace != nil {
		tEvery := spec.Trace.SampleEvery
		if tEvery <= 0 {
			tEvery = every
		}
		tracers = make([]*trace.Recorder, shards)
		tss := make([]*trace.Sampler, shards)
		for s := 0; s < shards; s++ {
			tracers[s] = trace.NewRecorder(spec.Trace.Capacity)
			tss[s] = trace.NewSampler(engines[s], tracers[s], tEvery)
		}
		armSwitch := func(sw *switchsim.Switch, shard int) {
			sw.SetTracer(tracers[shard])
			tss[shard].AddSwitch(sw)
			if l, ok := sw.Policy().(*core.L2BM); ok {
				name := sw.Name()
				rec := tracers[shard]
				var scratch []core.QueueSample
				tss[shard].AddProbe(func(now sim.Time, _ *trace.Recorder) {
					scratch = l.PeekSamplesAppend(scratch[:0], sw)
					for _, qs := range scratch {
						rec.RecordWeight(trace.WeightSample{
							At: now, Switch: name, Port: qs.Port, Prio: qs.Prio,
							Tau: qs.Tau, Weight: qs.Weight, Threshold: qs.Threshold,
						})
					}
				})
			}
		}
		for i, sw := range cl.ToRs {
			armSwitch(sw, part.ToR[i])
		}
		for i, sw := range cl.Aggs {
			armSwitch(sw, part.Agg[i])
		}
		for i, sw := range cl.Cores {
			armSwitch(sw, part.Core[i])
		}
		for _, ts := range tss {
			ts.Start(window)
		}
	}

	if ctx.Done() != nil {
		// ctx.Err is safe for concurrent use, as SetInterrupt requires of
		// its poll (shard workers check it in parallel).
		cond.SetInterrupt(interruptPollEvents, func() bool { return ctx.Err() != nil })
	}

	cond.Run(horizon)

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rec := recs[0].Merge(recs[1:]...)
	res := &Result{
		Spec:          spec,
		Policy:        policyName,
		RDMASlowdowns: rec.Slowdowns(pkt.ClassLossless),
		TCPSlowdowns:  rec.Slowdowns(pkt.ClassLossy),
		LosslessGaps:  cl.LosslessGaps(),
		Events:        cond.Events(),
		EndTime:       cond.Now(),
	}
	if tracers != nil {
		res.Trace = trace.Merge(tracers...)
	}
	res.FlowsStarted, res.FlowsCompleted = rec.Counts()
	res.Incomplete = rec.IncompleteRecords()
	res.TruncatedFlows = len(res.Incomplete)

	if spec.Incast != nil {
		allIncast := make(map[pkt.FlowID]bool)
		for _, m := range incastIDs {
			for id := range m {
				allIncast[id] = true
			}
		}
		for _, fr := range rec.Records(pkt.ClassLossless) {
			if allIncast[fr.Flow.ID] {
				res.IncastSlowdowns = append(res.IncastSlowdowns, fr.Slowdown())
			}
		}
		sort.Float64s(res.IncastSlowdowns)
		res.QueryDelays = workload.MergeCompletedResponseTimes(incastGens...)
	}

	for _, s := range samplers {
		res.TorOccupancy = append(res.TorOccupancy, s.Samples)
	}

	all := topo.SwitchStats(cl.AllSwitches())
	res.PauseFrames = all.PauseFramesSent
	res.LossyDrops = all.LossyDropsIngress + all.LossyDropsEgress
	res.LossyEvictions = all.LossyEvictions
	res.LosslessViolations = all.LosslessViolations
	res.ECNMarked = all.ECNMarked
	res.PFCReissues = all.PFCReissues
	res.ToRPauseFrames = topo.SwitchStats(cl.ToRs).PauseFramesSent
	res.AggPauseFrames = topo.SwitchStats(cl.Aggs).PauseFramesSent
	res.CorePauseFrames = topo.SwitchStats(cl.Cores).PauseFramesSent

	res.RecoveryBytes = cl.RecoveryBytes()
	res.RDMANACKs, res.RDMATimeouts = cl.RDMARecoveryStats()
	for _, pl := range cl.Pools {
		if pl != nil {
			res.PoolGets += pl.Stats().Gets
			res.PoolLive += pl.Live()
		}
	}
	for _, sw := range cl.AllSwitches() {
		if err := sw.CheckInvariants(); err != nil {
			res.AuditErrors = append(res.AuditErrors, err.Error())
		}
	}
	if aud != nil {
		finishAudit(aud, res)
	}
	if len(injs) > 0 {
		// Process counters (flaps, blackouts) replay identically on every
		// replica — read replica 0. Port-scoped counters (corruption, lost
		// PFC) only count owned ports — sum them. CarrierDrops reads every
		// port's counters, identical from any replica after the run.
		res.LinkDownEvents = injs[0].Stats().LinkDownEvents
		for _, inj := range injs {
			s := inj.Stats()
			res.CorruptedFrames += s.CorruptedFrames
			res.LostPFC += s.LostPFC
		}
		res.CarrierDrops = injs[0].CarrierDrops()
	}
	if det != nil {
		ds := det.Stats()
		res.DeadlockScans = ds.Scans
		res.DeadlockCycles = ds.CyclesDetected
		res.DeadlocksBroken = ds.CyclesBroken
	}
	if wd != nil {
		res.WatchdogStalls = wd.Stalls
	}
	return res, nil
}

// shardFaultLinks adapts the link registry to one shard's injector replica:
// SetLive mutates only that shard's liveness replica and owned ports.
func shardFaultLinks(cl *topo.Cluster, shard int) ([]faults.Link, map[string]topo.LinkTier) {
	links := cl.Links()
	out := make([]faults.Link, 0, len(links))
	tiers := make(map[string]topo.LinkTier, len(links))
	for _, l := range links {
		idx := l.Index
		out = append(out, faults.Link{
			Name: l.Name, A: l.A, B: l.B, AName: l.AName, BName: l.BName,
			SetLive: func(up bool) { cl.SetLinkStateOn(shard, idx, up) },
		})
		tiers[l.Name] = l.Tier
	}
	return out, tiers
}
