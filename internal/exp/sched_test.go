package exp

import (
	"testing"

	"l2bm/internal/faults"
	"l2bm/internal/sim"
)

// runSched executes one spec under the given scheduler backend and returns
// its full deterministic fingerprint plus the executed-event count (which,
// unlike the shard suite, must ALSO match across backends: the wheel
// re-orders nothing, it only re-homes pending events).
func runSched(t *testing.T, spec HybridSpec, sched string) (string, uint64, *Result) {
	t.Helper()
	spec.Sched = sched
	res, err := RunHybrid(spec)
	if err != nil {
		t.Fatalf("sched=%s: %v", sched, err)
	}
	if res.FlowsCompleted == 0 {
		t.Fatalf("sched=%s: no flows completed", sched)
	}
	return shardFingerprint(res), res.Events, res
}

// schedSpecs are figure-representative data points: the Fig. 3 motivation
// setup (DT, inter-rack Poisson), a Fig. 7 sweep cell (L2BM, hybrid load +
// incast) and the Fig. 8 load point (heaviest TCP). Tiny scale keeps the
// suite CI-sized; the workloads still cross every subsystem (PFC, ECN,
// DCQCN, DCTCP, incast barriers).
func schedSpecs() []HybridSpec {
	return []HybridSpec{
		{Name: "sched-det-fig3", Policy: "DT", Scale: ScaleTiny,
			RDMALoad: 0.4, TCPLoad: 0.4, InterRackOnly: true},
		{Name: "sched-det-fig7", Policy: "L2BM", Scale: ScaleTiny,
			RDMALoad: 0.4, TCPLoad: 0.5,
			Incast: &IncastSpec{Fanout: 4, RequestBytes: 200_000, QueryRate: 2000}},
		{Name: "sched-det-fig8", Policy: "ABM", Scale: ScaleTiny,
			RDMALoad: 0.4, TCPLoad: 0.8},
	}
}

// TestSchedBackendIdentity is the timer wheel's acceptance test at the
// experiment layer: for figure-representative points, the wheel and heap
// backends must produce byte-identical results — every observable,
// including exported trace files and the executed-event count.
func TestSchedBackendIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism suite")
	}
	for _, spec := range schedSpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			spec.Trace = &TraceSpec{SampleEvery: 100 * sim.Microsecond, Capacity: 1 << 17}

			heapFP, heapEvents, heapRes := runSched(t, spec, SchedHeap)
			wheelFP, wheelEvents, wheelRes := runSched(t, spec, SchedWheel)

			if wheelFP != heapFP {
				t.Errorf("wheel diverged from heap:\n--- heap ---\n%.2000s\n--- wheel ---\n%.2000s",
					heapFP, wheelFP)
			}
			if wheelEvents != heapEvents {
				t.Errorf("executed events: heap %d vs wheel %d", heapEvents, wheelEvents)
			}

			heapDir, wheelDir := t.TempDir(), t.TempDir()
			if _, err := heapRes.WriteTrace(heapDir, "det"); err != nil {
				t.Fatalf("heap WriteTrace: %v", err)
			}
			if _, err := wheelRes.WriteTrace(wheelDir, "det"); err != nil {
				t.Fatalf("wheel WriteTrace: %v", err)
			}
			compareTraceDirs(t, heapDir, wheelDir, 0)
		})
	}
}

// TestSchedBackendIdentityUnderFaults re-checks wheel-vs-heap identity with
// the fault-injection subsystem armed: flap timers, corruption draws and
// the PFC watchdog all schedule through the same API and must replay
// identically on both backends.
func TestSchedBackendIdentityUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism suite")
	}
	spec := shardSpec(0)
	spec.Name = "sched-det-faults"
	spec.Faults = &FaultSpec{
		Plan: faults.Plan{
			FlapRate:     40,
			FlapDowntime: 200 * sim.Microsecond,
			FlapWindow:   2 * sim.Millisecond,
			BER:          2e-9,
			PFCLossRate:  0.02,
		},
	}
	heapFP, heapEvents, heapRes := runSched(t, spec, SchedHeap)
	wheelFP, wheelEvents, _ := runSched(t, spec, SchedWheel)
	if heapRes.LinkDownEvents == 0 {
		t.Fatal("fault plan injected nothing")
	}
	if wheelFP != heapFP {
		t.Errorf("faulted wheel diverged from heap:\n--- heap ---\n%.2000s\n--- wheel ---\n%.2000s",
			heapFP, wheelFP)
	}
	if wheelEvents != heapEvents {
		t.Errorf("executed events: heap %d vs wheel %d", heapEvents, wheelEvents)
	}
}

// TestSchedBackendIdentityAcrossShards crosses the two invariance axes:
// {heap, wheel} × {1, 2, 4} shards must all land on one fingerprint. The
// wheel sits under the sharded conductor's conservative-time peeks
// (NextEventTime) and cross-shard arrival imports, so this pins the
// bucket/heap invariant where it is hardest to keep.
func TestSchedBackendIdentityAcrossShards(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism suite")
	}
	var ref string
	for _, sched := range []string{SchedHeap, SchedWheel} {
		for _, shards := range []int{1, 2, 4} {
			spec := shardSpec(shards)
			spec.Name = "sched-det-shards"
			fp, _, _ := runSched(t, spec, sched)
			if ref == "" {
				ref = fp
				continue
			}
			if fp != ref {
				t.Errorf("sched=%s shards=%d diverged from heap shards=1:\n--- ref ---\n%.2000s\n--- got ---\n%.2000s",
					sched, shards, ref, fp)
			}
		}
	}
}
