package netdev

import "l2bm/internal/pkt"

// ring is a growable FIFO of packets backed by a circular buffer. It avoids
// the per-element allocation of container/list on the simulator's hottest
// path.
type ring struct {
	buf  []*pkt.Packet
	head int
	n    int
}

func (r *ring) len() int { return r.n }

func (r *ring) push(p *pkt.Packet) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = p
	r.n++
}

func (r *ring) pop() *pkt.Packet {
	if r.n == 0 {
		return nil
	}
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return p
}

// popTail removes and returns the most recently pushed packet, or nil when
// empty. The MMU's preemptive eviction path (Occamy) uses it: the tail is
// the packet admitted last, under the stalest threshold.
func (r *ring) popTail() *pkt.Packet {
	if r.n == 0 {
		return nil
	}
	idx := (r.head + r.n - 1) % len(r.buf)
	p := r.buf[idx]
	r.buf[idx] = nil
	r.n--
	return p
}

func (r *ring) peek() *pkt.Packet {
	if r.n == 0 {
		return nil
	}
	return r.buf[r.head]
}

func (r *ring) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 16
	}
	buf := make([]*pkt.Packet, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = buf
	r.head = 0
}
