package netdev

import (
	"testing"
	"testing/quick"

	"l2bm/internal/pkt"
)

func TestRingFIFO(t *testing.T) {
	var r ring
	if r.pop() != nil || r.peek() != nil || r.len() != 0 {
		t.Fatal("empty ring misbehaves")
	}
	ps := make([]*pkt.Packet, 100)
	for i := range ps {
		ps[i] = pkt.NewData(pkt.FlowID(i), 0, 1, 0, pkt.ClassLossy, int64(i), 10)
		r.push(ps[i])
	}
	if r.len() != 100 {
		t.Fatalf("len = %d, want 100", r.len())
	}
	if r.peek() != ps[0] {
		t.Fatal("peek should return the oldest element")
	}
	for i := range ps {
		if got := r.pop(); got != ps[i] {
			t.Fatalf("pop %d returned wrong packet", i)
		}
	}
	if r.len() != 0 {
		t.Fatal("ring should be empty")
	}
}

// Property: any interleaving of pushes and pops preserves FIFO order across
// growth boundaries.
func TestRingInterleavedProperty(t *testing.T) {
	f := func(ops []bool) bool {
		var r ring
		var model []*pkt.Packet
		seq := int64(0)
		for _, push := range ops {
			if push || len(model) == 0 {
				p := pkt.NewData(1, 0, 1, 0, pkt.ClassLossy, seq, 1)
				seq++
				r.push(p)
				model = append(model, p)
			} else {
				got := r.pop()
				want := model[0]
				model = model[1:]
				if got != want {
					return false
				}
			}
		}
		for len(model) > 0 {
			if r.pop() != model[0] {
				return false
			}
			model = model[1:]
		}
		return r.len() == 0 && r.pop() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
