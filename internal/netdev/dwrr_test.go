package netdev

import (
	"testing"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
)

func TestDWRRByteFairness(t *testing.T) {
	// Priority A sends 250-byte packets, priority B 1000-byte packets.
	// Packet RR would give B 4x the bytes; DWRR must equalize bytes.
	eng := sim.NewEngine(1)
	a := &captureNode{name: "a", eng: eng}
	b := &captureNode{name: "b", eng: eng}
	pa, _ := Connect(eng, a, b, 25e9, 0)
	pa.EnableDWRR(1500)

	for i := 0; i < 200; i++ {
		pa.Enqueue(data(pkt.PrioLossless, 250-pkt.HeaderBytes))
		if i < 50 {
			pa.Enqueue(data(pkt.PrioLossy, 1000-pkt.HeaderBytes))
		}
	}
	// Run long enough to transmit ~half the backlog, then compare bytes.
	eng.Run(sim.TxTime(60_000, 25e9))

	var bytesA, bytesB int
	for _, p := range b.got {
		if p.Priority == pkt.PrioLossless {
			bytesA += p.Size
		} else {
			bytesB += p.Size
		}
	}
	if bytesA == 0 || bytesB == 0 {
		t.Fatal("one class starved")
	}
	ratio := float64(bytesA) / float64(bytesB)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("byte ratio A/B = %v, want ≈1 under DWRR", ratio)
	}
}

func TestDWRRDeliversEverything(t *testing.T) {
	eng := sim.NewEngine(1)
	a := &captureNode{name: "a", eng: eng}
	b := &captureNode{name: "b", eng: eng}
	pa, _ := Connect(eng, a, b, 25e9, 0)
	pa.EnableDWRR(500)

	total := 0
	for i := 0; i < 30; i++ {
		pa.Enqueue(data(pkt.PrioLossless, 100+i*17))
		pa.Enqueue(data(pkt.PrioLossy, 900-i*13))
		total += 2
	}
	eng.RunAll()
	if len(b.got) != total {
		t.Errorf("delivered %d/%d under DWRR", len(b.got), total)
	}
	if pa.TotalBacklog() != 0 {
		t.Error("backlog left behind")
	}
}

func TestDWRRHonorsPFCPause(t *testing.T) {
	eng := sim.NewEngine(1)
	a := &captureNode{name: "a", eng: eng}
	b := &captureNode{name: "b", eng: eng}
	pa, pb := Connect(eng, a, b, 25e9, 0)
	pb.EnableDWRR(1500)

	pa.SendPFC(pkt.PrioLossless, true)
	eng.RunAll()
	pb.Enqueue(data(pkt.PrioLossless, 500))
	pb.Enqueue(data(pkt.PrioLossy, 500))
	eng.RunAll()

	if pb.QueuePackets(pkt.PrioLossless) != 1 {
		t.Error("paused priority transmitted under DWRR")
	}
	if pb.QueuePackets(pkt.PrioLossy) != 0 {
		t.Error("unpaused priority starved under DWRR")
	}
}

func TestDWRRToggleBackToRR(t *testing.T) {
	eng := sim.NewEngine(1)
	a := &captureNode{name: "a", eng: eng}
	b := &captureNode{name: "b", eng: eng}
	pa, _ := Connect(eng, a, b, 25e9, 0)
	pa.EnableDWRR(1000)
	pa.EnableDWRR(0) // back to RR
	pa.Enqueue(data(pkt.PrioLossy, 100))
	eng.RunAll()
	if len(b.got) != 1 {
		t.Error("packet lost after toggling scheduler")
	}
}

func TestDWRRValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	a := &captureNode{name: "a", eng: eng}
	b := &captureNode{name: "b", eng: eng}
	pa, _ := Connect(eng, a, b, 25e9, 0)
	defer func() {
		if recover() == nil {
			t.Error("negative quantum should panic")
		}
	}()
	pa.EnableDWRR(-1)
}
