// Cross-shard mailboxes: when a link's two ports live on different engines
// (shards), frames cannot be scheduled on the peer's event queue directly —
// the peer's shard may be executing concurrently. Instead the transmitting
// port appends each frame, with its precomputed arrival time and ordering
// key, to an Outbox that the epoch conductor drains at the next barrier,
// when every shard is parked. This is sound because the conductor's epoch
// length never exceeds the minimum cross-shard propagation delay: a frame
// sent during an epoch always arrives strictly after the epoch's bound, so
// delivering it at the barrier is never late.
package netdev

import (
	"l2bm/internal/sim"

	"l2bm/internal/pkt"
)

// Xmsg is one cross-shard frame in flight: the absolute arrival time at
// the peer, the wiring-derived ordering key, and the frame itself (owned
// by the mailbox between Export and Import).
type Xmsg struct {
	At  sim.Time
	Key uint64
	Pkt *pkt.Packet
}

// Outbox is the single-producer mailbox of one direction of a cross-shard
// link. The transmitting shard appends during its epoch (it is the only
// writer); the conductor drains between epochs (when no shard is running),
// so no locking is needed — the barrier's happens-before edge publishes
// the appends.
type Outbox struct {
	src *Port // transmitting port (owns the mailbox)
	dst *Port // receiving port, on the other shard's engine

	msgs []Xmsg

	// Delivered counts frames drained over the run (observability).
	Delivered uint64
}

// add enqueues one frame; called by src.finishTransmit on the
// transmitting shard's goroutine.
func (o *Outbox) add(at sim.Time, key uint64, q *pkt.Packet) {
	o.msgs = append(o.msgs, Xmsg{At: at, Key: key, Pkt: q})
}

// Len returns the number of frames waiting to be drained.
func (o *Outbox) Len() int { return len(o.msgs) }

// Dst returns the receiving port.
func (o *Outbox) Dst() *Port { return o.dst }

// Drain imports every waiting frame into the receiving port's pool and
// schedules its arrival on the receiving engine under its wiring-derived
// key, then empties the mailbox. It returns the number of frames
// delivered. Call only at a barrier: the receiving engine must not be
// running, and every arrival time must still be in its future (guaranteed
// by the lookahead bound). Drain order across outboxes is immaterial —
// the (timestamp, key) total order of the receiving heap, not insertion
// order, decides dispatch — but the conductor still iterates outboxes in
// wiring order so any failure is reproducible.
func (o *Outbox) Drain() int {
	n := len(o.msgs)
	for i := range o.msgs {
		m := o.msgs[i]
		o.dst.pool.Import(m.Pkt)
		o.dst.eng.ScheduleArrivalAt(m.At, o.dst.onArrive, m.Pkt, m.Key)
		o.msgs[i] = Xmsg{} // drop the reference; the event record owns it now
	}
	o.msgs = o.msgs[:0]
	o.Delivered += uint64(n)
	return n
}
