// Package netdev models the physical layer of the simulated fabric: full-
// duplex links with serialization and propagation delay, and ports with
// eight 802.1p priority queues, round-robin scheduling, strict-priority
// control frames and per-priority PFC pause state.
//
// Both switch ports and host NICs are netdev.Ports; the owning Node decides
// what happens when a packet arrives.
package netdev

import (
	"fmt"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
)

// Node receives packets from its ports. Switches and hosts implement it.
type Node interface {
	// HandleArrival is invoked once a packet has fully arrived (after
	// serialization and propagation) on port, which belongs to this node.
	// PFC frames are not delivered here; they act on the port itself.
	HandleArrival(p *pkt.Packet, port *Port)
	// Name identifies the node in logs and test failures.
	Name() string
}

// PortStats counts per-port activity for the metrics layer.
type PortStats struct {
	TxPackets   uint64
	TxBytes     uint64
	RxPackets   uint64
	RxBytes     uint64
	PFCSent     uint64 // pause frames sent (XOFF only, per the paper's metric)
	PFCResumes  uint64 // resume frames sent
	PFCReceived uint64 // pause frames received
	// CarrierDrops counts frames lost because they arrived while the
	// link carrier was down (fault injection).
	CarrierDrops uint64
	// FaultDrops counts frames discarded by the RxFault hook (bit-error
	// corruption or injected control-frame loss).
	FaultDrops uint64
	// CarrierDropDataBytes and FaultDropDataBytes restrict the two drop
	// counters above to data frames, in wire bytes — the port-layer kill
	// sites of the flow-byte conservation ledger (control frames are not
	// part of the ledger).
	CarrierDropDataBytes uint64
	FaultDropDataBytes   uint64
	// ForcedResumes counts PFC pause states cleared by ForceResume (the
	// deadlock detector's documented degraded mode).
	ForcedResumes uint64
}

// FaultHook inspects a frame that has fully arrived on a port, before it is
// delivered to the owner (or, for PFC, applied to the pause state). Return
// false to discard the frame as lost or corrupted. The fault-injection layer
// installs these; a nil hook delivers everything.
type FaultHook func(p *pkt.Packet) bool

// Port is one side of a full-duplex link: it transmits toward its peer and
// receives what the peer transmits. Transmission is packet-granular
// round-robin across backlogged priorities, with control frames (PFC)
// preempting data, matching how commodity switches schedule pause frames
// ahead of payload.
type Port struct {
	eng   *sim.Engine
	owner Node
	peer  *Port
	// class is the link's immutable speed descriptor. The topology layer
	// builds ONE LinkClass per tier (host↔ToR, ToR↔agg, agg↔core) and
	// shares it across every cable of that tier (ConnectClass), so a
	// 100k-host fabric stores each (rate, delay) pair once, not per port.
	class *LinkClass

	// ID is the port's index within its owner (set by the owner).
	ID int

	queues [pkt.NumPriorities]ring
	qbytes [pkt.NumPriorities]int
	ctrl   ring

	paused      [pkt.NumPriorities]bool
	pausedSince [pkt.NumPriorities]sim.Time
	cumPaused   [pkt.NumPriorities]sim.Duration

	busy bool
	rr   int

	// down is true while the link carrier is down on this side: frames
	// arriving here are lost (the cable is dead). Transmission continues —
	// the egress buffer drains into the void — so MMU accounting stays
	// exact while the fabric loses the frames, matching how a real switch
	// keeps serializing into a dark fiber until the MAC reports loss of
	// signal. Zero value (false) means the link is up.
	down bool

	// quantum > 0 selects DWRR scheduling; deficit carries per-priority
	// byte credit and granted marks queues already credited this turn.
	quantum int
	deficit [pkt.NumPriorities]int
	granted [pkt.NumPriorities]bool

	// pool recycles consumed frames (PFC application, carrier/fault drops)
	// and sources PFC frames. Nil disables pooling: SendPFC heap-allocates
	// and dead frames are left to the GC, exactly the pre-pool behaviour.
	pool *pkt.Pool

	// key is the port's wiring-order arrival key (1-based; 0 = unkeyed).
	// When set, every frame this port transmits is delivered with the
	// mode-invariant ordering key ArrivalKeyBit | key<<43 | txSeq instead
	// of the engine's scheduling sequence, so equal-timestamp delivery
	// order depends only on the wiring — not on which engine scheduled the
	// arrival. txSeq counts this port's transmissions.
	key   uint64
	txSeq uint64

	// outbox, when set, diverts this port's transmissions into a
	// cross-shard mailbox instead of scheduling the arrival on the peer's
	// engine directly (the peer lives on a different shard). The epoch
	// conductor drains it at every barrier.
	outbox *Outbox

	// onTxDone and onArrive are the port's two hot-path event bodies,
	// bound ONCE here so the per-packet schedule calls allocate nothing:
	// the packet in flight rides in the event record's arg slot (it is its
	// own in-flight record — serialization already finished when onTxDone
	// fires, and propagation delay is the link constant prop).
	onTxDone sim.ArgCallback
	onArrive sim.ArgCallback

	stats PortStats

	// OnDequeue, when set, fires as a packet finishes serializing out of
	// this port (the moment its buffer is released). Switches use it to
	// decrement MMU counters.
	OnDequeue func(p *pkt.Packet)
	// OnPFC, when set, fires when a PFC frame from the peer takes effect
	// on this port.
	OnPFC func(prio int, paused bool)
	// OnPauseTransition, when set, fires exactly when this port's transmit
	// pause state for prio actually changes (redundant XOFFs on an
	// already-paused priority do not fire it). The trace layer uses it to
	// record transmitter-view pause episodes; it must not mutate the
	// simulation.
	OnPauseTransition func(prio int, paused bool)
	// RxFault, when set, vets every fully arrived frame; returning false
	// drops it (fault injection: corruption, lost PFC).
	RxFault FaultHook
}

// LinkClass is the immutable speed descriptor of a cable: line rate in
// bits/s and one-way propagation delay. Cables of the same tier share one
// descriptor (flyweight) — never mutate a LinkClass after wiring a link
// on it.
type LinkClass struct {
	Rate int64
	Prop sim.Duration
}

// Connect wires a full-duplex link between nodes a and b with the given line
// rate (bits/s) and one-way propagation delay, returning the port on each
// side. Both directions share rate and delay, like a real cable.
func Connect(eng *sim.Engine, a, b Node, rateBps int64, prop sim.Duration) (*Port, *Port) {
	return ConnectOn(eng, eng, a, b, rateBps, prop)
}

// ConnectOn wires a full-duplex link whose two sides live on different
// engines (shards): a's port schedules its local events (serialization,
// receive processing) on engA, b's on engB. The link gets a private
// LinkClass; bulk wiring should share one per tier via ConnectClass.
func ConnectOn(engA, engB *sim.Engine, a, b Node, rateBps int64, prop sim.Duration) (*Port, *Port) {
	return ConnectClass(engA, engB, a, b, &LinkClass{Rate: rateBps, Prop: prop})
}

// ConnectClass is ConnectOn with an explicit shared link descriptor: every
// cable of a tier points at the same immutable LinkClass. When the engines
// differ, each direction gets a cross-shard Outbox — transmissions enqueue
// there and the epoch conductor delivers them on the peer's engine at the
// next barrier, which is sound because the link's propagation delay is at
// least the conductor's lookahead. Cross-engine ports MUST also be given
// arrival keys (SetArrivalKey) before traffic flows; same-engine wiring
// degrades to exactly Connect.
func ConnectClass(engA, engB *sim.Engine, a, b Node, class *LinkClass) (*Port, *Port) {
	if class == nil || class.Rate <= 0 {
		panic("netdev: link rate must be positive")
	}
	pa := &Port{eng: engA, owner: a, class: class}
	pb := &Port{eng: engB, owner: b, class: class}
	pa.peer, pb.peer = pb, pa
	pa.bindHandlers()
	pb.bindHandlers()
	if engA != engB {
		if class.Prop <= 0 {
			panic("netdev: cross-engine links need positive propagation delay (the conservative lookahead)")
		}
		pa.outbox = &Outbox{src: pa, dst: pb}
		pb.outbox = &Outbox{src: pb, dst: pa}
	}
	return pa, pb
}

// SetArrivalKey assigns the port's wiring-order arrival key (1-based; see
// the key field). Keys must be unique across the fabric and identical
// between the sequential and sharded builds of the same topology — the
// topo layer derives them from global wiring order. Panics on zero or on
// overflowing the 20-bit key space.
func (p *Port) SetArrivalKey(key uint64) {
	if key == 0 || key >= 1<<20 {
		panic(fmt.Sprintf("netdev: arrival key %d out of range [1, 2^20)", key))
	}
	p.key = key
}

// ArrivalKey returns the port's wiring-order key (0 = unkeyed).
func (p *Port) ArrivalKey() uint64 { return p.key }

// Engine returns the engine this port's local events run on.
func (p *Port) Engine() *sim.Engine { return p.eng }

// Outbox returns the port's cross-shard mailbox, or nil for a same-engine
// port. The conductor collects these at wiring time and drains them at
// every barrier.
func (p *Port) Outbox() *Outbox { return p.outbox }

// bindHandlers builds the port's two pre-bound event bodies exactly once.
// Each wrapper closes over the port only — the per-packet state arrives via
// the event record's arg slot — so the simulator allocates two closures per
// PORT at wiring time instead of two per PACKET per hop at run time.
func (p *Port) bindHandlers() {
	p.onTxDone = func(arg any) { p.finishTransmit(arg.(*pkt.Packet)) }
	p.onArrive = func(arg any) { p.receive(arg.(*pkt.Packet)) }
}

// SetPool installs the packet pool this port recycles consumed frames into
// (PFC application, carrier/fault drops) and sources its PFC frames from.
// A nil pool restores the pre-pool heap-allocating behaviour.
func (p *Port) SetPool(pl *pkt.Pool) { p.pool = pl }

// Owner returns the node this port belongs to.
func (p *Port) Owner() Node { return p.owner }

// Peer returns the port on the other side of the link.
func (p *Port) Peer() *Port { return p.peer }

// Rate returns the line rate in bits per second.
func (p *Port) Rate() int64 { return p.class.Rate }

// PropDelay returns the one-way propagation delay of the link.
func (p *Port) PropDelay() sim.Duration { return p.class.Prop }

// Stats returns a snapshot of the port counters.
func (p *Port) Stats() PortStats { return p.stats }

// QueueBytes returns the bytes currently backlogged in priority queue prio.
func (p *Port) QueueBytes(prio int) int { return p.qbytes[prio] }

// QueuePackets returns the packet count backlogged in priority queue prio.
func (p *Port) QueuePackets(prio int) int { return p.queues[prio].len() }

// TotalBacklog returns the bytes backlogged across all data priorities.
func (p *Port) TotalBacklog() int {
	total := 0
	for _, b := range p.qbytes {
		total += b
	}
	return total
}

// Paused reports whether transmission of prio is paused by peer PFC.
func (p *Port) Paused(prio int) bool { return p.paused[prio] }

// PausedSince returns when the current pause of prio began; meaningful only
// while Paused(prio) is true.
func (p *Port) PausedSince(prio int) sim.Time { return p.pausedSince[prio] }

// Up reports whether the link carrier is up on this side.
func (p *Port) Up() bool { return !p.down }

// SetCarrier raises or cuts the link carrier on this side. While down,
// frames arriving here are lost (counted in CarrierDrops). The fault layer
// sets both sides of a link together, like a real cable cut.
func (p *Port) SetCarrier(up bool) { p.down = !up }

// ForceResume clears a PFC pause on prio without a resume frame from the
// peer — the deadlock detector's cycle-breaking action. It reports whether
// a pause was actually cleared. This is a documented degraded mode: the
// downstream switch may be pushed into headroom (or, exhausted, into a
// lossless violation), which the stats record.
func (p *Port) ForceResume(prio int) bool {
	if !p.paused[prio] {
		return false
	}
	p.paused[prio] = false
	p.cumPaused[prio] += p.eng.Now() - p.pausedSince[prio]
	p.stats.ForcedResumes++
	if p.OnPauseTransition != nil {
		p.OnPauseTransition(prio, false)
	}
	p.tryTransmit()
	return true
}

// CumPausedTime returns the total simulated time priority prio has spent
// paused, including the current pause interval if one is in progress. The
// L2BM sojourn module uses this to exclude PFC stalls from its congestion
// estimate (paper §III-D).
func (p *Port) CumPausedTime(prio int) sim.Duration {
	total := p.cumPaused[prio]
	if p.paused[prio] {
		total += p.eng.Now() - p.pausedSince[prio]
	}
	return total
}

// backloggedPriorities counts data priorities with queued packets that are
// not paused — the set competing for the line in round-robin.
func (p *Port) backloggedPriorities() int {
	n := 0
	for prio := 0; prio < pkt.NumPriorities; prio++ {
		if p.queues[prio].len() > 0 && !p.paused[prio] {
			n++
		}
	}
	return n
}

// DrainRate estimates the service rate (bits/s) priority prio currently
// receives: the full line rate divided among the backlogged, unpaused data
// priorities sharing it round-robin. An idle or sole-backlogged priority
// gets the full rate; a **paused** priority gets 0 — it receives no service
// at all until the peer's XON arrives. (Reporting a rate/(n+1) share for a
// paused queue was a bug: it made Algorithm 1's Q_out/μ expected-drain term
// finite for queues that were not draining, underestimating τ exactly when
// congestion was worst. Callers that need a post-resume estimate should fall
// back to Rate() explicitly — see core.sojournQueue.onEnqueue.)
func (p *Port) DrainRate(prio int) int64 {
	if p.paused[prio] {
		return 0
	}
	n := p.backloggedPriorities()
	if n == 0 || (p.queues[prio].len() > 0 && n == 1) {
		return p.class.Rate
	}
	if p.queues[prio].len() == 0 {
		// Joining packet would add one more competitor.
		n++
	}
	return p.class.Rate / int64(n)
}

// Enqueue places a data/ACK/CNP packet on its priority queue and starts the
// transmitter if idle.
func (p *Port) Enqueue(q *pkt.Packet) {
	if q.Kind == pkt.KindPFC {
		panic("netdev: PFC frames go through SendPFC")
	}
	p.queues[q.Priority].push(q)
	p.qbytes[q.Priority] += q.Size
	p.tryTransmit()
}

// EvictTail removes and returns the newest waiting packet of priority prio,
// or nil when that queue is empty. The packet currently being serialized is
// never in the queue (nextPacket pops it before scheduling the transmit),
// so eviction can never yank a frame off the wire. The caller — the switch
// MMU's preemption path — owns the returned packet and its accounting.
func (p *Port) EvictTail(prio int) *pkt.Packet {
	q := p.queues[prio].popTail()
	if q != nil {
		p.qbytes[prio] -= q.Size
	}
	return q
}

// SendPFC queues a pause (XOFF) or resume (XON) frame for prio toward the
// peer. Control frames preempt data scheduling.
func (p *Port) SendPFC(prio int, pause bool) {
	frame := p.pool.PFC(prio, pause)
	p.ctrl.push(frame)
	if pause {
		p.stats.PFCSent++
	} else {
		p.stats.PFCResumes++
	}
	p.tryTransmit()
}

// tryTransmit starts serializing the next eligible packet if the line is
// idle: control frames first, then round-robin over unpaused backlogged
// priorities.
func (p *Port) tryTransmit() {
	if p.busy {
		return
	}
	q := p.nextPacket()
	if q == nil {
		return
	}
	p.busy = true
	txDone := sim.TxTime(q.Size, p.class.Rate)
	p.eng.ScheduleArg(txDone, p.onTxDone, q)
}

// nextPacket dequeues the packet to transmit, or nil when nothing is
// eligible: control frames first, then the configured data scheduler.
func (p *Port) nextPacket() *pkt.Packet {
	if p.ctrl.len() > 0 {
		return p.ctrl.pop()
	}
	if p.quantum > 0 {
		return p.nextDWRR()
	}
	for i := 0; i < pkt.NumPriorities; i++ {
		prio := (p.rr + i) % pkt.NumPriorities
		if p.paused[prio] || p.queues[prio].len() == 0 {
			continue
		}
		q := p.queues[prio].pop()
		p.qbytes[prio] -= q.Size
		p.rr = (prio + 1) % pkt.NumPriorities
		return q
	}
	return nil
}

// EnableDWRR switches the port's data scheduler from packet-granular round
// robin to byte-fair Deficit Weighted Round Robin with the given quantum
// (bytes credited to each backlogged priority per round). Packet RR slightly
// favours small-packet classes; DWRR equalizes bytes. Pass 0 to return to
// packet RR.
func (p *Port) EnableDWRR(quantumBytes int) {
	if quantumBytes < 0 {
		panic("netdev: DWRR quantum must be non-negative")
	}
	p.quantum = quantumBytes
	for i := range p.deficit {
		p.deficit[i] = 0
		p.granted[i] = false
	}
}

// nextDWRR implements deficit round robin over the unpaused backlogged
// priorities. The transmitter takes one packet per call, so the scheduler
// stays parked on a queue while its deficit still covers the next head —
// that is what makes the schedule byte-fair rather than packet-fair.
func (p *Port) nextDWRR() *pkt.Packet {
	eligible := false
	for prio := 0; prio < pkt.NumPriorities; prio++ {
		if !p.paused[prio] && p.queues[prio].len() > 0 {
			eligible = true
		} else {
			p.deficit[prio] = 0 // idle/paused queues hold no credit
		}
	}
	if !eligible {
		return nil
	}
	for {
		prio := p.rr
		if p.paused[prio] || p.queues[prio].len() == 0 {
			p.deficit[prio] = 0
			p.granted[prio] = false
			p.rr = (p.rr + 1) % pkt.NumPriorities
			continue
		}
		// One quantum per turn; the queue then transmits while its
		// deficit covers the head packet.
		if !p.granted[prio] {
			p.deficit[prio] += p.quantum
			p.granted[prio] = true
		}
		head := p.queues[prio].peek()
		if p.deficit[prio] >= head.Size {
			q := p.queues[prio].pop()
			p.qbytes[prio] -= q.Size
			p.deficit[prio] -= q.Size
			if p.queues[prio].len() == 0 {
				p.deficit[prio] = 0
				p.granted[prio] = false
				p.rr = (p.rr + 1) % pkt.NumPriorities
			}
			return q
		}
		// Turn over: yield to the next priority. Deficits of backlogged
		// queues accumulate across turns, so the loop terminates.
		p.granted[prio] = false
		p.rr = (p.rr + 1) % pkt.NumPriorities
	}
}

// finishTransmit runs when the last bit of q hits the wire: release the
// buffer (OnDequeue), hand the packet to the peer after propagation, and
// keep the line busy with the next packet. Keyed ports deliver with the
// wiring-derived ordering key (mode-invariant tie-break); cross-shard
// ports additionally route through the outbox with an ownership transfer
// out of the local pool.
func (p *Port) finishTransmit(q *pkt.Packet) {
	p.stats.TxPackets++
	p.stats.TxBytes += uint64(q.Size)
	if q.Kind != pkt.KindPFC && p.OnDequeue != nil {
		p.OnDequeue(q)
	}
	switch {
	case p.outbox != nil:
		if p.key == 0 {
			panic(fmt.Sprintf("netdev: cross-engine port %s transmitting without an arrival key", p))
		}
		p.txSeq++
		p.pool.Export(q) // ownership moves to the mailbox, then the peer's pool
		p.outbox.add(p.eng.Now()+p.class.Prop, sim.ArrivalKeyBit|p.key<<43|p.txSeq, q)
	case p.key != 0:
		p.txSeq++
		p.eng.ScheduleArrivalAt(p.eng.Now()+p.class.Prop, p.peer.onArrive, q,
			sim.ArrivalKeyBit|p.key<<43|p.txSeq)
	default:
		p.eng.ScheduleArg(p.class.Prop, p.peer.onArrive, q)
	}
	p.busy = false
	p.tryTransmit()
}

// receive handles full arrival of a packet on this side of the link.
func (p *Port) receive(q *pkt.Packet) {
	if p.down {
		p.stats.CarrierDrops++
		if q.Kind == pkt.KindData {
			p.stats.CarrierDropDataBytes += uint64(q.Size)
		}
		p.pool.Put(q) // sink: the frame died on a dark fiber
		return
	}
	if p.RxFault != nil && !p.RxFault(q) {
		p.stats.FaultDrops++
		if q.Kind == pkt.KindData {
			p.stats.FaultDropDataBytes += uint64(q.Size)
		}
		p.pool.Put(q) // sink: corrupted or injected-loss frame
		return
	}
	p.stats.RxPackets++
	p.stats.RxBytes += uint64(q.Size)
	if q.Kind == pkt.KindPFC {
		p.applyPFC(q)
		p.pool.Put(q) // sink: PFC frames act on the port and stop here
		return
	}
	p.owner.HandleArrival(q, p)
}

// applyPFC pauses or resumes a priority of this port's transmit direction.
func (p *Port) applyPFC(q *pkt.Packet) {
	prio := q.PFCPriority
	if q.PFCPause {
		p.stats.PFCReceived++
		if !p.paused[prio] {
			p.paused[prio] = true
			p.pausedSince[prio] = p.eng.Now()
			if p.OnPauseTransition != nil {
				p.OnPauseTransition(prio, true)
			}
		}
	} else if p.paused[prio] {
		p.paused[prio] = false
		p.cumPaused[prio] += p.eng.Now() - p.pausedSince[prio]
		if p.OnPauseTransition != nil {
			p.OnPauseTransition(prio, false)
		}
		p.tryTransmit()
	}
	if p.OnPFC != nil {
		p.OnPFC(prio, q.PFCPause)
	}
}

// String identifies the port for diagnostics.
func (p *Port) String() string {
	return fmt.Sprintf("%s.port[%d]", p.owner.Name(), p.ID)
}
