package netdev

import (
	"testing"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
)

// captureNode records arrivals with timestamps.
type captureNode struct {
	name string
	eng  *sim.Engine
	got  []*pkt.Packet
	at   []sim.Time
}

func (c *captureNode) HandleArrival(p *pkt.Packet, _ *Port) {
	c.got = append(c.got, p)
	c.at = append(c.at, c.eng.Now())
}

func (c *captureNode) Name() string { return c.name }

func newPair(t *testing.T, rate int64, prop sim.Duration) (*sim.Engine, *captureNode, *captureNode, *Port, *Port) {
	t.Helper()
	eng := sim.NewEngine(1)
	a := &captureNode{name: "a", eng: eng}
	b := &captureNode{name: "b", eng: eng}
	pa, pb := Connect(eng, a, b, rate, prop)
	return eng, a, b, pa, pb
}

func data(prio, payload int) *pkt.Packet {
	return pkt.NewData(1, 0, 1, prio, pkt.ClassLossy, 0, payload)
}

func TestLinkTimingExact(t *testing.T) {
	eng, _, b, pa, _ := newPair(t, 25e9, sim.Microsecond)
	p := data(pkt.PrioLossy, pkt.MTUPayload) // 1048 bytes
	pa.Enqueue(p)
	eng.RunAll()

	if len(b.got) != 1 {
		t.Fatalf("arrivals = %d, want 1", len(b.got))
	}
	want := sim.TxTime(pkt.MTUBytes, 25e9) + sim.Microsecond
	if b.at[0] != want {
		t.Errorf("arrival at %v, want %v", b.at[0], want)
	}
}

func TestBackToBackSerialization(t *testing.T) {
	eng, _, b, pa, _ := newPair(t, 25e9, sim.Microsecond)
	pa.Enqueue(data(pkt.PrioLossy, 500))
	pa.Enqueue(data(pkt.PrioLossy, 500))
	eng.RunAll()

	if len(b.got) != 2 {
		t.Fatalf("arrivals = %d, want 2", len(b.got))
	}
	tx := sim.TxTime(500+pkt.HeaderBytes, 25e9)
	if b.at[0] != tx+sim.Microsecond {
		t.Errorf("first arrival at %v, want %v", b.at[0], tx+sim.Microsecond)
	}
	if b.at[1] != 2*tx+sim.Microsecond {
		t.Errorf("second arrival at %v, want %v (pipelined serialization)", b.at[1], 2*tx+sim.Microsecond)
	}
}

func TestRoundRobinAcrossPriorities(t *testing.T) {
	eng, _, b, pa, _ := newPair(t, 25e9, 0)
	// Three packets on lossy, three on lossless, enqueued before anything
	// transmits: expect strict alternation after the first.
	for i := 0; i < 3; i++ {
		pa.Enqueue(data(pkt.PrioLossless, 100))
		pa.Enqueue(data(pkt.PrioLossy, 100))
	}
	eng.RunAll()

	if len(b.got) != 6 {
		t.Fatalf("arrivals = %d, want 6", len(b.got))
	}
	for i := 0; i < 6; i += 2 {
		if b.got[i].Priority != pkt.PrioLossless || b.got[i+1].Priority != pkt.PrioLossy {
			prios := make([]int, 6)
			for j, p := range b.got {
				prios[j] = p.Priority
			}
			t.Fatalf("expected alternating priorities, got %v", prios)
		}
	}
}

func TestControlFramesPreemptData(t *testing.T) {
	eng, _, b, pa, pb := newPair(t, 25e9, 0)
	_ = pb
	pa.Enqueue(data(pkt.PrioLossy, 1000))
	pa.Enqueue(data(pkt.PrioLossy, 1000))
	pa.SendPFC(0, true) // queued while first data packet is on the wire
	eng.RunAll()

	// PFC is consumed by the peer port, so only data arrives at the node;
	// but the pause must have taken effect before the second data packet
	// finished — verify via ordering of effects: peer's priority 0 paused.
	if !pb.Paused(0) {
		t.Error("peer priority 0 should be paused")
	}
	if len(b.got) != 2 {
		t.Fatalf("arrivals = %d, want 2 data packets", len(b.got))
	}
	// The PFC frame (64B) must have been sent between the two 1048B data
	// packets: second data arrival delayed by the control frame time.
	tx := sim.TxTime(pkt.MTUBytes, 25e9)
	ctrl := sim.TxTime(pkt.CtrlBytes, 25e9)
	if b.at[1] != 2*tx+ctrl {
		t.Errorf("second data arrival at %v, want %v (control preemption)", b.at[1], 2*tx+ctrl)
	}
}

func TestPFCPausesOnlyTargetPriority(t *testing.T) {
	eng, _, b, pa, pb := newPair(t, 25e9, 0)

	// Pause lossless on pb's transmit side (pa sends the pause frame).
	pa.SendPFC(pkt.PrioLossless, true)
	eng.RunAll()
	if !pb.Paused(pkt.PrioLossless) {
		t.Fatal("lossless priority should be paused on peer")
	}

	pb.Enqueue(data(pkt.PrioLossless, 100))
	pb.Enqueue(data(pkt.PrioLossy, 100))
	eng.RunAll()

	if len(b.got) != 0 {
		t.Fatal("b should receive nothing (b owns pa side)")
	}
	// Only the lossy packet should have crossed to a's side... capture is
	// on node a via pa. Recheck: pb transmits toward pa, owner of pa is a.
	eng.RunAll()
	if pb.QueuePackets(pkt.PrioLossless) != 1 {
		t.Error("paused lossless packet should remain queued")
	}
	if pb.QueuePackets(pkt.PrioLossy) != 0 {
		t.Error("lossy packet should have been transmitted")
	}
}

func TestPFCResumeRestartsTransmission(t *testing.T) {
	eng, a, _, pa, pb := newPair(t, 25e9, 0)
	pa.SendPFC(pkt.PrioLossless, true)
	eng.RunAll()
	pb.Enqueue(data(pkt.PrioLossless, 100))
	eng.RunAll()
	if len(a.got) != 0 {
		t.Fatal("packet leaked through pause")
	}

	pauseEnd := eng.Now()
	pa.SendPFC(pkt.PrioLossless, false)
	eng.RunAll()
	if len(a.got) != 1 {
		t.Fatal("packet not released after resume")
	}
	if got := pb.CumPausedTime(pkt.PrioLossless); got <= 0 {
		t.Error("CumPausedTime should be positive after a pause interval")
	} else if got > pauseEnd+sim.Microsecond {
		t.Errorf("CumPausedTime %v implausibly large", got)
	}
}

func TestCumPausedTimeDuringActivePause(t *testing.T) {
	eng, _, _, pa, pb := newPair(t, 25e9, 0)
	pa.SendPFC(0, true)
	eng.RunAll()
	start := eng.Now()
	eng.Schedule(5*sim.Microsecond, func() {})
	eng.RunAll()
	if got := pb.CumPausedTime(0); got != eng.Now()-start {
		t.Errorf("CumPausedTime = %v, want %v (in-progress pause counts)", got, eng.Now()-start)
	}
}

func TestOnDequeueFiresAtTxComplete(t *testing.T) {
	eng, _, _, pa, _ := newPair(t, 25e9, sim.Microsecond)
	var at sim.Time = -1
	pa.OnDequeue = func(p *pkt.Packet) { at = eng.Now() }
	pa.Enqueue(data(pkt.PrioLossy, 1000))
	eng.RunAll()
	want := sim.TxTime(pkt.MTUBytes, 25e9)
	if at != want {
		t.Errorf("OnDequeue at %v, want %v (end of serialization, before propagation)", at, want)
	}
}

func TestOnPFCHookObservesBothEdges(t *testing.T) {
	eng, _, _, pa, pb := newPair(t, 25e9, 0)
	var events []bool
	pb.OnPFC = func(prio int, paused bool) { events = append(events, paused) }
	pa.SendPFC(0, true)
	pa.SendPFC(0, false)
	eng.RunAll()
	if len(events) != 2 || !events[0] || events[1] {
		t.Errorf("OnPFC events = %v, want [true false]", events)
	}
}

func TestDuplicatePauseFramesAreIdempotent(t *testing.T) {
	eng, _, _, pa, pb := newPair(t, 25e9, 0)
	pa.SendPFC(0, true)
	pa.SendPFC(0, true)
	eng.RunAll()
	mid := eng.Now()
	_ = mid
	pa.SendPFC(0, false)
	eng.RunAll()
	if pb.Paused(0) {
		t.Error("one resume should clear pause regardless of duplicate pauses")
	}
	pa.SendPFC(0, false) // duplicate resume: no panic, no negative time
	eng.RunAll()
	if pb.CumPausedTime(0) < 0 {
		t.Error("CumPausedTime went negative")
	}
}

func TestPFCStatsCounted(t *testing.T) {
	eng, _, _, pa, pb := newPair(t, 25e9, 0)
	pa.SendPFC(0, true)
	pa.SendPFC(0, false)
	pa.SendPFC(0, true)
	eng.RunAll()
	if got := pa.Stats().PFCSent; got != 2 {
		t.Errorf("PFCSent = %d, want 2 (pauses only)", got)
	}
	if got := pa.Stats().PFCResumes; got != 1 {
		t.Errorf("PFCResumes = %d, want 1", got)
	}
	if got := pb.Stats().PFCReceived; got != 2 {
		t.Errorf("peer PFCReceived = %d, want 2", got)
	}
}

func TestDrainRateSharing(t *testing.T) {
	eng, _, _, pa, _ := newPair(t, 100e9, 0)
	_ = eng
	if got := pa.DrainRate(0); got != 100e9 {
		t.Errorf("idle port DrainRate = %d, want full rate", got)
	}
	// Two backlogged priorities share the line. Stall the port so queues
	// stay backlogged: pause both priorities via a fake peer pause... use
	// direct state: enqueue without running the engine only marks one
	// in-flight; simpler: three priorities with packets, engine not run,
	// first packet of one priority is already in flight.
	pa.Enqueue(data(pkt.PrioLossless, 1000))
	pa.Enqueue(data(pkt.PrioLossless, 1000))
	pa.Enqueue(data(pkt.PrioLossy, 1000))
	pa.Enqueue(data(pkt.PrioLossy, 1000))
	// One lossless packet went to the wire; both queues still backlogged.
	if got := pa.DrainRate(pkt.PrioLossless); got != 50e9 {
		t.Errorf("DrainRate with 2 backlogged = %d, want 50e9", got)
	}
	// A third, idle priority would make three competitors.
	if got, want := pa.DrainRate(pkt.PrioControl), int64(100e9)/3; got != want {
		t.Errorf("DrainRate for joining priority = %d, want %d", got, want)
	}
}

func TestEnqueuePFCPanics(t *testing.T) {
	_, _, _, pa, _ := newPair(t, 25e9, 0)
	defer func() {
		if recover() == nil {
			t.Error("Enqueue of a PFC frame should panic")
		}
	}()
	pa.Enqueue(pkt.NewPFC(0, true))
}

func TestQueueAccounting(t *testing.T) {
	eng := sim.NewEngine(1)
	a := &captureNode{name: "a", eng: eng}
	b := &captureNode{name: "b", eng: eng}
	pa, _ := Connect(eng, a, b, 25e9, 0)
	pa.SendPFC(0, true) // keep the line busy briefly so packets queue
	// Pause pa's own queues? No: block by enqueueing while busy.
	pa.Enqueue(data(pkt.PrioLossy, 500))
	pa.Enqueue(data(pkt.PrioLossy, 300))
	// First data may already be in flight after the control frame; check
	// conservation instead of exact split.
	total := pa.QueueBytes(pkt.PrioLossy)
	if total > (500+pkt.HeaderBytes)+(300+pkt.HeaderBytes) {
		t.Errorf("queued bytes %d exceeds enqueued total", total)
	}
	eng.RunAll()
	if pa.QueueBytes(pkt.PrioLossy) != 0 || pa.QueuePackets(pkt.PrioLossy) != 0 {
		t.Error("queue accounting should drain to zero")
	}
	if pa.TotalBacklog() != 0 {
		t.Error("TotalBacklog should be zero after drain")
	}
}

func TestConnectValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	a := &captureNode{name: "a", eng: eng}
	b := &captureNode{name: "b", eng: eng}
	defer func() {
		if recover() == nil {
			t.Error("Connect with zero rate should panic")
		}
	}()
	Connect(eng, a, b, 0, 0)
}

func TestPortStringAndAccessors(t *testing.T) {
	eng := sim.NewEngine(1)
	a := &captureNode{name: "a", eng: eng}
	b := &captureNode{name: "b", eng: eng}
	pa, pb := Connect(eng, a, b, 25e9, sim.Microsecond)
	if pa.Peer() != pb || pb.Peer() != pa {
		t.Error("peers not wired")
	}
	if pa.Owner().Name() != "a" {
		t.Error("owner wrong")
	}
	if pa.Rate() != 25e9 || pa.PropDelay() != sim.Microsecond {
		t.Error("link parameters wrong")
	}
	if pa.String() != "a.port[0]" {
		t.Errorf("String() = %q", pa.String())
	}
}

func TestDrainRatePausedIsZero(t *testing.T) {
	// Regression: a paused priority used to report rate/(n+1) — a finite
	// service rate for a queue receiving no service at all — which made
	// L2BM's sojourn estimate underestimate τ behind paused egress ports.
	eng, _, _, pa, _ := newPair(t, 100e9, 0)
	pa.Enqueue(data(pkt.PrioLossless, 1000))
	pa.Enqueue(data(pkt.PrioLossless, 1000))
	eng.RunAll()

	// Pause the lossless priority via a real peer XOFF.
	pb := pa.Peer()
	pb.SendPFC(pkt.PrioLossless, true)
	eng.RunAll()
	if !pa.Paused(pkt.PrioLossless) {
		t.Fatal("setup: priority not paused")
	}

	pa.Enqueue(data(pkt.PrioLossless, 1000)) // backlogged AND paused
	if got := pa.DrainRate(pkt.PrioLossless); got != 0 {
		t.Errorf("paused DrainRate = %d, want 0", got)
	}
	// An empty paused priority is also 0 — not the joining-competitor share.
	if got := pa.DrainRate(pkt.PrioLossless + 1); got == 0 {
		t.Errorf("unpaused priority DrainRate = 0, want a positive share")
	}

	// Resume restores the estimate.
	pb.SendPFC(pkt.PrioLossless, false)
	eng.RunAll()
	if got := pa.DrainRate(pkt.PrioLossless); got <= 0 {
		t.Errorf("resumed DrainRate = %d, want > 0", got)
	}
}

func TestOnPauseTransitionFiresOnEdgesOnly(t *testing.T) {
	eng, _, _, pa, pb := newPair(t, 25e9, 0)
	var events []bool
	pb.OnPauseTransition = func(prio int, paused bool) { events = append(events, paused) }
	pa.SendPFC(0, true)
	pa.SendPFC(0, true) // duplicate XOFF: no transition
	eng.RunAll()
	pa.SendPFC(0, false)
	pa.SendPFC(0, false) // duplicate XON: no transition
	eng.RunAll()
	if len(events) != 2 || !events[0] || events[1] {
		t.Errorf("OnPauseTransition events = %v, want [true false]", events)
	}

	// ForceResume (deadlock breaking) also reports the resume edge.
	events = nil
	pa.SendPFC(0, true)
	eng.RunAll()
	if !pb.ForceResume(0) {
		t.Fatal("setup: ForceResume found no pause to clear")
	}
	if len(events) != 2 || !events[0] || events[1] {
		t.Errorf("OnPauseTransition with ForceResume = %v, want [true false]", events)
	}
}
