package chaos

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"l2bm/internal/exp"
	"l2bm/internal/topo"
)

// TestGenerateValidAndDeterministic: every seed in the smoke range yields a
// scenario inside the validity envelope, and generation is a pure function
// of the seed.
func TestGenerateValidAndDeterministic(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		sc := Generate(seed)
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d: %v\n%+v", seed, err, sc)
		}
		if again := Generate(seed); again != sc {
			t.Fatalf("seed %d: generation not deterministic:\n%+v\n%+v", seed, sc, again)
		}
	}
}

// TestScenarioJSONRoundTrip: a scenario survives serialization exactly —
// the property repro files depend on.
func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := Generate(7)
	buf, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	var back Scenario
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back != sc {
		t.Errorf("round trip changed the scenario:\n%+v\n%+v", sc, back)
	}
}

// TestChaosSmoke is the PR-gate soak: 30 fixed seeds through the full
// harness (auditor, pool debug, panic containment) must come back clean.
func TestChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	rep, err := Run(context.Background(), Options{Seeds: 30, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Findings {
		t.Errorf("seed %d: %s\nminimal: %+v", f.Seed, firstLine(f.MinimalReason), f.Minimal)
	}
	if rep.AuditChecks == 0 {
		t.Error("no audit sweeps ran across the whole soak")
	}
	if rep.Events == 0 {
		t.Error("no events executed")
	}
}

// TestChaosCatchesAndShrinksSeededBug is the harness's own mutation test:
// plant a one-sided accounting corruption in every scenario and require the
// soak to (a) flag every seed, (b) shrink each finding to a simpler
// still-failing scenario, (c) emit a reproducer that replays.
func TestChaosCatchesAndShrinksSeededBug(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Seeds:        2,
		BaseSeed:     100,
		Workers:      2,
		ShrinkBudget: 30,
		ReproDir:     dir,
		Wrap: func(spec exp.HybridSpec) exp.HybridSpec {
			spec.Hooks = &exp.RunHooks{PostBuild: func(cl *topo.Cluster) {
				cl.ToRs[0].SkewSharedUsedForTest(2048)
			}}
			return spec
		},
	}
	rep, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != opts.Seeds {
		t.Fatalf("%d of %d seeded-bug scenarios flagged", len(rep.Findings), opts.Seeds)
	}
	for _, f := range rep.Findings {
		if !strings.Contains(f.MinimalReason, "sharedUsed") {
			t.Errorf("seed %d: wrong diagnosis: %s", f.Seed, firstLine(f.MinimalReason))
		}
		if f.ShrinkRuns == 0 {
			t.Errorf("seed %d: shrinker never ran", f.Seed)
		}
		if f.Minimal == f.Original {
			t.Errorf("seed %d: shrinker found nothing simpler than %+v", f.Seed, f.Original)
		}
		if err := f.Minimal.Validate(); err != nil {
			t.Errorf("seed %d: minimal scenario invalid: %v", f.Seed, err)
		}
		if f.ReproPath == "" {
			t.Fatalf("seed %d: no reproducer emitted", f.Seed)
		}
		reason, err := Replay(context.Background(), f.ReproPath, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(reason, "sharedUsed") {
			t.Errorf("seed %d: reproducer does not replay: %q", f.Seed, firstLine(reason))
		}
	}
}

// TestShrinkPreservesValidity: every candidate offered for any generated
// scenario must itself be valid — the shrinker never proposes a scenario
// the simulator would reject.
func TestShrinkPreservesValidity(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		sc := Generate(seed)
		for _, cand := range shrinkCandidates(sc) {
			if err := cand.Validate(); err != nil {
				t.Fatalf("seed %d: invalid candidate: %v\n%+v", seed, err, cand)
			}
		}
	}
}
