package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"l2bm/internal/exp"
	"l2bm/internal/sim"
)

// Options tunes one soak run.
type Options struct {
	// Seeds is how many scenarios to fuzz (0 = 50).
	Seeds int
	// BaseSeed offsets the seed range: scenario i uses BaseSeed + i, so a
	// soak is reproducible seed-for-seed and nightly runs can rotate
	// ranges without overlapping.
	BaseSeed int64
	// Workers bounds concurrently running scenarios (0 = GOMAXPROCS).
	Workers int
	// PointTimeout is the per-scenario wall-clock watchdog (0 = 2 min): a
	// hung or livelocked scenario is killed and reported, never wedges the
	// soak.
	PointTimeout time.Duration
	// ShrinkBudget caps candidate runs spent minimizing each finding
	// (0 = 150; negative disables shrinking).
	ShrinkBudget int
	// ReproDir, when non-empty, receives one runnable JSON reproducer per
	// finding.
	ReproDir string
	// Out, when non-nil, receives progress and finding lines.
	Out io.Writer
	// Wrap, when non-nil, intercepts every materialized spec before it
	// runs. The mutation test uses it to plant a seeded accounting bug and
	// prove the harness catches and shrinks real violations.
	Wrap func(exp.HybridSpec) exp.HybridSpec
}

func (o *Options) seeds() int { return orDefault(o.Seeds, 50) }

func (o *Options) timeout() time.Duration {
	if o.PointTimeout > 0 {
		return o.PointTimeout
	}
	return 2 * time.Minute
}

func (o *Options) budget() int {
	if o.ShrinkBudget < 0 {
		return 0
	}
	return orDefault(o.ShrinkBudget, 150)
}

func orDefault(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

// Finding is one failed scenario, minimized.
type Finding struct {
	Seed int64
	// Reason is the failure as first observed (error, panic, timeout, or
	// audit violations).
	Reason string
	// Original is the generated scenario; Minimal is the smallest shrunken
	// scenario that still fails (equal to Original when shrinking is off
	// or found nothing smaller).
	Original Scenario
	Minimal  Scenario
	// MinimalReason is the failure the minimal scenario exhibits.
	MinimalReason string
	// ShrinkRuns counts candidate executions the shrinker spent.
	ShrinkRuns int
	// ReproPath is the emitted reproducer file ("" when ReproDir unset).
	ReproPath string
}

// Report summarizes a soak.
type Report struct {
	Seeds    int
	Findings []Finding
	// Events and AuditChecks aggregate over scenarios that ran to
	// completion (cost/coverage accounting).
	Events      uint64
	AuditChecks uint64
}

// Run fuzzes opts.Seeds scenarios. The returned error is non-nil only for
// infrastructure failure (context cancelled, unwritable repro dir) —
// findings are data, reported in the Report; callers decide the exit code.
func Run(ctx context.Context, opts Options) (*Report, error) {
	n := opts.seeds()
	rep := &Report{Seeds: n}

	pool := &exp.Pool{Workers: opts.Workers, KeepGoing: true, PointTimeout: opts.timeout()}
	pool.Observe = func(i int, r *exp.Result, err error) {
		if r != nil {
			rep.Events += r.Events
			rep.AuditChecks += r.AuditChecks
		}
		if opts.Out != nil && err != nil && ctx.Err() == nil {
			fmt.Fprintf(opts.Out, "chaos: seed %d FAILED: %s\n", opts.BaseSeed+int64(i), firstLine(err.Error()))
		}
	}
	_, _, err := pool.Run(ctx, n, func(pctx context.Context, i int) (*exp.Result, error) {
		return runScenario(pctx, Generate(opts.BaseSeed+int64(i)), opts)
	}, nil)

	var fs *exp.FailureSummary
	switch {
	case err == nil:
	case errors.As(err, &fs):
		for _, pf := range fs.Failures {
			f, ferr := investigate(ctx, opts, opts.BaseSeed+int64(pf.Point), pf.Err)
			if ferr != nil {
				return rep, ferr
			}
			rep.Findings = append(rep.Findings, f)
		}
	default:
		return rep, err // external cancellation
	}

	if opts.Out != nil {
		fmt.Fprintf(opts.Out, "chaos: %d seeds, %d findings, %d audit sweeps, %d events\n",
			n, len(rep.Findings), rep.AuditChecks, rep.Events)
	}
	return rep, nil
}

// investigate turns one failed seed into a Finding: shrink, then emit the
// reproducer.
func investigate(ctx context.Context, opts Options, seed int64, cause error) (Finding, error) {
	sc := Generate(seed)
	f := Finding{Seed: seed, Reason: cause.Error(), Original: sc, Minimal: sc, MinimalReason: cause.Error()}
	if opts.Out != nil {
		fmt.Fprintf(opts.Out, "chaos: shrinking seed %d (budget %d)...\n", seed, opts.budget())
	}
	f.Minimal, f.MinimalReason, f.ShrinkRuns = Shrink(ctx, sc, f.Reason, opts)
	if opts.ReproDir != "" {
		path, err := WriteRepro(opts.ReproDir, f)
		if err != nil {
			return f, err
		}
		f.ReproPath = path
		if opts.Out != nil {
			fmt.Fprintf(opts.Out, "chaos: reproducer written to %s\n", path)
		}
	}
	return f, nil
}

// runScenario materializes and executes one scenario, folding invariant
// violations into the error so the pool's failure machinery (containment,
// KeepGoing inventory) applies uniformly.
func runScenario(ctx context.Context, sc Scenario, opts Options) (*exp.Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	spec := sc.Spec()
	if opts.Wrap != nil {
		spec = opts.Wrap(spec)
	}
	res, err := exp.RunHybridCtx(ctx, spec)
	if err != nil {
		return nil, err
	}
	if len(res.AuditErrors) > 0 {
		return nil, fmt.Errorf("invariant violations: %s", strings.Join(res.AuditErrors, "; "))
	}
	return res, nil
}

// failReason re-runs a scenario under containment and reports why it fails
// ("" = passes). External cancellation reads as passing so the shrinker
// stops cleanly instead of chasing phantom failures.
func failReason(ctx context.Context, sc Scenario, opts Options) string {
	p := &exp.Pool{Workers: 1, KeepGoing: true, PointTimeout: opts.timeout()}
	_, _, err := p.Run(ctx, 1, func(pctx context.Context, _ int) (*exp.Result, error) {
		return runScenario(pctx, sc, opts)
	}, nil)
	if err == nil || ctx.Err() != nil {
		return ""
	}
	return err.Error()
}

// Shrink greedily minimizes a failing scenario: it tries candidate
// simplifications (drop faults, drop traffic classes, shrink the fabric,
// shorten the schedule) and keeps any candidate that still fails,
// restarting from the simpler scenario until no transform applies or the
// budget is spent. Returns the minimal scenario, its failure reason, and
// how many candidate runs were used.
func Shrink(ctx context.Context, sc Scenario, reason string, opts Options) (Scenario, string, int) {
	cur, curReason := sc, reason
	runs, budget := 0, opts.budget()
	for improved := true; improved && runs < budget; {
		improved = false
		for _, cand := range shrinkCandidates(cur) {
			if runs >= budget || ctx.Err() != nil {
				return cur, curReason, runs
			}
			runs++
			if r := failReason(ctx, cand, opts); r != "" {
				cur, curReason, improved = cand, r, true
				break // restart from the simpler scenario
			}
		}
	}
	return cur, curReason, runs
}

// shrinkCandidates orders simplifications most-aggressive first, so the
// greedy loop takes big steps when it can. Scenario is comparable (plain
// scalars), so no-op transforms are filtered by equality.
func shrinkCandidates(sc Scenario) []Scenario {
	var cands []Scenario
	add := func(f func(*Scenario)) {
		c := sc
		f(&c)
		if c != sc && c.Validate() == nil {
			cands = append(cands, c)
		}
	}

	// Whole subsystems first.
	add(func(c *Scenario) {
		c.FlapRate = 0
		c.FlapDowntime = 0
		c.BER = 0
		c.PFCLossRate = 0
		c.BlackoutAt = 0
		c.BlackoutLen = 0
		c.BlackoutTor = false
	})
	add(func(c *Scenario) { c.IncastFanout = 0; c.IncastBytes = 0; c.IncastRate = 0 })
	add(func(c *Scenario) {
		if c.RDMALoad > 0 || c.IncastFanout > 0 {
			c.TCPLoad = 0
		}
	})
	add(func(c *Scenario) {
		if c.TCPLoad > 0 || c.IncastFanout > 0 {
			c.RDMALoad = 0
		}
	})
	add(func(c *Scenario) { c.Shards = 0 })

	// Fabric collapse.
	add(func(c *Scenario) {
		c.Pods, c.CoreCount, c.AggCount, c.ToRCount = 1, 1, 1, 1
		c.Shards, c.InterRackOnly = 0, false
	})
	add(func(c *Scenario) { c.ServersPerToR = 2 })
	add(func(c *Scenario) { c.CoreCount = 1 })

	// Schedule.
	add(func(c *Scenario) {
		if c.Window >= 400*sim.Microsecond {
			c.Window /= 2
			c.Drain /= 2
			c.AuditEvery = c.Window / 8
			if c.MaxPauseAge > 0 {
				c.MaxPauseAge = c.Window + c.Drain/2
			}
			if c.BlackoutAt > c.Window {
				c.BlackoutAt = c.Window / 2
			}
			if c.BlackoutLen > c.Window/2 {
				c.BlackoutLen = c.Window / 2
			}
		}
	})
	add(func(c *Scenario) {
		if c.Drain > 4*c.Window {
			c.Drain = 4 * c.Window
			if c.MaxPauseAge > 0 {
				c.MaxPauseAge = c.Window + c.Drain/2
			}
		}
	})

	// Individual fault mechanisms.
	add(func(c *Scenario) { c.FlapRate = 0; c.FlapDowntime = 0 })
	add(func(c *Scenario) { c.BER = 0 })
	add(func(c *Scenario) { c.PFCLossRate = 0 })
	add(func(c *Scenario) { c.BlackoutAt = 0; c.BlackoutLen = 0; c.BlackoutTor = false })

	// Intensity halving.
	add(func(c *Scenario) {
		if c.RDMALoad > 0.1 {
			c.RDMALoad /= 2
		}
	})
	add(func(c *Scenario) {
		if c.TCPLoad > 0.1 {
			c.TCPLoad /= 2
		}
	})
	add(func(c *Scenario) {
		if c.IncastFanout > 2 {
			c.IncastFanout = 2
		}
	})
	add(func(c *Scenario) {
		if c.IncastBytes > 40_000 {
			c.IncastBytes /= 2
		}
	})
	return cands
}

// Repro is the on-disk reproducer: the minimal scenario is runnable as-is,
// and the original is kept for context.
type Repro struct {
	Version    int
	Seed       int64
	Reason     string
	Minimal    Scenario
	Original   Scenario
	ShrinkRuns int
}

// ReproVersion gates repro-file compatibility.
const ReproVersion = 1

// WriteRepro emits one finding as a runnable JSON reproducer and returns
// its path.
func WriteRepro(dir string, f Finding) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("chaos: repro dir: %w", err)
	}
	r := Repro{
		Version: ReproVersion, Seed: f.Seed, Reason: f.MinimalReason,
		Minimal: f.Minimal, Original: f.Original, ShrinkRuns: f.ShrinkRuns,
	}
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("chaos: repro: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("chaos-seed%d.json", f.Seed))
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("chaos: repro: %w", err)
	}
	return path, nil
}

// LoadRepro parses a reproducer file.
func LoadRepro(path string) (Repro, error) {
	var r Repro
	buf, err := os.ReadFile(path)
	if err != nil {
		return r, fmt.Errorf("chaos: %w", err)
	}
	if err := json.Unmarshal(buf, &r); err != nil {
		return r, fmt.Errorf("chaos: repro %s: %w", path, err)
	}
	if r.Version != ReproVersion {
		return r, fmt.Errorf("chaos: repro %s has version %d, this build reads %d", path, r.Version, ReproVersion)
	}
	return r, nil
}

// Replay re-runs a reproducer's minimal scenario and reports whether the
// failure still reproduces ("" = it passed, i.e. the bug is fixed).
func Replay(ctx context.Context, path string, opts Options) (string, error) {
	r, err := LoadRepro(path)
	if err != nil {
		return "", err
	}
	if err := r.Minimal.Validate(); err != nil {
		return "", err
	}
	reason := failReason(ctx, r.Minimal, opts)
	if opts.Out != nil {
		if reason == "" {
			fmt.Fprintf(opts.Out, "chaos: seed %d no longer reproduces\n", r.Seed)
		} else {
			fmt.Fprintf(opts.Out, "chaos: seed %d reproduces: %s\n", r.Seed, firstLine(reason))
		}
	}
	return reason, ctx.Err()
}

// firstLine truncates multi-line failure text (panic stacks) for progress
// output; the full text lives in the repro file.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
