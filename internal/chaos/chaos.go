// Package chaos is the randomized soak harness: it fuzzes scenarios —
// random small topologies × hybrid workloads × fault plans, drawn inside a
// validity envelope — and runs each one under the global invariant auditor
// (internal/audit), the packet-pool use-after-free audit, per-point panic
// containment and a wall-clock watchdog. Any violation, error or panic is a
// finding; the harness then shrinks the offending scenario to a minimal
// reproducer and emits it as a runnable JSON spec.
//
// A Scenario is deliberately plain data: every field serializes, so a
// finding's reproducer is the scenario itself — `l2bmexp -exp chaos
// -replay repro.json` rebuilds the identical spec (same seeds, same
// envelope) and replays the failure deterministically.
package chaos

import (
	"fmt"
	"math/rand"

	"l2bm/internal/exp"
	"l2bm/internal/faults"
	"l2bm/internal/sim"
	"l2bm/internal/topo"
)

// Scenario is one fuzzed simulation: a self-contained, JSON-serializable
// description of topology, workload, schedule and fault plan. Zero-valued
// optional fields mean "off" everywhere, so shrinking is monotone: every
// transform moves fields toward zero and the zero-heavy scenario is the
// simplest.
type Scenario struct {
	// Seed seeds scenario generation AND salts the run's RNG streams, so
	// two scenarios with equal fields but different seeds explore different
	// arrival patterns.
	Seed int64

	// Topology (all totals; AggCount and ToRCount divide evenly by Pods).
	Pods          int
	CoreCount     int
	AggCount      int
	ToRCount      int
	ServersPerToR int

	// Workload.
	Policy        string
	RDMALoad      float64
	TCPLoad       float64
	InterRackOnly bool
	IncastFanout  int   // 0 = no incast
	IncastBytes   int64 // per-query payload when fanout > 0
	IncastRate    float64

	// Schedule.
	Window sim.Duration
	Drain  sim.Duration
	Shards int // 0 = classic engine, >= 1 = sharded conductor

	// Fault plan (all zero = clean fabric).
	FlapRate     float64 // link flaps/s over fabric links
	FlapDowntime sim.Duration
	BER          float64
	PFCLossRate  float64
	BlackoutAt   sim.Duration // 0 = no blackout
	BlackoutLen  sim.Duration
	BlackoutTor  bool // target tor0 instead of agg0

	// Audit knobs (derived by Generate, kept explicit so repro files pin
	// them).
	AuditEvery  sim.Duration
	MaxPauseAge sim.Duration // only set on clean scenarios
}

// Validate checks the scenario against the envelope the simulator accepts;
// Generate always returns valid scenarios and every shrink transform
// preserves validity, so a failure here means a hand-edited repro file.
func (sc *Scenario) Validate() error {
	cfg := sc.topoConfig()
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("chaos: %w", err)
	}
	switch {
	case sc.Policy == "":
		return fmt.Errorf("chaos: no policy")
	case sc.RDMALoad <= 0 && sc.TCPLoad <= 0 && sc.IncastFanout <= 0:
		return fmt.Errorf("chaos: scenario offers no traffic at all")
	case sc.Window <= 0 || sc.Drain <= 0:
		return fmt.Errorf("chaos: window %v / drain %v must be positive", sc.Window, sc.Drain)
	case sc.Shards < 0 || sc.Shards > sc.ToRCount:
		return fmt.Errorf("chaos: %d shards on %d ToRs", sc.Shards, sc.ToRCount)
	case sc.IncastFanout < 0 || sc.IncastFanout == 1:
		return fmt.Errorf("chaos: incast fanout %d", sc.IncastFanout)
	case sc.IncastFanout > 0 && (sc.IncastBytes <= 0 || sc.IncastRate <= 0):
		return fmt.Errorf("chaos: incast armed without bytes/rate")
	case sc.BlackoutAt > 0 && sc.BlackoutLen <= 0:
		return fmt.Errorf("chaos: blackout armed without a duration")
	}
	return nil
}

// faulty reports whether any fault mechanism is armed.
func (sc *Scenario) faulty() bool {
	return sc.FlapRate > 0 || sc.BER > 0 || sc.PFCLossRate > 0 || sc.BlackoutAt > 0
}

// topoConfig materializes the scenario's topology.
func (sc *Scenario) topoConfig() topo.Config {
	cfg := topo.TinyConfig()
	cfg.Pods = sc.Pods
	cfg.CoreCount = sc.CoreCount
	cfg.AggCount = sc.AggCount
	cfg.ToRCount = sc.ToRCount
	cfg.ServersPerToR = sc.ServersPerToR
	cfg.PacketPoolDebug = true // arm the use-after-free audit on every run
	return cfg
}

// Spec materializes the runnable experiment spec. The spec carries a
// TopoOverride func, so chaos specs are not checkpointable — chaos has its
// own persistence (the repro file).
func (sc *Scenario) Spec() exp.HybridSpec {
	spec := exp.HybridSpec{
		Name:           fmt.Sprintf("chaos-%d", sc.Seed),
		Policy:         sc.Policy,
		Scale:          exp.ScaleTiny,
		RDMALoad:       sc.RDMALoad,
		TCPLoad:        sc.TCPLoad,
		InterRackOnly:  sc.InterRackOnly,
		WindowOverride: sc.Window,
		DrainOverride:  sc.Drain,
		SeedSalt:       fmt.Sprintf("chaos-salt-%d", sc.Seed),
		Shards:         sc.Shards,
		TopoOverride: func(cfg *topo.Config) {
			*cfg = sc.topoConfig()
		},
		Audit: &exp.AuditSpec{Every: sc.AuditEvery, MaxPauseAge: sc.MaxPauseAge},
	}
	if sc.IncastFanout > 0 {
		spec.Incast = &exp.IncastSpec{
			Fanout: sc.IncastFanout, RequestBytes: sc.IncastBytes, QueryRate: sc.IncastRate,
		}
	}
	if sc.faulty() {
		plan := faults.Plan{
			FlapRate:     sc.FlapRate,
			FlapDowntime: sc.FlapDowntime,
			FlapWindow:   sc.Window,
			BER:          sc.BER,
			PFCLossRate:  sc.PFCLossRate,
		}
		if sc.BlackoutAt > 0 {
			target := "agg0"
			if sc.BlackoutTor {
				target = "tor0"
			}
			plan.Blackouts = []faults.Blackout{{
				Switch: target, At: sim.Time(sc.BlackoutAt), Duration: sc.BlackoutLen,
			}}
		}
		spec.Faults = &exp.FaultSpec{Plan: plan}
	}
	return spec
}

// Generate draws one scenario from the validity envelope, deterministically
// from the seed (Go's rand is a fixed algorithm, so the same seed generates
// the same scenario on every platform and run).
func Generate(seed int64) Scenario {
	r := rand.New(rand.NewSource(seed))
	sc := Scenario{Seed: seed}

	// Topology: 1-2 pods, 1-2 ToRs and aggs per pod, 2-4 servers per rack.
	sc.Pods = 1 + r.Intn(2)
	sc.ToRCount = sc.Pods * (1 + r.Intn(2))
	sc.AggCount = sc.Pods * (1 + r.Intn(2))
	sc.CoreCount = 1 + r.Intn(2)
	sc.ServersPerToR = 2 + r.Intn(3)
	hosts := sc.ToRCount * sc.ServersPerToR

	// Workload: always at least one traffic source.
	sc.Policy = exp.ExtendedPolicyNames[r.Intn(len(exp.ExtendedPolicyNames))]
	sc.RDMALoad = 0.1 + 0.7*r.Float64()
	sc.TCPLoad = 0.1 + 0.8*r.Float64()
	switch r.Intn(8) { // occasionally single-class
	case 0:
		sc.RDMALoad = 0
	case 1:
		sc.TCPLoad = 0
	}
	sc.InterRackOnly = r.Intn(4) == 0 && sc.ToRCount > 1
	if r.Intn(2) == 0 && hosts >= 3 {
		sc.IncastFanout = 2 + r.Intn(min(5, hosts-1)-1)
		sc.IncastBytes = int64(20_000 + r.Intn(180_000))
		sc.IncastRate = 500 + 3500*r.Float64()
	}

	// Schedule: short windows keep a soak seed cheap (~tens of ms wall).
	sc.Window = sim.Duration(200+r.Intn(1300)) * sim.Microsecond
	sc.Drain = sc.Window * sim.Duration(6+r.Intn(5))
	if sc.ToRCount >= 2 && r.Intn(2) == 0 {
		sc.Shards = 2
	}

	// Fault plan: each mechanism independently, ~half the scenarios clean.
	if r.Intn(2) == 0 {
		if r.Intn(2) == 0 {
			sc.FlapRate = 50 + 450*r.Float64()
			sc.FlapDowntime = sim.Duration(50+r.Intn(350)) * sim.Microsecond
		}
		if r.Intn(3) == 0 {
			sc.BER = 1e-8 * float64(1+r.Intn(100))
		}
		if r.Intn(3) == 0 {
			sc.PFCLossRate = 0.05 * r.Float64()
		}
		if r.Intn(4) == 0 {
			sc.BlackoutAt = sim.Duration(1+r.Intn(int(sc.Window/2))) + sc.Window/4
			sc.BlackoutLen = sc.Window / sim.Duration(2+r.Intn(3))
			sc.BlackoutTor = r.Intn(2) == 0
		}
		if !sc.faulty() { // the dice all missed: force one mechanism
			sc.PFCLossRate = 0.01 + 0.04*r.Float64()
		}
		// Faults delay recovery (RTO backoff, rate ramps): drain longer.
		sc.Drain += 4 * sc.Window
	}

	// Audit cadence scales with the window so every run gets many sweeps.
	sc.AuditEvery = sc.Window / 8
	if !sc.faulty() {
		// On a clean fabric a pause can legitimately persist while offered
		// load sustains congestion (the whole window), but once injection
		// stops it must clear: flag anything older than window + half the
		// drain, and Final still requires zero pauses after full drain.
		sc.MaxPauseAge = sc.Window + sc.Drain/2
	}
	return sc
}
