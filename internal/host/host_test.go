package host

import (
	"testing"

	"l2bm/internal/core"
	"l2bm/internal/dcqcn"
	"l2bm/internal/dctcp"
	"l2bm/internal/netdev"
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/switchsim"
	"l2bm/internal/transport"
)

// testbed is N hosts on one switch: the smallest end-to-end network.
type testbed struct {
	eng       *sim.Engine
	sw        *switchsim.Switch
	hosts     []*Host
	completed map[pkt.FlowID]sim.Time
}

func newTestbed(t *testing.T, n int, pol core.Policy) *testbed {
	t.Helper()
	eng := sim.NewEngine(3)
	sw := switchsim.NewSwitch(eng, "tor", switchsim.DefaultConfig(), pol)
	tb := &testbed{eng: eng, sw: sw, completed: make(map[pkt.FlowID]sim.Time)}
	for i := 0; i < n; i++ {
		h := New(eng, i, "h"+string(rune('0'+i)), dctcp.DefaultConfig(), dcqcn.DefaultConfig(25e9))
		hp, sp := netdev.Connect(eng, h, sw, 25e9, sim.Microsecond)
		h.SetNIC(hp)
		sw.AddPort(sp)
		h.SetCompletionHandler(func(id pkt.FlowID, at sim.Time) { tb.completed[id] = at })
		tb.hosts = append(tb.hosts, h)
	}
	sw.SetRouter(func(p *pkt.Packet, _ int) int { return p.Dst })
	return tb
}

func (tb *testbed) flow(id pkt.FlowID, src, dst int, size int64, class pkt.Class) *transport.Flow {
	prio := pkt.PrioLossy
	if class == pkt.ClassLossless {
		prio = pkt.PrioLossless
	}
	return &transport.Flow{ID: id, Src: src, Dst: dst, Size: size, Priority: prio, Class: class}
}

func TestTCPFlowEndToEnd(t *testing.T) {
	tb := newTestbed(t, 2, core.NewDT())
	f := tb.flow(1, 0, 1, 100_000, pkt.ClassLossy)
	tb.hosts[0].StartFlow(f)
	tb.eng.RunAll()

	at, ok := tb.completed[1]
	if !ok {
		t.Fatal("TCP flow did not complete")
	}
	// Lower bound: serialization of the whole flow at 25G plus 2 hops.
	minFCT := sim.TxTime(100_000, 25e9)
	if at < minFCT {
		t.Errorf("FCT %v below physical minimum %v", at, minFCT)
	}
	if tb.hosts[0].FlowsStarted != 1 || tb.hosts[1].FlowsCompleted != 1 {
		t.Error("host flow counters wrong")
	}
}

func TestRDMAFlowEndToEnd(t *testing.T) {
	tb := newTestbed(t, 2, core.NewDefaultL2BM())
	f := tb.flow(2, 0, 1, 100_000, pkt.ClassLossless)
	tb.hosts[0].StartFlow(f)
	tb.eng.RunAll()

	if _, ok := tb.completed[2]; !ok {
		t.Fatal("RDMA flow did not complete")
	}
	if tb.hosts[1].LosslessGaps() != 0 {
		t.Error("lossless flow saw sequence gaps")
	}
}

func TestConcurrentHybridFlows(t *testing.T) {
	tb := newTestbed(t, 4, core.NewDefaultL2BM())
	var id pkt.FlowID
	for src := 0; src < 3; src++ {
		id++
		tb.hosts[src].StartFlow(tb.flow(id, src, 3, 200_000, pkt.ClassLossless))
		id++
		tb.hosts[src].StartFlow(tb.flow(id, src, 3, 200_000, pkt.ClassLossy))
	}
	tb.eng.RunAll()

	if got := len(tb.completed); got != 6 {
		t.Fatalf("completed %d flows, want 6", got)
	}
	if st := tb.sw.Stats(); st.LosslessViolations != 0 {
		t.Errorf("lossless violations = %d", st.LosslessViolations)
	}
	for _, h := range tb.hosts {
		if h.LosslessGaps() != 0 {
			t.Errorf("host %s saw gaps", h.Name())
		}
	}
}

func TestTCPSurvivesDropsUnderOverload(t *testing.T) {
	// Tiny buffer guarantees lossy drops; DCTCP must still deliver
	// everything via retransmission.
	eng := sim.NewEngine(3)
	cfg := switchsim.DefaultConfig()
	cfg.TotalShared = 64 << 10
	sw := switchsim.NewSwitch(eng, "tor", cfg, core.NewDT())
	completed := make(map[pkt.FlowID]sim.Time)
	var hosts []*Host
	for i := 0; i < 5; i++ {
		h := New(eng, i, "h"+string(rune('0'+i)), dctcp.DefaultConfig(), dcqcn.DefaultConfig(25e9))
		hp, sp := netdev.Connect(eng, h, sw, 25e9, sim.Microsecond)
		h.SetNIC(hp)
		sw.AddPort(sp)
		h.SetCompletionHandler(func(id pkt.FlowID, at sim.Time) { completed[id] = at })
		hosts = append(hosts, h)
	}
	sw.SetRouter(func(p *pkt.Packet, _ int) int { return p.Dst })

	for src := 0; src < 4; src++ {
		hosts[src].StartFlow(&transport.Flow{
			ID: pkt.FlowID(src + 1), Src: src, Dst: 4, Size: 300_000,
			Priority: pkt.PrioLossy, Class: pkt.ClassLossy,
		})
	}
	eng.RunAll()

	if st := sw.Stats(); st.LossyDropsIngress+st.LossyDropsEgress == 0 {
		t.Error("expected drops with a 64KB buffer under 4:1 incast")
	}
	if len(completed) != 4 {
		t.Fatalf("completed %d flows, want 4 (retransmission must recover)", len(completed))
	}
	var retrans uint64
	for src := 0; src < 4; src++ {
		retrans += hosts[src].TCPSender(pkt.FlowID(src + 1)).Retransmissions
	}
	if retrans == 0 {
		t.Error("expected retransmissions after drops")
	}
}

func TestRDMAIncastProtectedByPFC(t *testing.T) {
	tb := newTestbed(t, 9, core.NewDT())
	for src := 0; src < 8; src++ {
		tb.hosts[src].StartFlow(tb.flow(pkt.FlowID(src+1), src, 8, 500_000, pkt.ClassLossless))
	}
	tb.eng.RunAll()

	if got := len(tb.completed); got != 8 {
		t.Fatalf("completed %d flows, want 8", got)
	}
	st := tb.sw.Stats()
	if st.LosslessViolations != 0 {
		t.Errorf("violations = %d, want 0", st.LosslessViolations)
	}
	if tb.hosts[8].LosslessGaps() != 0 {
		t.Error("receiver saw gaps")
	}
	if st.PauseFramesSent == 0 {
		t.Error("8:1 lossless incast should trigger PFC")
	}
}

func TestStartFlowValidation(t *testing.T) {
	tb := newTestbed(t, 2, core.NewDT())
	t.Run("wrong host", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		tb.hosts[0].StartFlow(tb.flow(9, 1, 0, 1000, pkt.ClassLossy))
	})
	t.Run("control class", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		f := tb.flow(10, 0, 1, 1000, pkt.ClassControl)
		tb.hosts[0].StartFlow(f)
	})
}

func TestHostAccessors(t *testing.T) {
	tb := newTestbed(t, 2, core.NewDT())
	h := tb.hosts[0]
	if h.ID() != 0 || h.Name() != "h0" {
		t.Error("identity accessors wrong")
	}
	if h.NIC() == nil {
		t.Error("NIC not set")
	}
	f := tb.flow(1, 0, 1, 1000, pkt.ClassLossless)
	h.StartFlow(f)
	if h.RDMASender(1) == nil {
		t.Error("RDMA sender not registered")
	}
	if h.TCPSender(1) != nil {
		t.Error("flow registered under wrong protocol")
	}
}
