// Package host models a server: a NIC (a netdev.Port honoring PFC) plus the
// transport endpoints running on it. The host demultiplexes arriving
// packets to per-flow DCTCP/DCQCN senders and receivers, creates receivers
// on demand, and reports flow completions upward to the metrics layer.
package host

import (
	"fmt"

	"l2bm/internal/dcqcn"
	"l2bm/internal/dctcp"
	"l2bm/internal/netdev"
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/transport"
)

// CompletionHandler observes flow completions (receiver side: the last byte
// arrived at time at).
type CompletionHandler func(id pkt.FlowID, at sim.Time)

// Host is one server.
type Host struct {
	eng  *sim.Engine
	id   int
	name string
	nic  *netdev.Port
	pool *pkt.Pool

	// tc is the immutable transport descriptor, shared by every host of the
	// fabric (NewShared): a 100k-host build stores the DCTCP/DCQCN knobs
	// once, not once per server.
	tc *TransportConfig

	// The endpoint maps are nil until first use: at hyperscale most hosts
	// in a smoke window never source or sink a flow, so idle servers carry
	// no map buckets at all.
	tcpTx  map[pkt.FlowID]*dctcp.Sender
	tcpRx  map[pkt.FlowID]*dctcp.Receiver
	rdmaTx map[pkt.FlowID]*dcqcn.Sender
	rdmaRx map[pkt.FlowID]*dcqcn.Receiver

	onComplete CompletionHandler

	// FlowsStarted counts flows this host originated.
	FlowsStarted uint64
	// FlowsCompleted counts flows that finished arriving at this host.
	FlowsCompleted uint64
	// DataReceived counts data packets delivered to this host's receivers —
	// the fabric-wide progress signal the fault watchdog monitors.
	DataReceived uint64
	// TxDataBytes and RxDataBytes are the host's ends of the global
	// flow-byte conservation ledger the invariant auditor checks: wire
	// bytes (header + payload) of every data frame this host injected into
	// its NIC, and of every data frame delivered to its receivers
	// (including duplicates and out-of-order arrivals — the ledger closes
	// over retransmissions at the wire level, not the application level).
	TxDataBytes int64
	RxDataBytes int64
}

var (
	_ netdev.Node   = (*Host)(nil)
	_ transport.Env = (*Host)(nil)
)

// TransportConfig bundles the transport knobs every host of a fabric
// shares. It is an immutable flyweight descriptor: build one per fabric and
// hand the same pointer to every NewShared call; never mutate it after the
// first host is built on it.
type TransportConfig struct {
	DCTCP dctcp.Config
	DCQCN dcqcn.Config
}

// New builds a host with private copies of the transport configurations.
// Attach the NIC with SetNIC after wiring the link.
func New(eng *sim.Engine, id int, name string, dctcpCfg dctcp.Config, dcqcnCfg dcqcn.Config) *Host {
	return NewShared(eng, id, name, &TransportConfig{DCTCP: dctcpCfg, DCQCN: dcqcnCfg})
}

// NewShared builds a host on a shared immutable transport descriptor. The
// endpoint maps are allocated lazily on first flow, so an idle host costs
// only its counters.
func NewShared(eng *sim.Engine, id int, name string, tc *TransportConfig) *Host {
	return &Host{
		eng:  eng,
		id:   id,
		name: name,
		tc:   tc,
	}
}

// ID returns the host's index in the topology host table.
func (h *Host) ID() int { return h.id }

// Name implements netdev.Node.
func (h *Host) Name() string { return h.name }

// SetNIC attaches the host side of its access link.
func (h *Host) SetNIC(p *netdev.Port) { h.nic = p }

// SetPool installs the engine's packet pool: endpoints on this host build
// their frames from it, and the host recycles every fully delivered packet
// back into it. Nil (the default) keeps plain heap allocation.
func (h *Host) SetPool(pl *pkt.Pool) { h.pool = pl }

// NIC returns the host's port.
func (h *Host) NIC() *netdev.Port { return h.nic }

// SetCompletionHandler registers the observer for receiver-side flow
// completions.
func (h *Host) SetCompletionHandler(fn CompletionHandler) { h.onComplete = fn }

// StartFlow launches a transport sender for f. The flow's class picks the
// protocol: lossless flows run DCQCN, lossy flows run DCTCP.
func (h *Host) StartFlow(f *transport.Flow) {
	if f.Src != h.id {
		panic(fmt.Sprintf("host %d asked to start flow owned by host %d", h.id, f.Src))
	}
	f.Start = h.eng.Now()
	h.FlowsStarted++
	switch f.Class {
	case pkt.ClassLossless:
		s := dcqcn.NewSender(h, h.tc.DCQCN, f, nil)
		if h.rdmaTx == nil {
			h.rdmaTx = make(map[pkt.FlowID]*dcqcn.Sender)
		}
		h.rdmaTx[f.ID] = s
		s.Start()
	case pkt.ClassLossy:
		s := dctcp.NewSender(h, h.tc.DCTCP, f, nil)
		if h.tcpTx == nil {
			h.tcpTx = make(map[pkt.FlowID]*dctcp.Sender)
		}
		h.tcpTx[f.ID] = s
		s.Start()
	default:
		panic(fmt.Sprintf("host: flow %d has unroutable class %v", f.ID, f.Class))
	}
}

// StartFlowWarm is StartFlow for residual flows handed back from the fluid
// fast-forward layer: lossy (DCTCP) senders begin with an established
// congestion window of cwndBytes instead of the cold initial window.
// Lossless (DCQCN) senders need no warming — they start at line rate and
// only slow down on congestion feedback — so the hint is ignored for them.
func (h *Host) StartFlowWarm(f *transport.Flow, cwndBytes float64) {
	if f.Class != pkt.ClassLossy || cwndBytes <= 0 {
		h.StartFlow(f)
		return
	}
	if f.Src != h.id {
		panic(fmt.Sprintf("host %d asked to start flow owned by host %d", h.id, f.Src))
	}
	f.Start = h.eng.Now()
	h.FlowsStarted++
	s := dctcp.NewSender(h, h.tc.DCTCP, f, nil)
	s.Warm(cwndBytes) // before Start, so the first burst ships the full window
	if h.tcpTx == nil {
		h.tcpTx = make(map[pkt.FlowID]*dctcp.Sender)
	}
	h.tcpTx[f.ID] = s
	s.Start()
}

// HandleArrival implements netdev.Node: demultiplex to the right endpoint,
// then recycle the frame. The host is the delivery sink for every packet
// kind, so the one-owner contract for endpoint handlers is: read the packet,
// never retain it past return — by the time HandleArrival returns, the
// object is back in the pool.
func (h *Host) HandleArrival(p *pkt.Packet, port *netdev.Port) {
	// Engine-affinity audit (debug pools only): hosts live on their ToR's
	// shard, so a delivery from a port bound to another shard's engine
	// means the topology wiring bypassed the cross-shard mailbox path.
	if h.pool.Debug() && port != nil && port.Engine() != h.eng {
		panic(fmt.Sprintf("host: %s received a frame on a foreign engine", h.name))
	}
	switch p.Kind {
	case pkt.KindData:
		h.handleData(p)
	case pkt.KindAck:
		if s, ok := h.tcpTx[p.Flow]; ok {
			s.HandleAck(p)
		} else if s, ok := h.rdmaTx[p.Flow]; ok {
			s.HandleAck(p.Seq) // go-back-N cumulative ACK
		}
	case pkt.KindCNP:
		if s, ok := h.rdmaTx[p.Flow]; ok {
			s.HandleCNP()
		}
	case pkt.KindNack:
		if s, ok := h.rdmaTx[p.Flow]; ok {
			s.HandleNACK(p.Seq)
		}
	}
	h.pool.Put(p) // sink: delivered (or unroutable) frames die here
}

func (h *Host) handleData(p *pkt.Packet) {
	h.DataReceived++
	h.RxDataBytes += int64(p.Size)
	switch p.Class {
	case pkt.ClassLossless:
		r, ok := h.rdmaRx[p.Flow]
		if !ok {
			id := p.Flow
			r = dcqcn.NewReceiver(h, h.tc.DCQCN, id, h.id, p.Src, func(at sim.Time) {
				h.complete(id, at)
			})
			if h.rdmaRx == nil {
				h.rdmaRx = make(map[pkt.FlowID]*dcqcn.Receiver)
			}
			h.rdmaRx[id] = r
		}
		r.HandleData(p)
	case pkt.ClassLossy:
		r, ok := h.tcpRx[p.Flow]
		if !ok {
			id := p.Flow
			r = dctcp.NewReceiver(h, id, h.id, p.Src, func(at sim.Time) {
				h.complete(id, at)
			})
			if h.tcpRx == nil {
				h.tcpRx = make(map[pkt.FlowID]*dctcp.Receiver)
			}
			h.tcpRx[id] = r
		}
		r.HandleData(p)
	}
}

func (h *Host) complete(id pkt.FlowID, at sim.Time) {
	h.FlowsCompleted++
	if h.onComplete != nil {
		h.onComplete(id, at)
	}
}

// LosslessGaps sums sequence discontinuities over this host's RDMA
// receivers — nonzero only when the network broke the lossless guarantee.
func (h *Host) LosslessGaps() uint64 {
	var total uint64
	for _, r := range h.rdmaRx {
		total += r.Gaps()
	}
	return total
}

// RecoveryBytes sums the payload bytes this host's senders scheduled for
// retransmission (go-back-N rewinds plus DCTCP fast-retransmit/RTO resends)
// — the traffic cost of surviving injected faults.
func (h *Host) RecoveryBytes() int64 {
	var total int64
	for _, s := range h.rdmaTx {
		total += s.RetransmittedBytes
	}
	for _, s := range h.tcpTx {
		total += s.RetransmittedBytes
	}
	return total
}

// RDMARecoveryStats sums go-back-N counters over this host's RDMA senders:
// NACK-triggered rewinds and timeout-triggered rewinds.
func (h *Host) RDMARecoveryStats() (nacks, timeouts uint64) {
	for _, s := range h.rdmaTx {
		nacks += s.NACKsReceived
		timeouts += s.Timeouts
	}
	return nacks, timeouts
}

// ThrottledRDMASenders counts in-progress DCQCN senders on this host whose
// current rate is below frac of line rate — senders still recovering from a
// congestion cut. The hybrid-fidelity driver refuses to hand a segment back
// to the fluid layer while any exist: the fluid max-min solve would serve
// those flows at full fair share, forgetting the throttle the packet world
// is still paying off.
func (h *Host) ThrottledRDMASenders(frac float64) int {
	n := 0
	limit := frac * float64(h.tc.DCQCN.LineRate)
	for _, s := range h.rdmaTx {
		if !s.Done() && s.Rate() < limit {
			n++
		}
	}
	return n
}

// ThrottledTCPSenders counts in-progress DCTCP senders on this host whose
// congestion window is below minCwnd bytes. Companion to
// ThrottledRDMASenders for the hybrid driver's quiescence gate: a solo
// DCTCP flow's steady-state window is BDP plus the ECN-threshold standing
// queue, so a sender far below that (young slow-start flows, post-drop
// recovery) would be served too fast by the fluid layer's line-rate share.
func (h *Host) ThrottledTCPSenders(minCwnd float64) int {
	n := 0
	for _, s := range h.tcpTx {
		if !s.Done() && s.Cwnd() < minCwnd {
			n++
		}
	}
	return n
}

// TCPSender returns this host's DCTCP sender for flow id, if any (tests).
func (h *Host) TCPSender(id pkt.FlowID) *dctcp.Sender { return h.tcpTx[id] }

// RDMASender returns this host's DCQCN sender for flow id, if any (tests).
func (h *Host) RDMASender(id pkt.FlowID) *dcqcn.Sender { return h.rdmaTx[id] }

// FlowProgress reports the contiguous bytes delivered to this host for flow
// id, from whichever receiver (lossless or lossy) owns it. ok is false when
// no packet of the flow has reached this host yet. The hybrid-fidelity
// driver uses this at a packet-segment cut to carry residual flow state back
// into the fluid layer.
func (h *Host) FlowProgress(id pkt.FlowID) (delivered int64, ok bool) {
	if r, found := h.rdmaRx[id]; found {
		return r.Received(), true
	}
	if r, found := h.tcpRx[id]; found {
		return r.Received(), true
	}
	return 0, false
}

// --- transport.Env implementation ------------------------------------------

// Now implements transport.Env.
func (h *Host) Now() sim.Time { return h.eng.Now() }

// Send implements transport.Env. Every frame a transport emits — first
// transmissions and retransmissions alike — passes through here, so this is
// the single injection point of the flow-byte conservation ledger.
func (h *Host) Send(p *pkt.Packet) {
	if p.Kind == pkt.KindData {
		h.TxDataBytes += int64(p.Size)
	}
	h.nic.Enqueue(p)
}

// Schedule implements transport.Env.
func (h *Host) Schedule(delay sim.Duration, fn func()) sim.EventRef {
	return h.eng.Schedule(delay, fn)
}

// NICBacklog implements transport.Env.
func (h *Host) NICBacklog(prio int) int { return h.nic.QueueBytes(prio) }

// Pool implements transport.Env: endpoints on this host build their frames
// from the host's pool (nil pool = heap allocation).
func (h *Host) Pool() *pkt.Pool { return h.pool }
