package host

import (
	"testing"

	"l2bm/internal/core"
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/transport"
)

func TestStrayControlPacketsAreIgnored(t *testing.T) {
	tb := newTestbed(t, 2, core.NewDT())
	h := tb.hosts[0]

	// ACK and CNP for flows this host never started must be dropped
	// silently, not crash the demux.
	h.HandleArrival(pkt.NewAck(999, 1, 0, 100, false), h.NIC())
	h.HandleArrival(pkt.NewCNP(999, 1, 0), h.NIC())
	tb.eng.RunAll()

	if h.FlowsStarted != 0 || h.FlowsCompleted != 0 {
		t.Error("stray control packets perturbed flow accounting")
	}
}

func TestReceiverCreatedOnDemandPerClass(t *testing.T) {
	tb := newTestbed(t, 2, core.NewDT())
	// Deliver data for unknown flows directly: receivers must materialize.
	rdma := pkt.NewData(50, 1, 0, pkt.PrioLossless, pkt.ClassLossless, 0, 500)
	rdma.FlowFin = true
	tcp := pkt.NewData(51, 1, 0, pkt.PrioLossy, pkt.ClassLossy, 0, 500)
	tcp.FlowFin = true

	h := tb.hosts[0]
	h.HandleArrival(rdma, h.NIC())
	h.HandleArrival(tcp, h.NIC())
	tb.eng.RunAll()

	if h.FlowsCompleted != 2 {
		t.Errorf("completions = %d, want 2 (one per on-demand receiver)", h.FlowsCompleted)
	}
	if _, ok := tb.completed[50]; !ok {
		t.Error("RDMA completion not reported")
	}
	if _, ok := tb.completed[51]; !ok {
		t.Error("TCP completion not reported")
	}
}

func TestDuplicateFlowFinDoesNotDoubleCount(t *testing.T) {
	tb := newTestbed(t, 2, core.NewDT())
	h := tb.hosts[0]
	p := pkt.NewData(60, 1, 0, pkt.PrioLossless, pkt.ClassLossless, 0, 500)
	p.FlowFin = true
	h.HandleArrival(p, h.NIC())
	dup := *p
	h.HandleArrival(&dup, h.NIC())
	if h.FlowsCompleted != 1 {
		t.Errorf("completions = %d, want 1", h.FlowsCompleted)
	}
}

func TestManyConcurrentSmallFlows(t *testing.T) {
	// Stress the demux: 60 flows across 6 hosts, both classes, all complete.
	tb := newTestbed(t, 6, core.NewDefaultL2BM())
	id := pkt.FlowID(0)
	for src := 0; src < 6; src++ {
		for k := 0; k < 10; k++ {
			id++
			class := pkt.ClassLossless
			prio := pkt.PrioLossless
			if k%2 == 0 {
				class = pkt.ClassLossy
				prio = pkt.PrioLossy
			}
			dst := (src + 1 + k) % 6
			if dst == src {
				dst = (dst + 1) % 6
			}
			tb.hosts[src].StartFlow(&transport.Flow{
				ID: id, Src: src, Dst: dst, Size: int64(1000 * (k + 1)),
				Priority: prio, Class: class,
			})
		}
	}
	tb.eng.RunAll()
	if len(tb.completed) != 60 {
		t.Fatalf("completed %d/60", len(tb.completed))
	}
	var started, completedCount uint64
	for _, h := range tb.hosts {
		started += h.FlowsStarted
		completedCount += h.FlowsCompleted
	}
	if started != 60 || completedCount != 60 {
		t.Errorf("host counters: started=%d completed=%d", started, completedCount)
	}
}

func TestCompletionTimesMonotoneWithSize(t *testing.T) {
	// Same path, same start: the 10x larger flow must finish later.
	tb := newTestbed(t, 3, core.NewDT())
	tb.hosts[0].StartFlow(tb.flow(1, 0, 2, 10_000, pkt.ClassLossless))
	tb.hosts[1].StartFlow(tb.flow(2, 1, 2, 100_000, pkt.ClassLossless))
	tb.eng.RunAll()
	small, okS := tb.completed[1]
	big, okB := tb.completed[2]
	if !okS || !okB {
		t.Fatal("flows incomplete")
	}
	if small >= big {
		t.Errorf("small flow (%v) should finish before 10x flow (%v)", small, big)
	}
	_ = sim.Time(0)
}
