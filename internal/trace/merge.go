// Canonical trace merging: the sharded runner gives every shard its own
// Recorder (rings are single-threaded like the engine that feeds them), so
// a run's trace arrives as N per-shard recorders. Merge folds them into one
// canonically-ordered recorder; the classic runner routes its single
// recorder through the same function so exported trace files are
// byte-identical across shard counts.
package trace

import "sort"

// Merge combines the retained events of the given recorders into one new
// recorder in canonical order: each channel is stably sorted by (time,
// switch name). Every switch lives on exactly one shard, so its events
// arrive already time-ordered within one input and the stable sort
// preserves that per-switch order while fixing a deterministic interleave
// across switches — the result depends only on what was recorded, never on
// how the recording was split across shards. Nil inputs are skipped; the
// output's channels are sized to hold everything (no eviction during the
// merge). Note that per-shard rings only hold identical content for every
// shard count as long as no input ring evicted history; size capacities
// accordingly when byte-identical traces matter.
func Merge(recorders ...*Recorder) *Recorder {
	var occ []OccSample
	var pfc []PFCEvent
	var weights []WeightSample
	var pkts []PacketEvent
	for _, r := range recorders {
		if r == nil {
			continue
		}
		occ = append(occ, r.OccSamples()...)
		pfc = append(pfc, r.PFCEvents()...)
		weights = append(weights, r.WeightSamples()...)
		pkts = append(pkts, r.PacketEvents()...)
	}
	sort.SliceStable(occ, func(i, j int) bool {
		if occ[i].At != occ[j].At {
			return occ[i].At < occ[j].At
		}
		return occ[i].Switch < occ[j].Switch
	})
	sort.SliceStable(pfc, func(i, j int) bool {
		if pfc[i].At != pfc[j].At {
			return pfc[i].At < pfc[j].At
		}
		return pfc[i].Switch < pfc[j].Switch
	})
	sort.SliceStable(weights, func(i, j int) bool {
		if weights[i].At != weights[j].At {
			return weights[i].At < weights[j].At
		}
		return weights[i].Switch < weights[j].Switch
	})
	sort.SliceStable(pkts, func(i, j int) bool {
		if pkts[i].At != pkts[j].At {
			return pkts[i].At < pkts[j].At
		}
		return pkts[i].Switch < pkts[j].Switch
	})

	maxLen := len(occ)
	for _, n := range []int{len(pfc), len(weights), len(pkts)} {
		if n > maxLen {
			maxLen = n
		}
	}
	if maxLen == 0 {
		maxLen = 1
	}
	out := NewRecorder(maxLen)
	for _, s := range occ {
		out.RecordOcc(s)
	}
	for _, e := range pfc {
		out.RecordPFC(e)
	}
	for _, s := range weights {
		out.RecordWeight(s)
	}
	for _, e := range pkts {
		out.RecordPacketEvent(e)
	}
	return out
}
