package trace

// ring is a bounded FIFO that overwrites its oldest entry once full — the
// flight-recorder storage discipline: a run can emit an unbounded event
// stream, memory stays O(capacity), and the *most recent* window survives,
// which is the window a post-mortem wants.
//
// The buffer grows lazily up to its capacity so an armed-but-quiet channel
// costs a few words, not capacity*sizeof(T).
type ring[T any] struct {
	buf     []T
	cap     int
	start   int    // index of the oldest entry once the buffer wrapped
	wrapped bool   // len(buf) == cap and start may be non-zero
	evicted uint64 // entries overwritten since the recorder was armed
}

func newRing[T any](capacity int) ring[T] {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return ring[T]{cap: capacity}
}

// push appends v, evicting the oldest entry when full.
func (r *ring[T]) push(v T) {
	if !r.wrapped {
		r.buf = append(r.buf, v)
		if len(r.buf) == r.cap {
			r.wrapped = true
		}
		return
	}
	r.buf[r.start] = v
	r.start++
	if r.start == r.cap {
		r.start = 0
	}
	r.evicted++
}

// len returns the number of retained entries.
func (r *ring[T]) len() int { return len(r.buf) }

// slice returns the retained entries oldest-first. The result is a fresh
// slice; mutating it does not disturb the ring.
func (r *ring[T]) slice() []T {
	if len(r.buf) == 0 {
		return nil
	}
	out := make([]T, 0, len(r.buf))
	out = append(out, r.buf[r.start:]...)
	out = append(out, r.buf[:r.start]...)
	return out
}
