package trace

import (
	"reflect"
	"testing"
)

// TestMergeCanonicalOrder: two recorders holding interleaved per-switch
// histories merge into one (time, switch)-ordered stream, regardless of
// which recorder held which switch.
func TestMergeCanonicalOrder(t *testing.T) {
	a := NewRecorder(16)
	b := NewRecorder(16)
	// Switch "agg0" lives on recorder a, "tor1" on b; their samples
	// interleave in time.
	a.RecordOcc(OccSample{At: 10, Switch: "agg0", Resident: 1})
	a.RecordOcc(OccSample{At: 30, Switch: "agg0", Resident: 3})
	b.RecordOcc(OccSample{At: 10, Switch: "tor1", Resident: 2})
	b.RecordOcc(OccSample{At: 20, Switch: "tor1", Resident: 4})
	a.RecordPFC(PFCEvent{At: 15, Switch: "agg0", Port: 1, Kind: PFCAssert})
	b.RecordPFC(PFCEvent{At: 15, Switch: "tor1", Port: 2, Kind: PFCAssert})

	ab := Merge(a, b)
	ba := Merge(b, a)

	wantOcc := []OccSample{
		{At: 10, Switch: "agg0", Resident: 1},
		{At: 10, Switch: "tor1", Resident: 2},
		{At: 20, Switch: "tor1", Resident: 4},
		{At: 30, Switch: "agg0", Resident: 3},
	}
	if got := ab.OccSamples(); !reflect.DeepEqual(got, wantOcc) {
		t.Errorf("Merge(a,b) occ = %v, want %v", got, wantOcc)
	}
	// Canonical: input order must not matter.
	if !reflect.DeepEqual(ab.OccSamples(), ba.OccSamples()) {
		t.Errorf("Merge is sensitive to input order: %v vs %v",
			ab.OccSamples(), ba.OccSamples())
	}
	if !reflect.DeepEqual(ab.PFCEvents(), ba.PFCEvents()) {
		t.Errorf("PFC merge is sensitive to input order")
	}
	if len(ab.PFCEvents()) != 2 || ab.PFCEvents()[0].Switch != "agg0" {
		t.Errorf("PFC tie at t=15 not broken by switch name: %v", ab.PFCEvents())
	}
}

// TestMergeNilAndEmpty: nil recorders are skipped and an all-empty merge
// yields a usable empty recorder.
func TestMergeNilAndEmpty(t *testing.T) {
	a := NewRecorder(4)
	a.RecordWeight(WeightSample{At: 5, Switch: "tor0", Weight: 1.5})
	out := Merge(nil, a, nil)
	if got := out.WeightSamples(); len(got) != 1 || got[0].Weight != 1.5 {
		t.Errorf("merge with nils lost data: %v", got)
	}
	empty := Merge(nil, NewRecorder(4))
	if empty == nil || len(empty.OccSamples()) != 0 {
		t.Errorf("empty merge should yield an empty recorder")
	}
}

// TestMergePreservesPerSwitchOrder: equal-time samples of the SAME switch
// from one input keep their recorded order (stable sort).
func TestMergePreservesPerSwitchOrder(t *testing.T) {
	a := NewRecorder(8)
	a.RecordPFC(PFCEvent{At: 7, Switch: "tor0", Port: 1, Kind: PFCAssert})
	a.RecordPFC(PFCEvent{At: 7, Switch: "tor0", Port: 1, Kind: PFCRelease})
	out := Merge(a)
	ev := out.PFCEvents()
	if len(ev) != 2 || ev[0].Kind != PFCAssert || ev[1].Kind != PFCRelease {
		t.Errorf("same-switch same-time order not preserved: %v", ev)
	}
}
