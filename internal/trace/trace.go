// Package trace is the flight-recorder telemetry subsystem: a per-run
// Recorder with typed, ring-buffered channels capturing the time-series the
// paper's evaluation plots — switch occupancy and shared-pool usage
// (Figs. 7(c), 8, 10(c)), per-(port, priority) PFC pause/resume intervals
// (Fig. 7(d), Table II episodes), L2BM weight/threshold/τ evolution
// (Algorithm 1 / Eq. 3–4), and drop/ECN events — so any run can explain
// *why* its end-of-run scalars came out the way they did.
//
// Design contract (the observer-effect guarantee):
//
//   - Recording is feed-forward only. Probes read model state and append to
//     ring buffers; nothing in this package mutates the simulation, draws
//     from its random streams, or changes event ordering among model
//     events. A traced run therefore produces byte-identical results to an
//     untraced run, and two traced runs produce byte-identical trace files.
//   - A nil *Recorder is the disabled state. Hot-path probe sites compile
//     to a single branch-on-nil (`if s.tracer != nil { ... }`), and every
//     Record method is additionally nil-safe, so the off cost is ≤1% on
//     the MMU admission benchmark (BenchmarkAdmitTraceOff).
//   - Channels are bounded rings (see ring.go): memory stays O(capacity)
//     per channel and the most recent window survives, flight-recorder
//     style. Eviction counts are reported via Stats.
package trace

import (
	"fmt"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
)

// DefaultCapacity is the per-channel ring capacity used when NewRecorder is
// given a non-positive capacity: 64k events per channel (a few MB per run).
const DefaultCapacity = 1 << 16

// OccSample is one occupancy reading of a switch: the total resident bytes
// (reserved + shared + headroom — the quantity the paper plots) and the
// shared-service-pool usage Q(t) that drives every policy's threshold.
type OccSample struct {
	At         sim.Time `json:"at_ps"`
	Switch     string   `json:"switch"`
	Resident   int64    `json:"resident"`
	SharedUsed int64    `json:"shared_used"`
}

// PFCKind discriminates pause-channel events.
type PFCKind int

const (
	// PFCAssert: the MMU crossed an ingress queue's PFC threshold and sent
	// an XOFF upstream.
	PFCAssert PFCKind = iota + 1
	// PFCRelease: occupancy fell under the hysteresis band and the MMU
	// sent an XON.
	PFCRelease
	// PFCReissue: the lost-pause guard re-sent an XOFF (fault injection).
	PFCReissue
	// PortPaused: a transmitter actually stopped serving a priority (the
	// peer's XOFF took effect — one propagation delay after PFCAssert).
	PortPaused
	// PortResumed: the transmitter resumed (XON took effect, or the
	// deadlock detector force-resumed it).
	PortResumed
)

// String implements fmt.Stringer.
func (k PFCKind) String() string {
	switch k {
	case PFCAssert:
		return "assert"
	case PFCRelease:
		return "release"
	case PFCReissue:
		return "reissue"
	case PortPaused:
		return "port-paused"
	case PortResumed:
		return "port-resumed"
	default:
		return fmt.Sprintf("pfc-kind(%d)", int(k))
	}
}

// PFCEvent is one pause-state transition. Assert/Release/Reissue carry the
// MMU's view (Switch is the switch asserting, Port its ingress port);
// PortPaused/PortResumed carry the transmitter's view (Switch is the node
// owning the paused port — possibly a host NIC).
type PFCEvent struct {
	At     sim.Time `json:"at_ps"`
	Switch string   `json:"switch"`
	Port   int      `json:"port"`
	Prio   int      `json:"prio"`
	Kind   PFCKind  `json:"kind"`
}

// PauseInterval is one contiguous pause episode reconstructed from
// PFCEvents (see Recorder.PauseIntervals).
type PauseInterval struct {
	Switch string   `json:"switch"`
	Port   int      `json:"port"`
	Prio   int      `json:"prio"`
	Kind   PFCKind  `json:"kind"` // PFCAssert (MMU view) or PortPaused (TX view)
	From   sim.Time `json:"from_ps"`
	To     sim.Time `json:"to_ps"`
	// Open marks an episode still in progress at the end of the recording
	// (To is then the recording horizon, not a resume).
	Open bool `json:"open,omitempty"`
}

// Duration returns the episode length.
func (i PauseInterval) Duration() sim.Duration { return i.To - i.From }

// WeightSample is one ingress queue's adaptive L2BM state: the sojourn
// estimate τ (Algorithm 1), the congestion-perception weight w = C/τ·α
// (Eq. 4) and the resulting byte threshold T = w·(B−Q(t)) (Eq. 3).
type WeightSample struct {
	At        sim.Time     `json:"at_ps"`
	Switch    string       `json:"switch"`
	Port      int          `json:"port"`
	Prio      int          `json:"prio"`
	Tau       sim.Duration `json:"tau_ps"`
	Weight    float64      `json:"weight"`
	Threshold int64        `json:"threshold"`
}

// PacketEventKind discriminates per-packet admission-path events.
type PacketEventKind int

const (
	// DropLossyIngress: a lossy packet exceeded its ingress threshold.
	DropLossyIngress PacketEventKind = iota + 1
	// DropLossyEgress: a lossy packet exceeded its egress-queue threshold.
	DropLossyEgress
	// LosslessViolation: a lossless packet arrived with headroom exhausted
	// (the no-loss guarantee broke — fault injection or misconfiguration).
	LosslessViolation
	// HeadroomEnter: a lossless packet was charged to PFC headroom.
	HeadroomEnter
	// ECNMark: the egress queue marked the packet CE.
	ECNMark
	// EvictLossy: a preemptive policy (Occamy) evicted an already-admitted
	// lossy packet from an egress queue tail to make room for an arrival.
	EvictLossy
)

// String implements fmt.Stringer.
func (k PacketEventKind) String() string {
	switch k {
	case DropLossyIngress:
		return "drop-ingress"
	case DropLossyEgress:
		return "drop-egress"
	case LosslessViolation:
		return "lossless-violation"
	case HeadroomEnter:
		return "headroom"
	case ECNMark:
		return "ecn-mark"
	case EvictLossy:
		return "evict-lossy"
	default:
		return fmt.Sprintf("pkt-event(%d)", int(k))
	}
}

// PacketEvent is one admission-path event. Port is the ingress port for
// ingress-side kinds and the egress port for egress-side kinds.
type PacketEvent struct {
	At     sim.Time        `json:"at_ps"`
	Switch string          `json:"switch"`
	Port   int             `json:"port"`
	Prio   int             `json:"prio"`
	Kind   PacketEventKind `json:"kind"`
	Size   int             `json:"size"`
	Class  pkt.Class       `json:"class"`
}

// Recorder is a per-run flight recorder. It is single-threaded like the
// engine that feeds it: all Record calls happen on the simulation
// goroutine. The zero value is not useful; construct with NewRecorder. A
// nil *Recorder is the disabled recorder: every method is a no-op.
type Recorder struct {
	occ     ring[OccSample]
	pfc     ring[PFCEvent]
	weights ring[WeightSample]
	pkts    ring[PacketEvent]
}

// NewRecorder returns an armed recorder whose channels each retain up to
// capacity events (DefaultCapacity when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	return &Recorder{
		occ:     newRing[OccSample](capacity),
		pfc:     newRing[PFCEvent](capacity),
		weights: newRing[WeightSample](capacity),
		pkts:    newRing[PacketEvent](capacity),
	}
}

// Enabled reports whether the recorder is armed (non-nil).
func (r *Recorder) Enabled() bool { return r != nil }

// RecordOcc appends an occupancy sample.
func (r *Recorder) RecordOcc(s OccSample) {
	if r == nil {
		return
	}
	r.occ.push(s)
}

// RecordPFC appends a pause-channel transition.
func (r *Recorder) RecordPFC(e PFCEvent) {
	if r == nil {
		return
	}
	r.pfc.push(e)
}

// RecordWeight appends an L2BM weight/τ/threshold sample.
func (r *Recorder) RecordWeight(s WeightSample) {
	if r == nil {
		return
	}
	r.weights.push(s)
}

// RecordPacketEvent appends a drop/ECN/headroom event.
func (r *Recorder) RecordPacketEvent(e PacketEvent) {
	if r == nil {
		return
	}
	r.pkts.push(e)
}

// OccSamples returns the retained occupancy samples, oldest first.
func (r *Recorder) OccSamples() []OccSample {
	if r == nil {
		return nil
	}
	return r.occ.slice()
}

// PFCEvents returns the retained pause transitions, oldest first.
func (r *Recorder) PFCEvents() []PFCEvent {
	if r == nil {
		return nil
	}
	return r.pfc.slice()
}

// WeightSamples returns the retained weight samples, oldest first.
func (r *Recorder) WeightSamples() []WeightSample {
	if r == nil {
		return nil
	}
	return r.weights.slice()
}

// PacketEvents returns the retained packet events, oldest first.
func (r *Recorder) PacketEvents() []PacketEvent {
	if r == nil {
		return nil
	}
	return r.pkts.slice()
}

// Stats summarizes channel fill and eviction (how much history the rings
// had to discard).
type Stats struct {
	OccSamples, OccEvicted       uint64
	PFCEvents, PFCEvicted        uint64
	WeightSamples, WeightEvicted uint64
	PacketEvents, PacketEvicted  uint64
}

// Stats returns the channel accounting; the zero Stats for a nil recorder.
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	return Stats{
		OccSamples: uint64(r.occ.len()), OccEvicted: r.occ.evicted,
		PFCEvents: uint64(r.pfc.len()), PFCEvicted: r.pfc.evicted,
		WeightSamples: uint64(r.weights.len()), WeightEvicted: r.weights.evicted,
		PacketEvents: uint64(r.pkts.len()), PacketEvicted: r.pkts.evicted,
	}
}

// PauseIntervals reconstructs contiguous pause episodes from the PFC
// channel, pairing assert→release transitions per (switch, port, prio)
// separately for the MMU view (PFCAssert/PFCReissue → PFCRelease) and the
// transmitter view (PortPaused → PortResumed). Episodes still open at the
// end of the recording are closed at upTo and flagged Open. Intervals are
// returned in episode-start order (stable, since events are time-ordered).
func (r *Recorder) PauseIntervals(upTo sim.Time) []PauseInterval {
	if r == nil {
		return nil
	}
	type key struct {
		sw         string
		port, prio int
		tx         bool
	}
	open := make(map[key]int) // -> index into out, episode still open
	var out []PauseInterval
	for _, e := range r.pfc.slice() {
		k := key{e.Switch, e.Port, e.Prio, e.Kind == PortPaused || e.Kind == PortResumed}
		switch e.Kind {
		case PFCAssert, PortPaused:
			if _, dup := open[k]; dup {
				continue // already paused (shouldn't happen; be lenient)
			}
			kind := PFCAssert
			if k.tx {
				kind = PortPaused
			}
			open[k] = len(out)
			out = append(out, PauseInterval{
				Switch: e.Switch, Port: e.Port, Prio: e.Prio,
				Kind: kind, From: e.At, Open: true,
			})
		case PFCReissue:
			// A reissue extends an (already open) episode; if the ring
			// evicted the original assert, treat it as an episode start.
			if _, ok := open[k]; !ok {
				open[k] = len(out)
				out = append(out, PauseInterval{
					Switch: e.Switch, Port: e.Port, Prio: e.Prio,
					Kind: PFCAssert, From: e.At, Open: true,
				})
			}
		case PFCRelease, PortResumed:
			if i, ok := open[k]; ok {
				out[i].To = e.At
				out[i].Open = false
				delete(open, k)
			}
		}
	}
	for _, i := range open {
		out[i].To = upTo
	}
	return out
}
