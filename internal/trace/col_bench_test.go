package trace

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"l2bm/internal/colfmt"
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
)

// benchRecorder builds a deterministic synthetic flight recorder shaped
// like a traced tiny-scale run: monotone timestamps, a small switch-name
// vocabulary, bursty PFC episodes.
func benchRecorder() (*Recorder, sim.Time) {
	r := NewRecorder(1 << 17)
	rng := rand.New(rand.NewSource(42))
	switches := make([]string, 8)
	for i := range switches {
		switches[i] = fmt.Sprintf("tor-%02d", i)
	}
	var at sim.Time
	for i := 0; i < 50_000; i++ {
		at += sim.Time(rng.Intn(100_000) + 1)
		r.RecordOcc(OccSample{At: at, Switch: switches[i%len(switches)],
			Resident: int64(rng.Intn(1 << 20)), SharedUsed: int64(rng.Intn(1 << 19))})
		if i%10 == 0 {
			r.RecordWeight(WeightSample{At: at, Switch: switches[i%len(switches)],
				Port: i % 4, Prio: i % 2, Tau: sim.Duration(rng.Intn(1_000_000)),
				Weight: rng.Float64(), Threshold: int64(rng.Intn(1 << 18))})
		}
		if i%25 == 0 {
			kind := PFCAssert
			if i%50 == 0 {
				kind = PFCRelease
			}
			r.RecordPFC(PFCEvent{At: at, Switch: switches[i%len(switches)],
				Port: i % 4, Prio: 0, Kind: kind})
		}
		if i%5 == 0 {
			class, kind := pkt.ClassLossy, DropLossyIngress
			if i%10 == 0 {
				class, kind = pkt.ClassLossless, HeadroomEnter
			}
			r.RecordPacketEvent(PacketEvent{At: at, Switch: switches[i%len(switches)],
				Port: i % 4, Prio: i % 2, Kind: kind, Size: 1500, Class: class})
		}
	}
	return r, at + 1
}

// BenchmarkColfmtWrite measures the columnar export against the CSV/JSONL
// export of the same recorder: throughput via ns/op and the artifact size
// via the artifact-B metric (the size advantage the columnar format exists
// for). The csv case sums all five row-wise files, matching WriteTrace.
func BenchmarkColfmtWrite(b *testing.B) {
	r, horizon := benchRecorder()

	b.Run("col", func(b *testing.B) {
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			f := colfmt.NewFile()
			r.AppendCol(f, horizon)
			if _, err := f.WriteTo(&buf); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(buf.Len()), "artifact-B")
	})

	b.Run("csv", func(b *testing.B) {
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := r.WriteOccupancyCSV(&buf); err != nil {
				b.Fatal(err)
			}
			if err := r.WritePauseIntervalsCSV(&buf, horizon); err != nil {
				b.Fatal(err)
			}
			if err := r.WriteWeightsCSV(&buf); err != nil {
				b.Fatal(err)
			}
			if err := r.WritePacketEventsCSV(&buf); err != nil {
				b.Fatal(err)
			}
			if err := r.WriteJSONL(&buf); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(buf.Len()), "artifact-B")
	})
}
