package trace

import (
	"l2bm/internal/sim"
)

// SwitchView is the minimal read-only surface the sampler needs from a
// switch. It is satisfied by *switchsim.Switch; trace deliberately does not
// import switchsim (switchsim imports trace for its probe hooks).
type SwitchView interface {
	// Name returns the switch's identifier as used in trace records.
	Name() string
	// Occupancy returns total resident bytes (reserved + shared + headroom).
	Occupancy() int64
	// SharedUsed returns the shared-service-pool usage Q(t).
	SharedUsed() int64
}

// Probe is a user-supplied periodic probe: called at every sampler tick with
// the current simulation time, it reads model state and appends records.
// Probes MUST be pure reads of the model (the observer-effect contract):
// they may only mutate the recorder.
type Probe func(now sim.Time, rec *Recorder)

// Sampler drives periodic occupancy sampling (and any registered probes)
// off the simulation engine. It schedules itself as ordinary engine events,
// which changes event sequence numbers but — because its callbacks are pure
// reads — cannot change the relative order or outcome of model events.
type Sampler struct {
	eng     *sim.Engine
	rec     *Recorder
	every   sim.Duration
	sws     []SwitchView
	probes  []Probe
	stopped bool

	// until is the sampling horizon; tickFn is the pre-bound tick body so
	// each rescheduling tick costs zero allocations instead of a fresh
	// closure per tick.
	until  sim.Time
	tickFn sim.Callback
}

// NewSampler returns a sampler ticking every `every` picoseconds. It panics
// on a non-positive interval (a zero interval would stall the engine).
func NewSampler(eng *sim.Engine, rec *Recorder, every sim.Duration) *Sampler {
	if every <= 0 {
		panic("trace: sampler interval must be positive")
	}
	s := &Sampler{eng: eng, rec: rec, every: every}
	s.tickFn = s.tick
	return s
}

// AddSwitch registers a switch for periodic occupancy sampling.
func (s *Sampler) AddSwitch(v SwitchView) { s.sws = append(s.sws, v) }

// AddProbe registers an extra per-tick probe (e.g. an L2BM weight reader).
func (s *Sampler) AddProbe(p Probe) { s.probes = append(s.probes, p) }

// Start schedules the first tick one interval from now and keeps ticking
// until the simulation clock passes `until` or Stop is called.
func (s *Sampler) Start(until sim.Time) {
	s.until = until
	s.eng.Schedule(s.every, s.tickFn)
}

// Stop halts the sampler after the current tick.
func (s *Sampler) Stop() { s.stopped = true }

func (s *Sampler) tick() {
	if s.stopped {
		return
	}
	now := s.eng.Now()
	if now > s.until {
		return
	}
	for _, sw := range s.sws {
		s.rec.RecordOcc(OccSample{
			At:         now,
			Switch:     sw.Name(),
			Resident:   sw.Occupancy(),
			SharedUsed: sw.SharedUsed(),
		})
	}
	for _, p := range s.probes {
		p(now, s.rec)
	}
	s.eng.Schedule(s.every, s.tickFn)
}
