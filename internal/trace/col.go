package trace

// Columnar export: the recorder's channels rendered into a colfmt.File,
// mirroring the CSV exporters column-for-column (same names, same units,
// same derived pause-interval view) so either format carries the full
// flight-recorder story. Strings (switch names, event kinds, classes) are
// dictionary-encoded and timestamps delta-encoded, which is where the
// columnar file wins its size advantage over row-wise CSV.

import (
	"l2bm/internal/colfmt"
	"l2bm/internal/sim"
)

// Columnar channel names written by AppendCol.
const (
	ColOccupancy = "trace/occupancy"
	ColPFC       = "trace/pfc"
	ColPauses    = "trace/pauses"
	ColWeights   = "trace/weights"
	ColEvents    = "trace/events"
)

// AppendCol renders every retained channel into f. Pause episodes are
// reconstructed up to horizon, exactly like WritePauseIntervalsCSV. A nil
// recorder appends nothing.
func (r *Recorder) AppendCol(f *colfmt.File, horizon sim.Time) {
	if r == nil {
		return
	}
	occ := r.OccSamples()
	ats := make([]int64, len(occ))
	sws := make([]string, len(occ))
	res := make([]int64, len(occ))
	shared := make([]int64, len(occ))
	for i, s := range occ {
		ats[i], sws[i], res[i], shared[i] = int64(s.At), s.Switch, s.Resident, s.SharedUsed
	}
	f.Channel(ColOccupancy).
		Time("at_ps", ats).Str("switch", sws).Int("resident", res).Int("shared_used", shared)

	pfc := r.PFCEvents()
	ats = make([]int64, len(pfc))
	sws = make([]string, len(pfc))
	ports := make([]int64, len(pfc))
	prios := make([]int64, len(pfc))
	kinds := make([]string, len(pfc))
	for i, e := range pfc {
		ats[i], sws[i], ports[i], prios[i], kinds[i] =
			int64(e.At), e.Switch, int64(e.Port), int64(e.Prio), e.Kind.String()
	}
	f.Channel(ColPFC).
		Time("at_ps", ats).Str("switch", sws).Int("port", ports).Int("prio", prios).Str("kind", kinds)

	pauses := r.PauseIntervals(horizon)
	sws = make([]string, len(pauses))
	ports = make([]int64, len(pauses))
	prios = make([]int64, len(pauses))
	views := make([]string, len(pauses))
	froms := make([]int64, len(pauses))
	tos := make([]int64, len(pauses))
	opens := make([]uint64, len(pauses))
	for i, p := range pauses {
		view := "mmu"
		if p.Kind == PortPaused {
			view = "tx"
		}
		var open uint64
		if p.Open {
			open = 1
		}
		sws[i], ports[i], prios[i], views[i] = p.Switch, int64(p.Port), int64(p.Prio), view
		froms[i], tos[i], opens[i] = int64(p.From), int64(p.To), open
	}
	f.Channel(ColPauses).
		Str("switch", sws).Int("port", ports).Int("prio", prios).Str("view", views).
		Time("from_ps", froms).Time("to_ps", tos).Uint("open", opens)

	weights := r.WeightSamples()
	ats = make([]int64, len(weights))
	sws = make([]string, len(weights))
	ports = make([]int64, len(weights))
	prios = make([]int64, len(weights))
	taus := make([]int64, len(weights))
	ws := make([]float64, len(weights))
	ths := make([]int64, len(weights))
	for i, s := range weights {
		ats[i], sws[i], ports[i], prios[i] = int64(s.At), s.Switch, int64(s.Port), int64(s.Prio)
		taus[i], ws[i], ths[i] = int64(s.Tau), s.Weight, s.Threshold
	}
	f.Channel(ColWeights).
		Time("at_ps", ats).Str("switch", sws).Int("port", ports).Int("prio", prios).
		Int("tau_ps", taus).Float("weight", ws).Int("threshold", ths)

	pkts := r.PacketEvents()
	ats = make([]int64, len(pkts))
	sws = make([]string, len(pkts))
	ports = make([]int64, len(pkts))
	prios = make([]int64, len(pkts))
	kinds = make([]string, len(pkts))
	sizes := make([]int64, len(pkts))
	classes := make([]string, len(pkts))
	for i, e := range pkts {
		ats[i], sws[i], ports[i], prios[i] = int64(e.At), e.Switch, int64(e.Port), int64(e.Prio)
		kinds[i], sizes[i], classes[i] = e.Kind.String(), int64(e.Size), e.Class.String()
	}
	f.Channel(ColEvents).
		Time("at_ps", ats).Str("switch", sws).Int("port", ports).Int("prio", prios).
		Str("kind", kinds).Int("size", sizes).Str("class", classes)
}
