package trace

// Exporters: CSV (one file per channel, ready for gnuplot/pandas) and JSONL
// (all channels interleaved in time order, one self-describing record per
// line). Timestamps are exported as integer picoseconds (`at_ps`) so files
// from two runs diff cleanly — no float formatting ambiguity.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"l2bm/internal/sim"
)

// WriteOccupancyCSV writes the occupancy channel as
// at_ps,switch,resident,shared_used.
func (r *Recorder) WriteOccupancyCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "at_ps,switch,resident,shared_used")
	for _, s := range r.OccSamples() {
		fmt.Fprintf(bw, "%d,%s,%d,%d\n", int64(s.At), s.Switch, s.Resident, s.SharedUsed)
	}
	return bw.Flush()
}

// WritePauseIntervalsCSV reconstructs pause episodes up to horizon and
// writes them as switch,port,prio,view,from_ps,to_ps,duration_ps,open.
func (r *Recorder) WritePauseIntervalsCSV(w io.Writer, horizon sim.Time) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "switch,port,prio,view,from_ps,to_ps,duration_ps,open")
	for _, i := range r.PauseIntervals(horizon) {
		view := "mmu"
		if i.Kind == PortPaused {
			view = "tx"
		}
		open := 0
		if i.Open {
			open = 1
		}
		fmt.Fprintf(bw, "%s,%d,%d,%s,%d,%d,%d,%d\n",
			i.Switch, i.Port, i.Prio, view, int64(i.From), int64(i.To), int64(i.Duration()), open)
	}
	return bw.Flush()
}

// WriteWeightsCSV writes the L2BM weight channel as
// at_ps,switch,port,prio,tau_ps,weight,threshold.
func (r *Recorder) WriteWeightsCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "at_ps,switch,port,prio,tau_ps,weight,threshold")
	for _, s := range r.WeightSamples() {
		fmt.Fprintf(bw, "%d,%s,%d,%d,%d,%.9g,%d\n",
			int64(s.At), s.Switch, s.Port, s.Prio, int64(s.Tau), s.Weight, s.Threshold)
	}
	return bw.Flush()
}

// WritePacketEventsCSV writes the drop/ECN/headroom channel as
// at_ps,switch,port,prio,kind,size,class.
func (r *Recorder) WritePacketEventsCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "at_ps,switch,port,prio,kind,size,class")
	for _, e := range r.PacketEvents() {
		fmt.Fprintf(bw, "%d,%s,%d,%d,%s,%d,%s\n",
			int64(e.At), e.Switch, e.Port, e.Prio, e.Kind, e.Size, e.Class)
	}
	return bw.Flush()
}

// jsonlRecord is the envelope for interleaved JSONL export: Type
// discriminates which channel the record came from.
type jsonlRecord struct {
	Type string `json:"type"`
	At   int64  `json:"at_ps"`
	Body any    `json:"body"`
}

// WriteJSONL writes every retained record from every channel, interleaved
// in time order (stable across channels: occ < pfc < weight < pkt at equal
// timestamps, preserving within-channel order), one JSON object per line:
//
//	{"type":"occ","at_ps":...,"body":{...}}
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	type item struct {
		at    sim.Time
		chOrd int // channel rank for stable cross-channel ordering
		seq   int // within-channel order
		rec   jsonlRecord
	}
	var items []item
	for i, s := range r.OccSamples() {
		items = append(items, item{s.At, 0, i, jsonlRecord{"occ", int64(s.At), s}})
	}
	for i, e := range r.PFCEvents() {
		items = append(items, item{e.At, 1, i, jsonlRecord{"pfc", int64(e.At), e}})
	}
	for i, s := range r.WeightSamples() {
		items = append(items, item{s.At, 2, i, jsonlRecord{"weight", int64(s.At), s}})
	}
	for i, e := range r.PacketEvents() {
		items = append(items, item{e.At, 3, i, jsonlRecord{"pkt", int64(e.At), e}})
	}
	sort.SliceStable(items, func(a, b int) bool {
		if items[a].at != items[b].at {
			return items[a].at < items[b].at
		}
		if items[a].chOrd != items[b].chOrd {
			return items[a].chOrd < items[b].chOrd
		}
		return items[a].seq < items[b].seq
	})
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, it := range items {
		if err := enc.Encode(it.rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}
