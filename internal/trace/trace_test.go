package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
)

func TestRingBelowCapacity(t *testing.T) {
	r := newRing[int](8)
	for i := 0; i < 5; i++ {
		r.push(i)
	}
	got := r.slice()
	if len(got) != 5 || r.evicted != 0 {
		t.Fatalf("len=%d evicted=%d, want 5/0", len(got), r.evicted)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("slice[%d]=%d, want %d", i, v, i)
		}
	}
}

func TestRingWrapKeepsNewestWindow(t *testing.T) {
	r := newRing[int](4)
	for i := 0; i < 11; i++ {
		r.push(i)
	}
	got := r.slice()
	want := []int{7, 8, 9, 10}
	if len(got) != len(want) {
		t.Fatalf("len=%d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slice=%v, want %v", got, want)
		}
	}
	if r.evicted != 7 {
		t.Fatalf("evicted=%d, want 7", r.evicted)
	}
	// The returned slice is a copy.
	got[0] = -1
	if r.slice()[0] != 7 {
		t.Fatal("slice() aliases the ring buffer")
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.RecordOcc(OccSample{})
	r.RecordPFC(PFCEvent{})
	r.RecordWeight(WeightSample{})
	r.RecordPacketEvent(PacketEvent{})
	if r.OccSamples() != nil || r.PFCEvents() != nil || r.WeightSamples() != nil || r.PacketEvents() != nil {
		t.Fatal("nil recorder returned non-nil channel")
	}
	if r.Stats() != (Stats{}) {
		t.Fatal("nil recorder returned non-zero stats")
	}
	if r.PauseIntervals(0) != nil {
		t.Fatal("nil recorder returned pause intervals")
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteJSONL: err=%v len=%d", err, buf.Len())
	}
}

func TestPauseIntervalReconstruction(t *testing.T) {
	r := NewRecorder(0)
	// MMU view on (s0, port 1, prio 3): assert@10, reissue@20, release@30.
	r.RecordPFC(PFCEvent{At: 10, Switch: "s0", Port: 1, Prio: 3, Kind: PFCAssert})
	r.RecordPFC(PFCEvent{At: 20, Switch: "s0", Port: 1, Prio: 3, Kind: PFCReissue})
	r.RecordPFC(PFCEvent{At: 30, Switch: "s0", Port: 1, Prio: 3, Kind: PFCRelease})
	// TX view on the same tuple, independent episode left open.
	r.RecordPFC(PFCEvent{At: 15, Switch: "s0", Port: 1, Prio: 3, Kind: PortPaused})
	// Second MMU episode still open at horizon.
	r.RecordPFC(PFCEvent{At: 40, Switch: "s0", Port: 1, Prio: 3, Kind: PFCAssert})

	ivals := r.PauseIntervals(100)
	if len(ivals) != 3 {
		t.Fatalf("got %d intervals, want 3: %+v", len(ivals), ivals)
	}
	if ivals[0].Kind != PFCAssert || ivals[0].From != 10 || ivals[0].To != 30 || ivals[0].Open {
		t.Fatalf("mmu episode 1 = %+v", ivals[0])
	}
	if ivals[1].Kind != PortPaused || ivals[1].From != 15 || ivals[1].To != 100 || !ivals[1].Open {
		t.Fatalf("tx episode = %+v", ivals[1])
	}
	if ivals[2].Kind != PFCAssert || ivals[2].From != 40 || ivals[2].To != 100 || !ivals[2].Open {
		t.Fatalf("mmu episode 2 = %+v", ivals[2])
	}
	if d := ivals[0].Duration(); d != 20 {
		t.Fatalf("duration=%d, want 20", d)
	}
}

func TestPauseIntervalReissueAfterEviction(t *testing.T) {
	// With capacity 2, the original assert is evicted; the reissue must
	// start a fresh episode rather than being dropped.
	r := NewRecorder(2)
	r.RecordPFC(PFCEvent{At: 10, Switch: "s0", Kind: PFCAssert})
	r.RecordPFC(PFCEvent{At: 20, Switch: "s0", Kind: PFCReissue})
	r.RecordPFC(PFCEvent{At: 30, Switch: "s0", Kind: PFCRelease})
	ivals := r.PauseIntervals(100)
	if len(ivals) != 1 || ivals[0].From != 20 || ivals[0].To != 30 || ivals[0].Open {
		t.Fatalf("got %+v, want one closed [20,30] episode", ivals)
	}
}

type fakeSwitch struct {
	name string
	occ  int64
	shr  int64
}

func (f *fakeSwitch) Name() string      { return f.name }
func (f *fakeSwitch) Occupancy() int64  { return f.occ }
func (f *fakeSwitch) SharedUsed() int64 { return f.shr }

func TestSamplerTicksAndStops(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := NewRecorder(0)
	fs := &fakeSwitch{name: "tor0"}
	s := NewSampler(eng, rec, 100)
	s.AddSwitch(fs)
	probeCalls := 0
	s.AddProbe(func(now sim.Time, r *Recorder) {
		probeCalls++
		r.RecordWeight(WeightSample{At: now, Switch: "tor0"})
	})
	// Drive the "model": occupancy grows by 7 bytes every 40ps.
	var grow func()
	grow = func() {
		fs.occ += 7
		fs.shr += 3
		if eng.Now() < 1000 {
			eng.Schedule(40, grow)
		}
	}
	eng.Schedule(40, grow)
	s.Start(500)
	eng.Run(2000)

	occ := rec.OccSamples()
	// Ticks at 100..500 inclusive = 5 samples; tick at 600 observes now>until.
	if len(occ) != 5 {
		t.Fatalf("got %d occ samples: %+v", len(occ), occ)
	}
	for i, o := range occ {
		wantAt := sim.Time(100 * (i + 1))
		if o.At != wantAt || o.Switch != "tor0" {
			t.Fatalf("sample %d = %+v, want at=%d", i, o, wantAt)
		}
		if o.Resident <= 0 || o.SharedUsed <= 0 {
			t.Fatalf("sample %d did not observe model state: %+v", i, o)
		}
	}
	if probeCalls != 5 || len(rec.WeightSamples()) != 5 {
		t.Fatalf("probe calls=%d weights=%d, want 5/5", probeCalls, len(rec.WeightSamples()))
	}

	// Stop() halts a fresh sampler immediately.
	s2 := NewSampler(eng, rec, 100)
	s2.Start(5000)
	s2.Stop()
	before := len(rec.OccSamples())
	eng.Run(5000)
	if len(rec.OccSamples()) != before {
		t.Fatal("stopped sampler kept recording")
	}
}

func TestSamplerRejectsNonPositiveInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSampler(every=0) did not panic")
		}
	}()
	NewSampler(sim.NewEngine(1), NewRecorder(0), 0)
}

func TestCSVExporters(t *testing.T) {
	r := NewRecorder(0)
	r.RecordOcc(OccSample{At: 5, Switch: "s0", Resident: 100, SharedUsed: 60})
	r.RecordPFC(PFCEvent{At: 7, Switch: "s0", Port: 2, Prio: 3, Kind: PFCAssert})
	r.RecordPFC(PFCEvent{At: 9, Switch: "s0", Port: 2, Prio: 3, Kind: PFCRelease})
	r.RecordWeight(WeightSample{At: 8, Switch: "s0", Port: 2, Prio: 3, Tau: 1500, Weight: 0.25, Threshold: 4096})
	r.RecordPacketEvent(PacketEvent{At: 9, Switch: "s0", Port: 1, Prio: 0, Kind: DropLossyIngress, Size: 1500, Class: pkt.ClassLossy})

	var occ, pause, wts, pkts bytes.Buffer
	if err := r.WriteOccupancyCSV(&occ); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePauseIntervalsCSV(&pause, 100); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteWeightsCSV(&wts); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePacketEventsCSV(&pkts); err != nil {
		t.Fatal(err)
	}
	if got := occ.String(); got != "at_ps,switch,resident,shared_used\n5,s0,100,60\n" {
		t.Fatalf("occupancy CSV:\n%s", got)
	}
	if got := pause.String(); got != "switch,port,prio,view,from_ps,to_ps,duration_ps,open\ns0,2,3,mmu,7,9,2,0\n" {
		t.Fatalf("pause CSV:\n%s", got)
	}
	if !strings.Contains(wts.String(), "8,s0,2,3,1500,0.25,4096") {
		t.Fatalf("weights CSV:\n%s", wts.String())
	}
	if !strings.Contains(pkts.String(), "9,s0,1,0,drop-ingress,1500,lossy") {
		t.Fatalf("packet CSV:\n%s", pkts.String())
	}
}

func TestJSONLInterleavesInTimeOrder(t *testing.T) {
	r := NewRecorder(0)
	r.RecordPacketEvent(PacketEvent{At: 30, Switch: "s0", Kind: ECNMark})
	r.RecordOcc(OccSample{At: 10, Switch: "s0"})
	r.RecordPFC(PFCEvent{At: 20, Switch: "s0", Kind: PFCAssert})
	r.RecordWeight(WeightSample{At: 20, Switch: "s0"})
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	var seen []struct {
		Type string `json:"type"`
		At   int64  `json:"at_ps"`
	}
	for _, ln := range lines {
		var rec struct {
			Type string `json:"type"`
			At   int64  `json:"at_ps"`
		}
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", ln, err)
		}
		seen = append(seen, rec)
	}
	wantOrder := []string{"occ", "pfc", "weight", "pkt"}
	wantAt := []int64{10, 20, 20, 30}
	for i := range seen {
		if seen[i].Type != wantOrder[i] || seen[i].At != wantAt[i] {
			t.Fatalf("line %d = %+v, want type=%s at=%d", i, seen[i], wantOrder[i], wantAt[i])
		}
	}
}

func TestStatsCountsEviction(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.RecordOcc(OccSample{At: sim.Time(i)})
	}
	st := r.Stats()
	if st.OccSamples != 2 || st.OccEvicted != 3 {
		t.Fatalf("stats=%+v, want 2 retained / 3 evicted", st)
	}
}
