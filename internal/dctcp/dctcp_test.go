package dctcp

import (
	"testing"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/transport"
)

// fakeEnv captures sent packets and drives timers off a real engine.
type fakeEnv struct {
	eng     *sim.Engine
	sent    []*pkt.Packet
	backlog int
}

var _ transport.Env = (*fakeEnv)(nil)

func (e *fakeEnv) Now() sim.Time      { return e.eng.Now() }
func (e *fakeEnv) Send(p *pkt.Packet) { e.sent = append(e.sent, p) }
func (e *fakeEnv) NICBacklog(int) int { return e.backlog }
func (e *fakeEnv) Pool() *pkt.Pool    { return nil }
func (e *fakeEnv) Schedule(d sim.Duration, fn func()) sim.EventRef {
	return e.eng.Schedule(d, fn)
}

func newFlow(size int64) *transport.Flow {
	return &transport.Flow{
		ID:       1,
		Src:      0,
		Dst:      1,
		Size:     size,
		Priority: pkt.PrioLossy,
		Class:    pkt.ClassLossy,
	}
}

func ackFor(f *transport.Flow, cum int64, ece bool) *pkt.Packet {
	return pkt.NewAck(f.ID, f.Dst, f.Src, cum, ece)
}

func TestSenderInitialWindow(t *testing.T) {
	env := &fakeEnv{eng: sim.NewEngine(1)}
	f := newFlow(1 << 20)
	s := NewSender(env, DefaultConfig(), f, nil)
	s.Start()

	if got := len(env.sent); got != 10 {
		t.Fatalf("initial burst = %d segments, want 10 (IW)", got)
	}
	for i, p := range env.sent {
		if p.Seq != int64(i*pkt.MTUPayload) {
			t.Errorf("segment %d has seq %d", i, p.Seq)
		}
		if p.Kind != pkt.KindData || p.Class != pkt.ClassLossy {
			t.Errorf("segment %d wrong kind/class", i)
		}
	}
}

func TestSenderSlowStartGrowth(t *testing.T) {
	env := &fakeEnv{eng: sim.NewEngine(1)}
	f := newFlow(1 << 20)
	s := NewSender(env, DefaultConfig(), f, nil)
	s.Start()
	before := s.Cwnd()

	// Ack the first 5 segments: slow start adds the acked bytes.
	s.HandleAck(ackFor(f, 5*int64(pkt.MTUPayload), false))
	if want := before + 5*float64(pkt.MTUPayload); s.Cwnd() != want {
		t.Errorf("cwnd = %v, want %v", s.Cwnd(), want)
	}
}

func TestSenderECNCutOncePerWindow(t *testing.T) {
	env := &fakeEnv{eng: sim.NewEngine(1)}
	cfg := DefaultConfig()
	f := newFlow(1 << 20)
	s := NewSender(env, cfg, f, nil)
	s.Start()

	sentEnd := int64(10 * pkt.MTUPayload)
	// All 10 initial segments acked with ECE. Crossing winEnd=0 happens on
	// the first ACK, so α updates from the first window's feedback.
	for cum := int64(pkt.MTUPayload); cum <= sentEnd; cum += int64(pkt.MTUPayload) {
		s.HandleAck(ackFor(f, cum, true))
	}
	if s.Alpha() <= 0 {
		t.Error("α should grow after marked window")
	}
	if s.Cwnd() >= float64(cfg.InitCwndSegments*cfg.MSS)+float64(sentEnd) {
		t.Error("cwnd should have been cut below pure slow-start growth")
	}
}

func TestSenderAlphaConvergesUnderFullMarking(t *testing.T) {
	env := &fakeEnv{eng: sim.NewEngine(1)}
	f := newFlow(64 << 20)
	s := NewSender(env, DefaultConfig(), f, nil)
	s.Start()

	// Drive many fully marked windows: α → 1.
	for i := 0; i < 2000 && !s.Done(); i++ {
		cum := s.sndUna + int64(pkt.MTUPayload)
		if cum > f.Size {
			cum = f.Size
		}
		s.HandleAck(ackFor(f, cum, true))
	}
	if s.Alpha() < 0.5 {
		t.Errorf("α = %v after persistent marking, want near 1", s.Alpha())
	}
}

func TestSenderFastRetransmitOnTripleDup(t *testing.T) {
	env := &fakeEnv{eng: sim.NewEngine(1)}
	f := newFlow(1 << 20)
	s := NewSender(env, DefaultConfig(), f, nil)
	s.Start()
	sentBefore := len(env.sent)
	cwndBefore := s.Cwnd()

	// Segment 0 lost: three dup ACKs at cum=0... cum must equal sndUna.
	for i := 0; i < 3; i++ {
		s.HandleAck(ackFor(f, 0, false))
	}
	if s.Retransmissions != 1 {
		t.Fatalf("retransmissions = %d, want 1", s.Retransmissions)
	}
	// The retransmitted segment is seq 0.
	var resent *pkt.Packet
	for _, p := range env.sent[sentBefore:] {
		if p.Seq == 0 {
			resent = p
		}
	}
	if resent == nil {
		t.Fatal("segment 0 was not retransmitted")
	}
	if s.Cwnd() >= cwndBefore {
		t.Errorf("cwnd = %v, want reduced below %v", s.Cwnd(), cwndBefore)
	}
}

func TestSenderRTORecovers(t *testing.T) {
	eng := sim.NewEngine(1)
	env := &fakeEnv{eng: eng}
	cfg := DefaultConfig()
	f := newFlow(10 * int64(pkt.MTUPayload))
	s := NewSender(env, cfg, f, nil)
	s.Start()
	sentBefore := len(env.sent)

	// No ACKs arrive: the RTO must fire and go-back-N.
	eng.Run(cfg.MinRTO + sim.Microsecond)
	if s.Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", s.Timeouts)
	}
	if len(env.sent) <= sentBefore {
		t.Fatal("no retransmission after RTO")
	}
	if env.sent[sentBefore].Seq != 0 {
		t.Errorf("first retransmission seq = %d, want 0", env.sent[sentBefore].Seq)
	}
	if s.Cwnd() != float64(cfg.MSS) {
		t.Errorf("cwnd after RTO = %v, want 1 MSS", s.Cwnd())
	}

	// Backoff doubles: second RTO fires 2·MinRTO later.
	prevTimeouts := s.Timeouts
	eng.Run(eng.Now() + cfg.MinRTO + sim.Microsecond)
	if s.Timeouts != prevTimeouts {
		t.Error("second RTO fired too early (no backoff)")
	}
	eng.Run(eng.Now() + cfg.MinRTO + sim.Microsecond)
	if s.Timeouts != prevTimeouts+1 {
		t.Error("second RTO did not fire after backoff interval")
	}
}

func TestSenderCompletion(t *testing.T) {
	env := &fakeEnv{eng: sim.NewEngine(1)}
	f := newFlow(2500) // 3 segments: 1000+1000+500
	doneAt := sim.Time(-1)
	s := NewSender(env, DefaultConfig(), f, func() { doneAt = env.Now() })
	s.Start()

	if len(env.sent) != 3 {
		t.Fatalf("sent %d segments, want 3", len(env.sent))
	}
	if !env.sent[2].FlowFin || env.sent[2].PayloadLen != 500 {
		t.Error("last segment should be the 500-byte FIN")
	}
	s.HandleAck(ackFor(f, 2500, false))
	if !s.Done() || doneAt < 0 {
		t.Error("sender did not complete on full ACK")
	}
	// RTO must be disarmed: advancing far must not retransmit.
	env.eng.Run(sim.Second)
	if s.Timeouts != 0 {
		t.Error("RTO fired after completion")
	}
}

func TestReceiverInOrderAndEcho(t *testing.T) {
	env := &fakeEnv{eng: sim.NewEngine(1)}
	var completed sim.Time = -1
	r := NewReceiver(env, 1, 1, 0, func(at sim.Time) { completed = at })

	p1 := pkt.NewData(1, 0, 1, pkt.PrioLossy, pkt.ClassLossy, 0, 1000)
	p1.CE = true
	r.HandleData(p1)
	if len(env.sent) != 1 || env.sent[0].Kind != pkt.KindAck {
		t.Fatal("no ACK emitted")
	}
	if env.sent[0].Seq != 1000 || !env.sent[0].ECE {
		t.Errorf("ACK cum/ECE = %d/%v, want 1000/true", env.sent[0].Seq, env.sent[0].ECE)
	}

	p2 := pkt.NewData(1, 0, 1, pkt.PrioLossy, pkt.ClassLossy, 1000, 500)
	p2.FlowFin = true
	r.HandleData(p2)
	if !r.Complete() || completed < 0 {
		t.Error("receiver did not complete")
	}
	if env.sent[1].Seq != 1500 || env.sent[1].ECE {
		t.Errorf("final ACK cum/ECE = %d/%v, want 1500/false", env.sent[1].Seq, env.sent[1].ECE)
	}
}

func TestReceiverOutOfOrderReassembly(t *testing.T) {
	env := &fakeEnv{eng: sim.NewEngine(1)}
	r := NewReceiver(env, 1, 1, 0, nil)

	seg := func(seq int64, fin bool) *pkt.Packet {
		p := pkt.NewData(1, 0, 1, pkt.PrioLossy, pkt.ClassLossy, seq, 1000)
		p.FlowFin = fin
		return p
	}
	// Arrivals: 0, 2000, 3000(fin), then the hole at 1000.
	r.HandleData(seg(0, false))
	r.HandleData(seg(2000, false))
	r.HandleData(seg(3000, true))
	if r.Complete() {
		t.Fatal("completed with a hole outstanding")
	}
	if env.sent[2].Seq != 1000 {
		t.Errorf("dup ACK cum = %d, want 1000", env.sent[2].Seq)
	}
	r.HandleData(seg(1000, false))
	if !r.Complete() {
		t.Fatal("did not complete after hole filled")
	}
	if got := env.sent[3].Seq; got != 4000 {
		t.Errorf("final cum = %d, want 4000", got)
	}
	if r.Received() != 4000 {
		t.Errorf("Received() = %d, want 4000", r.Received())
	}
}

func TestReceiverDuplicateDataIdempotent(t *testing.T) {
	env := &fakeEnv{eng: sim.NewEngine(1)}
	done := 0
	r := NewReceiver(env, 1, 1, 0, func(sim.Time) { done++ })
	p := pkt.NewData(1, 0, 1, pkt.PrioLossy, pkt.ClassLossy, 0, 1000)
	p.FlowFin = true
	r.HandleData(p)
	r.HandleData(p)
	if done != 1 {
		t.Errorf("completion fired %d times, want 1", done)
	}
	if r.Received() != 1000 {
		t.Errorf("Received() = %d after duplicate, want 1000", r.Received())
	}
}

func TestSenderConfigValidation(t *testing.T) {
	env := &fakeEnv{eng: sim.NewEngine(1)}
	t.Run("bad flow", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		NewSender(env, DefaultConfig(), newFlow(0), nil)
	})
	t.Run("bad config", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		cfg := DefaultConfig()
		cfg.G = 2
		NewSender(env, cfg, newFlow(1000), nil)
	})
}
