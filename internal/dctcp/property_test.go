package dctcp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
)

// Property: whatever ACK sequence arrives (in-order, duplicate, stale,
// marked), the sender's window stays within [1 MSS, flow size + IW] and α
// within [0, 1].
func TestSenderInvariantsUnderRandomAcks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := &fakeEnv{eng: sim.NewEngine(seed)}
		flow := newFlow(1 << 20)
		s := NewSender(env, DefaultConfig(), flow, nil)
		s.Start()

		for i := 0; i < 500 && !s.Done(); i++ {
			var cum int64
			switch rng.Intn(4) {
			case 0: // normal progress
				cum = s.sndUna + int64(rng.Intn(3)+1)*int64(pkt.MTUPayload)
			case 1: // duplicate
				cum = s.sndUna
			case 2: // stale (below sndUna)
				cum = s.sndUna - int64(rng.Intn(2000))
				if cum < 0 {
					cum = 0
				}
			default: // jump (cumulative ack of burst)
				cum = s.sndUna + int64(rng.Intn(20_000))
			}
			if cum > flow.Size {
				cum = flow.Size
			}
			s.HandleAck(ackFor(flow, cum, rng.Intn(3) == 0))

			if s.Cwnd() < float64(pkt.MTUPayload) {
				return false
			}
			if s.Alpha() < 0 || s.Alpha() > 1 {
				return false
			}
			if s.sndUna > s.sndNxt || s.sndNxt > flow.Size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the receiver's cumulative ACK equals exactly the contiguous
// prefix delivered, for any arrival permutation of the flow's segments.
func TestReceiverReassemblyAnyOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := &fakeEnv{eng: sim.NewEngine(seed)}
		done := false
		r := NewReceiver(env, 1, 1, 0, func(sim.Time) { done = true })

		const segs = 20
		order := rng.Perm(segs)
		for _, idx := range order {
			p := pkt.NewData(1, 0, 1, pkt.PrioLossy, pkt.ClassLossy,
				int64(idx*pkt.MTUPayload), pkt.MTUPayload)
			p.FlowFin = idx == segs-1
			r.HandleData(p)
		}
		return done && r.Received() == segs*int64(pkt.MTUPayload) && r.Complete()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: with a lossy channel that eventually delivers (every segment
// dropped at most twice), the sender-receiver pair always completes the
// flow via retransmission.
func TestLoopbackWithRandomLossCompletes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine(seed)

		var s *Sender
		var r *Receiver
		dropped := make(map[int64]int)

		senderEnv := &callbackEnv{eng: eng}
		receiverEnv := &callbackEnv{eng: eng}

		flow := newFlow(60_000)
		complete := false
		r = NewReceiver(receiverEnv, flow.ID, flow.Dst, flow.Src, func(sim.Time) { complete = true })
		s = NewSender(senderEnv, DefaultConfig(), flow, nil)

		senderEnv.deliver = func(p *pkt.Packet) {
			// Drop ~30% of data packets, at most twice per segment.
			if rng.Intn(10) < 3 && dropped[p.Seq] < 2 {
				dropped[p.Seq]++
				return
			}
			cp := *p
			eng.Schedule(10*sim.Microsecond, func() { r.HandleData(&cp) })
		}
		receiverEnv.deliver = func(p *pkt.Packet) {
			cp := *p
			eng.Schedule(10*sim.Microsecond, func() { s.HandleAck(&cp) })
		}

		s.Start()
		eng.Run(2 * sim.Second)
		return complete && s.Done()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// callbackEnv routes Send through a configurable delivery function.
type callbackEnv struct {
	eng     *sim.Engine
	deliver func(p *pkt.Packet)
}

func (e *callbackEnv) Now() sim.Time      { return e.eng.Now() }
func (e *callbackEnv) Send(p *pkt.Packet) { e.deliver(p) }
func (e *callbackEnv) NICBacklog(int) int { return 0 }
func (e *callbackEnv) Pool() *pkt.Pool    { return nil }

func (e *callbackEnv) Schedule(d sim.Duration, fn func()) sim.EventRef {
	return e.eng.Schedule(d, fn)
}
