// Package dctcp implements the DCTCP transport (Alizadeh et al., SIGCOMM
// 2010) used for the paper's lossy TCP traffic: window-based congestion
// control whose window reduction is proportional to the fraction of
// ECN-marked bytes, with fast retransmit and retransmission timeouts for
// loss recovery.
//
// Simplifications versus a production stack, all documented in DESIGN.md:
// per-packet ACKs with an accurate per-packet ECN echo (DCTCP's delayed-ACK
// echo state machine collapses to this at delayed-ACK factor 1), and
// byte-counted windows.
package dctcp

import (
	"math"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/transport"
)

// Config parameterizes DCTCP endpoints.
type Config struct {
	// MSS is the payload bytes per segment.
	MSS int
	// InitCwndSegments is the initial window in segments.
	InitCwndSegments int
	// G is DCTCP's EWMA gain g for the marked-fraction estimate.
	G float64
	// MinRTO is the floor of the retransmission timeout.
	MinRTO sim.Duration
	// MaxRTOBackoff caps exponential RTO backoff (as a multiplier).
	MaxRTOBackoff int
}

// DefaultConfig returns the DCTCP parameters used in the evaluation
// (g = 1/16 per the DCTCP paper; 1 ms RTO floor, a common datacenter
// setting).
func DefaultConfig() Config {
	return Config{
		MSS:              pkt.MTUPayload,
		InitCwndSegments: 10,
		G:                1.0 / 16,
		MinRTO:           sim.Millisecond,
		MaxRTOBackoff:    32,
	}
}

// Sender drives one DCTCP flow.
type Sender struct {
	env  transport.Env
	cfg  Config
	flow *transport.Flow
	pool *pkt.Pool // cached env.Pool(); nil = heap allocation

	// rtoFn is s.onRTO bound once: a method value allocates a closure at
	// every reference, and armRTO runs once per ACK on the hot path.
	rtoFn sim.Callback

	cwnd     float64 // bytes
	ssthresh float64
	sndUna   int64
	sndNxt   int64
	dupAcks  int

	alpha       float64
	ackedBytes  int64
	markedBytes int64
	winEnd      int64 // alpha-update / once-per-RTT-cut boundary

	inRecovery bool
	recoverEnd int64

	rto        sim.EventRef
	rtoBackoff int
	maxSent    int64 // highest byte ever emitted, for retransmit accounting
	done       bool
	onDone     func()

	// Retransmissions counts retransmitted segments (fast + timeout).
	Retransmissions uint64
	// Timeouts counts RTO firings.
	Timeouts uint64
	// RetransmittedBytes totals payload bytes re-emitted below the
	// high-water mark (fast retransmits and RTO rewinds).
	RetransmittedBytes int64
}

// NewSender builds a sender for flow. onDone, if non-nil, fires when every
// byte has been cumulatively acknowledged (sender-side completion; flow
// completion for metrics purposes is reported by the receiver).
func NewSender(env transport.Env, cfg Config, flow *transport.Flow, onDone func()) *Sender {
	if err := flow.Validate(); err != nil {
		panic(err.Error())
	}
	if cfg.MSS <= 0 || cfg.G <= 0 || cfg.G > 1 {
		panic("dctcp: invalid config")
	}
	s := &Sender{
		env:        env,
		cfg:        cfg,
		flow:       flow,
		pool:       env.Pool(),
		cwnd:       float64(cfg.InitCwndSegments * cfg.MSS),
		ssthresh:   float64(flow.Size), // effectively unbounded slow start
		alpha:      0,
		rtoBackoff: 1,
		onDone:     onDone,
	}
	s.rtoFn = s.onRTO
	return s
}

// Flow returns the flow descriptor.
func (s *Sender) Flow() *transport.Flow { return s.flow }

// Cwnd returns the current congestion window in bytes (for tests).
func (s *Sender) Cwnd() float64 { return s.cwnd }

// Alpha returns the current marked-fraction estimate (for tests).
func (s *Sender) Alpha() float64 { return s.alpha }

// Done reports sender-side completion.
func (s *Sender) Done() bool { return s.done }

// Warm hands the sender an established congestion state before Start: the
// window is set to cwnd bytes (floored at one MSS) and ssthresh is pulled
// down to match, so growth continues in congestion avoidance rather than
// slow start. The marked-fraction estimate is seeded with the DCTCP
// sawtooth equilibrium α ≈ sqrt(2·MSS/cwnd) — a warmed sender with α = 0
// would shrug off its first rounds of ECN marks and bully established
// flows sharing the queue. The hybrid-fidelity driver uses this when
// re-injecting a flow that was mid-transfer in the fluid layer — such a
// flow's window opened long ago, and restarting it cold would understate
// the queue pressure it exerts.
func (s *Sender) Warm(cwnd float64) {
	if cwnd < float64(s.cfg.MSS) {
		cwnd = float64(s.cfg.MSS)
	}
	s.cwnd = cwnd
	s.ssthresh = cwnd
	s.alpha = math.Sqrt(2 * float64(s.cfg.MSS) / cwnd)
	if s.alpha > 1 {
		s.alpha = 1
	}
}

// Start begins transmission.
func (s *Sender) Start() {
	s.winEnd = 0
	s.trySend()
}

// trySend emits as many segments as the window allows.
func (s *Sender) trySend() {
	if s.done {
		return
	}
	for s.sndNxt < s.flow.Size && s.sndNxt < s.sndUna+int64(s.cwnd) {
		s.sendSegment(s.sndNxt)
		payload := s.segmentLen(s.sndNxt)
		s.sndNxt += int64(payload)
	}
	if !s.rto.Pending() && s.sndUna < s.flow.Size {
		s.armRTO()
	}
}

func (s *Sender) segmentLen(seq int64) int {
	payload := s.cfg.MSS
	if rem := s.flow.Size - seq; rem < int64(payload) {
		payload = int(rem)
	}
	return payload
}

func (s *Sender) sendSegment(seq int64) {
	payload := s.segmentLen(seq)
	if end := seq + int64(payload); end > s.maxSent {
		s.maxSent = end
	} else {
		s.RetransmittedBytes += int64(payload)
	}
	p := s.pool.Data(s.flow.ID, s.flow.Src, s.flow.Dst, s.flow.Priority, s.flow.Class, seq, payload)
	p.FlowFin = seq+int64(payload) == s.flow.Size
	p.SentAt = s.env.Now()
	s.env.Send(p)
}

// HandleAck processes a cumulative acknowledgement.
func (s *Sender) HandleAck(ack *pkt.Packet) {
	if s.done {
		return
	}
	cum := ack.Seq
	if cum > s.sndNxt {
		// Acknowledgement for data never sent: a corrupt or misrouted
		// ACK. Clamp rather than corrupt window state.
		cum = s.sndNxt
	}
	if cum > s.sndUna {
		newly := cum - s.sndUna
		s.sndUna = cum
		s.dupAcks = 0
		s.rtoBackoff = 1

		s.ackedBytes += newly
		if ack.ECE {
			s.markedBytes += newly
		}

		if s.inRecovery && cum >= s.recoverEnd {
			s.inRecovery = false
		}
		if !s.inRecovery {
			if s.cwnd < s.ssthresh {
				s.cwnd += float64(newly) // slow start
			} else {
				s.cwnd += float64(s.cfg.MSS) * float64(newly) / s.cwnd
			}
		}

		if cum >= s.winEnd {
			s.updateAlphaWindow()
		}

		s.rearmRTO()
		if s.sndUna >= s.flow.Size {
			s.finish()
			return
		}
	} else {
		if ack.ECE {
			// Dup ACKs still carry marking state; count conservatively
			// as one MSS of marked feedback.
			s.markedBytes += int64(s.cfg.MSS)
			s.ackedBytes += int64(s.cfg.MSS)
		} else {
			s.ackedBytes += int64(s.cfg.MSS)
		}
		s.dupAcks++
		if s.dupAcks == 3 && !s.inRecovery {
			s.fastRetransmit()
		}
	}
	s.trySend()
}

// updateAlphaWindow closes one observation window: refresh α from the
// marked fraction and apply DCTCP's once-per-window cut if anything was
// marked.
func (s *Sender) updateAlphaWindow() {
	if s.ackedBytes > 0 {
		f := float64(s.markedBytes) / float64(s.ackedBytes)
		s.alpha = (1-s.cfg.G)*s.alpha + s.cfg.G*f
		if s.markedBytes > 0 && !s.inRecovery {
			s.cwnd *= 1 - s.alpha/2
			s.clampCwnd()
			s.ssthresh = s.cwnd
		}
	}
	s.ackedBytes, s.markedBytes = 0, 0
	s.winEnd = s.sndNxt
}

func (s *Sender) fastRetransmit() {
	s.Retransmissions++
	s.sendSegment(s.sndUna)
	s.ssthresh = s.cwnd / 2
	if s.ssthresh < 2*float64(s.cfg.MSS) {
		s.ssthresh = 2 * float64(s.cfg.MSS)
	}
	s.cwnd = s.ssthresh
	s.inRecovery = true
	s.recoverEnd = s.sndNxt
	s.rearmRTO()
}

func (s *Sender) clampCwnd() {
	if s.cwnd < float64(s.cfg.MSS) {
		s.cwnd = float64(s.cfg.MSS)
	}
}

func (s *Sender) armRTO() {
	backoff := sim.Duration(s.rtoBackoff)
	s.rto = s.env.Schedule(s.cfg.MinRTO*backoff, s.rtoFn)
}

func (s *Sender) rearmRTO() {
	s.rto.Cancel()
	if s.sndUna < s.flow.Size {
		s.armRTO()
	}
}

func (s *Sender) onRTO() {
	if s.done {
		return
	}
	s.Timeouts++
	s.Retransmissions++
	s.ssthresh = s.cwnd / 2
	if s.ssthresh < 2*float64(s.cfg.MSS) {
		s.ssthresh = 2 * float64(s.cfg.MSS)
	}
	s.cwnd = float64(s.cfg.MSS)
	s.dupAcks = 0
	s.inRecovery = false
	// Go-back-N from the hole.
	s.sndNxt = s.sndUna
	if s.rtoBackoff < s.cfg.MaxRTOBackoff {
		s.rtoBackoff *= 2
	}
	s.trySend()
}

func (s *Sender) finish() {
	s.done = true
	s.rto.Cancel()
	if s.onDone != nil {
		s.onDone()
	}
}

// Receiver reassembles one DCTCP flow and acknowledges every data packet
// with an accurate per-packet ECN echo.
type Receiver struct {
	env    transport.Env
	pool   *pkt.Pool // cached env.Pool(); nil = heap allocation
	flowID pkt.FlowID
	host   int // this host (ACK source)
	peer   int // sender host (ACK destination)

	recvNxt  int64
	ooo      map[int64]int64 // seq -> end, out-of-order segments
	expected int64           // total flow size, learned from the FIN segment
	complete bool
	onDone   func(at sim.Time)
}

// NewReceiver builds a receiver for flowID; onDone fires once when the byte
// stream is complete.
func NewReceiver(env transport.Env, flowID pkt.FlowID, host, peer int, onDone func(at sim.Time)) *Receiver {
	return &Receiver{
		env:    env,
		pool:   env.Pool(),
		flowID: flowID,
		host:   host,
		peer:   peer,
		ooo:    make(map[int64]int64),
		onDone: onDone,
	}
}

// Complete reports whether every byte arrived.
func (r *Receiver) Complete() bool { return r.complete }

// Received returns the contiguous byte count received so far.
func (r *Receiver) Received() int64 { return r.recvNxt }

// HandleData processes one data packet and emits the ACK.
func (r *Receiver) HandleData(p *pkt.Packet) {
	if p.FlowFin && p.End() > r.expected {
		r.expected = p.End()
	}
	if p.Seq <= r.recvNxt {
		if p.End() > r.recvNxt {
			r.recvNxt = p.End()
		}
		r.mergeOOO()
	} else if end, ok := r.ooo[p.Seq]; !ok || p.End() > end {
		r.ooo[p.Seq] = p.End()
	}

	ack := r.pool.Ack(r.flowID, r.host, r.peer, r.recvNxt, p.CE)
	r.env.Send(ack)

	if !r.complete && r.expected > 0 && r.recvNxt >= r.expected {
		r.complete = true
		if r.onDone != nil {
			r.onDone(r.env.Now())
		}
	}
}

// mergeOOO folds buffered segments into the contiguous prefix.
func (r *Receiver) mergeOOO() {
	for {
		progressed := false
		for seq, end := range r.ooo {
			if seq <= r.recvNxt {
				if end > r.recvNxt {
					r.recvNxt = end
				}
				delete(r.ooo, seq)
				progressed = true
			}
		}
		if !progressed {
			return
		}
	}
}
