// Package serve is the experiment service behind cmd/l2bmd: an HTTP/JSON
// daemon that accepts HybridSpec sweep submissions, runs them on a bounded
// admission queue over the exp worker pool, streams per-point progress and
// serves results and columnar artifacts.
//
// API (Go 1.22 method+wildcard mux patterns):
//
//	POST   /v1/sweeps              submit a sweep (202 + id; 400 invalid; 429 full)
//	GET    /v1/sweeps/{id}         status JSON
//	GET    /v1/sweeps/{id}/events  progress stream: NDJSON, or SSE with
//	                               Accept: text/event-stream (replays from the
//	                               start, then follows to the terminal state)
//	GET    /v1/sweeps/{id}/result  canonical result bytes (exp.MarshalResults
//	                               envelope — byte-identical to the CLI's
//	                               -spec output for the same specs)
//	GET    /v1/sweeps/{id}/trace   one point's columnar artifact (?point=N)
//	DELETE /v1/sweeps/{id}         cancel (dequeues a queued sweep; interrupts
//	                               a running one via context)
//	GET    /healthz                liveness probe
//
// Admission control: at most MaxConcurrent sweeps simulate at once; up to
// QueueDepth more wait FIFO; beyond that, submissions get 429 — the
// backpressure contract that keeps a shared daemon from melting under
// overlapping submissions. The content-hash result cache (exp.ResultCache)
// makes repeated or overlapping sweeps free: a cache hit skips the
// simulation and serves the stored canonical bytes, which are identical to
// what the fresh run would have produced.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"l2bm/internal/exp"
)

// Config parameterizes the server. The zero value serves with defaults: one
// sweep at a time, a queue of eight, GOMAXPROCS pool workers, no cache.
type Config struct {
	// MaxConcurrent bounds sweeps simulating at once (<= 0 means 1).
	MaxConcurrent int
	// QueueDepth bounds sweeps waiting for a slot (< 0 means 0; the
	// default is 8). A full queue answers 429.
	QueueDepth int
	// Workers is each sweep's exp.Pool worker bound (<= 0 = GOMAXPROCS).
	Workers int
	// CacheDir, when non-empty, arms the content-hash result cache there.
	CacheDir string
}

// DefaultQueueDepth is the admission queue bound when Config leaves
// QueueDepth zero.
const DefaultQueueDepth = 8

// Sweep states reported by status and events.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// Server is the HTTP handler. Construct with New.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	cache *exp.ResultCache

	// runPoint executes one point; tests swap in blocking fakes to exercise
	// admission and cancellation deterministically. Defaults to
	// exp.RunHybridCtx.
	runPoint func(ctx context.Context, spec exp.HybridSpec) (*exp.Result, error)

	mu      sync.Mutex
	sweeps  map[string]*sweep
	queue   []*sweep
	running int
	seq     int
}

// New builds a server. When cfg.CacheDir is set the cache directory is
// created eagerly so a misconfigured path fails at startup, not mid-sweep.
func New(cfg Config) (*Server, error) {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 1
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	s := &Server{
		cfg:      cfg,
		sweeps:   make(map[string]*sweep),
		runPoint: exp.RunHybridCtx,
	}
	if cfg.CacheDir != "" {
		cache, err := exp.NewResultCache(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		s.cache = cache
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/sweeps/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/sweeps/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	s.mux = mux
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// sweep is one submission's lifecycle. mu guards everything below it;
// notify is closed-and-replaced on every change (broadcast), so streamers
// wait without polling.
type sweep struct {
	id     string
	req    *exp.SweepRequest
	ctx    context.Context
	cancel context.CancelFunc

	mu         sync.Mutex
	notify     chan struct{}
	state      string
	completed  int
	cacheHits  int
	errMsg     string
	events     [][]byte      // NDJSON lines, no trailing newline
	results    []*exp.Result // set on done (in-memory artifacts)
	resultJSON []byte        // canonical MarshalRawResults bytes, set on done
}

func newSweep(id string, req *exp.SweepRequest) *sweep {
	ctx, cancel := context.WithCancel(context.Background())
	return &sweep{
		id: id, req: req, ctx: ctx, cancel: cancel,
		notify: make(chan struct{}), state: StateQueued,
	}
}

// event appends one NDJSON progress line and wakes streamers. Callers hold
// no locks; event takes sw.mu itself.
func (sw *sweep) event(v any) {
	line, err := json.Marshal(v)
	if err != nil {
		return
	}
	sw.mu.Lock()
	sw.events = append(sw.events, line)
	close(sw.notify)
	sw.notify = make(chan struct{})
	sw.mu.Unlock()
}

type stateEvent struct {
	Type      string `json:"type"`
	State     string `json:"state"`
	Completed int    `json:"completed"`
	Total     int    `json:"total"`
	CacheHits int    `json:"cacheHits"`
	Error     string `json:"error,omitempty"`
}

type pointEvent struct {
	Type             string `json:"type"`
	Index            int    `json:"index"`
	Name             string `json:"name"`
	Policy           string `json:"policy"`
	Cached           bool   `json:"cached"`
	FidelityFallback string `json:"fidelityFallback,omitempty"`
}

// setState transitions the sweep and emits the matching state event
// atomically, so a streamer that observes a terminal state has already
// received every prior event.
func (sw *sweep) setState(state, errMsg string) {
	sw.mu.Lock()
	if terminal(sw.state) {
		sw.mu.Unlock()
		return // a cancelled sweep stays cancelled
	}
	sw.state = state
	sw.errMsg = errMsg
	ev := stateEvent{Type: "state", State: state, Completed: sw.completed,
		Total: len(sw.req.Specs), CacheHits: sw.cacheHits, Error: errMsg}
	line, _ := json.Marshal(ev)
	sw.events = append(sw.events, line)
	close(sw.notify)
	sw.notify = make(chan struct{})
	sw.mu.Unlock()
}

type statusResponse struct {
	ID        string `json:"id"`
	Name      string `json:"name,omitempty"`
	State     string `json:"state"`
	Total     int    `json:"total"`
	Completed int    `json:"completed"`
	CacheHits int    `json:"cacheHits"`
	Error     string `json:"error,omitempty"`
}

func (sw *sweep) status() statusResponse {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return statusResponse{
		ID: sw.id, Name: sw.req.Name, State: sw.state, Total: len(sw.req.Specs),
		Completed: sw.completed, CacheHits: sw.cacheHits, Error: sw.errMsg,
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func jsonError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// maxRequestBytes bounds submission bodies (a 100k-point grid is still far
// below this; anything larger is a client bug, not a sweep).
const maxRequestBytes = 64 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes+1))
	if err != nil {
		jsonError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(body) > maxRequestBytes {
		jsonError(w, http.StatusRequestEntityTooLarge, "request exceeds %d bytes", maxRequestBytes)
		return
	}
	req, err := exp.ParseSweepRequest(body)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("sw-%03d-%.8s", s.seq, req.SweepID())
	sw := newSweep(id, req)
	s.sweeps[id] = sw
	switch {
	case s.running < s.cfg.MaxConcurrent:
		s.running++
		go s.run(sw)
	case len(s.queue) < s.cfg.QueueDepth:
		s.queue = append(s.queue, sw)
	default:
		delete(s.sweeps, id)
		queued := len(s.queue)
		s.mu.Unlock()
		jsonError(w, http.StatusTooManyRequests,
			"admission queue full (%d running, %d queued); retry later", s.cfg.MaxConcurrent, queued)
		return
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, sw.status())
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *sweep {
	id := r.PathValue("id")
	s.mu.Lock()
	sw := s.sweeps[id]
	s.mu.Unlock()
	if sw == nil {
		jsonError(w, http.StatusNotFound, "no sweep %q", id)
	}
	return sw
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if sw := s.lookup(w, r); sw != nil {
		writeJSON(w, http.StatusOK, sw.status())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	sw := s.lookup(w, r)
	if sw == nil {
		return
	}
	sw.mu.Lock()
	state, result := sw.state, sw.resultJSON
	sw.mu.Unlock()
	if state != StateDone {
		jsonError(w, http.StatusConflict, "sweep %s is %s, not done", sw.id, state)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(result)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	sw := s.lookup(w, r)
	if sw == nil {
		return
	}
	point, err := strconv.Atoi(r.URL.Query().Get("point"))
	if err != nil || point < 0 || point >= len(sw.req.Specs) {
		jsonError(w, http.StatusBadRequest, "?point must be in [0, %d)", len(sw.req.Specs))
		return
	}
	sw.mu.Lock()
	state, results := sw.state, sw.results
	sw.mu.Unlock()
	if state != StateDone || point >= len(results) || results[point] == nil {
		jsonError(w, http.StatusConflict, "sweep %s is %s; artifacts are served once done", sw.id, state)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := results[point].WriteCol(w); err != nil {
		// Headers are out; all we can do is drop the connection mid-body.
		return
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	sw := s.lookup(w, r)
	if sw == nil {
		return
	}
	s.mu.Lock()
	for i, queued := range s.queue {
		if queued == sw {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	sw.setState(StateCancelled, "cancelled by DELETE")
	sw.cancel() // interrupts a running pool at the next poll boundary
	writeJSON(w, http.StatusOK, sw.status())
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	sw := s.lookup(w, r)
	if sw == nil {
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	flusher, _ := w.(http.Flusher)
	cursor := 0
	for {
		sw.mu.Lock()
		for cursor >= len(sw.events) && !terminal(sw.state) {
			notify := sw.notify
			sw.mu.Unlock()
			select {
			case <-notify:
			case <-r.Context().Done():
				return
			}
			sw.mu.Lock()
		}
		batch := sw.events[cursor:len(sw.events):len(sw.events)]
		cursor = len(sw.events)
		done := terminal(sw.state) && cursor == len(sw.events)
		sw.mu.Unlock()
		for _, line := range batch {
			if sse {
				fmt.Fprintf(w, "data: %s\n\n", line)
			} else {
				w.Write(line)
				io.WriteString(w, "\n")
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if done {
			return
		}
	}
}

// run executes one admitted sweep and then hands its slot to the next
// queued one. Per-point flow: the cache is consulted in the worker (a hit
// skips the simulation entirely), fresh results are marshaled and stored
// from the collator (ascending order, single goroutine), and the final
// envelope is spliced from the per-point bytes — cached or fresh, the same
// bytes either way.
func (s *Server) run(sw *sweep) {
	defer s.finish(sw)
	sw.setState(StateRunning, "")
	n := len(sw.req.Specs)
	pointRaw := make([]json.RawMessage, n)
	cached := make([]bool, n)

	pool := &exp.Pool{Workers: s.cfg.Workers}
	results, _, err := pool.Run(sw.ctx, n,
		func(ctx context.Context, i int) (*exp.Result, error) {
			spec := sw.req.Specs[i]
			if raw, res, ok := s.cache.Get(spec); ok {
				pointRaw[i], cached[i] = raw, true
				return res, nil
			}
			return s.runPoint(ctx, spec)
		},
		func(i int, res *exp.Result) {
			if pointRaw[i] == nil {
				raw, merr := json.Marshal(res)
				if merr != nil {
					sw.event(map[string]string{"type": "error", "error": merr.Error()})
					return
				}
				pointRaw[i] = raw
				if err := s.cache.Put(sw.req.Specs[i], raw); err != nil {
					sw.event(map[string]string{"type": "cache-error", "error": err.Error()})
				}
			}
			sw.mu.Lock()
			sw.completed++
			if cached[i] {
				sw.cacheHits++
			}
			sw.mu.Unlock()
			sw.event(pointEvent{
				Type: "point", Index: i, Name: res.Spec.Name, Policy: res.Policy,
				Cached: cached[i], FidelityFallback: res.FidelityFallback,
			})
		})

	switch {
	case err == nil:
		sw.mu.Lock()
		sw.results = results
		sw.resultJSON = exp.MarshalRawResults(pointRaw)
		sw.mu.Unlock()
		sw.setState(StateDone, "")
	case sw.ctx.Err() != nil:
		sw.setState(StateCancelled, "cancelled by DELETE")
	default:
		sw.setState(StateFailed, err.Error())
	}
}

// finish releases the sweep's slot and starts the next live queued sweep.
func (s *Server) finish(_ *sweep) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.running--
	for len(s.queue) > 0 {
		next := s.queue[0]
		s.queue = s.queue[1:]
		next.mu.Lock()
		dead := terminal(next.state)
		next.mu.Unlock()
		if dead {
			continue // cancelled while queued
		}
		s.running++
		go s.run(next)
		return
	}
}
