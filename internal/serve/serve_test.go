package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"l2bm/internal/colfmt"
	"l2bm/internal/exp"
)

const sweepBody = `{"name":"rt","specs":[
	{"Name":"p-dt","Policy":"DT","Scale":"tiny","RDMALoad":0.4,"TCPLoad":0.4},
	{"Name":"p-l2bm","Policy":"L2BM","Scale":"tiny","RDMALoad":0.4,"TCPLoad":0.4}]}`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func submit(t *testing.T, ts *httptest.Server, body string) (statusResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status statusResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
			t.Fatal(err)
		}
	}
	return status, resp.StatusCode
}

func getStatus(t *testing.T, ts *httptest.Server, id string) statusResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status statusResponse
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	return status
}

func waitState(t *testing.T, ts *httptest.Server, id, want string) statusResponse {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		status := getStatus(t, ts, id)
		if status.State == want {
			return status
		}
		if terminal(status.State) {
			t.Fatalf("sweep %s reached %s (error %q), want %s", id, status.State, status.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("sweep %s never reached %s", id, want)
	return statusResponse{}
}

func getBody(t *testing.T, ts *httptest.Server, path string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body, resp.StatusCode
}

// TestServeRoundTripByteIdentical is the service's acceptance test: the
// daemon's result for a sweep — fresh on first submission, from cache on
// the second — is byte-identical to what the CLI/-spec path (MarshalResults
// over direct runs) produces for the same specs.
func TestServeRoundTripByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheDir: t.TempDir()})

	req, err := exp.ParseSweepRequest([]byte(sweepBody))
	if err != nil {
		t.Fatal(err)
	}
	direct := make([]*exp.Result, len(req.Specs))
	for i, spec := range req.Specs {
		if direct[i], err = exp.RunHybridCtx(context.Background(), spec); err != nil {
			t.Fatal(err)
		}
	}
	want, err := exp.MarshalResults(direct)
	if err != nil {
		t.Fatal(err)
	}

	status, code := submit(t, ts, sweepBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	done := waitState(t, ts, status.ID, StateDone)
	if done.CacheHits != 0 || done.Completed != 2 {
		t.Errorf("first run: completed=%d cacheHits=%d, want 2, 0", done.Completed, done.CacheHits)
	}
	got, code := getBody(t, ts, "/v1/sweeps/"+status.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: %d", code)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("daemon result differs from direct MarshalResults:\n%.200s\n%.200s", got, want)
	}

	// Resubmit: every point must come from the cache, bytes unchanged.
	again, code := submit(t, ts, sweepBody)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: %d", code)
	}
	if again.ID == status.ID {
		t.Error("resubmission reused the first sweep's id")
	}
	done = waitState(t, ts, again.ID, StateDone)
	if done.CacheHits != 2 {
		t.Errorf("resubmission cacheHits = %d, want 2", done.CacheHits)
	}
	cachedBytes, _ := getBody(t, ts, "/v1/sweeps/"+again.ID+"/result")
	if !bytes.Equal(cachedBytes, want) {
		t.Error("cache-hit result differs from the fresh result")
	}

	// The per-point columnar artifact is a decodable colfmt file.
	art, code := getBody(t, ts, "/v1/sweeps/"+status.ID+"/trace?point=0")
	if code != http.StatusOK {
		t.Fatalf("trace: %d", code)
	}
	dec, err := colfmt.Decode(art)
	if err != nil {
		t.Fatalf("trace artifact does not decode: %v", err)
	}
	if dec.Channel(exp.ColTCPSlowdowns) == nil {
		t.Error("trace artifact missing the TCP slowdown channel")
	}
}

// blockingServer returns a server whose points block until release is
// closed (or their context is cancelled) — the deterministic stand-in for
// long simulations in admission/cancellation tests.
func blockingServer(t *testing.T, cfg Config) (*Server, *httptest.Server, chan struct{}) {
	srv, ts := newTestServer(t, cfg)
	release := make(chan struct{})
	srv.runPoint = func(ctx context.Context, spec exp.HybridSpec) (*exp.Result, error) {
		select {
		case <-release:
			return &exp.Result{Spec: spec, Policy: spec.Policy}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return srv, ts, release
}

func oneSpec(name string) string {
	return fmt.Sprintf(`{"name":%q,"specs":[{"Name":%q,"Policy":"DT","Scale":"tiny","TCPLoad":0.1}]}`, name, name)
}

// TestServeAdmissionControl: MaxConcurrent sweeps run, QueueDepth wait,
// and the next submission is refused with 429 — then the queue drains in
// FIFO order once slots free up.
func TestServeAdmissionControl(t *testing.T) {
	_, ts, release := blockingServer(t, Config{MaxConcurrent: 1, QueueDepth: 1})

	first, code := submit(t, ts, oneSpec("a"))
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	waitState(t, ts, first.ID, StateRunning)

	second, code := submit(t, ts, oneSpec("b"))
	if code != http.StatusAccepted {
		t.Fatalf("second submit: %d", code)
	}
	if second.State != StateQueued {
		t.Errorf("second sweep state %q, want queued", second.State)
	}

	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(oneSpec("c")))
	if err != nil {
		t.Fatal(err)
	}
	overflow, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d, want 429", resp.StatusCode)
	}
	if !strings.Contains(string(overflow), "queue full") {
		t.Errorf("429 body %q does not explain the queue", overflow)
	}
	// A refused sweep leaves no residue: its id does not resolve.
	if _, code := getBody(t, ts, "/v1/sweeps/sw-003-whatever"); code != http.StatusNotFound {
		t.Errorf("refused sweep lookup: %d, want 404", code)
	}

	close(release)
	waitState(t, ts, first.ID, StateDone)
	waitState(t, ts, second.ID, StateDone)
}

// TestServeCancellation: DELETE dequeues a queued sweep (it never runs) and
// interrupts a running one through its context; both end cancelled and
// refuse /result with 409.
func TestServeCancellation(t *testing.T) {
	_, ts, release := blockingServer(t, Config{MaxConcurrent: 1, QueueDepth: 2})
	defer close(release)

	running, _ := submit(t, ts, oneSpec("running"))
	waitState(t, ts, running.ID, StateRunning)
	queued, _ := submit(t, ts, oneSpec("queued"))

	del := func(id string) statusResponse {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var status statusResponse
		if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
			t.Fatal(err)
		}
		return status
	}

	if status := del(queued.ID); status.State != StateCancelled {
		t.Errorf("queued sweep state after DELETE: %q", status.State)
	}
	if status := del(running.ID); status.State != StateCancelled {
		t.Errorf("running sweep state after DELETE: %q", status.State)
	}
	// The running sweep's pool unwinds via context; its state must stay
	// cancelled (not flip to failed when the pool returns ctx.Err).
	time.Sleep(50 * time.Millisecond)
	if status := getStatus(t, ts, running.ID); status.State != StateCancelled {
		t.Errorf("running sweep settled as %q, want cancelled", status.State)
	}
	if _, code := getBody(t, ts, "/v1/sweeps/"+running.ID+"/result"); code != http.StatusConflict {
		t.Errorf("result of cancelled sweep: %d, want 409", code)
	}

	// The slot freed by the cancellation admits new work; the cancelled
	// queued sweep is skipped, not resurrected.
	next, _ := submit(t, ts, oneSpec("next"))
	waitState(t, ts, next.ID, StateRunning)
	if status := getStatus(t, ts, queued.ID); status.State != StateCancelled {
		t.Errorf("dequeued sweep resurrected as %q", status.State)
	}
}

// TestServeEvents: the NDJSON stream replays every progress event through
// the terminal state; SSE framing is the same lines in data: frames.
func TestServeEvents(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, _ := submit(t, ts, oneSpec("ev"))
	waitState(t, ts, status.ID, StateDone)

	body, code := getBody(t, ts, "/v1/sweeps/"+status.ID+"/events")
	if code != http.StatusOK {
		t.Fatalf("events: %d", code)
	}
	lines := strings.Split(strings.TrimSuffix(string(body), "\n"), "\n")
	var states []string
	var points int
	for _, line := range lines {
		var ev struct {
			Type  string `json:"type"`
			State string `json:"state"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch ev.Type {
		case "state":
			states = append(states, ev.State)
		case "point":
			points++
		}
	}
	want := []string{StateRunning, StateDone}
	if strings.Join(states, ",") != strings.Join(want, ",") {
		t.Errorf("state sequence %v, want %v", states, want)
	}
	if points != 1 {
		t.Errorf("point events %d, want 1", points)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/sweeps/"+status.ID+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sse, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("SSE content type %q", ct)
	}
	for _, frame := range strings.Split(strings.TrimSpace(string(sse)), "\n\n") {
		if !strings.HasPrefix(frame, "data: ") {
			t.Errorf("SSE frame %q not data-framed", frame)
		}
	}
}

// TestServeValidation: malformed and misaddressed requests get crisp JSON
// errors with the right status codes, before any simulation.
func TestServeValidation(t *testing.T) {
	_, ts, release := blockingServer(t, Config{MaxConcurrent: 1})
	defer close(release)

	for name, tc := range map[string]struct {
		body string
		want int
	}{
		"syntax":         {`{"specs":`, http.StatusBadRequest},
		"unknown field":  {`{"specs":[{"Name":"p","Policy":"DT","Scale":"tiny","Polciy":"x"}]}`, http.StatusBadRequest},
		"unknown policy": {`{"specs":[{"Name":"p","Policy":"Nope","Scale":"tiny"}]}`, http.StatusBadRequest},
		"no specs":       {`{"specs":[]}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", name, resp.StatusCode, tc.want)
		}
		var msg struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &msg) != nil || msg.Error == "" {
			t.Errorf("%s: body %q is not an error envelope", name, body)
		}
	}

	if _, code := getBody(t, ts, "/v1/sweeps/nope"); code != http.StatusNotFound {
		t.Errorf("unknown id status: %d, want 404", code)
	}

	status, _ := submit(t, ts, oneSpec("pending"))
	if _, code := getBody(t, ts, "/v1/sweeps/"+status.ID+"/result"); code != http.StatusConflict {
		t.Errorf("result before done: %d, want 409", code)
	}
	if _, code := getBody(t, ts, "/v1/sweeps/"+status.ID+"/trace?point=7"); code != http.StatusBadRequest {
		t.Errorf("out-of-range point: %d, want 400", code)
	}
	if _, code := getBody(t, ts, "/v1/sweeps/"+status.ID+"/trace?point=0"); code != http.StatusConflict {
		t.Errorf("trace before done: %d, want 409", code)
	}

	if body, code := getBody(t, ts, "/healthz"); code != http.StatusOK || string(body) != "ok\n" {
		t.Errorf("healthz: %d %q", code, body)
	}
}
