// Cluster partitioning for the sharded conservative-time engine (psim): a
// Partition maps every node of the Clos to a shard so that each shard owns a
// contiguous band of ToRs together with their racks, the aggregation
// switches most tightly coupled to them, and a proportional slice of the
// cores. Access links (0-lookahead is allowed there) never cross shards —
// a host always shares its ToR's shard — so every cross-shard link is a
// fabric link with a real propagation delay, which is what gives the
// conductor a nonzero lookahead.
package topo

import "fmt"

// Partition assigns every node of a cluster to one of Shards shards. The
// slices are indexed by the node's global id (host id, ToR id, agg id, core
// id) and hold shard numbers in [0, Shards).
type Partition struct {
	Shards int
	Host   []int
	ToR    []int
	Agg    []int
	Core   []int
}

// ComputePartition derives a deterministic pod/ToR-granularity partition of
// cfg's cluster into the given number of shards:
//
//   - ToR t goes to shard t·shards/ToRCount — contiguous bands, so pods stay
//     together whenever shards ≤ Pods and racks are never split.
//   - Host h follows its ToR (h/ServersPerToR), so access links are always
//     shard-local.
//   - Aggregation switch a (pod p, local index k) goes to the shard of ToR
//     p·torsPerPod + (k mod torsPerPod): each pod's aggs are dealt round-
//     robin over the shards that own that pod's ToRs, balancing fabric
//     state without splitting a pod's agg layer away from its racks.
//   - Core c goes to shard c·shards/CoreCount — spread evenly, since cores
//     talk to every pod anyway.
//
// Shards must be in [1, ToRCount]: with more shards than ToRs some shard
// would own no rack and the contiguous-band map degenerates.
func ComputePartition(cfg Config, shards int) (*Partition, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if shards < 1 || shards > cfg.ToRCount {
		return nil, fmt.Errorf("topo: shards = %d, want 1..ToRCount (%d)", shards, cfg.ToRCount)
	}
	p := &Partition{
		Shards: shards,
		Host:   make([]int, cfg.ToRCount*cfg.ServersPerToR),
		ToR:    make([]int, cfg.ToRCount),
		Agg:    make([]int, cfg.AggCount),
		Core:   make([]int, cfg.CoreCount),
	}
	for t := 0; t < cfg.ToRCount; t++ {
		p.ToR[t] = t * shards / cfg.ToRCount
	}
	for h := range p.Host {
		p.Host[h] = p.ToR[h/cfg.ServersPerToR]
	}
	torsPerPod := cfg.ToRCount / cfg.Pods
	aggsPerPod := cfg.AggCount / cfg.Pods
	for a := 0; a < cfg.AggCount; a++ {
		pod, k := a/aggsPerPod, a%aggsPerPod
		p.Agg[a] = p.ToR[pod*torsPerPod+k%torsPerPod]
	}
	for c := 0; c < cfg.CoreCount; c++ {
		p.Core[c] = c * shards / cfg.CoreCount
	}
	return p, nil
}
