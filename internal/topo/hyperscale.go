package topo

import (
	"fmt"

	"l2bm/internal/dcqcn"
	"l2bm/internal/dctcp"
	"l2bm/internal/sim"
	"l2bm/internal/switchsim"
)

// HyperscaleConfig describes a production-shaped multi-pod Clos by the
// knobs an operator actually turns — pod count, rack count, rack size and
// the rack oversubscription ratio — and derives the switch-layer widths
// from them. It is the front door for the 10k–100k-host fabrics the scale
// experiments run on; Config() lowers it to the explicit per-layer Config
// that Build understands.
type HyperscaleConfig struct {
	// Pods is the number of pods.
	Pods int
	// ToRsPerPod is the number of racks per pod.
	ToRsPerPod int
	// ServersPerToR is the rack size.
	ServersPerToR int
	// Oversubscription is the rack capacity-to-uplink ratio (e.g. 4 means
	// 4:1 — hosts can inject four times what the ToR uplinks carry). It
	// determines the aggregation layer width: each ToR gets
	// ServersPerToR*ServerRate / (Oversubscription*FabricRate) uplinks,
	// which must come out a whole number.
	Oversubscription float64
	// CoreCount is the spine width. 0 derives it as the per-pod
	// aggregation width (every aggregation switch gets one uplink per
	// core, matching the paper's 2-agg/2-core shape).
	CoreCount int

	// ServerRate and FabricRate are link speeds in bits/s; 0 defaults to
	// the paper's 25/100 Gbps.
	ServerRate int64
	FabricRate int64
	// ServerDelay, TorAggDelay and AggCoreDelay default to the paper's
	// 1 µs / 1 µs / 5 µs when zero.
	ServerDelay  sim.Duration
	TorAggDelay  sim.Duration
	AggCoreDelay sim.Duration
}

// Hosts returns the total number of servers the fabric will carry.
func (h HyperscaleConfig) Hosts() int { return h.Pods * h.ToRsPerPod * h.ServersPerToR }

// withDefaults fills the zero-valued rate/delay knobs.
func (h HyperscaleConfig) withDefaults() HyperscaleConfig {
	if h.ServerRate == 0 {
		h.ServerRate = 25e9
	}
	if h.FabricRate == 0 {
		h.FabricRate = 100e9
	}
	if h.ServerDelay == 0 {
		h.ServerDelay = sim.Microsecond
	}
	if h.TorAggDelay == 0 {
		h.TorAggDelay = sim.Microsecond
	}
	if h.AggCoreDelay == 0 {
		h.AggCoreDelay = 5 * sim.Microsecond
	}
	return h
}

// aggsPerPod derives the aggregation width per pod from the
// oversubscription ratio. The fractional remainder is returned so
// Validate can name the offending field when it does not divide evenly.
func (h HyperscaleConfig) aggsPerPod() (int, bool) {
	rack := float64(h.ServersPerToR) * float64(h.ServerRate)
	uplink := h.Oversubscription * float64(h.FabricRate)
	n := rack / uplink
	rounded := int(n + 0.5)
	if rounded < 1 || absFloat(n-float64(rounded)) > 1e-9 {
		return 0, false
	}
	return rounded, true
}

func absFloat(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// Validate reports sizing errors with one-line messages naming the field,
// before any switch or cable is built.
func (h HyperscaleConfig) Validate() error {
	h = h.withDefaults()
	switch {
	case h.Pods <= 0:
		return fmt.Errorf("topo: hyperscale Pods = %d, want > 0", h.Pods)
	case h.ToRsPerPod <= 0:
		return fmt.Errorf("topo: hyperscale ToRsPerPod = %d, want > 0", h.ToRsPerPod)
	case h.ServersPerToR <= 0:
		return fmt.Errorf("topo: hyperscale ServersPerToR = %d, want > 0", h.ServersPerToR)
	case h.Oversubscription <= 0:
		return fmt.Errorf("topo: hyperscale Oversubscription = %g, want > 0", h.Oversubscription)
	case h.CoreCount < 0:
		return fmt.Errorf("topo: hyperscale CoreCount = %d, want >= 0", h.CoreCount)
	}
	if _, ok := h.aggsPerPod(); !ok {
		return fmt.Errorf("topo: hyperscale Oversubscription = %g does not divide the rack: ServersPerToR*ServerRate = %g bps needs a whole number of %g bps uplinks",
			h.Oversubscription, float64(h.ServersPerToR)*float64(h.ServerRate), h.Oversubscription*float64(h.FabricRate))
	}
	return nil
}

// Config lowers the hyperscale description to the explicit layer-by-layer
// Config. The result is validated (including the arrival-key budget that
// caps total cable count), so a fabric that passes here wires cleanly.
func (h HyperscaleConfig) Config() (Config, error) {
	if err := h.Validate(); err != nil {
		return Config{}, err
	}
	h = h.withDefaults()
	aggs, _ := h.aggsPerPod()
	cores := h.CoreCount
	if cores == 0 {
		cores = aggs
	}
	cfg := DefaultConfig()
	cfg.Pods = h.Pods
	cfg.ToRCount = h.Pods * h.ToRsPerPod
	cfg.AggCount = h.Pods * aggs
	cfg.CoreCount = cores
	cfg.ServersPerToR = h.ServersPerToR
	cfg.ServerRate = h.ServerRate
	cfg.FabricRate = h.FabricRate
	cfg.ServerDelay = h.ServerDelay
	cfg.TorAggDelay = h.TorAggDelay
	cfg.AggCoreDelay = h.AggCoreDelay
	cfg.Switch = switchsim.DefaultConfig()
	cfg.DCTCP = dctcp.DefaultConfig()
	cfg.DCQCN = dcqcn.DefaultConfig(h.ServerRate)
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Hyperscale1k is the smoke-test fabric: 4 pods × 8 racks × 32 servers =
// 1,024 hosts at 4:1 rack oversubscription.
func Hyperscale1k() HyperscaleConfig {
	return HyperscaleConfig{Pods: 4, ToRsPerPod: 8, ServersPerToR: 32, Oversubscription: 4}
}

// Hyperscale10k is the CI-sized fabric: 10 pods × 32 racks × 32 servers =
// 10,240 hosts at 4:1 rack oversubscription.
func Hyperscale10k() HyperscaleConfig {
	return HyperscaleConfig{Pods: 10, ToRsPerPod: 32, ServersPerToR: 32, Oversubscription: 4}
}

// Hyperscale100k is the headline fabric: 25 pods × 64 racks × 64 servers =
// 102,400 hosts at 4:1 rack oversubscription.
func Hyperscale100k() HyperscaleConfig {
	return HyperscaleConfig{Pods: 25, ToRsPerPod: 64, ServersPerToR: 64, Oversubscription: 4}
}
