package topo

import (
	"strings"
	"testing"

	"l2bm/internal/core"
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/transport"
)

// TestHyperscaleValidate exercises the one-line per-field errors and the
// oversubscription-divisibility check.
func TestHyperscaleValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*HyperscaleConfig)
		wantErr string // substring; "" means valid
	}{
		{"valid-10k", func(h *HyperscaleConfig) {}, ""},
		{"zero-pods", func(h *HyperscaleConfig) { h.Pods = 0 }, "Pods = 0"},
		{"negative-tors", func(h *HyperscaleConfig) { h.ToRsPerPod = -1 }, "ToRsPerPod = -1"},
		{"zero-servers", func(h *HyperscaleConfig) { h.ServersPerToR = 0 }, "ServersPerToR = 0"},
		{"zero-oversub", func(h *HyperscaleConfig) { h.Oversubscription = 0 }, "Oversubscription = 0"},
		{"negative-cores", func(h *HyperscaleConfig) { h.CoreCount = -2 }, "CoreCount = -2"},
		// 32 servers × 25G / (3 × 100G) = 2.67 uplinks: not whole.
		{"indivisible-oversub", func(h *HyperscaleConfig) { h.Oversubscription = 3 },
			"does not divide the rack"},
		// Oversubscription so high the rack rounds to zero uplinks.
		{"zero-uplinks", func(h *HyperscaleConfig) { h.Oversubscription = 64 },
			"does not divide the rack"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := Hyperscale10k()
			tc.mutate(&h)
			err := h.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestHyperscalePresets checks each preset lowers to a valid Config with the
// advertised host count and a sane derived aggregation layer.
func TestHyperscalePresets(t *testing.T) {
	cases := []struct {
		name      string
		h         HyperscaleConfig
		wantHosts int
	}{
		{"1k", Hyperscale1k(), 1024},
		{"10k", Hyperscale10k(), 10240},
		{"100k", Hyperscale100k(), 102400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.h.Hosts(); got != tc.wantHosts {
				t.Fatalf("Hosts() = %d, want %d", got, tc.wantHosts)
			}
			cfg, err := tc.h.Config()
			if err != nil {
				t.Fatalf("Config() error: %v", err)
			}
			if got := cfg.Hosts(); got != tc.wantHosts {
				t.Fatalf("lowered Hosts() = %d, want %d", got, tc.wantHosts)
			}
			if cfg.AggCount%cfg.Pods != 0 || cfg.ToRCount%cfg.Pods != 0 {
				t.Fatalf("lowered config not pod-divisible: %+v", cfg)
			}
			if err := cfg.Validate(); err != nil {
				t.Fatalf("lowered config invalid: %v", err)
			}
		})
	}
}

// TestHyperscaleDerivedWidths pins the oversubscription arithmetic: a rack of
// 32 × 25 Gbps servers at 4:1 over 100 Gbps uplinks gets exactly 2 uplinks.
func TestHyperscaleDerivedWidths(t *testing.T) {
	cfg, err := Hyperscale10k().Config()
	if err != nil {
		t.Fatal(err)
	}
	if aggs := cfg.AggCount / cfg.Pods; aggs != 2 {
		t.Fatalf("aggs per pod = %d, want 2", aggs)
	}
	if cfg.CoreCount != 2 {
		t.Fatalf("derived CoreCount = %d, want 2 (defaults to aggs per pod)", cfg.CoreCount)
	}
	// An explicit core width overrides the derivation.
	h := Hyperscale10k()
	h.CoreCount = 8
	cfg, err = h.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.CoreCount != 8 {
		t.Fatalf("explicit CoreCount = %d, want 8", cfg.CoreCount)
	}
}

// TestComputePartitionHyperscale checks the shard map on multi-pod
// oversubscribed fabrics: every host follows its ToR's shard, every
// aggregation switch shares a shard with a ToR of its pod, and shards stay
// contiguous over ToRs (the conductor's lookahead proof assumes it).
func TestComputePartitionHyperscale(t *testing.T) {
	for _, preset := range []struct {
		name string
		h    HyperscaleConfig
	}{{"1k", Hyperscale1k()}, {"10k", Hyperscale10k()}} {
		cfg, err := preset.h.Config()
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 2, 4, 8} {
			part, err := ComputePartition(cfg, shards)
			if err != nil {
				t.Fatalf("%s/%d shards: %v", preset.name, shards, err)
			}
			if part.Shards != shards {
				t.Fatalf("%s: Shards = %d, want %d", preset.name, part.Shards, shards)
			}
			for h, sh := range part.Host {
				if want := part.ToR[cfg.ToROf(h)]; sh != want {
					t.Fatalf("%s/%d: host %d on shard %d, its ToR on %d", preset.name, shards, h, sh, want)
				}
			}
			prev := 0
			for tIdx, sh := range part.ToR {
				if sh < prev || sh >= shards {
					t.Fatalf("%s/%d: ToR %d shard %d breaks contiguity (prev %d)", preset.name, shards, tIdx, sh, prev)
				}
				prev = sh
			}
			torsPerPod := cfg.ToRCount / cfg.Pods
			aggsPerPod := cfg.AggCount / cfg.Pods
			for a, sh := range part.Agg {
				pod := a / aggsPerPod
				found := false
				for k := 0; k < torsPerPod; k++ {
					if part.ToR[pod*torsPerPod+k] == sh {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("%s/%d: agg %d on shard %d, no ToR of pod %d there", preset.name, shards, a, sh, pod)
				}
			}
		}
	}
}

// TestHyperscaleBuildRunsSmoke builds the 1k-host fabric on a wheel engine
// and pushes one cross-pod flow through it — the smallest end-to-end proof
// that a hyperscale-lowered Config wires, routes and drains.
func TestHyperscaleBuildRunsSmoke(t *testing.T) {
	cfg, err := Hyperscale1k().Config()
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngineWheel(1, sim.WheelGranularityFor(cfg.MinPropDelay()))
	done := 0
	cl, err := Build(eng, cfg, func() core.Policy { return core.NewDT() },
		func(id pkt.FlowID, at sim.Time) { done++ })
	if err != nil {
		t.Fatal(err)
	}
	if got := cl.NumHosts(); got != 1024 {
		t.Fatalf("NumHosts = %d, want 1024", got)
	}
	cl.StartFlow(&transport.Flow{
		ID: 1, Src: 0, Dst: cl.NumHosts() - 1, Size: 64 << 10,
		Priority: pkt.PrioLossy, Class: pkt.ClassLossy,
	})
	eng.Run(20 * sim.Millisecond)
	if done != 1 {
		t.Fatalf("flow completions = %d, want 1", done)
	}
	for _, sw := range cl.AllSwitches() {
		if err := sw.CheckDrained(); err != nil {
			t.Fatal(err)
		}
	}
}
