package topo

import (
	"fmt"
	"runtime"
	"testing"

	"l2bm/internal/core"
	"l2bm/internal/sim"
)

// BenchmarkBuildHyperscale measures fabric construction at 1k/10k/100k hosts
// and reports bytes/host — the flyweight proof. Shared role/tier/transport
// descriptors mean the per-host cost is the host struct, its access link and
// its slice of the switch counter tables, NOT a copy of the configuration.
func BenchmarkBuildHyperscale(b *testing.B) {
	presets := []struct {
		name string
		h    HyperscaleConfig
	}{
		{"1k", Hyperscale1k()},
		{"10k", Hyperscale10k()},
		{"100k", Hyperscale100k()},
	}
	for _, p := range presets {
		b.Run(p.name, func(b *testing.B) {
			cfg, err := p.h.Config()
			if err != nil {
				b.Fatal(err)
			}
			hosts := float64(cfg.Hosts())
			b.ReportAllocs()
			var before, after runtime.MemStats
			var sink *Cluster
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sink = nil
				runtime.GC()
				runtime.ReadMemStats(&before)
				b.StartTimer()
				eng := sim.NewEngineWheel(1, sim.WheelGranularityFor(cfg.MinPropDelay()))
				cl, err := Build(eng, cfg, func() core.Policy { return core.NewDT() }, nil)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				sink = cl
				runtime.GC()
				runtime.ReadMemStats(&after)
				b.StartTimer()
			}
			if sink == nil || len(sink.Hosts) != cfg.Hosts() {
				b.Fatal("build lost its hosts")
			}
			resident := float64(after.HeapAlloc) - float64(before.HeapAlloc)
			if resident < 0 {
				resident = 0
			}
			b.ReportMetric(resident/hosts, "bytes/host")
		})
	}
}

// TestHyperscaleBytesPerHost bounds the flyweight win directly: building the
// 10k-host fabric must cost well under the per-host footprint a full-config
// copy per node would imply. The bound is deliberately loose (heap noise,
// allocator slack) — the benchmark reports the precise number.
func TestHyperscaleBytesPerHost(t *testing.T) {
	if testing.Short() {
		t.Skip("hyperscale build in -short")
	}
	cfg, err := Hyperscale10k().Config()
	if err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	eng := sim.NewEngineWheel(1, sim.WheelGranularityFor(cfg.MinPropDelay()))
	cl, err := Build(eng, cfg, func() core.Policy { return core.NewDT() }, nil)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	perHost := (float64(after.HeapAlloc) - float64(before.HeapAlloc)) / float64(len(cl.Hosts))
	const limit = 16 << 10 // 16 KiB/host
	if perHost > limit {
		t.Fatalf("build cost %.0f bytes/host, want <= %d", perHost, limit)
	}
	t.Log(fmt.Sprintf("10k-host build: %.0f bytes/host", perHost))
}
