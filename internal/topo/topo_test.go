package topo

import (
	"testing"

	"l2bm/internal/core"
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/transport"
)

func dtFactory() core.Policy { return core.NewDT() }

func TestBuildPaperTopology(t *testing.T) {
	eng := sim.NewEngine(1)
	cl, err := Build(eng, DefaultConfig(), dtFactory, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := cl.NumHosts(); got != 128 {
		t.Errorf("hosts = %d, want 128", got)
	}
	if len(cl.ToRs) != 4 || len(cl.Aggs) != 4 || len(cl.Cores) != 2 {
		t.Errorf("switch counts = %d/%d/%d, want 4/4/2", len(cl.ToRs), len(cl.Aggs), len(cl.Cores))
	}
	// ToR ports: 32 servers + 2 pod aggs.
	if got := cl.ToRs[0].NumPorts(); got != 34 {
		t.Errorf("ToR ports = %d, want 34", got)
	}
	// Agg ports: 2 pod ToRs + 2 cores.
	if got := cl.Aggs[0].NumPorts(); got != 4 {
		t.Errorf("Agg ports = %d, want 4", got)
	}
	// Core ports: one per agg.
	if got := cl.Cores[0].NumPorts(); got != 4 {
		t.Errorf("Core ports = %d, want 4", got)
	}
	if len(cl.AllSwitches()) != 10 {
		t.Errorf("AllSwitches = %d, want 10", len(cl.AllSwitches()))
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero pods", func(c *Config) { c.Pods = 0 }},
		{"tor not divisible", func(c *Config) { c.ToRCount = 3 }},
		{"agg not divisible", func(c *Config) { c.AggCount = 3 }},
		{"no cores", func(c *Config) { c.CoreCount = 0 }},
		{"no servers", func(c *Config) { c.ServersPerToR = 0 }},
		{"zero rate", func(c *Config) { c.ServerRate = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if _, err := Build(sim.NewEngine(1), cfg, dtFactory, nil); err == nil {
				t.Error("Build should fail")
			}
		})
	}
}

func TestHopsClassification(t *testing.T) {
	eng := sim.NewEngine(1)
	cl := MustBuild(eng, DefaultConfig(), dtFactory, nil)

	tests := []struct {
		name     string
		src, dst int
		want     int
	}{
		{"same rack", 0, 1, 2},
		{"same pod", 0, 32, 4},  // tor0 -> tor1, pod 0
		{"cross pod", 0, 64, 6}, // tor0 -> tor2, pod 1
		{"cross pod far", 33, 127, 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := cl.Hops(tt.src, tt.dst); got != tt.want {
				t.Errorf("Hops(%d,%d) = %d, want %d", tt.src, tt.dst, got, tt.want)
			}
		})
	}
}

func TestBasePathDelayOrdering(t *testing.T) {
	cl := MustBuild(sim.NewEngine(1), DefaultConfig(), dtFactory, nil)
	rack := cl.BasePathDelay(0, 1)
	pod := cl.BasePathDelay(0, 32)
	cross := cl.BasePathDelay(0, 64)
	if !(rack < pod && pod < cross) {
		t.Errorf("path delays not ordered: rack %v, pod %v, cross %v", rack, pod, cross)
	}
	// Intra-rack: 2 µs propagation + 2 MTU at 25G.
	want := 2*sim.Microsecond + 2*sim.TxTime(pkt.MTUBytes, 25e9)
	if rack != want {
		t.Errorf("rack delay = %v, want %v", rack, want)
	}
}

func TestIdealFCTScalesWithSize(t *testing.T) {
	cl := MustBuild(sim.NewEngine(1), DefaultConfig(), dtFactory, nil)
	small := cl.IdealFCT(0, 64, 1000)
	big := cl.IdealFCT(0, 64, 1_000_000)
	if small >= big {
		t.Error("ideal FCT must grow with size")
	}
	// A 1 MB flow at 25 Gbps takes at least 335 µs of serialization.
	if big < sim.TxTime(1_000_000, 25e9) {
		t.Errorf("ideal FCT %v below raw serialization", big)
	}
}

// End-to-end delivery across each path class, both protocols.
func TestClusterDeliversAcrossAllPathClasses(t *testing.T) {
	eng := sim.NewEngine(7)
	completed := make(map[pkt.FlowID]sim.Time)
	cl := MustBuild(eng, DefaultConfig(), func() core.Policy { return core.NewDefaultL2BM() },
		func(id pkt.FlowID, at sim.Time) { completed[id] = at })

	flows := []*transport.Flow{
		{ID: 1, Src: 0, Dst: 1, Size: 50_000, Priority: pkt.PrioLossless, Class: pkt.ClassLossless},
		{ID: 2, Src: 0, Dst: 33, Size: 50_000, Priority: pkt.PrioLossless, Class: pkt.ClassLossless},
		{ID: 3, Src: 0, Dst: 100, Size: 50_000, Priority: pkt.PrioLossless, Class: pkt.ClassLossless},
		{ID: 4, Src: 5, Dst: 2, Size: 50_000, Priority: pkt.PrioLossy, Class: pkt.ClassLossy},
		{ID: 5, Src: 5, Dst: 40, Size: 50_000, Priority: pkt.PrioLossy, Class: pkt.ClassLossy},
		{ID: 6, Src: 5, Dst: 90, Size: 50_000, Priority: pkt.PrioLossy, Class: pkt.ClassLossy},
	}
	for _, f := range flows {
		cl.StartFlow(f)
	}
	eng.RunAll()

	for _, f := range flows {
		at, ok := completed[f.ID]
		if !ok {
			t.Errorf("flow %d (src %d dst %d) did not complete", f.ID, f.Src, f.Dst)
			continue
		}
		ideal := cl.IdealFCT(f.Src, f.Dst, f.Size)
		if at < ideal {
			t.Errorf("flow %d FCT %v beats ideal %v", f.ID, at, ideal)
		}
	}
	if cl.LosslessGaps() != 0 {
		t.Error("lossless gaps in an uncongested network")
	}
}

func TestECMPSpreadsFlows(t *testing.T) {
	counts := make(map[int]int)
	for f := 0; f < 1000; f++ {
		counts[ecmpHash(pkt.FlowID(f), 0x746f72, 2)]++
	}
	if len(counts) != 2 {
		t.Fatalf("hash used %d buckets, want 2", len(counts))
	}
	for b, c := range counts {
		if c < 300 {
			t.Errorf("bucket %d has %d of 1000 flows; poor spread", b, c)
		}
	}
	// Same flow, same choice (per-flow consistency).
	if ecmpHash(42, 1, 4) != ecmpHash(42, 1, 4) {
		t.Error("hash not deterministic")
	}
	if ecmpHash(42, 0, 1) != 0 {
		t.Error("single path must return 0")
	}
}

func TestTinyConfigBuilds(t *testing.T) {
	eng := sim.NewEngine(1)
	cl := MustBuild(eng, TinyConfig(), dtFactory, nil)
	if cl.NumHosts() != 8 {
		t.Errorf("tiny hosts = %d, want 8", cl.NumHosts())
	}
	// Cross-pod flow completes.
	done := false
	cl.Hosts[0].SetCompletionHandler(nil)
	for _, h := range cl.Hosts {
		h.SetCompletionHandler(func(pkt.FlowID, sim.Time) { done = true })
	}
	cl.StartFlow(&transport.Flow{ID: 1, Src: 0, Dst: 7, Size: 10_000,
		Priority: pkt.PrioLossless, Class: pkt.ClassLossless})
	eng.RunAll()
	if !done {
		t.Error("tiny cluster flow did not complete")
	}
}

func TestMustBuildPanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Pods = 0
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on invalid config")
		}
	}()
	MustBuild(sim.NewEngine(1), cfg, dtFactory, nil)
}
