// Package topo builds the paper's evaluation network (Fig. 6): a three-layer
// Clos with 2 core switches, 4 aggregation switches, 4 ToR switches and 32
// servers per rack — 25 Gbps access links, 100 Gbps fabric links, 1 µs
// propagation everywhere except 5 µs between aggregation and core. The
// fabric is organized in pods (2 by default): a ToR connects to every
// aggregation switch in its pod, and every aggregation switch connects to
// every core. Per-flow ECMP hashing spreads load over the parallel paths.
//
// Everything is parameterized so tests and benchmarks can shrink the
// cluster while experiments run the paper-scale version.
package topo

import (
	"fmt"
	"hash/fnv"

	"l2bm/internal/core"
	"l2bm/internal/dcqcn"
	"l2bm/internal/dctcp"
	"l2bm/internal/host"
	"l2bm/internal/netdev"
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/switchsim"
	"l2bm/internal/transport"
)

// Config describes the cluster to build.
type Config struct {
	// Pods partitions ToRs and aggregation switches into pods.
	Pods int
	// CoreCount, AggCount and ToRCount size the switch layers (AggCount
	// and ToRCount must divide evenly by Pods).
	CoreCount int
	AggCount  int
	ToRCount  int
	// ServersPerToR is the rack size.
	ServersPerToR int
	// ServerRate and FabricRate are the link speeds in bits/s.
	ServerRate int64
	FabricRate int64
	// ServerDelay, TorAggDelay and AggCoreDelay are one-way propagation
	// delays.
	ServerDelay  sim.Duration
	TorAggDelay  sim.Duration
	AggCoreDelay sim.Duration
	// Switch configures every switch MMU.
	Switch switchsim.Config
	// DCTCP and DCQCN configure host transports. DCQCN.LineRate is
	// overridden with ServerRate when zero.
	DCTCP dctcp.Config
	DCQCN dcqcn.Config

	// DisablePacketPool turns off packet recycling: every frame is heap-
	// allocated and left to the GC, the pre-pool behaviour. The determinism
	// suite uses it as the control arm — pooled and pool-disabled runs must
	// be byte-identical.
	DisablePacketPool bool
	// PacketPoolDebug arms the pool's use-after-free audit (a map operation
	// per Get/Put): leaked packets become reportable and freed packets are
	// poisoned. Ignored when DisablePacketPool is set.
	PacketPoolDebug bool
}

// DefaultConfig returns the paper's topology (§IV Setup): 128 servers,
// 10 switches, 25/100 Gbps, 4 MB shared buffer.
func DefaultConfig() Config {
	return Config{
		Pods:          2,
		CoreCount:     2,
		AggCount:      4,
		ToRCount:      4,
		ServersPerToR: 32,
		ServerRate:    25e9,
		FabricRate:    100e9,
		ServerDelay:   sim.Microsecond,
		TorAggDelay:   sim.Microsecond,
		AggCoreDelay:  5 * sim.Microsecond,
		Switch:        switchsim.DefaultConfig(),
		DCTCP:         dctcp.DefaultConfig(),
		DCQCN:         dcqcn.DefaultConfig(25e9),
	}
}

// TinyConfig returns a scaled-down cluster (2 pods × 1 ToR × 4 servers) for
// tests and fast benchmarks, preserving the paper's oversubscription shape.
func TinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Pods = 2
	cfg.CoreCount = 1
	cfg.AggCount = 2
	cfg.ToRCount = 2
	cfg.ServersPerToR = 4
	return cfg
}

// Validate reports configuration errors, including the silent-garbage class:
// negative propagation delays and malformed switch MMU parameters would
// otherwise survive into thresholds as nonsense values. Every check names
// the single offending field in a one-line message, so a bad pod count
// fails here instead of surfacing as a wiring panic deep in Build.
func (c *Config) Validate() error {
	switch {
	case c.Pods <= 0:
		return fmt.Errorf("topo: Pods = %d, want > 0", c.Pods)
	case c.ToRCount <= 0:
		return fmt.Errorf("topo: ToRCount = %d, want > 0", c.ToRCount)
	case c.ToRCount%c.Pods != 0:
		return fmt.Errorf("topo: ToRCount = %d does not divide evenly across Pods = %d", c.ToRCount, c.Pods)
	case c.AggCount <= 0:
		return fmt.Errorf("topo: AggCount = %d, want > 0", c.AggCount)
	case c.AggCount%c.Pods != 0:
		return fmt.Errorf("topo: AggCount = %d does not divide evenly across Pods = %d", c.AggCount, c.Pods)
	case c.CoreCount <= 0:
		return fmt.Errorf("topo: CoreCount = %d, want > 0", c.CoreCount)
	case c.ServersPerToR <= 0:
		return fmt.Errorf("topo: ServersPerToR = %d, want > 0", c.ServersPerToR)
	case c.ServerRate <= 0:
		return fmt.Errorf("topo: ServerRate = %d bps, want > 0", c.ServerRate)
	case c.FabricRate <= 0:
		return fmt.Errorf("topo: FabricRate = %d bps, want > 0", c.FabricRate)
	case c.ServerDelay < 0:
		return fmt.Errorf("topo: ServerDelay = %v, want >= 0", c.ServerDelay)
	case c.TorAggDelay < 0:
		return fmt.Errorf("topo: TorAggDelay = %v, want >= 0", c.TorAggDelay)
	case c.AggCoreDelay < 0:
		return fmt.Errorf("topo: AggCoreDelay = %v, want >= 0", c.AggCoreDelay)
	}
	if err := c.Switch.Validate(); err != nil {
		return fmt.Errorf("topo: %w", err)
	}
	// Every cable consumes two arrival keys and netdev caps port keys at
	// 2^20 (keys pack into the 64-bit (key, txSeq) arrival tie-break), so
	// the cable count bounds fabric size. Catch it here with the real
	// numbers instead of panicking mid-wiring.
	links := c.Hosts() + c.ToRCount*(c.AggCount/c.Pods) + c.AggCount*c.CoreCount
	if 2*links >= 1<<20 {
		return fmt.Errorf("topo: %d cables need %d arrival keys, exceeding the 2^20 key space (shrink the fabric below %d cables)",
			links, 2*links, 1<<19)
	}
	return nil
}

// Hosts returns the total number of servers the configuration describes.
func (c *Config) Hosts() int { return c.ToRCount * c.ServersPerToR }

// MinPropDelay returns the smallest positive propagation delay in the
// fabric, or 0 when every delay is zero. The scheduler layer sizes the
// timer-wheel tick from it (sim.WheelGranularityFor): no two causally
// related events across a cable are closer than one hop.
func (c *Config) MinPropDelay() sim.Duration {
	min := sim.Duration(0)
	for _, d := range []sim.Duration{c.ServerDelay, c.TorAggDelay, c.AggCoreDelay} {
		if d > 0 && (min == 0 || d < min) {
			min = d
		}
	}
	return min
}

// PolicyFactory creates one buffer-management policy instance per switch
// (policies such as L2BM carry per-switch state and must not be shared).
type PolicyFactory func() core.Policy

// LinkTier classifies a cable by the layer pair it connects.
type LinkTier int

const (
	// TierServer is a host↔ToR access link.
	TierServer LinkTier = iota + 1
	// TierTorAgg is a ToR↔aggregation fabric link.
	TierTorAgg
	// TierAggCore is an aggregation↔core fabric link.
	TierAggCore
)

// String implements fmt.Stringer.
func (t LinkTier) String() string {
	switch t {
	case TierServer:
		return "server"
	case TierTorAgg:
		return "tor-agg"
	case TierAggCore:
		return "agg-core"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// Link is one bidirectional cable in the built cluster, addressable by the
// fault-injection layer. A is the port on the lower (server-side) device, B
// on the upper; taking the link down disables the carrier in both
// directions.
type Link struct {
	Index        int
	Name         string
	Tier         LinkTier
	A, B         *netdev.Port
	AName, BName string

	// AShard and BShard are the shards owning each endpoint (equal unless
	// the cable crosses a shard boundary in a sharded build).
	AShard, BShard int

	// Layer-local coordinates into the liveness matrices.
	tor, aggLocal int // TierTorAgg
	agg, core     int // TierAggCore

	cl *Cluster
}

// Up reports whether the link currently has carrier. Liveness is tracked
// per shard (each shard replays the same fault process); all replicas agree
// at barriers, so shard 0's view is authoritative for observers.
func (l *Link) Up() bool { return l.cl.states[0].linkUp[l.Index] }

// CrossShard reports whether the cable's endpoints live on different shards.
func (l *Link) CrossShard() bool { return l.AShard != l.BShard }

// shardState is one shard's private replica of the fabric-liveness tables
// the routers consult. Every shard replays the identical fault process (the
// injector is replicated), so the replicas agree at barriers; giving each
// shard its own copy means routers never read state another shard writes
// mid-epoch.
type shardState struct {
	torAggUp   [][]bool // [torGlobal][aggWithinPod]
	aggCoreUp  [][]bool // [aggGlobal][core]
	linkUp     []bool   // [linkIndex]
	fabricDown int      // count of fabric links currently down (fast path)
}

// Cluster is a built network.
type Cluster struct {
	// Eng is shard 0's engine — the only engine in a classic (unsharded)
	// build, kept as an alias so single-engine callers stay unchanged.
	Eng *sim.Engine
	// Engines holds one engine per shard (length 1 in a classic build).
	// All engines must share the same seed: replicated generators rely on
	// identical named streams across shards.
	Engines []*sim.Engine
	// Part is the node→shard map the cluster was wired with.
	Part *Partition

	Cfg   Config
	Hosts []*host.Host
	ToRs  []*switchsim.Switch
	Aggs  []*switchsim.Switch
	Cores []*switchsim.Switch

	// Pool is shard 0's packet free list — nil when Cfg.DisablePacketPool.
	// An alias of Pools[0] for single-engine callers.
	Pool *pkt.Pool
	// Pools holds one free list per shard: a pool is single-threaded state,
	// so each shard owns its own and cross-shard frames change pools via
	// Export/Import at the mailbox boundary.
	Pools []*pkt.Pool

	// Lookahead is the minimum propagation delay over cross-shard links —
	// the conductor's epoch bound. Zero when no link crosses a shard.
	Lookahead sim.Duration

	// Link registry and per-shard liveness replicas.
	links    []*Link
	states   []*shardState
	outboxes []*netdev.Outbox
}

// Build wires the cluster on a single engine and installs routing. Flow
// completions are fanned out to onComplete (may be nil).
func Build(eng *sim.Engine, cfg Config, newPolicy PolicyFactory, onComplete host.CompletionHandler) (*Cluster, error) {
	part, err := ComputePartition(cfg, 1)
	if err != nil {
		return nil, err
	}
	return BuildSharded([]*sim.Engine{eng}, part, cfg, newPolicy,
		func(int) host.CompletionHandler { return onComplete })
}

// BuildSharded wires the cluster across len(engines) shards following part:
// every node lives on its shard's engine, shard-local links are ordinary
// same-engine cables, and cross-shard links get mailboxes (netdev.Outbox)
// the psim conductor drains at barriers. Every port — in both classic and
// sharded builds — receives a global wiring-order arrival key, so frame
// dispatch order is a function of the wiring alone and identical results
// fall out for every shard count. onCompleteFor returns the completion
// handler for each shard's hosts (per-shard recorders; may return nil), so
// completion recording needs no cross-shard synchronization.
//
// All engines must carry the same seed: workload generators are replicated
// per shard and rely on identically-named RNG streams drawing identical
// sequences everywhere.
func BuildSharded(engines []*sim.Engine, part *Partition, cfg Config, newPolicy PolicyFactory, onCompleteFor func(shard int) host.CompletionHandler) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if part == nil || part.Shards != len(engines) {
		return nil, fmt.Errorf("topo: partition shards and engine count disagree")
	}
	if part.Shards > 1 && (cfg.TorAggDelay <= 0 || cfg.AggCoreDelay <= 0) {
		return nil, fmt.Errorf("topo: sharded builds need positive fabric propagation delays (lookahead)")
	}
	if cfg.DCQCN.LineRate == 0 {
		cfg.DCQCN = dcqcn.DefaultConfig(cfg.ServerRate)
	}
	cl := &Cluster{Eng: engines[0], Engines: engines, Part: part, Cfg: cfg}
	cl.Pools = make([]*pkt.Pool, part.Shards)
	if !cfg.DisablePacketPool {
		for i := range cl.Pools {
			if cfg.PacketPoolDebug {
				cl.Pools[i] = pkt.NewDebugPool()
			} else {
				cl.Pools[i] = pkt.NewPool()
			}
		}
	}
	cl.Pool = cl.Pools[0]
	cl.states = make([]*shardState, part.Shards)
	for i := range cl.states {
		cl.states[i] = &shardState{
			torAggUp:  make([][]bool, cfg.ToRCount),
			aggCoreUp: make([][]bool, cfg.AggCount),
		}
	}

	// Flyweight descriptors: one immutable switch Config per role and one
	// LinkClass per tier, shared across every switch/cable of that role —
	// per-node state is then the counters, not the configuration. The three
	// role Configs are currently equal in value, but kept separate so a
	// per-role override (deeper-buffered cores, say) needs no re-plumbing.
	torCfg, aggCfg, coreCfg := cfg.Switch, cfg.Switch, cfg.Switch
	serverClass := &netdev.LinkClass{Rate: cfg.ServerRate, Prop: cfg.ServerDelay}
	torAggClass := &netdev.LinkClass{Rate: cfg.FabricRate, Prop: cfg.TorAggDelay}
	aggCoreClass := &netdev.LinkClass{Rate: cfg.FabricRate, Prop: cfg.AggCoreDelay}

	for i := 0; i < cfg.ToRCount; i++ {
		cl.ToRs = append(cl.ToRs, switchsim.NewSwitchShared(engines[part.ToR[i]], fmt.Sprintf("tor%d", i), &torCfg, newPolicy()))
	}
	for i := 0; i < cfg.AggCount; i++ {
		cl.Aggs = append(cl.Aggs, switchsim.NewSwitchShared(engines[part.Agg[i]], fmt.Sprintf("agg%d", i), &aggCfg, newPolicy()))
	}
	for i := 0; i < cfg.CoreCount; i++ {
		cl.Cores = append(cl.Cores, switchsim.NewSwitchShared(engines[part.Core[i]], fmt.Sprintf("core%d", i), &coreCfg, newPolicy()))
	}

	// nextKey numbers ports in global wiring order (1-based): the key is
	// the mode-invariant tiebreak for same-tick arrivals, so it must be a
	// pure function of the wiring, never of the shard layout.
	nextKey := uint64(1)
	connect := func(engA, engB *sim.Engine, a, b netdev.Node, class *netdev.LinkClass) (*netdev.Port, *netdev.Port) {
		pa, pb := netdev.ConnectClass(engA, engB, a, b, class)
		pa.SetArrivalKey(nextKey)
		pb.SetArrivalKey(nextKey + 1)
		nextKey += 2
		if engA != engB {
			if cl.Lookahead == 0 || class.Prop < cl.Lookahead {
				cl.Lookahead = class.Prop
			}
			cl.outboxes = append(cl.outboxes, pa.Outbox(), pb.Outbox())
		}
		return pa, pb
	}

	// Servers: host h sits under ToR h/ServersPerToR on port h%ServersPerToR.
	// Hosts follow their ToR's shard, so access links are always local.
	transportCfg := &host.TransportConfig{DCTCP: cfg.DCTCP, DCQCN: cfg.DCQCN}
	total := cfg.ToRCount * cfg.ServersPerToR
	for h := 0; h < total; h++ {
		t := h / cfg.ServersPerToR
		sh := part.Host[h]
		eng := engines[sh]
		hst := host.NewShared(eng, h, fmt.Sprintf("host%d", h), transportCfg)
		hst.SetPool(cl.Pools[sh])
		hp, sp := connect(eng, engines[part.ToR[t]], hst, cl.ToRs[t], serverClass)
		hp.SetPool(cl.Pools[sh])
		hst.SetNIC(hp)
		cl.ToRs[t].AddPort(sp)
		hst.SetCompletionHandler(onCompleteFor(sh))
		cl.Hosts = append(cl.Hosts, hst)
		cl.addLink(&Link{
			Tier: TierServer, A: hp, B: sp,
			AShard: sh, BShard: part.ToR[t],
			AName: hst.Name(), BName: cl.ToRs[t].Name(),
		})
	}

	// ToR ↔ Agg, full bipartite within each pod. ToR uplink ports follow
	// the server ports; agg down ports are indexed by ToR-within-pod.
	aggsPerPod := cfg.AggCount / cfg.Pods
	torsPerPod := cfg.ToRCount / cfg.Pods
	for _, st := range cl.states {
		for t := range st.torAggUp {
			st.torAggUp[t] = make([]bool, aggsPerPod)
		}
	}
	for t, tor := range cl.ToRs {
		pod := t / torsPerPod
		for a := 0; a < aggsPerPod; a++ {
			for _, st := range cl.states {
				st.torAggUp[t][a] = true
			}
			aggIdx := pod*aggsPerPod + a
			agg := cl.Aggs[aggIdx]
			tp, ap := connect(engines[part.ToR[t]], engines[part.Agg[aggIdx]], tor, agg, torAggClass)
			tor.AddPort(tp)
			agg.AddPort(ap)
			cl.addLink(&Link{
				Tier: TierTorAgg, A: tp, B: ap,
				AShard: part.ToR[t], BShard: part.Agg[aggIdx],
				AName: tor.Name(), BName: agg.Name(),
				tor: t, aggLocal: a,
			})
		}
	}

	// Agg ↔ Core, full bipartite. Core down ports indexed by agg id.
	for _, st := range cl.states {
		for a := range st.aggCoreUp {
			st.aggCoreUp[a] = make([]bool, cfg.CoreCount)
		}
	}
	for a, agg := range cl.Aggs {
		for c := 0; c < cfg.CoreCount; c++ {
			for _, st := range cl.states {
				st.aggCoreUp[a][c] = true
			}
			ap, cp := connect(engines[part.Agg[a]], engines[part.Core[c]], agg, cl.Cores[c], aggCoreClass)
			agg.AddPort(ap)
			cl.Cores[c].AddPort(cp)
			cl.addLink(&Link{
				Tier: TierAggCore, A: ap, B: cp,
				AShard: part.Agg[a], BShard: part.Core[c],
				AName: agg.Name(), BName: cl.Cores[c].Name(),
				agg: a, core: c,
			})
		}
	}

	// SetPool after AddPort so every switch port (including the switch side
	// of the access links) is covered in one pass, each switch drawing from
	// its own shard's pool.
	for i, sw := range cl.ToRs {
		sw.SetPool(cl.Pools[part.ToR[i]])
	}
	for i, sw := range cl.Aggs {
		sw.SetPool(cl.Pools[part.Agg[i]])
	}
	for i, sw := range cl.Cores {
		sw.SetPool(cl.Pools[part.Core[i]])
	}

	cl.installRouting()
	return cl, nil
}

// addLink registers a cable in the registry, naming it after its endpoints.
func (cl *Cluster) addLink(l *Link) {
	l.Index = len(cl.links)
	l.Name = l.AName + "~" + l.BName
	l.cl = cl
	for _, st := range cl.states {
		st.linkUp = append(st.linkUp, true)
	}
	cl.links = append(cl.links, l)
}

// Links returns the cluster's cable registry in deterministic build order.
func (cl *Cluster) Links() []*Link { return cl.links }

// Outboxes returns every cross-shard mailbox in deterministic wiring order
// (both directions of each cross-shard cable). Empty in a classic build.
func (cl *Cluster) Outboxes() []*netdev.Outbox { return cl.outboxes }

// SetLinkState raises or cuts the carrier on link index across every shard
// replica. Single-threaded use only (classic builds, or between epochs):
// under the sharded conductor each shard's injector replica calls
// SetLinkStateOn for itself instead.
func (cl *Cluster) SetLinkState(index int, up bool) {
	for s := range cl.states {
		cl.SetLinkStateOn(s, index, up)
	}
}

// SetLinkStateOn applies a carrier change to one shard's replica of the
// liveness tables, touching only the ports that shard owns — safe to call
// from that shard's goroutine mid-epoch. Idempotent per shard: repeating
// the current state is a no-op.
func (cl *Cluster) SetLinkStateOn(shard, index int, up bool) {
	l := cl.links[index]
	st := cl.states[shard]
	if st.linkUp[index] == up {
		return
	}
	st.linkUp[index] = up
	if l.AShard == shard {
		l.A.SetCarrier(up)
	}
	if l.BShard == shard {
		l.B.SetCarrier(up)
	}
	delta := 1
	if up {
		delta = -1
	}
	switch l.Tier {
	case TierTorAgg:
		st.torAggUp[l.tor][l.aggLocal] = up
		st.fabricDown += delta
	case TierAggCore:
		st.aggCoreUp[l.agg][l.core] = up
		st.fabricDown += delta
	}
}

// MustBuild is Build for tests and examples with static configs.
func MustBuild(eng *sim.Engine, cfg Config, newPolicy PolicyFactory, onComplete host.CompletionHandler) *Cluster {
	cl, err := Build(eng, cfg, newPolicy, onComplete)
	if err != nil {
		panic(err)
	}
	return cl
}

// ecmpHash spreads flows over n parallel next hops, salted so consecutive
// layers make independent choices.
func ecmpHash(f pkt.FlowID, salt uint64, n int) int {
	if n == 1 {
		return 0
	}
	h := fnv.New64a()
	var buf [16]byte
	v := uint64(f)
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
		buf[8+i] = byte(salt >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	return int(h.Sum64() % uint64(n))
}

// pickECMP is liveness-aware ECMP: it returns the plain hash choice when
// that next hop is eligible (the always-true case on a healthy fabric, so
// baseline path selection is bit-identical to hash-only routing), otherwise
// the first eligible index scanning deterministically from the hash. With no
// eligible choice it falls back to the hash — the packet dies at the dead
// link and transport recovery takes over.
func pickECMP(f pkt.FlowID, salt uint64, n int, eligible func(int) bool) int {
	h := ecmpHash(f, salt, n)
	if eligible(h) {
		return h
	}
	for k := 1; k < n; k++ {
		if i := (h + k) % n; eligible(i) {
			return i
		}
	}
	return h
}

// coreReaches reports whether, in shard state st, core c has a live two-hop
// path down to dstToR (some aggregation switch in the destination pod with
// both links alive).
func (cl *Cluster) coreReaches(st *shardState, c, dstToR int) bool {
	aggsPerPod := cl.Cfg.AggCount / cl.Cfg.Pods
	torsPerPod := cl.Cfg.ToRCount / cl.Cfg.Pods
	dstPod := dstToR / torsPerPod
	for a := 0; a < aggsPerPod; a++ {
		if st.aggCoreUp[dstPod*aggsPerPod+a][c] && st.torAggUp[dstToR][a] {
			return true
		}
	}
	return false
}

// installRouting programs every switch's forwarding closure. Each router has
// a fast path — when no fabric link is down it computes exactly the original
// ECMP hash, allocation-free — and a liveness-aware slow path that re-hashes
// around dead links while faults are active. Every router closes over its
// own shard's liveness replica, so routing reads never cross a shard
// boundary mid-epoch.
func (cl *Cluster) installRouting() {
	cfg := cl.Cfg
	aggsPerPod := cfg.AggCount / cfg.Pods
	torsPerPod := cfg.ToRCount / cfg.Pods
	s := cfg.ServersPerToR

	for t, tor := range cl.ToRs {
		t := t
		pod := t / torsPerPod
		st := cl.states[cl.Part.ToR[t]]
		tor.SetRouter(func(p *pkt.Packet, _ int) int {
			dstToR := p.Dst / s
			if dstToR == t {
				return p.Dst % s // local server port
			}
			if st.fabricDown == 0 {
				return s + ecmpHash(p.Flow, 0x746f72, aggsPerPod) // uplink
			}
			dstPod := dstToR / torsPerPod
			return s + pickECMP(p.Flow, 0x746f72, aggsPerPod, func(a int) bool {
				if !st.torAggUp[t][a] {
					return false
				}
				if dstPod == pod {
					// Same pod: that agg must also reach the destination rack.
					return st.torAggUp[dstToR][a]
				}
				// Cross-pod: the agg needs a live uplink to a core that can
				// still descend into the destination pod.
				agg := pod*aggsPerPod + a
				for c := 0; c < cfg.CoreCount; c++ {
					if st.aggCoreUp[agg][c] && cl.coreReaches(st, c, dstToR) {
						return true
					}
				}
				return false
			})
		})
	}

	for a, agg := range cl.Aggs {
		a := a
		pod := a / aggsPerPod
		st := cl.states[cl.Part.Agg[a]]
		agg.SetRouter(func(p *pkt.Packet, _ int) int {
			dstToR := p.Dst / s
			dstPod := dstToR / torsPerPod
			if dstPod == pod {
				return dstToR % torsPerPod // down to the rack (single path)
			}
			if st.fabricDown == 0 {
				return torsPerPod + ecmpHash(p.Flow, 0x616767, cfg.CoreCount) // up
			}
			return torsPerPod + pickECMP(p.Flow, 0x616767, cfg.CoreCount, func(c int) bool {
				return st.aggCoreUp[a][c] && cl.coreReaches(st, c, dstToR)
			})
		})
	}

	for ci, cr := range cl.Cores {
		ci := ci
		st := cl.states[cl.Part.Core[ci]]
		cr.SetRouter(func(p *pkt.Packet, _ int) int {
			dstToR := p.Dst / s
			dstPod := dstToR / torsPerPod
			// Core port layout: one port per agg, in agg-id order.
			if st.fabricDown == 0 {
				return dstPod*aggsPerPod + ecmpHash(p.Flow, 0x636f7265, aggsPerPod)
			}
			return dstPod*aggsPerPod + pickECMP(p.Flow, 0x636f7265, aggsPerPod, func(a int) bool {
				return st.aggCoreUp[dstPod*aggsPerPod+a][ci] && st.torAggUp[dstToR][a]
			})
		})
	}
}

// PathChoice records the healthy-fabric ECMP routing decisions for one
// flow — the same hash choices installRouting's fast path makes — so
// analytic layers (the fluid fast-forward model) can reproduce per-flow
// paths, and therefore per-link hash collisions, without forwarding a
// single packet.
type PathChoice struct {
	// Hops is 2 intra-rack, 4 intra-pod, 6 inter-pod.
	Hops           int
	SrcToR, DstToR int
	// UpAgg is the pod-local index of the aggregation switch the source ToR
	// hashes the flow onto (meaningful when Hops ≥ 4).
	UpAgg int
	// Core is the core-switch index (meaningful when Hops == 6).
	Core int
	// DownAgg is the pod-local index of the aggregation switch the flow
	// descends through in the destination pod: the core's hash choice when
	// Hops == 6, UpAgg itself when Hops == 4.
	DownAgg int
}

// PathOf returns the deterministic healthy-fabric path of flow f from src
// to dst. Matches the routers installed by installRouting whenever no
// fabric link is down.
func (c *Config) PathOf(f pkt.FlowID, src, dst int) PathChoice {
	p := PathChoice{Hops: c.Hops(src, dst), SrcToR: c.ToROf(src), DstToR: c.ToROf(dst)}
	if p.Hops == 2 {
		return p
	}
	aggsPerPod := c.AggCount / c.Pods
	p.UpAgg = ecmpHash(f, 0x746f72, aggsPerPod)
	p.DownAgg = p.UpAgg
	if p.Hops == 6 {
		p.Core = ecmpHash(f, 0x616767, c.CoreCount)
		p.DownAgg = ecmpHash(f, 0x636f7265, aggsPerPod)
	}
	return p
}

// NumHosts returns the server count.
func (cl *Cluster) NumHosts() int { return len(cl.Hosts) }

// StartFlow launches f from its source host.
func (cl *Cluster) StartFlow(f *transport.Flow) { cl.Hosts[f.Src].StartFlow(f) }

// ToROf returns the index of the rack switch serving host h.
func (cl *Cluster) ToROf(h int) int { return cl.Cfg.ToROf(h) }

// Hops returns the number of links a packet traverses from src to dst.
func (cl *Cluster) Hops(src, dst int) int { return cl.Cfg.Hops(src, dst) }

// BasePathDelay returns the empty-network latency of a single MTU packet
// from src to dst.
func (cl *Cluster) BasePathDelay(src, dst int) sim.Duration { return cl.Cfg.BasePathDelay(src, dst) }

// IdealFCT returns the empty-network completion time of a size-byte flow
// from src to dst.
func (cl *Cluster) IdealFCT(src, dst int, size int64) sim.Duration {
	return cl.Cfg.IdealFCT(src, dst, size)
}

// The path-geometry helpers live on Config — not only on a built Cluster —
// so analytic consumers (the fluid fast-forward layer, workload planners)
// can price paths without wiring switches and ports.

// ToROf returns the index of the rack switch serving host h.
func (c *Config) ToROf(h int) int { return h / c.ServersPerToR }

// Hops returns the number of links a packet traverses from src to dst
// (2 within a rack, 4 within a pod, 6 across pods).
func (c *Config) Hops(src, dst int) int {
	torsPerPod := c.ToRCount / c.Pods
	switch {
	case c.ToROf(src) == c.ToROf(dst):
		return 2
	case c.ToROf(src)/torsPerPod == c.ToROf(dst)/torsPerPod:
		return 4
	default:
		return 6
	}
}

// BasePathDelay returns the empty-network latency of a single MTU packet
// from src to dst: propagation plus store-and-forward serialization at each
// hop.
func (c *Config) BasePathDelay(src, dst int) sim.Duration {
	mtuServer := sim.TxTime(pkt.MTUBytes, c.ServerRate)
	mtuFabric := sim.TxTime(pkt.MTUBytes, c.FabricRate)
	switch c.Hops(src, dst) {
	case 2:
		return 2*c.ServerDelay + 2*mtuServer
	case 4:
		return 2*c.ServerDelay + 2*c.TorAggDelay + mtuServer + 3*mtuFabric
	default:
		return 2*c.ServerDelay + 2*c.TorAggDelay + 2*c.AggCoreDelay + mtuServer + 5*mtuFabric
	}
}

// WireBytes returns the on-the-wire size of a size-byte payload: the payload
// plus per-MTU framing overhead.
func WireBytes(size int64) int64 {
	return size + (size+int64(pkt.MTUPayload)-1)/int64(pkt.MTUPayload)*int64(pkt.HeaderBytes)
}

// IdealFCT returns the empty-network completion time of a size-byte flow
// from src to dst: pipeline the payload at the (server-link) bottleneck and
// add the base path latency of the last packet.
func (c *Config) IdealFCT(src, dst int, size int64) sim.Duration {
	return sim.TxTime(int(WireBytes(size)), c.ServerRate) + c.BasePathDelay(src, dst) - sim.TxTime(pkt.MTUBytes, c.ServerRate)
}

// LosslessGaps sums sequence gaps across all hosts (zero unless the
// lossless guarantee broke).
func (cl *Cluster) LosslessGaps() uint64 {
	var total uint64
	for _, h := range cl.Hosts {
		total += h.LosslessGaps()
	}
	return total
}

// DataReceived sums data packets delivered to receivers across all hosts —
// the fabric-wide progress signal the fault watchdog monitors.
func (cl *Cluster) DataReceived() uint64 {
	var total uint64
	for _, h := range cl.Hosts {
		total += h.DataReceived
	}
	return total
}

// ResidentBytes sums buffer occupancy across every switch: nonzero while
// packets are parked somewhere in the fabric.
func (cl *Cluster) ResidentBytes() int64 {
	var total int64
	for _, sw := range cl.AllSwitches() {
		total += sw.Occupancy()
	}
	return total
}

// DataBytes returns the three legs of the fabric-wide flow-byte
// conservation ledger, in wire bytes of data frames only: tx is what hosts
// injected (first transmissions plus retransmissions), rx what hosts'
// receivers took delivery of, and dropped what died at any kill site — the
// switches' three admission-drop paths plus the ports' carrier and fault
// (BER / injected-loss) drops. At any event boundary
// tx - rx - dropped >= 0 (the difference is bytes in flight); after a full
// drain the difference is exactly zero. The invariant auditor checks both.
func (cl *Cluster) DataBytes() (tx, rx, dropped int64) {
	for _, h := range cl.Hosts {
		tx += h.TxDataBytes
		rx += h.RxDataBytes
		st := h.NIC().Stats()
		dropped += int64(st.CarrierDropDataBytes + st.FaultDropDataBytes)
	}
	for _, sw := range cl.AllSwitches() {
		st := sw.Stats()
		dropped += int64(st.LossyDropBytesIngress + st.LossyDropBytesEgress +
			st.LosslessViolationBytes + st.LossyEvictionBytes)
		for i := 0; i < sw.NumPorts(); i++ {
			ps := sw.Port(i).Stats()
			dropped += int64(ps.CarrierDropDataBytes + ps.FaultDropDataBytes)
		}
	}
	return tx, rx, dropped
}

// RecoveryBytes sums retransmitted payload bytes across all hosts.
func (cl *Cluster) RecoveryBytes() int64 {
	var total int64
	for _, h := range cl.Hosts {
		total += h.RecoveryBytes()
	}
	return total
}

// RDMARecoveryStats sums go-back-N rewind counters across all hosts.
func (cl *Cluster) RDMARecoveryStats() (nacks, timeouts uint64) {
	for _, h := range cl.Hosts {
		n, to := h.RDMARecoveryStats()
		nacks += n
		timeouts += to
	}
	return nacks, timeouts
}

// SwitchStats aggregates stats over a slice of switches.
func SwitchStats(switches []*switchsim.Switch) switchsim.Stats {
	var agg switchsim.Stats
	for _, sw := range switches {
		st := sw.Stats()
		agg.RxPackets += st.RxPackets
		agg.TxPackets += st.TxPackets
		agg.LossyDropsIngress += st.LossyDropsIngress
		agg.LossyDropsEgress += st.LossyDropsEgress
		agg.LossyDropBytesIngress += st.LossyDropBytesIngress
		agg.LossyDropBytesEgress += st.LossyDropBytesEgress
		agg.LosslessViolationBytes += st.LosslessViolationBytes
		agg.LossyEvictions += st.LossyEvictions
		agg.LossyEvictionBytes += st.LossyEvictionBytes
		agg.LosslessHeadroom += st.LosslessHeadroom
		agg.LosslessViolations += st.LosslessViolations
		agg.ECNMarked += st.ECNMarked
		agg.PauseFramesSent += st.PauseFramesSent
		agg.ResumeFramesSent += st.ResumeFramesSent
		agg.PFCReissues += st.PFCReissues
		if st.PeakOccupancy > agg.PeakOccupancy {
			agg.PeakOccupancy = st.PeakOccupancy
		}
	}
	return agg
}

// AllSwitches returns every switch in the cluster (ToRs, aggs, cores).
func (cl *Cluster) AllSwitches() []*switchsim.Switch {
	out := make([]*switchsim.Switch, 0, len(cl.ToRs)+len(cl.Aggs)+len(cl.Cores))
	out = append(out, cl.ToRs...)
	out = append(out, cl.Aggs...)
	out = append(out, cl.Cores...)
	return out
}
