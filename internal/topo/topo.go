// Package topo builds the paper's evaluation network (Fig. 6): a three-layer
// Clos with 2 core switches, 4 aggregation switches, 4 ToR switches and 32
// servers per rack — 25 Gbps access links, 100 Gbps fabric links, 1 µs
// propagation everywhere except 5 µs between aggregation and core. The
// fabric is organized in pods (2 by default): a ToR connects to every
// aggregation switch in its pod, and every aggregation switch connects to
// every core. Per-flow ECMP hashing spreads load over the parallel paths.
//
// Everything is parameterized so tests and benchmarks can shrink the
// cluster while experiments run the paper-scale version.
package topo

import (
	"fmt"
	"hash/fnv"

	"l2bm/internal/core"
	"l2bm/internal/dcqcn"
	"l2bm/internal/dctcp"
	"l2bm/internal/host"
	"l2bm/internal/netdev"
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/switchsim"
	"l2bm/internal/transport"
)

// Config describes the cluster to build.
type Config struct {
	// Pods partitions ToRs and aggregation switches into pods.
	Pods int
	// CoreCount, AggCount and ToRCount size the switch layers (AggCount
	// and ToRCount must divide evenly by Pods).
	CoreCount int
	AggCount  int
	ToRCount  int
	// ServersPerToR is the rack size.
	ServersPerToR int
	// ServerRate and FabricRate are the link speeds in bits/s.
	ServerRate int64
	FabricRate int64
	// ServerDelay, TorAggDelay and AggCoreDelay are one-way propagation
	// delays.
	ServerDelay  sim.Duration
	TorAggDelay  sim.Duration
	AggCoreDelay sim.Duration
	// Switch configures every switch MMU.
	Switch switchsim.Config
	// DCTCP and DCQCN configure host transports. DCQCN.LineRate is
	// overridden with ServerRate when zero.
	DCTCP dctcp.Config
	DCQCN dcqcn.Config

	// DisablePacketPool turns off packet recycling: every frame is heap-
	// allocated and left to the GC, the pre-pool behaviour. The determinism
	// suite uses it as the control arm — pooled and pool-disabled runs must
	// be byte-identical.
	DisablePacketPool bool
	// PacketPoolDebug arms the pool's use-after-free audit (a map operation
	// per Get/Put): leaked packets become reportable and freed packets are
	// poisoned. Ignored when DisablePacketPool is set.
	PacketPoolDebug bool
}

// DefaultConfig returns the paper's topology (§IV Setup): 128 servers,
// 10 switches, 25/100 Gbps, 4 MB shared buffer.
func DefaultConfig() Config {
	return Config{
		Pods:          2,
		CoreCount:     2,
		AggCount:      4,
		ToRCount:      4,
		ServersPerToR: 32,
		ServerRate:    25e9,
		FabricRate:    100e9,
		ServerDelay:   sim.Microsecond,
		TorAggDelay:   sim.Microsecond,
		AggCoreDelay:  5 * sim.Microsecond,
		Switch:        switchsim.DefaultConfig(),
		DCTCP:         dctcp.DefaultConfig(),
		DCQCN:         dcqcn.DefaultConfig(25e9),
	}
}

// TinyConfig returns a scaled-down cluster (2 pods × 1 ToR × 4 servers) for
// tests and fast benchmarks, preserving the paper's oversubscription shape.
func TinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Pods = 2
	cfg.CoreCount = 1
	cfg.AggCount = 2
	cfg.ToRCount = 2
	cfg.ServersPerToR = 4
	return cfg
}

// Validate reports configuration errors, including the silent-garbage class:
// negative propagation delays and malformed switch MMU parameters would
// otherwise survive into thresholds as nonsense values.
func (c *Config) Validate() error {
	switch {
	case c.Pods <= 0:
		return fmt.Errorf("topo: Pods = %d, want > 0", c.Pods)
	case c.ToRCount <= 0 || c.ToRCount%c.Pods != 0:
		return fmt.Errorf("topo: ToRCount %d not positive and divisible by Pods %d", c.ToRCount, c.Pods)
	case c.AggCount <= 0 || c.AggCount%c.Pods != 0:
		return fmt.Errorf("topo: AggCount %d not positive and divisible by Pods %d", c.AggCount, c.Pods)
	case c.CoreCount <= 0 || c.ServersPerToR <= 0:
		return fmt.Errorf("topo: switch/server counts must be positive")
	case c.ServerRate <= 0 || c.FabricRate <= 0:
		return fmt.Errorf("topo: link rates must be positive")
	case c.ServerDelay < 0 || c.TorAggDelay < 0 || c.AggCoreDelay < 0:
		return fmt.Errorf("topo: propagation delays must be >= 0 (got %v/%v/%v)",
			c.ServerDelay, c.TorAggDelay, c.AggCoreDelay)
	}
	if err := c.Switch.Validate(); err != nil {
		return fmt.Errorf("topo: %w", err)
	}
	return nil
}

// PolicyFactory creates one buffer-management policy instance per switch
// (policies such as L2BM carry per-switch state and must not be shared).
type PolicyFactory func() core.Policy

// LinkTier classifies a cable by the layer pair it connects.
type LinkTier int

const (
	// TierServer is a host↔ToR access link.
	TierServer LinkTier = iota + 1
	// TierTorAgg is a ToR↔aggregation fabric link.
	TierTorAgg
	// TierAggCore is an aggregation↔core fabric link.
	TierAggCore
)

// String implements fmt.Stringer.
func (t LinkTier) String() string {
	switch t {
	case TierServer:
		return "server"
	case TierTorAgg:
		return "tor-agg"
	case TierAggCore:
		return "agg-core"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// Link is one bidirectional cable in the built cluster, addressable by the
// fault-injection layer. A is the port on the lower (server-side) device, B
// on the upper; taking the link down disables the carrier in both
// directions.
type Link struct {
	Index        int
	Name         string
	Tier         LinkTier
	A, B         *netdev.Port
	AName, BName string

	// Layer-local coordinates into the liveness matrices.
	tor, aggLocal int // TierTorAgg
	agg, core     int // TierAggCore

	up bool
}

// Up reports whether the link currently has carrier.
func (l *Link) Up() bool { return l.up }

// Cluster is a built network.
type Cluster struct {
	Eng   *sim.Engine
	Cfg   Config
	Hosts []*host.Host
	ToRs  []*switchsim.Switch
	Aggs  []*switchsim.Switch
	Cores []*switchsim.Switch

	// Pool is the engine-wide packet free list every host, switch and port
	// draws from and recycles into — nil when Cfg.DisablePacketPool. One
	// pool per engine: the parallel experiment scheduler gives each worker
	// its own engine, so the pool needs no locks.
	Pool *pkt.Pool

	// Link registry and liveness, consulted by the reroute-aware routers.
	links      []*Link
	torAggUp   [][]bool // [torGlobal][aggWithinPod]
	aggCoreUp  [][]bool // [aggGlobal][core]
	fabricDown int      // count of fabric links currently down (fast path)
}

// Build wires the cluster and installs routing. Flow completions are fanned
// out to onComplete (may be nil).
func Build(eng *sim.Engine, cfg Config, newPolicy PolicyFactory, onComplete host.CompletionHandler) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.DCQCN.LineRate == 0 {
		cfg.DCQCN = dcqcn.DefaultConfig(cfg.ServerRate)
	}
	cl := &Cluster{Eng: eng, Cfg: cfg}
	if !cfg.DisablePacketPool {
		if cfg.PacketPoolDebug {
			cl.Pool = pkt.NewDebugPool()
		} else {
			cl.Pool = pkt.NewPool()
		}
	}

	for i := 0; i < cfg.ToRCount; i++ {
		cl.ToRs = append(cl.ToRs, switchsim.NewSwitch(eng, fmt.Sprintf("tor%d", i), cfg.Switch, newPolicy()))
	}
	for i := 0; i < cfg.AggCount; i++ {
		cl.Aggs = append(cl.Aggs, switchsim.NewSwitch(eng, fmt.Sprintf("agg%d", i), cfg.Switch, newPolicy()))
	}
	for i := 0; i < cfg.CoreCount; i++ {
		cl.Cores = append(cl.Cores, switchsim.NewSwitch(eng, fmt.Sprintf("core%d", i), cfg.Switch, newPolicy()))
	}

	// Servers: host h sits under ToR h/ServersPerToR on port h%ServersPerToR.
	total := cfg.ToRCount * cfg.ServersPerToR
	for h := 0; h < total; h++ {
		t := h / cfg.ServersPerToR
		hst := host.New(eng, h, fmt.Sprintf("host%d", h), cfg.DCTCP, cfg.DCQCN)
		hst.SetPool(cl.Pool)
		hp, sp := netdev.Connect(eng, hst, cl.ToRs[t], cfg.ServerRate, cfg.ServerDelay)
		hp.SetPool(cl.Pool)
		hst.SetNIC(hp)
		cl.ToRs[t].AddPort(sp)
		hst.SetCompletionHandler(onComplete)
		cl.Hosts = append(cl.Hosts, hst)
		cl.addLink(&Link{
			Tier: TierServer, A: hp, B: sp,
			AName: hst.Name(), BName: cl.ToRs[t].Name(),
		})
	}

	// ToR ↔ Agg, full bipartite within each pod. ToR uplink ports follow
	// the server ports; agg down ports are indexed by ToR-within-pod.
	aggsPerPod := cfg.AggCount / cfg.Pods
	torsPerPod := cfg.ToRCount / cfg.Pods
	cl.torAggUp = make([][]bool, cfg.ToRCount)
	for t, tor := range cl.ToRs {
		cl.torAggUp[t] = make([]bool, aggsPerPod)
		pod := t / torsPerPod
		for a := 0; a < aggsPerPod; a++ {
			cl.torAggUp[t][a] = true
			agg := cl.Aggs[pod*aggsPerPod+a]
			tp, ap := netdev.Connect(eng, tor, agg, cfg.FabricRate, cfg.TorAggDelay)
			tor.AddPort(tp)
			agg.AddPort(ap)
			cl.addLink(&Link{
				Tier: TierTorAgg, A: tp, B: ap,
				AName: tor.Name(), BName: agg.Name(),
				tor: t, aggLocal: a,
			})
		}
	}

	// Agg ↔ Core, full bipartite. Core down ports indexed by agg id.
	cl.aggCoreUp = make([][]bool, cfg.AggCount)
	for a, agg := range cl.Aggs {
		cl.aggCoreUp[a] = make([]bool, cfg.CoreCount)
		for c := 0; c < cfg.CoreCount; c++ {
			cl.aggCoreUp[a][c] = true
			ap, cp := netdev.Connect(eng, agg, cl.Cores[c], cfg.FabricRate, cfg.AggCoreDelay)
			agg.AddPort(ap)
			cl.Cores[c].AddPort(cp)
			cl.addLink(&Link{
				Tier: TierAggCore, A: ap, B: cp,
				AName: agg.Name(), BName: cl.Cores[c].Name(),
				agg: a, core: c,
			})
		}
	}

	// SetPool after AddPort so every switch port (including the switch side
	// of the access links) is covered in one pass.
	for _, sw := range cl.AllSwitches() {
		sw.SetPool(cl.Pool)
	}

	cl.installRouting()
	return cl, nil
}

// addLink registers a cable in the registry, naming it after its endpoints.
func (cl *Cluster) addLink(l *Link) {
	l.Index = len(cl.links)
	l.Name = l.AName + "~" + l.BName
	l.up = true
	cl.links = append(cl.links, l)
}

// Links returns the cluster's cable registry in deterministic build order.
func (cl *Cluster) Links() []*Link { return cl.links }

// SetLinkState raises or cuts the carrier on link index, updating the
// liveness matrices the routers consult. Idempotent: repeating the current
// state is a no-op.
func (cl *Cluster) SetLinkState(index int, up bool) {
	l := cl.links[index]
	if l.up == up {
		return
	}
	l.up = up
	l.A.SetCarrier(up)
	l.B.SetCarrier(up)
	delta := 1
	if up {
		delta = -1
	}
	switch l.Tier {
	case TierTorAgg:
		cl.torAggUp[l.tor][l.aggLocal] = up
		cl.fabricDown += delta
	case TierAggCore:
		cl.aggCoreUp[l.agg][l.core] = up
		cl.fabricDown += delta
	}
}

// MustBuild is Build for tests and examples with static configs.
func MustBuild(eng *sim.Engine, cfg Config, newPolicy PolicyFactory, onComplete host.CompletionHandler) *Cluster {
	cl, err := Build(eng, cfg, newPolicy, onComplete)
	if err != nil {
		panic(err)
	}
	return cl
}

// ecmpHash spreads flows over n parallel next hops, salted so consecutive
// layers make independent choices.
func ecmpHash(f pkt.FlowID, salt uint64, n int) int {
	if n == 1 {
		return 0
	}
	h := fnv.New64a()
	var buf [16]byte
	v := uint64(f)
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
		buf[8+i] = byte(salt >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	return int(h.Sum64() % uint64(n))
}

// pickECMP is liveness-aware ECMP: it returns the plain hash choice when
// that next hop is eligible (the always-true case on a healthy fabric, so
// baseline path selection is bit-identical to hash-only routing), otherwise
// the first eligible index scanning deterministically from the hash. With no
// eligible choice it falls back to the hash — the packet dies at the dead
// link and transport recovery takes over.
func pickECMP(f pkt.FlowID, salt uint64, n int, eligible func(int) bool) int {
	h := ecmpHash(f, salt, n)
	if eligible(h) {
		return h
	}
	for k := 1; k < n; k++ {
		if i := (h + k) % n; eligible(i) {
			return i
		}
	}
	return h
}

// coreReaches reports whether core c has a live two-hop path down to dstToR
// (some aggregation switch in the destination pod with both links alive).
func (cl *Cluster) coreReaches(c, dstToR int) bool {
	aggsPerPod := cl.Cfg.AggCount / cl.Cfg.Pods
	torsPerPod := cl.Cfg.ToRCount / cl.Cfg.Pods
	dstPod := dstToR / torsPerPod
	for a := 0; a < aggsPerPod; a++ {
		if cl.aggCoreUp[dstPod*aggsPerPod+a][c] && cl.torAggUp[dstToR][a] {
			return true
		}
	}
	return false
}

// installRouting programs every switch's forwarding closure. Each router has
// a fast path — when no fabric link is down it computes exactly the original
// ECMP hash, allocation-free — and a liveness-aware slow path that re-hashes
// around dead links while faults are active.
func (cl *Cluster) installRouting() {
	cfg := cl.Cfg
	aggsPerPod := cfg.AggCount / cfg.Pods
	torsPerPod := cfg.ToRCount / cfg.Pods
	s := cfg.ServersPerToR

	for t, tor := range cl.ToRs {
		t := t
		pod := t / torsPerPod
		tor.SetRouter(func(p *pkt.Packet, _ int) int {
			dstToR := p.Dst / s
			if dstToR == t {
				return p.Dst % s // local server port
			}
			if cl.fabricDown == 0 {
				return s + ecmpHash(p.Flow, 0x746f72, aggsPerPod) // uplink
			}
			dstPod := dstToR / torsPerPod
			return s + pickECMP(p.Flow, 0x746f72, aggsPerPod, func(a int) bool {
				if !cl.torAggUp[t][a] {
					return false
				}
				if dstPod == pod {
					// Same pod: that agg must also reach the destination rack.
					return cl.torAggUp[dstToR][a]
				}
				// Cross-pod: the agg needs a live uplink to a core that can
				// still descend into the destination pod.
				agg := pod*aggsPerPod + a
				for c := 0; c < cfg.CoreCount; c++ {
					if cl.aggCoreUp[agg][c] && cl.coreReaches(c, dstToR) {
						return true
					}
				}
				return false
			})
		})
	}

	for a, agg := range cl.Aggs {
		a := a
		pod := a / aggsPerPod
		agg.SetRouter(func(p *pkt.Packet, _ int) int {
			dstToR := p.Dst / s
			dstPod := dstToR / torsPerPod
			if dstPod == pod {
				return dstToR % torsPerPod // down to the rack (single path)
			}
			if cl.fabricDown == 0 {
				return torsPerPod + ecmpHash(p.Flow, 0x616767, cfg.CoreCount) // up
			}
			return torsPerPod + pickECMP(p.Flow, 0x616767, cfg.CoreCount, func(c int) bool {
				return cl.aggCoreUp[a][c] && cl.coreReaches(c, dstToR)
			})
		})
	}

	for ci, cr := range cl.Cores {
		ci := ci
		cr.SetRouter(func(p *pkt.Packet, _ int) int {
			dstToR := p.Dst / s
			dstPod := dstToR / torsPerPod
			// Core port layout: one port per agg, in agg-id order.
			if cl.fabricDown == 0 {
				return dstPod*aggsPerPod + ecmpHash(p.Flow, 0x636f7265, aggsPerPod)
			}
			return dstPod*aggsPerPod + pickECMP(p.Flow, 0x636f7265, aggsPerPod, func(a int) bool {
				return cl.aggCoreUp[dstPod*aggsPerPod+a][ci] && cl.torAggUp[dstToR][a]
			})
		})
	}
}

// NumHosts returns the server count.
func (cl *Cluster) NumHosts() int { return len(cl.Hosts) }

// StartFlow launches f from its source host.
func (cl *Cluster) StartFlow(f *transport.Flow) { cl.Hosts[f.Src].StartFlow(f) }

// ToROf returns the index of the rack switch serving host h.
func (cl *Cluster) ToROf(h int) int { return h / cl.Cfg.ServersPerToR }

// Hops returns the number of links a packet traverses from src to dst
// (2 within a rack, 4 within a pod, 6 across pods).
func (cl *Cluster) Hops(src, dst int) int {
	torsPerPod := cl.Cfg.ToRCount / cl.Cfg.Pods
	switch {
	case cl.ToROf(src) == cl.ToROf(dst):
		return 2
	case cl.ToROf(src)/torsPerPod == cl.ToROf(dst)/torsPerPod:
		return 4
	default:
		return 6
	}
}

// BasePathDelay returns the empty-network latency of a single MTU packet
// from src to dst: propagation plus store-and-forward serialization at each
// hop.
func (cl *Cluster) BasePathDelay(src, dst int) sim.Duration {
	cfg := cl.Cfg
	mtuServer := sim.TxTime(pkt.MTUBytes, cfg.ServerRate)
	mtuFabric := sim.TxTime(pkt.MTUBytes, cfg.FabricRate)
	switch cl.Hops(src, dst) {
	case 2:
		return 2*cfg.ServerDelay + 2*mtuServer
	case 4:
		return 2*cfg.ServerDelay + 2*cfg.TorAggDelay + mtuServer + 3*mtuFabric
	default:
		return 2*cfg.ServerDelay + 2*cfg.TorAggDelay + 2*cfg.AggCoreDelay + mtuServer + 5*mtuFabric
	}
}

// IdealFCT returns the empty-network completion time of a size-byte flow
// from src to dst: pipeline the payload at the (server-link) bottleneck and
// add the base path latency of the last packet.
func (cl *Cluster) IdealFCT(src, dst int, size int64) sim.Duration {
	wire := size + (size+int64(pkt.MTUPayload)-1)/int64(pkt.MTUPayload)*int64(pkt.HeaderBytes)
	return sim.TxTime(int(wire), cl.Cfg.ServerRate) + cl.BasePathDelay(src, dst) - sim.TxTime(pkt.MTUBytes, cl.Cfg.ServerRate)
}

// LosslessGaps sums sequence gaps across all hosts (zero unless the
// lossless guarantee broke).
func (cl *Cluster) LosslessGaps() uint64 {
	var total uint64
	for _, h := range cl.Hosts {
		total += h.LosslessGaps()
	}
	return total
}

// DataReceived sums data packets delivered to receivers across all hosts —
// the fabric-wide progress signal the fault watchdog monitors.
func (cl *Cluster) DataReceived() uint64 {
	var total uint64
	for _, h := range cl.Hosts {
		total += h.DataReceived
	}
	return total
}

// ResidentBytes sums buffer occupancy across every switch: nonzero while
// packets are parked somewhere in the fabric.
func (cl *Cluster) ResidentBytes() int64 {
	var total int64
	for _, sw := range cl.AllSwitches() {
		total += sw.Occupancy()
	}
	return total
}

// RecoveryBytes sums retransmitted payload bytes across all hosts.
func (cl *Cluster) RecoveryBytes() int64 {
	var total int64
	for _, h := range cl.Hosts {
		total += h.RecoveryBytes()
	}
	return total
}

// RDMARecoveryStats sums go-back-N rewind counters across all hosts.
func (cl *Cluster) RDMARecoveryStats() (nacks, timeouts uint64) {
	for _, h := range cl.Hosts {
		n, to := h.RDMARecoveryStats()
		nacks += n
		timeouts += to
	}
	return nacks, timeouts
}

// SwitchStats aggregates stats over a slice of switches.
func SwitchStats(switches []*switchsim.Switch) switchsim.Stats {
	var agg switchsim.Stats
	for _, sw := range switches {
		st := sw.Stats()
		agg.RxPackets += st.RxPackets
		agg.TxPackets += st.TxPackets
		agg.LossyDropsIngress += st.LossyDropsIngress
		agg.LossyDropsEgress += st.LossyDropsEgress
		agg.LosslessHeadroom += st.LosslessHeadroom
		agg.LosslessViolations += st.LosslessViolations
		agg.ECNMarked += st.ECNMarked
		agg.PauseFramesSent += st.PauseFramesSent
		agg.ResumeFramesSent += st.ResumeFramesSent
		agg.PFCReissues += st.PFCReissues
		if st.PeakOccupancy > agg.PeakOccupancy {
			agg.PeakOccupancy = st.PeakOccupancy
		}
	}
	return agg
}

// AllSwitches returns every switch in the cluster (ToRs, aggs, cores).
func (cl *Cluster) AllSwitches() []*switchsim.Switch {
	out := make([]*switchsim.Switch, 0, len(cl.ToRs)+len(cl.Aggs)+len(cl.Cores))
	out = append(out, cl.ToRs...)
	out = append(out, cl.Aggs...)
	out = append(out, cl.Cores...)
	return out
}
