package topo

import (
	"testing"

	"l2bm/internal/core"
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/transport"
)

// TestECMPUsesAllFabricPaths drives many cross-pod flows and asserts every
// aggregation and core switch carries traffic.
func TestECMPUsesAllFabricPaths(t *testing.T) {
	eng := sim.NewEngine(21)
	cl := MustBuild(eng, DefaultConfig(), dtFactory, nil)

	// 64 cross-pod flows from pod-0 hosts to pod-1 hosts.
	for i := 0; i < 64; i++ {
		cl.StartFlow(&transport.Flow{
			ID:       pkt.FlowID(i + 1),
			Src:      i % 64,        // pod 0 (tor0/tor1)
			Dst:      64 + (i+7)%64, // pod 1 (tor2/tor3)
			Size:     20_000,
			Priority: pkt.PrioLossless,
			Class:    pkt.ClassLossless,
		})
	}
	eng.RunAll()

	for i, agg := range cl.Aggs {
		if agg.Stats().RxPackets == 0 {
			t.Errorf("agg %d carried no traffic: ECMP not spreading", i)
		}
	}
	for i, cr := range cl.Cores {
		if cr.Stats().RxPackets == 0 {
			t.Errorf("core %d carried no traffic: ECMP not spreading", i)
		}
	}
}

// TestIntraRackTrafficStaysLocal asserts rack-local flows never touch the
// fabric.
func TestIntraRackTrafficStaysLocal(t *testing.T) {
	eng := sim.NewEngine(22)
	cl := MustBuild(eng, DefaultConfig(), dtFactory, nil)
	for i := 0; i < 16; i++ {
		cl.StartFlow(&transport.Flow{
			ID: pkt.FlowID(i + 1), Src: i, Dst: (i + 1) % 32, Size: 10_000,
			Priority: pkt.PrioLossy, Class: pkt.ClassLossy,
		})
	}
	eng.RunAll()
	for i, agg := range cl.Aggs {
		if agg.Stats().RxPackets != 0 {
			t.Errorf("agg %d saw rack-local traffic", i)
		}
	}
}

// TestPerFlowPathStability: all packets of one flow take the same path
// (no reordering by design), verified by zero receiver gaps across many
// concurrent lossless flows.
func TestPerFlowPathStability(t *testing.T) {
	eng := sim.NewEngine(23)
	completed := 0
	cl := MustBuild(eng, DefaultConfig(), func() core.Policy { return core.NewDefaultL2BM() },
		func(pkt.FlowID, sim.Time) { completed++ })
	for i := 0; i < 40; i++ {
		cl.StartFlow(&transport.Flow{
			ID: pkt.FlowID(i + 1), Src: i % 32, Dst: 96 + i%32, Size: 100_000,
			Priority: pkt.PrioLossless, Class: pkt.ClassLossless,
		})
	}
	eng.RunAll()
	if completed != 40 {
		t.Fatalf("completed %d/40", completed)
	}
	if cl.LosslessGaps() != 0 {
		t.Error("sequence gaps: per-flow path not stable or loss occurred")
	}
}
