package topo

import (
	"testing"

	"l2bm/internal/host"
	"l2bm/internal/sim"
)

// TestComputePartitionShape checks the pod/ToR-granularity map on the
// paper-scale config: contiguous ToR bands, hosts following their rack,
// aggs dealt across their pod's shards, cores spread evenly.
func TestComputePartitionShape(t *testing.T) {
	cfg := DefaultConfig() // 2 pods, 4 ToRs, 4 aggs, 2 cores
	p, err := ComputePartition(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantToR := []int{0, 0, 1, 1}
	for i, w := range wantToR {
		if p.ToR[i] != w {
			t.Errorf("ToR[%d] = %d, want %d", i, p.ToR[i], w)
		}
	}
	for h := range p.Host {
		if p.Host[h] != p.ToR[h/cfg.ServersPerToR] {
			t.Errorf("host %d shard %d does not follow its ToR", h, p.Host[h])
		}
	}
	// Pod 0 aggs (0,1) belong to pod 0's shard band; pod 1 aggs to pod 1's.
	wantAgg := []int{0, 0, 1, 1}
	for i, w := range wantAgg {
		if p.Agg[i] != w {
			t.Errorf("Agg[%d] = %d, want %d", i, p.Agg[i], w)
		}
	}
	wantCore := []int{0, 1}
	for i, w := range wantCore {
		if p.Core[i] != w {
			t.Errorf("Core[%d] = %d, want %d", i, p.Core[i], w)
		}
	}
}

// TestComputePartitionBounds rejects shard counts outside [1, ToRCount].
func TestComputePartitionBounds(t *testing.T) {
	cfg := TinyConfig() // 2 ToRs
	if _, err := ComputePartition(cfg, 0); err == nil {
		t.Error("shards=0 accepted")
	}
	if _, err := ComputePartition(cfg, 3); err == nil {
		t.Error("shards=3 > ToRCount=2 accepted")
	}
	for s := 1; s <= 2; s++ {
		if _, err := ComputePartition(cfg, s); err != nil {
			t.Errorf("shards=%d rejected: %v", s, err)
		}
	}
}

// TestComputePartitionEveryShardOwnsARack: each shard must own at least one
// ToR for every legal shard count, so no engine sits idle by construction.
func TestComputePartitionEveryShardOwnsARack(t *testing.T) {
	cfg := DefaultConfig()
	for s := 1; s <= cfg.ToRCount; s++ {
		p, err := ComputePartition(cfg, s)
		if err != nil {
			t.Fatalf("shards=%d: %v", s, err)
		}
		owned := make([]bool, s)
		for _, sh := range p.ToR {
			owned[sh] = true
		}
		for sh, ok := range owned {
			if !ok {
				t.Errorf("shards=%d: shard %d owns no ToR", s, sh)
			}
		}
	}
}

// TestBuildShardedWiring verifies the sharded build's invariants: engine
// affinity follows the partition, exactly the cross-shard cables carry
// mailboxes, the lookahead equals the smallest cross-shard propagation
// delay, and arrival keys are wiring-order identical to the classic build.
func TestBuildShardedWiring(t *testing.T) {
	cfg := DefaultConfig()
	part, err := ComputePartition(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	engines := []*sim.Engine{sim.NewEngine(7), sim.NewEngine(7)}
	cl, err := BuildSharded(engines, part, cfg, dtFactory,
		func(int) host.CompletionHandler { return nil })
	if err != nil {
		t.Fatal(err)
	}

	// Engine affinity follows the partition on every tier.
	for h, hst := range cl.Hosts {
		if hst.NIC().Engine() != engines[part.Host[h]] {
			t.Fatalf("host %d NIC on wrong engine", h)
		}
	}
	for t2, sw := range cl.ToRs {
		if sw.Port(0).Engine() != engines[part.ToR[t2]] {
			t.Fatalf("tor %d ports on wrong engine", t2)
		}
	}

	// Mailboxes exist exactly on cross-shard cables, and the registry's
	// outbox list covers both directions of each.
	var wantBoxes int
	for _, l := range cl.Links() {
		cross := part.Shards > 1 && l.CrossShard()
		if (l.A.Outbox() != nil) != cross || (l.B.Outbox() != nil) != cross {
			t.Fatalf("link %s: outbox presence mismatch (cross=%v)", l.Name, cross)
		}
		if cross {
			wantBoxes += 2
		}
	}
	if wantBoxes == 0 {
		t.Fatal("no cross-shard links in a 2-shard default build")
	}
	if got := len(cl.Outboxes()); got != wantBoxes {
		t.Fatalf("Outboxes() = %d, want %d", got, wantBoxes)
	}

	// Lookahead is the smallest cross-shard propagation delay. At 2 shards
	// pods stay whole, so only agg-core trunks (5 µs) cross; at 4 shards
	// pods split and ToR-agg cables (1 µs) cross too.
	if cl.Lookahead != cfg.AggCoreDelay {
		t.Fatalf("Lookahead = %v, want %v", cl.Lookahead, cfg.AggCoreDelay)
	}
	part4, err := ComputePartition(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	eng4 := []*sim.Engine{sim.NewEngine(7), sim.NewEngine(7), sim.NewEngine(7), sim.NewEngine(7)}
	cl4, err := BuildSharded(eng4, part4, cfg, dtFactory,
		func(int) host.CompletionHandler { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if cl4.Lookahead != cfg.TorAggDelay {
		t.Fatalf("4-shard Lookahead = %v, want %v", cl4.Lookahead, cfg.TorAggDelay)
	}

	// Arrival keys are a pure function of wiring order: identical between
	// the classic and sharded builds, and unique across ports.
	classic := MustBuild(sim.NewEngine(7), cfg, dtFactory, nil)
	seen := map[uint64]bool{}
	for i, l := range cl.Links() {
		cla := classic.Links()[i]
		if l.A.ArrivalKey() != cla.A.ArrivalKey() || l.B.ArrivalKey() != cla.B.ArrivalKey() {
			t.Fatalf("link %s: arrival keys differ between classic and sharded builds", l.Name)
		}
		for _, k := range []uint64{l.A.ArrivalKey(), l.B.ArrivalKey()} {
			if k == 0 || seen[k] {
				t.Fatalf("link %s: key %d zero or duplicated", l.Name, k)
			}
			seen[k] = true
		}
	}
}

// TestBuildShardedNeedsLookahead: a sharded build with a zero fabric delay
// has no lookahead and must be rejected, not wedged.
func TestBuildShardedNeedsLookahead(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TorAggDelay = 0
	part, err := ComputePartition(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	engines := []*sim.Engine{sim.NewEngine(1), sim.NewEngine(1)}
	if _, err := BuildSharded(engines, part, cfg, dtFactory,
		func(int) host.CompletionHandler { return nil }); err == nil {
		t.Fatal("zero-lookahead sharded build accepted")
	}
}
