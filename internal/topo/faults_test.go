package topo

import (
	"testing"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/transport"
)

// TestLinkRegistryCoversEveryCable checks the fault layer's view of the
// fabric: every cable registered once, named after its endpoints, with the
// right tier, all initially up.
func TestLinkRegistryCoversEveryCable(t *testing.T) {
	cfg := DefaultConfig()
	cl := MustBuild(sim.NewEngine(1), cfg, dtFactory, nil)

	counts := map[LinkTier]int{}
	names := map[string]bool{}
	for _, l := range cl.Links() {
		counts[l.Tier]++
		if names[l.Name] {
			t.Errorf("duplicate link name %q", l.Name)
		}
		names[l.Name] = true
		if !l.Up() {
			t.Errorf("link %q not up at build", l.Name)
		}
	}
	wantServer := cfg.ToRCount * cfg.ServersPerToR
	wantTorAgg := cfg.ToRCount * (cfg.AggCount / cfg.Pods)
	wantAggCore := cfg.AggCount * cfg.CoreCount
	if counts[TierServer] != wantServer {
		t.Errorf("server links = %d, want %d", counts[TierServer], wantServer)
	}
	if counts[TierTorAgg] != wantTorAgg {
		t.Errorf("tor-agg links = %d, want %d", counts[TierTorAgg], wantTorAgg)
	}
	if counts[TierAggCore] != wantAggCore {
		t.Errorf("agg-core links = %d, want %d", counts[TierAggCore], wantAggCore)
	}
	if !names["tor0~agg0"] || !names["agg0~core0"] {
		t.Error("expected canonical link names tor0~agg0 and agg0~core0")
	}
}

// downLink cuts the named link or fails the test.
func downLink(t *testing.T, cl *Cluster, name string) {
	t.Helper()
	for _, l := range cl.Links() {
		if l.Name == name {
			cl.SetLinkState(l.Index, false)
			return
		}
	}
	t.Fatalf("no link named %q", name)
}

// TestRerouteAvoidsDeadTorAggLink: with tor0~agg0 down before traffic
// starts, every flow from rack 0 must route around agg0 — in both
// directions, since ACKs return — and complete without loss.
func TestRerouteAvoidsDeadTorAggLink(t *testing.T) {
	eng := sim.NewEngine(31)
	completed := 0
	cl := MustBuild(eng, DefaultConfig(), dtFactory,
		func(pkt.FlowID, sim.Time) { completed++ })
	downLink(t, cl, "tor0~agg0")

	// Cross-pod flows from rack 0 (pod 0) to rack 2 (pod 1): all fabric
	// layers involved, forward data and reverse ACKs both constrained.
	const n = 32
	for i := 0; i < n; i++ {
		cl.StartFlow(&transport.Flow{
			ID: pkt.FlowID(i + 1), Src: i % 32, Dst: 64 + i%32, Size: 20_000,
			Priority: pkt.PrioLossless, Class: pkt.ClassLossless,
		})
	}
	eng.RunAll()

	if completed != n {
		t.Fatalf("completed %d/%d flows around the dead link", completed, n)
	}
	if cl.LosslessGaps() != 0 {
		t.Error("sequence gaps: some packets died on the dead link")
	}
	if rx := cl.Aggs[0].Stats().RxPackets; rx != 0 {
		t.Errorf("agg0 carried %d packets despite its only useful link being down", rx)
	}
	if rx := cl.Aggs[1].Stats().RxPackets; rx == 0 {
		t.Error("agg1 carried nothing: traffic was not rerouted")
	}
}

// TestRerouteAvoidsDeadAggCoreLink: with agg0~core0 down, cross-pod flows
// hashed onto that path must detour (via core1 or agg1) and complete.
func TestRerouteAvoidsDeadAggCoreLink(t *testing.T) {
	eng := sim.NewEngine(32)
	completed := 0
	cl := MustBuild(eng, DefaultConfig(), dtFactory,
		func(pkt.FlowID, sim.Time) { completed++ })
	downLink(t, cl, "agg0~core0")

	const n = 32
	for i := 0; i < n; i++ {
		cl.StartFlow(&transport.Flow{
			ID: pkt.FlowID(i + 1), Src: i % 64, Dst: 64 + i%64, Size: 20_000,
			Priority: pkt.PrioLossless, Class: pkt.ClassLossless,
		})
	}
	eng.RunAll()

	if completed != n {
		t.Fatalf("completed %d/%d flows around the dead trunk", completed, n)
	}
	if cl.LosslessGaps() != 0 {
		t.Error("sequence gaps under rerouting")
	}
}

// TestRoutingRestoredAfterRepair: downing and repairing a link must leave
// routing bit-identical to a cluster that never saw the fault — the
// fabricDown==0 fast path is the paper-baseline guarantee.
func TestRoutingRestoredAfterRepair(t *testing.T) {
	run := func(breakAndRepair bool) []uint64 {
		eng := sim.NewEngine(33)
		cl := MustBuild(eng, DefaultConfig(), dtFactory, nil)
		if breakAndRepair {
			for _, name := range []string{"tor0~agg0", "agg2~core1"} {
				downLink(t, cl, name)
			}
			for _, l := range cl.Links() {
				cl.SetLinkState(l.Index, true)
			}
		}
		for i := 0; i < 48; i++ {
			cl.StartFlow(&transport.Flow{
				ID: pkt.FlowID(i + 1), Src: i % 64, Dst: 64 + (i+5)%64, Size: 30_000,
				Priority: pkt.PrioLossless, Class: pkt.ClassLossless,
			})
		}
		eng.RunAll()
		var rx []uint64
		for _, sw := range cl.AllSwitches() {
			rx = append(rx, sw.Stats().RxPackets)
		}
		return rx
	}

	base, repaired := run(false), run(true)
	for i := range base {
		if base[i] != repaired[i] {
			t.Fatalf("switch %d saw %d packets after repair vs %d baseline: fast path not restored",
				i, repaired[i], base[i])
		}
	}
}

// TestSetLinkStateIdempotent: repeating a state is a no-op and the
// fabricDown census stays balanced.
func TestSetLinkStateIdempotent(t *testing.T) {
	cl := MustBuild(sim.NewEngine(1), TinyConfig(), dtFactory, nil)
	var idx int
	for _, l := range cl.Links() {
		if l.Tier == TierTorAgg {
			idx = l.Index
			break
		}
	}
	cl.SetLinkState(idx, false)
	cl.SetLinkState(idx, false)
	if got := cl.states[0].fabricDown; got != 1 {
		t.Fatalf("fabricDown = %d after repeated down, want 1", got)
	}
	cl.SetLinkState(idx, true)
	cl.SetLinkState(idx, true)
	if got := cl.states[0].fabricDown; got != 0 {
		t.Fatalf("fabricDown = %d after repair, want 0", got)
	}
}

// TestValidateRejectsFaultSensitiveGarbage covers the hardening added for
// the fault experiments: negative delays and malformed switch MMU configs
// must be rejected at build time.
func TestValidateRejectsFaultSensitiveGarbage(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.ServerDelay = -sim.Microsecond },
		func(c *Config) { c.AggCoreDelay = -1 },
		func(c *Config) { c.Switch.TotalShared = 0 },
		func(c *Config) { c.Switch.HeadroomPerQueue = -1 },
		func(c *Config) { c.Switch.ECNLosslessPmax = 2 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := Build(sim.NewEngine(1), cfg, dtFactory, nil); err == nil {
			t.Errorf("case %d: malformed config accepted", i)
		}
	}
}
