package core

import (
	"fmt"
	"strings"
)

// Constructor builds a fresh, unshared Policy instance. Every experiment
// point gets its own instance so stateful policies (L2BM's sojourn table,
// EDT/TDT state machines, BShare's delay tracker) never leak state across
// runs or shards.
type Constructor func() Policy

// registryEntry pairs a policy name with its constructor. The registry is
// an ordered slice, not a map: iteration order is part of the determinism
// contract (experiment grids and conformance sweeps walk it in a fixed
// order regardless of Go's map randomization).
type registryEntry struct {
	name string
	ctor Constructor
}

var registry []registryEntry

// Register adds a policy under name. It is called from this package's init
// only; the panics turn registration mistakes (duplicate name, nil
// constructor) into immediate build-time test failures rather than silent
// shadowing.
func Register(name string, ctor Constructor) {
	if name == "" {
		panic("core: Register with empty policy name")
	}
	if ctor == nil {
		panic("core: Register(" + name + ") with nil constructor")
	}
	for _, e := range registry {
		if e.name == name {
			panic("core: duplicate policy registration " + name)
		}
	}
	registry = append(registry, registryEntry{name: name, ctor: ctor})
}

// RegisteredPolicies returns every policy name in registration order: the
// paper's four schemes first (L2BM, DT, DT2, ABM), then the related-work
// policies (EDT, TDT, BShare, Occamy, FB). This is the canonical iteration
// order for the arena grid and the conformance suite. The returned slice
// is a copy; callers may mutate it.
func RegisteredPolicies() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.name
	}
	return out
}

// IsRegistered reports whether name resolves in the registry.
func IsRegistered(name string) bool {
	for _, e := range registry {
		if e.name == name {
			return true
		}
	}
	return false
}

// NewPolicy builds a fresh instance of the named policy. Unknown names
// return an error that lists the registry contents, so CLI validation can
// surface the full menu before any simulation starts.
func NewPolicy(name string) (Policy, error) {
	for _, e := range registry {
		if e.name == name {
			return e.ctor(), nil
		}
	}
	return nil, fmt.Errorf("unknown policy %q (have %s)",
		name, strings.Join(RegisteredPolicies(), " "))
}

// MustNewPolicy is NewPolicy for callers that already validated the name;
// it panics on unknown names.
func MustNewPolicy(name string) Policy {
	p, err := NewPolicy(name)
	if err != nil {
		panic(err.Error())
	}
	return p
}

func init() {
	Register("L2BM", func() Policy { return NewDefaultL2BM() })
	Register("DT", func() Policy { return NewDT() })
	Register("DT2", func() Policy { return NewDT2() })
	Register("ABM", func() Policy { return NewABM() })
	Register("EDT", func() Policy { return NewEDT() })
	Register("TDT", func() Policy { return NewTDT() })
	Register("BShare", func() Policy { return NewBShare() })
	Register("Occamy", func() Policy { return NewOccamy() })
	Register("FB", func() Policy { return NewFB() })
}
