package core

import (
	"fmt"
	"math"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
)

// BShareConfig parameterizes the BShare policy. The zero value is not
// valid; use DefaultBShareConfig.
type BShareConfig struct {
	// Alpha is the base ingress control factor scaled by the delay ratio.
	Alpha float64
	// AlphaEgressPool is the egress-pool DT factor (BShare, like L2BM, is
	// an ingress-pool algorithm).
	AlphaEgressPool float64
	// TargetDelay is the absolute per-queue queueing-delay objective D:
	// a queue measuring exactly D gets weight Alpha, faster queues earn
	// more, slower queues are squeezed.
	TargetDelay sim.Duration
	// DelayFloor is the minimum measured delay used in the ratio,
	// preventing division blow-ups for queues that drain immediately.
	DelayFloor sim.Duration
	// ExcludePauseTime keeps downstream-PFC stall time out of the delay
	// estimate (same mitigation as L2BM §III-D — a paused queue is not a
	// congested queue).
	ExcludePauseTime bool
	// BoundsLossless and BoundsLossy clamp the delay-driven weight per
	// class, with the same rationale as L2BM's bounds: lossless queues are
	// pinned at the common factor so PFC behaviour stays predictable, and
	// lossy queues can never be boosted past the base factor.
	BoundsLossless WeightBounds
	BoundsLossy    WeightBounds
}

// DefaultBShareConfig returns the evaluation defaults: α = 0.5 with a
// 16-MTU-serialization delay target at 25 Gb/s.
func DefaultBShareConfig() BShareConfig {
	floor := sim.TxTime(pkt.MTUBytes, 25e9)
	return BShareConfig{
		Alpha:            AlphaDT2,
		AlphaEgressPool:  AlphaEgress,
		TargetDelay:      16 * floor,
		DelayFloor:       floor,
		ExcludePauseTime: true,
		BoundsLossless:   WeightBounds{Min: AlphaDT2, Max: AlphaDT2},
		BoundsLossy:      WeightBounds{Min: AlphaDT2 / 8, Max: AlphaDT2},
	}
}

// Validate rejects configurations that would silently corrupt thresholds:
// NaN/Inf/non-positive control factors, non-positive delay parameters, and
// malformed weight bounds.
func (cfg *BShareConfig) Validate() error {
	switch {
	case math.IsNaN(cfg.Alpha) || math.IsInf(cfg.Alpha, 0) || cfg.Alpha <= 0:
		return fmt.Errorf("core: BShare Alpha = %v, want finite > 0", cfg.Alpha)
	case math.IsNaN(cfg.AlphaEgressPool) || math.IsInf(cfg.AlphaEgressPool, 0) || cfg.AlphaEgressPool <= 0:
		return fmt.Errorf("core: BShare AlphaEgressPool = %v, want finite > 0", cfg.AlphaEgressPool)
	case cfg.TargetDelay <= 0:
		return fmt.Errorf("core: BShare TargetDelay = %v, want > 0", cfg.TargetDelay)
	case cfg.DelayFloor <= 0:
		return fmt.Errorf("core: BShare DelayFloor = %v, want > 0 (zero divides the ratio)", cfg.DelayFloor)
	}
	if err := cfg.BoundsLossless.Validate(); err != nil {
		return fmt.Errorf("lossless %w", err)
	}
	if err := cfg.BoundsLossy.Validate(); err != nil {
		return fmt.Errorf("lossy %w", err)
	}
	return nil
}

// BShare reimplements packet-queueing-delay-driven buffer sharing
// (arXiv 2605.24178) — philosophically the closest rival to L2BM: both
// read congestion from the time packets spend queued rather than from byte
// counts. Where L2BM normalizes each ingress queue's sojourn estimate
// against the other active queues (relative congestion), BShare holds
// every queue to an absolute delay target D:
//
//	T_i^p(t) = clamp(D / τ_i^p) · α · (B − Q(t))
//
// Queues whose measured queueing delay sits below the target earn a
// proportionally larger share of the free pool; queues exceeding it are
// squeezed toward the class minimum. The per-queue delay estimate τ reuses
// the sojourn module's machinery (Algorithm 1) unchanged.
type BShare struct {
	cfg     BShareConfig
	sojourn *SojournTable
}

// NewBShareConfig returns a BShare policy with the given configuration,
// panicking on invalid configurations like NewL2BM.
func NewBShareConfig(cfg BShareConfig) *BShare {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	return &BShare{cfg: cfg, sojourn: NewSojournTable(cfg.ExcludePauseTime)}
}

// NewBShare returns BShare with the evaluation defaults.
func NewBShare() *BShare { return NewBShareConfig(DefaultBShareConfig()) }

// Name implements Policy.
func (b *BShare) Name() string { return "BShare" }

// Sojourn exposes the delay estimator for tests.
func (b *BShare) Sojourn() *SojournTable { return b.sojourn }

// Weight returns the delay-ratio weight clamp(D/τ)·α for ingress queue
// (port, prio). An idle queue's τ collapses to the floor, so the ratio
// saturates at the class maximum — cold start degenerates to DT with the
// class's max weight, and thresholds never jump when traffic appears.
func (b *BShare) Weight(s StateView, port, prio int) float64 {
	tau := b.sojourn.Tau(s, port, prio)
	if tau < b.cfg.DelayFloor {
		tau = b.cfg.DelayFloor
	}
	w := float64(b.cfg.TargetDelay) / float64(tau) * b.cfg.Alpha
	if ClassOfPriority(prio) == pkt.ClassLossless {
		return b.cfg.BoundsLossless.clamp(w)
	}
	return b.cfg.BoundsLossy.clamp(w)
}

// IngressThreshold implements Policy: the delay-weighted DT share.
func (b *BShare) IngressThreshold(s StateView, port, prio int) int64 {
	free := s.TotalShared() - s.SharedUsed()
	if free < 0 {
		free = 0
	}
	return int64(b.Weight(s, port, prio) * float64(free))
}

// EgressThreshold implements Policy: standard egress-pool DT.
func (b *BShare) EgressThreshold(s StateView, _, prio int) int64 {
	return egressDT(s, prio, b.cfg.AlphaEgressPool)
}

// OnEnqueue implements Policy, feeding the delay estimator.
func (b *BShare) OnEnqueue(s StateView, p *pkt.Packet) { b.sojourn.OnEnqueue(s, p) }

// OnDequeue implements Policy.
func (b *BShare) OnDequeue(s StateView, p *pkt.Packet) { b.sojourn.OnDequeue(s, p) }
