package core

import "l2bm/internal/pkt"

// ABM reimplements Active Buffer Management (Addanki, Apostolaki, Ghobadi et
// al., SIGCOMM 2022) as the paper uses it for comparison. ABM partitions the
// egress buffer per priority and scales each queue's threshold by
//
//	T(port, p) = α_p / n_p(t) · (B − Q_class(t)) · μ̂(port, p)
//
// where n_p(t) is the number of currently congested egress queues of
// priority p and μ̂ is the queue's dequeue rate normalized to line rate. ABM
// as published manages only the (lossy) egress pool and "does not consider
// flow control at ingress" (paper §II-B); following the paper's Table II
// behaviour, the ingress pool falls back to plain DT with the common α = 0.5.
type ABM struct {
	// AlphaPriority is ABM's per-priority α_p (one knob here; the paper's
	// evaluation does not differentiate priorities).
	AlphaPriority float64
	// AlphaIngress is the DT factor applied at the ingress pool.
	AlphaIngress float64
}

// NewABM returns ABM with the evaluation defaults.
func NewABM() *ABM {
	return &ABM{AlphaPriority: AlphaDT2, AlphaIngress: AlphaDT2}
}

// Name implements Policy.
func (a *ABM) Name() string { return "ABM" }

// IngressThreshold implements Policy: plain DT at the ingress pool, since
// ABM itself has no ingress component.
func (a *ABM) IngressThreshold(s StateView, _, _ int) int64 {
	free := s.TotalShared() - s.SharedUsed()
	if free < 0 {
		free = 0
	}
	return int64(a.AlphaIngress * float64(free))
}

// EgressThreshold implements Policy: the ABM formula over the queue's class
// pool. Cold start and fully drained switches are the dangerous corner:
// CongestedEgressQueues(prio) can be 0 (denominator clamped to 1) and the
// measured dequeue/line rates can both be 0 — normalizedDrainRate guards
// the division so no Inf/NaN ever escapes into a threshold.
func (a *ABM) EgressThreshold(s StateView, port, prio int) int64 {
	free := s.TotalShared() - s.EgressPoolUsed(ClassOfPriority(prio))
	if free < 0 {
		free = 0
	}
	n := s.CongestedEgressQueues(prio)
	if n < 1 {
		n = 1
	}
	mu := normalizedDrainRate(s, port, prio)
	return int64(a.AlphaPriority / float64(n) * float64(free) * mu)
}

// normalizedDrainRate returns μ̂(port, prio): the queue's measured dequeue
// rate normalized to the port's line rate. On an idle or freshly booted
// switch both rates are 0 and the naive quotient is NaN — which compares
// false against every guard (NaN <= 0 is false) and would silently poison
// int64 conversion. The fallback mirrors ABM's cold-start convention: an
// equal 1/NumPriorities share. Shared by ABM and FB.
func normalizedDrainRate(s StateView, port, prio int) float64 {
	line := float64(s.EgressLineRate(port))
	if line <= 0 {
		return 1.0 / float64(pkt.NumPriorities)
	}
	mu := float64(s.EgressDrainRate(port, prio)) / line
	if mu <= 0 { // also catches NaN from a 0/0 quotient upstream
		return 1.0 / float64(pkt.NumPriorities)
	}
	return mu
}

// OnEnqueue implements Policy; ABM needs no per-packet state (congestion
// counts and dequeue rates come from the MMU view).
func (a *ABM) OnEnqueue(StateView, *pkt.Packet) {}

// OnDequeue implements Policy.
func (a *ABM) OnDequeue(StateView, *pkt.Packet) {}
