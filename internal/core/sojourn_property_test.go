package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
)

// Property: under any interleaving of enqueues, dequeues and time advances,
// the sojourn table keeps τ ≥ 0, resident counts ≥ 0, and empty queues at
// exactly τ = 0 (Algorithm 1's bookkeeping never goes negative or sticky).
func TestSojournInvariantsUnderChaos(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := newFakeState()
		tab := NewSojournTable(rng.Intn(2) == 0)

		type key struct{ port, prio int }
		resident := make(map[key][]*pkt.Packet)

		for step := 0; step < 400; step++ {
			switch rng.Intn(4) {
			case 0, 1: // enqueue
				k := key{rng.Intn(4), []int{pkt.PrioLossless, pkt.PrioLossy}[rng.Intn(2)]}
				egress := rng.Intn(4)
				s.qout[[2]int{egress, k.prio}] = int64(rng.Intn(300_000))
				p := admit(k.port, k.prio, egress)
				tab.OnEnqueue(s, p)
				resident[k] = append(resident[k], p)
			case 2: // dequeue from a random non-empty queue
				for k, ps := range resident {
					if len(ps) == 0 {
						continue
					}
					i := rng.Intn(len(ps))
					tab.OnDequeue(s, ps[i])
					resident[k] = append(ps[:i], ps[i+1:]...)
					break
				}
			default: // advance time (and sometimes paused time)
				s.now += sim.Duration(rng.Intn(100)) * sim.Microsecond
				if rng.Intn(3) == 0 {
					j, p := rng.Intn(4), []int{pkt.PrioLossless, pkt.PrioLossy}[rng.Intn(2)]
					s.paused[[2]int{j, p}] += sim.Duration(rng.Intn(50)) * sim.Microsecond
				}
			}

			for port := 0; port < 4; port++ {
				for _, prio := range []int{pkt.PrioLossless, pkt.PrioLossy} {
					tau := tab.Tau(s, port, prio)
					if tau < 0 {
						return false
					}
					n := tab.Resident(port, prio)
					if n != len(resident[key{port, prio}]) {
						return false
					}
					if n == 0 && tau != 0 {
						return false
					}
				}
			}
		}

		// Drain everything: the table must return to the zero state.
		for _, ps := range resident {
			for _, p := range ps {
				tab.OnDequeue(s, p)
			}
		}
		sum, active := tab.SumActiveTau(s, sim.Microsecond)
		return sum == 0 && active == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: pause exclusion can only make τ larger or equal — never smaller
// — than the unexcluded estimate, for identical histories.
func TestSojournPauseExclusionMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sA, sB := newFakeState(), newFakeState()
		with := NewSojournTable(true)
		without := NewSojournTable(false)

		for step := 0; step < 100; step++ {
			egress := rng.Intn(3)
			qlen := int64(rng.Intn(200_000))
			sA.qout[[2]int{egress, pkt.PrioLossless}] = qlen
			sB.qout[[2]int{egress, pkt.PrioLossless}] = qlen
			pA := admit(0, pkt.PrioLossless, egress)
			pB := admit(0, pkt.PrioLossless, egress)
			with.OnEnqueue(sA, pA)
			without.OnEnqueue(sB, pB)

			dt := sim.Duration(rng.Intn(50)) * sim.Microsecond
			sA.now += dt
			sB.now += dt
			paused := sim.Duration(rng.Intn(int(dt) + 1))
			sA.paused[[2]int{egress, pkt.PrioLossless}] += paused
			sB.paused[[2]int{egress, pkt.PrioLossless}] += paused

			if with.Tau(sA, 0, pkt.PrioLossless) < without.Tau(sB, 0, pkt.PrioLossless) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
