package core

import "l2bm/internal/pkt"

// Evictor is the MMU capability a preemptive policy needs: the ability to
// remove already-admitted lossy bytes from an egress queue. It is
// implemented by switchsim.Switch; policies receive it only inside a
// Preempt call, never retain it.
type Evictor interface {
	// EvictLossyTail removes packets from the TAIL of lossy egress queue
	// (port, prio) — most recently admitted first, so the packets that
	// benefited from a stale high threshold are the first to go — until at
	// least want bytes are freed or the queue has no evictable packet
	// left. It returns the bytes actually freed (0 when the queue is
	// empty, holds no lossy data, or the priority is not a lossy class).
	// Evicted bytes count as drops in the MMU's conservation ledger.
	EvictLossyTail(port, prio int, want int64) int64
}

// PreemptivePolicy is the optional capability interface behind Occamy's
// preemption: the MMU type-asserts its policy once at construction, and
// policies that do not implement it (DT, DT2, ABM, L2BM, ...) run the
// admission path completely untouched.
type PreemptivePolicy interface {
	Policy
	// Preempt is invoked by the MMU when lossy packet p, arriving on
	// ingress port in and bound for egress port out, failed an admission
	// threshold check. The policy may evict already-admitted lossy bytes
	// through ev to make room. Returning true tells the MMU that state
	// changed and the admission decision should be re-evaluated exactly
	// once; returning false drops p immediately.
	Preempt(s StateView, ev Evictor, p *pkt.Packet, in, out int) bool
}

// Occamy reimplements the preemptive shared-memory buffer management of
// Occamy (Danfeng Shan et al., arXiv 2501.13570). Its thresholds are plain
// DT on both pools; the novelty is what happens when a packet fails
// admission. Under DT, thresholds fall as the buffer fills, so bytes
// admitted earlier (when thresholds were high) can legally occupy more
// than the *current* threshold allows — stranding newly arriving packets
// of lightly loaded queues. Occamy preempts: it evicts already-admitted
// bytes from the tail of the lossy egress queue most over its present
// threshold, freeing pool space (which raises every threshold) and retries
// the admission. The eviction shows up as a drop for the victim flow —
// trading loss in an already-over-budget queue for admission of a packet
// the current thresholds say deserves the space.
type Occamy struct {
	// AlphaIngress and AlphaEgressPool are the DT control factors.
	AlphaIngress    float64
	AlphaEgressPool float64
	// MaxVictimQueues bounds how many distinct victim queues one Preempt
	// call may drain (each round re-scans for the currently most
	// over-threshold queue).
	MaxVictimQueues int
}

// NewOccamy returns Occamy with the evaluation defaults: the common
// α = 0.5 on both pools and up to 4 victim queues per preemption.
func NewOccamy() *Occamy {
	return &Occamy{AlphaIngress: AlphaDT2, AlphaEgressPool: AlphaEgress, MaxVictimQueues: 4}
}

// Name implements Policy.
func (o *Occamy) Name() string { return "Occamy" }

// IngressThreshold implements Policy: plain DT.
func (o *Occamy) IngressThreshold(s StateView, _, _ int) int64 {
	free := s.TotalShared() - s.SharedUsed()
	if free < 0 {
		free = 0
	}
	return int64(o.AlphaIngress * float64(free))
}

// EgressThreshold implements Policy: egress-pool DT.
func (o *Occamy) EgressThreshold(s StateView, _, prio int) int64 {
	return egressDT(s, prio, o.AlphaEgressPool)
}

// OnEnqueue implements Policy; Occamy's thresholds are stateless (the
// preemption decision reads MMU state directly).
func (o *Occamy) OnEnqueue(StateView, *pkt.Packet) {}

// OnDequeue implements Policy.
func (o *Occamy) OnDequeue(StateView, *pkt.Packet) {}

// Preempt implements PreemptivePolicy. Victim selection is deterministic:
// scan every lossy egress queue in (port, prio) order, pick the one with
// the largest positive excess over its current DT threshold, evict at most
// that excess from its tail, and repeat (re-scanning, since each eviction
// moves every threshold) until the arriving packet's size is covered or no
// queue remains over threshold. The arriving packet's own target queue is
// never a victim — evicting it to admit into it would be a wash.
func (o *Occamy) Preempt(s StateView, ev Evictor, p *pkt.Packet, _, out int) bool {
	if ClassOfPriority(p.Priority) != pkt.ClassLossy {
		return false
	}
	need := int64(p.Size)
	var freed int64
	for round := 0; round < o.MaxVictimQueues && freed < need; round++ {
		bestPort, bestPrio, bestExcess := -1, -1, int64(0)
		for port := 0; port < s.NumPorts(); port++ {
			for prio := 0; prio < pkt.NumPriorities; prio++ {
				if ClassOfPriority(prio) != pkt.ClassLossy {
					continue
				}
				if port == out && prio == p.Priority {
					continue
				}
				excess := s.EgressQueueBytes(port, prio) - o.EgressThreshold(s, port, prio)
				if excess > bestExcess {
					bestPort, bestPrio, bestExcess = port, prio, excess
				}
			}
		}
		if bestPort < 0 {
			break
		}
		want := need - freed
		if want > bestExcess {
			want = bestExcess
		}
		got := ev.EvictLossyTail(bestPort, bestPrio, want)
		if got == 0 {
			break
		}
		freed += got
	}
	return freed > 0
}
