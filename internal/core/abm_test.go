package core

import (
	"testing"

	"l2bm/internal/pkt"
)

func TestABMIngressIsDT(t *testing.T) {
	s := newFakeState()
	s.used = 2 << 20
	abm := NewABM()
	want := int64(0.5 * float64(2<<20))
	if got := abm.IngressThreshold(s, 0, pkt.PrioLossless); got != want {
		t.Errorf("ABM ingress threshold = %d, want DT(0.5) %d", got, want)
	}
}

func TestABMEgressDividesAmongCongestedQueues(t *testing.T) {
	s := newFakeState()
	abm := NewABM()

	s.congested[pkt.PrioLossy] = 1
	one := abm.EgressThreshold(s, 0, pkt.PrioLossy)
	s.congested[pkt.PrioLossy] = 4
	four := abm.EgressThreshold(s, 0, pkt.PrioLossy)
	if four*4 != one {
		t.Errorf("threshold with n=4 (%d) should be a quarter of n=1 (%d)", four, one)
	}
}

func TestABMEgressZeroCongestedTreatedAsOne(t *testing.T) {
	s := newFakeState()
	abm := NewABM()
	s.congested[pkt.PrioLossy] = 0
	zero := abm.EgressThreshold(s, 0, pkt.PrioLossy)
	s.congested[pkt.PrioLossy] = 1
	one := abm.EgressThreshold(s, 0, pkt.PrioLossy)
	if zero != one {
		t.Errorf("n=0 threshold %d should equal n=1 threshold %d", zero, one)
	}
}

func TestABMEgressScalesWithDrainRate(t *testing.T) {
	s := newFakeState()
	abm := NewABM()
	s.congested[pkt.PrioLossy] = 1

	s.drain[[2]int{0, pkt.PrioLossy}] = s.line // full rate
	full := abm.EgressThreshold(s, 0, pkt.PrioLossy)
	s.drain[[2]int{0, pkt.PrioLossy}] = s.line / 2
	half := abm.EgressThreshold(s, 0, pkt.PrioLossy)
	if half*2 != full {
		t.Errorf("half-rate threshold %d should be half of full-rate %d", half, full)
	}
}

func TestABMEgressZeroDrainFallsBack(t *testing.T) {
	s := newFakeState()
	abm := NewABM()
	s.congested[pkt.PrioLossy] = 1
	s.drain[[2]int{0, pkt.PrioLossy}] = 0
	got := abm.EgressThreshold(s, 0, pkt.PrioLossy)
	if got <= 0 {
		t.Errorf("threshold with zero drain rate = %d, want positive fallback", got)
	}
	want := int64(abm.AlphaPriority / 1 * float64(s.total) / float64(pkt.NumPriorities))
	if got != want {
		t.Errorf("fallback threshold = %d, want %d", got, want)
	}
}

func TestABMName(t *testing.T) {
	if NewABM().Name() != "ABM" {
		t.Error("name wrong")
	}
}
