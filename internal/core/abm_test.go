package core

import (
	"math"
	"testing"

	"l2bm/internal/pkt"
)

func TestABMIngressIsDT(t *testing.T) {
	s := newFakeState()
	s.used = 2 << 20
	abm := NewABM()
	want := int64(0.5 * float64(2<<20))
	if got := abm.IngressThreshold(s, 0, pkt.PrioLossless); got != want {
		t.Errorf("ABM ingress threshold = %d, want DT(0.5) %d", got, want)
	}
}

func TestABMEgressDividesAmongCongestedQueues(t *testing.T) {
	s := newFakeState()
	abm := NewABM()

	s.congested[pkt.PrioLossy] = 1
	one := abm.EgressThreshold(s, 0, pkt.PrioLossy)
	s.congested[pkt.PrioLossy] = 4
	four := abm.EgressThreshold(s, 0, pkt.PrioLossy)
	if four*4 != one {
		t.Errorf("threshold with n=4 (%d) should be a quarter of n=1 (%d)", four, one)
	}
}

func TestABMEgressZeroCongestedTreatedAsOne(t *testing.T) {
	s := newFakeState()
	abm := NewABM()
	s.congested[pkt.PrioLossy] = 0
	zero := abm.EgressThreshold(s, 0, pkt.PrioLossy)
	s.congested[pkt.PrioLossy] = 1
	one := abm.EgressThreshold(s, 0, pkt.PrioLossy)
	if zero != one {
		t.Errorf("n=0 threshold %d should equal n=1 threshold %d", zero, one)
	}
}

func TestABMEgressScalesWithDrainRate(t *testing.T) {
	s := newFakeState()
	abm := NewABM()
	s.congested[pkt.PrioLossy] = 1

	s.drain[[2]int{0, pkt.PrioLossy}] = s.line // full rate
	full := abm.EgressThreshold(s, 0, pkt.PrioLossy)
	s.drain[[2]int{0, pkt.PrioLossy}] = s.line / 2
	half := abm.EgressThreshold(s, 0, pkt.PrioLossy)
	if half*2 != full {
		t.Errorf("half-rate threshold %d should be half of full-rate %d", half, full)
	}
}

func TestABMEgressZeroDrainFallsBack(t *testing.T) {
	s := newFakeState()
	abm := NewABM()
	s.congested[pkt.PrioLossy] = 1
	s.drain[[2]int{0, pkt.PrioLossy}] = 0
	got := abm.EgressThreshold(s, 0, pkt.PrioLossy)
	if got <= 0 {
		t.Errorf("threshold with zero drain rate = %d, want positive fallback", got)
	}
	want := int64(abm.AlphaPriority / 1 * float64(s.total) / float64(pkt.NumPriorities))
	if got != want {
		t.Errorf("fallback threshold = %d, want %d", got, want)
	}
}

// TestABMZeroLineRateNoNaN: on a cold-start or drained switch both the
// measured dequeue rate and (with a downed link) the line rate can read 0.
// The naive μ̂ = drain/line is then 0/0 = NaN, which slips past a `mu <= 0`
// guard (NaN compares false) and turns the threshold into garbage via
// int64(NaN). The fallback must engage instead.
func TestABMZeroLineRateNoNaN(t *testing.T) {
	s := newFakeState()
	s.line = 0 // drain defaults to line → a 0/0 quotient without the guard
	abm := NewABM()
	got := abm.EgressThreshold(s, 0, pkt.PrioLossy)
	want := int64(abm.AlphaPriority / 1 * float64(s.total) / float64(pkt.NumPriorities))
	if got != want {
		t.Errorf("zero-line-rate threshold = %d, want fallback %d", got, want)
	}
	if got < 0 || got > s.total {
		t.Errorf("threshold %d escaped [0, %d]", got, s.total)
	}
}

// TestNormalizedDrainRateFinite sweeps the degenerate rate combinations;
// μ̂ must always be finite and in (0, 1].
func TestNormalizedDrainRateFinite(t *testing.T) {
	for _, tc := range []struct{ drain, line int64 }{
		{0, 0}, {0, 25e9}, {25e9, 0}, {-1, 25e9}, {25e9, -1},
	} {
		s := newFakeState()
		s.line = tc.line
		s.drain[[2]int{0, pkt.PrioLossy}] = tc.drain
		mu := normalizedDrainRate(s, 0, pkt.PrioLossy)
		if math.IsNaN(mu) || math.IsInf(mu, 0) || mu <= 0 || mu > 1 {
			t.Errorf("drain=%d line=%d: μ̂ = %v, want finite in (0,1]", tc.drain, tc.line, mu)
		}
	}
}

func TestABMName(t *testing.T) {
	if NewABM().Name() != "ABM" {
		t.Error("name wrong")
	}
}
