package core

import (
	"testing"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
)

// admit builds a data packet stamped as the MMU would: admitted at ingress
// (inPort, prio), queued at egress outPort.
func admit(inPort, prio, outPort int) *pkt.Packet {
	p := pkt.NewData(1, 0, 1, prio, ClassOfPriority(prio), 0, pkt.MTUPayload)
	p.InPort, p.InPrio, p.OutPort = inPort, prio, outPort
	return p
}

func TestSojournEmptyQueue(t *testing.T) {
	s := newFakeState()
	tab := NewSojournTable(true)
	if got := tab.Tau(s, 0, 0); got != 0 {
		t.Errorf("τ of empty queue = %v, want 0", got)
	}
	if tab.Resident(0, 0) != 0 {
		t.Error("empty queue should have no residents")
	}
}

func TestSojournSingleEnqueue(t *testing.T) {
	s := newFakeState()
	tab := NewSojournTable(true)

	// 50 KB already queued at egress port 3 priority 0, draining at line
	// rate: expected sojourn is its serialization time.
	s.qout[[2]int{3, 0}] = 50_000
	tab.OnEnqueue(s, admit(0, 0, 3))

	want := sim.TxTime(50_000, s.line)
	if got := tab.Tau(s, 0, 0); got != want {
		t.Errorf("τ = %v, want %v", got, want)
	}
	if tab.Resident(0, 0) != 1 {
		t.Error("resident count wrong")
	}
}

func TestSojournDecaysWithTime(t *testing.T) {
	s := newFakeState()
	tab := NewSojournTable(true)
	s.qout[[2]int{3, 0}] = 50_000
	tab.OnEnqueue(s, admit(0, 0, 3))
	tau0 := tab.Tau(s, 0, 0)

	step := 2 * sim.Microsecond
	s.now += step
	if got, want := tab.Tau(s, 0, 0), tau0-step; got != want {
		t.Errorf("τ after %v = %v, want %v", step, got, want)
	}
}

func TestSojournClampsAtZero(t *testing.T) {
	s := newFakeState()
	tab := NewSojournTable(true)
	s.qout[[2]int{3, 0}] = 1000
	tab.OnEnqueue(s, admit(0, 0, 3))

	s.now += sim.Second // far beyond any drain estimate
	if got := tab.Tau(s, 0, 0); got != 0 {
		t.Errorf("τ = %v, want clamp at 0", got)
	}
}

func TestSojournAveragesAcrossPackets(t *testing.T) {
	s := newFakeState()
	tab := NewSojournTable(true)

	s.qout[[2]int{3, 0}] = 100_000
	tab.OnEnqueue(s, admit(0, 0, 3))
	s.qout[[2]int{4, 0}] = 300_000
	tab.OnEnqueue(s, admit(0, 0, 4))

	want := (sim.TxTime(100_000, s.line) + sim.TxTime(300_000, s.line)) / 2
	if got := tab.Tau(s, 0, 0); got != want {
		t.Errorf("τ = %v, want mean %v", got, want)
	}
}

func TestSojournDequeueEmptiesState(t *testing.T) {
	s := newFakeState()
	tab := NewSojournTable(true)
	s.qout[[2]int{3, 0}] = 100_000
	p := admit(0, 0, 3)
	tab.OnEnqueue(s, p)
	tab.OnDequeue(s, p)

	if tab.Resident(0, 0) != 0 {
		t.Error("resident count should be zero after dequeue")
	}
	if got := tab.Tau(s, 0, 0); got != 0 {
		t.Errorf("τ after queue emptied = %v, want 0 (total reset)", got)
	}
}

func TestSojournDequeueKeepsRemainderSane(t *testing.T) {
	s := newFakeState()
	tab := NewSojournTable(true)
	s.qout[[2]int{3, 0}] = 100_000
	p1 := admit(0, 0, 3)
	tab.OnEnqueue(s, p1)
	s.qout[[2]int{3, 0}] = 200_000
	p2 := admit(0, 0, 3)
	tab.OnEnqueue(s, p2)

	tab.OnDequeue(s, p1)
	if tab.Resident(0, 0) != 1 {
		t.Fatal("one packet should remain")
	}
	if tau := tab.Tau(s, 0, 0); tau < 0 {
		t.Errorf("τ = %v, want non-negative", tau)
	}
}

func TestSojournPauseExclusion(t *testing.T) {
	// With the §III-D mitigation on, time the destination egress priority
	// spends paused by downstream PFC must not shrink the estimate.
	s := newFakeState()
	tab := NewSojournTable(true)
	s.qout[[2]int{3, 0}] = 100_000
	tab.OnEnqueue(s, admit(0, 0, 3))
	tau0 := tab.Tau(s, 0, 0)

	// Advance 10 µs of which the egress was paused the whole time.
	s.now += 10 * sim.Microsecond
	s.paused[[2]int{3, 0}] += 10 * sim.Microsecond
	if got := tab.Tau(s, 0, 0); got != tau0 {
		t.Errorf("τ with full pause overlap = %v, want unchanged %v", got, tau0)
	}

	// Another 10 µs, half paused: only the unpaused half counts.
	s.now += 10 * sim.Microsecond
	s.paused[[2]int{3, 0}] += 5 * sim.Microsecond
	if got, want := tab.Tau(s, 0, 0), tau0-5*sim.Microsecond; got != want {
		t.Errorf("τ with half pause overlap = %v, want %v", got, want)
	}
}

func TestSojournPauseExclusionDisabled(t *testing.T) {
	s := newFakeState()
	tab := NewSojournTable(false)
	s.qout[[2]int{3, 0}] = 100_000
	tab.OnEnqueue(s, admit(0, 0, 3))
	tau0 := tab.Tau(s, 0, 0)

	s.now += 10 * sim.Microsecond
	s.paused[[2]int{3, 0}] += 10 * sim.Microsecond
	if got, want := tab.Tau(s, 0, 0), tau0-10*sim.Microsecond; got != want {
		t.Errorf("τ with exclusion off = %v, want full decay to %v", got, want)
	}
}

func TestSojournPauseOnlyAffectsMatchingEgress(t *testing.T) {
	s := newFakeState()
	tab := NewSojournTable(true)
	s.qout[[2]int{3, 0}] = 100_000
	tab.OnEnqueue(s, admit(0, 0, 3))
	tau0 := tab.Tau(s, 0, 0)

	// Pause a different egress port: decay proceeds normally.
	s.now += 10 * sim.Microsecond
	s.paused[[2]int{5, 0}] += 10 * sim.Microsecond
	if got, want := tab.Tau(s, 0, 0), tau0-10*sim.Microsecond; got != want {
		t.Errorf("τ = %v, want %v (pause of unrelated port ignored)", got, want)
	}
}

func TestSojournZeroDrainRateFallsBackToLineRate(t *testing.T) {
	s := newFakeState()
	tab := NewSojournTable(true)
	s.qout[[2]int{3, 0}] = 100_000
	s.drain[[2]int{3, 0}] = 0
	tab.OnEnqueue(s, admit(0, 0, 3))
	if got, want := tab.Tau(s, 0, 0), sim.TxTime(100_000, s.line); got != want {
		t.Errorf("τ = %v, want fallback to line rate %v", got, want)
	}
}

func TestSumActiveTauAndFloor(t *testing.T) {
	s := newFakeState()
	tab := NewSojournTable(true)

	floor := sim.Microsecond
	// Queue A: τ = 32 µs (100 KB at 25G). Queue B: τ ≈ 0 → floored.
	s.qout[[2]int{3, 0}] = 100_000
	tab.OnEnqueue(s, admit(0, 0, 3))
	s.qout[[2]int{4, 1}] = 0
	tab.OnEnqueue(s, admit(1, 1, 4))

	sum, active := tab.SumActiveTau(s, floor)
	if active != 2 {
		t.Fatalf("active = %d, want 2", active)
	}
	want := sim.TxTime(100_000, s.line) + floor
	if sum != want {
		t.Errorf("sum = %v, want %v", sum, want)
	}

	maxTau, active := tab.MaxActiveTau(s, floor)
	if active != 2 || maxTau != sim.TxTime(100_000, s.line) {
		t.Errorf("max = %v (active %d), want %v (2)", maxTau, active, sim.TxTime(100_000, s.line))
	}
}

func TestSumActiveTauSkipsEmptyQueues(t *testing.T) {
	s := newFakeState()
	tab := NewSojournTable(true)
	s.qout[[2]int{3, 0}] = 100_000
	p := admit(0, 0, 3)
	tab.OnEnqueue(s, p)
	tab.OnDequeue(s, p)

	if sum, active := tab.SumActiveTau(s, sim.Microsecond); active != 0 || sum != 0 {
		t.Errorf("sum/active over emptied table = %v/%d, want 0/0", sum, active)
	}
}

func TestSojournPausedEgressGrowsTau(t *testing.T) {
	// Regression for the DrainRate bug: a packet headed to a PAUSED egress
	// priority must not be charged a finite backlog/(rate-share) drain time.
	// DrainRate now reports 0 for paused queues; without §III-D exclusion
	// the estimate is elapsed-pause (renewal rule for the remaining pause)
	// plus backlog at the post-resume line rate.
	s := newFakeState()
	tab := NewSojournTable(false)
	backlog := int64(50_000)
	s.qout[[2]int{3, 0}] = backlog
	s.drain[[2]int{3, 0}] = 0                        // paused: no service
	s.pausedFor[[2]int{3, 0}] = 40 * sim.Microsecond // paused for 40µs already
	tab.OnEnqueue(s, admit(0, 0, 3))

	want := 40*sim.Microsecond + sim.TxTime(int(backlog), s.line)
	if got := tab.Tau(s, 0, 0); got != want {
		t.Errorf("τ behind paused port = %v, want %v (pause + line-rate drain)", got, want)
	}
	// Pin the growth: the pre-fix estimate (backlog at a rate/(n+1) share,
	// say half line rate) is strictly smaller.
	buggy := sim.TxTime(int(backlog), s.line/2)
	if got := tab.Tau(s, 0, 0); got <= buggy {
		t.Errorf("τ = %v did not grow beyond the buggy estimate %v", got, buggy)
	}
}

func TestSojournPausedEgressWithExclusionChargesDrainOnly(t *testing.T) {
	// With §III-D pause exclusion on, pause time never counts toward the
	// sojourn estimate (advance won't decay it while paused either), so the
	// enqueue charge is the post-resume drain alone — charging the elapsed
	// pause too would double-count.
	s := newFakeState()
	tab := NewSojournTable(true)
	backlog := int64(50_000)
	s.qout[[2]int{3, 0}] = backlog
	s.drain[[2]int{3, 0}] = 0
	s.pausedFor[[2]int{3, 0}] = 40 * sim.Microsecond
	tab.OnEnqueue(s, admit(0, 0, 3))

	want := sim.TxTime(int(backlog), s.line)
	if got := tab.Tau(s, 0, 0); got != want {
		t.Errorf("τ with exclusion = %v, want %v (line-rate drain only)", got, want)
	}
}

func TestPeekActiveMatchesTauWithoutMutation(t *testing.T) {
	s := newFakeState()
	tab := NewSojournTable(true)
	s.qout[[2]int{3, 0}] = 50_000
	s.qout[[2]int{2, 4}] = 20_000
	tab.OnEnqueue(s, admit(0, 0, 3))
	tab.OnEnqueue(s, admit(1, 4, 2))
	s.now += 2 * sim.Microsecond

	// Peek twice, then compare with the mutating Tau: all three must agree,
	// and the peeks must not have advanced anything (the observer-effect
	// guarantee the trace sampler depends on).
	floor := sim.Duration(1)
	peek1 := tab.PeekActive(s, floor)
	peek2 := tab.PeekActive(s, floor)
	if len(peek1) != 2 || len(peek2) != 2 {
		t.Fatalf("PeekActive sizes = %d, %d, want 2, 2", len(peek1), len(peek2))
	}
	for i := range peek1 {
		if peek1[i] != peek2[i] {
			t.Errorf("repeated peek diverged: %+v vs %+v", peek1[i], peek2[i])
		}
	}
	// (port, prio) ordering: port 1 queue (prio 4) has index 1*8+4 = 12,
	// port 0 queue (prio 0) index 0 — ascending index order.
	if peek1[0].Port != 0 || peek1[0].Prio != 0 || peek1[1].Port != 1 || peek1[1].Prio != 4 {
		t.Fatalf("PeekActive order = %+v", peek1)
	}
	if got := tab.Tau(s, 0, 0); got != peek1[0].Tau {
		t.Errorf("Tau(0,0) = %v, peeked %v", got, peek1[0].Tau)
	}
	if got := tab.Tau(s, 1, 4); got != peek1[1].Tau {
		t.Errorf("Tau(1,4) = %v, peeked %v", got, peek1[1].Tau)
	}
}
