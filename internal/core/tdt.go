package core

import (
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
)

// TDT reimplements the Traffic-aware Dynamic Threshold policy (Huang, Wang,
// Cui, IEEE/ACM ToN 2022), the second DT variant the paper cites (§II-B,
// §V). TDT classifies each egress queue's instantaneous traffic pattern and
// switches its control factor between three modes:
//
//   - Normal: classic DT with α_n.
//   - Absorption: entered when the queue builds up rapidly while the switch
//     still has plenty of free buffer (a micro-burst); the factor is raised
//     to α_n·AbsorbBoost so the burst fits instead of dropping.
//   - Evacuation: entered from Absorption when the buffer is running out or
//     the burst has passed; the factor is cut to α_n·EvacuateCut until the
//     queue drains below its normal share, pushing the hoarded memory back
//     to the pool.
//
// Like ABM and EDT, TDT manages the egress pool; the ingress pool runs
// classic DT (α = 0.5).
type TDT struct {
	// AlphaEgressPool is the Normal-mode egress factor α_n.
	AlphaEgressPool float64
	// AlphaIngress is the ingress-pool DT factor.
	AlphaIngress float64
	// AbsorbBoost multiplies α_n during absorption.
	AbsorbBoost float64
	// EvacuateCut multiplies α_n during evacuation.
	EvacuateCut float64
	// BurstBytes is the queue growth within BurstWindow that signals a
	// micro-burst.
	BurstBytes int64
	// BurstWindow is the observation window for burst detection.
	BurstWindow sim.Duration
	// FreeFraction is the minimum fraction of free buffer required to
	// enter (or stay in) absorption.
	FreeFraction float64

	states map[[2]int]*tdtQueue
}

// tdtState is one queue's mode.
type tdtState int

const (
	tdtNormal tdtState = iota + 1
	tdtAbsorb
	tdtEvacuate
)

// tdtQueue tracks burst detection state for one egress queue.
type tdtQueue struct {
	state     tdtState
	windowAt  sim.Time
	windowLen int64
	lastLen   int64
}

// NewTDT returns TDT with the evaluation defaults.
func NewTDT() *TDT {
	return &TDT{
		AlphaEgressPool: AlphaEgress,
		AlphaIngress:    AlphaDT2,
		AbsorbBoost:     4,
		EvacuateCut:     0.25,
		BurstBytes:      16 * pkt.MTUBytes,
		BurstWindow:     20 * sim.Microsecond,
		FreeFraction:    0.25,
		states:          make(map[[2]int]*tdtQueue),
	}
}

var _ Policy = (*TDT)(nil)

// Name implements Policy.
func (t *TDT) Name() string { return "TDT" }

// IngressThreshold implements Policy: classic DT at the ingress pool.
func (t *TDT) IngressThreshold(s StateView, _, _ int) int64 {
	free := s.TotalShared() - s.SharedUsed()
	if free < 0 {
		free = 0
	}
	return int64(t.AlphaIngress * float64(free))
}

// EgressThreshold implements Policy.
func (t *TDT) EgressThreshold(s StateView, port, prio int) int64 {
	q := t.queue(port, prio)
	t.step(s, q, s.EgressQueueBytes(port, prio))

	alpha := t.AlphaEgressPool
	switch q.state {
	case tdtAbsorb:
		alpha *= t.AbsorbBoost
	case tdtEvacuate:
		alpha *= t.EvacuateCut
	}
	return egressDT(s, prio, alpha)
}

// step advances the state machine with the queue's current length.
func (t *TDT) step(s StateView, q *tdtQueue, qlen int64) {
	now := s.Now()
	if now-q.windowAt >= t.BurstWindow {
		q.windowAt = now
		q.windowLen = qlen
	}
	growth := qlen - q.windowLen
	free := s.TotalShared() - s.SharedUsed()
	plenty := float64(free) >= t.FreeFraction*float64(s.TotalShared())

	switch q.state {
	case tdtNormal:
		if growth >= t.BurstBytes && plenty {
			q.state = tdtAbsorb
		}
	case tdtAbsorb:
		if !plenty || qlen < q.lastLen {
			// Buffer pressure or the burst has crested: give it back.
			q.state = tdtEvacuate
		}
	case tdtEvacuate:
		if qlen <= egressShare(s, t.AlphaEgressPool) {
			q.state = tdtNormal
		}
	}
	q.lastLen = qlen
}

// egressShare is the normal-mode DT share used as the evacuation exit bar.
func egressShare(s StateView, alpha float64) int64 {
	free := s.TotalShared() - s.SharedUsed()
	if free < 0 {
		free = 0
	}
	return int64(alpha * float64(free))
}

func (t *TDT) queue(port, prio int) *tdtQueue {
	key := [2]int{port, prio}
	q := t.states[key]
	if q == nil {
		q = &tdtQueue{state: tdtNormal}
		t.states[key] = q
	}
	return q
}

// State exposes the queue's current mode for tests.
func (t *TDT) State(port, prio int) string {
	switch t.queue(port, prio).state {
	case tdtAbsorb:
		return "absorb"
	case tdtEvacuate:
		return "evacuate"
	default:
		return "normal"
	}
}

// OnEnqueue implements Policy.
func (t *TDT) OnEnqueue(s StateView, p *pkt.Packet) {
	t.step(s, t.queue(p.OutPort, p.Priority), s.EgressQueueBytes(p.OutPort, p.Priority))
}

// OnDequeue implements Policy.
func (t *TDT) OnDequeue(s StateView, p *pkt.Packet) {
	t.step(s, t.queue(p.OutPort, p.Priority), s.EgressQueueBytes(p.OutPort, p.Priority))
}
