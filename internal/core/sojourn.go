package core

import (
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
)

// sojournQueue tracks the average remaining sojourn time of the packets
// resident in one ingress queue (port, priority), implementing the paper's
// Algorithm 1 ("sojourn time updating algorithm").
//
// Semantics: total is the sum of the *estimated remaining drain times* of
// the packets currently in the queue, valued as of lastUpdate. On every
// touch the estimate is first advanced: each resident packet's remaining
// time shrinks by the wall time elapsed — excluding, per §III-D, time its
// destination egress priority spent paused by downstream PFC, so pause
// stalls are not misread as congestion. An enqueue then adds the new
// packet's expected drain time Q_out(j,p)/μ(j,p); a dequeue removes the
// departed packet (whose remaining time is ~0 if the estimate was accurate).
type sojournQueue struct {
	prio       int     // fixed priority of this ingress queue
	total      float64 // picoseconds; clamped at 0
	n          int
	lastUpdate sim.Time

	// resident[j] counts this queue's packets sitting at egress port j;
	// pausedSnap[j] is EgressPausedTime(j, prio) as of lastUpdate. Both are
	// sized to the switch's port count on first use.
	resident   []int
	pausedSnap []sim.Duration

	// nzPorts counts egress ports with resident packets; hot is the single
	// such port when nzPorts == 1 (the overwhelmingly common case — an
	// ingress queue usually feeds one egress at a time — which lets advance
	// skip the O(ports) resident scan on the admission fast path).
	nzPorts int
	hot     int
}

func (q *sojournQueue) ensure(ports int) {
	if q.resident == nil {
		q.resident = make([]int, ports)
		q.pausedSnap = make([]sim.Duration, ports)
	}
}

// advance rolls the estimate forward to now, shrinking each resident
// packet's remaining time by its effective elapsed time. prio is the
// (fixed) priority of this ingress queue; excludePause selects the §III-D
// mitigation.
func (q *sojournQueue) advance(s StateView, prio int, excludePause bool) {
	now := s.Now()
	if q.n == 0 {
		q.total = 0
		q.lastUpdate = now
		return
	}
	elapsed := now - q.lastUpdate
	if elapsed <= 0 {
		return
	}
	if q.nzPorts == 1 {
		// Fast path: exactly one egress port is resident, so the scan
		// would visit one nonzero entry anyway. The arithmetic below is
		// the loop body verbatim for j = q.hot — bit-identical totals.
		j := q.hot
		eff := elapsed
		if excludePause {
			cum := s.EgressPausedTime(j, prio)
			pausedDelta := cum - q.pausedSnap[j]
			q.pausedSnap[j] = cum
			if pausedDelta > elapsed {
				pausedDelta = elapsed
			}
			eff -= pausedDelta
		}
		q.total -= float64(q.resident[j]) * float64(eff)
	} else {
		for j, c := range q.resident {
			if c == 0 {
				continue
			}
			eff := elapsed
			if excludePause {
				cum := s.EgressPausedTime(j, prio)
				pausedDelta := cum - q.pausedSnap[j]
				q.pausedSnap[j] = cum
				if pausedDelta > elapsed {
					pausedDelta = elapsed
				}
				eff -= pausedDelta
			}
			q.total -= float64(c) * float64(eff)
		}
	}
	if q.total < 0 {
		q.total = 0
	}
	q.lastUpdate = now
}

// onEnqueue records a packet admitted to this ingress queue and destined for
// egress port j.
func (q *sojournQueue) onEnqueue(s StateView, j, prio int, excludePause bool) {
	q.ensure(s.NumPorts())
	q.advance(s, prio, excludePause)
	// Expected drain time of the packet: the backlog ahead of it at its
	// output queue divided by that queue's service rate (Algorithm 1 line 8).
	mu := s.EgressDrainRate(j, prio)
	if mu > 0 {
		q.total += float64(sim.TxTime(int(s.EgressQueueBytes(j, prio)), mu))
	} else {
		// μ = 0: the egress priority is paused by downstream PFC. (The
		// pre-fix DrainRate reported a rate/(n+1) share for paused queues,
		// making this term finite for a queue that was not draining at all —
		// underestimating τ exactly when congestion was worst.) Charge the
		// backlog at the post-resume line rate; without §III-D
		// pause-exclusion additionally charge the expected remaining pause,
		// estimated as the elapsed pause so far (memoryless renewal rule).
		// With exclusion on, pause time never counts toward sojourn in the
		// first place (advance does not decay the estimate while paused), so
		// charging it here would double-count.
		expect := sim.TxTime(int(s.EgressQueueBytes(j, prio)), s.EgressLineRate(j))
		if !excludePause {
			expect += s.EgressPausedFor(j, prio)
		}
		q.total += float64(expect)
	}
	q.n++
	if q.resident[j] == 0 {
		q.nzPorts++
		if q.nzPorts == 1 {
			q.hot = j
		}
	}
	q.resident[j]++
	if excludePause {
		q.pausedSnap[j] = s.EgressPausedTime(j, prio)
	}
}

// onDequeue records a packet leaving this ingress queue from egress port j.
func (q *sojournQueue) onDequeue(s StateView, j, prio int, excludePause bool) {
	q.ensure(s.NumPorts())
	q.advance(s, prio, excludePause)
	if q.n > 0 {
		q.n--
	}
	if q.resident[j] > 0 {
		q.resident[j]--
		if q.resident[j] == 0 {
			q.nzPorts--
			if q.nzPorts == 1 {
				// 2 → 1 transition: rescan once for the surviving port.
				for i, c := range q.resident {
					if c > 0 {
						q.hot = i
						break
					}
				}
			}
		}
	}
	if q.n == 0 {
		q.total = 0
	}
}

// tau returns the average remaining sojourn time τ of resident packets as of
// now (advancing first), or 0 for an empty queue.
func (q *sojournQueue) tau(s StateView, prio int, excludePause bool) sim.Duration {
	if q.n == 0 {
		return 0
	}
	q.ensure(s.NumPorts())
	q.advance(s, prio, excludePause)
	return sim.Duration(q.total / float64(q.n))
}

// peekTau computes the τ that tau() would report as of now WITHOUT writing
// the advance back: no field of q is mutated. The trace layer samples
// through this path so that an armed recorder observes the same trajectory
// an unarmed run would produce (the observer-effect guarantee — tau()'s
// write-back plus the pausedDelta clamp make intermediate calls
// non-idempotent, so sampling through tau() would perturb the simulation).
func (q *sojournQueue) peekTau(s StateView, prio int, excludePause bool) sim.Duration {
	if q.n == 0 {
		return 0
	}
	total := q.total
	elapsed := s.Now() - q.lastUpdate
	if elapsed > 0 {
		for j, c := range q.resident {
			if c == 0 {
				continue
			}
			eff := elapsed
			if excludePause {
				pausedDelta := s.EgressPausedTime(j, prio) - q.pausedSnap[j]
				if pausedDelta > elapsed {
					pausedDelta = elapsed
				}
				eff -= pausedDelta
			}
			total -= float64(c) * float64(eff)
		}
		if total < 0 {
			total = 0
		}
	}
	return sim.Duration(total / float64(q.n))
}

// active reports whether the queue currently holds packets.
func (q *sojournQueue) active() bool { return q.n > 0 }

// SojournTable is the per-switch congestion-detection module (paper §III-B):
// one sojournQueue per (ingress port, priority). It is exported for tests
// and for the L2BM policy; the MMU drives it through the Policy hooks.
//
// The table sits on the admission fast path, so queues live in a flat slice
// indexed port·NumPriorities+prio, and the aggregate statistics (Σ τ, max τ
// over active queues) are cached per simulated instant: admissions arrive in
// bursts at identical timestamps, and between packets of the same instant
// the aggregates only change through enqueue/dequeue, which invalidate the
// cache.
type SojournTable struct {
	queues       []*sojournQueue
	excludePause bool

	cacheAt    sim.Time
	cacheValid bool
	cacheSum   sim.Duration
	cacheMax   sim.Duration
	cacheN     int
	cacheFloor sim.Duration
}

// NewSojournTable returns an empty table. excludePause enables the §III-D
// exclusion of downstream-PFC stall time from the estimate.
func NewSojournTable(excludePause bool) *SojournTable {
	return &SojournTable{excludePause: excludePause}
}

func (t *SojournTable) queue(port, prio int) *sojournQueue {
	idx := port*pkt.NumPriorities + prio
	if idx >= len(t.queues) {
		// Grow to the exact size in one append (a one-at-a-time nil append
		// loop re-walked the capacity ladder on every growth step).
		t.queues = append(t.queues, make([]*sojournQueue, idx+1-len(t.queues))...)
	}
	q := t.queues[idx]
	if q == nil {
		q = &sojournQueue{prio: prio}
		t.queues[idx] = q
	}
	return q
}

// OnEnqueue records the admission of p (MMU has stamped InPort/InPrio/OutPort).
func (t *SojournTable) OnEnqueue(s StateView, p *pkt.Packet) {
	t.cacheValid = false
	t.queue(p.InPort, p.InPrio).onEnqueue(s, p.OutPort, p.InPrio, t.excludePause)
}

// OnDequeue records the departure of p from shared memory.
func (t *SojournTable) OnDequeue(s StateView, p *pkt.Packet) {
	t.cacheValid = false
	t.queue(p.InPort, p.InPrio).onDequeue(s, p.OutPort, p.InPrio, t.excludePause)
}

// Tau returns the average sojourn time of ingress queue (port, prio).
func (t *SojournTable) Tau(s StateView, port, prio int) sim.Duration {
	return t.queue(port, prio).tau(s, prio, t.excludePause)
}

// Resident returns the packet count tracked for ingress queue (port, prio).
func (t *SojournTable) Resident(port, prio int) int {
	return t.queue(port, prio).n
}

// refreshAggregates recomputes Σ τ, max τ and the active count, reusing the
// cached values while neither the clock nor the queue population moved.
func (t *SojournTable) refreshAggregates(s StateView, floor sim.Duration) {
	now := s.Now()
	if t.cacheValid && t.cacheAt == now && t.cacheFloor == floor {
		return
	}
	var sum, maxTau sim.Duration
	active := 0
	for _, q := range t.queues {
		if q == nil || !q.active() {
			continue
		}
		tau := q.tau(s, q.prio, t.excludePause)
		if tau < floor {
			tau = floor
		}
		sum += tau
		if tau > maxTau {
			maxTau = tau
		}
		active++
	}
	t.cacheAt, t.cacheValid, t.cacheFloor = now, true, floor
	t.cacheSum, t.cacheMax, t.cacheN = sum, maxTau, active
}

// SumActiveTau returns Σ τ over all ingress queues currently holding
// packets, with each τ floored at floor — the paper's normalization constant
// C — together with the number of active queues.
func (t *SojournTable) SumActiveTau(s StateView, floor sim.Duration) (sum sim.Duration, active int) {
	t.refreshAggregates(s, floor)
	return t.cacheSum, t.cacheN
}

// MaxActiveTau returns max τ over active ingress queues (floored), used by
// the normalization ablation.
func (t *SojournTable) MaxActiveTau(s StateView, floor sim.Duration) (maxTau sim.Duration, active int) {
	t.refreshAggregates(s, floor)
	return t.cacheMax, t.cacheN
}

// ActiveQueue is one active ingress queue's peeked sojourn estimate.
type ActiveQueue struct {
	Port, Prio int
	Tau        sim.Duration
}

// PeekActive returns every ingress queue currently holding packets together
// with its τ as of now, floored at floor, WITHOUT advancing any estimate or
// touching the aggregate cache. This is the trace layer's read-only window
// into the congestion-detection module: a run sampled through PeekActive is
// byte-identical to an unsampled run. Queues appear in (port, prio) order.
//
// PeekActive allocates a fresh slice per call; samplers on a tick should use
// PeekActiveAppend with a reusable scratch buffer instead.
func (t *SojournTable) PeekActive(s StateView, floor sim.Duration) []ActiveQueue {
	return t.PeekActiveAppend(nil, s, floor)
}

// PeekActiveAppend is PeekActive appending into dst (which may be nil or a
// recycled dst[:0]), returning the extended slice. A periodic sampler passes
// the same backing buffer every tick, so steady-state sampling allocates
// nothing.
func (t *SojournTable) PeekActiveAppend(dst []ActiveQueue, s StateView, floor sim.Duration) []ActiveQueue {
	for idx, q := range t.queues {
		if q == nil || !q.active() {
			continue
		}
		tau := q.peekTau(s, q.prio, t.excludePause)
		if tau < floor {
			tau = floor
		}
		dst = append(dst, ActiveQueue{Port: idx / pkt.NumPriorities, Prio: q.prio, Tau: tau})
	}
	return dst
}
