package core

import "l2bm/internal/pkt"

// FB reimplements the Flexible Buffer sharing scheme (Apostolaki, Ghobadi,
// Vanbever et al., arXiv 2105.10553), ABM's direct predecessor in the
// related-work lineage: each egress queue's threshold scales the free class
// pool by the queue's dequeue rate normalized to line rate,
//
//	T(port, p) = α_p · (B − Q_class(t)) · μ̂(port, p)
//
// steering buffer toward queues that are actually draining (and away from
// PFC-paused or incast-victim queues) — but, unlike ABM, without dividing
// by the congested-queue count n_p(t), so FB stays blind to how many queues
// compete for the pool. Like ABM it manages only the egress side; the
// ingress pool falls back to plain DT with the common α = 0.5.
type FB struct {
	// AlphaPriority is the per-priority control factor α_p.
	AlphaPriority float64
	// AlphaIngress is the DT factor applied at the ingress pool.
	AlphaIngress float64
}

// NewFB returns FB with the evaluation defaults (α = 0.5 on both sides,
// matching ABM so the two differ only in the 1/n term).
func NewFB() *FB {
	return &FB{AlphaPriority: AlphaDT2, AlphaIngress: AlphaDT2}
}

// Name implements Policy.
func (f *FB) Name() string { return "FB" }

// IngressThreshold implements Policy: plain DT at the ingress pool.
func (f *FB) IngressThreshold(s StateView, _, _ int) int64 {
	free := s.TotalShared() - s.SharedUsed()
	if free < 0 {
		free = 0
	}
	return int64(f.AlphaIngress * float64(free))
}

// EgressThreshold implements Policy: the drain-rate-proportional share of
// the free class pool. normalizedDrainRate supplies the same cold-start
// fallback (and NaN guard) ABM uses.
func (f *FB) EgressThreshold(s StateView, port, prio int) int64 {
	free := s.TotalShared() - s.EgressPoolUsed(ClassOfPriority(prio))
	if free < 0 {
		free = 0
	}
	return int64(f.AlphaPriority * float64(free) * normalizedDrainRate(s, port, prio))
}

// OnEnqueue implements Policy; FB keeps no per-packet state.
func (f *FB) OnEnqueue(StateView, *pkt.Packet) {}

// OnDequeue implements Policy.
func (f *FB) OnDequeue(StateView, *pkt.Packet) {}
