package core

import (
	"testing"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
)

func TestEDTNormalMatchesDT(t *testing.T) {
	s := newFakeState()
	s.pool[pkt.ClassLossy] = 1 << 20
	e := NewEDT()
	want := egressDT(s, pkt.PrioLossy, e.AlphaEgressPool)
	if got := e.EgressThreshold(s, 0, pkt.PrioLossy); got != want {
		t.Errorf("normal-state threshold = %d, want DT %d", got, want)
	}
	if e.State(0, pkt.PrioLossy) != "normal" {
		t.Error("queue should start normal")
	}
}

func TestEDTAbsorbsWhenDTWouldDrop(t *testing.T) {
	s := newFakeState()
	e := NewEDT()
	key := [2]int{0, pkt.PrioLossy}

	dt := egressDT(s, pkt.PrioLossy, e.AlphaEgressPool)
	// Queue reaches the DT threshold while growing: absorption.
	s.qout[key] = dt / 2
	e.EgressThreshold(s, 0, pkt.PrioLossy) // observe growth
	s.qout[key] = dt + 1000
	got := e.EgressThreshold(s, 0, pkt.PrioLossy)
	if e.State(0, pkt.PrioLossy) != "absorb" {
		t.Fatalf("state = %s, want absorb", e.State(0, pkt.PrioLossy))
	}
	if got <= dt {
		t.Errorf("absorbing threshold %d should exceed DT %d", got, dt)
	}
}

func TestEDTEvacuatesAfterBurst(t *testing.T) {
	s := newFakeState()
	e := NewEDT()
	key := [2]int{0, pkt.PrioLossy}
	dt := egressDT(s, pkt.PrioLossy, e.AlphaEgressPool)

	s.qout[key] = dt / 2
	e.EgressThreshold(s, 0, pkt.PrioLossy)
	s.qout[key] = dt + 10_000
	e.EgressThreshold(s, 0, pkt.PrioLossy) // absorb

	// Queue stops growing: evacuation with a tightened threshold.
	s.qout[key] = dt + 5_000
	got := e.EgressThreshold(s, 0, pkt.PrioLossy)
	if e.State(0, pkt.PrioLossy) != "evacuate" {
		t.Fatalf("state = %s, want evacuate", e.State(0, pkt.PrioLossy))
	}
	if want := int64(e.EvacuateFactor * float64(dt)); got != want {
		t.Errorf("evacuating threshold = %d, want %d", got, want)
	}

	// Queue drains below the tightened bar: back to normal.
	s.qout[key] = int64(e.EvacuateFactor*float64(dt)) - 1000
	e.EgressThreshold(s, 0, pkt.PrioLossy)
	if e.State(0, pkt.PrioLossy) != "normal" {
		t.Errorf("state = %s, want normal after drain", e.State(0, pkt.PrioLossy))
	}
}

func TestEDTIngressIsDT2(t *testing.T) {
	s := newFakeState()
	s.used = 1 << 20
	want := NewDT2().IngressThreshold(s, 0, 0)
	if got := NewEDT().IngressThreshold(s, 0, 0); got != want {
		t.Errorf("EDT ingress = %d, want DT2's %d", got, want)
	}
}

func TestTDTNormalMatchesDT(t *testing.T) {
	s := newFakeState()
	td := NewTDT()
	want := egressDT(s, pkt.PrioLossy, td.AlphaEgressPool)
	if got := td.EgressThreshold(s, 0, pkt.PrioLossy); got != want {
		t.Errorf("normal threshold = %d, want %d", got, want)
	}
}

func TestTDTAbsorbsOnBurstWithFreeBuffer(t *testing.T) {
	s := newFakeState()
	td := NewTDT()
	key := [2]int{0, pkt.PrioLossy}

	s.qout[key] = 0
	td.EgressThreshold(s, 0, pkt.PrioLossy) // window anchor at len 0
	// Rapid growth within the window, buffer nearly empty: absorb.
	s.qout[key] = td.BurstBytes + 1000
	got := td.EgressThreshold(s, 0, pkt.PrioLossy)
	if td.State(0, pkt.PrioLossy) != "absorb" {
		t.Fatalf("state = %s, want absorb", td.State(0, pkt.PrioLossy))
	}
	want := egressDT(s, pkt.PrioLossy, td.AlphaEgressPool*td.AbsorbBoost)
	if got != want {
		t.Errorf("absorb threshold = %d, want %d", got, want)
	}
}

func TestTDTNoAbsorptionWhenBufferTight(t *testing.T) {
	s := newFakeState()
	td := NewTDT()
	key := [2]int{0, pkt.PrioLossy}
	s.used = s.total - s.total/8 // only 12.5% free < FreeFraction 25%

	s.qout[key] = 0
	td.EgressThreshold(s, 0, pkt.PrioLossy)
	s.qout[key] = td.BurstBytes * 2
	td.EgressThreshold(s, 0, pkt.PrioLossy)
	if td.State(0, pkt.PrioLossy) != "normal" {
		t.Errorf("state = %s, want normal (no free buffer)", td.State(0, pkt.PrioLossy))
	}
}

func TestTDTEvacuatesWhenBurstCrests(t *testing.T) {
	s := newFakeState()
	td := NewTDT()
	key := [2]int{0, pkt.PrioLossy}

	s.qout[key] = 0
	td.EgressThreshold(s, 0, pkt.PrioLossy)
	s.qout[key] = td.BurstBytes + 1000
	td.EgressThreshold(s, 0, pkt.PrioLossy) // absorb
	// Length falls: crest passed -> evacuate.
	s.qout[key] -= 2000
	got := td.EgressThreshold(s, 0, pkt.PrioLossy)
	if td.State(0, pkt.PrioLossy) != "evacuate" {
		t.Fatalf("state = %s, want evacuate", td.State(0, pkt.PrioLossy))
	}
	want := egressDT(s, pkt.PrioLossy, td.AlphaEgressPool*td.EvacuateCut)
	if got != want {
		t.Errorf("evacuate threshold = %d, want %d", got, want)
	}

	// Drain under the normal share: back to normal.
	s.qout[key] = 100
	td.EgressThreshold(s, 0, pkt.PrioLossy)
	if td.State(0, pkt.PrioLossy) != "normal" {
		t.Errorf("state = %s, want normal", td.State(0, pkt.PrioLossy))
	}
}

func TestTDTWindowResets(t *testing.T) {
	s := newFakeState()
	td := NewTDT()
	key := [2]int{0, pkt.PrioLossy}

	s.qout[key] = 0
	td.EgressThreshold(s, 0, pkt.PrioLossy)
	// Slow growth across many windows must not trigger absorption.
	for i := 0; i < 10; i++ {
		s.now += td.BurstWindow + sim.Microsecond
		s.qout[key] += td.BurstBytes / 4
		td.EgressThreshold(s, 0, pkt.PrioLossy)
	}
	if td.State(0, pkt.PrioLossy) != "normal" {
		t.Errorf("slow growth misclassified as burst: %s", td.State(0, pkt.PrioLossy))
	}
}

func TestEDTAndTDTHooksTrackState(t *testing.T) {
	s := newFakeState()
	e := NewEDT()
	td := NewTDT()
	p := admit(0, pkt.PrioLossy, 3)
	// Hooks must not panic and must observe the egress queue.
	e.OnEnqueue(s, p)
	e.OnDequeue(s, p)
	td.OnEnqueue(s, p)
	td.OnDequeue(s, p)
	if e.Name() != "EDT" || td.Name() != "TDT" {
		t.Error("names wrong")
	}
}
