package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
)

func uncappedL2BM() *L2BM {
	cfg := DefaultL2BMConfig()
	cfg.BoundsLossless = WeightBounds{}
	cfg.BoundsLossy = WeightBounds{}
	return NewL2BM(cfg)
}

// enqueueWithTau installs a packet in (port, prio) whose initial sojourn
// estimate is exactly tau, by setting the destination egress backlog.
func enqueueWithTau(s *fakeState, l *L2BM, port, prio, egress int, tau sim.Duration) {
	s.qout[[2]int{egress, prio}] = sim.BytesOver(tau, s.line)
	p := admit(port, prio, egress)
	l.OnEnqueue(s, p)
}

func TestL2BMIdleDegeneratesToClassPins(t *testing.T) {
	s := newFakeState()
	s.used = 1 << 20
	l := NewDefaultL2BM()

	// Idle lossless queues sit at the pinned DT2 factor; idle lossy queues
	// at α (inside the lossy bounds [α/8, α]).
	if got, want := l.IngressThreshold(s, 0, pkt.PrioLossless), NewDT2().IngressThreshold(s, 0, pkt.PrioLossless); got != want {
		t.Errorf("idle lossless threshold = %d, want DT2's %d", got, want)
	}
	if got, want := l.IngressThreshold(s, 0, pkt.PrioLossy), NewDT().IngressThreshold(s, 0, pkt.PrioLossy); got != want {
		t.Errorf("idle lossy threshold = %d, want DT's %d", got, want)
	}
}

func TestL2BMEqualTauGivesEqualWeights(t *testing.T) {
	s := newFakeState()
	cfg := DefaultL2BMConfig()
	cfg.BoundsLossless = WeightBounds{}
	cfg.BoundsLossy = WeightBounds{}
	cfg.Normalization = NormSumTau
	l := NewL2BM(cfg)
	tau := 100 * sim.Microsecond
	enqueueWithTau(s, l, 0, pkt.PrioLossless, 4, tau)
	enqueueWithTau(s, l, 1, pkt.PrioLossless, 5, tau)

	w0 := l.Weight(s, 0, pkt.PrioLossless)
	w1 := l.Weight(s, 1, pkt.PrioLossless)
	// Paper-literal sum normalization: C = 2τ so each weight is 2α.
	want := 2 * l.cfg.Alpha
	if math.Abs(w0-want) > 1e-9 || math.Abs(w1-want) > 1e-9 {
		t.Errorf("weights = %v/%v, want both %v", w0, w1, want)
	}
}

func TestL2BMMeanNormalizationRedistributes(t *testing.T) {
	s := newFakeState()
	l := uncappedL2BM() // default NormMeanTau
	enqueueWithTau(s, l, 0, pkt.PrioLossless, 4, 50*sim.Microsecond)
	enqueueWithTau(s, l, 1, pkt.PrioLossy, 5, 150*sim.Microsecond)

	// C = mean = 100 µs: the fast queue gets 2α, the slow 2/3·α — the
	// congested queue is clamped *below* DT's share.
	fast := l.Weight(s, 0, pkt.PrioLossless)
	slow := l.Weight(s, 1, pkt.PrioLossy)
	if math.Abs(fast-2*l.cfg.Alpha) > 1e-9 {
		t.Errorf("fast weight = %v, want 2α", fast)
	}
	if math.Abs(slow-2.0/3*l.cfg.Alpha) > 1e-9 {
		t.Errorf("slow weight = %v, want 2α/3", slow)
	}
	if slow >= l.cfg.Alpha {
		t.Error("slower-than-average queue must be clamped below α")
	}
	// With equal τ everywhere, mean normalization degenerates to DT.
	s2 := newFakeState()
	l2 := uncappedL2BM()
	enqueueWithTau(s2, l2, 0, pkt.PrioLossless, 4, 80*sim.Microsecond)
	enqueueWithTau(s2, l2, 1, pkt.PrioLossy, 5, 80*sim.Microsecond)
	for port, prio := range map[int]int{0: pkt.PrioLossless, 1: pkt.PrioLossy} {
		if w := l2.Weight(s2, port, prio); math.Abs(w-l2.cfg.Alpha) > 1e-9 {
			t.Errorf("equal-τ weight = %v, want α", w)
		}
	}
}

func TestL2BMWeightInverselyProportionalToTau(t *testing.T) {
	s := newFakeState()
	l := uncappedL2BM()
	enqueueWithTau(s, l, 0, pkt.PrioLossless, 4, 50*sim.Microsecond) // fast
	enqueueWithTau(s, l, 1, pkt.PrioLossy, 5, 200*sim.Microsecond)   // slow

	fast := l.Weight(s, 0, pkt.PrioLossless)
	slow := l.Weight(s, 1, pkt.PrioLossy)
	if ratio := fast / slow; math.Abs(ratio-4) > 1e-9 {
		t.Errorf("weight ratio = %v, want 4 (inverse of τ ratio)", ratio)
	}

	// Thresholds follow weights: the fast-draining queue gets more buffer.
	s.used = 1 << 20
	ft := l.IngressThreshold(s, 0, pkt.PrioLossless)
	st := l.IngressThreshold(s, 1, pkt.PrioLossy)
	if ft <= st {
		t.Errorf("fast queue threshold %d should exceed slow queue %d", ft, st)
	}
}

func TestL2BMWeightCap(t *testing.T) {
	cfg := DefaultL2BMConfig()
	cfg.BoundsLossless = WeightBounds{Max: 2}
	cfg.BoundsLossy = WeightBounds{Max: 2}
	l := NewL2BM(cfg)
	s := newFakeState()
	// One near-zero-τ queue among many slow queues: uncapped weight would
	// be huge.
	enqueueWithTau(s, l, 0, pkt.PrioLossless, 4, 0)
	for i := 1; i < 6; i++ {
		enqueueWithTau(s, l, i, pkt.PrioLossy, 4+i%2, sim.Millisecond)
	}
	if got := l.Weight(s, 0, pkt.PrioLossless); got != 2 {
		t.Errorf("capped weight = %v, want 2", got)
	}
}

func TestL2BMTauFloorPreventsBlowup(t *testing.T) {
	s := newFakeState()
	l := uncappedL2BM()
	enqueueWithTau(s, l, 0, pkt.PrioLossless, 4, 0) // τ floors
	w := l.Weight(s, 0, pkt.PrioLossless)
	if math.IsInf(w, 1) || math.IsNaN(w) {
		t.Fatalf("weight = %v, want finite", w)
	}
	// Sole active queue with floored τ: C = floor, w = α.
	if math.Abs(w-l.cfg.Alpha) > 1e-9 {
		t.Errorf("sole active floored queue weight = %v, want α = %v", w, l.cfg.Alpha)
	}
}

func TestL2BMNormMaxTau(t *testing.T) {
	cfg := DefaultL2BMConfig()
	cfg.Normalization = NormMaxTau
	cfg.BoundsLossless = WeightBounds{}
	cfg.BoundsLossy = WeightBounds{}
	l := NewL2BM(cfg)
	s := newFakeState()
	enqueueWithTau(s, l, 0, pkt.PrioLossless, 4, 50*sim.Microsecond)
	enqueueWithTau(s, l, 1, pkt.PrioLossy, 5, 200*sim.Microsecond)

	// The slowest queue gets exactly α; the fast one 4α.
	if got := l.Weight(s, 1, pkt.PrioLossy); math.Abs(got-cfg.Alpha) > 1e-9 {
		t.Errorf("slowest queue weight = %v, want α", got)
	}
	if got := l.Weight(s, 0, pkt.PrioLossless); math.Abs(got-4*cfg.Alpha) > 1e-9 {
		t.Errorf("fast queue weight = %v, want 4α", got)
	}
}

func TestL2BMNormCount(t *testing.T) {
	cfg := DefaultL2BMConfig()
	cfg.Normalization = NormCount
	cfg.BoundsLossless = WeightBounds{}
	cfg.BoundsLossy = WeightBounds{}
	l := NewL2BM(cfg)
	s := newFakeState()
	enqueueWithTau(s, l, 0, pkt.PrioLossless, 4, cfg.TauFloor)
	enqueueWithTau(s, l, 1, pkt.PrioLossy, 5, cfg.TauFloor)

	// C = 2·floor and τ = floor for both: w = 2α each.
	for port, prio := range map[int]int{0: pkt.PrioLossless, 1: pkt.PrioLossy} {
		if got := l.Weight(s, port, prio); math.Abs(got-2*cfg.Alpha) > 1e-9 {
			t.Errorf("port %d weight = %v, want 2α", port, got)
		}
	}
}

func TestL2BMThresholdScalesWithFreeBuffer(t *testing.T) {
	s := newFakeState()
	l := NewDefaultL2BM()
	enqueueWithTau(s, l, 0, pkt.PrioLossless, 4, 100*sim.Microsecond)

	s.used = 0
	t0 := l.IngressThreshold(s, 0, pkt.PrioLossless)
	s.used = s.total / 2
	t1 := l.IngressThreshold(s, 0, pkt.PrioLossless)
	if t1*2 != t0 {
		t.Errorf("threshold at half-full (%d) should be half of empty (%d)", t1, t0)
	}
	s.used = s.total
	if got := l.IngressThreshold(s, 0, pkt.PrioLossless); got != 0 {
		t.Errorf("threshold at full buffer = %d, want 0", got)
	}
}

func TestL2BMEgressIsStandardDT(t *testing.T) {
	s := newFakeState()
	s.pool[pkt.ClassLossy] = 1 << 20
	l := NewDefaultL2BM()
	want := NewDT().EgressThreshold(s, 0, pkt.PrioLossy)
	if got := l.EgressThreshold(s, 0, pkt.PrioLossy); got != want {
		t.Errorf("L2BM egress threshold = %d, want DT's %d", got, want)
	}
}

func TestL2BMConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*L2BMConfig)
	}{
		{"zero alpha", func(c *L2BMConfig) { c.Alpha = 0 }},
		{"zero tau floor", func(c *L2BMConfig) { c.TauFloor = 0 }},
		{"bad normalization", func(c *L2BMConfig) { c.Normalization = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultL2BMConfig()
			tt.mutate(&cfg)
			defer func() {
				if recover() == nil {
					t.Error("NewL2BM should panic on invalid config")
				}
			}()
			NewL2BM(cfg)
		})
	}
}

func TestNormalizationString(t *testing.T) {
	if NormSumTau.String() != "sum-tau" || NormMaxTau.String() != "max-tau" || NormCount.String() != "count" {
		t.Error("Normalization strings wrong")
	}
	if Normalization(9).String() != "normalization(9)" {
		t.Error("unknown normalization string wrong")
	}
}

// Property (paper Eq. 8/9): if every active queue sits exactly at its
// threshold, total occupancy solves Q = B·Σw/(1+Σw), i.e. the thresholds
// evaluated at Q sum back to Q. Verified for random queue populations.
func TestL2BMSteadyStateFixedPointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := newFakeState()
		l := uncappedL2BM()

		n := 1 + rng.Intn(6)
		prios := []int{pkt.PrioLossless, pkt.PrioLossy}
		type q struct{ port, prio int }
		queues := make([]q, 0, n)
		for i := 0; i < n; i++ {
			prio := prios[rng.Intn(2)]
			tau := sim.Duration(1+rng.Intn(500)) * sim.Microsecond
			enqueueWithTau(s, l, i, prio, 6+i%2, tau)
			queues = append(queues, q{i, prio})
		}

		var sumW float64
		for _, qu := range queues {
			sumW += l.Weight(s, qu.port, qu.prio)
		}
		qStar := float64(s.total) * sumW / (1 + sumW)
		s.used = int64(qStar)

		var sumT int64
		for _, qu := range queues {
			sumT += l.IngressThreshold(s, qu.port, qu.prio)
		}
		// Rounding slack: one byte of truncation per threshold, plus the
		// Q* truncation amplified by Σw when re-evaluating B − Q.
		diff := math.Abs(float64(sumT) - qStar)
		return diff <= float64(n)+sumW+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: weights are always positive and finite, whatever the queue
// population and occupancy.
func TestL2BMWeightSanityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := newFakeState()
		l := NewDefaultL2BM()
		for i := 0; i < rng.Intn(10); i++ {
			enqueueWithTau(s, l, rng.Intn(8), rng.Intn(8), rng.Intn(8),
				sim.Duration(rng.Intn(1_000_000))*sim.Nanosecond)
		}
		s.used = int64(rng.Intn(int(s.total + 1000)))
		for port := 0; port < 8; port++ {
			for prio := 0; prio < 8; prio++ {
				w := l.Weight(s, port, prio)
				if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
					return false
				}
				if th := l.IngressThreshold(s, port, prio); th < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestL2BMNameAndSojournAccessor(t *testing.T) {
	l := NewDefaultL2BM()
	if l.Name() != "L2BM" {
		t.Error("name wrong")
	}
	if l.Sojourn() == nil {
		t.Error("Sojourn accessor returned nil")
	}
}

func TestPeekSamplesMatchesWeightAndThreshold(t *testing.T) {
	for _, norm := range []Normalization{NormSumTau, NormMeanTau, NormMaxTau, NormCount} {
		cfg := DefaultL2BMConfig()
		cfg.Normalization = norm
		l := NewL2BM(cfg)
		s := newFakeState()
		s.used = 1 << 20

		// Two active queues with different taus: a lossless and a lossy one.
		enqueueWithTau(s, l, 0, pkt.PrioLossless, 3, 2*sim.Microsecond)
		enqueueWithTau(s, l, 1, pkt.PrioLossy, 2, 8*sim.Microsecond)
		s.now += sim.Microsecond

		// Peek first (must not perturb), then compare against the mutating
		// Weight/IngressThreshold path.
		samples := l.PeekSamples(s)
		if len(samples) != 2 {
			t.Fatalf("[%v] PeekSamples = %d entries, want 2", norm, len(samples))
		}
		again := l.PeekSamples(s)
		for i := range samples {
			if samples[i] != again[i] {
				t.Errorf("[%v] repeated peek diverged: %+v vs %+v", norm, samples[i], again[i])
			}
		}
		for _, qs := range samples {
			if w := l.Weight(s, qs.Port, qs.Prio); math.Abs(w-qs.Weight) > 1e-12 {
				t.Errorf("[%v] peeked weight(%d,%d) = %v, Weight = %v", norm, qs.Port, qs.Prio, qs.Weight, w)
			}
			if th := l.IngressThreshold(s, qs.Port, qs.Prio); th != qs.Threshold {
				t.Errorf("[%v] peeked threshold(%d,%d) = %d, IngressThreshold = %d", norm, qs.Port, qs.Prio, qs.Threshold, th)
			}
		}
	}
}

func TestPeekSamplesIdleIsNil(t *testing.T) {
	l := NewDefaultL2BM()
	if got := l.PeekSamples(newFakeState()); got != nil {
		t.Errorf("idle PeekSamples = %v, want nil", got)
	}
}
