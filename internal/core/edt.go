package core

import (
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
)

// EDT reimplements the Enhanced Dynamic Threshold policy (Shan, Jiang, Ren,
// INFOCOM 2015), cited by the paper among the egress-side DT variants
// (§II-B, §V). EDT absorbs micro-bursts by temporarily suspending DT's
// fairness constraint at the egress:
//
//   - Normal: the queue obeys classic DT, T = α·(B − Q_pool).
//   - Absorption: when a queue hits its DT threshold while the buffer still
//     has free space (the situation where DT would drop despite spare
//     memory), the queue is allowed to keep growing — its threshold is
//     relaxed toward the remaining free buffer — for as long as the burst
//     keeps arriving.
//   - Evacuation: once the queue starts draining (its length falls), the
//     relaxed threshold is withdrawn and the queue must shrink back under
//     the DT threshold with a tightened factor before absorbing again.
//
// Like ABM, EDT is an egress-pool design: the ingress pool runs classic DT
// (α = 0.5), so PFC behaviour matches the DT2 baseline.
type EDT struct {
	// AlphaEgressPool is the Normal-state egress DT factor.
	AlphaEgressPool float64
	// AlphaIngress is the DT factor applied at the ingress pool.
	AlphaIngress float64
	// EvacuateFactor tightens the threshold during evacuation (T·factor).
	EvacuateFactor float64
	// FreeReserve is the fraction of free buffer an absorbing queue may
	// not touch, keeping space for other queues' reserves.
	FreeReserve float64

	states map[[2]int]*edtQueue
}

// edtState is the per-queue mode of EDT's state machine.
type edtState int

const (
	edtNormal edtState = iota + 1
	edtAbsorb
	edtEvacuate
)

// edtQueue carries one egress queue's state-machine position.
type edtQueue struct {
	state    edtState
	lastLen  int64
	lastSeen sim.Time
}

// NewEDT returns EDT with the evaluation defaults.
func NewEDT() *EDT {
	return &EDT{
		AlphaEgressPool: AlphaEgress,
		AlphaIngress:    AlphaDT2,
		EvacuateFactor:  0.5,
		FreeReserve:     0.125,
		states:          make(map[[2]int]*edtQueue),
	}
}

var _ Policy = (*EDT)(nil)

// Name implements Policy.
func (e *EDT) Name() string { return "EDT" }

// IngressThreshold implements Policy: classic DT at the ingress pool.
func (e *EDT) IngressThreshold(s StateView, _, _ int) int64 {
	free := s.TotalShared() - s.SharedUsed()
	if free < 0 {
		free = 0
	}
	return int64(e.AlphaIngress * float64(free))
}

// EgressThreshold implements Policy: the EDT state machine.
func (e *EDT) EgressThreshold(s StateView, port, prio int) int64 {
	q := e.queue(port, prio)
	qlen := s.EgressQueueBytes(port, prio)
	dt := egressDT(s, prio, e.AlphaEgressPool)

	e.step(s, q, qlen, dt)

	switch q.state {
	case edtAbsorb:
		// Relax toward the free buffer, keeping a reserve for others.
		free := s.TotalShared() - s.SharedUsed()
		if free < 0 {
			free = 0
		}
		relaxed := qlen + int64((1-e.FreeReserve)*float64(free))
		if relaxed < dt {
			relaxed = dt
		}
		return relaxed
	case edtEvacuate:
		return int64(e.EvacuateFactor * float64(dt))
	default:
		return dt
	}
}

// step advances the queue's state machine from the latest observation.
func (e *EDT) step(s StateView, q *edtQueue, qlen, dt int64) {
	now := s.Now()
	growing := qlen > q.lastLen
	q.lastLen, q.lastSeen = qlen, now

	switch q.state {
	case edtAbsorb:
		if !growing {
			// The burst stopped arriving: evacuate.
			q.state = edtEvacuate
		}
	case edtEvacuate:
		if qlen <= int64(e.EvacuateFactor*float64(dt)) {
			q.state = edtNormal
		}
	default:
		if qlen >= dt && growing {
			// DT would drop while buffer remains: absorb the burst.
			q.state = edtAbsorb
		}
	}
}

func (e *EDT) queue(port, prio int) *edtQueue {
	key := [2]int{port, prio}
	q := e.states[key]
	if q == nil {
		q = &edtQueue{state: edtNormal}
		e.states[key] = q
	}
	return q
}

// State exposes the queue's current mode for tests.
func (e *EDT) State(port, prio int) string {
	switch e.queue(port, prio).state {
	case edtAbsorb:
		return "absorb"
	case edtEvacuate:
		return "evacuate"
	default:
		return "normal"
	}
}

// OnEnqueue implements Policy.
func (e *EDT) OnEnqueue(s StateView, p *pkt.Packet) {
	// Refresh the state machine on the packet's egress queue so growth is
	// tracked even when EgressThreshold is not consulted (lossless class).
	q := e.queue(p.OutPort, p.Priority)
	e.step(s, q, s.EgressQueueBytes(p.OutPort, p.Priority), egressDT(s, p.Priority, e.AlphaEgressPool))
}

// OnDequeue implements Policy.
func (e *EDT) OnDequeue(s StateView, p *pkt.Packet) {
	q := e.queue(p.OutPort, p.Priority)
	e.step(s, q, s.EgressQueueBytes(p.OutPort, p.Priority), egressDT(s, p.Priority, e.AlphaEgressPool))
}
