package core

import "l2bm/internal/pkt"

// Default control factors used throughout the paper's evaluation (§IV):
// DT uses the RoCEv2/Microsoft production setting α = 1/8 at the ingress,
// DT2 the common default α = 1/2. Egress queues use α = 1/2 over their
// class pool for every ingress policy, so that the policies differ only in
// what the paper varies.
const (
	// AlphaDT is classic DT's ingress control factor (α = 0.125).
	AlphaDT = 0.125
	// AlphaDT2 is DT2's ingress control factor (α = 0.5).
	AlphaDT2 = 0.5
	// AlphaEgress is the egress-pool DT factor shared by all policies.
	AlphaEgress = 0.5
)

// DT is the classic Choudhury–Hahne Dynamic Threshold policy (paper Eq. 1):
// every ingress queue gets the same threshold α·(B − Q(t)), and every egress
// queue α_e·(B − Q_class(t)) over its class pool. It is the default policy
// of commodity shared-memory switches and the paper's principal baseline.
type DT struct {
	// PolicyName overrides the reported name (so DT2 can share the code).
	PolicyName string
	// AlphaIngress is the ingress control factor α.
	AlphaIngress float64
	// AlphaEgressPool is the egress control factor α_e.
	AlphaEgressPool float64
}

// NewDT returns classic DT with the paper's α = 0.125.
func NewDT() *DT {
	return &DT{PolicyName: "DT", AlphaIngress: AlphaDT, AlphaEgressPool: AlphaEgress}
}

// NewDT2 returns the DT2 baseline: DT with α = 0.5.
func NewDT2() *DT {
	return &DT{PolicyName: "DT2", AlphaIngress: AlphaDT2, AlphaEgressPool: AlphaEgress}
}

// NewDTAlpha returns a DT variant with a custom ingress α, used by the
// α-sensitivity ablation.
func NewDTAlpha(alpha float64) *DT {
	return &DT{PolicyName: "DT", AlphaIngress: alpha, AlphaEgressPool: AlphaEgress}
}

// Name implements Policy.
func (d *DT) Name() string { return d.PolicyName }

// IngressThreshold implements Policy: α · (B − Q(t)).
func (d *DT) IngressThreshold(s StateView, _, _ int) int64 {
	free := s.TotalShared() - s.SharedUsed()
	if free < 0 {
		free = 0
	}
	return int64(d.AlphaIngress * float64(free))
}

// EgressThreshold implements Policy: α_e · (B − Q_class(t)) over the class
// pool of the queue's priority.
func (d *DT) EgressThreshold(s StateView, _, prio int) int64 {
	return egressDT(s, prio, d.AlphaEgressPool)
}

// OnEnqueue implements Policy; DT is stateless.
func (d *DT) OnEnqueue(StateView, *pkt.Packet) {}

// OnDequeue implements Policy; DT is stateless.
func (d *DT) OnDequeue(StateView, *pkt.Packet) {}

// egressDT is the shared egress-side dynamic threshold over the class pool
// that owns priority prio.
func egressDT(s StateView, prio int, alpha float64) int64 {
	free := s.TotalShared() - s.EgressPoolUsed(ClassOfPriority(prio))
	if free < 0 {
		free = 0
	}
	return int64(alpha * float64(free))
}

// ClassOfPriority maps an 802.1p priority to the loss class its queue is
// configured with (the paper dedicates fixed priorities to each protocol).
func ClassOfPriority(prio int) pkt.Class {
	switch prio {
	case pkt.PrioLossless:
		return pkt.ClassLossless
	case pkt.PrioControl:
		return pkt.ClassControl
	default:
		return pkt.ClassLossy
	}
}
