package core

import (
	"fmt"
	"testing"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
)

// conformanceScenarios are the MMU states every registered policy must
// survive: thresholds stay finite and inside [0, TotalShared] no matter
// how empty, full, or degenerate the view is. The degenerate cases are
// the historical bug farm — 0/0 drain quotients, zero congested queues,
// occupancy above the pool (transiently possible during headroom
// absorption).
func conformanceScenarios() map[string]*fakeState {
	empty := newFakeState()

	half := newFakeState()
	half.used = half.total / 2
	half.pool[pkt.ClassLossy] = half.total / 4
	half.pool[pkt.ClassLossless] = half.total / 4
	half.now = 3 * sim.Millisecond
	for port := 0; port < half.ports; port++ {
		for prio := 0; prio < pkt.NumPriorities; prio++ {
			half.qin[[2]int{port, prio}] = 20_000
			half.qout[[2]int{port, prio}] = 20_000
		}
	}
	half.congested[pkt.PrioLossy] = 3
	half.drain[[2]int{0, pkt.PrioLossy}] = 5e9

	full := newFakeState()
	full.used = full.total
	full.pool[pkt.ClassLossy] = full.total / 2
	full.pool[pkt.ClassLossless] = full.total / 2
	full.now = 9 * sim.Millisecond
	for prio := 0; prio < pkt.NumPriorities; prio++ {
		full.congested[prio] = full.ports
	}

	overfull := newFakeState()
	overfull.used = overfull.total + 1<<20
	overfull.pool[pkt.ClassLossy] = overfull.total + 1<<20
	overfull.now = sim.Second

	degenerate := newFakeState()
	degenerate.line = 0 // idle estimator: 0/0 drain quotient upstream
	degenerate.used = degenerate.total / 3
	for port := 0; port < degenerate.ports; port++ {
		for prio := 0; prio < pkt.NumPriorities; prio++ {
			degenerate.drain[[2]int{port, prio}] = 0
			degenerate.pausedFor[[2]int{port, prio}] = sim.Millisecond
			degenerate.paused[[2]int{port, prio}] = 10 * sim.Millisecond
		}
	}

	return map[string]*fakeState{
		"empty": empty, "half": half, "full": full,
		"overfull": overfull, "degenerate": degenerate,
	}
}

// TestRegistryConformanceThresholdBounds sweeps every registered policy
// over every scenario: no threshold may be negative, exceed the shared
// pool, or be a NaN/Inf escapee (int64(NaN) would show up far outside
// the bounds).
func TestRegistryConformanceThresholdBounds(t *testing.T) {
	for _, name := range RegisteredPolicies() {
		for scen, s := range conformanceScenarios() {
			pol := MustNewPolicy(name)
			for port := 0; port < s.ports; port++ {
				for prio := 0; prio < pkt.NumPriorities; prio++ {
					ing := pol.IngressThreshold(s, port, prio)
					eg := pol.EgressThreshold(s, port, prio)
					if ing < 0 || ing > s.total {
						t.Errorf("%s/%s: IngressThreshold(%d,%d) = %d, want in [0, %d]",
							name, scen, port, prio, ing, s.total)
					}
					if eg < 0 || eg > s.total {
						t.Errorf("%s/%s: EgressThreshold(%d,%d) = %d, want in [0, %d]",
							name, scen, port, prio, eg, s.total)
					}
				}
			}
		}
	}
}

// TestRegistryConformanceNames: constructors must hand back a policy
// whose Name round-trips to its registry key, and NewPolicy must reject
// what the registry does not hold.
func TestRegistryConformanceNames(t *testing.T) {
	for _, name := range RegisteredPolicies() {
		pol, err := NewPolicy(name)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		if pol.Name() != name {
			t.Errorf("NewPolicy(%q).Name() = %q, want the registry key", name, pol.Name())
		}
		if !IsRegistered(name) {
			t.Errorf("IsRegistered(%q) = false for a registered policy", name)
		}
	}
	if _, err := NewPolicy("nope"); err == nil {
		t.Error("NewPolicy(\"nope\") succeeded, want an error listing the registry")
	}
	if IsRegistered("nope") {
		t.Error("IsRegistered(\"nope\") = true")
	}
}

// conformanceTranscript drives one fresh policy instance through a fixed
// deterministic life: interleaved enqueues, threshold queries and FIFO
// dequeues across several queues, with advancing time. It returns every
// observable output, so two transcripts comparing equal means the policy
// is a pure function of its call history.
func conformanceTranscript(pol Policy) string {
	s := newFakeState()
	out := ""
	type held struct{ p *pkt.Packet }
	var fifo []held
	for step := 0; step < 60; step++ {
		s.now = sim.Time(step) * 50 * sim.Microsecond
		port := step % 4
		prio := pkt.PrioLossy
		class := pkt.ClassLossy
		if step%3 == 0 {
			prio, class = pkt.PrioLossless, pkt.ClassLossless
		}
		p := pkt.NewData(pkt.FlowID(step%5+1), port, (port+1)%4, prio, class, int64(step)*1500, 1500)
		p.InPort, p.InPrio, p.OutPort = port, prio, (port+1)%4
		key := [2]int{port, prio}
		s.qin[key] += int64(p.Size)
		s.qout[[2]int{p.OutPort, prio}] += int64(p.Size)
		s.used += int64(p.Size)
		s.pool[class] += int64(p.Size)
		pol.OnEnqueue(s, p)
		fifo = append(fifo, held{p})

		out += fmt.Sprintf("%d: ing=%d eg=%d\n", step,
			pol.IngressThreshold(s, port, prio),
			pol.EgressThreshold(s, p.OutPort, prio))

		// Dequeue the oldest resident every other step, FIFO like the MMU.
		if step%2 == 1 {
			q := fifo[0].p
			fifo = fifo[1:]
			qk := [2]int{q.InPort, q.InPrio}
			s.qin[qk] -= int64(q.Size)
			s.qout[[2]int{q.OutPort, q.InPrio}] -= int64(q.Size)
			s.used -= int64(q.Size)
			s.pool[ClassOfPriority(q.InPrio)] -= int64(q.Size)
			pol.OnDequeue(s, q)
		}
	}
	return out
}

// TestRegistryConformanceDeterminism: two fresh instances of the same
// policy fed the identical call history must emit identical thresholds —
// the per-policy precondition for run-level reproducibility (same seed =>
// byte-identical results) that the sharded engine's invariance tests
// assume. Stateful policies (L2BM and BShare's sojourn tables, EDT/TDT
// state machines) are the reason this is worth pinning.
func TestRegistryConformanceDeterminism(t *testing.T) {
	for _, name := range RegisteredPolicies() {
		a := conformanceTranscript(MustNewPolicy(name))
		b := conformanceTranscript(MustNewPolicy(name))
		if a != b {
			t.Errorf("%s: two identically driven instances diverged:\n--- a ---\n%.1500s\n--- b ---\n%.1500s", name, a, b)
		}
	}
}
