// Package core implements the paper's contribution: buffer-management
// policies for the shared-memory switch MMU, chiefly L2BM — an ingress-pool
// PFC-threshold policy that weights the classic Dynamic Threshold control
// factor by the inverse of each ingress queue's average packet sojourn time
// (ICDCS'23, §III). The package also implements the evaluation baselines:
// classic DT (Choudhury–Hahne), DT2 (DT with α = 0.5) and ABM (SIGCOMM'22)
// adapted to the hybrid lossless/lossy setting.
//
// Policies are pure decision logic: they read MMU state through the
// StateView interface and return byte thresholds. The MMU (package
// switchsim) owns the counters and calls the policy on every admission
// decision and on every enqueue/dequeue so stateful policies (L2BM's sojourn
// module) can track packet residency.
package core

import (
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
)

// StateView is the read-only window a buffer-management policy gets into the
// switch MMU. All byte quantities refer to the shared service pool; the
// static reserved buffer and PFC headroom are accounted separately by the
// MMU and are invisible to policies, exactly as in the paper's model (§II-A).
type StateView interface {
	// Now returns the current simulated time.
	Now() sim.Time
	// TotalShared returns B, the size of the shared service pool in bytes.
	TotalShared() int64
	// SharedUsed returns Q(t), the bytes of shared pool currently occupied
	// across all queues and classes.
	SharedUsed() int64
	// EgressPoolUsed returns the occupancy of the egress accounting pool
	// for the given class (the paper keeps independent lossless and lossy
	// egress pools).
	EgressPoolUsed(class pkt.Class) int64
	// IngressQueueBytes returns the ingress-pool counter Q_in for
	// (port, priority).
	IngressQueueBytes(port, prio int) int64
	// EgressQueueBytes returns the egress-pool counter Q_out for
	// (port, priority).
	EgressQueueBytes(port, prio int) int64
	// EgressDrainRate returns the estimated service rate μ (bits/s) that
	// priority prio currently receives at egress port.
	EgressDrainRate(port, prio int) int64
	// EgressLineRate returns the full line rate (bits/s) of egress port.
	EgressLineRate(port int) int64
	// EgressPausedTime returns the cumulative time the egress (port,
	// priority) has spent paused by downstream PFC, used by L2BM's §III-D
	// pause-exclusion.
	EgressPausedTime(port, prio int) sim.Duration
	// EgressPausedFor returns how long the egress (port, priority) has been
	// continuously paused as of now, or 0 when it is not paused. The sojourn
	// module uses it to estimate the remaining pause of a paused egress
	// queue (whose EgressDrainRate is 0).
	EgressPausedFor(port, prio int) sim.Duration
	// NumPorts returns the switch's port count.
	NumPorts() int
	// CongestedEgressQueues returns how many egress queues of priority
	// prio are currently congested (backlog above one MTU), as consumed by
	// ABM's per-priority fair share.
	CongestedEgressQueues(prio int) int
}

// Policy computes the two admission thresholds the MMU enforces: the ingress
// (PFC / ingress-drop) threshold and the egress queue threshold. Stateful
// policies additionally observe the lifecycle of admitted packets.
type Policy interface {
	// Name identifies the policy in experiment output ("L2BM", "DT", ...).
	Name() string
	// IngressThreshold returns the byte threshold for ingress (port,
	// priority): crossing it triggers PFC for lossless traffic and drops
	// for lossy traffic (paper Eq. 1 / Eq. 3).
	IngressThreshold(s StateView, port, prio int) int64
	// EgressThreshold returns the byte threshold for the egress queue
	// (port, priority); packets beyond it are dropped (lossy) or refused
	// (lossless, backpressured via the ingress side).
	EgressThreshold(s StateView, port, prio int) int64
	// OnEnqueue observes a packet admitted into shared memory. The MMU has
	// already stamped p.InPort, p.InPrio and p.OutPort.
	OnEnqueue(s StateView, p *pkt.Packet)
	// OnDequeue observes a packet leaving shared memory (fully serialized
	// onto its egress link).
	OnDequeue(s StateView, p *pkt.Packet)
}

// Compile-time interface checks for all shipped policies.
var (
	_ Policy = (*DT)(nil)
	_ Policy = (*ABM)(nil)
	_ Policy = (*L2BM)(nil)
	_ Policy = (*FB)(nil)
	_ Policy = (*BShare)(nil)
	_ Policy = (*Occamy)(nil)

	_ PreemptivePolicy = (*Occamy)(nil)
)
