package core

import (
	"testing"
	"testing/quick"

	"l2bm/internal/pkt"
)

func TestDTIngressThreshold(t *testing.T) {
	s := newFakeState()
	s.used = 1 << 20 // 1 MB of 4 MB used

	dt := NewDT()
	want := int64(0.125 * float64(3<<20))
	if got := dt.IngressThreshold(s, 0, pkt.PrioLossless); got != want {
		t.Errorf("DT ingress threshold = %d, want %d", got, want)
	}

	dt2 := NewDT2()
	want2 := int64(0.5 * float64(3<<20))
	if got := dt2.IngressThreshold(s, 0, pkt.PrioLossless); got != want2 {
		t.Errorf("DT2 ingress threshold = %d, want %d", got, want2)
	}
}

func TestDTThresholdShrinksWithOccupancy(t *testing.T) {
	s := newFakeState()
	dt := NewDT()
	prev := dt.IngressThreshold(s, 0, 0)
	for _, used := range []int64{1 << 20, 2 << 20, 3 << 20, 4 << 20} {
		s.used = used
		cur := dt.IngressThreshold(s, 0, 0)
		if cur >= prev {
			t.Errorf("threshold %d at used=%d not below previous %d", cur, used, prev)
		}
		prev = cur
	}
	if prev != 0 {
		t.Errorf("threshold at full buffer = %d, want 0", prev)
	}
}

func TestDTThresholdClampsNegativeFree(t *testing.T) {
	s := newFakeState()
	s.used = s.total + 1000 // headroom overshoot can exceed the service pool
	if got := NewDT().IngressThreshold(s, 0, 0); got != 0 {
		t.Errorf("threshold with negative free = %d, want 0", got)
	}
	if got := NewDT().EgressThreshold(s, 0, pkt.PrioLossy); got < 0 {
		t.Errorf("egress threshold = %d, want >= 0", got)
	}
}

func TestDTEgressUsesClassPool(t *testing.T) {
	s := newFakeState()
	s.pool[pkt.ClassLossy] = 2 << 20
	s.pool[pkt.ClassLossless] = 0

	dt := NewDT()
	lossy := dt.EgressThreshold(s, 0, pkt.PrioLossy)
	lossless := dt.EgressThreshold(s, 0, pkt.PrioLossless)
	if lossy >= lossless {
		t.Errorf("lossy threshold %d should be below lossless %d (separate pools)", lossy, lossless)
	}
	if want := int64(0.5 * float64(2<<20)); lossy != want {
		t.Errorf("lossy egress threshold = %d, want %d", lossy, want)
	}
	if want := int64(0.5 * float64(4<<20)); lossless != want {
		t.Errorf("lossless egress threshold = %d, want %d", lossless, want)
	}
}

func TestDTNames(t *testing.T) {
	if NewDT().Name() != "DT" || NewDT2().Name() != "DT2" {
		t.Error("policy names wrong")
	}
	if NewDTAlpha(0.25).Name() != "DT" {
		t.Error("NewDTAlpha name wrong")
	}
	if NewDTAlpha(0.25).AlphaIngress != 0.25 {
		t.Error("NewDTAlpha alpha not applied")
	}
}

func TestClassOfPriority(t *testing.T) {
	if ClassOfPriority(pkt.PrioLossless) != pkt.ClassLossless {
		t.Error("lossless priority misclassified")
	}
	if ClassOfPriority(pkt.PrioLossy) != pkt.ClassLossy {
		t.Error("lossy priority misclassified")
	}
	if ClassOfPriority(pkt.PrioControl) != pkt.ClassControl {
		t.Error("control priority misclassified")
	}
	if ClassOfPriority(1) != pkt.ClassLossy {
		t.Error("unassigned priorities should default to lossy")
	}
}

// Property: DT threshold is monotone nonincreasing in occupancy and bounded
// by α·B.
func TestDTMonotoneProperty(t *testing.T) {
	dt := NewDT()
	f := func(usedA, usedB uint32) bool {
		s := newFakeState()
		a, b := int64(usedA)%s.total, int64(usedB)%s.total
		if a > b {
			a, b = b, a
		}
		s.used = a
		ta := dt.IngressThreshold(s, 0, 0)
		s.used = b
		tb := dt.IngressThreshold(s, 0, 0)
		bound := int64(dt.AlphaIngress * float64(s.total))
		return tb <= ta && ta <= bound && tb >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
