package core

import (
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
)

// fakeState is a scriptable StateView for unit-testing policies without a
// switch.
type fakeState struct {
	now       sim.Time
	total     int64
	used      int64
	pool      map[pkt.Class]int64
	qin       map[[2]int]int64
	qout      map[[2]int]int64
	drain     map[[2]int]int64
	line      int64
	paused    map[[2]int]sim.Duration
	pausedFor map[[2]int]sim.Duration
	ports     int
	congested map[int]int
}

var _ StateView = (*fakeState)(nil)

func newFakeState() *fakeState {
	return &fakeState{
		total:     4 << 20, // 4 MB, the paper's switch buffer
		pool:      make(map[pkt.Class]int64),
		qin:       make(map[[2]int]int64),
		qout:      make(map[[2]int]int64),
		drain:     make(map[[2]int]int64),
		line:      25e9,
		paused:    make(map[[2]int]sim.Duration),
		pausedFor: make(map[[2]int]sim.Duration),
		ports:     8,
		congested: make(map[int]int),
	}
}

func (f *fakeState) Now() sim.Time                          { return f.now }
func (f *fakeState) TotalShared() int64                     { return f.total }
func (f *fakeState) SharedUsed() int64                      { return f.used }
func (f *fakeState) EgressPoolUsed(c pkt.Class) int64       { return f.pool[c] }
func (f *fakeState) IngressQueueBytes(port, prio int) int64 { return f.qin[[2]int{port, prio}] }
func (f *fakeState) EgressQueueBytes(port, prio int) int64  { return f.qout[[2]int{port, prio}] }
func (f *fakeState) EgressLineRate(int) int64               { return f.line }
func (f *fakeState) NumPorts() int                          { return f.ports }
func (f *fakeState) CongestedEgressQueues(prio int) int     { return f.congested[prio] }

func (f *fakeState) EgressDrainRate(port, prio int) int64 {
	if r, ok := f.drain[[2]int{port, prio}]; ok {
		return r
	}
	return f.line
}

func (f *fakeState) EgressPausedTime(port, prio int) sim.Duration {
	return f.paused[[2]int{port, prio}]
}

func (f *fakeState) EgressPausedFor(port, prio int) sim.Duration {
	return f.pausedFor[[2]int{port, prio}]
}
