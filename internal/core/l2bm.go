package core

import (
	"fmt"
	"math"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
)

// Normalization selects how L2BM computes the constant C in Eq. (3). The
// paper normalizes C to the sum of average sojourn times over all ingress
// queues; alternatives are provided for the ablation study.
type Normalization int

const (
	// NormSumTau is the paper's literal phrasing: C = Σ_q τ_q over active
	// queues. With N similarly congested queues every weight becomes N·α,
	// which inflates all thresholds as activity grows.
	NormSumTau Normalization = iota + 1
	// NormMeanTau sets C = Σ_q τ_q / N (the mean): queues draining faster
	// than average get w > α, slower-than-average (congested) queues get
	// w < α. This keeps the aggregate elasticity comparable to DT while
	// redistributing buffer toward fast-draining queues — the behaviour
	// the paper's evaluation exhibits (low occupancy AND few pauses) — and
	// is the default here. The paper notes "the normalization method can
	// be customized" (§III-C).
	NormMeanTau
	// NormMaxTau sets C = max_q τ_q, so the slowest queue gets exactly α.
	NormMaxTau
	// NormCount sets C = (#active queues) · τ_floor, a static weighting
	// that ignores relative congestion (ablation control).
	NormCount
)

// String implements fmt.Stringer.
func (n Normalization) String() string {
	switch n {
	case NormSumTau:
		return "sum-tau"
	case NormMeanTau:
		return "mean-tau"
	case NormMaxTau:
		return "max-tau"
	case NormCount:
		return "count"
	default:
		return fmt.Sprintf("normalization(%d)", int(n))
	}
}

// L2BMConfig parameterizes the L2BM policy. The zero value is not valid;
// use DefaultL2BMConfig.
type L2BMConfig struct {
	// Alpha is the base DT control factor α revised by the congestion
	// perception factor (paper Eq. 3–4).
	Alpha float64
	// AlphaEgressPool is the egress-pool DT factor (L2BM manages the
	// ingress pool; egress stays on DT like the other schemes).
	AlphaEgressPool float64
	// TauFloor is the minimum τ used in weights, preventing division
	// blow-ups for queues whose packets drain immediately. One MTU
	// serialization time at the slowest port is a natural floor.
	TauFloor sim.Duration
	// Normalization selects the constant C (paper: NormSumTau).
	Normalization Normalization
	// ExcludePauseTime enables the §III-D mitigation: time an egress
	// priority spends paused by downstream PFC does not count toward
	// sojourn estimates.
	ExcludePauseTime bool
	// BoundsLossless and BoundsLossy clamp the congestion-perception
	// weight per traffic class. The paper provisions per-priority α
	// "according to the urgency and quality of service of traffic"
	// (§III-C); the defaults encode its evaluation behaviour:
	//
	//   - lossless (PFC-protected) queues are pinned at the generous
	//     common factor 0.5 (DT2's setting): their PFC thresholds always
	//     dominate DT2's formula, and because L2BM keeps total occupancy
	//     low by clamping lossy queues, B−Q(t) — and with it the pause
	//     threshold — stays far higher than under DT or DT2, yielding the
	//     paper's near-zero pause counts. (Making the lossless weight
	//     *adaptive* was measured to backfire in this substrate: a deep
	//     boosted queue whose τ spikes collapses to its floor and
	//     instantly XOFFs, producing pause churn; see DESIGN.md.)
	//   - lossy queues are never boosted above α — so TCP cannot inflate
	//     total occupancy beyond DT's share — and may be clamped down to
	//     α/8 while their packets sit behind congested output queues.
	//
	// A zero Min or Max disables that bound.
	BoundsLossless WeightBounds
	BoundsLossy    WeightBounds
}

// WeightBounds clamps a class's adaptive weight; zero fields are unbounded.
type WeightBounds struct {
	Min float64
	Max float64
}

// Validate rejects bounds that would silently corrupt every threshold they
// clamp: NaN or infinite endpoints, negative endpoints, or an inverted
// band. Zero fields remain "unbounded" and are always valid.
func (b WeightBounds) Validate() error {
	switch {
	case math.IsNaN(b.Min) || math.IsInf(b.Min, 0) || math.IsNaN(b.Max) || math.IsInf(b.Max, 0):
		return fmt.Errorf("core: WeightBounds must be finite (got Min=%v Max=%v)", b.Min, b.Max)
	case b.Min < 0 || b.Max < 0:
		return fmt.Errorf("core: WeightBounds must be >= 0 (got Min=%v Max=%v)", b.Min, b.Max)
	case b.Max > 0 && b.Min > b.Max:
		return fmt.Errorf("core: WeightBounds inverted (Min=%v > Max=%v)", b.Min, b.Max)
	default:
		return nil
	}
}

// clamp applies the bounds to w.
func (b WeightBounds) clamp(w float64) float64 {
	if b.Max > 0 && w > b.Max {
		w = b.Max
	}
	if w < b.Min {
		w = b.Min
	}
	return w
}

// DefaultL2BMConfig returns the configuration used in the evaluation:
// α = 0.125 revised by mean-normalized inverse sojourn time with pause
// exclusion on (see Normalization for why mean rather than the literal sum).
func DefaultL2BMConfig() L2BMConfig {
	return L2BMConfig{
		Alpha:            AlphaDT,
		AlphaEgressPool:  AlphaEgress,
		TauFloor:         sim.TxTime(pkt.MTUBytes, 25e9),
		Normalization:    NormMeanTau,
		ExcludePauseTime: true,
		BoundsLossless:   WeightBounds{Min: AlphaDT2, Max: AlphaDT2},
		BoundsLossy:      WeightBounds{Min: AlphaDT / 8, Max: AlphaDT},
	}
}

// L2BM is the paper's buffer-management policy: the PFC threshold of
// ingress queue (i, p) is
//
//	T_i^p(t) = C/τ_i^p · α · (B − Q(t))            (Eq. 3)
//
// where τ_i^p is the queue's average packet sojourn time maintained by the
// congestion-detection module (Algorithm 1) and C normalizes the weights
// across active queues. Queues whose packets drain fast (low τ — e.g. RDMA
// with its sub-RTT control loop) receive large thresholds, absorbing bursts
// without triggering PFC; queues whose packets sit behind congested egress
// queues (high τ — e.g. TCP) are clamped before they monopolize the pool.
type L2BM struct {
	cfg     L2BMConfig
	sojourn *SojournTable

	// aqScratch is the reusable PeekActiveAppend buffer behind
	// PeekSamplesAppend: the trace sampler peeks every tick, and without
	// the scratch each tick would allocate a fresh active-queue slice.
	aqScratch []ActiveQueue
}

// Validate reports the pathological-α class of configuration errors DESIGN
// §5 promises to reject: NaN/Inf/non-positive control factors, a
// non-positive τ floor (division blow-up in Eq. 4), unknown normalizations,
// and malformed weight bounds — each would otherwise become a silent
// garbage threshold rather than an error.
func (cfg *L2BMConfig) Validate() error {
	switch {
	case math.IsNaN(cfg.Alpha) || math.IsInf(cfg.Alpha, 0) || cfg.Alpha <= 0:
		return fmt.Errorf("core: L2BM Alpha = %v, want finite > 0", cfg.Alpha)
	case math.IsNaN(cfg.AlphaEgressPool) || math.IsInf(cfg.AlphaEgressPool, 0) || cfg.AlphaEgressPool <= 0:
		return fmt.Errorf("core: L2BM AlphaEgressPool = %v, want finite > 0", cfg.AlphaEgressPool)
	case cfg.TauFloor <= 0:
		return fmt.Errorf("core: L2BM TauFloor = %v, want > 0 (zero divides Eq. 4)", cfg.TauFloor)
	case cfg.Normalization < NormSumTau || cfg.Normalization > NormCount:
		return fmt.Errorf("core: L2BM Normalization = %d, want a defined Normalization", cfg.Normalization)
	}
	if err := cfg.BoundsLossless.Validate(); err != nil {
		return fmt.Errorf("lossless %w", err)
	}
	if err := cfg.BoundsLossy.Validate(); err != nil {
		return fmt.Errorf("lossy %w", err)
	}
	return nil
}

// NewL2BM returns an L2BM policy with the given configuration.
func NewL2BM(cfg L2BMConfig) *L2BM {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	return &L2BM{cfg: cfg, sojourn: NewSojournTable(cfg.ExcludePauseTime)}
}

// NewDefaultL2BM returns L2BM with the paper's defaults.
func NewDefaultL2BM() *L2BM { return NewL2BM(DefaultL2BMConfig()) }

// Name implements Policy.
func (l *L2BM) Name() string { return "L2BM" }

// Sojourn exposes the congestion-detection module for tests and metrics.
func (l *L2BM) Sojourn() *SojournTable { return l.sojourn }

// Weight returns the adaptive control parameter w_i^p(t) = C/τ·α (Eq. 4)
// for ingress queue (port, prio).
func (l *L2BM) Weight(s StateView, port, prio int) float64 {
	tau := l.sojourn.Tau(s, port, prio)
	if tau < l.cfg.TauFloor {
		tau = l.cfg.TauFloor
	}
	var c sim.Duration
	idle := false
	switch l.cfg.Normalization {
	case NormMaxTau:
		maxTau, active := l.sojourn.MaxActiveTau(s, l.cfg.TauFloor)
		idle = active == 0
		c = maxTau
	case NormCount:
		_, active := l.sojourn.SumActiveTau(s, l.cfg.TauFloor)
		idle = active == 0
		c = sim.Duration(active) * l.cfg.TauFloor
	case NormMeanTau:
		sum, active := l.sojourn.SumActiveTau(s, l.cfg.TauFloor)
		idle = active == 0
		if active > 0 {
			c = sum / sim.Duration(active)
		}
	default: // NormSumTau
		sum, active := l.sojourn.SumActiveTau(s, l.cfg.TauFloor)
		idle = active == 0
		c = sum
	}
	w := l.cfg.Alpha
	if !idle {
		w = float64(c) / float64(tau) * l.cfg.Alpha
	}
	// An idle switch degenerates to DT's uniform α, still subject to the
	// per-class bounds so thresholds never jump when traffic appears.
	if ClassOfPriority(prio) == pkt.ClassLossless {
		return l.cfg.BoundsLossless.clamp(w)
	}
	return l.cfg.BoundsLossy.clamp(w)
}

// IngressThreshold implements Policy (Eq. 3).
func (l *L2BM) IngressThreshold(s StateView, port, prio int) int64 {
	free := s.TotalShared() - s.SharedUsed()
	if free < 0 {
		free = 0
	}
	return int64(l.Weight(s, port, prio) * float64(free))
}

// EgressThreshold implements Policy: standard egress-pool DT (L2BM is an
// ingress-pool algorithm; paper Fig. 5 keeps the egress queue threshold).
func (l *L2BM) EgressThreshold(s StateView, _, prio int) int64 {
	return egressDT(s, prio, l.cfg.AlphaEgressPool)
}

// QueueSample is one active ingress queue's adaptive state as peeked by the
// trace layer: the sojourn estimate τ (Algorithm 1), the Eq. 4 weight and
// the Eq. 3 byte threshold it currently implies.
type QueueSample struct {
	Port, Prio int
	Tau        sim.Duration
	Weight     float64
	Threshold  int64
}

// PeekSamples returns the adaptive state of every active ingress queue
// WITHOUT advancing sojourn estimates or touching the aggregate cache.
// Weight/Tau mutate the congestion-detection module (the advance write-back
// plus the pausedDelta clamp make them non-idempotent), so the trace
// sampler must go through this read-only path to keep traced runs
// byte-identical to untraced runs. The math mirrors Weight and
// IngressThreshold exactly: C per cfg.Normalization over the peeked floored
// taus, w = C/τ·α clamped by the class bounds, T = w·max(0, B−Q(t)).
// PeekSamples allocates its result; tick-driven samplers should use
// PeekSamplesAppend with a reusable buffer.
func (l *L2BM) PeekSamples(s StateView) []QueueSample {
	return l.PeekSamplesAppend(nil, s)
}

// PeekSamplesAppend is PeekSamples appending into dst (nil or a recycled
// dst[:0]). The intermediate active-queue scan reuses an L2BM-owned scratch
// buffer, so a steady-state sampling tick performs zero allocations.
func (l *L2BM) PeekSamplesAppend(dst []QueueSample, s StateView) []QueueSample {
	l.aqScratch = l.sojourn.PeekActiveAppend(l.aqScratch[:0], s, l.cfg.TauFloor)
	active := l.aqScratch
	if len(active) == 0 {
		return dst
	}
	var c sim.Duration
	switch l.cfg.Normalization {
	case NormMaxTau:
		for _, a := range active {
			if a.Tau > c {
				c = a.Tau
			}
		}
	case NormCount:
		c = sim.Duration(len(active)) * l.cfg.TauFloor
	case NormMeanTau:
		var sum sim.Duration
		for _, a := range active {
			sum += a.Tau
		}
		c = sum / sim.Duration(len(active))
	default: // NormSumTau
		for _, a := range active {
			c += a.Tau
		}
	}
	free := s.TotalShared() - s.SharedUsed()
	if free < 0 {
		free = 0
	}
	for _, a := range active {
		w := float64(c) / float64(a.Tau) * l.cfg.Alpha
		if ClassOfPriority(a.Prio) == pkt.ClassLossless {
			w = l.cfg.BoundsLossless.clamp(w)
		} else {
			w = l.cfg.BoundsLossy.clamp(w)
		}
		dst = append(dst, QueueSample{
			Port: a.Port, Prio: a.Prio, Tau: a.Tau,
			Weight: w, Threshold: int64(w * float64(free)),
		})
	}
	return dst
}

// OnEnqueue implements Policy, feeding the congestion-detection module.
func (l *L2BM) OnEnqueue(s StateView, p *pkt.Packet) { l.sojourn.OnEnqueue(s, p) }

// OnDequeue implements Policy.
func (l *L2BM) OnDequeue(s StateView, p *pkt.Packet) { l.sojourn.OnDequeue(s, p) }
