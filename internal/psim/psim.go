// Package psim is the sharded conservative-time parallel simulation core: a
// conductor that runs N per-shard engines (one goroutine each) in barrier
// epochs whose length never exceeds the cluster's lookahead — the minimum
// propagation delay over cross-shard links (Chandy–Misra–Bryant style
// conservative synchronization).
//
// Soundness. Let T be the global minimum next-event time and L > 0 the
// lookahead. During an epoch bounded at T+L−1, a shard can only transmit
// frames at times ≥ T, which arrive at the peer shard at ≥ T+L — strictly
// after the bound (engines execute events at exactly the bound, hence the
// −1). Cross-shard frames therefore never need to be inserted into a peer's
// past: they sit in single-producer mailboxes (netdev.Outbox) the conductor
// drains at the barrier, when every shard is parked. Each epoch executes at
// least the event at T, so the bound strictly increases and the run
// terminates.
//
// Determinism. Results are byte-identical for every shard count because the
// dispatch order of same-tick frame arrivals is a mode-invariant function of
// the wiring: every port carries a global wiring-order arrival key, and the
// engine orders keyed arrivals after plain same-tick events and among
// themselves by key (see sim.ScheduleArrivalAt). Mailbox drain order is
// immaterial — the receiving heap's (time, key) total order decides — and
// everything else that could diverge (workload generators, fault processes)
// is replicated per shard on identically-seeded engines.
//
// Global observers that read state across shards (deadlock detector sweeps,
// the no-progress watchdog) cannot run as one shard's engine events; they
// register as barrier tasks, executed by the conductor at exact multiples of
// their period when all shard clocks agree and no events are in flight.
package psim

import (
	"fmt"

	"l2bm/internal/netdev"
	"l2bm/internal/sim"
	"l2bm/internal/topo"
)

// Task is a global barrier task: Fn runs at every multiple of Every, after
// all events up to (and including) that instant have executed on every
// shard and all mailboxes are drained. Fn must not schedule events in the
// past and must not touch engines concurrently — it runs on the conductor's
// goroutine while every shard is parked.
type Task struct {
	Every sim.Duration
	Fn    func(now sim.Time)

	next sim.Time
}

// Stats counts conductor activity over a run.
type Stats struct {
	// Epochs is the number of barrier intervals executed.
	Epochs uint64
	// Delivered is the number of cross-shard frames drained from mailboxes.
	Delivered uint64
	// TaskFirings counts barrier-task executions.
	TaskFirings uint64
}

// Conductor synchronizes a set of per-shard engines. Build one per run with
// New or ForCluster, register barrier tasks, then Run to a horizon. The
// zero value is not usable.
type Conductor struct {
	engines   []*sim.Engine
	boxes     []*netdev.Outbox
	lookahead sim.Duration
	tasks     []*Task
	stats     Stats

	// worker plumbing: one persistent goroutine per shard when sharded.
	start []chan sim.Time
	done  chan int

	// intr, when set, is polled between epochs (and inside each shard's
	// engine loop); returning true abandons the run early.
	intr func() bool
}

// New builds a conductor over the given engines and cross-shard mailboxes.
// lookahead must be positive when more than one engine is supplied; with a
// single engine it is ignored (epochs span to the next task or the horizon).
func New(engines []*sim.Engine, boxes []*netdev.Outbox, lookahead sim.Duration) *Conductor {
	if len(engines) == 0 {
		panic("psim: no engines")
	}
	if len(engines) > 1 && lookahead <= 0 {
		panic(fmt.Sprintf("psim: %d shards need positive lookahead, got %v", len(engines), lookahead))
	}
	c := &Conductor{engines: engines, boxes: boxes, lookahead: lookahead}
	if len(engines) > 1 {
		c.done = make(chan int, len(engines))
		for i := range engines {
			ch := make(chan sim.Time, 1)
			c.start = append(c.start, ch)
			go c.worker(i, ch)
		}
	}
	return c
}

// ForCluster builds a conductor for a sharded topo build, wiring in its
// engines, mailboxes and computed lookahead.
func ForCluster(cl *topo.Cluster) *Conductor {
	la := cl.Lookahead
	if len(cl.Engines) == 1 {
		la = 0
	}
	return New(cl.Engines, cl.Outboxes(), la)
}

// AddTask registers a global barrier task firing at every multiple of every
// (first firing one period after the current time). Register tasks before
// Run.
func (c *Conductor) AddTask(every sim.Duration, fn func(now sim.Time)) {
	if every <= 0 {
		panic("psim: task period must be positive")
	}
	c.tasks = append(c.tasks, &Task{Every: every, Fn: fn, next: c.engines[0].Now() + sim.Time(every)})
}

// SetInterrupt installs an abandon-the-run poll: fn is checked between
// epochs on the conductor goroutine AND every `every` fired events inside
// each shard engine's run loop (so a livelocked epoch is interrupted too,
// not just the barrier). When fn returns true, Run returns early with the
// fabric in a torn mid-run state — callers must discard results, which is
// exactly what a context-cancelled experiment point does. fn MUST be safe
// for concurrent use (shard workers poll it in parallel); context.Err-style
// checks qualify. Pass fn == nil to disarm. Like the engine-level
// SetInterrupt, an armed poll that never fires is observer-free.
func (c *Conductor) SetInterrupt(every uint64, fn func() bool) {
	c.intr = fn
	for _, e := range c.engines {
		e.SetInterrupt(every, fn)
	}
}

// Stats returns a snapshot of the conductor counters.
func (c *Conductor) Stats() Stats { return c.stats }

// Events sums executed events across all shard engines.
func (c *Conductor) Events() uint64 {
	var n uint64
	for _, e := range c.engines {
		n += e.Events()
	}
	return n
}

// Now returns the common shard clock (valid between epochs).
func (c *Conductor) Now() sim.Time { return c.engines[0].Now() }

// worker is one shard's run loop: it executes epochs on demand until its
// start channel closes.
func (c *Conductor) worker(i int, start <-chan sim.Time) {
	for bound := range start {
		c.engines[i].Run(bound)
		c.done <- i
	}
}

// Close releases the worker goroutines. The conductor must not be used
// afterwards. Safe to call once, even if Run was never called.
func (c *Conductor) Close() {
	for _, ch := range c.start {
		close(ch)
	}
	c.start = nil
}

// EpochBound is the conservative epoch-bound arithmetic, factored out so it
// can be unit-tested and reused by drivers that step engines in
// barrier-sized slices (the hybrid-fidelity packet segments): the horizon,
// lowered to the earliest due barrier task (the task must observe a state
// with no events in flight at its instant), and — when a lookahead applies
// and an event is pending at minEvent — lowered to minEvent + lookahead − 1.
// With T the global minimum next-event time, every cross-shard frame sent
// during such an epoch arrives at ≥ T+L > T+L−1, so bounding at T+L−1 keeps
// all deliveries in every shard's future (engines execute events at exactly
// the bound, hence the −1). Pass lookahead ≤ 0 or haveEvent == false to
// skip the lookahead clamp (single-shard mode, or an idle fabric where
// jumping straight to the next task or the horizon is safe: no pending
// event anywhere means the mailboxes are empty too).
func EpochBound(horizon, nextTask, minEvent sim.Time, haveTask, haveEvent bool, lookahead sim.Duration) sim.Time {
	bound := horizon
	if haveTask && nextTask < bound {
		bound = nextTask
	}
	if haveEvent && lookahead > 0 {
		if eb := minEvent + sim.Time(lookahead) - 1; eb < bound {
			bound = eb
		}
	}
	return bound
}

// Run executes the simulation up to and including horizon: repeated barrier
// epochs of engine execution, mailbox drains and due barrier tasks. On
// return every shard clock reads horizon and no event at or before horizon
// remains (events scheduled beyond the horizon stay pending, exactly like
// sim.Engine.Run).
func (c *Conductor) Run(horizon sim.Time) {
	for {
		if c.intr != nil && c.intr() {
			return
		}

		var nextTask sim.Time
		haveTask := false
		for _, t := range c.tasks {
			if !haveTask || t.next < nextTask {
				haveTask, nextTask = true, t.next
			}
		}

		var minT sim.Time
		haveEvent := false
		la := sim.Duration(0)
		if len(c.engines) > 1 {
			la = c.lookahead
			for _, e := range c.engines {
				if t, ok := e.NextEventTime(); ok && (!haveEvent || t < minT) {
					haveEvent, minT = true, t
				}
			}
		}

		bound := EpochBound(horizon, nextTask, minT, haveTask, haveEvent, la)

		c.runEpoch(bound)
		c.stats.Epochs++
		for _, b := range c.boxes {
			c.stats.Delivered += uint64(b.Drain())
		}
		for _, t := range c.tasks {
			if t.next == bound {
				t.Fn(bound)
				t.next += sim.Time(t.Every)
				c.stats.TaskFirings++
			}
		}
		if bound >= horizon {
			return
		}
	}
}

// runEpoch advances every engine to bound, in parallel when sharded.
func (c *Conductor) runEpoch(bound sim.Time) {
	if c.start == nil {
		c.engines[0].Run(bound)
		return
	}
	for _, ch := range c.start {
		ch <- bound
	}
	for range c.start {
		<-c.done
	}
}
