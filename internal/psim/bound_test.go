package psim

import (
	"testing"

	"l2bm/internal/sim"
)

// TestEpochBoundTable pins the conservative epoch-bound arithmetic —
// bound = min(horizon, nextTask, minEvent + lookahead − 1) with each clamp
// gated on its have-flag — across the off-by-one surface the hybrid
// fast-forward leans on (it steps packet segments in EpochBound-sized
// slices).
func TestEpochBoundTable(t *testing.T) {
	cases := []struct {
		name                string
		horizon, task, ev   sim.Time
		haveTask, haveEvent bool
		lookahead           sim.Duration
		want                sim.Time
	}{
		// No clamps: idle fabric, no tasks — jump straight to the horizon.
		{"horizon-only", 1000, 0, 0, false, false, 50, 1000},
		// Task strictly before horizon lowers the bound to the task instant.
		{"task-before-horizon", 1000, 400, 0, true, false, 0, 400},
		// Task exactly at the horizon: min is idempotent, no overshoot.
		{"task-at-horizon", 1000, 1000, 0, true, false, 0, 1000},
		// Task beyond the horizon never drags the bound past it.
		{"task-after-horizon", 1000, 1500, 0, true, false, 0, 1000},
		// The lookahead clamp: pending event at 100 with lookahead 50 bounds
		// the epoch at 149 — a cross-shard frame sent at ≥ 100 arrives at
		// ≥ 150, strictly beyond the epoch, so no shard can observe it late.
		{"event-clamp", 1000, 0, 100, false, true, 50, 149},
		// Lookahead of exactly one tick: bound = minEvent + 1 − 1 = the
		// event instant itself. The epoch executes the event but nothing
		// after it — the tightest legal epoch, and the degenerate case the
		// −1 exists for (a zero-width link delay may deliver "now", so the
		// epoch must not advance past the sender's instant).
		{"one-tick-lookahead", 1000, 0, 100, false, true, 1, 100},
		// Event bound vs task: the earlier wins.
		{"task-beats-event", 1000, 120, 100, true, true, 50, 120},
		{"event-beats-task", 1000, 300, 100, true, true, 50, 149},
		// Barrier task landing exactly on the event bound: still one epoch,
		// the task fires at a barrier where no event ≤ bound is in flight.
		{"task-on-event-bound", 1000, 149, 100, true, true, 50, 149},
		// Event bound beyond the horizon: horizon wins.
		{"event-bound-past-horizon", 120, 0, 100, false, true, 50, 120},
		// NextEventTime exactly at the would-be bound (event at horizon):
		// engines execute events at exactly the bound, so no lowering is
		// needed or done.
		{"event-at-horizon", 100, 0, 100, false, true, 50, 100},
		// lookahead ≤ 0 skips the clamp even with a pending event
		// (single-shard mode: no cross-shard deliveries to protect).
		{"zero-lookahead-skips-clamp", 1000, 0, 100, false, true, 0, 1000},
		{"negative-lookahead-skips-clamp", 1000, 0, 100, false, true, -5, 1000},
		// haveEvent == false skips the clamp (idle fabric: empty mailboxes).
		{"no-event-skips-clamp", 1000, 0, 100, false, false, 50, 1000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := EpochBound(tc.horizon, tc.task, tc.ev, tc.haveTask, tc.haveEvent, tc.lookahead)
			if got != tc.want {
				t.Errorf("EpochBound(h=%d task=%d ev=%d haveTask=%v haveEvent=%v la=%d) = %d, want %d",
					tc.horizon, tc.task, tc.ev, tc.haveTask, tc.haveEvent, tc.lookahead, got, tc.want)
			}
		})
	}
}

// TestBarrierTaskOnBound drives a two-shard conductor whose barrier task
// period makes firings land exactly on lookahead-clamped epoch bounds: the
// task must observe barrier state (both clocks equal, no event at or before
// the firing instant still pending) at every firing, and fire exactly
// horizon/period times.
func TestBarrierTaskOnBound(t *testing.T) {
	a, b := sim.NewEngine(1), sim.NewEngine(2)
	const horizon = sim.Time(1000)
	const period = sim.Duration(100)

	// A self-rescheduling event chain on each shard, offset so the global
	// min-event time keeps moving between barriers.
	var tick func(e *sim.Engine, step sim.Duration) func()
	tick = func(e *sim.Engine, step sim.Duration) func() {
		return func() {
			if e.Now() < horizon {
				e.Schedule(step, tick(e, step))
			}
		}
	}
	a.Schedule(7, tick(a, 7))
	b.Schedule(13, tick(b, 13))

	c := New([]*sim.Engine{a, b}, nil, 25)
	defer c.Close()
	var firings []sim.Time
	c.AddTask(period, func(now sim.Time) {
		if a.Now() != now || b.Now() != now {
			t.Errorf("task at %d did not run at a barrier: clocks a=%d b=%d", now, a.Now(), b.Now())
		}
		if ta, ok := a.NextEventTime(); ok && ta <= now {
			t.Errorf("task at %d fired with shard-a event still pending at %d", now, ta)
		}
		if tb, ok := b.NextEventTime(); ok && tb <= now {
			t.Errorf("task at %d fired with shard-b event still pending at %d", now, tb)
		}
		firings = append(firings, now)
	})
	c.Run(horizon)

	want := int(horizon / sim.Time(period))
	if len(firings) != want {
		t.Fatalf("task fired %d times, want %d (firings: %v)", len(firings), want, firings)
	}
	for i, at := range firings {
		if exp := sim.Time(period) * sim.Time(i+1); at != exp {
			t.Errorf("firing %d at %d, want %d", i, at, exp)
		}
	}
	if a.Now() != horizon || b.Now() != horizon {
		t.Errorf("run ended with clocks a=%d b=%d, want both at %d", a.Now(), b.Now(), horizon)
	}
}

// TestEventAtEpochBound pins the "engines execute events at exactly the
// bound" half of the −1 argument: an event scheduled precisely at an
// epoch's lookahead-clamped bound runs inside that epoch, and an event one
// tick past the horizon stays pending after Run.
func TestEventAtEpochBound(t *testing.T) {
	a, b := sim.NewEngine(1), sim.NewEngine(2)
	const la = sim.Duration(10)

	// Per-shard records: epochs run shards on concurrent workers, so a
	// shared slice would race.
	var ranA, ranB []sim.Time
	// Shard a holds the global min event at t=5, so the first epoch's bound
	// is 5 + 10 − 1 = 14. Shard b's event at exactly 14 must execute in the
	// same epoch; its event at 15 must wait for the next one.
	a.Schedule(5, func() { ranA = append(ranA, a.Now()) })
	b.Schedule(14, func() { ranB = append(ranB, b.Now()) })
	b.Schedule(15, func() { ranB = append(ranB, b.Now()) })

	if got := EpochBound(1000, 0, 5, false, true, la); got != 14 {
		t.Fatalf("first epoch bound = %d, want 14", got)
	}

	c := New([]*sim.Engine{a, b}, nil, la)
	defer c.Close()

	// Run to exactly the first epoch's bound: both due events execute, the
	// one past the bound does not.
	c.Run(14)
	if len(ranA) != 1 || ranA[0] != 5 {
		t.Fatalf("after Run(14): shard a executed %v, want [5]", ranA)
	}
	if len(ranB) != 1 || ranB[0] != 14 {
		t.Fatalf("after Run(14): shard b executed %v, want [14]", ranB)
	}
	if next, ok := b.NextEventTime(); !ok || next != 15 {
		t.Fatalf("event at 15 should still be pending, got (%d, %v)", next, ok)
	}

	// An event exactly at the horizon executes; Run leaves nothing ≤ horizon.
	c.Run(15)
	if len(ranB) != 2 || ranB[1] != 15 {
		t.Fatalf("after Run(15): shard b executed %v, want the t=15 event to have run", ranB)
	}
	if _, ok := b.NextEventTime(); ok {
		t.Fatal("no events should remain")
	}
}
