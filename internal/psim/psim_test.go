package psim

import (
	"fmt"
	"testing"

	"l2bm/internal/core"
	"l2bm/internal/host"
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/topo"
	"l2bm/internal/transport"
)

func dtFactory() core.Policy { return core.NewDT() }

// fingerprint captures everything a run can diverge on: every flow's
// completion instant, per-switch packet counters, and the lossless check.
type fingerprint struct {
	completions map[pkt.FlowID]sim.Time
	switches    string
	gaps        uint64
}

// runTiny builds the tiny cluster over the given shard count, launches one
// cross-pod flow per host at t=0 (every frame crosses the fabric; half the
// paths cross shards at 2 shards), runs to a horizon and fingerprints.
func runTiny(t *testing.T, shards int, seed int64) fingerprint {
	t.Helper()
	cfg := topo.TinyConfig()
	cfg.PacketPoolDebug = true
	part, err := topo.ComputePartition(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*sim.Engine, shards)
	for i := range engines {
		engines[i] = sim.NewEngine(seed)
	}
	comps := make([]map[pkt.FlowID]sim.Time, shards)
	for i := range comps {
		m := make(map[pkt.FlowID]sim.Time)
		comps[i] = m
	}
	cl, err := topo.BuildSharded(engines, part, cfg, dtFactory,
		func(shard int) host.CompletionHandler {
			m := comps[shard]
			return func(id pkt.FlowID, at sim.Time) { m[id] = at }
		})
	if err != nil {
		t.Fatal(err)
	}

	n := cl.NumHosts()
	for i := 0; i < n; i++ {
		cl.StartFlow(&transport.Flow{
			ID: pkt.FlowID(i + 1), Src: i, Dst: (i + n/2) % n, Size: 50_000,
			Priority: pkt.PrioLossless, Class: pkt.ClassLossless,
		})
	}

	c := ForCluster(cl)
	defer c.Close()
	c.Run(20 * sim.Millisecond)

	fp := fingerprint{completions: map[pkt.FlowID]sim.Time{}, gaps: cl.LosslessGaps()}
	for shard, m := range comps {
		for id, at := range m {
			if _, dup := fp.completions[id]; dup {
				t.Fatalf("flow %d completed on two shards", id)
			}
			// Completions are receiver-side: they land on the shard owning
			// the destination host.
			dst := (int(id-1) + n/2) % n
			if cl.Part.Host[dst] != shard {
				t.Fatalf("flow %d completed on shard %d, destination owned by %d",
					id, shard, cl.Part.Host[dst])
			}
			fp.completions[id] = at
		}
	}
	for _, sw := range cl.AllSwitches() {
		st := sw.Stats()
		fp.switches += fmt.Sprintf("%s rx=%d tx=%d ecn=%d pause=%d|",
			sw.Name(), st.RxPackets, st.TxPackets, st.ECNMarked, st.PauseFramesSent)
	}

	// Pool conservation across the Export/Import boundary: once the run
	// drains, no packet may remain checked out on any shard.
	for i, pl := range cl.Pools {
		if pl != nil && pl.Live() != 0 {
			t.Fatalf("shards=%d: shard %d pool has %d live packets after drain", shards, i, pl.Live())
		}
	}
	return fp
}

// TestShardedMatchesSequential: the tiny cluster must produce identical
// completions and switch counters at 1 and 2 shards (TinyConfig has two
// ToRs, so two is the maximum legal shard count).
func TestShardedMatchesSequential(t *testing.T) {
	seq := runTiny(t, 1, 42)
	par := runTiny(t, 2, 42)

	if len(seq.completions) == 0 {
		t.Fatal("no flows completed in the sequential run")
	}
	if len(seq.completions) != len(par.completions) {
		t.Fatalf("completions: %d sequential vs %d sharded", len(seq.completions), len(par.completions))
	}
	for id, at := range seq.completions {
		if par.completions[id] != at {
			t.Errorf("flow %d: completion %v sequential vs %v sharded", id, at, par.completions[id])
		}
	}
	if seq.switches != par.switches {
		t.Errorf("switch counters diverged:\n seq: %s\n par: %s", seq.switches, par.switches)
	}
	if seq.gaps != 0 || par.gaps != 0 {
		t.Errorf("lossless gaps: seq=%d par=%d", seq.gaps, par.gaps)
	}
}

// TestConductorBarrierTasks: tasks fire at exact multiples of their period,
// the same number of times regardless of shard count, after all events at
// the firing instant have executed.
func TestConductorBarrierTasks(t *testing.T) {
	for _, shards := range []int{1, 2} {
		cfg := topo.TinyConfig()
		part, err := topo.ComputePartition(cfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		engines := make([]*sim.Engine, shards)
		for i := range engines {
			engines[i] = sim.NewEngine(9)
		}
		cl, err := topo.BuildSharded(engines, part, cfg, dtFactory,
			func(int) host.CompletionHandler { return nil })
		if err != nil {
			t.Fatal(err)
		}
		cl.StartFlow(&transport.Flow{
			ID: 1, Src: 0, Dst: cl.NumHosts() - 1, Size: 100_000,
			Priority: pkt.PrioLossless, Class: pkt.ClassLossless,
		})

		c := ForCluster(cl)
		var fired []sim.Time
		c.AddTask(100*sim.Microsecond, func(now sim.Time) {
			fired = append(fired, now)
			for _, e := range cl.Engines {
				if e.Now() != now {
					t.Errorf("shards=%d: engine clock %v at task time %v", shards, e.Now(), now)
				}
			}
		})
		c.Run(sim.Millisecond)
		c.Close()

		if len(fired) != 10 {
			t.Fatalf("shards=%d: task fired %d times, want 10", shards, len(fired))
		}
		for i, at := range fired {
			if want := sim.Time(100*sim.Microsecond) * sim.Time(i+1); at != want {
				t.Errorf("shards=%d: firing %d at %v, want %v", shards, i, at, want)
			}
		}
		if c.Now() != sim.Time(sim.Millisecond) {
			t.Errorf("shards=%d: conductor clock %v after run, want 1ms", shards, c.Now())
		}
	}
}

// TestConductorStats: a 2-shard run with cross-pod traffic must both
// execute multiple epochs and deliver cross-shard frames through mailboxes.
func TestConductorStats(t *testing.T) {
	cfg := topo.TinyConfig()
	part, err := topo.ComputePartition(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	engines := []*sim.Engine{sim.NewEngine(3), sim.NewEngine(3)}
	cl, err := topo.BuildSharded(engines, part, cfg, dtFactory,
		func(int) host.CompletionHandler { return nil })
	if err != nil {
		t.Fatal(err)
	}
	cl.StartFlow(&transport.Flow{
		ID: 7, Src: 0, Dst: cl.NumHosts() - 1, Size: 100_000,
		Priority: pkt.PrioLossless, Class: pkt.ClassLossless,
	})
	c := ForCluster(cl)
	defer c.Close()
	c.Run(10 * sim.Millisecond)

	st := c.Stats()
	if st.Epochs < 2 {
		t.Errorf("Epochs = %d, want several", st.Epochs)
	}
	if st.Delivered == 0 {
		t.Error("no cross-shard frames delivered despite cross-pod traffic")
	}
	if c.Events() == 0 {
		t.Error("no events executed")
	}
}
