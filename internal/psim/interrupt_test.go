package psim

import (
	"sync/atomic"
	"testing"

	"l2bm/internal/host"
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/topo"
	"l2bm/internal/transport"
)

// TestConductorInterrupt: an interrupt poll flipping true abandons the run
// early — the conductor clock never reaches the horizon — for both the
// single-engine and sharded conductor paths. The poll must be goroutine-
// safe (shard workers check it concurrently), hence the atomic.
func TestConductorInterrupt(t *testing.T) {
	for _, shards := range []int{1, 2} {
		cfg := topo.TinyConfig()
		part, err := topo.ComputePartition(cfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		engines := make([]*sim.Engine, shards)
		for i := range engines {
			engines[i] = sim.NewEngine(11)
		}
		cl, err := topo.BuildSharded(engines, part, cfg, dtFactory,
			func(int) host.CompletionHandler { return nil })
		if err != nil {
			t.Fatal(err)
		}
		cl.StartFlow(&transport.Flow{
			ID: 1, Src: 0, Dst: cl.NumHosts() - 1, Size: 10_000_000,
			Priority: pkt.PrioLossless, Class: pkt.ClassLossless,
		})

		c := ForCluster(cl)
		var stop atomic.Bool
		c.AddTask(50*sim.Microsecond, func(now sim.Time) {
			if now >= sim.Time(200*sim.Microsecond) {
				stop.Store(true)
			}
		})
		c.SetInterrupt(64, func() bool { return stop.Load() })
		c.Run(100 * sim.Millisecond)
		c.Close()

		now := c.Now()
		if now >= sim.Time(100*sim.Millisecond) {
			t.Errorf("shards=%d: interrupt ignored, clock ran to %v", shards, now)
		}
		if now < sim.Time(200*sim.Microsecond) {
			t.Errorf("shards=%d: stopped at %v, before the poll could flip", shards, now)
		}
	}
}

// TestConductorInterruptObserverFree: an armed poll that never fires leaves
// the run byte-identical (event counts, clocks, epoch structure).
func TestConductorInterruptObserverFree(t *testing.T) {
	run := func(arm bool) (uint64, Stats) {
		cfg := topo.TinyConfig()
		part, err := topo.ComputePartition(cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		engines := []*sim.Engine{sim.NewEngine(5), sim.NewEngine(5)}
		cl, err := topo.BuildSharded(engines, part, cfg, dtFactory,
			func(int) host.CompletionHandler { return nil })
		if err != nil {
			t.Fatal(err)
		}
		cl.StartFlow(&transport.Flow{
			ID: 2, Src: 0, Dst: cl.NumHosts() - 1, Size: 200_000,
			Priority: pkt.PrioLossless, Class: pkt.ClassLossless,
		})
		c := ForCluster(cl)
		defer c.Close()
		if arm {
			c.SetInterrupt(16, func() bool { return false })
		}
		c.Run(5 * sim.Millisecond)
		return c.Events(), c.Stats()
	}
	offEvents, offStats := run(false)
	onEvents, onStats := run(true)
	if offEvents != onEvents || offStats != onStats {
		t.Errorf("armed-but-idle interrupt perturbed the run:\n off: events=%d %+v\n on:  events=%d %+v",
			offEvents, offStats, onEvents, onStats)
	}
}
