package workload

import (
	"fmt"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/transport"
)

// IncastConfig describes the paper's burst deep-dive workload (§IV-B): a
// Poisson stream of queries; each query picks a random target server that
// simultaneously requests RequestBytes/Fanout bytes from Fanout other
// random servers as lossless RDMA flows, over whatever background traffic
// is installed separately.
type IncastConfig struct {
	// Hosts are the servers participating as targets and responders.
	Hosts []int
	// Fanout is N, the number of concurrent responders per query.
	Fanout int
	// RequestBytes is the total query payload (paper: 1 MB, i.e. 25% of
	// the 4 MB switch buffer).
	RequestBytes int64
	// QueryRate is the mean number of queries per second (paper: 376
	// queries in 0.5 s ≈ 752/s).
	QueryRate float64
	// Window is how long queries are generated.
	Window sim.Duration
	// Priority and Class select the protocol (paper: lossless RDMA).
	Priority int
	Class    pkt.Class
	// Observer, if set, sees every flow before it starts.
	Observer FlowObserver
	// StreamName salts the random streams.
	StreamName string
	// IDs allocates flow IDs; share one across a simulation's generators.
	IDs *IDSource
	// IDTag, when non-zero, switches to structured flow IDs:
	// tag<<56 | queryID<<16 | fanout-index. Structured IDs are a pure
	// function of the query sequence, so replicated generators running in
	// lockstep on different shards mint identical IDs without a shared
	// counter. IDs is ignored when IDTag is set.
	IDTag byte
	// LaunchFilter, when set, limits which responder flows this instance
	// actually starts (Observer + StartFlow): only flows whose source host
	// satisfies the predicate launch here. Everything else — random draws,
	// query bookkeeping, flow→query registration — still happens, keeping
	// replicated instances on different shards in lockstep: each shard
	// launches only the responders it owns, while the target's shard (where
	// every response lands) can still match completions to the query.
	// LaunchFilter requires IDTag (replicas cannot share an IDSource).
	LaunchFilter func(src int) bool
}

// Validate reports configuration errors.
func (c *IncastConfig) Validate() error {
	switch {
	case len(c.Hosts) < 2:
		return fmt.Errorf("workload: incast needs at least 2 hosts")
	case c.Fanout < 1 || c.Fanout >= len(c.Hosts):
		return fmt.Errorf("workload: fanout %d must be in [1, len(hosts))", c.Fanout)
	case c.RequestBytes < int64(c.Fanout):
		return fmt.Errorf("workload: request of %d bytes too small for fanout %d", c.RequestBytes, c.Fanout)
	case c.QueryRate <= 0:
		return fmt.Errorf("workload: query rate must be positive")
	case c.Window <= 0:
		return fmt.Errorf("workload: window must be positive")
	default:
		return nil
	}
}

// Query tracks one fan-in request: it completes when all of its flows have
// completed, and its response time is the max FCT among them (the paper's
// "actual response latency").
type Query struct {
	// ID numbers queries in issue order.
	ID int
	// Target is the requesting server.
	Target int
	// Issued is when the query (and all its flows) started.
	Issued sim.Time
	// Done is when the last flow finished (valid once Complete).
	Done sim.Time
	// Complete reports whether every flow has finished.
	Complete bool

	pending int
}

// ResponseTime returns the query latency (valid once Complete).
func (q *Query) ResponseTime() sim.Duration { return q.Done - q.Issued }

// Incast drives the query workload.
type Incast struct {
	cfg  IncastConfig
	eng  *sim.Engine
	sink Sink

	queries []*Query
	flowToQ map[pkt.FlowID]*Query
	// FlowsGenerated counts responder flows started.
	FlowsGenerated uint64
}

// NewIncast builds the generator; call Install to schedule queries, and
// route flow completions to OnFlowComplete.
func NewIncast(eng *sim.Engine, sink Sink, cfg IncastConfig) (*Incast, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.LaunchFilter != nil && cfg.IDTag == 0 {
		return nil, fmt.Errorf("workload: incast LaunchFilter requires IDTag (structured IDs)")
	}
	if cfg.IDs == nil {
		cfg.IDs = NewIDSource()
	}
	return &Incast{cfg: cfg, eng: eng, sink: sink, flowToQ: make(map[pkt.FlowID]*Query)}, nil
}

// flowID mints the ID of the launched-th responder flow of query q.
func (g *Incast) flowID(q *Query, launched int) pkt.FlowID {
	if g.cfg.IDTag == 0 {
		return g.cfg.IDs.Next()
	}
	if q.ID >= 1<<40 || launched >= 1<<16 {
		panic(fmt.Sprintf("workload: structured incast flow ID overflow (query=%d idx=%d)", q.ID, launched))
	}
	return pkt.FlowID(uint64(g.cfg.IDTag)<<56 | uint64(q.ID)<<16 | uint64(launched))
}

// Install schedules the Poisson query stream. Queries are issued for
// cfg.Window of simulated time from the moment Install is called (elapsed
// window, not an absolute deadline — same fix as Poisson.Install).
func (g *Incast) Install() {
	meanGap := sim.Duration(float64(sim.Second) / g.cfg.QueryRate)
	arrivals := g.eng.Rand(g.cfg.StreamName + "/queries")
	picks := g.eng.Rand(g.cfg.StreamName + "/picks")

	start := g.eng.Now()
	var tick func()
	tick = func() {
		if g.eng.Now()-start >= g.cfg.Window {
			return
		}
		g.issue(picks)
		g.eng.Schedule(arrivals.ExpDuration(meanGap), tick)
	}
	g.eng.Schedule(arrivals.ExpDuration(meanGap), tick)
}

// issue launches one query: Fanout responders each send an equal shard to
// the target at the same instant (the paper's synchronized fan-in burst).
func (g *Incast) issue(picks *sim.Rand) {
	target := g.cfg.Hosts[picks.Intn(len(g.cfg.Hosts))]
	q := &Query{ID: len(g.queries), Target: target, Issued: g.eng.Now(), pending: g.cfg.Fanout}
	g.queries = append(g.queries, q)

	shard := g.cfg.RequestBytes / int64(g.cfg.Fanout)
	perm := picks.Perm(len(g.cfg.Hosts))
	launched := 0
	for _, idx := range perm {
		responder := g.cfg.Hosts[idx]
		if responder == target {
			continue
		}
		f := &transport.Flow{
			ID:       g.flowID(q, launched),
			Src:      responder,
			Dst:      target,
			Size:     shard,
			Priority: g.cfg.Priority,
			Class:    g.cfg.Class,
			Start:    g.eng.Now(),
		}
		g.flowToQ[f.ID] = q
		g.FlowsGenerated++
		if g.cfg.LaunchFilter == nil || g.cfg.LaunchFilter(responder) {
			if g.cfg.Observer != nil {
				g.cfg.Observer(f)
			}
			g.sink.StartFlow(f)
		}
		launched++
		if launched == g.cfg.Fanout {
			break
		}
	}
}

// OnFlowComplete notifies the generator that a flow finished; unknown flows
// (background traffic) are ignored.
func (g *Incast) OnFlowComplete(id pkt.FlowID, at sim.Time) {
	q, ok := g.flowToQ[id]
	if !ok {
		return
	}
	delete(g.flowToQ, id)
	q.pending--
	if at > q.Done {
		q.Done = at
	}
	if q.pending == 0 {
		q.Complete = true
	}
}

// Queries returns all issued queries (completed or not).
func (g *Incast) Queries() []*Query { return g.queries }

// MergeCompletedResponseTimes combines the views of replicated incast
// generators (one per shard, identical draws, disjoint LaunchFilters) into
// the response times a single generator would have reported: each replica
// only hears the completions of the responders it owns, so a query is
// complete when the replicas' completion counts sum to the fanout, and its
// Done is the max over replicas. Panics if the replicas disagree on the
// query sequence — they run in lockstep by construction.
func MergeCompletedResponseTimes(gens ...*Incast) []sim.Duration {
	if len(gens) == 0 {
		return nil
	}
	if len(gens) == 1 {
		return gens[0].CompletedResponseTimes()
	}
	first := gens[0]
	for _, g := range gens[1:] {
		if len(g.queries) != len(first.queries) {
			panic(fmt.Sprintf("workload: incast replicas issued %d vs %d queries",
				len(g.queries), len(first.queries)))
		}
	}
	var out []sim.Duration
	for i, q0 := range first.queries {
		fanout := first.cfg.Fanout
		seen := 0
		done := sim.Time(0)
		for _, g := range gens {
			q := g.queries[i]
			if q.ID != q0.ID || q.Target != q0.Target || q.Issued != q0.Issued {
				panic(fmt.Sprintf("workload: incast replicas diverged at query %d", i))
			}
			seen += fanout - q.pending
			if q.Done > done {
				done = q.Done
			}
		}
		if seen == fanout {
			out = append(out, done-q0.Issued)
		}
	}
	return out
}

// CompletedResponseTimes returns the response times of completed queries.
func (g *Incast) CompletedResponseTimes() []sim.Duration {
	var out []sim.Duration
	for _, q := range g.queries {
		if q.Complete {
			out = append(out, q.ResponseTime())
		}
	}
	return out
}
