package workload

import (
	"fmt"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/transport"
)

// Sink receives generated flows; topo.Cluster satisfies it.
type Sink interface {
	StartFlow(f *transport.Flow)
}

// FlowObserver is notified as each flow is created, before it starts —
// the hook the metrics layer uses to record start times and ideal FCTs.
type FlowObserver func(f *transport.Flow)

// IDSource hands out run-unique flow IDs. All generators feeding one
// simulation must share one IDSource; keeping it per-run (rather than a
// process global) makes flow IDs — and therefore ECMP path choices —
// reproducible regardless of what else ran in the process.
type IDSource struct {
	next uint64
}

// NewIDSource returns a fresh allocator starting at 1.
func NewIDSource() *IDSource { return &IDSource{} }

// Next returns a fresh flow ID.
func (s *IDSource) Next() pkt.FlowID {
	s.next++
	return pkt.FlowID(s.next)
}

// PoissonConfig describes one all-to-all Poisson traffic class (the paper's
// web-search workload): every host in Sources independently generates flows
// with exponential inter-arrival gaps sized so its average offered rate is
// Load × HostRate, each flow targeting a uniformly random host in Dests.
type PoissonConfig struct {
	// Sources are the generating host IDs.
	Sources []int
	// Dests are candidate destinations (the source itself is excluded).
	Dests []int
	// Load is the offered load as a fraction of HostRate.
	Load float64
	// HostRate is the access-link rate in bits/s.
	HostRate int64
	// Sizes is the flow-size distribution.
	Sizes *CDF
	// Priority and Class select the protocol (lossless = DCQCN RDMA,
	// lossy = DCTCP).
	Priority int
	Class    pkt.Class
	// Window is how long generation lasts; flows started inside the window
	// run to completion afterwards.
	Window sim.Duration
	// Observer, if set, sees every flow before it starts.
	Observer FlowObserver
	// Forbid, if set, vetoes (src, dst) pairs — e.g. the motivation
	// experiment only sends between servers under different leaf switches.
	Forbid func(src, dst int) bool
	// StreamName salts this generator's random streams, letting several
	// generators coexist independently.
	StreamName string
	// IDs allocates flow IDs; generators sharing a simulation must share
	// one. A private allocator is used when nil.
	IDs *IDSource
	// IDTag, when non-zero, switches the generator to structured flow IDs:
	// tag<<56 | src<<32 | per-source-sequence. Structured IDs depend only
	// on (tag, source host, how-manyth flow of that source) — never on how
	// launches from different sources interleave globally — which is what
	// lets a sharded run, where each shard drives only its own sources,
	// mint exactly the IDs the sequential run mints. Tags must be unique
	// per generator in a run (flow IDs seed ECMP hashing, so collisions
	// would alias paths); IDs is ignored when IDTag is set.
	IDTag byte
}

// Validate reports configuration errors.
func (c *PoissonConfig) Validate() error {
	switch {
	case len(c.Sources) == 0:
		return fmt.Errorf("workload: no source hosts")
	case len(c.Dests) < 2:
		return fmt.Errorf("workload: need at least 2 destination candidates")
	case c.Load <= 0:
		return fmt.Errorf("workload: load %v must be positive", c.Load)
	case c.HostRate <= 0:
		return fmt.Errorf("workload: host rate must be positive")
	case c.Sizes == nil:
		return fmt.Errorf("workload: no size distribution")
	case c.Window <= 0:
		return fmt.Errorf("workload: window must be positive")
	default:
		return nil
	}
}

// Poisson drives one Poisson traffic class on a cluster.
type Poisson struct {
	cfg  PoissonConfig
	eng  *sim.Engine
	sink Sink

	// seqBySrc numbers each source's flows for structured IDs (IDTag != 0).
	seqBySrc map[int]uint64

	// Generated counts flows started.
	Generated uint64
	// BytesOffered sums generated flow sizes.
	BytesOffered int64
}

// NewPoisson builds the generator; call Install to schedule traffic.
func NewPoisson(eng *sim.Engine, sink Sink, cfg PoissonConfig) (*Poisson, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.IDs == nil {
		cfg.IDs = NewIDSource()
	}
	return &Poisson{cfg: cfg, eng: eng, sink: sink, seqBySrc: make(map[int]uint64)}, nil
}

// nextID mints the next flow ID for src: structured when IDTag is set,
// from the shared sequential allocator otherwise.
func (g *Poisson) nextID(src int) pkt.FlowID {
	if g.cfg.IDTag == 0 {
		return g.cfg.IDs.Next()
	}
	g.seqBySrc[src]++
	seq := g.seqBySrc[src]
	if src < 0 || src >= 1<<24 || seq >= 1<<32 {
		panic(fmt.Sprintf("workload: structured flow ID overflow (src=%d seq=%d)", src, seq))
	}
	return pkt.FlowID(uint64(g.cfg.IDTag)<<56 | uint64(src)<<32 | seq)
}

// Install schedules the first arrival of every source host. The mean
// inter-arrival gap per host is meanSize·8 / (Load·HostRate). Traffic is
// generated for cfg.Window of simulated time *from the moment Install is
// called*, so a generator installed mid-run (warm-up phases, staged
// scenarios) still offers its full window. (The guard used to compare
// Now() against Window as an absolute deadline, silently truncating — or
// entirely skipping — late-installed generators.)
func (g *Poisson) Install() {
	meanGap := sim.Duration(g.cfg.Sizes.Mean() * 8 / (g.cfg.Load * float64(g.cfg.HostRate)) * float64(sim.Second))
	if meanGap < 1 {
		meanGap = 1
	}
	start := g.eng.Now()
	for _, src := range g.cfg.Sources {
		src := src
		arrivals := g.eng.Rand(fmt.Sprintf("%s/arrivals/%d", g.cfg.StreamName, src))
		sizes := g.eng.Rand(fmt.Sprintf("%s/sizes/%d", g.cfg.StreamName, src))
		dests := g.eng.Rand(fmt.Sprintf("%s/dests/%d", g.cfg.StreamName, src))

		var tick func()
		tick = func() {
			if g.eng.Now()-start >= g.cfg.Window {
				return
			}
			g.launch(src, sizes, dests)
			g.eng.Schedule(arrivals.ExpDuration(meanGap), tick)
		}
		g.eng.Schedule(arrivals.ExpDuration(meanGap), tick)
	}
}

// launch creates and starts one flow from src.
func (g *Poisson) launch(src int, sizes, dests *sim.Rand) {
	dst := src
	for tries := 0; dst == src || (g.cfg.Forbid != nil && g.cfg.Forbid(src, dst)); tries++ {
		if tries > 10_000 {
			panic("workload: Forbid rejects every destination")
		}
		dst = g.cfg.Dests[dests.Intn(len(g.cfg.Dests))]
	}
	f := &transport.Flow{
		ID:       g.nextID(src),
		Src:      src,
		Dst:      dst,
		Size:     g.cfg.Sizes.Sample(sizes),
		Priority: g.cfg.Priority,
		Class:    g.cfg.Class,
		Start:    g.eng.Now(),
	}
	g.Generated++
	g.BytesOffered += f.Size
	if g.cfg.Observer != nil {
		g.cfg.Observer(f)
	}
	g.sink.StartFlow(f)
}
