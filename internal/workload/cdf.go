// Package workload generates the paper's two traffic patterns: all-to-all
// Poisson flows drawn from the heavy-tailed web-search flow-size CDF, and
// incast (fan-in) queries where one requester pulls a file simultaneously
// from N responders over high-load background traffic.
package workload

import (
	"fmt"
	"sort"

	"l2bm/internal/sim"
)

// CDFPoint is one breakpoint of a flow-size distribution: P is the
// cumulative probability of a flow being at most Bytes long.
type CDFPoint struct {
	Bytes int64
	P     float64
}

// CDF is a piecewise-linear flow-size distribution sampled by inverse
// transform.
type CDF struct {
	points []CDFPoint
}

// NewCDF validates and builds a distribution from breakpoints. Points must
// be sorted by size with nondecreasing probability ending at 1.
func NewCDF(points []CDFPoint) (*CDF, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("workload: CDF needs at least 2 points, got %d", len(points))
	}
	for i, p := range points {
		if p.Bytes <= 0 && !(i == 0 && p.Bytes == 0) {
			return nil, fmt.Errorf("workload: CDF point %d has invalid size %d", i, p.Bytes)
		}
		if p.P < 0 || p.P > 1 {
			return nil, fmt.Errorf("workload: CDF point %d has invalid probability %v", i, p.P)
		}
		if i > 0 && (p.Bytes <= points[i-1].Bytes || p.P < points[i-1].P) {
			return nil, fmt.Errorf("workload: CDF point %d not monotone", i)
		}
	}
	if last := points[len(points)-1]; last.P != 1 {
		return nil, fmt.Errorf("workload: CDF must end at probability 1, got %v", last.P)
	}
	cp := make([]CDFPoint, len(points))
	copy(cp, points)
	return &CDF{points: cp}, nil
}

// MustCDF is NewCDF for static tables.
func MustCDF(points []CDFPoint) *CDF {
	c, err := NewCDF(points)
	if err != nil {
		panic(err)
	}
	return c
}

// WebSearchCDF returns the web-search flow-size distribution (Alizadeh et
// al., DCTCP, SIGCOMM 2010) the paper generates its "realistic workload
// heavy tailed" from: mostly sub-100 KB query traffic with multi-megabyte
// background elephants carrying most bytes.
func WebSearchCDF() *CDF {
	return MustCDF([]CDFPoint{
		{0, 0},
		{6_000, 0.15},
		{13_000, 0.2},
		{19_000, 0.3},
		{33_000, 0.4},
		{53_000, 0.53},
		{133_000, 0.6},
		{667_000, 0.7},
		{1_333_000, 0.8},
		{3_333_000, 0.9},
		{6_667_000, 0.97},
		{20_000_000, 1.0},
	})
}

// DataMiningCDF returns the data-mining flow-size distribution (Greenberg
// et al., VL2, SIGCOMM 2009), the other workload customary in DCN buffer
// studies: even more extreme than web search — the vast majority of flows
// are a few KB while a tiny fraction of multi-MB flows carries almost all
// bytes. Provided for experiments beyond the paper's web-search setup.
func DataMiningCDF() *CDF {
	return MustCDF([]CDFPoint{
		{0, 0},
		{100, 0.1},
		{180, 0.2},
		{250, 0.3},
		{560, 0.4},
		{900, 0.5},
		{1_100, 0.6},
		{1_870, 0.7},
		{3_160, 0.8},
		{10_000, 0.9},
		{400_000, 0.95},
		{3_160_000, 0.98},
		{100_000_000, 1.0},
	})
}

// Sample draws a flow size by inverse-transform sampling with linear
// interpolation between breakpoints. Sizes are at least 1 byte.
func (c *CDF) Sample(r *sim.Rand) int64 {
	u := r.Float64()
	i := sort.Search(len(c.points), func(i int) bool { return c.points[i].P >= u })
	if i == 0 {
		i = 1
	}
	lo, hi := c.points[i-1], c.points[i]
	var size int64
	if hi.P == lo.P {
		size = hi.Bytes
	} else {
		frac := (u - lo.P) / (hi.P - lo.P)
		size = lo.Bytes + int64(frac*float64(hi.Bytes-lo.Bytes))
	}
	if size < 1 {
		size = 1
	}
	return size
}

// Mean returns the distribution's expected flow size in bytes (trapezoidal:
// sizes interpolate linearly between breakpoints, so each segment
// contributes its probability mass times its midpoint size).
func (c *CDF) Mean() float64 {
	var mean float64
	for i := 1; i < len(c.points); i++ {
		lo, hi := c.points[i-1], c.points[i]
		mass := hi.P - lo.P
		mean += mass * float64(lo.Bytes+hi.Bytes) / 2
	}
	return mean
}

// MaxBytes returns the largest possible sample.
func (c *CDF) MaxBytes() int64 { return c.points[len(c.points)-1].Bytes }
