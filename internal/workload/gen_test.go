package workload

import (
	"math"
	"testing"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/transport"
)

// captureSink records started flows without running a network.
type captureSink struct {
	flows []*transport.Flow
}

func (s *captureSink) StartFlow(f *transport.Flow) { s.flows = append(s.flows, f) }

func hostsRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func poissonCfg() PoissonConfig {
	return PoissonConfig{
		Sources:    hostsRange(8),
		Dests:      hostsRange(8),
		Load:       0.5,
		HostRate:   25e9,
		Sizes:      WebSearchCDF(),
		Priority:   pkt.PrioLossy,
		Class:      pkt.ClassLossy,
		Window:     20 * sim.Millisecond,
		StreamName: "test",
	}
}

func TestPoissonOfferedLoad(t *testing.T) {
	eng := sim.NewEngine(11)
	sink := &captureSink{}
	cfg := poissonCfg()
	cfg.Window = 100 * sim.Millisecond
	g, err := NewPoisson(eng, sink, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Install()
	eng.RunAll()

	// Offered bits per host per second ≈ load × rate.
	perHost := float64(g.BytesOffered) * 8 / float64(len(cfg.Sources)) / cfg.Window.Seconds()
	want := cfg.Load * float64(cfg.HostRate)
	if math.Abs(perHost-want)/want > 0.25 {
		t.Errorf("offered load %v bps/host, want within 25%% of %v", perHost, want)
	}
	if g.Generated == 0 || uint64(len(sink.flows)) != g.Generated {
		t.Errorf("generated %d, sink got %d", g.Generated, len(sink.flows))
	}
}

func TestPoissonNeverSelfSends(t *testing.T) {
	eng := sim.NewEngine(11)
	sink := &captureSink{}
	g, err := NewPoisson(eng, sink, poissonCfg())
	if err != nil {
		t.Fatal(err)
	}
	g.Install()
	eng.RunAll()
	for _, f := range sink.flows {
		if f.Src == f.Dst {
			t.Fatalf("flow %d sends to itself", f.ID)
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("generated invalid flow: %v", err)
		}
	}
}

func TestPoissonStopsAtWindow(t *testing.T) {
	eng := sim.NewEngine(11)
	sink := &captureSink{}
	cfg := poissonCfg()
	var lastGen sim.Time
	cfg.Observer = func(*transport.Flow) { lastGen = eng.Now() }
	g, _ := NewPoisson(eng, sink, cfg)
	g.Install()
	eng.RunAll()
	if g.Generated == 0 {
		t.Fatal("nothing generated")
	}
	if lastGen >= cfg.Window {
		t.Errorf("flow generated at %v, at/after window %v", lastGen, cfg.Window)
	}
}

func TestPoissonObserverSeesEveryFlow(t *testing.T) {
	eng := sim.NewEngine(11)
	sink := &captureSink{}
	cfg := poissonCfg()
	seen := 0
	cfg.Observer = func(f *transport.Flow) { seen++ }
	g, _ := NewPoisson(eng, sink, cfg)
	g.Install()
	eng.RunAll()
	if uint64(seen) != g.Generated {
		t.Errorf("observer saw %d of %d flows", seen, g.Generated)
	}
}

func TestPoissonValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	tests := []struct {
		name   string
		mutate func(*PoissonConfig)
	}{
		{"no sources", func(c *PoissonConfig) { c.Sources = nil }},
		{"one dest", func(c *PoissonConfig) { c.Dests = []int{1} }},
		{"zero load", func(c *PoissonConfig) { c.Load = 0 }},
		{"zero rate", func(c *PoissonConfig) { c.HostRate = 0 }},
		{"no sizes", func(c *PoissonConfig) { c.Sizes = nil }},
		{"zero window", func(c *PoissonConfig) { c.Window = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := poissonCfg()
			tt.mutate(&cfg)
			if _, err := NewPoisson(eng, &captureSink{}, cfg); err == nil {
				t.Error("want error")
			}
		})
	}
}

func incastCfg() IncastConfig {
	return IncastConfig{
		Hosts:        hostsRange(16),
		Fanout:       5,
		RequestBytes: 1 << 20,
		QueryRate:    752,
		Window:       50 * sim.Millisecond,
		Priority:     pkt.PrioLossless,
		Class:        pkt.ClassLossless,
		StreamName:   "incast-test",
	}
}

func TestIncastQueryShape(t *testing.T) {
	eng := sim.NewEngine(13)
	sink := &captureSink{}
	g, err := NewIncast(eng, sink, incastCfg())
	if err != nil {
		t.Fatal(err)
	}
	g.Install()
	eng.RunAll()

	if len(g.Queries()) == 0 {
		t.Fatal("no queries issued")
	}
	if g.FlowsGenerated != uint64(len(g.Queries())*5) {
		t.Errorf("flows = %d, want 5 per query (%d queries)", g.FlowsGenerated, len(g.Queries()))
	}
	// Every flow's size is the shard and none self-sends.
	shard := int64(1<<20) / 5
	byQuery := make(map[int][]*transport.Flow)
	i := 0
	for _, q := range g.Queries() {
		for j := 0; j < 5; j++ {
			f := sink.flows[i]
			i++
			if f.Size != shard {
				t.Fatalf("flow size %d, want shard %d", f.Size, shard)
			}
			if f.Dst != q.Target {
				t.Fatalf("flow targets %d, want query target %d", f.Dst, q.Target)
			}
			if f.Src == q.Target {
				t.Fatal("responder equals target")
			}
			byQuery[q.ID] = append(byQuery[q.ID], f)
		}
	}
	// Responders within a query are distinct.
	for id, fs := range byQuery {
		seen := map[int]bool{}
		for _, f := range fs {
			if seen[f.Src] {
				t.Fatalf("query %d reuses responder %d", id, f.Src)
			}
			seen[f.Src] = true
		}
	}
}

func TestIncastQueryRate(t *testing.T) {
	eng := sim.NewEngine(13)
	cfg := incastCfg()
	cfg.Window = 500 * sim.Millisecond
	g, _ := NewIncast(eng, &captureSink{}, cfg)
	g.Install()
	eng.RunAll()

	// Paper: 376 requests in 0.5 s at λ=752/s.
	got := float64(len(g.Queries()))
	if math.Abs(got-376)/376 > 0.2 {
		t.Errorf("queries = %v in 0.5s, want ≈376", got)
	}
}

func TestIncastCompletionTracking(t *testing.T) {
	eng := sim.NewEngine(13)
	sink := &captureSink{}
	cfg := incastCfg()
	cfg.QueryRate = 100
	cfg.Window = 10 * sim.Millisecond
	g, _ := NewIncast(eng, sink, cfg)
	g.Install()
	eng.RunAll()
	if len(g.Queries()) == 0 {
		t.Skip("no queries in short window")
	}

	// Complete all flows of the first query with staggered times.
	q := g.Queries()[0]
	var qFlows []*transport.Flow
	for _, f := range sink.flows {
		if f.Dst == q.Target && len(qFlows) < 5 {
			qFlows = append(qFlows, f)
		}
	}
	base := eng.Now()
	for i, f := range qFlows {
		g.OnFlowComplete(f.ID, base+sim.Duration(i)*sim.Microsecond)
	}
	if !q.Complete {
		t.Fatal("query not complete after all flows finished")
	}
	if q.Done != base+4*sim.Microsecond {
		t.Errorf("query done at %v, want max FCT %v", q.Done, base+4*sim.Microsecond)
	}
	if got := len(g.CompletedResponseTimes()); got != 1 {
		t.Errorf("completed queries = %d, want 1", got)
	}
	// Unknown flow IDs are ignored.
	g.OnFlowComplete(999_999, base)
}

func TestIncastValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	tests := []struct {
		name   string
		mutate func(*IncastConfig)
	}{
		{"one host", func(c *IncastConfig) { c.Hosts = []int{0} }},
		{"fanout too big", func(c *IncastConfig) { c.Fanout = 16 }},
		{"fanout zero", func(c *IncastConfig) { c.Fanout = 0 }},
		{"tiny request", func(c *IncastConfig) { c.RequestBytes = 2 }},
		{"zero rate", func(c *IncastConfig) { c.QueryRate = 0 }},
		{"zero window", func(c *IncastConfig) { c.Window = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := incastCfg()
			tt.mutate(&cfg)
			if _, err := NewIncast(eng, &captureSink{}, cfg); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestIDSourceUniqueAndFresh(t *testing.T) {
	ids := NewIDSource()
	seen := make(map[pkt.FlowID]bool)
	for i := 0; i < 1000; i++ {
		id := ids.Next()
		if seen[id] {
			t.Fatal("duplicate flow ID")
		}
		seen[id] = true
	}
	// A fresh source restarts, making runs independent of process history.
	if NewIDSource().Next() != 1 {
		t.Error("fresh IDSource should start at 1")
	}
}

func TestPoissonInstallMidRunGeneratesFullWindow(t *testing.T) {
	// Regression: the tick guard used to compare Now() against Window as an
	// ABSOLUTE deadline, so a generator installed at t >= Window generated
	// nothing, and one installed at 0 < t < Window got a truncated span.
	// The window is elapsed-since-install.
	eng := sim.NewEngine(11)
	sink := &captureSink{}
	cfg := poissonCfg()
	cfg.Window = 5 * sim.Millisecond
	install := 3 * cfg.Window // well past the old absolute deadline

	var first, last sim.Time = -1, -1
	cfg.Observer = func(*transport.Flow) {
		if first < 0 {
			first = eng.Now()
		}
		last = eng.Now()
	}
	g, err := NewPoisson(eng, sink, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.Schedule(sim.Duration(install), func() { g.Install() })
	eng.RunAll()

	if g.Generated == 0 {
		t.Fatal("mid-run install generated nothing (absolute-window bug)")
	}
	if first < install {
		t.Errorf("first flow at %v, before install at %v", first, install)
	}
	if last >= install+sim.Time(cfg.Window) {
		t.Errorf("flow generated at %v, at/after elapsed window end %v", last, install+sim.Time(cfg.Window))
	}
	// The generator must use its whole window, not a truncated remainder:
	// expect activity well into the second half of the elapsed window.
	if last < install+sim.Time(cfg.Window/2) {
		t.Errorf("last flow at %v: window truncated (ends %v)", last, install+sim.Time(cfg.Window))
	}
}

func TestIncastInstallMidRunGeneratesFullWindow(t *testing.T) {
	eng := sim.NewEngine(7)
	sink := &captureSink{}
	window := 5 * sim.Millisecond
	install := 2 * window
	g, err := NewIncast(eng, sink, IncastConfig{
		Hosts:        hostsRange(8),
		Fanout:       4,
		RequestBytes: 1 << 16,
		QueryRate:    5000,
		Window:       window,
		Priority:     pkt.PrioLossless,
		Class:        pkt.ClassLossless,
		StreamName:   "incast-midrun",
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Schedule(sim.Duration(install), func() { g.Install() })
	eng.RunAll()
	if g.FlowsGenerated == 0 {
		t.Fatal("mid-run incast install generated nothing (absolute-window bug)")
	}
	for _, q := range g.Queries() {
		if q.Issued < install || q.Issued >= install+sim.Time(window) {
			t.Errorf("query issued at %v, outside [%v, %v)", q.Issued, install, install+sim.Time(window))
		}
	}
}
