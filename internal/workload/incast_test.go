package workload

import (
	"reflect"
	"testing"

	"l2bm/internal/sim"
)

// replica builds a synthetic Incast view: one generator's partial knowledge
// of a shared query sequence, as the sharded runner sees it.
func replica(fanout int, qs ...*Query) *Incast {
	return &Incast{cfg: IncastConfig{Fanout: fanout}, queries: qs}
}

// TestMergeCompletedResponseTimes: two replicas that each heard half of a
// query's completions must reconstruct the single-generator answer — the
// query counts as complete exactly when the per-replica completion counts
// sum to the fanout, with Done = max over replicas.
func TestMergeCompletedResponseTimes(t *testing.T) {
	// Query 0: fanout 4; replica A heard 3 completions (last at t=50),
	// replica B heard 1 (at t=70). Together: complete, done at 70.
	// Query 1: fanout 4; A heard 2, B heard 1 → 3 of 4, incomplete.
	a := replica(4,
		&Query{ID: 0, Target: 7, Issued: 10, Done: 50, pending: 1},
		&Query{ID: 1, Target: 3, Issued: 20, Done: 90, pending: 2},
	)
	b := replica(4,
		&Query{ID: 0, Target: 7, Issued: 10, Done: 70, pending: 3},
		&Query{ID: 1, Target: 3, Issued: 20, Done: 0, pending: 3},
	)
	got := MergeCompletedResponseTimes(a, b)
	want := []sim.Duration{60} // 70 - 10
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merged response times = %v, want %v", got, want)
	}
}

// TestMergeCompletedResponseTimesSingle: a single replica passes through
// its own completed queries untouched.
func TestMergeCompletedResponseTimesSingle(t *testing.T) {
	g := replica(2,
		&Query{ID: 0, Issued: 5, Done: 25, Complete: true},
		&Query{ID: 1, Issued: 10, Done: 0, pending: 2},
	)
	got := MergeCompletedResponseTimes(g)
	want := []sim.Duration{20}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("single-replica merge = %v, want %v", got, want)
	}
	if MergeCompletedResponseTimes() != nil {
		t.Errorf("zero-replica merge should be nil")
	}
}

// TestMergeCompletedResponseTimesDivergence: replicas that disagree on the
// query sequence indicate a lost-lockstep bug and must panic loudly rather
// than report silently wrong latencies.
func TestMergeCompletedResponseTimesDivergence(t *testing.T) {
	a := replica(2, &Query{ID: 0, Target: 1, Issued: 10})
	b := replica(2, &Query{ID: 0, Target: 2, Issued: 10})
	defer func() {
		if recover() == nil {
			t.Errorf("diverged replicas did not panic")
		}
	}()
	MergeCompletedResponseTimes(a, b)
}
