package workload

import (
	"math"
	"testing"

	"l2bm/internal/sim"
)

func TestWebSearchCDFShape(t *testing.T) {
	c := WebSearchCDF()
	if c.MaxBytes() != 20_000_000 {
		t.Errorf("max = %d, want 20MB tail", c.MaxBytes())
	}
	mean := c.Mean()
	// The web-search mean is ~1.6 MB (heavy tail dominates).
	if mean < 500_000 || mean > 3_000_000 {
		t.Errorf("mean = %v, implausible for web search", mean)
	}
}

func TestCDFSampleBoundsAndDeterminism(t *testing.T) {
	c := WebSearchCDF()
	r1 := sim.NewSource(5).Stream("s")
	r2 := sim.NewSource(5).Stream("s")
	for i := 0; i < 10_000; i++ {
		a, b := c.Sample(r1), c.Sample(r2)
		if a != b {
			t.Fatal("sampling not deterministic")
		}
		if a < 1 || a > c.MaxBytes() {
			t.Fatalf("sample %d out of bounds", a)
		}
	}
}

func TestCDFEmpiricalMeanMatches(t *testing.T) {
	c := WebSearchCDF()
	r := sim.NewSource(9).Stream("mean")
	var sum float64
	const n = 300_000
	for i := 0; i < n; i++ {
		sum += float64(c.Sample(r))
	}
	got := sum / n
	want := c.Mean()
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("empirical mean %v vs analytic %v (>5%% off)", got, want)
	}
}

func TestCDFHeavyTail(t *testing.T) {
	// Most flows are small but most bytes are in big flows.
	c := WebSearchCDF()
	r := sim.NewSource(3).Stream("tail")
	small, smallBytes, totalBytes := 0, int64(0), int64(0)
	const n = 100_000
	for i := 0; i < n; i++ {
		s := c.Sample(r)
		totalBytes += s
		if s <= 100_000 {
			small++
			smallBytes += s
		}
	}
	if frac := float64(small) / n; frac < 0.5 {
		t.Errorf("small-flow fraction = %v, want majority", frac)
	}
	if byteFrac := float64(smallBytes) / float64(totalBytes); byteFrac > 0.2 {
		t.Errorf("small flows carry %v of bytes, want heavy tail (<20%%)", byteFrac)
	}
}

func TestNewCDFValidation(t *testing.T) {
	tests := []struct {
		name   string
		points []CDFPoint
	}{
		{"too few", []CDFPoint{{100, 1}}},
		{"not ending at 1", []CDFPoint{{0, 0}, {100, 0.9}}},
		{"non-monotone size", []CDFPoint{{0, 0}, {100, 0.5}, {50, 1}}},
		{"non-monotone prob", []CDFPoint{{0, 0}, {100, 0.5}, {200, 0.4}, {300, 1}}},
		{"bad probability", []CDFPoint{{0, -0.1}, {100, 1}}},
		{"negative size", []CDFPoint{{-5, 0}, {100, 1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewCDF(tt.points); err == nil {
				t.Error("NewCDF should reject", tt.name)
			}
		})
	}
	if _, err := NewCDF([]CDFPoint{{0, 0}, {1000, 1}}); err != nil {
		t.Errorf("valid CDF rejected: %v", err)
	}
}

func TestMustCDFPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCDF should panic on invalid input")
		}
	}()
	MustCDF([]CDFPoint{{100, 0.5}})
}

func TestUniformTwoPointCDF(t *testing.T) {
	c := MustCDF([]CDFPoint{{0, 0}, {1000, 1}})
	r := sim.NewSource(1).Stream("u")
	var sum float64
	const n = 100_000
	for i := 0; i < n; i++ {
		sum += float64(c.Sample(r))
	}
	if mean := sum / n; math.Abs(mean-500) > 15 {
		t.Errorf("uniform(0,1000) empirical mean %v, want ≈500", mean)
	}
	if got := c.Mean(); got != 500 {
		t.Errorf("analytic mean = %v, want 500", got)
	}
}

func TestDataMiningCDFShape(t *testing.T) {
	c := DataMiningCDF()
	if c.MaxBytes() != 100_000_000 {
		t.Errorf("max = %d, want 100MB tail", c.MaxBytes())
	}
	// Data mining is dominated by tiny flows: the median sample is < 1KB.
	r := sim.NewSource(4).Stream("dm")
	small := 0
	const n = 50_000
	for i := 0; i < n; i++ {
		if c.Sample(r) <= 1000 {
			small++
		}
	}
	if frac := float64(small) / n; frac < 0.5 {
		t.Errorf("sub-1KB fraction = %v, want majority", frac)
	}
	// Yet the mean is pulled up by the elephants.
	if c.Mean() < 100_000 {
		t.Errorf("mean = %v, want elephant-dominated (>100KB)", c.Mean())
	}
}
