package switchsim

import (
	"testing"

	"l2bm/internal/core"
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
)

// TestInvariantsHoldDuringHybridRun audits the MMU periodically while a
// mixed workload churns through the switch under every policy.
func TestInvariantsHoldDuringHybridRun(t *testing.T) {
	policies := []core.Policy{
		core.NewDT(), core.NewDT2(), core.NewABM(),
		core.NewDefaultL2BM(), core.NewEDT(), core.NewTDT(),
	}
	for _, pol := range policies {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			r := newRig(t, 5, DefaultConfig(), pol, 25e9, sim.Microsecond)
			for src := 0; src < 4; src++ {
				r.send(src, 4, 150, pkt.PrioLossless, pkt.ClassLossless)
				r.send(src, 4, 150, pkt.PrioLossy, pkt.ClassLossy)
			}
			// Audit every 5 µs until the switch drains (the audit chain
			// must terminate or RunAll never empties the event queue).
			var audit func()
			failures := 0
			audit = func() {
				if err := r.sw.CheckInvariants(); err != nil {
					failures++
					if failures == 1 {
						t.Error(err)
					}
					return
				}
				if r.eng.Now() > 50*sim.Microsecond && r.sw.Occupancy() == 0 {
					return
				}
				r.eng.Schedule(5*sim.Microsecond, audit)
			}
			r.eng.Schedule(5*sim.Microsecond, audit)
			r.eng.RunAll()

			if err := r.sw.CheckInvariants(); err != nil {
				t.Errorf("final audit: %v", err)
			}
		})
	}
}

func TestInvariantsDetectCorruption(t *testing.T) {
	r := newRig(t, 3, DefaultConfig(), core.NewDT(), 25e9, 0)
	r.send(0, 2, 5, pkt.PrioLossy, pkt.ClassLossy)
	r.eng.Run(10 * sim.Microsecond)

	if err := r.sw.CheckInvariants(); err != nil {
		t.Fatalf("clean switch flagged: %v", err)
	}
	// Corrupt a counter: the auditor must notice.
	r.sw.mmu.sharedUsed += 17
	if err := r.sw.CheckInvariants(); err == nil {
		t.Error("auditor missed sharedUsed corruption")
	}
	r.sw.mmu.sharedUsed -= 17

	r.sw.mmu.resident += 5
	if err := r.sw.CheckInvariants(); err == nil {
		t.Error("auditor missed resident corruption")
	}
	r.sw.mmu.resident -= 5

	r.sw.mmu.congested[pkt.PrioLossy]++
	if err := r.sw.CheckInvariants(); err == nil {
		t.Error("auditor missed congestion census corruption")
	}
	r.sw.mmu.congested[pkt.PrioLossy]--

	r.sw.mmu.ports[0].setPaused(pkt.PrioLossy, true)
	if err := r.sw.CheckInvariants(); err == nil {
		t.Error("auditor missed lossy pause state")
	}
	r.sw.mmu.ports[0].setPaused(pkt.PrioLossy, false)

	if err := r.sw.CheckInvariants(); err != nil {
		t.Errorf("restored switch still flagged: %v", err)
	}
}

// TestCheckDrainedDetectsLeaks verifies the drained-state auditor accepts a
// quiescent switch and flags each class of leak the invariant check alone
// cannot see (balanced-but-nonzero counters, wedged pause state).
func TestCheckDrainedDetectsLeaks(t *testing.T) {
	r := newRig(t, 3, DefaultConfig(), core.NewDT(), 25e9, 0)
	r.send(0, 2, 5, pkt.PrioLossy, pkt.ClassLossy)
	r.eng.RunAll()

	if err := r.sw.CheckDrained(); err != nil {
		t.Fatalf("drained switch flagged: %v", err)
	}

	// A balanced leak: bump both sides of the accounting so CheckInvariants
	// passes but bytes are still "resident" after drain.
	r.sw.mmu.ports[0].ing[pkt.PrioLossy] += pkt.MTUBytes
	r.sw.mmu.ports[2].eg[pkt.PrioLossy] += pkt.MTUBytes
	r.sw.mmu.poolUsed[pkt.ClassLossy] += pkt.MTUBytes
	r.sw.mmu.resident += pkt.MTUBytes
	if err := r.sw.CheckInvariants(); err != nil {
		t.Fatalf("balanced leak should pass the invariant check, got: %v", err)
	}
	if err := r.sw.CheckDrained(); err == nil {
		t.Error("drained auditor missed a balanced byte leak")
	}
	r.sw.mmu.ports[0].ing[pkt.PrioLossy] -= pkt.MTUBytes
	r.sw.mmu.ports[2].eg[pkt.PrioLossy] -= pkt.MTUBytes
	r.sw.mmu.poolUsed[pkt.ClassLossy] -= pkt.MTUBytes
	r.sw.mmu.resident -= pkt.MTUBytes

	// A wedged pause: lossless so the invariant check stays quiet.
	r.sw.mmu.ports[0].setPaused(pkt.PrioLossless, true)
	if err := r.sw.CheckInvariants(); err != nil {
		t.Fatalf("lossless pause should pass the invariant check, got: %v", err)
	}
	if err := r.sw.CheckDrained(); err == nil {
		t.Error("drained auditor missed a wedged PFC pause")
	}
	r.sw.mmu.ports[0].setPaused(pkt.PrioLossless, false)

	if err := r.sw.CheckDrained(); err != nil {
		t.Errorf("restored switch still flagged: %v", err)
	}
}
