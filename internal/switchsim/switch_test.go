package switchsim

import (
	"testing"

	"l2bm/internal/core"
	"l2bm/internal/netdev"
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
)

// testHost is a minimal traffic source/sink for switch tests.
type testHost struct {
	name string
	eng  *sim.Engine
	port *netdev.Port
	got  []*pkt.Packet
	at   []sim.Time
}

func (h *testHost) HandleArrival(p *pkt.Packet, _ *netdev.Port) {
	h.got = append(h.got, p)
	h.at = append(h.at, h.eng.Now())
}

func (h *testHost) Name() string { return h.name }

// rig is a star: n hosts each linked to one switch at rate/prop, routing by
// destination host index.
type rig struct {
	eng   *sim.Engine
	sw    *Switch
	hosts []*testHost
}

func newRig(t testing.TB, n int, cfg Config, pol core.Policy, rate int64, prop sim.Duration) *rig {
	t.Helper()
	eng := sim.NewEngine(42)
	sw := NewSwitch(eng, "sw", cfg, pol)
	r := &rig{eng: eng, sw: sw}
	for i := 0; i < n; i++ {
		h := &testHost{name: "h" + string(rune('0'+i)), eng: eng}
		hp, sp := netdev.Connect(eng, h, sw, rate, prop)
		h.port = hp
		sw.AddPort(sp)
		r.hosts = append(r.hosts, h)
	}
	sw.SetRouter(func(p *pkt.Packet, _ int) int { return p.Dst })
	return r
}

// send injects count MTU data packets from host src to host dst.
func (r *rig) send(src, dst, count int, prio int, class pkt.Class) {
	for i := 0; i < count; i++ {
		p := pkt.NewData(pkt.FlowID(src+1), src, dst, prio, class, int64(i*pkt.MTUPayload), pkt.MTUPayload)
		r.hosts[src].port.Enqueue(p)
	}
}

func (r *rig) mmuDrained(t *testing.T) {
	t.Helper()
	// CheckDrained subsumes the old per-counter sweep and additionally
	// audits headroom counters, leaked PFC pauses and the congested
	// census — the control state a fault path is most likely to wedge.
	if err := r.sw.CheckDrained(); err != nil {
		t.Error(err)
	}
}

func TestSwitchForwardsData(t *testing.T) {
	r := newRig(t, 3, DefaultConfig(), core.NewDT(), 25e9, sim.Microsecond)
	r.send(0, 2, 5, pkt.PrioLossy, pkt.ClassLossy)
	r.eng.RunAll()

	if got := len(r.hosts[2].got); got != 5 {
		t.Fatalf("host 2 received %d packets, want 5", got)
	}
	if got := len(r.hosts[1].got); got != 0 {
		t.Fatalf("host 1 received %d packets, want 0", got)
	}
	st := r.sw.Stats()
	if st.RxPackets != 5 || st.TxPackets != 5 {
		t.Errorf("Rx/Tx = %d/%d, want 5/5", st.RxPackets, st.TxPackets)
	}
	r.mmuDrained(t)
}

func TestSwitchStoreAndForwardTiming(t *testing.T) {
	r := newRig(t, 2, DefaultConfig(), core.NewDT(), 25e9, sim.Microsecond)
	r.send(0, 1, 1, pkt.PrioLossy, pkt.ClassLossy)
	r.eng.RunAll()

	// host->switch: tx + prop; switch->host: tx + prop (store-and-forward).
	tx := sim.TxTime(pkt.MTUBytes, 25e9)
	want := 2 * (tx + sim.Microsecond)
	if r.hosts[1].at[0] != want {
		t.Errorf("arrival at %v, want %v", r.hosts[1].at[0], want)
	}
}

func TestSwitchConservationUnderCrossTraffic(t *testing.T) {
	r := newRig(t, 4, DefaultConfig(), core.NewDefaultL2BM(), 25e9, sim.Microsecond)
	r.send(0, 3, 50, pkt.PrioLossless, pkt.ClassLossless)
	r.send(1, 3, 50, pkt.PrioLossy, pkt.ClassLossy)
	r.send(2, 3, 50, pkt.PrioLossless, pkt.ClassLossless)
	r.eng.RunAll()

	st := r.sw.Stats()
	delivered := len(r.hosts[3].got)
	if uint64(delivered) != st.TxPackets {
		t.Errorf("delivered %d != TxPackets %d", delivered, st.TxPackets)
	}
	wantDelivered := 150 - int(st.LossyDropsIngress+st.LossyDropsEgress+st.LosslessViolations)
	if delivered != wantDelivered {
		t.Errorf("delivered %d, want %d (minus drops)", delivered, wantDelivered)
	}
	if st.LosslessViolations != 0 {
		t.Errorf("lossless violations = %d, want 0", st.LosslessViolations)
	}
	r.mmuDrained(t)
}

func TestSwitchIncastTriggersPFCNoLosslessLoss(t *testing.T) {
	// 8 senders blast lossless traffic at one receiver: the egress queue
	// saturates, the shared pool fills, PFC must throttle the ingress
	// ports and no lossless packet may be lost.
	cfg := DefaultConfig()
	cfg.TotalShared = 256 << 10 // small pool to force PFC quickly
	r := newRig(t, 9, cfg, core.NewDT(), 25e9, sim.Microsecond)
	for src := 0; src < 8; src++ {
		r.send(src, 8, 100, pkt.PrioLossless, pkt.ClassLossless)
	}
	r.eng.RunAll()

	st := r.sw.Stats()
	if st.PauseFramesSent == 0 {
		t.Error("expected PFC pause frames under lossless incast")
	}
	if st.ResumeFramesSent == 0 {
		t.Error("expected PFC resume frames after drain")
	}
	if st.LosslessViolations != 0 {
		t.Errorf("lossless violations = %d, want 0", st.LosslessViolations)
	}
	if got := len(r.hosts[8].got); got != 800 {
		t.Errorf("receiver got %d packets, want all 800 (lossless)", got)
	}
	r.mmuDrained(t)
}

func TestSwitchLossyIncastDropsInsteadOfPausing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TotalShared = 128 << 10
	r := newRig(t, 9, cfg, core.NewDT(), 25e9, sim.Microsecond)
	for src := 0; src < 8; src++ {
		r.send(src, 8, 100, pkt.PrioLossy, pkt.ClassLossy)
	}
	r.eng.RunAll()

	st := r.sw.Stats()
	if st.PauseFramesSent != 0 {
		t.Errorf("pause frames = %d, want 0 for lossy-only traffic", st.PauseFramesSent)
	}
	if st.LossyDropsIngress+st.LossyDropsEgress == 0 {
		t.Error("expected lossy drops under incast overload")
	}
	if got := len(r.hosts[8].got); got >= 800 {
		t.Errorf("receiver got %d packets, expected losses", got)
	}
	r.mmuDrained(t)
}

func TestSwitchECNStepMarkingOnLossyQueue(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ECNLossyThreshold = 10 * pkt.MTUBytes
	r := newRig(t, 3, cfg, core.NewDT2(), 25e9, 0)
	r.send(0, 2, 40, pkt.PrioLossy, pkt.ClassLossy)
	r.send(1, 2, 40, pkt.PrioLossy, pkt.ClassLossy)
	r.eng.RunAll()

	marked := 0
	for _, p := range r.hosts[2].got {
		if p.CE {
			marked++
		}
	}
	if marked == 0 {
		t.Error("expected CE marks once backlog exceeded the step threshold")
	}
	if st := r.sw.Stats(); uint64(marked) != st.ECNMarked {
		t.Errorf("delivered CE %d != switch count %d", marked, st.ECNMarked)
	}
}

func TestSwitchECNREDMarkingOnLosslessQueue(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ECNLosslessKmin = 2 * pkt.MTUBytes
	cfg.ECNLosslessKmax = 8 * pkt.MTUBytes
	cfg.ECNLosslessPmax = 1.0
	r := newRig(t, 3, cfg, core.NewDT2(), 25e9, 0)
	r.send(0, 2, 50, pkt.PrioLossless, pkt.ClassLossless)
	r.send(1, 2, 50, pkt.PrioLossless, pkt.ClassLossless)
	r.eng.RunAll()

	marked := 0
	for _, p := range r.hosts[2].got {
		if p.CE {
			marked++
		}
	}
	if marked == 0 {
		t.Error("expected RED CE marks on the lossless queue")
	}
	// Deep backlog (>= Kmax) must mark deterministically.
	if marked < 20 {
		t.Errorf("marked only %d packets; expected heavy marking beyond Kmax", marked)
	}
}

func TestSwitchECNDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ECNLossyThreshold = 0
	cfg.ECNLosslessKmax = 0
	r := newRig(t, 3, cfg, core.NewDT2(), 25e9, 0)
	r.send(0, 2, 50, pkt.PrioLossy, pkt.ClassLossy)
	r.send(1, 2, 50, pkt.PrioLossless, pkt.ClassLossless)
	r.eng.RunAll()
	if st := r.sw.Stats(); st.ECNMarked != 0 {
		t.Errorf("ECNMarked = %d with marking disabled, want 0", st.ECNMarked)
	}
}

func TestSwitchControlBypassesMMU(t *testing.T) {
	r := newRig(t, 2, DefaultConfig(), core.NewDT(), 25e9, 0)
	ack := pkt.NewAck(1, 0, 1, 100, false)
	r.hosts[0].port.Enqueue(ack)
	r.eng.RunAll()

	if len(r.hosts[1].got) != 1 {
		t.Fatal("ACK not forwarded")
	}
	st := r.sw.Stats()
	if st.RxPackets != 0 || st.TxPackets != 0 {
		t.Error("control packets should not touch MMU counters")
	}
	r.mmuDrained(t)
}

func TestSwitchHeadroomAbsorbsInFlight(t *testing.T) {
	// Tiny shared pool: thresholds collapse immediately, in-flight
	// lossless packets must land in headroom, not be dropped.
	cfg := DefaultConfig()
	cfg.TotalShared = 8 << 10
	cfg.ReservedPerQueue = 0
	r := newRig(t, 3, cfg, core.NewDT(), 25e9, 5*sim.Microsecond)
	r.send(0, 2, 60, pkt.PrioLossless, pkt.ClassLossless)
	r.send(1, 2, 60, pkt.PrioLossless, pkt.ClassLossless)
	r.eng.RunAll()

	st := r.sw.Stats()
	if st.LosslessHeadroom == 0 {
		t.Error("expected headroom admissions with a tiny shared pool")
	}
	if st.LosslessViolations != 0 {
		t.Errorf("lossless violations = %d, want 0", st.LosslessViolations)
	}
	if got := len(r.hosts[2].got); got != 120 {
		t.Errorf("receiver got %d, want all 120", got)
	}
	r.mmuDrained(t)
}

func TestSwitchHeadroomExhaustionCountsViolations(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TotalShared = 4 << 10
	cfg.ReservedPerQueue = 0
	cfg.HeadroomPerQueue = 2 * pkt.MTUBytes // far below one hop's in-flight data
	r := newRig(t, 3, cfg, core.NewDT(), 25e9, 50*sim.Microsecond)
	r.send(0, 2, 200, pkt.PrioLossless, pkt.ClassLossless)
	r.send(1, 2, 200, pkt.PrioLossless, pkt.ClassLossless)
	r.eng.RunAll()

	if st := r.sw.Stats(); st.LosslessViolations == 0 {
		t.Error("expected violations when headroom is deliberately undersized")
	}
	r.mmuDrained(t)
}

func TestSwitchPeakOccupancyTracked(t *testing.T) {
	r := newRig(t, 3, DefaultConfig(), core.NewDT(), 25e9, 0)
	r.send(0, 2, 20, pkt.PrioLossy, pkt.ClassLossy)
	r.send(1, 2, 20, pkt.PrioLossy, pkt.ClassLossy)
	r.eng.RunAll()
	st := r.sw.Stats()
	if st.PeakOccupancy <= 0 {
		t.Error("peak occupancy not tracked")
	}
	if st.PeakOccupancy > 40*pkt.MTUBytes {
		t.Errorf("peak %d exceeds total offered bytes", st.PeakOccupancy)
	}
}

func TestSwitchCongestedQueueCensus(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, 3, cfg, core.NewDT(), 25e9, 0)
	if r.sw.CongestedEgressQueues(pkt.PrioLossy) != 0 {
		t.Fatal("no queue should start congested")
	}
	r.send(0, 2, 30, pkt.PrioLossy, pkt.ClassLossy)
	r.send(1, 2, 30, pkt.PrioLossy, pkt.ClassLossy)
	// Run briefly: egress queue for host 2 builds beyond one MTU.
	r.eng.Run(20 * sim.Microsecond)
	if got := r.sw.CongestedEgressQueues(pkt.PrioLossy); got != 1 {
		t.Errorf("congested lossy queues = %d, want 1", got)
	}
	r.eng.RunAll()
	if got := r.sw.CongestedEgressQueues(pkt.PrioLossy); got != 0 {
		t.Errorf("congested lossy queues after drain = %d, want 0", got)
	}
}

func TestSwitchConstructionValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	t.Run("nil policy", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		NewSwitch(eng, "x", DefaultConfig(), nil)
	})
	t.Run("zero buffer", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		cfg := DefaultConfig()
		cfg.TotalShared = 0
		NewSwitch(eng, "x", cfg, core.NewDT())
	})
	t.Run("no router", func(t *testing.T) {
		r := newRig(t, 2, DefaultConfig(), core.NewDT(), 25e9, 0)
		r.sw.SetRouter(nil)
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		r.send(0, 1, 1, pkt.PrioLossy, pkt.ClassLossy)
		r.eng.RunAll()
	})
	t.Run("foreign port", func(t *testing.T) {
		r := newRig(t, 2, DefaultConfig(), core.NewDT(), 25e9, 0)
		other := NewSwitch(r.eng, "other", DefaultConfig(), core.NewDT())
		a, _ := netdev.Connect(r.eng, other, r.hosts[0], 25e9, 0)
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		r.sw.AddPort(a)
	})
}

func TestSwitchDeterministicReplay(t *testing.T) {
	run := func() (uint64, uint64, int64) {
		r := newRigSeed(t, 5, DefaultConfig(), core.NewDefaultL2BM(), 25e9, sim.Microsecond, 99)
		for src := 0; src < 4; src++ {
			r.send(src, 4, 200, pkt.PrioLossless, pkt.ClassLossless)
			r.send(src, 4, 200, pkt.PrioLossy, pkt.ClassLossy)
		}
		r.eng.RunAll()
		st := r.sw.Stats()
		return st.PauseFramesSent, st.LossyDropsIngress + st.LossyDropsEgress, st.PeakOccupancy
	}
	p1, d1, o1 := run()
	p2, d2, o2 := run()
	if p1 != p2 || d1 != d2 || o1 != o2 {
		t.Errorf("replay diverged: (%d,%d,%d) vs (%d,%d,%d)", p1, d1, o1, p2, d2, o2)
	}
}

func newRigSeed(t *testing.T, n int, cfg Config, pol core.Policy, rate int64, prop sim.Duration, seed int64) *rig {
	t.Helper()
	eng := sim.NewEngine(seed)
	sw := NewSwitch(eng, "sw", cfg, pol)
	r := &rig{eng: eng, sw: sw}
	for i := 0; i < n; i++ {
		h := &testHost{name: "h" + string(rune('0'+i)), eng: eng}
		hp, sp := netdev.Connect(eng, h, sw, rate, prop)
		h.port = hp
		sw.AddPort(sp)
		r.hosts = append(r.hosts, h)
	}
	sw.SetRouter(func(p *pkt.Packet, _ int) int { return p.Dst })
	return r
}
