// Package switchsim implements the paper's output-queued shared-memory
// switch (§II-A): an MMU that maintains ingress-pool and egress-pool virtual
// counters per port/priority, admits packets only when both pools agree,
// triggers per-priority PFC with headroom for lossless traffic, marks ECN at
// egress queues, and delegates all threshold decisions to a core.Policy.
package switchsim

import (
	"fmt"
	"math"

	"l2bm/internal/pkt"
	"l2bm/internal/sim"
)

// Config sizes the switch buffer and its ancillary mechanisms. All byte
// quantities are per the paper's 4 MB shallow-buffer ToR switch; use
// DefaultConfig and override what an experiment varies.
type Config struct {
	// TotalShared is B, the shared service pool in bytes (paper: 4 MB).
	TotalShared int64
	// ReservedPerQueue is the static per-queue buffer used before a queue
	// starts charging the shared pool (paper's "static buffer").
	ReservedPerQueue int64
	// HeadroomPerQueue is reserved, per lossless ingress (port, priority),
	// for in-flight packets arriving after XOFF was sent (paper's
	// "headroom pool"). Sized for 2·(BDP of one hop + MTU).
	HeadroomPerQueue int64
	// PFCHysteresis is how far the ingress counter must fall below the
	// threshold before XON resumes the upstream (2 MTU is typical).
	PFCHysteresis int64
	// ECNLossyThreshold is DCTCP-style step marking: a lossy egress queue
	// marks CE when its backlog exceeds this many bytes.
	ECNLossyThreshold int64
	// ECNLosslessKmin/Kmax/Pmax configure DCQCN's RED-style marking on the
	// lossless egress queue.
	ECNLosslessKmin int64
	ECNLosslessKmax int64
	ECNLosslessPmax float64
	// CongestionMark is the egress backlog above which a queue counts as
	// congested for ABM's n_p(t).
	CongestionMark int64
}

// Validate reports configuration errors: negative pools, inverted ECN
// bands, or non-finite probabilities — the silent-garbage inputs the fault
// experiments would otherwise turn into misleading thresholds.
func (c *Config) Validate() error {
	switch {
	case c.TotalShared <= 0:
		return fmt.Errorf("switchsim: TotalShared = %d, want > 0", c.TotalShared)
	case c.ReservedPerQueue < 0:
		return fmt.Errorf("switchsim: ReservedPerQueue = %d, want >= 0", c.ReservedPerQueue)
	case c.HeadroomPerQueue < 0:
		return fmt.Errorf("switchsim: HeadroomPerQueue = %d, want >= 0", c.HeadroomPerQueue)
	case c.PFCHysteresis < 0:
		return fmt.Errorf("switchsim: PFCHysteresis = %d, want >= 0", c.PFCHysteresis)
	case c.ECNLossyThreshold < 0:
		return fmt.Errorf("switchsim: ECNLossyThreshold = %d, want >= 0", c.ECNLossyThreshold)
	case c.ECNLosslessKmin < 0 || c.ECNLosslessKmax < 0:
		return fmt.Errorf("switchsim: ECN lossless Kmin/Kmax must be >= 0 (got %d/%d)",
			c.ECNLosslessKmin, c.ECNLosslessKmax)
	case c.ECNLosslessKmax > 0 && c.ECNLosslessKmin > c.ECNLosslessKmax:
		return fmt.Errorf("switchsim: ECN lossless Kmin %d > Kmax %d",
			c.ECNLosslessKmin, c.ECNLosslessKmax)
	case math.IsNaN(c.ECNLosslessPmax) || c.ECNLosslessPmax < 0 || c.ECNLosslessPmax > 1:
		return fmt.Errorf("switchsim: ECNLosslessPmax = %v, want in [0, 1]", c.ECNLosslessPmax)
	case c.CongestionMark < 0:
		return fmt.Errorf("switchsim: CongestionMark = %d, want >= 0", c.CongestionMark)
	default:
		return nil
	}
}

// DefaultConfig returns the evaluation defaults (paper §IV setup, DCQCN and
// DCTCP marking parameters from their respective papers scaled to 25 Gbps).
func DefaultConfig() Config {
	return Config{
		TotalShared:      4 << 20, // 4 MB
		ReservedPerQueue: 2 * pkt.MTUBytes,
		HeadroomPerQueue: 160_000, // covers 2·BDP of the slowest hop (5 µs · 100 Gbps) + reaction
		PFCHysteresis:    2 * pkt.MTUBytes,
		// DCTCP step-marking threshold. Deliberately permissive (≈400
		// pkts): the paper's premise (Fig. 3a) is TCP occupying a large
		// share of the 4 MB buffer, making the ingress pool the binding
		// constraint buffer management arbitrates; a tight K would cap
		// TCP at the egress and mask the policies under study.
		ECNLossyThreshold: 400_000,
		ECNLosslessKmin:   5_000,
		ECNLosslessKmax:   200_000,
		ECNLosslessPmax:   0.01,
		CongestionMark:    pkt.MTUBytes,
	}
}

// Stats aggregates switch-level counters the experiments report.
type Stats struct {
	// RxPackets counts data packets offered to the MMU.
	RxPackets uint64
	// TxPackets counts data packets fully serialized out.
	TxPackets uint64
	// LossyDropsIngress counts lossy packets dropped at the ingress pool
	// threshold.
	LossyDropsIngress uint64
	// LossyDropsEgress counts lossy packets dropped at the egress queue
	// threshold.
	LossyDropsEgress uint64
	// LosslessHeadroom counts lossless packets absorbed by headroom.
	LosslessHeadroom uint64
	// LosslessViolations counts lossless packets dropped because headroom
	// was exhausted — zero in any correctly configured run.
	LosslessViolations uint64
	// LossyDropBytesIngress/LossyDropBytesEgress/LosslessViolationBytes are
	// the wire-byte counterparts of the three drop counters above — the
	// switch-layer kill sites of the flow-byte conservation ledger the
	// invariant auditor checks (injected == delivered + dropped + in-flight).
	LossyDropBytesIngress  uint64
	LossyDropBytesEgress   uint64
	LosslessViolationBytes uint64
	// LossyEvictions/LossyEvictionBytes count already-admitted lossy
	// packets a preemptive policy (Occamy) evicted from egress queue tails
	// to admit a more deserving arrival. Eviction is a fourth kill site of
	// the conservation ledger: the bytes were admitted, then dropped.
	LossyEvictions     uint64
	LossyEvictionBytes uint64
	// ECNMarked counts CE marks applied.
	ECNMarked uint64
	// PauseFramesSent counts XOFF frames generated (the paper's Fig. 7(d)
	// metric); resumes are tracked separately.
	PauseFramesSent uint64
	// ResumeFramesSent counts XON frames generated.
	ResumeFramesSent uint64
	// PFCReissues counts XOFF frames re-sent because arrivals continued
	// past the point the original pause should have silenced the upstream
	// — evidence the pause frame itself was lost (fault injection). Zero
	// on a healthy fabric.
	PFCReissues uint64
	// PeakOccupancy is the high-water mark of total resident bytes.
	PeakOccupancy int64
}

// OccupancySample is one timestamped reading of switch buffer occupancy.
type OccupancySample struct {
	At    sim.Time
	Bytes int64
}
