package switchsim

import (
	"testing"

	"l2bm/internal/core"
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/trace"
)

// benchAdmit drives a sustained hybrid (lossless + lossy) fan-in through a
// 5-port L2BM switch — the admission/dequeue/PFC hot path — with the given
// recorder installed. One benchmark op is one injected MTU packet; the
// engine drains in batches so the switch stays backlogged (thresholds, ECN
// and PFC all exercised) without unbounded queue growth.
func benchAdmit(b *testing.B, rec *trace.Recorder) {
	b.Helper()
	r := newRig(b, 5, DefaultConfig(), core.NewDefaultL2BM(), 25e9, sim.Microsecond)
	r.sw.SetTracer(rec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := i & 3
		prio, class := pkt.PrioLossy, pkt.ClassLossy
		if i&1 == 0 {
			prio, class = pkt.PrioLossless, pkt.ClassLossless
		}
		p := pkt.NewData(pkt.FlowID(src+1), src, 4, prio, class,
			int64(i)*pkt.MTUPayload, pkt.MTUPayload)
		r.hosts[src].port.Enqueue(p)
		if i&127 == 127 {
			r.eng.RunAll()
		}
	}
	r.eng.RunAll()
}

// BenchmarkAdmit is the production configuration: probes compiled in, no
// recorder ever installed.
func BenchmarkAdmit(b *testing.B) { benchAdmit(b, nil) }

// BenchmarkAdmitTraceOff measures the branch-on-nil guard with tracing
// explicitly disarmed (benchAdmit calls SetTracer(nil)): the
// disabled-tracing hot path. CI runs this next to BenchmarkAdmitTraceOn;
// the flight recorder's design budget for disabled tracing is ≤1% against
// a probe-free switch, so TraceOff must sit at the noise floor.
func BenchmarkAdmitTraceOff(b *testing.B) { benchAdmit(b, nil) }

// BenchmarkAdmitTraceOn prices enabled tracing (ring pushes on every drop,
// ECN mark and PFC edge) for comparison; it is informational, not guarded.
func BenchmarkAdmitTraceOn(b *testing.B) {
	benchAdmit(b, trace.NewRecorder(0))
}
