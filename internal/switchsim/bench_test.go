package switchsim

import (
	"testing"

	"l2bm/internal/core"
	"l2bm/internal/netdev"
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/trace"
)

// benchSink recycles every delivered frame back into the pool — the same
// sink behaviour host.Host has in the production fabric (delivery is where
// packets die), minus the transport machinery. With a nil pool Put is a
// no-op, so one sink serves both the pooled and unpooled benchmarks.
type benchSink struct {
	name string
	pool *pkt.Pool
	port *netdev.Port
	n    int
}

func (h *benchSink) HandleArrival(p *pkt.Packet, _ *netdev.Port) {
	h.n++
	h.pool.Put(p)
}

func (h *benchSink) Name() string { return h.name }

// benchAdmit drives a sustained hybrid (lossless + lossy) fan-in through a
// 5-port L2BM switch — the admission/dequeue/PFC hot path — with the given
// recorder and pool installed (pl == nil benchmarks the heap-allocating
// control arm). One benchmark op is one injected MTU packet; the engine
// drains in batches so the switch stays backlogged (thresholds, ECN and PFC
// all exercised) without unbounded queue growth.
func benchAdmit(b *testing.B, rec *trace.Recorder, pl *pkt.Pool) {
	b.Helper()
	eng := sim.NewEngine(42)
	sw := NewSwitch(eng, "sw", DefaultConfig(), core.NewDefaultL2BM())
	sw.SetTracer(rec)
	sinks := make([]*benchSink, 5)
	for i := range sinks {
		h := &benchSink{name: "h" + string(rune('0'+i)), pool: pl}
		hp, sp := netdev.Connect(eng, h, sw, 25e9, sim.Microsecond)
		h.port = hp
		hp.SetPool(pl)
		sw.AddPort(sp)
		sinks[i] = h
	}
	sw.SetPool(pl)
	sw.SetRouter(func(p *pkt.Packet, _ int) int { return p.Dst })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := i & 3
		prio, class := pkt.PrioLossy, pkt.ClassLossy
		if i&1 == 0 {
			prio, class = pkt.PrioLossless, pkt.ClassLossless
		}
		p := pl.Data(pkt.FlowID(src+1), src, 4, prio, class,
			int64(i)*pkt.MTUPayload, pkt.MTUPayload)
		sinks[src].port.Enqueue(p)
		if i&127 == 127 {
			eng.RunAll()
		}
	}
	eng.RunAll()
}

// BenchmarkAdmit is the production configuration: packet pool wired (as
// topo.Build wires every cluster), probes compiled in, no recorder ever
// installed. This is the allocs/op-guarded benchmark.
func BenchmarkAdmit(b *testing.B) { benchAdmit(b, nil, pkt.NewPool()) }

// BenchmarkAdmitUnpooled is the heap-allocating control arm (the pre-pool
// fast path, still reachable via topo.Config.DisablePacketPool) —
// informational, for measuring what the pool buys.
func BenchmarkAdmitUnpooled(b *testing.B) { benchAdmit(b, nil, nil) }

// BenchmarkAdmitTraceOff measures the branch-on-nil guard with tracing
// explicitly disarmed (benchAdmit calls SetTracer(nil)): the
// disabled-tracing hot path. CI runs this next to BenchmarkAdmitTraceOn;
// the flight recorder's design budget for disabled tracing is ≤1% against
// a probe-free switch, so TraceOff must sit at the noise floor.
func BenchmarkAdmitTraceOff(b *testing.B) { benchAdmit(b, nil, pkt.NewPool()) }

// BenchmarkAdmitTraceOn prices enabled tracing (ring pushes on every drop,
// ECN mark and PFC edge) for comparison; it is informational, not guarded.
func BenchmarkAdmitTraceOn(b *testing.B) {
	benchAdmit(b, trace.NewRecorder(0), pkt.NewPool())
}
