package switchsim

import (
	"testing"

	"l2bm/internal/core"
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
)

// TestABMThresholdsFromEmptySwitch is the regression test for the ABM
// cold-start bug: on an idle switch the drain-rate estimator has measured
// nothing, so the naive μ̂ = drain/line quotient was 0/0 = NaN — which
// slips past every `<= 0` guard (NaN compares false) and poisons the
// int64 threshold conversion. Driving the real MMU, every threshold of
// the empty switch must be finite and inside [0, TotalShared], and the
// switch must then forward traffic normally.
func TestABMThresholdsFromEmptySwitch(t *testing.T) {
	cfg := DefaultConfig()
	pol := core.NewABM()
	r := newRig(t, 3, cfg, pol, 25e9, sim.Microsecond)

	for port := 0; port < 3; port++ {
		for prio := 0; prio < pkt.NumPriorities; prio++ {
			ing := pol.IngressThreshold(r.sw, port, prio)
			eg := pol.EgressThreshold(r.sw, port, prio)
			if ing < 0 || ing > cfg.TotalShared {
				t.Errorf("empty-switch IngressThreshold(%d,%d) = %d, want in [0, %d]",
					port, prio, ing, cfg.TotalShared)
			}
			if eg < 0 || eg > cfg.TotalShared {
				t.Errorf("empty-switch EgressThreshold(%d,%d) = %d, want in [0, %d]",
					port, prio, eg, cfg.TotalShared)
			}
			if eg == 0 {
				t.Errorf("empty-switch EgressThreshold(%d,%d) = 0: cold-start fallback should leave room", port, prio)
			}
		}
	}

	// The cold-start thresholds must actually admit traffic.
	r.send(0, 2, 5, pkt.PrioLossy, pkt.ClassLossy)
	r.eng.RunAll()
	if got := len(r.hosts[2].got); got != 5 {
		t.Fatalf("host 2 received %d packets, want 5", got)
	}
	r.mmuDrained(t)
}

// TestEvictLossyTailAccounting drives the Evictor capability directly
// mid-run: eviction must reverse the full admission accounting (ingress
// counter, shared pool, egress counter, residency) and count packets and
// bytes in the stats, and the run must still drain clean afterwards.
func TestEvictLossyTailAccounting(t *testing.T) {
	r := newRig(t, 3, DefaultConfig(), core.NewOccamy(), 25e9, sim.Microsecond)
	r.send(0, 2, 100, pkt.PrioLossy, pkt.ClassLossy)
	r.send(1, 2, 100, pkt.PrioLossy, pkt.ClassLossy)

	var freed int64
	r.eng.Schedule(10*sim.Microsecond, func() {
		qBefore := r.sw.EgressQueueBytes(2, pkt.PrioLossy)
		sharedBefore := r.sw.SharedUsed()
		if qBefore == 0 {
			t.Fatal("expected a backlog at egress port 2 after 10us of 2:1 fan-in")
		}
		// Degenerate asks must be no-ops.
		if got := r.sw.EvictLossyTail(2, pkt.PrioLossy, 0); got != 0 {
			t.Errorf("EvictLossyTail(want=0) freed %d, want 0", got)
		}
		if got := r.sw.EvictLossyTail(2, pkt.PrioLossless, 4096); got != 0 {
			t.Errorf("EvictLossyTail on a lossless priority freed %d, want 0", got)
		}
		freed = r.sw.EvictLossyTail(2, pkt.PrioLossy, 3000)
		if freed < 3000 {
			t.Errorf("EvictLossyTail freed %d bytes, want >= 3000", freed)
		}
		if got := r.sw.EgressQueueBytes(2, pkt.PrioLossy); got != qBefore-freed {
			t.Errorf("egress counter = %d after eviction, want %d", got, qBefore-freed)
		}
		if got := r.sw.SharedUsed(); got > sharedBefore {
			t.Errorf("SharedUsed grew across an eviction: %d -> %d", sharedBefore, got)
		}
	})
	r.eng.RunAll()

	st := r.sw.Stats()
	if st.LossyEvictions == 0 || st.LossyEvictionBytes != uint64(freed) {
		t.Errorf("eviction stats = %d packets / %d bytes, want > 0 / %d",
			st.LossyEvictions, st.LossyEvictionBytes, freed)
	}
	delivered := uint64(len(r.hosts[2].got))
	if want := 200 - st.LossyDropsIngress - st.LossyDropsEgress - st.LossyEvictions; delivered != want {
		t.Errorf("delivered %d, want %d (200 minus drops and evictions)", delivered, want)
	}
	if delivered != st.TxPackets {
		t.Errorf("delivered %d != TxPackets %d", delivered, st.TxPackets)
	}
	r.mmuDrained(t)
}

// TestEvictLossyTailEmptyQueue: asking for bytes a queue does not hold
// frees nothing and corrupts nothing.
func TestEvictLossyTailEmptyQueue(t *testing.T) {
	r := newRig(t, 2, DefaultConfig(), core.NewOccamy(), 25e9, sim.Microsecond)
	if got := r.sw.EvictLossyTail(1, pkt.PrioLossy, 1<<20); got != 0 {
		t.Errorf("EvictLossyTail on an empty switch freed %d, want 0", got)
	}
	r.mmuDrained(t)
}

// squeezeConfig is a pool small enough that a cross flow's admission
// fails while the hot flows' egress queue sits over its DT threshold —
// the situation Occamy's preemption exists for.
func squeezeConfig() Config {
	cfg := DefaultConfig()
	cfg.TotalShared = 60_000
	return cfg
}

// squeezeWorkload: two 2:1-overcommitted hot queues (hosts 0,1 -> 4 and
// hosts 2,3 -> 5). Each hot queue sits over its falling DT threshold, so
// when one flow's admission fails, the *other* hot queue is an eligible
// preemption victim (the arriving packet's own target queue never is).
func squeezeWorkload(r *rig) {
	r.send(0, 4, 80, pkt.PrioLossy, pkt.ClassLossy)
	r.send(1, 4, 80, pkt.PrioLossy, pkt.ClassLossy)
	r.send(2, 5, 80, pkt.PrioLossy, pkt.ClassLossy)
	r.send(3, 5, 80, pkt.PrioLossy, pkt.ClassLossy)
}

// TestOccamyPreemptsUnderPressure runs the end-to-end path: admission
// failure -> Preempt -> tail eviction -> one retry. The ledger must stay
// exact: every sent packet is delivered, dropped, or evicted.
func TestOccamyPreemptsUnderPressure(t *testing.T) {
	r := newRig(t, 6, squeezeConfig(), core.NewOccamy(), 25e9, sim.Microsecond)
	squeezeWorkload(r)
	r.eng.RunAll()

	st := r.sw.Stats()
	if st.LossyEvictions == 0 {
		t.Error("expected preemptive evictions under a squeezed pool, got none")
	}
	delivered := uint64(len(r.hosts[4].got) + len(r.hosts[5].got))
	if want := 320 - st.LossyDropsIngress - st.LossyDropsEgress - st.LossyEvictions; delivered != want {
		t.Errorf("delivered %d, want %d (320 minus drops and evictions)", delivered, want)
	}
	if delivered != st.TxPackets {
		t.Errorf("delivered %d != TxPackets %d", delivered, st.TxPackets)
	}
	r.mmuDrained(t)
}

// TestNonPreemptivePolicyNeverEvicts pins the capability gate: under the
// identical squeeze, a policy that does not implement PreemptivePolicy
// must never trigger the eviction path.
func TestNonPreemptivePolicyNeverEvicts(t *testing.T) {
	r := newRig(t, 6, squeezeConfig(), core.NewDT2(), 25e9, sim.Microsecond)
	squeezeWorkload(r)
	r.eng.RunAll()

	st := r.sw.Stats()
	if st.LossyEvictions != 0 || st.LossyEvictionBytes != 0 {
		t.Errorf("DT2 evicted %d packets / %d bytes, want 0 (no PreemptivePolicy capability)",
			st.LossyEvictions, st.LossyEvictionBytes)
	}
	r.mmuDrained(t)
}
