package switchsim

import (
	"fmt"

	"l2bm/internal/core"
	"l2bm/internal/netdev"
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
	"l2bm/internal/trace"
)

// Router chooses the egress port index for a packet entering the switch.
// The topology layer installs one (typically ECMP over shortest paths).
type Router func(p *pkt.Packet, inPort int) int

// Switch is an output-queued shared-memory switch. Packets arriving on any
// port traverse the MMU admission check and, if admitted, are enqueued at
// their egress port's priority queue; the MMU releases their buffer when the
// egress port finishes serializing them.
type Switch struct {
	eng  *sim.Engine
	name string
	// cfg is an immutable descriptor. At hyperscale the topology layer
	// builds ONE Config per switch role (ToR/agg/core) and shares the
	// pointer across every switch of that role (NewSwitchShared), so
	// per-switch state is the counters, not the configuration.
	cfg    *Config
	policy core.Policy
	ports  []*netdev.Port
	route  Router

	// preempt is the policy's optional preemption capability, type-asserted
	// once at construction. Nil for every non-preemptive policy (DT, ABM,
	// L2BM, ...), whose admission path is then a single branch-on-nil away
	// from the pre-preemption code.
	preempt core.PreemptivePolicy

	mmu   mmuState
	stats Stats
	rng   *sim.Rand

	// pool recycles dropped frames (the switch's only packet sinks: lossy
	// admission drops and lossless-violation discards). Nil disables
	// recycling — dropped packets are left to the GC, the pre-pool
	// behaviour.
	pool *pkt.Pool

	// tracer, when non-nil, receives flight-recorder events from the
	// admission/dequeue/PFC paths. The hot-path cost when disabled is a
	// single branch-on-nil per probe site (BenchmarkAdmitTraceOff), and the
	// probes are pure reads of MMU state — tracing cannot perturb the run.
	tracer *trace.Recorder
}

var _ netdev.Node = (*Switch)(nil)

// portMMU packs every per-(port,priority) counter into one contiguous
// record: the admission path touches ing/eg/hr/paused for the same port
// back to back, so one cache-friendly struct replaces five parallel slices
// (and the paused booleans collapse to a single bitmask byte).
type portMMU struct {
	// ing and eg are the ingress- and egress-pool counters Q_in and Q_out
	// per priority (bytes, normal path: reserved then shared).
	ing [pkt.NumPriorities]int64
	eg  [pkt.NumPriorities]int64
	// hr is headroom usage per lossless ingress queue.
	hr [pkt.NumPriorities]int64
	// pauseSentAt records when the most recent XOFF for a paused ingress
	// queue was emitted, for the lost-pause re-issue guard.
	pauseSentAt [pkt.NumPriorities]sim.Time
	// paused is a per-priority bitmask of ingress queues we have XOFF'd
	// upstream (bit i = priority i; NumPriorities <= 8 fits a byte).
	paused uint8
}

func (pm *portMMU) pausedOn(prio int) bool { return pm.paused&(1<<uint(prio)) != 0 }

func (pm *portMMU) setPaused(prio int, on bool) {
	if on {
		pm.paused |= 1 << uint(prio)
	} else {
		pm.paused &^= 1 << uint(prio)
	}
}

// mmuState holds the virtual counters of the ingress and egress pools,
// indexed [port][priority] (the slice grows as ports are added — the
// admission path is the simulator's hottest loop, so no maps here).
type mmuState struct {
	// ports is the per-port counter table.
	ports []portMMU
	// sharedUsed is Q(t): bytes charged to the shared service pool
	// (ingress-side accounting beyond each queue's reserve).
	sharedUsed int64
	// poolUsed is the egress-pool occupancy per traffic class.
	poolUsed [4]int64
	// congested counts egress queues over the congestion mark, per
	// priority (for ABM).
	congested [pkt.NumPriorities]int
	// resident is the total bytes resident in the switch (reserved +
	// shared + headroom), the occupancy the paper plots.
	resident int64
}

// ensurePorts grows the per-port table to cover port index n-1.
func (m *mmuState) ensurePorts(n int) {
	for len(m.ports) < n {
		m.ports = append(m.ports, portMMU{})
	}
}

// NewSwitch builds a switch with no ports, taking a private copy of cfg.
// Attach ports with AddPort after wiring links via netdev.Connect.
func NewSwitch(eng *sim.Engine, name string, cfg Config, policy core.Policy) *Switch {
	return NewSwitchShared(eng, name, &cfg, policy)
}

// NewSwitchShared builds a switch sharing an immutable configuration
// descriptor: every switch of a role (ToR/agg/core) points at one Config,
// so a 100k-host fabric pays for the descriptor once per role rather than
// once per switch. The caller must not mutate cfg after the first switch
// is built on it.
func NewSwitchShared(eng *sim.Engine, name string, cfg *Config, policy core.Policy) *Switch {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	if policy == nil {
		panic("switchsim: policy must not be nil")
	}
	preempt, _ := policy.(core.PreemptivePolicy)
	return &Switch{
		eng:     eng,
		name:    name,
		cfg:     cfg,
		policy:  policy,
		preempt: preempt,
		mmu:     mmuState{},
		rng:     eng.Rand("switch/" + name + "/ecn"),
	}
}

// Name implements netdev.Node.
func (s *Switch) Name() string { return s.name }

// Policy returns the buffer-management policy in force.
func (s *Switch) Policy() core.Policy { return s.policy }

// Config returns the switch configuration.
func (s *Switch) Config() Config { return *s.cfg }

// Stats returns a snapshot of the switch counters. Pause/resume frame
// counts are gathered from the ports at call time.
func (s *Switch) Stats() Stats {
	out := s.stats
	for _, p := range s.ports {
		out.PauseFramesSent += p.Stats().PFCSent
		out.ResumeFramesSent += p.Stats().PFCResumes
	}
	return out
}

// AddPort registers a port (the switch side of a link) and returns its
// index. The port must have been created with this switch as its owner.
func (s *Switch) AddPort(p *netdev.Port) int {
	if p.Owner() != netdev.Node(s) {
		panic("switchsim: AddPort called with a port owned by another node")
	}
	id := len(s.ports)
	p.ID = id
	p.OnDequeue = s.onDequeue
	s.ports = append(s.ports, p)
	s.mmu.ensurePorts(len(s.ports))
	return id
}

// Port returns the port at index i.
func (s *Switch) Port(i int) *netdev.Port { return s.ports[i] }

// NumPorts implements core.StateView.
func (s *Switch) NumPorts() int { return len(s.ports) }

// SetRouter installs the forwarding function.
func (s *Switch) SetRouter(r Router) { s.route = r }

// SetPool installs the packet pool this switch recycles dropped frames into
// (and its ports source PFC frames from / recycle consumed frames into).
func (s *Switch) SetPool(pl *pkt.Pool) {
	s.pool = pl
	for _, p := range s.ports {
		p.SetPool(pl)
	}
}

// SetTracer arms (or, with nil, disarms) the flight recorder on this switch:
// MMU-side probes (drops, ECN marks, headroom entries, PFC assert/release/
// re-issue) plus transmitter-view pause transitions on every port added so
// far. Call after all ports are attached.
func (s *Switch) SetTracer(rec *trace.Recorder) {
	s.tracer = rec
	for _, p := range s.ports {
		if rec == nil {
			p.OnPauseTransition = nil
			continue
		}
		id := p.ID
		p.OnPauseTransition = func(prio int, paused bool) {
			kind := trace.PortResumed
			if paused {
				kind = trace.PortPaused
			}
			rec.RecordPFC(trace.PFCEvent{
				At: s.eng.Now(), Switch: s.name, Port: id, Prio: prio, Kind: kind,
			})
		}
	}
}

// Tracer returns the armed flight recorder, or nil when tracing is off.
func (s *Switch) Tracer() *trace.Recorder { return s.tracer }

// Occupancy returns the total bytes resident in the switch buffer
// (reserved + shared + headroom), the quantity Figs. 7(c), 8 and 10(c) plot.
func (s *Switch) Occupancy() int64 { return s.mmu.resident }

// HandleArrival implements netdev.Node: the MMU admission path.
func (s *Switch) HandleArrival(p *pkt.Packet, port *netdev.Port) {
	if s.route == nil {
		panic("switchsim: no router installed on " + s.name)
	}
	// Engine-affinity audit (debug pools only): under the sharded runner
	// every switch is pinned to one shard's engine, and a frame must be
	// handed over via the ingress port's outbox — never delivered directly
	// by another shard's engine. A violation here means a cross-shard wire
	// was built without ConnectOn, which silently breaks determinism.
	if s.pool.Debug() && port.Engine() != s.eng {
		panic(fmt.Sprintf("switchsim: %s received a frame on a foreign engine (port %d)",
			s.name, port.ID))
	}
	out := s.route(p, port.ID)
	if out < 0 || out >= len(s.ports) {
		panic(fmt.Sprintf("switchsim: router returned invalid port %d on %s", out, s.name))
	}

	// Control packets (ACK/CNP) ride the strict-priority control queue
	// without charging the shared data pool: commodity switches reserve a
	// sliver of buffer for them and they are three orders of magnitude
	// smaller than the data backlog.
	if p.Class == pkt.ClassControl {
		s.ports[out].Enqueue(p)
		return
	}

	s.stats.RxPackets++
	s.admitData(p, port.ID, out)
}

// admitData runs the dual admission check of §II-A and enqueues or drops.
func (s *Switch) admitData(p *pkt.Packet, in, out int) {
	prio := p.Priority
	size := int64(p.Size)

	inHeadroom := false
	ingTh := s.policy.IngressThreshold(s, in, prio)
	inMMU := &s.mmu.ports[in]
	if inMMU.ing[prio]+size > s.cfg.ReservedPerQueue+ingTh {
		// Over the ingress threshold: lossy drops; lossless goes to
		// headroom (PFC is already, or is about to be, asserted).
		if p.Class == pkt.ClassLossy {
			if !s.preemptRetryIngress(p, in, out, size) {
				s.stats.LossyDropsIngress++
				s.stats.LossyDropBytesIngress += uint64(p.Size)
				if s.tracer != nil {
					s.recordPacketEvent(trace.DropLossyIngress, in, prio, p)
				}
				s.pool.Put(p) // sink: ingress drop
				return
			}
			// Preemption freed enough pool for the check to pass now;
			// proceed as a normal shared-pool admission.
		} else {
			if inMMU.hr[prio]+size > s.cfg.HeadroomPerQueue {
				// Headroom exhausted: the lossless guarantee is broken.
				// Still run the PFC check — if the upstream is flooding
				// because the pause frame was lost, the re-issue guard is
				// the only way to stop it.
				s.stats.LosslessViolations++
				s.stats.LosslessViolationBytes += uint64(p.Size)
				if s.tracer != nil {
					s.recordPacketEvent(trace.LosslessViolation, in, prio, p)
				}
				s.checkPFC(in, prio, true)
				s.pool.Put(p) // sink: lossless-violation discard
				return
			}
			inHeadroom = true
		}
	}

	if p.Class == pkt.ClassLossy {
		egTh := s.policy.EgressThreshold(s, out, prio)
		if s.mmu.ports[out].eg[prio]+size > s.cfg.ReservedPerQueue+egTh {
			if !s.preemptRetryEgress(p, in, out, size) {
				s.stats.LossyDropsEgress++
				s.stats.LossyDropBytesEgress += uint64(p.Size)
				if s.tracer != nil {
					s.recordPacketEvent(trace.DropLossyEgress, out, prio, p)
				}
				s.pool.Put(p) // sink: egress drop
				return
			}
		}
	}
	// Lossless egress queues are no-drop: overload is pushed back to the
	// ingress side via PFC rather than enforced here.

	// Admission: charge the pools.
	p.InPort, p.InPrio, p.OutPort = in, prio, out
	p.InHeadroom = inHeadroom
	if inHeadroom {
		inMMU.hr[prio] += size
		s.stats.LosslessHeadroom++
		if s.tracer != nil {
			s.recordPacketEvent(trace.HeadroomEnter, in, prio, p)
		}
	} else {
		before := sharedPart(inMMU.ing[prio], s.cfg.ReservedPerQueue)
		inMMU.ing[prio] += size
		s.mmu.sharedUsed += sharedPart(inMMU.ing[prio], s.cfg.ReservedPerQueue) - before
	}
	s.bumpEgress(out, prio, size)
	s.mmu.resident += size
	if s.mmu.resident > s.stats.PeakOccupancy {
		s.stats.PeakOccupancy = s.mmu.resident
	}

	s.maybeMarkECN(p, out, prio)
	s.policy.OnEnqueue(s, p)
	s.checkPFC(in, prio, true)
	s.ports[out].Enqueue(p)
}

// preemptRetryIngress gives a preemptive policy one chance to evict
// already-admitted lossy bytes when lossy packet p failed the ingress
// threshold; it reports whether the re-evaluated check now admits p. With
// no preemptive policy in force this is a single nil check.
func (s *Switch) preemptRetryIngress(p *pkt.Packet, in, out int, size int64) bool {
	if s.preempt == nil || !s.preempt.Preempt(s, s, p, in, out) {
		return false
	}
	ingTh := s.policy.IngressThreshold(s, in, p.Priority)
	return s.mmu.ports[in].ing[p.Priority]+size <= s.cfg.ReservedPerQueue+ingTh
}

// preemptRetryEgress is preemptRetryIngress for the egress-queue check.
func (s *Switch) preemptRetryEgress(p *pkt.Packet, in, out int, size int64) bool {
	if s.preempt == nil || !s.preempt.Preempt(s, s, p, in, out) {
		return false
	}
	egTh := s.policy.EgressThreshold(s, out, p.Priority)
	return s.mmu.ports[out].eg[p.Priority]+size <= s.cfg.ReservedPerQueue+egTh
}

var _ core.Evictor = (*Switch)(nil)

// EvictLossyTail implements core.Evictor: pop packets off the TAIL of
// lossy egress queue (port, prio) until at least want bytes are freed or
// the queue empties, reversing the admission charges exactly (shared/
// reserved split at the stamped ingress cell, egress counter, class pool,
// congestion census, residency) and recording the bytes at the eviction
// kill site of the conservation ledger. The tail packet is never the one
// being serialized — the transmitter pops its packet before scheduling —
// so eviction cannot corrupt an in-flight transmit.
func (s *Switch) EvictLossyTail(port, prio int, want int64) int64 {
	if want <= 0 || core.ClassOfPriority(prio) != pkt.ClassLossy {
		return 0
	}
	var freed int64
	for freed < want {
		q := s.ports[port].EvictTail(prio)
		if q == nil {
			break
		}
		size := int64(q.Size)
		// Lossy packets never sit in headroom, so the reversal is always
		// the shared/reserved split (the mirror of admitData's else-branch).
		inMMU := &s.mmu.ports[q.InPort]
		before := sharedPart(inMMU.ing[q.InPrio], s.cfg.ReservedPerQueue)
		inMMU.ing[q.InPrio] -= size
		s.mmu.sharedUsed += sharedPart(inMMU.ing[q.InPrio], s.cfg.ReservedPerQueue) - before
		s.bumpEgress(q.OutPort, q.InPrio, -size)
		s.mmu.resident -= size
		s.stats.LossyEvictions++
		s.stats.LossyEvictionBytes += uint64(q.Size)
		if s.tracer != nil {
			s.recordPacketEvent(trace.EvictLossy, port, prio, q)
		}
		s.policy.OnDequeue(s, q)
		s.checkPFC(q.InPort, q.InPrio, false)
		freed += size
		s.pool.Put(q) // sink: preempted by the policy
	}
	return freed
}

// onDequeue releases a packet's buffer as its last bit leaves the egress
// port.
func (s *Switch) onDequeue(p *pkt.Packet) {
	if p.Class == pkt.ClassControl || p.Kind == pkt.KindPFC {
		return
	}
	size := int64(p.Size)
	in, prio := p.InPort, p.InPrio

	inMMU := &s.mmu.ports[in]
	if p.InHeadroom {
		inMMU.hr[prio] -= size
		p.InHeadroom = false
	} else {
		before := sharedPart(inMMU.ing[prio], s.cfg.ReservedPerQueue)
		inMMU.ing[prio] -= size
		s.mmu.sharedUsed += sharedPart(inMMU.ing[prio], s.cfg.ReservedPerQueue) - before
	}
	// Decrement the same (port, priority) cell the admission path charged:
	// the stamped p.OutPort/p.InPrio, never the mutable p.Priority (a
	// rewriting layer changing Priority in flight would otherwise leak one
	// egress cell negative and another positive forever).
	s.bumpEgress(p.OutPort, p.InPrio, -size)
	s.mmu.resident -= size
	s.stats.TxPackets++

	s.policy.OnDequeue(s, p)
	s.checkPFC(in, prio, false)
}

// bumpEgress adjusts the egress counter, its class pool and the congestion
// census by delta bytes.
func (s *Switch) bumpEgress(out, prio int, delta int64) {
	before := s.mmu.ports[out].eg[prio]
	after := before + delta
	s.mmu.ports[out].eg[prio] = after
	s.mmu.poolUsed[core.ClassOfPriority(prio)] += delta
	mark := s.cfg.CongestionMark
	switch {
	case before <= mark && after > mark:
		s.mmu.congested[prio]++
	case before > mark && after <= mark:
		s.mmu.congested[prio]--
	}
}

// checkPFC asserts or releases PFC for a lossless ingress queue against the
// policy's current threshold (with hysteresis on release). arrival is true
// when called from the admission path — the only evidence usable for the
// lost-pause re-issue guard.
func (s *Switch) checkPFC(in, prio int, arrival bool) {
	if core.ClassOfPriority(prio) != pkt.ClassLossless {
		return
	}
	th := s.cfg.ReservedPerQueue + s.policy.IngressThreshold(s, in, prio)
	inMMU := &s.mmu.ports[in]
	occ := inMMU.ing[prio] + inMMU.hr[prio]
	if !inMMU.pausedOn(prio) {
		if occ >= th {
			inMMU.setPaused(prio, true)
			inMMU.pauseSentAt[prio] = s.eng.Now()
			if s.tracer != nil {
				s.recordPFC(trace.PFCAssert, in, prio)
			}
			s.ports[in].SendPFC(prio, true)
		}
		return
	}
	release := th - s.cfg.PFCHysteresis
	if release < 0 {
		release = 0
	}
	if occ <= release {
		inMMU.setPaused(prio, false)
		if s.tracer != nil {
			s.recordPFC(trace.PFCRelease, in, prio)
		}
		s.ports[in].SendPFC(prio, false)
		return
	}
	// Re-issue guard (XON/XOFF hysteresis under lost pause frames): a
	// correctly paused upstream stops sending within one round trip plus
	// the frames already on the wire. An *arrival* on a paused queue after
	// that window means the XOFF never took effect — most likely the pause
	// frame itself was lost — so assert it again instead of wedging while
	// headroom burns. On a healthy fabric arrivals cease inside the guard
	// window and this path never fires, keeping the paper's pause-frame
	// counts untouched.
	if arrival && s.eng.Now() >= inMMU.pauseSentAt[prio]+s.pfcGuard(in) {
		inMMU.pauseSentAt[prio] = s.eng.Now()
		s.stats.PFCReissues++
		if s.tracer != nil {
			s.recordPFC(trace.PFCReissue, in, prio)
		}
		s.ports[in].SendPFC(prio, true)
	}
}

// recordPFC appends an MMU-view pause transition to the flight recorder.
// Called only with s.tracer != nil (hot-path branch stays at the call site).
func (s *Switch) recordPFC(kind trace.PFCKind, in, prio int) {
	s.tracer.RecordPFC(trace.PFCEvent{
		At: s.eng.Now(), Switch: s.name, Port: in, Prio: prio, Kind: kind,
	})
}

// recordPacketEvent appends a drop/ECN/headroom event to the flight
// recorder. Called only with s.tracer != nil.
func (s *Switch) recordPacketEvent(kind trace.PacketEventKind, port, prio int, p *pkt.Packet) {
	s.tracer.RecordPacketEvent(trace.PacketEvent{
		At: s.eng.Now(), Switch: s.name, Port: port, Prio: prio,
		Kind: kind, Size: p.Size, Class: p.Class,
	})
}

// pfcGuard is how long after an XOFF legitimate arrivals may still land on
// the paused ingress queue: the frame serializing ahead of the pause frame,
// the pause frame itself, one round-trip of propagation, the frame the
// upstream had already committed to the wire — plus one MTU of slack.
func (s *Switch) pfcGuard(in int) sim.Duration {
	p := s.ports[in]
	mtu := sim.TxTime(pkt.MTUBytes, p.Rate())
	return 3*mtu + sim.TxTime(pkt.CtrlBytes, p.Rate()) + 2*p.PropDelay()
}

// maybeMarkECN applies egress-queue ECN marking: DCTCP step marking on
// lossy queues, DCQCN RED-style marking on lossless queues.
func (s *Switch) maybeMarkECN(p *pkt.Packet, out, prio int) {
	backlog := s.mmu.ports[out].eg[prio]
	switch p.Class {
	case pkt.ClassLossy:
		if s.cfg.ECNLossyThreshold > 0 && backlog > s.cfg.ECNLossyThreshold {
			p.CE = true
			s.stats.ECNMarked++
			if s.tracer != nil {
				s.recordPacketEvent(trace.ECNMark, out, prio, p)
			}
		}
	case pkt.ClassLossless:
		if s.cfg.ECNLosslessKmax <= 0 {
			return
		}
		var prob float64
		switch {
		case backlog <= s.cfg.ECNLosslessKmin:
			return
		case backlog >= s.cfg.ECNLosslessKmax:
			prob = 1
		default:
			span := float64(s.cfg.ECNLosslessKmax - s.cfg.ECNLosslessKmin)
			prob = s.cfg.ECNLosslessPmax * float64(backlog-s.cfg.ECNLosslessKmin) / span
		}
		if prob >= 1 || s.rng.Float64() < prob {
			p.CE = true
			s.stats.ECNMarked++
			if s.tracer != nil {
				s.recordPacketEvent(trace.ECNMark, out, prio, p)
			}
		}
	}
}

// sharedPart is how much of a queue counter is charged to the shared pool
// (the excess over the static reserve).
func sharedPart(q, reserved int64) int64 {
	if q <= reserved {
		return 0
	}
	return q - reserved
}

// --- core.StateView implementation -----------------------------------------

var _ core.StateView = (*Switch)(nil)

// Now implements core.StateView.
func (s *Switch) Now() sim.Time { return s.eng.Now() }

// TotalShared implements core.StateView.
func (s *Switch) TotalShared() int64 { return s.cfg.TotalShared }

// SharedUsed implements core.StateView.
func (s *Switch) SharedUsed() int64 { return s.mmu.sharedUsed }

// EgressPoolUsed implements core.StateView.
func (s *Switch) EgressPoolUsed(c pkt.Class) int64 { return s.mmu.poolUsed[int(c)] }

// IngressQueueBytes implements core.StateView.
func (s *Switch) IngressQueueBytes(port, prio int) int64 {
	return s.mmu.ports[port].ing[prio]
}

// EgressQueueBytes implements core.StateView.
func (s *Switch) EgressQueueBytes(port, prio int) int64 {
	return s.mmu.ports[port].eg[prio]
}

// EgressDrainRate implements core.StateView.
func (s *Switch) EgressDrainRate(port, prio int) int64 {
	return s.ports[port].DrainRate(prio)
}

// EgressLineRate implements core.StateView.
func (s *Switch) EgressLineRate(port int) int64 { return s.ports[port].Rate() }

// EgressPausedTime implements core.StateView.
func (s *Switch) EgressPausedTime(port, prio int) sim.Duration {
	return s.ports[port].CumPausedTime(prio)
}

// EgressPausedFor implements core.StateView: how long the egress (port,
// priority) has been continuously paused as of now, or 0 when not paused.
func (s *Switch) EgressPausedFor(port, prio int) sim.Duration {
	p := s.ports[port]
	if !p.Paused(prio) {
		return 0
	}
	return s.eng.Now() - p.PausedSince(prio)
}

// CongestedEgressQueues implements core.StateView.
func (s *Switch) CongestedEgressQueues(prio int) int { return s.mmu.congested[prio] }
