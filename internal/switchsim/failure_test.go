package switchsim

import (
	"testing"

	"l2bm/internal/core"
	"l2bm/internal/netdev"
	"l2bm/internal/pkt"
	"l2bm/internal/sim"
)

// zeroPolicy grants no shared buffer at all: every queue is limited to its
// static reserve. A pathological-but-legal policy the MMU must survive.
type zeroPolicy struct{}

var _ core.Policy = (*zeroPolicy)(nil)

func (zeroPolicy) Name() string                                    { return "Zero" }
func (zeroPolicy) IngressThreshold(core.StateView, int, int) int64 { return 0 }
func (zeroPolicy) EgressThreshold(core.StateView, int, int) int64  { return 0 }
func (zeroPolicy) OnEnqueue(core.StateView, *pkt.Packet)           {}
func (zeroPolicy) OnDequeue(core.StateView, *pkt.Packet)           {}

func TestZeroThresholdPolicyLossyAllDropOrReserved(t *testing.T) {
	r := newRig(t, 3, DefaultConfig(), zeroPolicy{}, 25e9, 0)
	r.send(0, 2, 50, pkt.PrioLossy, pkt.ClassLossy)
	r.send(1, 2, 50, pkt.PrioLossy, pkt.ClassLossy)
	r.eng.RunAll()

	st := r.sw.Stats()
	// Only the static reserve can be used; the rest must drop cleanly.
	if st.LossyDropsIngress+st.LossyDropsEgress == 0 {
		t.Error("expected drops under a zero-threshold policy")
	}
	if delivered := len(r.hosts[2].got); uint64(delivered) != st.TxPackets {
		t.Error("delivery accounting inconsistent")
	}
	r.mmuDrained(t)
}

func TestZeroThresholdPolicyLosslessPausesImmediately(t *testing.T) {
	r := newRig(t, 3, DefaultConfig(), zeroPolicy{}, 25e9, 0)
	// Two senders toward one port: the egress backlog pushes ingress
	// counters past the static reserve immediately.
	r.send(0, 2, 50, pkt.PrioLossless, pkt.ClassLossless)
	r.send(1, 2, 50, pkt.PrioLossless, pkt.ClassLossless)
	r.eng.RunAll()

	st := r.sw.Stats()
	if st.PauseFramesSent == 0 {
		t.Error("zero threshold must assert PFC")
	}
	if st.LosslessViolations != 0 {
		t.Errorf("violations = %d; headroom must still protect in-flight data", st.LosslessViolations)
	}
	if got := len(r.hosts[2].got); got != 100 {
		t.Errorf("delivered %d/100 lossless packets", got)
	}
	r.mmuDrained(t)
}

// greedyPolicy grants the whole buffer to everyone: the opposite extreme.
type greedyPolicy struct{}

var _ core.Policy = (*greedyPolicy)(nil)

func (greedyPolicy) Name() string { return "Greedy" }

func (greedyPolicy) IngressThreshold(s core.StateView, _, _ int) int64 {
	return s.TotalShared()
}

func (greedyPolicy) EgressThreshold(s core.StateView, _, _ int) int64 {
	return s.TotalShared()
}

func (greedyPolicy) OnEnqueue(core.StateView, *pkt.Packet) {}
func (greedyPolicy) OnDequeue(core.StateView, *pkt.Packet) {}

func TestGreedyPolicyNeverPausesOrDrops(t *testing.T) {
	r := newRig(t, 4, DefaultConfig(), greedyPolicy{}, 25e9, 0)
	for src := 0; src < 3; src++ {
		r.send(src, 3, 100, pkt.PrioLossless, pkt.ClassLossless)
		r.send(src, 3, 100, pkt.PrioLossy, pkt.ClassLossy)
	}
	r.eng.RunAll()

	st := r.sw.Stats()
	if st.PauseFramesSent != 0 || st.LossyDropsIngress+st.LossyDropsEgress != 0 {
		t.Errorf("greedy policy paused %d / dropped %d", st.PauseFramesSent,
			st.LossyDropsIngress+st.LossyDropsEgress)
	}
	if got := len(r.hosts[3].got); got != 600 {
		t.Errorf("delivered %d/600", got)
	}
	r.mmuDrained(t)
}

func TestPFCChainPropagatesUpstream(t *testing.T) {
	// Two switches in series: receiver-side congestion at sw2 must pause
	// sw1's egress, back up sw1's buffer, and eventually pause the hosts —
	// hop-by-hop backpressure with zero lossless loss end to end.
	eng := sim.NewEngine(5)
	cfg := DefaultConfig()
	cfg.TotalShared = 64 << 10 // small pool so backpressure cascades
	sw1 := NewSwitch(eng, "sw1", cfg, core.NewDT())
	sw2 := NewSwitch(eng, "sw2", cfg, core.NewDT())

	var hosts []*testHost
	// Hosts 0..3 on sw1, host 4 (sink) on sw2; sw1<->sw2 trunk.
	for i := 0; i < 4; i++ {
		h := &testHost{name: "h" + string(rune('0'+i)), eng: eng}
		hp, sp := netdevConnect(eng, h, sw1)
		h.port = hp
		sw1.AddPort(sp)
		hosts = append(hosts, h)
	}
	sink := &testHost{name: "sink", eng: eng}
	sp, swp := netdevConnect(eng, sink, sw2)
	sink.port = sp
	sw2.AddPort(swp) // port 0 on sw2
	hosts = append(hosts, sink)

	t1, t2 := netdevConnect2(eng, sw1, sw2)
	sw1.AddPort(t1) // port 4 on sw1
	sw2.AddPort(t2) // port 1 on sw2

	sw1.SetRouter(func(p *pkt.Packet, _ int) int {
		if p.Dst == 4 {
			return 4 // trunk
		}
		return p.Dst
	})
	sw2.SetRouter(func(p *pkt.Packet, _ int) int { return 0 })

	for src := 0; src < 4; src++ {
		for i := 0; i < 200; i++ {
			p := pkt.NewData(pkt.FlowID(src+1), src, 4, pkt.PrioLossless, pkt.ClassLossless,
				int64(i*pkt.MTUPayload), pkt.MTUPayload)
			hosts[src].port.Enqueue(p)
		}
	}
	eng.RunAll()

	if got := len(sink.got); got != 800 {
		t.Fatalf("sink received %d/800 (lossless chain must deliver all)", got)
	}
	st1, st2 := sw1.Stats(), sw2.Stats()
	if st2.PauseFramesSent == 0 {
		t.Error("sw2 should pause the trunk")
	}
	if st1.PauseFramesSent == 0 {
		t.Error("backpressure should cascade: sw1 should pause the hosts")
	}
	if st1.LosslessViolations+st2.LosslessViolations != 0 {
		t.Error("lossless violation in the chain")
	}
}

// netdevConnect wires a host to a switch at 25 Gbps / 1 µs.
func netdevConnect(eng *sim.Engine, h *testHost, sw *Switch) (*netdev.Port, *netdev.Port) {
	return netdev.Connect(eng, h, sw, 25e9, sim.Microsecond)
}

// netdevConnect2 wires a 100 Gbps trunk between two switches, so the
// downstream switch (not the trunk) is the bottleneck.
func netdevConnect2(eng *sim.Engine, a, b *Switch) (*netdev.Port, *netdev.Port) {
	return netdev.Connect(eng, a, b, 100e9, sim.Microsecond)
}

func TestStatsSnapshotIsolated(t *testing.T) {
	r := newRig(t, 2, DefaultConfig(), core.NewDT(), 25e9, 0)
	snap := r.sw.Stats()
	snap.RxPackets = 999
	if r.sw.Stats().RxPackets == 999 {
		t.Error("Stats must return a copy")
	}
}

// lostXOFFRig builds the asymmetric-rate scenario that exposes a lost pause
// frame: a 100 Gbps sender feeding a 25 Gbps egress through a switch with a
// deliberately small headroom pool. Without the re-issue guard, a swallowed
// XOFF lets the sender flood until headroom exhausts and the lossless
// guarantee breaks.
func lostXOFFRig(t *testing.T) (*sim.Engine, *Switch, *testHost, *testHost) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.HeadroomPerQueue = 60_000 // enough for the guard window, not a flood
	eng := sim.NewEngine(42)
	sw := NewSwitch(eng, "sw", cfg, zeroPolicy{})

	fast := &testHost{name: "hfast", eng: eng}
	fp, sp0 := netdev.Connect(eng, fast, sw, 100e9, sim.Microsecond)
	fast.port = fp
	sw.AddPort(sp0)

	slow := &testHost{name: "hslow", eng: eng}
	lp, sp1 := netdev.Connect(eng, slow, sw, 25e9, sim.Microsecond)
	slow.port = lp
	sw.AddPort(sp1)

	sw.SetRouter(func(p *pkt.Packet, _ int) int { return 1 })
	return eng, sw, fast, slow
}

// TestLostXOFFIsReissued is the regression test for the PFC re-issue guard:
// the first XOFF toward the flooding sender is swallowed (as link-level
// corruption would), and the switch must notice the arrivals that keep
// landing on the paused queue and assert the pause again before headroom
// runs out.
func TestLostXOFFIsReissued(t *testing.T) {
	eng, sw, fast, slow := lostXOFFRig(t)
	dropped := 0
	fast.port.RxFault = func(p *pkt.Packet) bool {
		if p.Kind == pkt.KindPFC && p.PFCPause && dropped == 0 {
			dropped++
			return false
		}
		return true
	}
	for i := 0; i < 100; i++ {
		p := pkt.NewData(1, 0, 1, pkt.PrioLossless, pkt.ClassLossless,
			int64(i*pkt.MTUPayload), pkt.MTUPayload)
		fast.port.Enqueue(p)
	}
	eng.RunAll()

	if dropped != 1 {
		t.Fatalf("fault hook dropped %d XOFFs, want exactly 1", dropped)
	}
	st := sw.Stats()
	if st.PFCReissues == 0 {
		t.Fatal("lost XOFF was never re-issued: the upstream flooded unchecked")
	}
	if st.LosslessViolations != 0 {
		t.Errorf("lossless violations = %d; re-issue came too late to protect headroom",
			st.LosslessViolations)
	}
	if got := len(slow.got); got != 100 {
		t.Errorf("delivered %d/100 lossless packets", got)
	}
	if fs := fast.port.Stats(); fs.FaultDrops != 1 {
		t.Errorf("FaultDrops = %d, want 1", fs.FaultDrops)
	}
	if err := sw.CheckDrained(); err != nil {
		t.Errorf("MMU drained-state audit: %v", err)
	}
}

// TestPFCReissueQuietOnHealthyLink asserts the guard's false-positive rate
// is zero when pause frames are delivered: the paper's pause-frame counts
// must not change on a healthy fabric.
func TestPFCReissueQuietOnHealthyLink(t *testing.T) {
	eng, sw, fast, slow := lostXOFFRig(t)
	for i := 0; i < 100; i++ {
		p := pkt.NewData(1, 0, 1, pkt.PrioLossless, pkt.ClassLossless,
			int64(i*pkt.MTUPayload), pkt.MTUPayload)
		fast.port.Enqueue(p)
	}
	eng.RunAll()

	st := sw.Stats()
	if st.PauseFramesSent == 0 {
		t.Fatal("scenario did not exercise PFC at all")
	}
	if st.PFCReissues != 0 {
		t.Errorf("PFCReissues = %d on a healthy link, want 0 (baseline perturbed)", st.PFCReissues)
	}
	if st.LosslessViolations != 0 {
		t.Errorf("violations = %d", st.LosslessViolations)
	}
	if got := len(slow.got); got != 100 {
		t.Errorf("delivered %d/100", got)
	}
}

// TestCarrierDownDropsAtReceiver verifies the carrier-fault model: frames
// serialized into a dead link vanish at the receiving port (counted), while
// MMU accounting on the transmit side stays exact.
func TestCarrierDownDropsAtReceiver(t *testing.T) {
	r := newRig(t, 3, DefaultConfig(), core.NewDT(), 25e9, sim.Microsecond)
	// Cut the carrier on host 2's receiving side.
	r.hosts[2].port.SetCarrier(false)
	r.send(0, 2, 10, pkt.PrioLossy, pkt.ClassLossy)
	r.eng.RunAll()

	if got := len(r.hosts[2].got); got != 0 {
		t.Fatalf("dead carrier delivered %d packets", got)
	}
	if cd := r.hosts[2].port.Stats().CarrierDrops; cd != 10 {
		t.Errorf("CarrierDrops = %d, want 10", cd)
	}
	r.mmuDrained(t) // the switch must not leak buffer or pause state for vanished frames
}
